//===- tests/support_threadpool_test.cpp - ThreadPool semantics -----------==//
//
// Exception propagation, wait-after-burst reuse, and single-worker FIFO
// ordering — the contract the parallel runtime and the parallel synthesis
// driver rely on.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace grassp;

namespace {

TEST(ThreadPool, TaskExceptionPropagatesToWait) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Ran] { ++Ran; });
  Pool.submit([] { throw std::runtime_error("boom"); });
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Ran] { ++Ran; });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The throwing task did not take down other tasks or the workers.
  EXPECT_EQ(Ran.load(), 20);
  // The error is delivered exactly once; the pool stays usable.
  Pool.submit([&Ran] { ++Ran; });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Ran.load(), 21);
}

TEST(ThreadPool, ManyThrowingTasksDeliverOneError) {
  ThreadPool Pool(4);
  for (int I = 0; I != 50; ++I)
    Pool.submit([] { throw std::runtime_error("each task throws"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_NO_THROW(Pool.wait());
}

// Exceptions beyond the first are not lost silently: wait() reports the
// aggregate loss in the rethrown message and droppedExceptions() keeps a
// running total across bursts.
TEST(ThreadPool, DroppedExceptionsAreCountedAndSurfaced) {
  ThreadPool Pool(4);
  for (int I = 0; I != 50; ++I)
    Pool.submit([] { throw std::runtime_error("boom"); });
  try {
    Pool.wait();
    FAIL() << "wait() must rethrow the first error";
  } catch (const std::runtime_error &E) {
    EXPECT_NE(std::string(E.what())
                  .find("[+49 more task exception(s) dropped]"),
              std::string::npos)
        << E.what();
  }
  EXPECT_EQ(Pool.droppedExceptions(), 49u);

  // A clean burst leaves the total untouched; another lossy one adds.
  Pool.submit([] {});
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Pool.droppedExceptions(), 49u);
  for (int I = 0; I != 3; ++I)
    Pool.submit([] { throw std::runtime_error("again"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Pool.droppedExceptions(), 51u);
}

// A lone failure keeps its original message: the aggregate suffix only
// appears when something was actually dropped.
TEST(ThreadPool, SingleErrorIsRethrownVerbatim) {
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("solo"); });
  try {
    Pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "solo");
  }
  EXPECT_EQ(Pool.droppedExceptions(), 0u);
}

TEST(ThreadPool, DestructionWithPendingErrorIsClean) {
  // A stashed exception that is never collected by wait() must not
  // escape the destructor.
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("never collected"); });
  // Destructor runs at scope exit; nothing to assert beyond "no crash".
}

TEST(ThreadPool, WaitAfterBurstIsReusable) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int Burst = 0; Burst != 4; ++Burst) {
    for (int I = 0; I != 200; ++I)
      Pool.submit([&Count] { ++Count; });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Burst + 1) * 200);
  }
}

TEST(ThreadPool, SingleWorkerRunsFifo) {
  ThreadPool Pool(1);
  ASSERT_EQ(Pool.size(), 1u);
  std::vector<int> Order;
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Order, I] { Order.push_back(I); });
  Pool.wait();
  ASSERT_EQ(Order.size(), 100u);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait();
  Pool.wait();
}

// -- Admission control and cancellation (PoolOptions) ---------------------

TEST(ThreadPool, TrySubmitReportsQueueFull) {
  PoolOptions Opts;
  Opts.NumThreads = 1;
  Opts.QueueCap = 2;
  ThreadPool Pool(Opts);

  // Park the lone worker so queued tasks cannot drain.
  std::atomic<bool> Release{false};
  std::atomic<int> Ran{0};
  ASSERT_EQ(Pool.trySubmit([&] {
    while (!Release.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++Ran;
  }),
            SubmitResult::Ok);
  // Give the worker a moment to pick the blocker up, then fill the cap.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(Pool.trySubmit([&] { ++Ran; }), SubmitResult::Ok);
  EXPECT_EQ(Pool.trySubmit([&] { ++Ran; }), SubmitResult::Ok);
  EXPECT_EQ(Pool.trySubmit([&] { ++Ran; }), SubmitResult::QueueFull);

  Release = true;
  Pool.wait();
  // The rejected task never ran; the admitted ones all did.
  EXPECT_EQ(Ran.load(), 3);
  EXPECT_EQ(Pool.discardedTasks(), 0u);
}

TEST(ThreadPool, FiredTokenShedsQueueAndRejectsSubmissions) {
  CancelToken Token = CancelToken::root();
  PoolOptions Opts;
  Opts.NumThreads = 1;
  Opts.Token = Token;
  ThreadPool Pool(Opts);

  std::atomic<bool> Release{false};
  std::atomic<int> Ran{0};
  Pool.submit([&] {
    while (!Release.load() && !Token.cancelled())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++Ran;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int I = 0; I != 5; ++I)
    Pool.submit([&Ran] { ++Ran; });

  Token.cancel();
  Release = true;
  Pool.wait();
  // Only the in-flight task finished; the five queued ones were shed,
  // and post-fire submissions are rejected without queueing.
  EXPECT_EQ(Ran.load(), 1);
  EXPECT_EQ(Pool.discardedTasks(), 5u);
  EXPECT_EQ(Pool.submit([&Ran] { ++Ran; }), SubmitResult::Cancelled);
  EXPECT_EQ(Pool.trySubmit([&Ran] { ++Ran; }), SubmitResult::Cancelled);
  Pool.wait();
  EXPECT_EQ(Ran.load(), 1);
  EXPECT_EQ(Pool.discardedTasks(), 7u);
}

TEST(ThreadPool, BlockingSubmitWakesWhenTokenFires) {
  CancelToken Token = CancelToken::root();
  PoolOptions Opts;
  Opts.NumThreads = 1;
  Opts.QueueCap = 1;
  Opts.Token = Token;
  ThreadPool Pool(Opts);

  std::atomic<bool> Release{false};
  Pool.submit([&] {
    while (!Release.load() && !Token.cancelled())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(Pool.submit([] {}), SubmitResult::Ok); // fills the cap.

  // This submit blocks on queue space; firing the token must unblock it
  // with Cancelled rather than leaving it stuck.
  std::thread Firer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Token.cancel();
  });
  EXPECT_EQ(Pool.submit([] {}), SubmitResult::Cancelled);
  Firer.join();
  Release = true;
  Pool.wait();
}

TEST(ThreadPool, DrainDeadlineShedsQueuedWork) {
  PoolOptions Opts;
  Opts.NumThreads = 1;
  ThreadPool Pool(Opts);

  std::atomic<bool> Release{false};
  std::atomic<int> Ran{0};
  Pool.submit([&] {
    while (!Release.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++Ran;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int I = 0; I != 4; ++I)
    Pool.submit([&Ran] { ++Ran; });

  // The queue cannot move while the blocker spins, so the deadline
  // expires, queued work is shed, and drain waits only for the
  // in-flight task. Release it just after expiry.
  std::thread Releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    Release = true;
  });
  EXPECT_FALSE(Pool.drain(Deadline::after(0.04)));
  Releaser.join();
  EXPECT_EQ(Ran.load(), 1);
  EXPECT_EQ(Pool.discardedTasks(), 4u);

  // The pool stays usable, and a drain that finishes in time says so.
  Pool.submit([&Ran] { ++Ran; });
  EXPECT_TRUE(Pool.drain(Deadline::after(10.0)));
  EXPECT_EQ(Ran.load(), 2);
}

} // namespace
