//===- tests/support_threadpool_test.cpp - ThreadPool semantics -----------==//
//
// Exception propagation, wait-after-burst reuse, and single-worker FIFO
// ordering — the contract the parallel runtime and the parallel synthesis
// driver rely on.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

using namespace grassp;

namespace {

TEST(ThreadPool, TaskExceptionPropagatesToWait) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Ran] { ++Ran; });
  Pool.submit([] { throw std::runtime_error("boom"); });
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Ran] { ++Ran; });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The throwing task did not take down other tasks or the workers.
  EXPECT_EQ(Ran.load(), 20);
  // The error is delivered exactly once; the pool stays usable.
  Pool.submit([&Ran] { ++Ran; });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Ran.load(), 21);
}

TEST(ThreadPool, ManyThrowingTasksDeliverOneError) {
  ThreadPool Pool(4);
  for (int I = 0; I != 50; ++I)
    Pool.submit([] { throw std::runtime_error("each task throws"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_NO_THROW(Pool.wait());
}

// Exceptions beyond the first are not lost silently: wait() reports the
// aggregate loss in the rethrown message and droppedExceptions() keeps a
// running total across bursts.
TEST(ThreadPool, DroppedExceptionsAreCountedAndSurfaced) {
  ThreadPool Pool(4);
  for (int I = 0; I != 50; ++I)
    Pool.submit([] { throw std::runtime_error("boom"); });
  try {
    Pool.wait();
    FAIL() << "wait() must rethrow the first error";
  } catch (const std::runtime_error &E) {
    EXPECT_NE(std::string(E.what())
                  .find("[+49 more task exception(s) dropped]"),
              std::string::npos)
        << E.what();
  }
  EXPECT_EQ(Pool.droppedExceptions(), 49u);

  // A clean burst leaves the total untouched; another lossy one adds.
  Pool.submit([] {});
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Pool.droppedExceptions(), 49u);
  for (int I = 0; I != 3; ++I)
    Pool.submit([] { throw std::runtime_error("again"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Pool.droppedExceptions(), 51u);
}

// A lone failure keeps its original message: the aggregate suffix only
// appears when something was actually dropped.
TEST(ThreadPool, SingleErrorIsRethrownVerbatim) {
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("solo"); });
  try {
    Pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "solo");
  }
  EXPECT_EQ(Pool.droppedExceptions(), 0u);
}

TEST(ThreadPool, DestructionWithPendingErrorIsClean) {
  // A stashed exception that is never collected by wait() must not
  // escape the destructor.
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("never collected"); });
  // Destructor runs at scope exit; nothing to assert beyond "no crash".
}

TEST(ThreadPool, WaitAfterBurstIsReusable) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int Burst = 0; Burst != 4; ++Burst) {
    for (int I = 0; I != 200; ++I)
      Pool.submit([&Count] { ++Count; });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Burst + 1) * 200);
  }
}

TEST(ThreadPool, SingleWorkerRunsFifo) {
  ThreadPool Pool(1);
  ASSERT_EQ(Pool.size(), 1u);
  std::vector<int> Order;
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Order, I] { Order.push_back(I); });
  Pool.wait();
  ASSERT_EQ(Order.size(), 100u);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait();
  Pool.wait();
}

} // namespace
