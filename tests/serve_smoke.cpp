//===- tests/serve_smoke.cpp - End-to-end grassp serve smoke --------------==//
//
// Each test forks a real ServeServer (socket + cache in a fresh temp
// dir) and talks to it with ServeClient. The harness process installs
// NO signal sources — each forked server child arms its own, so SIGTERM
// sent to the child exercises the genuine drain path. Covered:
//
//   * miss -> solved, hit -> bit-identical answer with zero solver work
//   * RunReq output == the serial interpreter on the same workload
//   * a client that sends a truncated frame and hangs up kills nothing
//   * overload sheds synth misses with error[overloaded] + retry-after
//     while cache hits and stats keep flowing
//   * unparsable program -> error[bad-request], connection stays usable
//   * SIGTERM -> drain: exit 0 and a compacted cache.snap on disk
//   * kill -9 then warm restart: a committed entry is re-served as a
//     hit, identical to the answer the first incarnation gave
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "runtime/Workload.h"
#include "serve/Client.h"
#include "serve/ProgramText.h"
#include "serve/Server.h"
#include "support/Cancel.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace grassp;

namespace {

std::string benchText(const char *Name) {
  const lang::SerialProgram *P = lang::findBenchmark(Name);
  EXPECT_NE(P, nullptr) << Name;
  return serve::printProgramText(*P);
}

/// One forked server over a private temp dir. The child installs its
/// own signal sources, so signals sent at its pid drive the real drain
/// and hard-stop paths without touching the gtest process.
struct SmokeServer {
  std::string Dir;
  std::string Socket;
  std::string CacheDir;
  pid_t Pid = -1;

  SmokeServer() {
    char Tmpl[] = "/tmp/grassp-smoke-XXXXXX";
    const char *D = ::mkdtemp(Tmpl);
    EXPECT_NE(D, nullptr);
    Dir = D ? D : "/tmp";
    Socket = Dir + "/serve.sock";
    CacheDir = Dir + "/cache";
  }

  ~SmokeServer() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
    }
  }

  void start(size_t HighWaterJobs = 8, uint64_t SnapshotEvery = 2) {
    ::unlink(Socket.c_str());
    Pid = ::fork();
    ASSERT_GE(Pid, 0);
    if (Pid != 0)
      return;
    serve::ServerOptions SO;
    SO.SocketPath = Socket;
    SO.CacheDir = CacheDir;
    SO.PoolSize = 1;
    SO.SmtTimeoutMs = 15000;
    SO.CertTimeoutMs = 15000;
    SO.JobDeadlineSec = 30.0;
    SO.HighWaterJobs = HighWaterJobs;
    SO.SnapshotEvery = SnapshotEvery;
    SO.Root = installSignalSource();
    SO.Drain = installDrainSignalSource();
    serve::ServeServer Server;
    std::string Err;
    if (!Server.init(SO, &Err))
      ::_exit(9);
    ::_exit(Server.run());
  }

  bool alive() const { return Pid > 0 && ::kill(Pid, 0) == 0; }

  /// Signals and reaps; returns the wait status (or -1 on timeout).
  int stop(int Sig, double TimeoutSec = 20.0) {
    if (Pid <= 0)
      return -1;
    ::kill(Pid, Sig);
    Deadline Until = Deadline::after(TimeoutSec);
    int St = 0;
    while (!Until.expired()) {
      pid_t R = ::waitpid(Pid, &St, WNOHANG);
      if (R == Pid) {
        Pid = -1;
        return St;
      }
      ::usleep(5000);
    }
    return -1;
  }

  bool connect(serve::ServeClient &C) {
    std::string Err;
    bool Ok = C.connect(Socket, 10.0, &Err);
    EXPECT_TRUE(Ok) << Err;
    return Ok;
  }
};

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

/// A bare blocking socket to the server — for clients that misbehave in
/// ways ServeClient never would (sending forever without reading).
int rawConnect(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

TEST(ServeSmoke, MissSolvesThenHitIsBitIdentical) {
  SmokeServer S;
  S.start();
  serve::ServeClient C;
  ASSERT_TRUE(S.connect(C));

  std::string Text = benchText("count");
  serve::ClientReply Miss;
  ASSERT_TRUE(C.synth(Text, &Miss));
  ASSERT_TRUE(Miss.IsOk) << describeReply(Miss);
  EXPECT_EQ(Miss.Ok.Synth.CacheHit, 0);
  EXPECT_FALSE(Miss.Ok.Synth.PlanText.empty());
  EXPECT_FALSE(Miss.Ok.Synth.Group.empty());

  serve::ClientReply Hit;
  ASSERT_TRUE(C.synth(Text, &Hit));
  ASSERT_TRUE(Hit.IsOk) << describeReply(Hit);
  EXPECT_EQ(Hit.Ok.Synth.CacheHit, 1);
  EXPECT_EQ(Hit.Ok.Synth.Key, Miss.Ok.Synth.Key);
  EXPECT_EQ(Hit.Ok.Synth.PlanText, Miss.Ok.Synth.PlanText);
  EXPECT_EQ(Hit.Ok.Synth.Group, Miss.Ok.Synth.Group);
  EXPECT_EQ(Hit.Ok.Synth.Cert, Miss.Ok.Synth.Cert);
}

TEST(ServeSmoke, RunMatchesSerialInterpreter) {
  SmokeServer S;
  S.start();
  serve::ServeClient C;
  ASSERT_TRUE(S.connect(C));

  const lang::SerialProgram *P = lang::findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  std::vector<int64_t> Data = runtime::generateWorkload(*P, 2048, 7);
  serve::ClientReply R;
  ASSERT_TRUE(C.run(serve::printProgramText(*P), Data, &R));
  ASSERT_TRUE(R.IsOk) << describeReply(R);
  EXPECT_EQ(R.Ok.Run.Output, lang::runSerial(*P, Data));
  EXPECT_FALSE(R.Ok.Run.Tier.empty());
}

TEST(ServeSmoke, DeadClientMidFrameKillsNothing) {
  SmokeServer S;
  S.start();
  std::string Text = benchText("count");

  serve::ServeClient Dead;
  ASSERT_TRUE(S.connect(Dead));
  EXPECT_TRUE(Dead.sendTruncatedSynth(Text));

  // The service must shrug: the next client gets a full answer.
  serve::ServeClient C;
  ASSERT_TRUE(S.connect(C));
  serve::ClientReply R;
  ASSERT_TRUE(C.synth(Text, &R));
  EXPECT_TRUE(R.IsOk) << describeReply(R);
  EXPECT_TRUE(S.alive());
}

TEST(ServeSmoke, NonReadingClientCannotWedgeServer) {
  SmokeServer S;
  S.start();

  // Prime the cache so the liveness probe below is solver-free.
  {
    serve::ServeClient C;
    ASSERT_TRUE(S.connect(C));
    serve::ClientReply R;
    ASSERT_TRUE(C.synth(benchText("count"), &R));
    ASSERT_TRUE(R.IsOk) << describeReply(R);
  }

  // A client that pipelines thousands of stats requests and never reads
  // a byte of reply: once the socket buffer fills, the replies must pile
  // into the server's per-connection backlog — not wedge the loop's
  // single thread inside write(2).
  int Raw = rawConnect(S.Socket);
  ASSERT_GE(Raw, 0);
  for (int I = 0; I != 2000; ++I)
    ASSERT_TRUE(dist::writeFrame(Raw, dist::MsgType::StatsReq, {}));

  // A well-behaved client still gets prompt answers on every path.
  serve::ServeClient C;
  ASSERT_TRUE(S.connect(C));
  serve::ClientReply Hit;
  ASSERT_TRUE(C.synth(benchText("count"), &Hit));
  ASSERT_TRUE(Hit.IsOk) << describeReply(Hit);
  EXPECT_EQ(Hit.Ok.Synth.CacheHit, 1);
  serve::ClientReply Stats;
  ASSERT_TRUE(C.stats(&Stats));
  EXPECT_TRUE(Stats.IsOk);
  EXPECT_TRUE(S.alive());
  ::close(Raw);
}

TEST(ServeSmoke, RunAlphaVariantsShareKeyButRunTheirOwnText) {
  SmokeServer S;
  S.start();
  serve::ServeClient C;
  ASSERT_TRUE(S.connect(C));

  // Alpha-renamed twins: same canonical key, distinct texts. The run
  // memo must compile and execute each requester's own program rather
  // than trusting the structural hash to pick one.
  const std::string T1 = "(program (name sum_a) (state (a int 0)) "
                         "(step (a (add a in))) (output a))";
  const std::string T2 = "(program (name sum_z) (state (z int 0)) "
                         "(step (z (add z in))) (output z))";
  lang::SerialProgram P1;
  std::string Err;
  ASSERT_TRUE(serve::parseProgramText(T1, &P1, &Err)) << Err;

  std::vector<int64_t> Data = runtime::generateWorkload(P1, 1024, 11);
  int64_t Want = lang::runSerial(P1, Data);

  serve::ClientReply R1, R2;
  ASSERT_TRUE(C.run(T1, Data, &R1));
  ASSERT_TRUE(R1.IsOk) << describeReply(R1);
  EXPECT_EQ(R1.Ok.Run.Output, Want);
  ASSERT_TRUE(C.run(T2, Data, &R2));
  ASSERT_TRUE(R2.IsOk) << describeReply(R2);
  EXPECT_EQ(R2.Ok.Run.Output, Want);
  EXPECT_EQ(R1.Ok.Run.Key, R2.Ok.Run.Key);
}

TEST(ServeSmoke, OverloadShedsMissesButServesHitsAndStats) {
  SmokeServer S;
  // Incarnation 1 commits `count` to the cache, then drains.
  S.start(/*HighWaterJobs=*/8);
  {
    serve::ServeClient C;
    ASSERT_TRUE(S.connect(C));
    serve::ClientReply R;
    ASSERT_TRUE(C.synth(benchText("count"), &R));
    ASSERT_TRUE(R.IsOk) << describeReply(R);
  }
  int St = S.stop(SIGTERM);
  ASSERT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0) << St;

  // Incarnation 2 admits NO synth work (high water zero): misses shed
  // with a typed error + retry-after, but hits and stats still flow.
  S.start(/*HighWaterJobs=*/0);
  serve::ServeClient C;
  ASSERT_TRUE(S.connect(C));

  serve::ClientReply Shed;
  ASSERT_TRUE(C.synth(benchText("sum"), &Shed));
  ASSERT_FALSE(Shed.IsOk);
  EXPECT_EQ(Shed.Err.Code, serve::ErrCode::Overloaded);
  EXPECT_GT(Shed.Err.RetryAfterMs, 0u);

  serve::ClientReply Hit;
  ASSERT_TRUE(C.synth(benchText("count"), &Hit));
  ASSERT_TRUE(Hit.IsOk) << describeReply(Hit);
  EXPECT_EQ(Hit.Ok.Synth.CacheHit, 1);

  serve::ClientReply Stats;
  ASSERT_TRUE(C.stats(&Stats));
  ASSERT_TRUE(Stats.IsOk);
  EXPECT_EQ(Stats.Ok.Kind, serve::ReplyKind::Stats);
  EXPECT_FALSE(Stats.Ok.Stats.Counters.empty());
}

TEST(ServeSmoke, BadRequestIsTypedAndNonFatal) {
  SmokeServer S;
  S.start();
  serve::ServeClient C;
  ASSERT_TRUE(S.connect(C));

  serve::ClientReply Bad;
  ASSERT_TRUE(C.synth("(this is not a program", &Bad));
  ASSERT_FALSE(Bad.IsOk);
  EXPECT_EQ(Bad.Err.Code, serve::ErrCode::BadRequest);

  // Same connection keeps working.
  serve::ClientReply R;
  ASSERT_TRUE(C.synth(benchText("count"), &R));
  EXPECT_TRUE(R.IsOk) << describeReply(R);
}

TEST(ServeSmoke, SigtermDrainsExitsZeroAndSnapshots) {
  SmokeServer S;
  S.start(/*HighWaterJobs=*/8, /*SnapshotEvery=*/1000); // journal only...
  {
    serve::ServeClient C;
    ASSERT_TRUE(S.connect(C));
    serve::ClientReply R;
    ASSERT_TRUE(C.synth(benchText("count"), &R));
    ASSERT_TRUE(R.IsOk) << describeReply(R);
  }
  int St = S.stop(SIGTERM);
  ASSERT_TRUE(WIFEXITED(St)) << St;
  EXPECT_EQ(WEXITSTATUS(St), 0);
  // ...so the snapshot on disk proves drain compacted before exiting.
  EXPECT_TRUE(fileExists(S.CacheDir + "/cache.snap"));
}

TEST(ServeSmoke, Kill9ThenWarmRestartReservesCommittedEntry) {
  SmokeServer S;
  S.start(/*HighWaterJobs=*/8, /*SnapshotEvery=*/1000); // recovery must
  std::string Text = benchText("max_elem");             // come from the
  serve::ClientReply First;                             // journal alone.
  {
    serve::ServeClient C;
    ASSERT_TRUE(S.connect(C));
    ASSERT_TRUE(C.synth(Text, &First));
    ASSERT_TRUE(First.IsOk) << describeReply(First);
  }
  // The reply was journaled before it was sent; kill -9 loses nothing.
  int St = S.stop(SIGKILL);
  ASSERT_TRUE(WIFSIGNALED(St)) << St;

  S.start();
  serve::ServeClient C;
  ASSERT_TRUE(S.connect(C));
  serve::ClientReply Again;
  ASSERT_TRUE(C.synth(Text, &Again));
  ASSERT_TRUE(Again.IsOk) << describeReply(Again);
  EXPECT_EQ(Again.Ok.Synth.CacheHit, 1);
  EXPECT_EQ(Again.Ok.Synth.Key, First.Ok.Synth.Key);
  EXPECT_EQ(Again.Ok.Synth.PlanText, First.Ok.Synth.PlanText);
  EXPECT_EQ(Again.Ok.Synth.Group, First.Ok.Synth.Group);
  EXPECT_EQ(Again.Ok.Synth.Cert, First.Ok.Synth.Cert);
}
