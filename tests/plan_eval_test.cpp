//===- tests/plan_eval_test.cpp - Plan executor semantics tests -----------==//
//
// Unit tests for the domain-generic plan executor: worker behavior on
// hand-constructed segments, the symbolic/concrete agreement property
// (the two domains must compute the same function), and the upd
// materialization round-trip.
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "smt/Solver.h"
#include "support/Random.h"
#include "synth/Grassp.h"
#include "synth/PlanEval.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::ir;
using namespace grassp::synth;

namespace {

ParallelPlan planFor(const char *Name) {
  SynthesisResult R = synthesize(*lang::findBenchmark(Name));
  EXPECT_TRUE(R.Success);
  return R.Plan;
}

TEST(Worker, SplitsAtFirstBoundary) {
  const lang::SerialProgram *P = lang::findBenchmark("count_102");
  ParallelPlan Plan = planFor("count_102");
  ConcretePolicy Pol;
  PlanExecutor<ConcretePolicy> Exec(*P, Plan, Pol);

  int64_t Marker = Plan.Cond.PrefixCond->operand(1)->intValue();
  // A segment with the marker at index 2.
  std::vector<int64_t> Seg = {0, 0, Marker, 0, Marker};
  WorkerResult<ConcretePolicy> W = Exec.runWorker(Seg);
  EXPECT_TRUE(W.Found);
  EXPECT_EQ(W.Boundary, Marker);

  // A marker-free segment: never found, boundary untouched.
  std::vector<int64_t> NoB(6, Marker == 0 ? 2 : 0);
  WorkerResult<ConcretePolicy> W2 = Exec.runWorker(NoB);
  EXPECT_FALSE(W2.Found);
}

TEST(Worker, SuffixFoldIncludesBoundary) {
  const lang::SerialProgram *P = lang::findBenchmark("max_dist_ones");
  ParallelPlan Plan = planFor("max_dist_ones");
  ASSERT_EQ(toString(Plan.Cond.PrefixCond), "(in == 1)");
  ConcretePolicy Pol;
  PlanExecutor<ConcretePolicy> Exec(*P, Plan, Pol);
  // {0, 1, 0, 0, 1}: suffix = {1,0,0,1}; its internal best = 3.
  std::vector<int64_t> Seg = {0, 1, 0, 0, 1};
  WorkerResult<ConcretePolicy> W = Exec.runWorker(Seg);
  ASSERT_TRUE(W.Found);
  int Best = P->State.indexOf("best");
  EXPECT_EQ(W.D[Best].Sc, 3);
}

TEST(MergeWorkers, EmptySegmentListYieldsInitialOutput) {
  const lang::SerialProgram *P = lang::findBenchmark("count_102");
  ParallelPlan Plan = planFor("count_102");
  ConcretePolicy Pol;
  PlanExecutor<ConcretePolicy> Exec(*P, Plan, Pol);
  EXPECT_EQ(Exec.mergeWorkers({}), 0);
}

// Symbolic/concrete agreement: evaluating the plan symbolically over
// fresh variables and then asserting equality with the concrete result
// on specific values must be valid (unsat negation).
class DomainsAgree : public ::testing::TestWithParam<std::string> {};

TEST_P(DomainsAgree, SymbolicMatchesConcrete) {
  const lang::SerialProgram *P = lang::findBenchmark(GetParam());
  ParallelPlan Plan = planFor(GetParam().c_str());
  if (P->State.hasBag())
    GTEST_SKIP() << "bag symbolic equality needs set reasoning";

  // Shape: 2 segments of 2.
  SymbolicPolicy SP;
  std::vector<std::vector<ExprRef>> SymSegs = {
      {var("a0", TypeKind::Int), var("a1", TypeKind::Int)},
      {var("b0", TypeKind::Int), var("b1", TypeKind::Int)}};
  PlanExecutor<SymbolicPolicy> SExec(*P, Plan, SP);
  ExprRef SymOut = SExec.run(SymSegs);

  Rng R(31);
  std::vector<int64_t> Reps = P->representativeInputs();
  for (int Trial = 0; Trial != 10; ++Trial) {
    int64_t A0 = Reps[R.next() % Reps.size()];
    int64_t A1 = Reps[R.next() % Reps.size()];
    int64_t B0 = Reps[R.next() % Reps.size()];
    int64_t B1 = Reps[R.next() % Reps.size()];
    int64_t Conc = runPlanConcrete(*P, Plan, {{A0, A1}, {B0, B1}});

    smt::SmtSolver S;
    S.add(eq(var("a0", TypeKind::Int), constInt(A0)));
    S.add(eq(var("a1", TypeKind::Int), constInt(A1)));
    S.add(eq(var("b0", TypeKind::Int), constInt(B0)));
    S.add(eq(var("b1", TypeKind::Int), constInt(B1)));
    ExprRef ConcOut = SymOut->getType() == TypeKind::Bool
                          ? eq(SymOut, constBool(Conc != 0))
                          : eq(SymOut, constInt(Conc));
    S.add(lnot(ConcOut));
    EXPECT_EQ(S.check(), smt::SatResult::Unsat)
        << P->Name << " on " << A0 << "," << A1 << "|" << B0 << "," << B1;
  }
}

INSTANTIATE_TEST_SUITE_P(Representatives, DomainsAgree,
                         ::testing::Values("sum", "second_max", "average",
                                           "is_sorted", "count_102",
                                           "max_sum_zeros", "count_run1"),
                         [](const auto &Info) { return Info.param; });

TEST(MaterializeUpd, AgreesWithTabulatedUpd) {
  // Evaluating the materialized nested-ite upd on concrete Delta values
  // must match the executor's table-based application.
  const lang::SerialProgram *P = lang::findBenchmark("count_102");
  ParallelPlan Plan = planFor("count_102");
  std::vector<ExprRef> Upd = materializeUpdExprs(*P, Plan);

  ConcretePolicy Pol;
  PlanExecutor<ConcretePolicy> Exec(*P, Plan, Pol);
  Rng R(77);
  for (int Trial = 0; Trial != 50; ++Trial) {
    // Random worker summary and carry state.
    WorkerResult<ConcretePolicy> W;
    W.Found = 1;
    W.Boundary = 2;
    size_t NV = Plan.Cond.numValuations();
    W.CtrlCur.resize(NV);
    W.Mode.resize(NV);
    W.Arg.resize(NV);
    DomainEnv<ConcretePolicy> Env;
    for (size_t V = 0; V != NV; ++V) {
      W.CtrlCur[V] = {static_cast<int64_t>(R.next() % 2)};
      W.Mode[V] = {static_cast<int64_t>(R.next() % 3)};
      W.Arg[V] = {R.range(-3, 3)};
      Env.emplace("D_ctrl" + std::to_string(V) + "_0",
                  DomainValue<ConcretePolicy>::scalar(W.CtrlCur[V][0]));
      Env.emplace("D_mode" + std::to_string(V) + "_0",
                  DomainValue<ConcretePolicy>::scalar(W.Mode[V][0]));
      Env.emplace("D_arg" + std::to_string(V) + "_0",
                  DomainValue<ConcretePolicy>::scalar(W.Arg[V][0]));
    }
    lang::StateVec<ConcretePolicy> C;
    C.push_back(DomainValue<ConcretePolicy>::scalar(
        static_cast<int64_t>(R.next() % 2)));     // q
    C.push_back(DomainValue<ConcretePolicy>::scalar(R.range(0, 9))); // cnt
    Env.emplace("q", C[0]);
    Env.emplace("cnt", C[1]);

    lang::StateVec<ConcretePolicy> Tab = Exec.applyUpd(C, W);
    for (size_t I = 0; I != Upd.size(); ++I)
      EXPECT_EQ(evalExpr(Upd[I], Env, Pol).Sc, Tab[I].Sc)
          << "field " << I << " trial " << Trial;
  }
}

} // namespace
