//===- tests/synth_condprefix_test.cpp - Stage-3 construction tests -------==//

#include "lang/Benchmarks.h"
#include "synth/CondPrefix.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::ir;
using namespace grassp::synth;

namespace {

ExprRef pcEq(int64_t C) {
  return eq(var(lang::inputVarName(), TypeKind::Int), constInt(C));
}

TEST(CondPrefix, Count102WithBoundary2) {
  const lang::SerialProgram *P = lang::findBenchmark("count_102");
  std::string Why;
  std::optional<CondPrefixInfo> Info = buildCondPrefix(*P, pcEq(2), &Why);
  ASSERT_TRUE(Info.has_value()) << Why;
  // Control = the FST state q with valuations {0, 1}; accumulator = cnt.
  ASSERT_EQ(Info->CtrlFields.size(), 1u);
  EXPECT_EQ(P->State.field(Info->CtrlFields[0]).Name, "q");
  EXPECT_EQ(Info->numValuations(), 2u);
  ASSERT_EQ(Info->AccFields.size(), 1u);
  EXPECT_EQ(P->State.field(Info->AccFields[0]).Name, "cnt");
  EXPECT_EQ(Info->AccFlavors[0], AccFlavor::Plus);
}

TEST(CondPrefix, MaxDistOnesDemotesOkStyleFields) {
  const lang::SerialProgram *P = lang::findBenchmark("max_dist_ones");
  std::optional<CondPrefixInfo> Info = buildCondPrefix(*P, pcEq(1));
  ASSERT_TRUE(Info.has_value());
  // seen1 is control; dist and best are accumulators (+ and max).
  ASSERT_EQ(Info->CtrlFields.size(), 1u);
  EXPECT_EQ(P->State.field(Info->CtrlFields[0]).Name, "seen1");
  ASSERT_EQ(Info->AccFields.size(), 2u);
  EXPECT_EQ(Info->AccFlavors[0], AccFlavor::Plus); // dist
  EXPECT_EQ(Info->AccFlavors[1], AccFlavor::Max);  // best
}

TEST(CondPrefix, RejectsBagState) {
  const lang::SerialProgram *P = lang::findBenchmark("count_distinct");
  std::string Why;
  EXPECT_FALSE(buildCondPrefix(*P, pcEq(0), &Why).has_value());
  EXPECT_EQ(Why, "bag-typed state");
}

TEST(CondPrefix, RejectsNonAtomPrefixCond) {
  const lang::SerialProgram *P = lang::findBenchmark("count_102");
  std::string Why;
  ExprRef Bad = gt(var(lang::inputVarName(), TypeKind::Int), constInt(0));
  EXPECT_FALSE(buildCondPrefix(*P, Bad, &Why).has_value());
}

TEST(CondPrefix, SumOfElementsHasNoControl) {
  // "sum" has a single arithmetic accumulator and no finite control, so
  // the construction must fail cleanly.
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  std::string Why;
  EXPECT_FALSE(buildCondPrefix(*P, pcEq(0), &Why).has_value());
  EXPECT_EQ(Why, "no finite-control fields");
}

TEST(CondPrefix, MaterializedUpdMentionsDeltaVars) {
  const lang::SerialProgram *P = lang::findBenchmark("count_102");
  std::optional<CondPrefixInfo> Info = buildCondPrefix(*P, pcEq(2));
  ASSERT_TRUE(Info.has_value());
  ParallelPlan Plan;
  Plan.Kind = Scenario::CondPrefixSummary;
  Plan.Cond = *Info;
  std::vector<ExprRef> Upd = materializeUpdExprs(*P, Plan);
  ASSERT_EQ(Upd.size(), 2u);
  // The paper notes most synthesized upd functions are nested ite terms.
  std::map<std::string, TypeKind> Vars;
  collectVars(Upd[1], Vars); // cnt update
  bool MentionsDelta = false;
  for (const auto &KV : Vars)
    MentionsDelta |= KV.first.rfind("D_", 0) == 0;
  EXPECT_TRUE(MentionsDelta);
}

TEST(CondPrefix, CtrlStepsDependOnlyOnInput) {
  const lang::SerialProgram *P = lang::findBenchmark("count_10203");
  std::optional<CondPrefixInfo> Info = buildCondPrefix(*P, pcEq(3));
  ASSERT_TRUE(Info.has_value());
  EXPECT_EQ(Info->numValuations(), 3u); // q in {0, 1, 2}
  for (const auto &PerV : Info->CtrlStep)
    for (const ExprRef &E : PerV) {
      std::map<std::string, TypeKind> Vars;
      collectVars(E, Vars);
      for (const auto &KV : Vars)
        EXPECT_EQ(KV.first, lang::inputVarName());
    }
}

} // namespace
