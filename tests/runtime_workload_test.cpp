//===- tests/runtime_workload_test.cpp - Workload file ingestion ----------==//
//
// The hardened loadWorkloadFile contract over the malformed-file corpus
// in tests/data/: every corruption class is rejected with a typed
// WorkloadParseError carrying file:line, good files (headered, bare,
// CRLF, empty) load exactly, and the header round-trips what the oracle
// writes.
//
//===----------------------------------------------------------------------===//

#include "runtime/SegmentSource.h"
#include "runtime/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace grassp::runtime;

namespace {

std::string corpus(const char *Name) {
  return std::string(GRASSP_TEST_DATA_DIR) + "/" + Name;
}

/// Loads an expected-bad corpus file and returns the caught error.
WorkloadParseError loadBad(const char *Name) {
  try {
    loadWorkloadFile(corpus(Name));
  } catch (const WorkloadParseError &E) {
    return E;
  }
  ADD_FAILURE() << Name << " parsed without error";
  return WorkloadParseError("", 0, "");
}

TEST(WorkloadFile, GoodFilesLoadExactly) {
  EXPECT_EQ(loadWorkloadFile(corpus("good_headered.txt")),
            (std::vector<int64_t>{1, -2, 3}));
  EXPECT_EQ(loadWorkloadFile(corpus("good_bare.txt")),
            (std::vector<int64_t>{5, 6, 7}));
  EXPECT_TRUE(loadWorkloadFile(corpus("good_empty.txt")).empty());
  // Windows line endings are tolerated everywhere.
  EXPECT_EQ(loadWorkloadFile(corpus("good_crlf.txt")),
            (std::vector<int64_t>{1, -7}));
}

TEST(WorkloadFile, TruncationIsDetectedByTheHeaderCount) {
  WorkloadParseError E = loadBad("truncated.txt");
  EXPECT_EQ(E.line(), 0u); // file-level: noticed at EOF, not one line.
  EXPECT_NE(E.reason().find("count mismatch"), std::string::npos)
      << E.what();
  EXPECT_NE(E.reason().find("truncated"), std::string::npos) << E.what();
}

TEST(WorkloadFile, MalformedHeadersAreRejectedOnLineOne) {
  EXPECT_EQ(loadBad("bad_header_count.txt").line(), 1u);
  // A comment line that is not the canonical header is refused rather
  // than skipped: silently ignoring it would hide a corrupted header.
  EXPECT_EQ(loadBad("bad_header_tag.txt").line(), 1u);
}

TEST(WorkloadFile, ElementCorruptionsCarryTheOffendingLine) {
  EXPECT_EQ(loadBad("overflow.txt").line(), 2u);
  EXPECT_NE(loadBad("overflow.txt").reason().find("int64"),
            std::string::npos);
  EXPECT_EQ(loadBad("not_a_number.txt").line(), 2u);
  EXPECT_EQ(loadBad("trailing_junk.txt").line(), 2u);
  EXPECT_EQ(loadBad("blank_line.txt").line(), 2u);
}

TEST(WorkloadFile, MissingFileIsAFileLevelError) {
  WorkloadParseError E = loadBad("no_such_file.txt");
  EXPECT_EQ(E.line(), 0u);
  EXPECT_NE(E.file().find("no_such_file.txt"), std::string::npos);
}

TEST(WorkloadFile, WhatFormatsFileLineReason) {
  WorkloadParseError E = loadBad("overflow.txt");
  std::string Expect = E.file() + ":2: " + E.reason();
  EXPECT_EQ(std::string(E.what()), Expect);
}

TEST(WorkloadFile, HeaderRoundTripsThroughTheLoader) {
  EXPECT_EQ(workloadFileHeader(42), "# grassp-workload 42");
  const std::string Path =
      ::testing::TempDir() + "grassp_workload_roundtrip.txt";
  std::vector<int64_t> Vals = {0, -1, 9223372036854775807LL,
                               -9223372036854775807LL - 1};
  {
    std::ofstream Out(Path);
    Out << workloadFileHeader(Vals.size()) << '\n';
    for (int64_t V : Vals)
      Out << V << '\n';
  }
  EXPECT_EQ(loadWorkloadFile(Path), Vals);
  std::remove(Path.c_str());
}

/// Writes \p Body to a temp file and returns its path.
std::string writeTemp(const char *Name, const std::string &Body) {
  std::string Path = ::testing::TempDir() + Name;
  std::ofstream Out(Path, std::ios::binary);
  Out << Body;
  return Path;
}

TEST(WorkloadFile, HeaderOverMaxElemsIsATypedErrorBeforeAllocation) {
  // A header declaring an absurd count must be rejected by the
  // --max-elems guard as a parse error — not by std::bad_alloc from a
  // quadrillion-element reserve.
  const std::string Path = writeTemp(
      "grassp_workload_hugeheader.txt",
      "# grassp-workload 1000000000000000\n1\n2\n");
  try {
    loadWorkloadFile(Path, /*MaxElems=*/100);
    ADD_FAILURE() << "oversized header count parsed without error";
  } catch (const WorkloadParseError &E) {
    EXPECT_EQ(E.line(), 1u);
    EXPECT_NE(E.reason().find("--max-elems"), std::string::npos)
        << E.what();
  }
  std::remove(Path.c_str());
}

TEST(WorkloadFile, HugeHeaderWithoutCapDoesNotPreallocate) {
  // Without a cap the reserve is clamped by the file's byte size, so a
  // lying header ends in an ordinary count-mismatch error, not OOM.
  const std::string Path = writeTemp(
      "grassp_workload_lyingheader.txt",
      "# grassp-workload 1000000000000000\n1\n2\n");
  try {
    loadWorkloadFile(Path);
    ADD_FAILURE() << "lying header count parsed without error";
  } catch (const WorkloadParseError &E) {
    EXPECT_NE(E.reason().find("count mismatch"), std::string::npos)
        << E.what();
  }
  std::remove(Path.c_str());
}

TEST(WorkloadFile, BareFileOverMaxElemsIsRejected) {
  const std::string Path =
      writeTemp("grassp_workload_barecap.txt", "1\n2\n3\n4\n");
  EXPECT_EQ(loadWorkloadFile(Path, 4), (std::vector<int64_t>{1, 2, 3, 4}));
  try {
    loadWorkloadFile(Path, 3);
    ADD_FAILURE() << "over-cap bare file parsed without error";
  } catch (const WorkloadParseError &E) {
    EXPECT_NE(E.reason().find("--max-elems"), std::string::npos)
        << E.what();
  }
  std::remove(Path.c_str());
}

TEST(SegmentSourceFile, ZeroElementFilesAreInvalidArgumentWithThePath) {
  // Sources reject empty workloads by contract (partition() does the
  // same); the error is typed and names the offending file.
  const std::string Text =
      writeTemp("grassp_source_empty.txt", "# grassp-workload 0\n");
  const std::string Bin = ::testing::TempDir() + "grassp_source_empty.bin";
  {
    BinaryWorkloadWriter W(Bin);
    W.close(); // zero elements, valid header.
  }
  for (SourceKind K : {SourceKind::Mmap, SourceKind::Chunked}) {
    const std::string &Path = K == SourceKind::Mmap ? Bin : Text;
    try {
      openSegmentSource(Path, K);
      ADD_FAILURE() << "zero-element source opened under kind "
                    << sourceKindName(K);
    } catch (const std::invalid_argument &E) {
      EXPECT_NE(std::string(E.what()).find(Path), std::string::npos)
          << E.what();
      EXPECT_NE(std::string(E.what()).find("zero elements"),
                std::string::npos)
          << E.what();
    }
  }
  // The chunked reader accepts binary files too; same contract.
  EXPECT_THROW(openSegmentSource(Bin, SourceKind::Chunked),
               std::invalid_argument);
  std::remove(Text.c_str());
  std::remove(Bin.c_str());
}

} // namespace
