//===- tests/runtime_workload_test.cpp - Workload file ingestion ----------==//
//
// The hardened loadWorkloadFile contract over the malformed-file corpus
// in tests/data/: every corruption class is rejected with a typed
// WorkloadParseError carrying file:line, good files (headered, bare,
// CRLF, empty) load exactly, and the header round-trips what the oracle
// writes.
//
//===----------------------------------------------------------------------===//

#include "runtime/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace grassp::runtime;

namespace {

std::string corpus(const char *Name) {
  return std::string(GRASSP_TEST_DATA_DIR) + "/" + Name;
}

/// Loads an expected-bad corpus file and returns the caught error.
WorkloadParseError loadBad(const char *Name) {
  try {
    loadWorkloadFile(corpus(Name));
  } catch (const WorkloadParseError &E) {
    return E;
  }
  ADD_FAILURE() << Name << " parsed without error";
  return WorkloadParseError("", 0, "");
}

TEST(WorkloadFile, GoodFilesLoadExactly) {
  EXPECT_EQ(loadWorkloadFile(corpus("good_headered.txt")),
            (std::vector<int64_t>{1, -2, 3}));
  EXPECT_EQ(loadWorkloadFile(corpus("good_bare.txt")),
            (std::vector<int64_t>{5, 6, 7}));
  EXPECT_TRUE(loadWorkloadFile(corpus("good_empty.txt")).empty());
  // Windows line endings are tolerated everywhere.
  EXPECT_EQ(loadWorkloadFile(corpus("good_crlf.txt")),
            (std::vector<int64_t>{1, -7}));
}

TEST(WorkloadFile, TruncationIsDetectedByTheHeaderCount) {
  WorkloadParseError E = loadBad("truncated.txt");
  EXPECT_EQ(E.line(), 0u); // file-level: noticed at EOF, not one line.
  EXPECT_NE(E.reason().find("count mismatch"), std::string::npos)
      << E.what();
  EXPECT_NE(E.reason().find("truncated"), std::string::npos) << E.what();
}

TEST(WorkloadFile, MalformedHeadersAreRejectedOnLineOne) {
  EXPECT_EQ(loadBad("bad_header_count.txt").line(), 1u);
  // A comment line that is not the canonical header is refused rather
  // than skipped: silently ignoring it would hide a corrupted header.
  EXPECT_EQ(loadBad("bad_header_tag.txt").line(), 1u);
}

TEST(WorkloadFile, ElementCorruptionsCarryTheOffendingLine) {
  EXPECT_EQ(loadBad("overflow.txt").line(), 2u);
  EXPECT_NE(loadBad("overflow.txt").reason().find("int64"),
            std::string::npos);
  EXPECT_EQ(loadBad("not_a_number.txt").line(), 2u);
  EXPECT_EQ(loadBad("trailing_junk.txt").line(), 2u);
  EXPECT_EQ(loadBad("blank_line.txt").line(), 2u);
}

TEST(WorkloadFile, MissingFileIsAFileLevelError) {
  WorkloadParseError E = loadBad("no_such_file.txt");
  EXPECT_EQ(E.line(), 0u);
  EXPECT_NE(E.file().find("no_such_file.txt"), std::string::npos);
}

TEST(WorkloadFile, WhatFormatsFileLineReason) {
  WorkloadParseError E = loadBad("overflow.txt");
  std::string Expect = E.file() + ":2: " + E.reason();
  EXPECT_EQ(std::string(E.what()), Expect);
}

TEST(WorkloadFile, HeaderRoundTripsThroughTheLoader) {
  EXPECT_EQ(workloadFileHeader(42), "# grassp-workload 42");
  const std::string Path =
      ::testing::TempDir() + "grassp_workload_roundtrip.txt";
  std::vector<int64_t> Vals = {0, -1, 9223372036854775807LL,
                               -9223372036854775807LL - 1};
  {
    std::ofstream Out(Path);
    Out << workloadFileHeader(Vals.size()) << '\n';
    for (int64_t V : Vals)
      Out << V << '\n';
  }
  EXPECT_EQ(loadWorkloadFile(Path), Vals);
  std::remove(Path.c_str());
}

} // namespace
