//===- tests/runtime_stream_test.cpp - Out-of-core sources + MergeTree ----==//
//
// Differential coverage for ROADMAP item 3: (1) every SegmentSource
// kind (in-memory, mmap'ed binary, chunked binary, chunked text) yields
// bit-identical fold results on every execution tier and through the
// parallel runner, with source chunk boundaries deliberately misaligned
// from the plan's segment shapes; (2) the MergeTree's incremental
// append/replace answers match a from-scratch refold of the reference
// interpreter after EVERY update, across randomized edit sequences and
// the adversarial chunk geometries (all size-1 chunks, one giant chunk,
// coprime boundary mismatch).
//
// The soundness argument for the tree lives in MergeTree.h; this file
// is the experimental check that the certified merge really is
// associative on fold images for every benchmark family we ship.
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "runtime/Kernels.h"
#include "runtime/MergeTree.h"
#include "runtime/Runner.h"
#include "runtime/SegmentSource.h"
#include "runtime/Workload.h"
#include "support/Random.h"
#include "synth/Grassp.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace grassp;
using namespace grassp::runtime;

namespace {

/// Benchmarks spanning every plan family: NoPrefix scalar (sum,
/// delta_max_min), ConstPrefix (is_sorted), conditional-prefix
/// summaries (count_102), and the refold/bag path (count_distinct).
const char *const Families[] = {"sum", "delta_max_min", "is_sorted",
                                "count_102", "count_distinct"};

struct Compiled {
  const lang::SerialProgram *P;
  synth::SynthesisResult R;
  std::unique_ptr<CompiledPlan> Plan;
  std::unique_ptr<CompiledProgram> Prog;
};

/// Synthesizes (cached across tests — Z3 is not free) and compiles \p
/// Name with the given tier toggles.
Compiled compile(const char *Name, bool Specialize = true,
                 bool Native = true) {
  static std::map<std::string, synth::SynthesisResult> Cache;
  Compiled C;
  C.P = lang::findBenchmark(Name);
  EXPECT_NE(C.P, nullptr) << Name;
  auto It = Cache.find(Name);
  if (It == Cache.end()) {
    It = Cache.emplace(Name, synth::synthesize(*C.P)).first;
    EXPECT_TRUE(It->second.Success) << Name;
  }
  C.R = It->second;
  C.Plan.reset(new CompiledPlan(*C.P, C.R.Plan, Specialize, Native));
  C.Prog.reset(new CompiledProgram(*C.P, Specialize, Native));
  return C;
}

/// Ground truth: the tree-walking interpreter over the flat data.
int64_t refold(const lang::SerialProgram &P,
               const std::vector<int64_t> &Flat) {
  return lang::runSerial(P, Flat);
}

/// Carves \p Data into random non-empty chunks.
std::vector<std::vector<int64_t>> randomChunks(
    const std::vector<int64_t> &Data, Rng &R) {
  std::vector<std::vector<int64_t>> Chunks;
  size_t I = 0;
  while (I != Data.size()) {
    size_t Len = 1 + R.next() % 9;
    if (Len > Data.size() - I)
      Len = Data.size() - I;
    Chunks.emplace_back(Data.begin() + I, Data.begin() + I + Len);
    I += Len;
  }
  return Chunks;
}

std::vector<int64_t> flatten(const std::vector<std::vector<int64_t>> &Cs) {
  std::vector<int64_t> Flat;
  for (const std::vector<int64_t> &C : Cs)
    Flat.insert(Flat.end(), C.begin(), C.end());
  return Flat;
}

/// Appends every chunk, checking the root after each append; then
/// applies \p Edits random single-chunk replacements, checking after
/// each one. Every check is against a full interpreter refold.
void differentialStream(const Compiled &C,
                        std::vector<std::vector<int64_t>> Chunks,
                        unsigned Edits, uint64_t Seed) {
  Rng R(Seed);
  MergeTree Tree(*C.Plan);
  std::vector<std::vector<int64_t>> Current;
  for (const std::vector<int64_t> &Chunk : Chunks) {
    Tree.append({Chunk.data(), Chunk.size()});
    Current.push_back(Chunk);
    ASSERT_EQ(Tree.query(), refold(*C.P, flatten(Current)))
        << C.P->Name << " after append of chunk " << Current.size() - 1;
  }
  for (unsigned E = 0; E != Edits; ++E) {
    size_t I = R.next() % Current.size();
    // Replacements may change the chunk's length (including down to 1).
    size_t Len = 1 + R.next() % 7;
    std::vector<int64_t> Repl(Len);
    for (int64_t &V : Repl)
      V = static_cast<int64_t>(R.next() % 7) - 3;
    Tree.replace(I, {Repl.data(), Repl.size()});
    Current[I] = std::move(Repl);
    ASSERT_EQ(Tree.query(), refold(*C.P, flatten(Current)))
        << C.P->Name << " after replace of chunk " << I;
  }
}

TEST(MergeTree, RandomizedAppendReplaceMatchesRefoldOnEveryTier) {
  // Tier toggles steer CompiledPlan's worker path: (specialized or
  // native), native-only, and the pure-VM fallback.
  const bool Toggles[][2] = {{true, true}, {false, true}, {false, false}};
  for (const char *Name : Families) {
    std::vector<int64_t> Data =
        generateWorkload(*lang::findBenchmark(Name), 400, 11);
    for (const bool *T : Toggles) {
      Compiled C = compile(Name, T[0], T[1]);
      Rng R(101);
      differentialStream(C, randomChunks(Data, R), /*Edits=*/25,
                         /*Seed=*/202);
    }
  }
}

TEST(MergeTree, AdversarialChunkShapes) {
  for (const char *Name : Families) {
    Compiled C = compile(Name);
    std::vector<int64_t> Data =
        generateWorkload(*C.P, 127, 23); // odd count: worst tree shape.

    // Every element its own chunk: maximal tree depth, every internal
    // node's repair prefix is a single element.
    std::vector<std::vector<int64_t>> Ones;
    for (int64_t V : Data)
      Ones.push_back({V});
    differentialStream(C, Ones, /*Edits=*/15, /*Seed=*/303);

    // One giant chunk: the degenerate single-leaf tree.
    differentialStream(C, {Data}, /*Edits=*/5, /*Seed=*/404);

    // Two-chunk split at position 1: the rightmost-state repair has a
    // one-element left neighbour.
    std::vector<std::vector<int64_t>> Lop = {
        {Data[0]}, std::vector<int64_t>(Data.begin() + 1, Data.end())};
    differentialStream(C, Lop, /*Edits=*/10, /*Seed=*/505);
  }
}

TEST(MergeTree, RejectsEmptyChunksAndEmptyQueries) {
  Compiled C = compile("sum");
  MergeTree Tree(*C.Plan);
  EXPECT_THROW(Tree.query(), std::logic_error);
  EXPECT_THROW(Tree.append({nullptr, 0}), std::invalid_argument);
  int64_t V = 4;
  Tree.append({&V, 1});
  EXPECT_EQ(Tree.query(), 4);
  EXPECT_THROW(Tree.replace(1, {&V, 1}), std::out_of_range);
}

/// Writes \p Data as a headered text workload and returns the path.
std::string writeTextWorkload(const char *Name,
                              const std::vector<int64_t> &Data) {
  std::string Path = ::testing::TempDir() + Name;
  std::ofstream Out(Path);
  Out << workloadFileHeader(Data.size()) << '\n';
  for (int64_t V : Data)
    Out << V << '\n';
  return Path;
}

TEST(SegmentSourceDiff, AllKindsAllTiersBitIdentical) {
  for (const char *Name : Families) {
    Compiled C = compile(Name);
    std::vector<int64_t> Data = generateWorkload(*C.P, 1000, 31);
    int64_t Want = refold(*C.P, Data);

    std::string Text = writeTextWorkload("grassp_stream_diff.txt", Data);
    std::string Bin = ::testing::TempDir() + "grassp_stream_diff.bin";
    convertTextToBinary(Text, Bin);

    // Chunk geometry coprime with the element count so chunk boundaries
    // land mid-stream everywhere (the segment/chunk mismatch case).
    SourceOptions Opts;
    Opts.ChunkElems = 77;

    std::vector<std::unique_ptr<SegmentSource>> Srcs;
    Srcs.push_back(openSegmentSource(Text, SourceKind::Memory, Opts));
    Srcs.push_back(openSegmentSource(Bin, SourceKind::Mmap, Opts));
    Srcs.push_back(openSegmentSource(Bin, SourceKind::Chunked, Opts));
    Srcs.push_back(openSegmentSource(Text, SourceKind::Chunked, Opts));

    const ExecTier All[] = {ExecTier::PerElement, ExecTier::LoopVM,
                            ExecTier::Native, ExecTier::Specialized};
    for (const std::unique_ptr<SegmentSource> &S : Srcs) {
      ASSERT_EQ(S->elements(), Data.size());
      for (ExecTier T : All) {
        if (!C.Prog->tierAvailable(T))
          continue;
        EXPECT_EQ(C.Prog->runSerialSourceTier(T, *S), Want)
            << Name << " kind=" << S->kind() << " tier=" << execTierName(T);
      }
      // Parallel runner over the source's own (misaligned) chunks.
      ParallelRunResult PR = runParallel(*C.Plan, *S);
      EXPECT_EQ(PR.Output, Want) << Name << " kind=" << S->kind();
      // MergeTree replay of the same chunks.
      MergeTree Tree(*C.Plan);
      std::unique_ptr<SegmentCursor> Cur = S->cursor();
      for (size_t I = 0; I != S->chunkCount(); ++I)
        Tree.append(Cur->chunk(I));
      EXPECT_EQ(Tree.query(), Want) << Name << " kind=" << S->kind();
    }
    std::remove(Text.c_str());
    std::remove(Bin.c_str());
  }
}

TEST(SegmentSourceDiff, BinaryRoundTripAndWriterContract) {
  std::vector<int64_t> Data = {0, -1, 9223372036854775807LL,
                               -9223372036854775807LL - 1, 42};
  std::string Bin = ::testing::TempDir() + "grassp_stream_rt.bin";
  {
    BinaryWorkloadWriter W(Bin);
    W.append(Data);
    W.close();
    EXPECT_EQ(W.written(), Data.size());
  }
  EXPECT_TRUE(isBinaryWorkloadFile(Bin));
  std::unique_ptr<SegmentSource> S =
      openSegmentSource(Bin, SourceKind::Auto);
  EXPECT_STREQ(S->kind(), "mmap"); // Auto resolves binary files to mmap.
  ASSERT_EQ(S->elements(), Data.size());
  std::unique_ptr<SegmentCursor> Cur = S->cursor();
  std::vector<int64_t> Back;
  for (size_t I = 0; I != S->chunkCount(); ++I) {
    SegmentView V = Cur->chunk(I);
    Back.insert(Back.end(), V.Data, V.Data + V.Size);
  }
  EXPECT_EQ(Back, Data);
  // A truncated binary file is a typed parse error, not garbage data.
  std::ofstream(Bin, std::ios::binary | std::ios::trunc)
      .write("GRSPWB01junk", 12);
  EXPECT_THROW(openSegmentSource(Bin, SourceKind::Mmap),
               WorkloadParseError);
  std::remove(Bin.c_str());
}

TEST(SegmentSourceDiff, MaxElemsGuardsEveryKind) {
  std::vector<int64_t> Data(100, 7);
  std::string Text = writeTextWorkload("grassp_stream_cap.txt", Data);
  std::string Bin = ::testing::TempDir() + "grassp_stream_cap.bin";
  convertTextToBinary(Text, Bin);
  for (SourceKind K : {SourceKind::Memory, SourceKind::Mmap,
                       SourceKind::Chunked}) {
    const std::string &Path = K == SourceKind::Memory ? Text : Bin;
    EXPECT_NO_THROW(openSegmentSource(Path, K, SourceOptions(), 100));
    EXPECT_ANY_THROW(openSegmentSource(Path, K, SourceOptions(), 99));
  }
  EXPECT_THROW(convertTextToBinary(Text, Bin, 50), WorkloadParseError);
  std::remove(Text.c_str());
  std::remove(Bin.c_str());
}

} // namespace
