//===- tests/support_signal_test.cpp - Signal source drain semantics ------==//
//
// Fork-based tests for the process-wide signal source (support/Cancel.h):
// once drain is armed, the FIRST SIGTERM fires only the drain token (the
// child exits 0 through its own clean path), SIGINT still hard-fires the
// root with exit 130, a SECOND SIGTERM hard-fires with 143, and SIGPIPE
// is ignored once any component asked for it. Each scenario runs in a
// forked child because the handlers and the watcher thread are
// process-global state that must not leak into other tests.
//
//===----------------------------------------------------------------------===//

#include "support/Cancel.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>

#include <sys/wait.h>
#include <unistd.h>

using namespace grassp;

namespace {

/// Forks; the child runs \p Body (which must _exit) while the parent
/// feeds it \p Sigs with small gaps, then reaps and returns the wait
/// status.
template <typename Fn>
int runChildWithSignals(Fn Body, std::initializer_list<int> Sigs) {
  // A pipe tells the parent the child finished arming its handlers —
  // signalling earlier would race the install.
  int Ready[2];
  EXPECT_EQ(::pipe(Ready), 0);
  pid_t Pid = ::fork();
  if (Pid == 0) {
    ::close(Ready[0]);
    Body(Ready[1]);
    ::_exit(99); // Body must not return.
  }
  ::close(Ready[1]);
  char B;
  EXPECT_EQ(::read(Ready[0], &B, 1), 1);
  ::close(Ready[0]);
  for (int Sig : Sigs) {
    ::usleep(100000); // let the watcher thread notice the previous one.
    ::kill(Pid, Sig);
  }
  int St = 0;
  EXPECT_EQ(::waitpid(Pid, &St, 0), Pid);
  return St;
}

void armAndSpin(int ReadyFd) {
  CancelToken Root = installSignalSource();
  CancelToken Drain = installDrainSignalSource();
  char B = 'r';
  (void)!::write(ReadyFd, &B, 1);
  Deadline Give = Deadline::after(15.0);
  while (!Give.expired()) {
    if (Root.cancelled())
      ::_exit(signalExitCode()); // hard fire: shell-style 128+sig.
    if (Drain.cancelled())
      ::_exit(0); // graceful drain: clean exit.
    ::usleep(5000);
  }
  ::_exit(98); // neither token fired.
}

} // namespace

TEST(SignalDrain, FirstSigtermDrainsCleanExitZero) {
  int St = runChildWithSignals(armAndSpin, {SIGTERM});
  ASSERT_TRUE(WIFEXITED(St)) << St;
  EXPECT_EQ(WEXITSTATUS(St), 0);
}

TEST(SignalDrain, SigintStillHardFiresWith130) {
  int St = runChildWithSignals(armAndSpin, {SIGINT});
  ASSERT_TRUE(WIFEXITED(St)) << St;
  EXPECT_EQ(WEXITSTATUS(St), 130);
}

TEST(SignalDrain, SecondSigtermHardFiresWith143) {
  // The child ignores the drain token, simulating a service stuck mid
  // drain; the second SIGTERM must hard-fire the root.
  int St = runChildWithSignals(
      [](int ReadyFd) {
        CancelToken Root = installSignalSource();
        (void)installDrainSignalSource();
        char B = 'r';
        (void)!::write(ReadyFd, &B, 1);
        Deadline Give = Deadline::after(15.0);
        while (!Give.expired()) {
          if (Root.cancelled())
            ::_exit(signalExitCode());
          ::usleep(5000);
        }
        ::_exit(98);
      },
      {SIGTERM, SIGTERM});
  ASSERT_TRUE(WIFEXITED(St)) << St;
  EXPECT_EQ(WEXITSTATUS(St), 143);
}

TEST(SignalDrain, WithoutDrainArmedSigtermKeepsHardSemantics) {
  int St = runChildWithSignals(
      [](int ReadyFd) {
        CancelToken Root = installSignalSource();
        char B = 'r';
        (void)!::write(ReadyFd, &B, 1);
        Deadline Give = Deadline::after(15.0);
        while (!Give.expired()) {
          if (Root.cancelled())
            ::_exit(signalExitCode());
          ::usleep(5000);
        }
        ::_exit(98);
      },
      {SIGTERM});
  ASSERT_TRUE(WIFEXITED(St)) << St;
  EXPECT_EQ(WEXITSTATUS(St), 143);
}

TEST(SignalDrain, SigpipeIsIgnoredAfterAnyComponentAsks) {
  int St = runChildWithSignals(
      [](int ReadyFd) {
        ignoreSigpipe();
        char B = 'r';
        (void)!::write(ReadyFd, &B, 1);
        int P[2];
        if (::pipe(P) != 0)
          ::_exit(97);
        ::close(P[0]); // no reader: a write would raise SIGPIPE if armed.
        ssize_t N = ::write(P[1], "x", 1);
        ::_exit(N < 0 && errno == EPIPE ? 0 : 96);
      },
      {});
  ASSERT_TRUE(WIFEXITED(St)) << St;
  EXPECT_EQ(WEXITSTATUS(St), 0);
}
