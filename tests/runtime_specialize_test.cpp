//===- tests/runtime_specialize_test.cpp - Kernel specializer coverage ----===//
//
// Pins which Table-1 step shapes the kernel specializer recognizes, how
// CompiledProgram selects its execution tier, the --no-specialize
// ablation path, and state-level equality between the specialized fold
// and the per-element reference on random segments.
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "runtime/Kernels.h"
#include "runtime/Specialize.h"
#include "runtime/Workload.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace grassp;
using runtime::CompiledProgram;
using runtime::ExecTier;
using runtime::SpecializedStep;

namespace {

const lang::SerialProgram &bench(const std::string &Name) {
  const lang::SerialProgram *P = lang::findBenchmark(Name);
  EXPECT_NE(P, nullptr) << Name;
  return *P;
}

TEST(Specialize, ExpectedBenchmarkFamilyMatches) {
  // The sum/count/min/max/guarded-accumulate/counted-extrema/second
  // family must specialize; programs with cross-field data flow or
  // position-dependent state must not.
  const std::set<std::string> MustMatch = {
      "sum",        "count",     "count_gt",  "sum_even",     "sum_gt",
      "min_elem",   "max_elem",  "max_abs",   "search",       "second_max",
      "delta_max_min", "average", "count_max", "count_min", "eq_zeros_ones"};
  const std::set<std::string> MustNotMatch = {
      "is_sorted",     "count_102",   "max_dist_ones",
      "alternating01", "count_run1",  "max_sum_zeros",
      "all_equal",     "zero_first_one_last"};
  for (const lang::SerialProgram &P : lang::allBenchmarks()) {
    if (P.State.hasBag())
      continue;
    std::optional<SpecializedStep> S = runtime::specializeStep(P);
    if (MustMatch.count(P.Name))
      EXPECT_TRUE(S.has_value()) << P.Name << " should specialize";
    if (MustNotMatch.count(P.Name))
      EXPECT_FALSE(S.has_value()) << P.Name << " should NOT specialize";
    if (S)
      EXPECT_FALSE(S->describe().empty());
  }
}

TEST(Specialize, TierSelectionPrefersSpecialized) {
  CompiledProgram Sum(bench("sum"));
  EXPECT_EQ(Sum.tier(), ExecTier::Specialized);
  EXPECT_TRUE(Sum.tierAvailable(ExecTier::Specialized));
  EXPECT_TRUE(Sum.tierAvailable(ExecTier::LoopVM));
  EXPECT_TRUE(Sum.tierAvailable(ExecTier::PerElement));
  EXPECT_EQ(Sum.specializationInfo(), "s:add(in)");

  // Unspecializable steps fall to the jit-compiled native tier when a
  // host compiler exists, and to the loop VM otherwise (pinned exactly
  // via the --no-native ablation below).
  CompiledProgram Sorted(bench("is_sorted"));
  EXPECT_FALSE(Sorted.tierAvailable(ExecTier::Specialized));
  if (Sorted.tierAvailable(ExecTier::Native))
    EXPECT_EQ(Sorted.tier(), ExecTier::Native);
  else
    EXPECT_EQ(Sorted.tier(), ExecTier::LoopVM);

  CompiledProgram SortedNoJit(bench("is_sorted"), /*AllowSpecialize=*/true,
                              /*AllowNative=*/false);
  EXPECT_EQ(SortedNoJit.tier(), ExecTier::LoopVM);
  EXPECT_FALSE(SortedNoJit.tierAvailable(ExecTier::Native));
}

TEST(Specialize, NoSpecializeAblationFallsBackToLoopVM) {
  CompiledProgram Ablated(bench("sum"), /*AllowSpecialize=*/false,
                          /*AllowNative=*/false);
  EXPECT_EQ(Ablated.tier(), ExecTier::LoopVM);
  EXPECT_FALSE(Ablated.tierAvailable(ExecTier::Specialized));
  EXPECT_TRUE(Ablated.specializationInfo().empty());

  // The bag program's hash-set kernel is its semantics, not an
  // optimization: the ablation flag must not disable it.
  CompiledProgram Bag(bench("count_distinct"), /*AllowSpecialize=*/false);
  EXPECT_EQ(Bag.tier(), ExecTier::Specialized);
  EXPECT_EQ(Bag.specializationInfo(), "distinct(hash-set)");
}

TEST(Specialize, CoupledKernelsClaimTheirFields) {
  // count_max couples its extremum with its counter; the extremum field
  // must be handled by the counted kernel, not grabbed as a plain max
  // lane (which would leave the counter unmatchable).
  std::optional<SpecializedStep> S =
      runtime::specializeStep(bench("count_max"));
  ASSERT_TRUE(S.has_value());
  ASSERT_EQ(S->countedKernels().size(), 1u);
  EXPECT_TRUE(S->countedKernels()[0].IsMax);
  EXPECT_TRUE(S->lanes().empty());

  std::optional<SpecializedStep> S2 =
      runtime::specializeStep(bench("second_max"));
  ASSERT_TRUE(S2.has_value());
  ASSERT_EQ(S2->secondKernels().size(), 1u);
  EXPECT_TRUE(S2->secondKernels()[0].IsMax);
}

TEST(Specialize, SpecializedFoldMatchesPerElementStateExactly) {
  // Full-state (not just output) equality between the specialized fold
  // and the per-element tier on random segments, for every specializable
  // benchmark.
  Rng R(777);
  for (const lang::SerialProgram &P : lang::allBenchmarks()) {
    if (P.State.hasBag())
      continue;
    CompiledProgram CP(P);
    if (!CP.tierAvailable(ExecTier::Specialized))
      continue;
    for (unsigned Trial = 0; Trial != 20; ++Trial) {
      size_t N = R.bounded(200);
      std::vector<int64_t> Data =
          runtime::generateWorkload(P, N, R.next());
      runtime::SegmentView Seg{Data.data(), Data.size()};

      std::vector<int64_t> SpecState = CP.initialState();
      CP.foldSegmentTier(ExecTier::Specialized, SpecState, Seg);
      std::vector<int64_t> RefState = CP.initialState();
      CP.foldSegmentTier(ExecTier::PerElement, RefState, Seg);
      EXPECT_EQ(SpecState, RefState) << P.Name << " N=" << N;
    }
  }
}

TEST(Specialize, GuardedAndModuloLanesHandleNegativeInputs) {
  // sum_even uses in mod 2 == 0: Euclidean mod must classify negative
  // even/odd inputs correctly.
  const lang::SerialProgram &P = bench("sum_even");
  CompiledProgram CP(P);
  ASSERT_TRUE(CP.tierAvailable(ExecTier::Specialized));
  std::vector<int64_t> Data = {-4, -3, -2, -1, 0, 1, 2, 3};
  runtime::SegmentView Seg{Data.data(), Data.size()};
  std::vector<int64_t> S1 = CP.initialState(), S2 = CP.initialState();
  CP.foldSegmentTier(ExecTier::Specialized, S1, Seg);
  CP.foldSegmentTier(ExecTier::PerElement, S2, Seg);
  EXPECT_EQ(S1, S2);
  EXPECT_EQ(CP.runSerialTier(ExecTier::Specialized, {Seg}),
            lang::runSerial(P, Data));
}

} // namespace
