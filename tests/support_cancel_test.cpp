//===- tests/support_cancel_test.cpp - CancelToken/Deadline semantics -----==//
//
// The cooperative-cancellation contract every layer leans on: empty
// tokens are inert, cancel() propagates root->child (never child->root),
// deadlines compose earliest-wins down the chain, interruptible sleeps
// wake promptly, and onCancel/removeOnCancel give the
// "not-running-and-never-will" guarantee pool destructors need.
//
//===----------------------------------------------------------------------===//

#include "support/Cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace grassp;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

TEST(CancelToken, EmptyTokenIsInert) {
  CancelToken T;
  EXPECT_FALSE(T.valid());
  EXPECT_FALSE(T.cancelled());
  T.cancel(); // no-op, no crash.
  EXPECT_FALSE(T.cancelled());
  EXPECT_TRUE(T.deadline().isNever());
  EXPECT_EQ(T.onCancel([] {}), 0u);
  T.removeOnCancel(0);
  // An empty token's sleep is a plain sleep: full duration elapses.
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(T.sleepFor(0.01));
  EXPECT_GE(secondsSince(T0), 0.009);
}

TEST(CancelToken, CancelPropagatesToDescendantsNotAncestors) {
  CancelToken Root = CancelToken::root();
  CancelToken Child = Root.child();
  CancelToken Grandchild = Child.child();
  CancelToken Sibling = Root.child();

  // A child cancelled alone leaves its parent and siblings alive.
  Child.cancel();
  EXPECT_TRUE(Child.cancelled());
  EXPECT_TRUE(Grandchild.cancelled());
  EXPECT_FALSE(Root.cancelled());
  EXPECT_FALSE(Sibling.cancelled());

  // Root fires the whole tree, including children minted after the
  // sibling check above.
  CancelToken Late = Root.child();
  Root.cancel();
  EXPECT_TRUE(Root.cancelled());
  EXPECT_TRUE(Sibling.cancelled());
  EXPECT_TRUE(Late.cancelled());
}

TEST(CancelToken, ChildOfFiredParentIsBornCancelled) {
  CancelToken Root = CancelToken::root();
  Root.cancel();
  EXPECT_TRUE(Root.child().cancelled());
}

TEST(CancelToken, ChildOfEmptyTokenCarriesDeadline) {
  // The driver composes Opts.Token.child(TaskDeadline) without checking
  // whether a run token was ever supplied; child() of an empty token
  // must mint live state carrying just the deadline.
  CancelToken T = CancelToken().child(Deadline::after(1000.0));
  EXPECT_TRUE(T.valid());
  EXPECT_FALSE(T.cancelled());
  EXPECT_FALSE(T.deadline().isNever());
}

TEST(CancelToken, DeadlinesComposeEarliestWins) {
  CancelToken Root = CancelToken::root();
  CancelToken Outer = Root.child(Deadline::after(100.0));
  CancelToken Inner = Outer.child(Deadline::after(1000.0));
  // The inherited 100s bound beats the local 1000s one.
  EXPECT_LE(Inner.deadline().remainingSeconds(), 100.0);
  CancelToken Tighter = Outer.child(Deadline::after(0.5));
  EXPECT_LE(Tighter.deadline().remainingSeconds(), 0.5);
  // The tight grandchild deadline never leaks up.
  EXPECT_GT(Outer.deadline().remainingSeconds(), 50.0);
}

TEST(CancelToken, ExpiredDeadlineReportsCancelled) {
  CancelToken T = CancelToken::root().child(Deadline::after(-1.0));
  EXPECT_TRUE(T.cancelled());
  // Expiry is passive and local: the parent chain is untouched.
  CancelToken Root = CancelToken::root();
  CancelToken Dead = Root.child(Deadline::after(0.0));
  EXPECT_TRUE(Dead.cancelled());
  EXPECT_FALSE(Root.cancelled());
}

TEST(CancelToken, SleepForWakesOnCancel) {
  CancelToken T = CancelToken::root();
  auto T0 = std::chrono::steady_clock::now();
  std::thread Firer([&T] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    T.cancel();
  });
  // A 10-second sleep must return within ~the firing delay.
  EXPECT_FALSE(T.sleepFor(10.0));
  EXPECT_LT(secondsSince(T0), 5.0);
  Firer.join();
  // Sleeps on an already-fired token return immediately.
  auto T1 = std::chrono::steady_clock::now();
  EXPECT_FALSE(T.sleepFor(10.0));
  EXPECT_LT(secondsSince(T1), 1.0);
}

TEST(CancelToken, SleepForHonorsDeadline) {
  CancelToken T = CancelToken::root().child(Deadline::after(0.05));
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(T.sleepFor(10.0));
  EXPECT_LT(secondsSince(T0), 5.0);
}

TEST(CancelToken, OnCancelRunsExactlyOnce) {
  CancelToken T = CancelToken::root();
  std::atomic<int> Fired{0};
  uint64_t Id = T.onCancel([&Fired] { ++Fired; });
  EXPECT_NE(Id, 0u);
  EXPECT_EQ(Fired.load(), 0);
  T.cancel();
  EXPECT_EQ(Fired.load(), 1);
  T.cancel(); // idempotent: the callback does not re-run.
  EXPECT_EQ(Fired.load(), 1);
  // Registering on an already-fired token runs the callback inline.
  std::atomic<int> LateFired{0};
  T.onCancel([&LateFired] { ++LateFired; });
  EXPECT_EQ(LateFired.load(), 1);
}

TEST(CancelToken, RemoveOnCancelPreventsTheCallback) {
  CancelToken T = CancelToken::root();
  std::atomic<int> Fired{0};
  uint64_t Id = T.onCancel([&Fired] { ++Fired; });
  T.removeOnCancel(Id);
  T.cancel();
  EXPECT_EQ(Fired.load(), 0);
}

TEST(CancelToken, CallbacksReachChildrenThroughTheTree) {
  CancelToken Root = CancelToken::root();
  CancelToken Child = Root.child();
  std::atomic<int> Fired{0};
  Child.onCancel([&Fired] { ++Fired; });
  Root.cancel();
  EXPECT_EQ(Fired.load(), 1);
}

TEST(CancelToken, WaitCancelledForBoundsTheWait) {
  CancelToken T = CancelToken::root();
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(T.waitCancelledFor(0.02));
  EXPECT_GE(secondsSince(T0), 0.015);
  T.cancel();
  EXPECT_TRUE(T.waitCancelledFor(10.0));
}

TEST(Deadline, RemainingMsClampsToCap) {
  EXPECT_EQ(Deadline::never().remainingMs(30000), 30000u);
  EXPECT_EQ(Deadline::after(1000.0).remainingMs(500), 500u);
  // Already expired still yields the 1ms floor (Z3 rejects a 0 timeout
  // as "no timeout").
  EXPECT_EQ(Deadline::after(-5.0).remainingMs(30000), 1u);
  EXPECT_LE(Deadline::after(0.050).remainingMs(30000), 51u);
}

TEST(Deadline, EarliestPicksTheTighterBound) {
  Deadline A = Deadline::after(10.0);
  Deadline B = Deadline::after(100.0);
  EXPECT_LE(A.earliest(B).remainingSeconds(), 10.0);
  EXPECT_LE(B.earliest(A).remainingSeconds(), 10.0);
  EXPECT_LE(Deadline::never().earliest(A).remainingSeconds(), 10.0);
  EXPECT_TRUE(Deadline::never().earliest(Deadline::never()).isNever());
}

} // namespace
