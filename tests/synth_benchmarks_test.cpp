//===- tests/synth_benchmarks_test.cpp - Full Table-1 synthesis sweep -----==//
//
// Synthesizes every Table-1 benchmark, asserts that GRASSP's gradual
// search lands it in the paper's group (B1..B4), and property-checks the
// resulting plan against the serial specification on randomized
// segmentations.
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "support/Random.h"
#include "synth/Grassp.h"
#include "synth/PlanEval.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::lang;
using namespace grassp::synth;

namespace {

class SynthBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(SynthBenchmark, SynthesizesIntoExpectedGroup) {
  const SerialProgram *P = findBenchmark(GetParam());
  ASSERT_NE(P, nullptr);
  SynthesisResult R = synthesize(*P);
  ASSERT_TRUE(R.Success) << P->Name << ": " << R.FailureReason;
  EXPECT_EQ(R.Group, P->ExpectedGroup) << P->Name;

  // Property check on random segmentations (beyond the verifier bounds).
  Rng Rand(0xabcdef);
  std::vector<int64_t> Reps = P->representativeInputs();
  for (int Trial = 0; Trial != 60; ++Trial) {
    unsigned M = 1 + Rand.next() % 6;
    Segments Segs(M);
    for (auto &S : Segs) {
      unsigned Len = 1 + Rand.next() % 9;
      S = Trial % 2 == 0
              ? randomFromAlphabet(Rand, Reps, Len)
              : randomInRange(Rand, P->GenLo, P->GenHi, Len);
    }
    ASSERT_EQ(runPlanConcrete(*P, R.Plan, Segs),
              runSerialSegmented(*P, Segs))
        << P->Name << " trial " << Trial;
  }
}

std::vector<std::string> allNames() {
  std::vector<std::string> Names;
  for (const SerialProgram &P : allBenchmarks())
    Names.push_back(P.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(Table1, SynthBenchmark,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &Info) { return Info.param; });

} // namespace
