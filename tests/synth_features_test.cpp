//===- tests/synth_features_test.cpp - Lazy bounds & user templates -------==//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "support/Random.h"
#include "synth/Grassp.h"
#include "synth/PlanEval.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::ir;
using namespace grassp::synth;

namespace {

TEST(LazyBounds, ReverifiesAtWiderBounds) {
  const lang::SerialProgram *P = lang::findBenchmark("count_102");
  SynthesisResult R = synthesizeWithLazyBounds(*P);
  ASSERT_TRUE(R.Success);
  bool Logged = false;
  for (const std::string &S : R.StageLog)
    Logged |= S.find("lazy-bounds") != std::string::npos;
  EXPECT_TRUE(Logged);
}

TEST(LazyBounds, TinyInitialBoundsGetEscalated) {
  // With a 1-segment bound every merge is vacuously "correct"; the lazy
  // loop must catch the overfit plan at 2 segments and re-synthesize.
  const lang::SerialProgram *P = lang::findBenchmark("count_run1");
  SynthOptions Opts;
  Opts.Bounds.MinSegments = 1;
  Opts.Bounds.MaxSegments = 1;
  Opts.Bounds.MaxLen = 2;
  Opts.CorpusTests = 0; // no corpus screen: rely on verification alone.
  SynthesisResult R = synthesizeWithLazyBounds(*P, Opts, /*Widen=*/1,
                                               /*MaxRounds=*/4);
  ASSERT_TRUE(R.Success);
  // The final plan must be right on random data despite the tiny start.
  Rng Rand(5);
  for (int Trial = 0; Trial != 30; ++Trial) {
    Segments Segs(2 + Rand.next() % 3);
    for (auto &S : Segs)
      S = randomFromAlphabet(Rand, P->InputAlphabet, 1 + Rand.next() % 7);
    EXPECT_EQ(runPlanConcrete(*P, R.Plan, Segs),
              lang::runSerialSegmented(*P, Segs));
  }
}

TEST(UserTemplates, ExtraMergeWinsStageZero) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  SynthOptions Opts;
  MergeFn M;
  M.Combine = {add(var("a_s", TypeKind::Int), var("b_s", TypeKind::Int))};
  Opts.ExtraMerges.push_back(M);
  SynthesisResult R = synthesize(*P, Opts);
  ASSERT_TRUE(R.Success);
  ASSERT_FALSE(R.StageLog.empty());
  EXPECT_NE(R.StageLog[0].find("stage0-user"), std::string::npos);
  EXPECT_NE(R.StageLog[0].find("solved"), std::string::npos);
}

TEST(UserTemplates, WrongExtraMergeIsRejectedGracefully) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  SynthOptions Opts;
  MergeFn M;
  M.Combine = {smax(var("a_s", TypeKind::Int), var("b_s", TypeKind::Int))};
  Opts.ExtraMerges.push_back(M);
  SynthesisResult R = synthesize(*P, Opts);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Group, "B1"); // fell through to the built-in stage 1.
}

TEST(UserTemplates, ExtraPrefixCondIsTriedFirst) {
  const lang::SerialProgram *P = lang::findBenchmark("count_102");
  SynthOptions Opts;
  Opts.ExtraPrefixConds = {
      eq(var(lang::inputVarName(), TypeKind::Int), constInt(2))};
  SynthesisResult R = synthesize(*P, Opts);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Group, "B4");
  EXPECT_EQ(toString(R.Plan.Cond.PrefixCond), "(in == 2)");
}

TEST(SeedInputs, EnterTheCorpus) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  SynthOptions Opts;
  Opts.SeedInputs.push_back({{1, 2}, {3}});
  SynthesisResult R = synthesize(*P, Opts);
  EXPECT_TRUE(R.Success);
}

} // namespace
