//===- tests/runtime_distinct_test.cpp - Hash-set distinct kernel ---------===//
//
// The DistinctSet replaces the historical O(n·k) linear membership scan
// in every distinct-tracking path (serial run, scan worker, merge
// refold). These tests pin its semantics — exact counts on
// duplicate-heavy workloads against a reference std::set, insertion
// order preservation across growth — and the end-to-end count_distinct
// regression the satellite demands.
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "runtime/DistinctSet.h"
#include "runtime/Kernels.h"
#include "runtime/Workload.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace grassp;
using runtime::DistinctSet;

namespace {

TEST(DistinctSet, MatchesReferenceOnDuplicateHeavyWorkload) {
  // Heavy duplication (values drawn from a tiny range) is exactly the
  // regime where the old linear scan was quadratic-ish and where hash
  // collisions are common.
  Rng R(0xd15c);
  for (unsigned Trial = 0; Trial != 30; ++Trial) {
    DistinctSet S;
    std::set<int64_t> Ref;
    size_t N = 1 + R.bounded(5000);
    int64_t Span = 1 + R.range(1, 64); // few distinct values, many dups.
    for (size_t I = 0; I != N; ++I) {
      int64_t V = R.range(-Span, Span);
      EXPECT_EQ(S.insert(V), Ref.insert(V).second);
    }
    EXPECT_EQ(S.size(), Ref.size());
    for (int64_t V : Ref)
      EXPECT_TRUE(S.contains(V));
    EXPECT_FALSE(S.contains(Span + 1));
  }
}

TEST(DistinctSet, PreservesInsertionOrderAcrossGrowth) {
  // Insert far past the initial capacity so the table rehashes several
  // times; order() must still report first-seen order (the merge refold
  // depends on deterministic iteration).
  DistinctSet S;
  std::vector<int64_t> Want;
  for (int64_t V = 999; V >= -999; V -= 3) {
    ASSERT_TRUE(S.insert(V));
    EXPECT_FALSE(S.insert(V)); // immediate duplicate is rejected.
    Want.push_back(V);
  }
  EXPECT_EQ(S.order(), Want);
  EXPECT_EQ(DistinctSet(S).takeOrder(), Want);
}

TEST(DistinctSet, AdversarialKeysCollidingModuloPowerOfTwo) {
  // Keys identical modulo any small power of two defeat a masked
  // identity hash; the SplitMix64 finalizer must keep probes short
  // enough for this to terminate quickly and stay exact.
  DistinctSet S;
  std::set<int64_t> Ref;
  for (int64_t I = 0; I != 4096; ++I) {
    int64_t V = I << 20;
    EXPECT_EQ(S.insert(V), Ref.insert(V).second);
  }
  EXPECT_EQ(S.size(), 4096u);
}

TEST(DistinctSet, ExpectedCapacityHintIsJustAHint) {
  DistinctSet Hinted(4);
  for (int64_t V = 0; V != 1000; ++V)
    Hinted.insert(V % 137); // wraps: duplicates after the first 137.
  EXPECT_EQ(Hinted.size(), 137u);
}

// End-to-end regression: the hashed distinct kernel must produce counts
// identical to the reference interpreter on duplicate-heavy segmented
// workloads (the satellite's pinned regression for dropping the linear
// scan).
TEST(DistinctSet, CountDistinctProgramMatchesInterpreter) {
  const lang::SerialProgram *P = lang::findBenchmark("count_distinct");
  ASSERT_NE(P, nullptr);
  runtime::CompiledProgram CP(*P);
  EXPECT_EQ(CP.tier(), runtime::ExecTier::Specialized);
  EXPECT_EQ(CP.specializationInfo(), "distinct(hash-set)");

  Rng R(31337);
  for (unsigned Trial = 0; Trial != 10; ++Trial) {
    size_t N = 2000 + R.bounded(3000);
    std::vector<int64_t> Data;
    Data.reserve(N);
    for (size_t I = 0; I != N; ++I)
      Data.push_back(R.range(0, 40)); // ~41 distinct among thousands.
    int64_t Want = lang::runSerial(*P, Data);

    for (const runtime::SegmentShape &Shape :
         runtime::adversarialShapes(N, 5)) {
      std::vector<runtime::SegmentView> Views =
          runtime::segmentsFromLengths(Data, Shape.Lens);
      EXPECT_EQ(CP.runSerial(Views), Want) << Shape.Name;
    }
  }
}

} // namespace
