//===- tests/chc_certify_test.cpp - CHC encoding and Spacer tests ---------==//

#include "chc/Certify.h"
#include "lang/Benchmarks.h"
#include "synth/Grammar.h"
#include "synth/Grassp.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::synth;

namespace {

ParallelPlan planFor(const char *Name) {
  const lang::SerialProgram *P = lang::findBenchmark(Name);
  SynthesisResult R = synthesize(*P);
  EXPECT_TRUE(R.Success);
  return R.Plan;
}

TEST(ChcEncode, CountingElementsShape) {
  // The paper's Fig.-12 instance: counting elements, m = 3.
  const lang::SerialProgram *P = lang::findBenchmark("count");
  std::optional<chc::ChcSystem> Sys =
      chc::encodeProductAutomaton(*P, planFor("count"), 3);
  ASSERT_TRUE(Sys.has_value());
  // Vars: s_id + serial cnt + 3 partial cnts.
  EXPECT_EQ(Sys->Vars.size(), 5u);
  EXPECT_EQ(Sys->Vars[0].Name, "s_id");
  EXPECT_EQ(Sys->NumSegments, 3u);
}

TEST(ChcEncode, BagStatesUnsupported) {
  const lang::SerialProgram *P = lang::findBenchmark("count_distinct");
  EXPECT_FALSE(
      chc::encodeProductAutomaton(*P, planFor("count_distinct"), 2)
          .has_value());
}

TEST(ChcCertify, CountingElementsIsCertified) {
  const lang::SerialProgram *P = lang::findBenchmark("count");
  chc::CertifyOptions Opts;
  Opts.WantInvariant = true;
  chc::CertifyOutcome C = chc::certify(*P, planFor("count"), Opts);
  EXPECT_EQ(C.Status, chc::CertStatus::Certified);
  // Spacer returns the inductive invariant as the certificate; for
  // counting it is the paper's cnt-sum invariant over the partials.
  EXPECT_FALSE(C.Invariant.empty());
}

TEST(ChcCertify, WrongPlanIsNotCertified) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  ParallelPlan Wrong;
  Wrong.Kind = Scenario::NoPrefix;
  const lang::Field &F = P->State.field(0);
  Wrong.Merge = MergeFn{
      false,
      {ir::smax(ir::var("a_" + F.Name, F.Ty), ir::var("b_" + F.Name, F.Ty))}};
  chc::CertifyOutcome C = chc::certify(*P, Wrong);
  EXPECT_EQ(C.Status, chc::CertStatus::NotCertified);
}

TEST(ChcCertify, ConstPrefixPlanIsCertified) {
  const lang::SerialProgram *P = lang::findBenchmark("is_sorted");
  chc::CertifyOutcome C = chc::certify(*P, planFor("is_sorted"));
  EXPECT_EQ(C.Status, chc::CertStatus::Certified);
}

TEST(ChcCertify, SummaryPlanIsCertified) {
  const lang::SerialProgram *P = lang::findBenchmark("count_102");
  chc::CertifyOptions Opts;
  Opts.TimeoutMs = 60000;
  chc::CertifyOutcome C = chc::certify(*P, planFor("count_102"), Opts);
  EXPECT_EQ(C.Status, chc::CertStatus::Certified);
  EXPECT_GT(C.NumVars, 10u); // worker states + Delta tables.
}

TEST(ChcSmtlib, RendersHornClauses) {
  const lang::SerialProgram *P = lang::findBenchmark("count");
  std::string Text = chc::chcToSmtlib(*P, planFor("count"), 3);
  EXPECT_NE(Text.find("inv"), std::string::npos);
  EXPECT_NE(Text.find("err"), std::string::npos);
  EXPECT_NE(Text.find("rule"), std::string::npos);
}

} // namespace
