//===- tests/tool_stream_test.cpp - Piped grassp stream REPL -------------===//
//
// Drives the built `grassp stream` binary (path injected as GRASSP_TOOL
// by the build) through real pipes, the way a script would: well-formed
// sessions, every malformed-input class, and truncated input. The REPL
// contract under test:
//
//  * malformed lines produce one typed diagnostic each —
//    error[unknown-command], error[bad-index], error[bad-element] — and
//    the session continues;
//  * a session that ends with `quit` exits 0;
//  * piped input that hits EOF without `quit` (a truncated driver
//    script) exits nonzero with error[eof] on stderr.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace {

struct ToolRun {
  std::string Out;
  int ExitCode = -1;
};

/// Runs `grassp stream sum` with \p Input on stdin; captures stdout
/// (stderr is folded in via the shell so typed EOF errors are visible).
ToolRun runStream(const std::string &Input) {
  std::string Cmd = "printf '%s' '" + Input + "' | '" GRASSP_TOOL
                    "' stream sum 2>&1";
  ToolRun R;
  FILE *P = ::popen(Cmd.c_str(), "r");
  if (!P) {
    R.Out = "popen failed";
    return R;
  }
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Out.append(Buf, N);
  int Status = ::pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

TEST(StreamRepl, CleanSessionExitsZero) {
  ToolRun R = runStream("append 1 2 3\nquery\nverify\nquit\n");
  EXPECT_EQ(R.ExitCode, 0) << R.Out;
  EXPECT_NE(R.Out.find("query = 6"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("verify ok: 6"), std::string::npos) << R.Out;
  EXPECT_EQ(R.Out.find("error["), std::string::npos) << R.Out;
}

TEST(StreamRepl, MalformedLinesGetTypedErrorsAndSessionContinues) {
  ToolRun R = runStream("bogus\n"
                        "edit notanumber 5\n"
                        "append 1 two\n"
                        "append\n"
                        "append 40 2\n"
                        "query\n"
                        "quit\n");
  EXPECT_EQ(R.ExitCode, 0) << R.Out;
  EXPECT_NE(R.Out.find("error[unknown-command]: 'bogus'"),
            std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("error[bad-index]"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("error[bad-element]"), std::string::npos) << R.Out;
  // The garbage did not poison the session: the good append landed.
  EXPECT_NE(R.Out.find("query = 42"), std::string::npos) << R.Out;
}

TEST(StreamRepl, OutOfRangeEditIsARuntimeErrorNotACrash) {
  ToolRun R = runStream("append 1\nedit 99 5\nquery\nquit\n");
  EXPECT_EQ(R.ExitCode, 0) << R.Out;
  EXPECT_NE(R.Out.find("error[runtime]"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("query = 1"), std::string::npos) << R.Out;
}

TEST(StreamRepl, PipedEofWithoutQuitExitsNonzero) {
  ToolRun R = runStream("append 1 2 3\nquery\n");
  EXPECT_EQ(R.ExitCode, 1) << R.Out;
  // The work before the truncation still ran...
  EXPECT_NE(R.Out.find("query = 6"), std::string::npos) << R.Out;
  // ...and the truncation itself is a typed diagnostic.
  EXPECT_NE(R.Out.find("error[eof]: input ended without 'quit'"),
            std::string::npos)
      << R.Out;
}

TEST(StreamRepl, EmptyPipedInputIsTruncatedInputToo) {
  ToolRun R = runStream("");
  EXPECT_EQ(R.ExitCode, 1) << R.Out;
  EXPECT_NE(R.Out.find("error[eof]"), std::string::npos) << R.Out;
}

} // namespace
