//===- tests/fuzz_smoke.cpp - Bounded differential-oracle smoke tier ------==//
//
// The fixed-seed, seconds-bounded slice of the fuzz harness that runs on
// every ctest invocation: representative benchmarks from each Table-1
// group sweep the adversarial shape set through every execution tier
// with zero divergences, every benchmark's tiers are cross-checked
// against the interpreter on fuzz-generated workloads, the emitted-C++
// path is exercised on one benchmark (skipped without a host compiler),
// and a deliberately broken merge rule is planted to prove the oracle
// actually catches and minimizes divergences. The open-ended soak lives
// in `grassp fuzz --seconds N` / bench/fuzz_driver.
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"
#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "runtime/Kernels.h"
#include "runtime/Workload.h"
#include "synth/Grassp.h"
#include "testing/DiffOracle.h"
#include "testing/Fuzz.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>

namespace gt = grassp::testing;
using grassp::lang::SerialProgram;
using grassp::lang::findBenchmark;

namespace {

gt::FuzzOptions smokeOptions() {
  gt::FuzzOptions Opts;
  Opts.Seed = 1;          // fixed: this tier must be deterministic.
  Opts.Seconds = 0;       // one bounded sweep, no open-ended rounds.
  Opts.Segments = 4;
  Opts.UseEmitted = false; // the 4th path is covered once, below.
  Opts.Sizes = {0, 1, 2, 3, 17, 64};
  return Opts;
}

// One representative per Table-1 group (B1, B2, B3, two B4 flavors, and
// the bag plan) through the all-tier oracle across every adversarial
// shape. Zero divergences expected, and the path count pins which tiers
// engaged: specializable steps (sum, second_max) add the fused native
// path on top of interp/vm/loop-vm/plan+pool, while the bag program has
// only the hash-set tier.
class Representative : public ::testing::TestWithParam<std::string> {};

TEST_P(Representative, NoDivergenceAcrossAdversarialShapes) {
  const SerialProgram *P = findBenchmark(GetParam());
  ASSERT_NE(P, nullptr);
  grassp::synth::SynthesisResult R = grassp::synth::synthesize(*P);
  ASSERT_TRUE(R.Success) << R.FailureReason;

  gt::FuzzReport Rep = gt::fuzzBenchmark(*P, R.Plan, smokeOptions());
  EXPECT_FALSE(Rep.Diverged)
      << Rep.Shape << " seed " << Rep.Seed << ": " << Rep.Detail
      << "\n  reproducer: " << gt::DiffOracle::formatInput(Rep.Reproducer);
  // Path count pins which tiers engaged. Bag programs have only the
  // hash-set tier; scalar programs run interp + vm + loop-vm + plan+pool,
  // plus the fused path when the step specializes, plus the jit-compiled
  // native path whenever a host compiler exists. Every program adds the
  // chunked-source parallel run and the MergeTree replay — the bounded
  // streaming slice of this smoke tier.
  grassp::runtime::CompiledProgram CP(*P);
  unsigned WantPaths;
  if (GetParam() == "count_distinct") {
    WantPaths = 5u;
  } else {
    WantPaths = 6u;
    if (CP.tierAvailable(grassp::runtime::ExecTier::Specialized))
      ++WantPaths;
    if (CP.tierAvailable(grassp::runtime::ExecTier::Native))
      ++WantPaths;
  }
  EXPECT_EQ(Rep.PathsCompared, WantPaths);
  // The native tier must actually participate when a compiler exists.
  if (GetParam() != "count_distinct" &&
      gt::DiffOracle::hostCompilerAvailable())
    EXPECT_TRUE(CP.tierAvailable(grassp::runtime::ExecTier::Native))
        << "host compiler available but native tier absent";
  EXPECT_GT(Rep.Checks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Groups, Representative,
                         ::testing::Values("sum",            // B1
                                           "second_max",     // B2
                                           "is_sorted",      // B3
                                           "count_102",      // B4
                                           "max_dist_ones",  // B4 max-acc
                                           "count_distinct"),// bag
                         [](const auto &Info) { return Info.param; });

// The emitted-C++ path on one benchmark: compile once, then replay the
// same shapes through the binary's file-input hook. sum runs all five
// in-process paths plus the emitted binary.
TEST(FuzzSmoke, EmittedPathAgreesOnSum) {
  if (!gt::DiffOracle::hostCompilerAvailable())
    GTEST_SKIP() << "no host g++; the in-process tiers are already covered";
  const SerialProgram *P = findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  grassp::synth::SynthesisResult R = grassp::synth::synthesize(*P);
  ASSERT_TRUE(R.Success);

  gt::FuzzOptions Opts = smokeOptions();
  Opts.UseEmitted = true;
  Opts.Sizes = {0, 1, 3, 17, 64};
  gt::FuzzReport Rep = gt::fuzzBenchmark(*P, R.Plan, Opts);
  EXPECT_FALSE(Rep.Diverged) << Rep.Shape << ": " << Rep.Detail;
  // interp + vm + loop-vm + fused + plan+pool + source+pool + merge-tree
  // + emitted, plus the native jit path (this test already skipped
  // without a host compiler, so the native tier is absent only if its
  // compile failed).
  grassp::runtime::CompiledProgram CP(*P);
  unsigned WantPaths =
      8u + (CP.tierAvailable(grassp::runtime::ExecTier::Native) ? 1u : 0u);
  EXPECT_EQ(Rep.PathsCompared, WantPaths);
}

// The tier-equivalence property, plan-free so it covers all 27
// benchmarks cheaply: every execution tier a program supports must match
// the reference interpreter on fuzz-generated workloads across
// adversarial segment shapes. This is the certification path for the
// peephole optimizer (loop-vm runs optimized bytecode, the per-element
// tier runs it unoptimized) and the specialized native kernels.
TEST(FuzzSmoke, AllTiersMatchInterpreterOnFuzzedWorkloads) {
  namespace rt = grassp::runtime;
  constexpr rt::ExecTier AllTiers[] = {rt::ExecTier::Specialized,
                                       rt::ExecTier::Native,
                                       rt::ExecTier::LoopVM,
                                       rt::ExecTier::PerElement};
  unsigned SpecializedSeen = 0, NativeSeen = 0;
  for (const SerialProgram &P : grassp::lang::allBenchmarks()) {
    rt::CompiledProgram CP(P);
    SpecializedSeen += CP.tierAvailable(rt::ExecTier::Specialized) ? 1 : 0;
    NativeSeen += CP.tierAvailable(rt::ExecTier::Native) ? 1 : 0;
    for (size_t N : {size_t{0}, size_t{1}, size_t{3}, size_t{17},
                     size_t{64}, size_t{257}}) {
      for (uint64_t Seed : {uint64_t{1}, uint64_t{99}}) {
        std::vector<int64_t> Data = rt::generateWorkload(P, N, Seed);
        int64_t Want = grassp::lang::runSerial(P, Data);
        for (const rt::SegmentShape &Shape :
             rt::adversarialShapes(N, 4)) {
          std::vector<rt::SegmentView> Views =
              rt::segmentsFromLengths(Data, Shape.Lens);
          for (rt::ExecTier T : AllTiers) {
            if (!CP.tierAvailable(T))
              continue;
            EXPECT_EQ(CP.runSerialTier(T, Views), Want)
                << P.Name << " tier=" << rt::execTierName(T) << " N=" << N
                << " seed=" << Seed << " shape=" << Shape.Name;
          }
        }
      }
    }
  }
  // The kernel specializer must actually engage on the sum/min/max/
  // counted-extrema family (plus the bag program's hash-set kernel).
  EXPECT_GE(SpecializedSeen, 15u);
  // And with a host compiler present, the jit tier must participate on
  // every scalar benchmark — a silent fallback to the loop VM here would
  // mean the native path is never differentially certified.
  if (gt::DiffOracle::hostCompilerAvailable())
    EXPECT_GE(NativeSeen, 20u);
}

// Plant a bug: sum's merge combines partial sums with subtraction
// instead of addition. The oracle must catch it on the sweep and shrink
// the reproducer to a near-minimal segmented input that still diverges.
TEST(FuzzSmoke, BrokenMergeIsCaughtAndMinimized) {
  const SerialProgram *P = findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  grassp::synth::SynthesisResult R = grassp::synth::synthesize(*P);
  ASSERT_TRUE(R.Success);
  ASSERT_EQ(R.Plan.Kind, grassp::synth::Scenario::NoPrefix);
  ASSERT_EQ(R.Plan.Merge.Combine.size(), 1u);

  grassp::synth::ParallelPlan Broken = R.Plan;
  const std::string &F = P->State.field(0).Name;
  Broken.Merge.Combine[0] =
      grassp::ir::sub(grassp::ir::var("a_" + F, grassp::ir::TypeKind::Int),
                      grassp::ir::var("b_" + F, grassp::ir::TypeKind::Int));

  gt::FuzzReport Rep = gt::fuzzBenchmark(*P, Broken, smokeOptions());
  ASSERT_TRUE(Rep.Diverged) << "sabotaged merge was not detected";
  EXPECT_FALSE(Rep.Detail.empty());

  // The reproducer still diverges under a fresh oracle...
  gt::OracleConfig OC;
  OC.UseEmitted = false;
  gt::DiffOracle Oracle(*P, Broken, OC);
  EXPECT_TRUE(Oracle.check(Rep.Reproducer).Diverged);
  // ...and was genuinely shrunk: a - b != a + b needs exactly two
  // non-empty single-element segments with a nonzero second element.
  size_t Elems = 0, NonEmpty = 0;
  for (const std::vector<int64_t> &S : Rep.Reproducer) {
    Elems += S.size();
    NonEmpty += S.empty() ? 0 : 1;
  }
  EXPECT_EQ(NonEmpty, 2u) << gt::DiffOracle::formatInput(Rep.Reproducer);
  EXPECT_LE(Elems, 2u) << gt::DiffOracle::formatInput(Rep.Reproducer);
}

// The shape generator must actually produce the degenerate geometry the
// verifier's non-empty data model never sees: every shape covers N
// exactly, and empty and length-1 segments both appear whenever the
// geometry admits them (including M > N, which forces empties).
TEST(FuzzSmoke, AdversarialShapesCoverDegenerateGeometry) {
  using grassp::runtime::SegmentShape;
  for (size_t N : {0u, 1u, 2u, 5u, 64u}) {
    for (unsigned M : {1u, 4u, 7u}) {
      std::vector<SegmentShape> Shapes =
          grassp::runtime::adversarialShapes(N, M);
      ASSERT_FALSE(Shapes.empty());
      bool SawEmptySegment = false, SawSingleton = false;
      for (const SegmentShape &S : Shapes) {
        EXPECT_EQ(std::accumulate(S.Lens.begin(), S.Lens.end(), size_t{0}),
                  N)
            << S.Name;
        for (size_t L : S.Lens) {
          SawEmptySegment |= L == 0;
          SawSingleton |= L == 1;
        }
      }
      if (M > 1 && N >= 2) {
        EXPECT_TRUE(SawEmptySegment) << "N=" << N << " M=" << M;
        EXPECT_TRUE(SawSingleton) << "N=" << N << " M=" << M;
      }
      if (N < M) // more segments than elements forces empties.
        EXPECT_TRUE(SawEmptySegment);
    }
  }
}

// Workload-parser fuzz: round-trip seeded random workloads through the
// headered file format, then feed the parser every strict prefix of a
// file — each simulated truncation must be rejected, never folded.
TEST(FuzzSmoke, WorkloadParserRejectsEveryTruncation) {
  namespace rt = grassp::runtime;
  const SerialProgram *P = findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  const std::string Path =
      ::testing::TempDir() + "grassp_fuzz_workload.txt";

  for (uint64_t Seed : {uint64_t{1}, uint64_t{42}}) {
    std::vector<int64_t> Data = rt::generateWorkload(*P, 9, Seed);
    std::string Content = rt::workloadFileHeader(Data.size()) + "\n";
    for (int64_t V : Data)
      Content += std::to_string(V) + "\n";

    auto writeFile = [&](const std::string &Text) {
      std::ofstream Out(Path, std::ios::trunc);
      Out << Text;
    };
    writeFile(Content);
    EXPECT_EQ(rt::loadWorkloadFile(Path), Data); // round-trips intact.

    // Every prefix losing at least the last element is a possible torn
    // write. The header makes all of them detectable: either a
    // malformed line or a count mismatch, never a silent short read.
    // (A cut inside the final number's digits can leave a shorter but
    // still-valid value with a matching count, so stop one line early;
    // and the 0-byte prefix is skipped — it is a valid empty bare-format
    // file, the one truncation no in-band format can flag.)
    size_t LastLine = std::to_string(Data.back()).size() + 1;
    for (size_t Cut = 1; Cut <= Content.size() - LastLine; ++Cut) {
      writeFile(Content.substr(0, Cut));
      EXPECT_THROW(rt::loadWorkloadFile(Path), rt::WorkloadParseError)
          << "prefix of " << Cut << " bytes parsed (seed " << Seed << ")";
    }
  }
  std::remove(Path.c_str());
}

// The oracle itself on hand-built degenerate inputs — all-empty input,
// single element among empties, M > N — for a boundary-sensitive plan.
TEST(FuzzSmoke, HandPickedDegenerateInputsAgree) {
  const SerialProgram *P = findBenchmark("is_sorted");
  ASSERT_NE(P, nullptr);
  grassp::synth::SynthesisResult R = grassp::synth::synthesize(*P);
  ASSERT_TRUE(R.Success);
  gt::OracleConfig OC;
  OC.UseEmitted = false;
  gt::DiffOracle Oracle(*P, R.Plan, OC);

  EXPECT_FALSE(Oracle.check({}).Diverged);
  EXPECT_FALSE(Oracle.check({{}, {}, {}}).Diverged);
  EXPECT_FALSE(Oracle.check({{}, {7}, {}}).Diverged);
  EXPECT_FALSE(Oracle.check({{1, 2}, {}, {2, 1}}).Diverged);
  EXPECT_FALSE(Oracle.check({{3}, {2}, {}, {1}}).Diverged);
}

} // namespace
