//===- tests/smt_solver_test.cpp - Z3 facade tests -------------------------=//

#include "smt/Solver.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace grassp::ir;
using namespace grassp::smt;

namespace {

ExprRef iv(const char *N) { return var(N, TypeKind::Int); }

TEST(SmtSolver, SatAndModel) {
  SmtSolver S;
  S.add(eq(add(iv("x"), iv("y")), constInt(10)));
  S.add(gt(iv("x"), constInt(7)));
  ASSERT_EQ(S.check(), SatResult::Sat);
  int64_t X = S.modelInt("x"), Y = S.modelInt("y");
  EXPECT_EQ(X + Y, 10);
  EXPECT_GT(X, 7);
}

TEST(SmtSolver, Unsat) {
  SmtSolver S;
  S.add(gt(iv("x"), constInt(5)));
  S.add(lt(iv("x"), constInt(3)));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST(SmtSolver, PushPop) {
  SmtSolver S;
  S.add(gt(iv("x"), constInt(0)));
  S.push();
  S.add(lt(iv("x"), constInt(0)));
  EXPECT_EQ(S.check(), SatResult::Unsat);
  S.pop();
  EXPECT_EQ(S.check(), SatResult::Sat);
  EXPECT_EQ(S.numChecks(), 2u);
}

TEST(SmtSolver, BoolVars) {
  SmtSolver S;
  ExprRef B = var("b", TypeKind::Bool);
  S.add(B);
  ASSERT_EQ(S.check(), SatResult::Sat);
  EXPECT_TRUE(S.modelBool("b"));
}

TEST(SmtSolver, EuclideanDivModSemantics) {
  // -7 div 2 == -4 and -7 mod 2 == 1 must be valid (unsat negation).
  SmtSolver S;
  S.add(ne(intDiv(constInt(-7), add(iv("z"), constInt(2))),
           constInt(-4))); // z == 0 forced below
  S.add(eq(iv("z"), constInt(0)));
  EXPECT_EQ(S.check(), SatResult::Unsat);

  SmtSolver S2;
  S2.add(eq(iv("x"), constInt(-7)));
  S2.add(ne(intMod(iv("x"), constInt(2)), constInt(1)));
  EXPECT_EQ(S2.check(), SatResult::Unsat);
}

TEST(SmtSolver, MinMaxIteLowering) {
  // max(x, y) >= x /\ max(x, y) >= y is valid.
  SmtSolver S;
  ExprRef M = smax(iv("x"), iv("y"));
  S.add(lnot(land(ge(M, iv("x")), ge(M, iv("y")))));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST(SmtSolver, IteAndConnectives) {
  // ite(b, x, y) picks a branch: (b -> r == x) /\ (!b -> r == y).
  SmtSolver S;
  ExprRef B = var("b", TypeKind::Bool);
  ExprRef R = ite(B, iv("x"), iv("y"));
  S.add(lnot(lor(land(B, eq(R, iv("x"))),
                 land(lnot(B), eq(R, iv("y"))))));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

// -- Cancellation ---------------------------------------------------------

TEST(SmtSolver, CancelledBeforeCheckSkipsTheQuery) {
  SmtSolver S;
  S.add(gt(iv("x"), constInt(0)));
  grassp::CancelToken T = grassp::CancelToken::root();
  T.cancel();
  EXPECT_EQ(S.check(0, T), SatResult::Cancelled);
  // The solver survives: the same query without a token still answers.
  EXPECT_EQ(S.check(), SatResult::Sat);
}

TEST(SmtSolver, TokenInterruptsAnInFlightCheck) {
  // A semiprime factoring query: finding 1 < x <= y with
  // x*y == 1000003 * 999999937 takes Z3 far longer than this test may.
  // Firing the token ~100ms in must interrupt the in-flight check and
  // return Cancelled well before the 30s SMT budget.
  SmtSolver S;
  int64_t N = int64_t(1000003) * int64_t(999999937);
  S.add(eq(mul(iv("x"), iv("y")), constInt(N)));
  S.add(gt(iv("x"), constInt(1)));
  S.add(ge(iv("y"), iv("x")));
  S.add(lt(iv("x"), iv("y"))); // rule out the trivial sqrt probe too.

  grassp::CancelToken T = grassp::CancelToken::root();
  std::thread Firer([&T] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    T.cancel();
  });
  auto T0 = std::chrono::steady_clock::now();
  SatResult R = S.check(30000, T);
  double Elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Firer.join();
  EXPECT_EQ(R, SatResult::Cancelled);
  // Far under the SMT budget; generous slack for loaded CI machines.
  EXPECT_LT(Elapsed, 10.0);

  // The context survives the interrupt: a fresh trivial check works.
  SmtSolver S2;
  S2.add(gt(iv("x"), constInt(0)));
  EXPECT_EQ(S2.check(), SatResult::Sat);
}

TEST(SmtSolver, TokenDeadlineClampsTheTimeout) {
  // No explicit cancel: the token's deadline alone bounds the check, so
  // the slow query returns (Cancelled or Unknown, depending on whether
  // Z3's timeout or the deadline poll wins the race) almost at once.
  SmtSolver S;
  int64_t N = int64_t(1000003) * int64_t(999999937);
  S.add(eq(mul(iv("x"), iv("y")), constInt(N)));
  S.add(gt(iv("x"), constInt(1)));
  S.add(lt(iv("x"), iv("y")));

  grassp::CancelToken T =
      grassp::CancelToken::root().child(grassp::Deadline::after(0.1));
  auto T0 = std::chrono::steady_clock::now();
  SatResult R = S.check(30000, T);
  double Elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  EXPECT_TRUE(R == SatResult::Cancelled || R == SatResult::Unknown);
  EXPECT_LT(Elapsed, 10.0);
}

} // namespace
