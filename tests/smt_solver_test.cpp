//===- tests/smt_solver_test.cpp - Z3 facade tests -------------------------=//

#include "smt/Solver.h"

#include <gtest/gtest.h>

using namespace grassp::ir;
using namespace grassp::smt;

namespace {

ExprRef iv(const char *N) { return var(N, TypeKind::Int); }

TEST(SmtSolver, SatAndModel) {
  SmtSolver S;
  S.add(eq(add(iv("x"), iv("y")), constInt(10)));
  S.add(gt(iv("x"), constInt(7)));
  ASSERT_EQ(S.check(), SatResult::Sat);
  int64_t X = S.modelInt("x"), Y = S.modelInt("y");
  EXPECT_EQ(X + Y, 10);
  EXPECT_GT(X, 7);
}

TEST(SmtSolver, Unsat) {
  SmtSolver S;
  S.add(gt(iv("x"), constInt(5)));
  S.add(lt(iv("x"), constInt(3)));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST(SmtSolver, PushPop) {
  SmtSolver S;
  S.add(gt(iv("x"), constInt(0)));
  S.push();
  S.add(lt(iv("x"), constInt(0)));
  EXPECT_EQ(S.check(), SatResult::Unsat);
  S.pop();
  EXPECT_EQ(S.check(), SatResult::Sat);
  EXPECT_EQ(S.numChecks(), 2u);
}

TEST(SmtSolver, BoolVars) {
  SmtSolver S;
  ExprRef B = var("b", TypeKind::Bool);
  S.add(B);
  ASSERT_EQ(S.check(), SatResult::Sat);
  EXPECT_TRUE(S.modelBool("b"));
}

TEST(SmtSolver, EuclideanDivModSemantics) {
  // -7 div 2 == -4 and -7 mod 2 == 1 must be valid (unsat negation).
  SmtSolver S;
  S.add(ne(intDiv(constInt(-7), add(iv("z"), constInt(2))),
           constInt(-4))); // z == 0 forced below
  S.add(eq(iv("z"), constInt(0)));
  EXPECT_EQ(S.check(), SatResult::Unsat);

  SmtSolver S2;
  S2.add(eq(iv("x"), constInt(-7)));
  S2.add(ne(intMod(iv("x"), constInt(2)), constInt(1)));
  EXPECT_EQ(S2.check(), SatResult::Unsat);
}

TEST(SmtSolver, MinMaxIteLowering) {
  // max(x, y) >= x /\ max(x, y) >= y is valid.
  SmtSolver S;
  ExprRef M = smax(iv("x"), iv("y"));
  S.add(lnot(land(ge(M, iv("x")), ge(M, iv("y")))));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST(SmtSolver, IteAndConnectives) {
  // ite(b, x, y) picks a branch: (b -> r == x) /\ (!b -> r == y).
  SmtSolver S;
  ExprRef B = var("b", TypeKind::Bool);
  ExprRef R = ite(B, iv("x"), iv("y"));
  S.add(lnot(lor(land(B, eq(R, iv("x"))),
                 land(lnot(B), eq(R, iv("y"))))));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

} // namespace
