//===- tests/lang_interp_test.cpp - Serial semantics of the benchmarks ----==//
//
// Hand-computed outputs for every Table-1 program on known inputs, plus
// the sequential recurrence-decomposition property (paper Eq. (1)): the
// segmented fold equals the flat fold for every benchmark and random
// segmentation.
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::lang;

namespace {

int64_t run(const char *Name, const std::vector<int64_t> &A) {
  const SerialProgram *P = findBenchmark(Name);
  EXPECT_NE(P, nullptr) << Name;
  return runSerial(*P, A);
}

TEST(SerialSemantics, Scans) {
  EXPECT_EQ(run("count", {4, 5, 6}), 3);
  EXPECT_EQ(run("count_gt", {4, 5, 6, 7}), 2); // > 5
  EXPECT_EQ(run("search", {1, 2, 3}), 0);
  EXPECT_EQ(run("search", {1, 7, 3}), 1);
  EXPECT_EQ(run("sum", {1, -2, 3}), 2);
  EXPECT_EQ(run("sum_even", {1, 2, 3, 4}), 6);
  EXPECT_EQ(run("sum_even", {-2, -3}), -2);
  EXPECT_EQ(run("sum_gt", {4, 6, 10}), 16);
  EXPECT_EQ(run("min_elem", {5, -3, 9}), -3);
  EXPECT_EQ(run("max_elem", {5, -3, 9}), 9);
  EXPECT_EQ(run("max_abs", {5, -13, 9}), 13);
}

TEST(SerialSemantics, StructuredStates) {
  EXPECT_EQ(run("second_max", {5, 9, 7}), 7);
  EXPECT_EQ(run("second_max", {9, 9, 1}), 9); // duplicates count
  EXPECT_EQ(run("delta_max_min", {4, 10, 6}), 6);
  EXPECT_EQ(run("average", {3, 4, 5}), 4);
  EXPECT_EQ(run("average", {}), 0);
  EXPECT_EQ(run("count_max", {3, 7, 7, 2, 7}), 3);
  EXPECT_EQ(run("count_min", {3, 1, 1, 2}), 2);
  EXPECT_EQ(run("eq_zeros_ones", {0, 1, 2, 1, 0}), 1);
  EXPECT_EQ(run("eq_zeros_ones", {0, 0, 1}), 0);
  EXPECT_EQ(run("count_distinct", {4, 4, 5, 4, 6}), 3);
}

TEST(SerialSemantics, PairwiseChecks) {
  EXPECT_EQ(run("all_equal", {5, 5, 5}), 1);
  EXPECT_EQ(run("all_equal", {5, 7, 5}), 0);
  EXPECT_EQ(run("is_sorted", {1, 2, 2, 9}), 1);
  EXPECT_EQ(run("is_sorted", {1, 2, 1}), 0);
  EXPECT_EQ(run("alternating01", {0, 1, 0, 1}), 1);
  EXPECT_EQ(run("alternating01", {0, 1, 1}), 0);
  EXPECT_EQ(run("alternating01", {0, 2}), 0);
}

TEST(SerialSemantics, PatternCounting) {
  EXPECT_EQ(run("count_run1", {1, 1, 0, 1, 0, 0, 1}), 3);
  EXPECT_EQ(run("count_run1_then2", {1, 2, 1, 1, 2, 2}), 2);
  // The paper's Sect.-2 input, flattened: expected 3.
  EXPECT_EQ(run("count_102",
                {1, 0, 0, 0, 0, 0, 0, 0, 0, 2, 1, 2, 1, 0, 2, 0}),
            3);
  EXPECT_EQ(run("count_123", {1, 2, 3, 1, 1, 2, 2, 3, 2, 3}), 2);
  EXPECT_EQ(run("count_10203", {1, 0, 2, 0, 0, 3, 1, 2, 3}), 2);
}

TEST(SerialSemantics, PositionalChecks) {
  EXPECT_EQ(run("zero_first_one_last", {0, 2, 2, 1}), 1);
  EXPECT_EQ(run("zero_first_one_last", {2, 0, 1}), 0);  // 0 not first
  EXPECT_EQ(run("zero_first_one_last", {0, 1, 2}), 0);  // 1 not last
  EXPECT_EQ(run("max_dist_ones", {1, 0, 0, 1, 0, 1}), 3);
  EXPECT_EQ(run("max_dist_ones", {0, 1, 0}), 0); // single one: no pair
  EXPECT_EQ(run("max_sum_zeros", {0, 3, 4, 0, 9, 0}), 9);
  EXPECT_EQ(run("max_sum_zeros", {3, 4, 0, 2, 0}), 2); // head ignored
}

class RecurrenceDecomposition : public ::testing::TestWithParam<std::string> {
};

TEST_P(RecurrenceDecomposition, SegmentedEqualsFlat) {
  const SerialProgram *P = findBenchmark(GetParam());
  ASSERT_NE(P, nullptr);
  Rng R(11);
  std::vector<int64_t> Reps = P->representativeInputs();
  for (int Trial = 0; Trial != 40; ++Trial) {
    std::vector<int64_t> Flat =
        randomFromAlphabet(R, Reps, 1 + R.next() % 30);
    // Random segmentation of the flat array.
    std::vector<std::vector<int64_t>> Segs;
    size_t I = 0;
    while (I < Flat.size()) {
      size_t Len = 1 + R.next() % 5;
      Len = std::min(Len, Flat.size() - I);
      Segs.emplace_back(Flat.begin() + I, Flat.begin() + I + Len);
      I += Len;
    }
    EXPECT_EQ(runSerialSegmented(*P, Segs), runSerial(*P, Flat))
        << P->Name;
  }
}

std::vector<std::string> allNames() {
  std::vector<std::string> Names;
  for (const SerialProgram &P : allBenchmarks())
    Names.push_back(P.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(Table1, RecurrenceDecomposition,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &Info) { return Info.param; });

TEST(Benchmarks, RegistryIsComplete) {
  EXPECT_EQ(allBenchmarks().size(), 27u);
  unsigned B1 = 0, B2 = 0, B3 = 0, B4 = 0;
  for (const SerialProgram &P : allBenchmarks()) {
    B1 += P.ExpectedGroup == "B1";
    B2 += P.ExpectedGroup == "B2";
    B3 += P.ExpectedGroup == "B3";
    B4 += P.ExpectedGroup == "B4";
  }
  EXPECT_EQ(B1, 9u);
  EXPECT_EQ(B2, 7u);
  // Two of the paper's B4 rows land in B3 here (see EXPERIMENTS.md).
  EXPECT_EQ(B3, 5u);
  EXPECT_EQ(B4, 6u);
}

TEST(Benchmarks, ConstantPools) {
  const SerialProgram *P = findBenchmark("count_102");
  std::vector<int64_t> Pool = P->constantPool();
  EXPECT_TRUE(std::count(Pool.begin(), Pool.end(), 2));
  EXPECT_TRUE(std::count(Pool.begin(), Pool.end(), 0));
  std::vector<int64_t> Reps = P->representativeInputs();
  EXPECT_EQ(Reps, P->InputAlphabet);
}

} // namespace
