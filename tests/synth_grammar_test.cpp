//===- tests/synth_grammar_test.cpp - Fig. 13 grammar tests ----------------=//

#include "lang/Benchmarks.h"
#include "synth/Grammar.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::synth;

namespace {

TEST(Grammar, TrivialMergesOnlyForSingleField) {
  const lang::SerialProgram *Sum = lang::findBenchmark("sum");
  std::vector<MergeFn> T = trivialMergeCandidates(*Sum);
  EXPECT_EQ(T.size(), 3u); // +, min, max
  for (const MergeFn &M : T)
    EXPECT_TRUE(M.isTrivial());

  const lang::SerialProgram *Avg = lang::findBenchmark("average");
  EXPECT_TRUE(trivialMergeCandidates(*Avg).empty());
}

TEST(Grammar, BooleanTrivialMerges) {
  const lang::SerialProgram *Search = lang::findBenchmark("search");
  std::vector<MergeFn> T = trivialMergeCandidates(*Search);
  EXPECT_EQ(T.size(), 2u); // or, and
}

TEST(Grammar, NontrivialMergesAreSizeOrdered) {
  const lang::SerialProgram *P = lang::findBenchmark("second_max");
  std::vector<MergeFn> Ms = nontrivialMergeCandidates(*P);
  ASSERT_GT(Ms.size(), 10u);
  auto Size = [](const MergeFn &M) {
    unsigned N = 0;
    for (const ir::ExprRef &E : M.Combine)
      N += ir::exprSize(E);
    return N;
  };
  for (size_t I = 1; I != Ms.size(); ++I)
    EXPECT_LE(Size(Ms[I - 1]), Size(Ms[I]));
}

TEST(Grammar, RunnerUpShapeIsGenerated) {
  // The second-max merge needs ite(a_m1 >= b_m1, max(a_m2, b_m1),
  // max(b_m2, a_m1)); check some candidate contains an ite over m2.
  const lang::SerialProgram *P = lang::findBenchmark("second_max");
  bool FoundIte = false;
  for (const MergeFn &M : nontrivialMergeCandidates(*P))
    FoundIte |= M.Combine[1]->getOp() == ir::Op::Ite;
  EXPECT_TRUE(FoundIte);
}

TEST(Grammar, RefoldOnlyForBagStates) {
  const lang::SerialProgram *D = lang::findBenchmark("count_distinct");
  std::vector<MergeFn> Ms = nontrivialMergeCandidates(*D);
  ASSERT_EQ(Ms.size(), 1u);
  EXPECT_TRUE(Ms[0].Refold);

  const lang::SerialProgram *S = lang::findBenchmark("sum");
  for (const MergeFn &M : nontrivialMergeCandidates(*S))
    EXPECT_FALSE(M.Refold);
}

TEST(Grammar, PrefixCondsPutAlphabetFirst) {
  const lang::SerialProgram *P = lang::findBenchmark("count_102");
  std::vector<ir::ExprRef> Pcs = prefixCondCandidates(*P);
  ASSERT_GE(Pcs.size(), 6u);
  // First candidates are equalities with alphabet constants 0, 1, 2.
  EXPECT_EQ(ir::toString(Pcs[0]), "(in == 0)");
  EXPECT_EQ(ir::toString(Pcs[1]), "(in == 1)");
  EXPECT_EQ(ir::toString(Pcs[2]), "(in == 2)");
  // Disequalities come after all equalities.
  bool SeenNe = false;
  for (const ir::ExprRef &Pc : Pcs) {
    if (Pc->getOp() == ir::Op::Ne)
      SeenNe = true;
    else
      EXPECT_FALSE(SeenNe) << "eq after ne";
  }
}

} // namespace
