//===- tests/jit_backend_test.cpp - Native jit tier certification ---------===//
//
// The jit backend is never trusted: emitted-C++ fold kernels are
// certified differentially against the per-element reference fold on
// randomly generated optimized bytecode (including redefinitions and
// the full opcode set) and on the real benchmark suite's guarded and
// modulo lanes. Also pins the cache discipline — one dlopen handle per
// bytecode hash in memory, objects reused from disk across
// clearMemoryCache — and the graceful-fallback paths (bogus compiler,
// non-fold shapes, the --no-native ablation, GRASSP_JIT_DISABLE).
//
// Every test that needs the host compiler skips cleanly without one;
// the fallback tests run everywhere.
//
//===----------------------------------------------------------------------===//

#include "ir/Bytecode.h"
#include "jit/NativeKernel.h"
#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "runtime/Kernels.h"
#include "runtime/Workload.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace grassp;
using ir::BcInstr;
using ir::BcOp;
using ir::BytecodeFunction;

namespace {

/// Fresh per-suite disk cache so this process's compiles never collide
/// with (or get satisfied by) a previous run's objects.
std::string testCacheDir() {
  return ::testing::TempDir() + "grassp-jit-test-cache";
}

jit::JitOptions testOptions() {
  jit::JitOptions O;
  O.CacheDir = testCacheDir();
  return O;
}

/// Random well-formed function (same idiom as ir_bytecode_opt_test):
/// operands always read defined registers, destinations may redefine.
BytecodeFunction randomFunction(Rng &R, unsigned NumInputs,
                                unsigned NumInstrs, unsigned NumOutputs) {
  std::vector<BcInstr> Instrs;
  unsigned Defined = NumInputs;
  const unsigned MaxRegs = NumInputs + NumInstrs + 1;
  for (unsigned I = 0; I != NumInstrs; ++I) {
    BcInstr In;
    In.Opcode = static_cast<BcOp>(
        R.bounded(static_cast<uint64_t>(BcOp::Select) + 1));
    auto anyDefined = [&] {
      return static_cast<uint16_t>(R.bounded(Defined));
    };
    unsigned Ops = ir::bcNumOperands(In.Opcode);
    if (Ops >= 1)
      In.A = anyDefined();
    if (Ops >= 2)
      In.B = anyDefined();
    if (Ops >= 3)
      In.C = anyDefined();
    if (In.Opcode == BcOp::Const)
      In.Imm = static_cast<int64_t>(R.bounded(21)) - 10;
    if (Defined < MaxRegs && R.chance(1, 2)) {
      In.Dst = static_cast<uint16_t>(Defined++);
    } else {
      In.Dst = static_cast<uint16_t>(R.bounded(Defined));
    }
    Instrs.push_back(In);
  }
  std::vector<uint16_t> Outputs;
  for (unsigned I = 0; I != NumOutputs; ++I)
    Outputs.push_back(static_cast<uint16_t>(R.bounded(Defined)));
  return BytecodeFunction::fromInstrs(std::move(Instrs), NumInputs, Defined,
                                      std::move(Outputs));
}

/// Element-at-a-time reference fold through run() — the ground truth the
/// native kernel must reproduce bit-for-bit.
std::vector<int64_t> refFold(const BytecodeFunction &F,
                             std::vector<int64_t> State,
                             const std::vector<int64_t> &Data) {
  std::vector<int64_t> Regs(F.numRegs(), 0);
  for (int64_t El : Data) {
    for (size_t K = 0; K != State.size(); ++K)
      Regs[K] = State[K];
    Regs[State.size()] = El;
    F.run(Regs.data(), State.data());
  }
  return State;
}

TEST(JitBackend, NativeAgreesWithReferenceOnRandomOptimizedPrograms) {
  if (!jit::hostCompilerAvailable())
    GTEST_SKIP() << "no host compiler; the fallback tests still run";
  Rng R(0x1a7e);
  jit::JitOptions Opts = testOptions();
  for (unsigned Trial = 0; Trial != 25; ++Trial) {
    unsigned NumFields = 1 + static_cast<unsigned>(R.bounded(3));
    BytecodeFunction F =
        randomFunction(R, NumFields + 1,
                       1 + static_cast<unsigned>(R.bounded(16)), NumFields);
    BytecodeFunction Opt = F.optimized();
    std::string Err;
    std::shared_ptr<const jit::NativeKernel> K =
        jit::compileFoldKernel(Opt, Opts, &Err);
    ASSERT_NE(K, nullptr) << "trial " << Trial << ": " << Err;
    EXPECT_EQ(K->hash(), jit::bytecodeHash(Opt));

    for (unsigned Run = 0; Run != 4; ++Run) {
      std::vector<int64_t> State;
      for (unsigned I = 0; I != NumFields; ++I)
        State.push_back(R.range(-100, 100));
      std::vector<int64_t> Data;
      for (unsigned I = 0, N = static_cast<unsigned>(R.bounded(60)); I != N;
           ++I)
        Data.push_back(R.range(-1000, 1000));

      std::vector<int64_t> Native = State;
      K->fold(Native.data(), Data.data(), Data.size());
      EXPECT_EQ(Native, refFold(F, State, Data))
          << "trial " << Trial << " run " << Run;
    }
  }
}

TEST(JitBackend, NativeTierMatchesInterpreterOnGuardedAndModuloLanes) {
  if (!jit::hostCompilerAvailable())
    GTEST_SKIP() << "no host compiler";
  namespace rt = grassp::runtime;
  // The lanes the loop-VM regression lived in (data-dependent guards)
  // plus automaton steps that never specialize: the native tier must
  // match the reference interpreter, including Euclidean mod on
  // negative inputs and division totality.
  const char *Names[] = {"count_gt", "sum_even",      "sum_gt",
                         "count_123", "is_sorted",    "max_dist_ones",
                         "count_102", "alternating01"};
  Rng R(0x9a7d);
  for (const char *Name : Names) {
    const lang::SerialProgram *P = lang::findBenchmark(Name);
    ASSERT_NE(P, nullptr) << Name;
    rt::CompiledProgram CP(*P);
    ASSERT_TRUE(CP.tierAvailable(rt::ExecTier::Native)) << Name;
    for (size_t N : {size_t{0}, size_t{1}, size_t{17}, size_t{257}}) {
      std::vector<int64_t> Data = rt::generateWorkload(*P, N, R.next());
      // Force negative inputs into the mix: the guards use Euclidean
      // mod and signed comparisons.
      for (size_t I = 0; I + 1 < Data.size(); I += 2)
        Data[I] = -Data[I];
      std::vector<rt::SegmentView> Views = {{Data.data(), Data.size()}};
      EXPECT_EQ(CP.runSerialTier(rt::ExecTier::Native, Views),
                lang::runSerial(*P, Data))
          << Name << " N=" << N;
    }
  }
}

TEST(JitBackend, KernelCacheSharesOneHandlePerHash) {
  if (!jit::hostCompilerAvailable())
    GTEST_SKIP() << "no host compiler";
  // sum-of-elements step: state + element.
  std::vector<BcInstr> Is = {{BcOp::Add, 2, 0, 1, 0, 0}};
  BytecodeFunction F = BytecodeFunction::fromInstrs(Is, 2, 3, {2});

  jit::KernelCache &C = jit::KernelCache::instance();
  std::shared_ptr<const jit::NativeKernel> K1 = C.getOrCompile(F);
  ASSERT_NE(K1, nullptr) << C.lastError();
  jit::JitStats Before = C.stats();
  std::shared_ptr<const jit::NativeKernel> K2 = C.getOrCompile(F);
  ASSERT_NE(K2, nullptr);
  EXPECT_EQ(K1.get(), K2.get()); // one dlopen handle per hash.
  EXPECT_EQ(C.stats().MemoryHits, Before.MemoryHits + 1);

  // Same bytecode via a different construction hashes identically...
  std::vector<BcInstr> Is2 = {{BcOp::Add, 2, 0, 1, 0, 0}};
  BytecodeFunction G = BytecodeFunction::fromInstrs(Is2, 2, 3, {2});
  EXPECT_EQ(jit::bytecodeHash(F), jit::bytecodeHash(G));
  // ...while a different step does not.
  std::vector<BcInstr> Is3 = {{BcOp::Min, 2, 0, 1, 0, 0}};
  BytecodeFunction H = BytecodeFunction::fromInstrs(Is3, 2, 3, {2});
  EXPECT_NE(jit::bytecodeHash(F), jit::bytecodeHash(H));

  // Dropping the memory cache must reload from disk, not recompile.
  C.clearMemoryCache();
  jit::JitStats Mid = C.stats();
  std::shared_ptr<const jit::NativeKernel> K3 = C.getOrCompile(F);
  ASSERT_NE(K3, nullptr) << C.lastError();
  jit::JitStats After = C.stats();
  EXPECT_EQ(After.DiskHits, Mid.DiskHits + 1);
  EXPECT_EQ(After.Compiles, Mid.Compiles);
  // K1 stays callable through its own shared_ptr after the cache drop.
  std::vector<int64_t> State = {5};
  std::vector<int64_t> Data = {1, 2, 3};
  K1->fold(State.data(), Data.data(), Data.size());
  EXPECT_EQ(State[0], 11);
}

TEST(JitBackend, BogusCompilerFailsWithDecodedError) {
  std::vector<BcInstr> Is = {{BcOp::Add, 2, 0, 1, 0, 0}};
  BytecodeFunction F = BytecodeFunction::fromInstrs(Is, 2, 3, {2});
  jit::JitOptions O = testOptions();
  O.Cxx = "/nonexistent/grassp-no-such-compiler";
  O.DiskCache = false; // must not be satisfied by a cached object.
  std::string Err;
  std::shared_ptr<const jit::NativeKernel> K =
      jit::compileFoldKernel(F, O, &Err);
  EXPECT_EQ(K, nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(JitBackend, NonFoldShapeIsRejected) {
  // numOutputs + 1 != numInputs: not a fold step, never compiled.
  std::vector<BcInstr> Is = {{BcOp::Add, 2, 0, 1, 0, 0}};
  BytecodeFunction F = BytecodeFunction::fromInstrs(Is, 2, 3, {2, 2});
  std::string Err;
  EXPECT_EQ(jit::compileFoldKernel(F, testOptions(), &Err), nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(JitBackend, AblationAndKillSwitchDisableTheTier) {
  namespace rt = grassp::runtime;
  const lang::SerialProgram *P = lang::findBenchmark("is_sorted");
  ASSERT_NE(P, nullptr);
  // --no-native: the tier is off regardless of the host compiler.
  rt::CompiledProgram NoNative(*P, /*AllowSpecialize=*/true,
                               /*AllowNative=*/false);
  EXPECT_FALSE(NoNative.tierAvailable(rt::ExecTier::Native));
  EXPECT_EQ(NoNative.tier(), rt::ExecTier::LoopVM);

  // GRASSP_JIT_DISABLE: the env kill-switch yields no kernel even with
  // a compiler present, and tier selection falls back cleanly.
  ::setenv("GRASSP_JIT_DISABLE", "1", 1);
  rt::CompiledProgram Disabled(*P);
  ::unsetenv("GRASSP_JIT_DISABLE");
  EXPECT_FALSE(Disabled.tierAvailable(rt::ExecTier::Native));
  EXPECT_EQ(Disabled.tier(), rt::ExecTier::LoopVM);

  // Both ablated programs still run (loop VM) and agree with the
  // interpreter.
  std::vector<int64_t> Data = rt::generateWorkload(*P, 64, 7);
  std::vector<rt::SegmentView> Views = {{Data.data(), Data.size()}};
  EXPECT_EQ(NoNative.runSerial(Views), lang::runSerial(*P, Data));
  EXPECT_EQ(Disabled.runSerial(Views), lang::runSerial(*P, Data));
}

TEST(JitBackend, ShellQuoteAndWaitStatusHelpers) {
  EXPECT_EQ(jit::shellQuote("plain"), "'plain'");
  EXPECT_EQ(jit::shellQuote("a b"), "'a b'");
  EXPECT_EQ(jit::shellQuote("a'b"), "'a'\\''b'");
  EXPECT_FALSE(jit::waitStatusOk(-1));
  EXPECT_EQ(jit::describeWaitStatus(-1), "could not run (system() failed)");
  // A real shell round-trip: quoting must survive metacharacters.
  std::string Path = ::testing::TempDir() + "grassp jit $weird'name";
  std::string Cmd = "touch " + jit::shellQuote(Path);
  int Rc = std::system(Cmd.c_str());
  EXPECT_TRUE(jit::waitStatusOk(Rc)) << jit::describeWaitStatus(Rc);
  EXPECT_EQ(std::remove(Path.c_str()), 0);
}

} // namespace
