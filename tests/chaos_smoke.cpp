//===- tests/chaos_smoke.cpp - Bounded seeded fault-injection tier --------==//
//
// The fixed-seed chaos slice that runs on every ctest invocation,
// mirroring fuzz_smoke: every fault decision is a pure function of
// (seed, site, key), so each test here is deterministic and replayable.
// Covered layers:
//
//  * FaultInjector trigger semantics (probability, every-Nth, key
//    modulo, explicit key lists, fire caps);
//  * runtime::runParallel fault tolerance — retries with exact-output
//    recovery, permanent failures falling back to the serial refold,
//    straggler speculation, and the planted-fault counters;
//  * DiffOracle/fuzz chaos mode — the fault-tolerant pool path stays
//    bit-identical to the other execution paths while faults fire;
//  * mapreduce degraded clusters — dead nodes with exact outputs and
//    recovery accounting, all-nodes-dead as an explicit error;
//  * synth::ParallelDriver — crash re-runs, the crash-retry budget, and
//    journal-based resume after a simulated mid-flight kill.
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "mapreduce/Cluster.h"
#include "runtime/Runner.h"
#include "runtime/Workload.h"
#include "support/FaultInject.h"
#include "support/ThreadPool.h"
#include "support/Timing.h"
#include "synth/Grassp.h"
#include "synth/ParallelDriver.h"
#include "testing/DiffOracle.h"
#include "testing/Fuzz.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

using namespace grassp;
namespace gt = grassp::testing;

namespace {

//===----------------------------------------------------------------------===//
// FaultInjector trigger semantics
//===----------------------------------------------------------------------===//

TEST(FaultInjector, KeyedDecisionsAreDeterministicAndSeedDependent) {
  FaultSpec Spec;
  Spec.Probability = 0.5;
  auto firingSet = [&](uint64_t Seed) {
    FaultInjector FI(Seed);
    FI.arm("chaos.test", Spec);
    std::vector<uint64_t> Fired;
    for (uint64_t K = 0; K != 256; ++K)
      if (FI.shouldFailKeyed("chaos.test", K))
        Fired.push_back(K);
    return Fired;
  };
  std::vector<uint64_t> A = firingSet(1), B = firingSet(1), C = firingSet(2);
  EXPECT_EQ(A, B); // replayable from the seed alone.
  EXPECT_NE(A, C); // and the seed matters.
  // p = 0.5 over 256 keys: a sane draw is far from both extremes.
  EXPECT_GT(A.size(), 64u);
  EXPECT_LT(A.size(), 192u);
}

TEST(FaultInjector, ExplicitKeyListFiresExactlyThoseKeys) {
  FaultInjector FI(0);
  FaultSpec Spec;
  Spec.Keys = {3, 17};
  FI.arm("s", Spec);
  for (uint64_t K = 0; K != 32; ++K)
    EXPECT_EQ(FI.shouldFailKeyed("s", K), K == 3 || K == 17) << K;
  EXPECT_EQ(FI.stats("s").Fires, 2u);
  EXPECT_EQ(FI.stats("s").Hits, 32u);
}

TEST(FaultInjector, KeyModuloPlantsFaultOnResidue) {
  FaultInjector FI(0);
  FaultSpec Spec;
  Spec.KeyModulo = 4;
  Spec.KeyResidue = 1;
  FI.arm("s", Spec);
  for (uint64_t K = 0; K != 16; ++K)
    EXPECT_EQ(FI.shouldFailKeyed("s", K), K % 4 == 1) << K;
}

TEST(FaultInjector, EveryNthCountsHits) {
  FaultInjector FI(0);
  FaultSpec Spec;
  Spec.EveryNth = 3;
  FI.arm("s", Spec);
  unsigned Fires = 0;
  for (int I = 0; I != 12; ++I)
    Fires += FI.shouldFail("s") ? 1 : 0;
  EXPECT_EQ(Fires, 4u); // hits 3, 6, 9, 12.
  EXPECT_EQ(FI.stats("s").Hits, 12u);
  EXPECT_EQ(FI.stats("s").Fires, 4u);
}

TEST(FaultInjector, MaxFiresCapsTheSite) {
  FaultInjector FI(0);
  FaultSpec Spec;
  Spec.EveryNth = 1; // would fire every hit...
  Spec.MaxFires = 2; // ...but the cap stops it.
  FI.arm("s", Spec);
  unsigned Fires = 0;
  for (int I = 0; I != 10; ++I)
    Fires += FI.shouldFail("s") ? 1 : 0;
  EXPECT_EQ(Fires, 2u);
  EXPECT_EQ(FI.totalFires(), 2u);
}

TEST(FaultInjector, UnarmedAndDisarmedSitesNeverFire) {
  FaultInjector FI(0);
  EXPECT_FALSE(FI.shouldFailKeyed("nope", 1));
  EXPECT_FALSE(FI.armed("nope"));
  FaultSpec Spec;
  Spec.Keys = {1};
  FI.arm("s", Spec);
  EXPECT_TRUE(FI.armed("s"));
  FI.disarm("s");
  EXPECT_FALSE(FI.shouldFailKeyed("s", 1));
}

TEST(FaultInjector, MaybeThrowCarriesSiteAndKey) {
  FaultInjector FI(0);
  FaultSpec Spec;
  Spec.Keys = {7};
  FI.arm("s", Spec);
  EXPECT_NO_THROW(FI.maybeThrow("s", 6));
  try {
    FI.maybeThrow("s", 7);
    FAIL() << "planted key must throw";
  } catch (const FaultInjectedError &E) {
    EXPECT_EQ(E.site(), "s");
    EXPECT_EQ(E.key(), 7u);
  }
}

TEST(FaultInjector, DelayForReturnsSpecDelayOnFire) {
  FaultInjector FI(0);
  FaultSpec Spec;
  Spec.Keys = {2};
  Spec.DelaySeconds = 0.25;
  FI.arm("s", Spec);
  EXPECT_DOUBLE_EQ(FI.delayFor("s", 1), 0.0);
  EXPECT_DOUBLE_EQ(FI.delayFor("s", 2), 0.25);
}

//===----------------------------------------------------------------------===//
// runtime::runParallel fault tolerance
//===----------------------------------------------------------------------===//

/// One cheap synthesized plan, shared across the runner tests.
const synth::SynthesisResult &sumSynth() {
  static synth::SynthesisResult R =
      synth::synthesize(*lang::findBenchmark("sum"));
  return R;
}

struct SumRun {
  std::vector<int64_t> Data;
  std::vector<runtime::SegmentView> Segs;
  runtime::CompiledProgram CP;
  runtime::CompiledPlan Plan;
  int64_t Serial;

  explicit SumRun(size_t N = 4000, unsigned M = 8)
      : Data(runtime::generateWorkload(*lang::findBenchmark("sum"), N, 21)),
        Segs(runtime::partition(Data, M)),
        CP(*lang::findBenchmark("sum")),
        Plan(*lang::findBenchmark("sum"), sumSynth().Plan),
        Serial(CP.runSerial(Segs)) {}
};

TEST(RunnerFaults, PlantedFirstAttemptFailureRetriesToExactOutput) {
  SumRun R;
  for (bool UsePool : {false, true}) {
    FaultInjector FI(9);
    FaultSpec Spec;
    // Segment 2's first attempt fails; its retry must succeed.
    Spec.Keys = {0 * runtime::WorkerAttemptKeyStride + 2};
    FI.arm(runtime::FaultSiteWorker, Spec);
    runtime::RunPolicy Pol;
    Pol.Faults = &FI;

    ThreadPool Pool(4);
    runtime::ParallelRunResult PR = runtime::runParallel(
        R.Plan, R.Segs, UsePool ? &Pool : nullptr, Pol);
    EXPECT_EQ(PR.Output, R.Serial) << "pool=" << UsePool;
    EXPECT_EQ(PR.FailedAttempts, 1u) << "pool=" << UsePool;
    EXPECT_EQ(PR.Retries, 1u) << "pool=" << UsePool;
    EXPECT_EQ(PR.SerialRefolds, 0u) << "pool=" << UsePool;
  }
}

TEST(RunnerFaults, PermanentSegmentFailureFallsBackToSerialRefold) {
  SumRun R;
  for (bool UsePool : {false, true}) {
    FaultInjector FI(9);
    FaultSpec Spec;
    // Every attempt of segment 1 fails (MaxRetries = 2 grants three).
    Spec.Keys = {0 * runtime::WorkerAttemptKeyStride + 1,
                 1 * runtime::WorkerAttemptKeyStride + 1,
                 2 * runtime::WorkerAttemptKeyStride + 1};
    FI.arm(runtime::FaultSiteWorker, Spec);
    runtime::RunPolicy Pol;
    Pol.MaxRetries = 2;
    Pol.Faults = &FI;

    ThreadPool Pool(4);
    runtime::ParallelRunResult PR = runtime::runParallel(
        R.Plan, R.Segs, UsePool ? &Pool : nullptr, Pol);
    EXPECT_EQ(PR.Output, R.Serial) << "pool=" << UsePool;
    EXPECT_EQ(PR.FailedAttempts, 3u) << "pool=" << UsePool;
    EXPECT_EQ(PR.Retries, 2u) << "pool=" << UsePool;
    EXPECT_EQ(PR.SerialRefolds, 1u) << "pool=" << UsePool;
  }
}

// A seeded probability sweep: whatever pattern of worker failures each
// seed induces, the merged output must equal the serial fold exactly.
TEST(RunnerFaults, ChaosSweepStaysBitIdentical) {
  SumRun R(6000, 12);
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    for (bool UsePool : {false, true}) {
      FaultInjector FI(Seed);
      FaultSpec Spec;
      Spec.Probability = 0.4;
      FI.arm(runtime::FaultSiteWorker, Spec);
      runtime::RunPolicy Pol;
      Pol.MaxRetries = 2;
      Pol.Speculate = UsePool;
      Pol.Faults = &FI;

      ThreadPool Pool(4);
      runtime::ParallelRunResult PR = runtime::runParallel(
          R.Plan, R.Segs, UsePool ? &Pool : nullptr, Pol);
      EXPECT_EQ(PR.Output, R.Serial)
          << "seed=" << Seed << " pool=" << UsePool << " "
          << FI.describe();
    }
  }
}

TEST(RunnerFaults, StragglerGetsSpeculativeBackup) {
  SumRun R;
  FaultInjector FI(3);
  FaultSpec Straggle;
  Straggle.Keys = {0};
  Straggle.DelaySeconds = 0.08; // primary sleeps; the backup races past.
  FI.arm(runtime::FaultSiteStraggler, Straggle);
  runtime::RunPolicy Pol;
  Pol.Faults = &FI;
  Pol.Speculate = true;
  Pol.SpeculationMinCompletedFraction = 0.25;
  Pol.SpeculationMinSeconds = 0.001;
  Pol.SpeculationDelayFactor = 2.0;

  ThreadPool Pool(4);
  runtime::ParallelRunResult PR =
      runtime::runParallel(R.Plan, R.Segs, &Pool, Pol);
  EXPECT_EQ(PR.Output, R.Serial);
  EXPECT_GE(PR.SpeculativeLaunches, 1u);
  EXPECT_GE(PR.SpeculativeWins, 1u);
  EXPECT_EQ(PR.SerialRefolds, 0u);
}

TEST(RunnerFaults, CriticalPathModeModelsStallWithoutSleeping) {
  SumRun R;
  FaultInjector FI(3);
  FaultSpec Straggle;
  Straggle.Keys = {1};
  Straggle.DelaySeconds = 0.05;
  FI.arm(runtime::FaultSiteStraggler, Straggle);
  runtime::RunPolicy Pol;
  Pol.Faults = &FI;

  Stopwatch Wall;
  runtime::ParallelRunResult PR =
      runtime::runParallel(R.Plan, R.Segs, nullptr, Pol);
  EXPECT_EQ(PR.Output, R.Serial);
  // The stall lands in the *modeled* per-worker time...
  EXPECT_GE(PR.WorkerSeconds[1], 0.05);
  // ...but nothing actually slept for it.
  EXPECT_LT(Wall.seconds(), 0.05);
}

//===----------------------------------------------------------------------===//
// DiffOracle / fuzz chaos mode
//===----------------------------------------------------------------------===//

TEST(ChaosOracle, FaultTolerantPathStaysBitIdentical) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(sumSynth().Success);

  FaultInjector FI(11);
  FaultSpec Worker;
  Worker.Probability = 0.5;
  FI.arm(runtime::FaultSiteWorker, Worker);

  gt::OracleConfig OC;
  OC.UseEmitted = false;
  OC.Policy.MaxRetries = 3;
  OC.Policy.Faults = &FI;
  gt::DiffOracle Oracle(*P, sumSynth().Plan, OC);

  EXPECT_FALSE(Oracle.check({{1, 2, 3}, {}, {4}, {5, 6}}).Diverged);
  EXPECT_FALSE(Oracle.check({{}, {}, {}}).Diverged);
  EXPECT_FALSE(Oracle.check({{7}, {8}, {9}, {10}, {11}, {12}}).Diverged);
  // Faults really fired, and the oracle saw the recovery work.
  EXPECT_GT(FI.totalFires(), 0u) << FI.describe();
  EXPECT_GT(Oracle.faultStats().FailedAttempts, 0u);
}

TEST(ChaosOracle, ChaosFuzzSweepFindsNoDivergence) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(sumSynth().Success);

  gt::FuzzOptions Opts;
  Opts.Seed = 1;
  Opts.Seconds = 0;
  Opts.Segments = 4;
  Opts.UseEmitted = false;
  Opts.Sizes = {0, 1, 3, 17, 64};
  Opts.Chaos = true;
  Opts.ChaosSeed = 5;
  Opts.ChaosFailPermille = 300;
  Opts.ChaosStragglerPermille = 0; // keep the smoke tier fast.

  gt::FuzzReport Rep = gt::fuzzBenchmark(*P, sumSynth().Plan, Opts);
  EXPECT_FALSE(Rep.Diverged) << Rep.Shape << ": " << Rep.Detail;
  EXPECT_GT(Rep.FaultFires, 0u);
  EXPECT_GT(Rep.Faults.FailedAttempts, 0u);
}

//===----------------------------------------------------------------------===//
// mapreduce degraded clusters
//===----------------------------------------------------------------------===//

TEST(ClusterChaos, DeadNodeJobRecoversWithExactOutput) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(sumSynth().Success);

  mapreduce::ClusterConfig Cfg;
  Cfg.ComputeScale = 50000.0;
  // Small DFS blocks spread shard homes across all ten nodes, so the
  // dead node really owns map tasks that must be re-executed.
  mapreduce::MiniDfs Dfs(Cfg.Nodes, /*BlockElems=*/4096);
  std::vector<int64_t> Data = runtime::generateWorkload(*P, 60000, 5);
  Dfs.put("in", Data);
  runtime::CompiledProgram CP(*P);
  int64_t Serial = CP.runSerial({{Data.data(), Data.size()}});

  FaultInjector FI(1);
  FaultSpec Dead;
  Dead.Keys = {3}; // node 3 is down for the whole job.
  FI.arm(mapreduce::FaultSiteClusterNode, Dead);
  Cfg.Faults = &FI;

  mapreduce::JobReport Rep =
      mapreduce::runJob(*P, sumSynth().Plan, Dfs, "in", Cfg);
  EXPECT_EQ(Rep.Output, Serial); // exact even under failure.
  EXPECT_EQ(Rep.FailedNodes, 1u);
  EXPECT_GT(Rep.FailedTasks, 0u); // node 3's shards were re-executed.
  EXPECT_GT(Rep.RecoverySec, 0.0);
  // The job still finishes with a sane time model; with this small a
  // workload the 10s failure-detection floor can eat the whole speedup,
  // so only sanity is asserted, not >1.
  EXPECT_GT(Rep.Speedup, 0.0);
  EXPECT_GT(Rep.ParallelJobSec, Cfg.JobStartupSec);
}

TEST(ClusterChaos, EveryNodeDeadIsAnExplicitError) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(sumSynth().Success);

  mapreduce::ClusterConfig Cfg;
  Cfg.Nodes = 3;
  mapreduce::MiniDfs Dfs(Cfg.Nodes);
  Dfs.put("in", runtime::generateWorkload(*P, 3000, 5));

  FaultInjector FI(1);
  FaultSpec Dead;
  Dead.KeyModulo = 1; // every key: all nodes fail.
  FI.arm(mapreduce::FaultSiteClusterNode, Dead);
  Cfg.Faults = &FI;
  EXPECT_THROW(mapreduce::runJob(*P, sumSynth().Plan, Dfs, "in", Cfg),
               std::runtime_error);
}

TEST(ClusterChaos, ModeledStragglerGetsSpeculativeBackup) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(sumSynth().Success);

  mapreduce::ClusterConfig Cfg;
  Cfg.ComputeScale = 50000.0;
  mapreduce::MiniDfs Dfs(Cfg.Nodes);
  std::vector<int64_t> Data = runtime::generateWorkload(*P, 60000, 5);
  Dfs.put("in", Data);
  runtime::CompiledProgram CP(*P);
  int64_t Serial = CP.runSerial({{Data.data(), Data.size()}});

  FaultInjector FI(1);
  FaultSpec Straggle;
  Straggle.Keys = {0};          // map task 0 runs slow...
  Straggle.DelaySeconds = 30.0; // ...by 30 modeled seconds.
  FI.arm(mapreduce::FaultSiteClusterStraggler, Straggle);
  Cfg.Faults = &FI;

  mapreduce::JobReport Rep =
      mapreduce::runJob(*P, sumSynth().Plan, Dfs, "in", Cfg);
  EXPECT_EQ(Rep.Output, Serial);
  EXPECT_GE(Rep.SpeculativeTasks, 1u);
  EXPECT_EQ(Rep.FailedNodes, 0u);
}

//===----------------------------------------------------------------------===//
// Cancellation under chaos
//===----------------------------------------------------------------------===//

// The tentpole interaction: a token fired mid-run while injected
// stragglers are sleeping and workers are failing. The run must come
// back promptly (the 5s stalls are served interruptibly), report
// Cancelled without an output, and leave the pool reusable — and the
// same configuration re-run without a cancel still agrees with serial.
TEST(ChaosCancel, MidRunCancelCutsInjectedStallsAndNeverMerges) {
  SumRun R;
  FaultInjector FI(3);
  FaultSpec Straggle;
  Straggle.KeyModulo = 1; // every segment stalls...
  Straggle.DelaySeconds = 5.0; // ...for far longer than this test runs.
  FI.arm(runtime::FaultSiteStraggler, Straggle);
  FaultSpec Fail;
  Fail.Probability = 0.3;
  FI.arm(runtime::FaultSiteWorker, Fail);

  CancelToken Token = CancelToken::root();
  runtime::RunPolicy Pol;
  Pol.Faults = &FI;
  Pol.MaxRetries = 2;
  Pol.Token = Token;

  std::thread Firer([&Token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Token.cancel();
  });
  ThreadPool Pool(4);
  Stopwatch Wall;
  runtime::ParallelRunResult PR =
      runtime::runParallel(R.Plan, R.Segs, &Pool, Pol);
  double Elapsed = Wall.seconds();
  Firer.join();

  EXPECT_TRUE(PR.Cancelled);
  // Interruptible stalls: nothing served the injected 5s sleeps out.
  EXPECT_LT(Elapsed, 2.0);
  // A cut run never commits a partial merge as its output.
  EXPECT_LT(PR.CompletedSegments, static_cast<unsigned>(R.Segs.size()));

  // The pool survives the cut, and the same chaos configuration without
  // a cancel (and humane stalls) still produces the exact serial answer.
  FaultInjector FI2(3);
  FaultSpec Straggle2;
  Straggle2.Keys = {1};
  Straggle2.DelaySeconds = 0.01;
  FI2.arm(runtime::FaultSiteStraggler, Straggle2);
  FI2.arm(runtime::FaultSiteWorker, Fail);
  runtime::RunPolicy Pol2;
  Pol2.Faults = &FI2;
  Pol2.MaxRetries = 3;
  runtime::ParallelRunResult PR2 =
      runtime::runParallel(R.Plan, R.Segs, &Pool, Pol2);
  EXPECT_FALSE(PR2.Cancelled);
  EXPECT_EQ(PR2.Output, R.Serial);
}

// Same cut, critical-path (poolless) mode: the modeled path serves
// injected stalls as real sleeps only in pool mode, but cancellation
// must still stop the segment walk early and withhold the merge.
TEST(ChaosCancel, PreFiredTokenCancelsCriticalPathRun) {
  SumRun R;
  CancelToken Token = CancelToken::root();
  Token.cancel();
  runtime::RunPolicy Pol;
  Pol.Token = Token;
  runtime::ParallelRunResult PR =
      runtime::runParallel(R.Plan, R.Segs, nullptr, Pol);
  EXPECT_TRUE(PR.Cancelled);
  EXPECT_EQ(PR.CompletedSegments, 0u);
}

// A cancelled oracle check reports no verdict rather than a spurious
// divergence (the parallel path produced no output to compare).
TEST(ChaosCancel, CancelledOracleCheckIsNotADivergence) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(sumSynth().Success);

  CancelToken Token = CancelToken::root();
  Token.cancel();
  gt::OracleConfig OC;
  OC.UseEmitted = false;
  OC.Policy.Token = Token;
  gt::DiffOracle Oracle(*P, sumSynth().Plan, OC);
  EXPECT_FALSE(Oracle.check({{1, 2, 3}, {4, 5}}).Diverged);
}

// fuzzBenchmark under a fired token: the sweep stops between checks and
// says so instead of fabricating results.
TEST(ChaosCancel, FuzzSweepReportsCancelled) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(sumSynth().Success);

  CancelToken Token = CancelToken::root();
  Token.cancel();
  gt::FuzzOptions Opts;
  Opts.UseEmitted = false;
  Opts.Token = Token;
  gt::FuzzReport Rep = gt::fuzzBenchmark(*P, sumSynth().Plan, Opts);
  EXPECT_TRUE(Rep.Cancelled);
  EXPECT_FALSE(Rep.Diverged);
}

//===----------------------------------------------------------------------===//
// synth::ParallelDriver crash retries and journal resume
//===----------------------------------------------------------------------===//

std::string tempJournalPath(const char *Tag) {
  std::string Path = ::testing::TempDir() + "grassp_chaos_" + Tag + ".jsonl";
  std::remove(Path.c_str());
  return Path;
}

TEST(DriverJournal, LineRoundTripsAndTornLinesAreRejected) {
  synth::TaskResult T;
  T.Name = "sum";
  T.Status = synth::TaskStatus::Solved;
  T.Attempts = 2;
  T.BudgetMs = 1234;
  T.Result.Group = "B1";
  T.Result.SynthSeconds = 0.5;

  std::string Line = synth::journalLine(T);
  synth::JournalEntry E;
  ASSERT_TRUE(synth::parseJournalLine(Line, &E)) << Line;
  EXPECT_EQ(E.Name, "sum");
  EXPECT_EQ(E.Status, synth::TaskStatus::Solved);
  EXPECT_EQ(E.Group, "B1");
  EXPECT_EQ(E.Attempts, 2u);
  EXPECT_EQ(E.BudgetMs, 1234u);
  EXPECT_DOUBLE_EQ(E.Seconds, 0.5);

  // A crash mid-write leaves a torn prefix; it must parse as garbage,
  // not as a half-right entry.
  EXPECT_FALSE(synth::parseJournalLine(Line.substr(0, Line.size() / 2), &E));
  EXPECT_FALSE(synth::parseJournalLine("", &E));
}

TEST(DriverJournal, LoadSkipsTornLinesAndLetsLaterLinesWin) {
  std::string Path = tempJournalPath("load");
  {
    synth::TaskResult T;
    T.Name = "sum";
    T.Status = synth::TaskStatus::Unknown;
    std::ofstream Out(Path);
    Out << synth::journalLine(T) << '\n';
    T.Status = synth::TaskStatus::Solved; // the re-run superseded it.
    Out << synth::journalLine(T) << '\n';
    Out << "{\"task\":\"torn"; // the line the kill interrupted.
  }
  std::vector<synth::JournalEntry> Entries = synth::loadJournal(Path);
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].Name, "sum");
  EXPECT_EQ(Entries[0].Status, synth::TaskStatus::Solved);
  std::remove(Path.c_str());
}

TEST(DriverJournal, ResumeSkipsSolvedTasksAndRunsTheRest) {
  const lang::SerialProgram *Sum = lang::findBenchmark("sum");
  const lang::SerialProgram *Count = lang::findBenchmark("count");
  ASSERT_NE(Sum, nullptr);
  ASSERT_NE(Count, nullptr);

  // Simulate a run killed mid-flight: "sum" made it into the journal,
  // "count" did not.
  std::string Path = tempJournalPath("resume");
  {
    synth::TaskResult T;
    T.Name = "sum";
    T.Status = synth::TaskStatus::Solved;
    T.Attempts = 1;
    T.BudgetMs = 30000;
    T.Result.Group = "B1";
    T.Result.SynthSeconds = 0.1;
    std::ofstream Out(Path);
    Out << synth::journalLine(T) << '\n';
  }

  synth::DriverOptions Opts;
  Opts.Jobs = 1;
  Opts.JournalPath = Path;
  Opts.Resume = true;
  synth::ParallelDriver Driver(Opts);
  std::vector<synth::TaskResult> Results = Driver.run({Sum, Count});
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_TRUE(Results[0].FromJournal); // restored, not re-synthesized.
  EXPECT_EQ(Results[0].Status, synth::TaskStatus::Solved);
  EXPECT_EQ(Results[0].Result.Group, "B1");
  EXPECT_FALSE(Results[1].FromJournal); // really ran.
  EXPECT_EQ(Results[1].Status, synth::TaskStatus::Solved);
  EXPECT_TRUE(Results[1].Result.Success);

  // The finished task was appended, so a second resume restores both.
  std::vector<synth::JournalEntry> Entries = synth::loadJournal(Path);
  EXPECT_EQ(Entries.size(), 2u);
  std::vector<synth::TaskResult> Again = Driver.run({Sum, Count});
  EXPECT_TRUE(Again[0].FromJournal);
  EXPECT_TRUE(Again[1].FromJournal);
  std::remove(Path.c_str());
}

TEST(DriverCrash, InjectedCrashIsRerunAtTheSameBudget) {
  const lang::SerialProgram *Sum = lang::findBenchmark("sum");
  ASSERT_NE(Sum, nullptr);

  FaultInjector FI(0);
  FaultSpec Spec;
  Spec.Keys = {0}; // attempt 1 of task 0 crashes; the re-run succeeds.
  FI.arm(synth::FaultSiteSynthTask, Spec);
  synth::DriverOptions Opts;
  Opts.Faults = &FI;

  synth::TaskResult T = synth::ParallelDriver::synthesizeOne(*Sum, Opts, 0);
  EXPECT_EQ(T.Status, synth::TaskStatus::Solved);
  EXPECT_EQ(T.CrashRetries, 1u);
  EXPECT_EQ(T.Attempts, 2u);
  EXPECT_TRUE(T.Result.Success);
}

TEST(DriverCrash, ExhaustedCrashBudgetReportsCrashed) {
  const lang::SerialProgram *Sum = lang::findBenchmark("sum");
  ASSERT_NE(Sum, nullptr);

  FaultInjector FI(0);
  FaultSpec Spec;
  Spec.Keys = {0 * synth::SynthAttemptKeyStride,
               1 * synth::SynthAttemptKeyStride,
               2 * synth::SynthAttemptKeyStride};
  FI.arm(synth::FaultSiteSynthTask, Spec);
  synth::DriverOptions Opts;
  Opts.MaxCrashRetries = 2; // three attempts total, all planted to crash.
  Opts.Faults = &FI;

  synth::TaskResult T = synth::ParallelDriver::synthesizeOne(*Sum, Opts, 0);
  EXPECT_EQ(T.Status, synth::TaskStatus::Crashed);
  EXPECT_EQ(T.CrashRetries, 2u);
  EXPECT_FALSE(T.Result.Success);
  EXPECT_NE(T.Result.FailureReason.find("crashed"), std::string::npos);
}

} // namespace
