//===- tests/plan_describe_test.cpp - Plan metadata and printing ----------==//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "synth/Grassp.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::ir;
using namespace grassp::synth;

namespace {

TEST(PlanMeta, ScenarioAndFlavorNames) {
  EXPECT_STREQ(scenarioName(Scenario::NoPrefix), "no-prefix");
  EXPECT_STREQ(scenarioName(Scenario::ConstPrefix), "const-prefix");
  EXPECT_STREQ(scenarioName(Scenario::CondPrefixRefold),
               "cond-prefix-refold");
  EXPECT_STREQ(scenarioName(Scenario::CondPrefixSummary),
               "cond-prefix-summary");
  EXPECT_STREQ(accFlavorName(AccFlavor::Plus), "+");
  EXPECT_STREQ(accFlavorName(AccFlavor::Max), "max");
}

TEST(PlanMeta, TrivialMergeClassification) {
  MergeFn M;
  M.Combine = {add(var("a_s", TypeKind::Int), var("b_s", TypeKind::Int))};
  EXPECT_TRUE(M.isTrivial());
  MergeFn Keyed;
  Keyed.Combine = {ite(gt(var("a_k", TypeKind::Int),
                          var("b_k", TypeKind::Int)),
                      var("a_s", TypeKind::Int),
                      var("b_s", TypeKind::Int))};
  EXPECT_FALSE(Keyed.isTrivial());
  MergeFn Refold;
  Refold.Refold = true;
  EXPECT_FALSE(Refold.isTrivial());
}

TEST(PlanMeta, GroupLabels) {
  // Single-field trivial merge: B1.
  ParallelPlan P1;
  P1.Kind = Scenario::NoPrefix;
  P1.Merge.Combine = {
      add(var("a_s", TypeKind::Int), var("b_s", TypeKind::Int))};
  EXPECT_EQ(P1.group(), "B1");
  // Multi-field, even if each field is a single operator: B2.
  ParallelPlan P2 = P1;
  P2.Merge.Combine.push_back(
      smax(var("a_m", TypeKind::Int), var("b_m", TypeKind::Int)));
  EXPECT_EQ(P2.group(), "B2");
  ParallelPlan P3;
  P3.Kind = Scenario::ConstPrefix;
  EXPECT_EQ(P3.group(), "B3");
  ParallelPlan P4;
  P4.Kind = Scenario::CondPrefixSummary;
  EXPECT_EQ(P4.group(), "B4");
}

TEST(PlanMeta, DescribeMentionsKeyArtifacts) {
  const lang::SerialProgram *P = lang::findBenchmark("count_102");
  SynthesisResult R = synthesize(*P);
  ASSERT_TRUE(R.Success);
  std::string D = R.Plan.describe(*P);
  EXPECT_NE(D.find("prefix_cond"), std::string::npos);
  EXPECT_NE(D.find("upd"), std::string::npos);
  EXPECT_NE(D.find("B4"), std::string::npos);
}

TEST(SymbolicFold, ConstantFoldsClosedPrograms) {
  // Folding "count" over 3 symbolic elements yields the literal 3: the
  // builders' local simplification collapses input-independent terms.
  const lang::SerialProgram *P = lang::findBenchmark("count");
  SymbolicPolicy Pol;
  lang::StateVec<SymbolicPolicy> St = lang::initialState(*P, Pol);
  std::vector<ExprRef> Elems = {var("e0", TypeKind::Int),
                                var("e1", TypeKind::Int),
                                var("e2", TypeKind::Int)};
  St = lang::foldSegment(*P, std::move(St), Elems, Pol);
  ExprRef Out = lang::outputOf(*P, St, Pol);
  ASSERT_TRUE(Out->isConstInt());
  EXPECT_EQ(Out->intValue(), 3);
}

TEST(SymbolicFold, SumBuildsLinearTerm) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  SymbolicPolicy Pol;
  lang::StateVec<SymbolicPolicy> St = lang::initialState(*P, Pol);
  std::vector<ExprRef> Elems = {var("e0", TypeKind::Int),
                                var("e1", TypeKind::Int)};
  St = lang::foldSegment(*P, std::move(St), Elems, Pol);
  ExprRef Out = lang::outputOf(*P, St, Pol);
  // The zero initial state folds away: the result is e0 + e1.
  EXPECT_EQ(toString(Out), "(e0 + e1)");
}

} // namespace
