//===- tests/synth_paralleldriver_test.cpp - Concurrent synthesis driver --==//
//
// The driver's contract: results come back in input order with the same
// plans, stage logs, and counter values for any job count, and the
// budget/retry policy distinguishes solver timeouts from genuine search
// exhaustion.
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "support/Cancel.h"
#include "synth/ParallelDriver.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <thread>

using namespace grassp;
using namespace grassp::synth;

namespace {

std::vector<const lang::SerialProgram *> pick(
    std::initializer_list<const char *> Names) {
  std::vector<const lang::SerialProgram *> Progs;
  for (const char *N : Names) {
    const lang::SerialProgram *P = lang::findBenchmark(N);
    EXPECT_NE(P, nullptr) << N;
    Progs.push_back(P);
  }
  return Progs;
}

// A cross-section of the suite: B1 scan, B2 merge, B3 prefix, B4
// summary. Byte-for-byte identical results expected at any job count.
TEST(ParallelDriver, DeterministicAcrossJobCounts) {
  std::vector<const lang::SerialProgram *> Progs =
      pick({"sum", "second_max", "is_sorted", "count_102"});

  DriverOptions Serial;
  Serial.Jobs = 1;
  std::vector<TaskResult> A = ParallelDriver(Serial).run(Progs);

  DriverOptions Par;
  Par.Jobs = 4;
  std::vector<TaskResult> B = ParallelDriver(Par).run(Progs);

  ASSERT_EQ(A.size(), Progs.size());
  ASSERT_EQ(B.size(), Progs.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Name, Progs[I]->Name);
    EXPECT_EQ(A[I].Name, B[I].Name);
    EXPECT_EQ(A[I].Status, B[I].Status);
    EXPECT_EQ(A[I].Attempts, B[I].Attempts);
    ASSERT_TRUE(A[I].Result.Success);
    ASSERT_TRUE(B[I].Result.Success);
    EXPECT_EQ(A[I].Result.Group, B[I].Result.Group);
    EXPECT_EQ(A[I].Result.CandidatesTried, B[I].Result.CandidatesTried);
    EXPECT_EQ(A[I].Result.SmtChecks, B[I].Result.SmtChecks);
    EXPECT_EQ(A[I].Result.StageLog, B[I].Result.StageLog);
    EXPECT_EQ(A[I].Result.Plan.describe(*Progs[I]),
              B[I].Result.Plan.describe(*Progs[I]));
  }
}

TEST(ParallelDriver, SolvedTasksUseOneAttemptAtTheBaseBudget) {
  DriverOptions Opts;
  Opts.SmtTimeoutMs = 20000;
  TaskResult T =
      ParallelDriver::synthesizeOne(*lang::findBenchmark("sum"), Opts);
  EXPECT_EQ(T.Status, TaskStatus::Solved);
  EXPECT_EQ(T.Attempts, 1u);
  EXPECT_EQ(T.BudgetMs, 20000u);
  EXPECT_EQ(T.Result.UnknownVerdicts, 0u);
  EXPECT_EQ(T.Result.Group, "B1");
}

// A fold no GRASSP stage can parallelize: s' = 2*s + in is
// position-dependent (each element's weight depends on how many follow),
// so every merge/prefix candidate is refuted concretely — a Failed
// status with no Unknown verdicts, and therefore no doubled-budget retry.
TEST(ParallelDriver, ExhaustionReportsFailedWithoutRetry) {
  lang::SerialProgram P;
  P.Name = "binary_digits";
  P.Description = "fold s' = 2*s + in (not segment-parallelizable)";
  P.State = lang::StateLayout({{"s", ir::TypeKind::Int, 0}});
  P.Step = {ir::add(ir::mul(ir::constInt(2), ir::var("s", ir::TypeKind::Int)),
                    ir::var(lang::inputVarName(), ir::TypeKind::Int))};
  P.Output = ir::var("s", ir::TypeKind::Int);
  P.GenLo = 0;
  P.GenHi = 1;

  DriverOptions Opts;
  TaskResult T = ParallelDriver::synthesizeOne(P, Opts);
  EXPECT_EQ(T.Status, TaskStatus::Failed);
  EXPECT_EQ(T.Attempts, 1u);
  EXPECT_FALSE(T.Result.Success);
  EXPECT_EQ(T.Result.UnknownVerdicts, 0u);
}

// The acceptance pin for cooperative cancellation: a run cut by the
// token keeps every finished task in the journal, cancelled tasks stay
// out, and --resume re-runs exactly the remainder.
TEST(ParallelDriver, CancelFlushesJournalAndResumeRunsExactlyTheRest) {
  const std::string Path = "/tmp/grassp_cancel_journal_test.jsonl";
  std::remove(Path.c_str());

  // sum finishes fast; binary_digits (position-dependent fold, from the
  // exhaustion test above) grinds through every stage, giving the
  // watcher ample time to land the cancel mid-task; the rest never
  // start.
  lang::SerialProgram Slow;
  Slow.Name = "binary_digits";
  Slow.Description = "fold s' = 2*s + in (not segment-parallelizable)";
  Slow.State = lang::StateLayout({{"s", ir::TypeKind::Int, 0}});
  Slow.Step = {
      ir::add(ir::mul(ir::constInt(2), ir::var("s", ir::TypeKind::Int)),
              ir::var(lang::inputVarName(), ir::TypeKind::Int))};
  Slow.Output = ir::var("s", ir::TypeKind::Int);
  Slow.GenLo = 0;
  Slow.GenHi = 1;

  std::vector<const lang::SerialProgram *> Progs =
      pick({"sum", "second_max", "is_sorted"});
  Progs.insert(Progs.begin() + 1, &Slow);

  CancelToken Token = CancelToken::root();
  DriverOptions Opts;
  Opts.Jobs = 1;
  Opts.JournalPath = Path;
  Opts.Token = Token;

  // Fire the run token the moment the journal records a finished task —
  // a deterministic stand-in for Ctrl-C partway through a sweep.
  std::thread Firer([&] {
    while (loadJournal(Path).empty())
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Token.cancel();
  });
  std::vector<TaskResult> First = ParallelDriver(Opts).run(Progs);
  Firer.join();

  ASSERT_EQ(First.size(), Progs.size());
  EXPECT_EQ(First[0].Status, TaskStatus::Solved);
  std::set<std::string> Journaled, JournaledSolved;
  for (const JournalEntry &E : loadJournal(Path)) {
    Journaled.insert(E.Name);
    if (E.Status == TaskStatus::Solved)
      JournaledSolved.insert(E.Name);
  }
  EXPECT_EQ(JournaledSolved.count("sum"), 1u);
  unsigned CancelledCount = 0;
  for (const TaskResult &T : First) {
    if (T.Status == TaskStatus::Cancelled) {
      ++CancelledCount;
      // Cancelled tasks never reach the journal: a cut task has no
      // verdict, and journaling one would make --resume skip real work.
      EXPECT_EQ(Journaled.count(T.Name), 0u) << T.Name;
    } else {
      EXPECT_EQ(Journaled.count(T.Name), 1u) << T.Name;
    }
  }
  ASSERT_GE(CancelledCount, 1u);

  // --resume under a fresh token: tasks journaled as solved come back
  // FromJournal without re-running; everything else (the cancelled
  // remainder, plus any journaled non-solved verdict) runs for real.
  DriverOptions ROpts = Opts;
  ROpts.Token = CancelToken();
  ROpts.Resume = true;
  std::vector<TaskResult> Second = ParallelDriver(ROpts).run(Progs);
  ASSERT_EQ(Second.size(), Progs.size());
  for (const TaskResult &T : Second) {
    EXPECT_EQ(T.FromJournal, JournaledSolved.count(T.Name) == 1) << T.Name;
    EXPECT_NE(T.Status, TaskStatus::Cancelled) << T.Name;
    if (T.Name != "binary_digits") {
      EXPECT_EQ(T.Status, TaskStatus::Solved) << T.Name;
    }
  }
  std::remove(Path.c_str());
}

// A token fired before run() starts cancels everything without touching
// the journal at all.
TEST(ParallelDriver, PreFiredTokenCancelsEveryTask) {
  CancelToken Token = CancelToken::root();
  Token.cancel();
  DriverOptions Opts;
  Opts.Jobs = 2;
  Opts.Token = Token;
  std::vector<TaskResult> R =
      ParallelDriver(Opts).run(pick({"sum", "second_max"}));
  ASSERT_EQ(R.size(), 2u);
  for (const TaskResult &T : R) {
    EXPECT_EQ(T.Status, TaskStatus::Cancelled);
    EXPECT_EQ(T.Result.FailureReason, "cancelled");
  }
}

TEST(ParallelDriver, TaskStatusNamesRoundTrip) {
  for (TaskStatus S :
       {TaskStatus::Solved, TaskStatus::Unknown, TaskStatus::Failed,
        TaskStatus::TimedOut, TaskStatus::Crashed, TaskStatus::Cancelled}) {
    TaskStatus Back;
    ASSERT_TRUE(taskStatusFromName(taskStatusName(S), &Back));
    EXPECT_EQ(Back, S);
  }
  TaskStatus Out;
  EXPECT_FALSE(taskStatusFromName("bogus", &Out));
}

} // namespace
