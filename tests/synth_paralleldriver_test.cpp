//===- tests/synth_paralleldriver_test.cpp - Concurrent synthesis driver --==//
//
// The driver's contract: results come back in input order with the same
// plans, stage logs, and counter values for any job count, and the
// budget/retry policy distinguishes solver timeouts from genuine search
// exhaustion.
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "synth/ParallelDriver.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::synth;

namespace {

std::vector<const lang::SerialProgram *> pick(
    std::initializer_list<const char *> Names) {
  std::vector<const lang::SerialProgram *> Progs;
  for (const char *N : Names) {
    const lang::SerialProgram *P = lang::findBenchmark(N);
    EXPECT_NE(P, nullptr) << N;
    Progs.push_back(P);
  }
  return Progs;
}

// A cross-section of the suite: B1 scan, B2 merge, B3 prefix, B4
// summary. Byte-for-byte identical results expected at any job count.
TEST(ParallelDriver, DeterministicAcrossJobCounts) {
  std::vector<const lang::SerialProgram *> Progs =
      pick({"sum", "second_max", "is_sorted", "count_102"});

  DriverOptions Serial;
  Serial.Jobs = 1;
  std::vector<TaskResult> A = ParallelDriver(Serial).run(Progs);

  DriverOptions Par;
  Par.Jobs = 4;
  std::vector<TaskResult> B = ParallelDriver(Par).run(Progs);

  ASSERT_EQ(A.size(), Progs.size());
  ASSERT_EQ(B.size(), Progs.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Name, Progs[I]->Name);
    EXPECT_EQ(A[I].Name, B[I].Name);
    EXPECT_EQ(A[I].Status, B[I].Status);
    EXPECT_EQ(A[I].Attempts, B[I].Attempts);
    ASSERT_TRUE(A[I].Result.Success);
    ASSERT_TRUE(B[I].Result.Success);
    EXPECT_EQ(A[I].Result.Group, B[I].Result.Group);
    EXPECT_EQ(A[I].Result.CandidatesTried, B[I].Result.CandidatesTried);
    EXPECT_EQ(A[I].Result.SmtChecks, B[I].Result.SmtChecks);
    EXPECT_EQ(A[I].Result.StageLog, B[I].Result.StageLog);
    EXPECT_EQ(A[I].Result.Plan.describe(*Progs[I]),
              B[I].Result.Plan.describe(*Progs[I]));
  }
}

TEST(ParallelDriver, SolvedTasksUseOneAttemptAtTheBaseBudget) {
  DriverOptions Opts;
  Opts.SmtTimeoutMs = 20000;
  TaskResult T =
      ParallelDriver::synthesizeOne(*lang::findBenchmark("sum"), Opts);
  EXPECT_EQ(T.Status, TaskStatus::Solved);
  EXPECT_EQ(T.Attempts, 1u);
  EXPECT_EQ(T.BudgetMs, 20000u);
  EXPECT_EQ(T.Result.UnknownVerdicts, 0u);
  EXPECT_EQ(T.Result.Group, "B1");
}

// A fold no GRASSP stage can parallelize: s' = 2*s + in is
// position-dependent (each element's weight depends on how many follow),
// so every merge/prefix candidate is refuted concretely — a Failed
// status with no Unknown verdicts, and therefore no doubled-budget retry.
TEST(ParallelDriver, ExhaustionReportsFailedWithoutRetry) {
  lang::SerialProgram P;
  P.Name = "binary_digits";
  P.Description = "fold s' = 2*s + in (not segment-parallelizable)";
  P.State = lang::StateLayout({{"s", ir::TypeKind::Int, 0}});
  P.Step = {ir::add(ir::mul(ir::constInt(2), ir::var("s", ir::TypeKind::Int)),
                    ir::var(lang::inputVarName(), ir::TypeKind::Int))};
  P.Output = ir::var("s", ir::TypeKind::Int);
  P.GenLo = 0;
  P.GenHi = 1;

  DriverOptions Opts;
  TaskResult T = ParallelDriver::synthesizeOne(P, Opts);
  EXPECT_EQ(T.Status, TaskStatus::Failed);
  EXPECT_EQ(T.Attempts, 1u);
  EXPECT_FALSE(T.Result.Success);
  EXPECT_EQ(T.Result.UnknownVerdicts, 0u);
}

} // namespace
