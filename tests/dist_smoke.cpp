//===- tests/dist_smoke.cpp - Multi-process runtime, real-fault tier ------==//
//
// The fixed-seed distributed-execution slice that runs on every ctest
// invocation. Unlike chaos_smoke's simulated faults, everything here is
// the genuine article: worker PROCESSES are forked, killed with real
// SIGKILLs (verified via WIFSIGNALED in the coordinator's waitpid
// decoding), hung, and made to ship checksum-corrupt frames — and every
// recovery must still produce the bit-identical serial answer. Covered:
//
//  * wire protocol framing — roundtrip over a real socketpair, corrupt
//    byte detection, bounds-checked payload decoding, message codecs;
//  * decorrelated-jitter backoff — bounds, determinism, cap clamping
//    (shared by runtime::RunPolicy retries and the dist coordinator);
//  * ThreadPool::drain(Deadline) shedding — discardedTasks counts
//    exactly the queued-but-unstarted tasks, in-flight tasks complete;
//  * DistCoordinator recovery — planted kills/exits/corrupt frames/
//    hangs with predictable counters, a seeded kill sweep, serial-refold
//    last resort, pool reuse across runs, and cancellation.
//
// Every planted fault uses distAttemptKey(run, attempt, shard), so the
// expected counter deltas are exact, not statistical.
//
// TSan note: the coordinator forks; all DistCoordinator tests run it
// directly on the gtest thread with no ThreadPool alive in the parent,
// so the fork children never hold foreign locks.
//
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"
#include "dist/Protocol.h"
#include "dist/Worker.h"
#include "lang/Benchmarks.h"
#include "runtime/Runner.h"
#include "runtime/Workload.h"
#include "support/Cancel.h"
#include "support/FaultInject.h"
#include "support/ThreadPool.h"
#include "synth/Grassp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace grassp;

namespace {

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

struct SocketPair {
  int Fd[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fd), 0);
  }
  ~SocketPair() {
    if (Fd[0] >= 0)
      ::close(Fd[0]);
    if (Fd[1] >= 0)
      ::close(Fd[1]);
  }
};

TEST(DistProtocol, FrameRoundTripsOverARealSocket) {
  SocketPair S;
  std::vector<uint8_t> Payload = {1, 2, 3, 0xff, 0, 42};
  ASSERT_TRUE(dist::writeFrame(S.Fd[0], dist::MsgType::Task, Payload));
  dist::Frame F;
  ASSERT_EQ(dist::readFrameBlocking(S.Fd[1], &F), dist::RecvStatus::Ok);
  EXPECT_EQ(F.Type, dist::MsgType::Task);
  EXPECT_EQ(F.Payload, Payload);

  // Empty payloads are legal frames (Heartbeat, Shutdown).
  ASSERT_TRUE(dist::writeFrame(S.Fd[0], dist::MsgType::Shutdown, {}));
  ASSERT_EQ(dist::readFrameBlocking(S.Fd[1], &F), dist::RecvStatus::Ok);
  EXPECT_EQ(F.Type, dist::MsgType::Shutdown);
  EXPECT_TRUE(F.Payload.empty());
}

TEST(DistProtocol, CorruptedByteIsCaughtByTheChecksum) {
  // Flip each byte position in turn: the receiver must classify every
  // one as Corrupt, never deliver a damaged payload as Ok.
  for (int64_t At = 0; At != 6; ++At) {
    SocketPair S;
    std::vector<uint8_t> Payload = {9, 8, 7, 6, 5, 4};
    ASSERT_TRUE(
        dist::writeFrame(S.Fd[0], dist::MsgType::Result, Payload, At));
    dist::Frame F;
    EXPECT_EQ(dist::readFrameBlocking(S.Fd[1], &F),
              dist::RecvStatus::Corrupt)
        << "byte " << At;
  }
}

TEST(DistProtocol, EofAndCorruptAreSticky) {
  SocketPair S;
  ASSERT_TRUE(dist::writeFrame(S.Fd[0], dist::MsgType::Result, {1, 2}, 0));
  dist::FrameReader Reader;
  ASSERT_EQ(Reader.fill(S.Fd[1]), dist::RecvStatus::Ok);
  dist::Frame F;
  EXPECT_EQ(Reader.next(&F), dist::RecvStatus::Corrupt);
  // Framing after a corrupt frame is untrusted: still Corrupt.
  EXPECT_EQ(Reader.next(&F), dist::RecvStatus::Corrupt);

  ::close(S.Fd[0]);
  S.Fd[0] = -1;
  dist::FrameReader Fresh;
  EXPECT_EQ(Fresh.fill(S.Fd[1]), dist::RecvStatus::Eof);
}

TEST(DistProtocol, WireReaderRejectsTruncationAndOverrun) {
  dist::WireWriter W;
  W.vecI64({10, -20, 30});
  std::vector<uint8_t> Bytes = W.bytes();

  // Truncate mid-vector: decode must fail, not read garbage.
  for (size_t Cut = 0; Cut < Bytes.size(); ++Cut) {
    dist::WireReader R(Bytes.data(), Cut);
    std::vector<int64_t> V;
    EXPECT_FALSE(R.vecI64(&V) && Cut < Bytes.size()) << "cut " << Cut;
  }
  dist::WireReader R(Bytes);
  std::vector<int64_t> V;
  ASSERT_TRUE(R.vecI64(&V));
  EXPECT_EQ(V, (std::vector<int64_t>{10, -20, 30}));
  EXPECT_TRUE(R.atEnd());
}

TEST(DistProtocol, MessageCodecsRoundTrip) {
  dist::HelloMsg H;
  H.Pid = 4242;
  H.PlanHash = 0xdeadbeefcafe1234ULL;
  dist::HelloMsg H2;
  ASSERT_TRUE(dist::decodeHello(dist::encodeHello(H), &H2));
  EXPECT_EQ(H2.Pid, H.Pid);
  EXPECT_EQ(H2.PlanHash, H.PlanHash);

  dist::TaskMsg T;
  T.TaskId = 7;
  T.ShardIndex = 3;
  T.AttemptKey = dist::distAttemptKey(2, 1, 3);
  T.Data = {5, -6, 7};
  dist::TaskMsg T2;
  ASSERT_TRUE(dist::decodeTask(dist::encodeTask(T), &T2));
  EXPECT_EQ(T2.TaskId, T.TaskId);
  EXPECT_EQ(T2.ShardIndex, T.ShardIndex);
  EXPECT_EQ(T2.AttemptKey, T.AttemptKey);
  EXPECT_EQ(T2.Data, T.Data);

  // A Result carrying every WorkerOutput field, including the nested
  // mode-argument table.
  dist::ResultMsg M;
  M.TaskId = 9;
  M.ShardIndex = 1;
  M.Out.Found = true;
  M.Out.Boundary = -11;
  M.Out.D = {1, 2, 3};
  M.Out.CtrlCur = {0, 2};
  M.Out.ModeArg = {{{1, 2}, {3, 4}}, {}, {{-5, 6}}};
  M.Out.PrefixData = {42};
  M.Out.Distinct = {7, 8};
  dist::ResultMsg M2;
  ASSERT_TRUE(dist::decodeResult(dist::encodeResult(M), &M2));
  EXPECT_EQ(M2.TaskId, M.TaskId);
  EXPECT_EQ(M2.Out.Found, M.Out.Found);
  EXPECT_EQ(M2.Out.Boundary, M.Out.Boundary);
  EXPECT_EQ(M2.Out.D, M.Out.D);
  EXPECT_EQ(M2.Out.CtrlCur, M.Out.CtrlCur);
  EXPECT_EQ(M2.Out.ModeArg, M.Out.ModeArg);
  EXPECT_EQ(M2.Out.PrefixData, M.Out.PrefixData);
  EXPECT_EQ(M2.Out.Distinct, M.Out.Distinct);

  // Trailing junk after a well-formed message is corruption, not slack.
  std::vector<uint8_t> Padded = dist::encodeHello(H);
  Padded.push_back(0);
  EXPECT_FALSE(dist::decodeHello(Padded, &H2));
}

//===----------------------------------------------------------------------===//
// Decorrelated-jitter backoff (RunPolicy + coordinator shared helper)
//===----------------------------------------------------------------------===//

TEST(Backoff, StaysWithinBaseAndCap) {
  const double Base = 0.001, Cap = 0.05;
  double Prev = Base;
  for (uint64_t Key = 0; Key != 1000; ++Key) {
    double S = runtime::decorrelatedBackoff(Base, Cap, Prev, 42, Key);
    EXPECT_GE(S, Base) << Key;
    EXPECT_LE(S, Cap) << Key;
    // Decorrelated jitter: next sleep is drawn from [Base, 3*Prev].
    EXPECT_LE(S, std::min(Cap, 3.0 * std::max(Prev, Base)) + 1e-12) << Key;
    Prev = S;
  }
}

TEST(Backoff, DeterministicInSeedAndKey) {
  double A = runtime::decorrelatedBackoff(0.001, 1.0, 0.004, 7, 123);
  double B = runtime::decorrelatedBackoff(0.001, 1.0, 0.004, 7, 123);
  EXPECT_EQ(A, B); // exact replay from (seed, key).
  double C = runtime::decorrelatedBackoff(0.001, 1.0, 0.004, 8, 123);
  double D = runtime::decorrelatedBackoff(0.001, 1.0, 0.004, 7, 124);
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
}

TEST(Backoff, GrowsTowardTheCapAndClampsThere) {
  const double Base = 0.001, Cap = 0.02;
  // Whatever the draws, 40 consecutive retries must have saturated well
  // past the base, and never past the cap.
  double Prev = Base, MaxSeen = 0;
  for (uint64_t K = 0; K != 40; ++K) {
    Prev = runtime::decorrelatedBackoff(Base, Cap, Prev, 1, K);
    MaxSeen = std::max(MaxSeen, Prev);
  }
  EXPECT_LE(MaxSeen, Cap);
  EXPECT_GT(MaxSeen, Base);
  // A Prev beyond the cap is clamped back inside it.
  EXPECT_LE(runtime::decorrelatedBackoff(Base, Cap, 10.0, 1, 0), Cap);
}

TEST(Backoff, ZeroBaseMeansNoSleep) {
  EXPECT_EQ(runtime::decorrelatedBackoff(0.0, 1.0, 0.5, 1, 1), 0.0);
  EXPECT_EQ(runtime::decorrelatedBackoff(-1.0, 1.0, 0.5, 1, 1), 0.0);
}

//===----------------------------------------------------------------------===//
// ThreadPool::drain(Deadline) shedding
//===----------------------------------------------------------------------===//

TEST(PoolDrain, ExpiredDeadlineShedsExactlyTheUnstartedTasks) {
  ThreadPool Pool(2);
  std::mutex Mu;
  std::condition_variable Cv;
  bool Release = false;
  std::atomic<unsigned> Ran{0};

  // Two blockers occupy both threads; six queued tasks never start
  // before the deadline expires.
  for (int I = 0; I != 2; ++I)
    Pool.submit([&] {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [&] { return Release; });
      ++Ran;
    });
  // Give the blockers time to actually occupy the workers, so exactly
  // six tasks sit queued-not-running.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int I = 0; I != 6; ++I)
    Pool.submit([&] { ++Ran; });

  std::thread Releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    std::lock_guard<std::mutex> Lock(Mu);
    Release = true;
    Cv.notify_all();
  });
  bool AllRan = Pool.drain(Deadline::after(0.05));
  Releaser.join();

  EXPECT_FALSE(AllRan);
  // In-flight tasks completed; queued-but-unstarted were discarded.
  EXPECT_EQ(Ran.load(), 2u);
  EXPECT_EQ(Pool.discardedTasks(), 6u);

  // The pool stays usable after a shedding drain.
  Pool.submit([&] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 3u);
  EXPECT_EQ(Pool.discardedTasks(), 6u);
}

TEST(PoolDrain, GenerousDeadlineRunsEverythingAndDiscardsNothing) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Ran{0};
  for (int I = 0; I != 16; ++I)
    Pool.submit([&] { ++Ran; });
  EXPECT_TRUE(Pool.drain(Deadline::after(10.0)));
  EXPECT_EQ(Ran.load(), 16u);
  EXPECT_EQ(Pool.discardedTasks(), 0u);
}

//===----------------------------------------------------------------------===//
// DistCoordinator: real processes, real kills
//===----------------------------------------------------------------------===//

const synth::SynthesisResult &synthFor(const char *Name) {
  static std::map<std::string, synth::SynthesisResult> Cache;
  auto It = Cache.find(Name);
  if (It == Cache.end())
    It = Cache.emplace(Name, synth::synthesize(*lang::findBenchmark(Name)))
             .first;
  return It->second;
}

struct DistRun {
  const lang::SerialProgram *P;
  std::vector<int64_t> Data;
  std::vector<runtime::SegmentView> Segs;
  runtime::CompiledProgram CP;
  runtime::CompiledPlan Plan;
  int64_t Serial;

  explicit DistRun(const char *Name = "sum", size_t N = 6000,
                   unsigned Shards = 8)
      : P(lang::findBenchmark(Name)),
        Data(runtime::generateWorkload(*P, N, 21)),
        Segs(runtime::partition(Data, Shards)), CP(*P),
        Plan(*P, synthFor(Name).Plan), Serial(CP.runSerial(Segs)) {}
};

TEST(DistCoordinator, CleanRunsMatchSerialAcrossPlanShapes) {
  // One benchmark per plan family: scalar fold, multi-state fold, bag
  // (hash-set distinct), and an order-sensitive mode machine.
  for (const char *Name :
       {"sum", "second_max", "count_distinct", "count_102"}) {
    DistRun R(Name);
    dist::DistConfig Cfg;
    Cfg.Workers = 3;
    dist::DistCoordinator Coord(R.Plan, Cfg);
    dist::DistRunReport Rep = Coord.run(R.Segs);
    EXPECT_EQ(Rep.Output, R.Serial) << Name;
    EXPECT_EQ(Rep.Shards, 8u) << Name;
    EXPECT_EQ(Rep.ShardsCompleted, 8u) << Name;
    EXPECT_EQ(Rep.WorkersKilled, 0u) << Name;
    EXPECT_EQ(Rep.SerialRefolds, 0u) << Name;
    EXPECT_GT(Rep.BytesShipped, 0u) << Name;
  }
}

TEST(DistCoordinator, PlantedSigkillIsDetectedViaWifsignaled) {
  DistRun R;
  FaultInjector FI(5);
  FaultSpec Kill;
  // Shard 2's first attempt: the worker raise(SIGKILL)s itself.
  Kill.Keys = {dist::distAttemptKey(0, 0, 2)};
  FI.arm(dist::SiteWorkerKill, Kill);

  dist::DistConfig Cfg;
  Cfg.Workers = 4;
  Cfg.Faults = &FI;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_EQ(Rep.Output, R.Serial);
  // The death was a real signal, decoded from waitpid status.
  EXPECT_EQ(Rep.WorkersKilled, 1u);
  EXPECT_EQ(Rep.WorkersExited, 0u);
  EXPECT_GE(Rep.ShardsReassigned, 1u);
  EXPECT_GE(Rep.Retries, 1u);
  EXPECT_GE(Rep.WorkersRestarted, 1u);
  EXPECT_EQ(Rep.SerialRefolds, 0u);
}

TEST(DistCoordinator, PlantedExit137IsDetectedViaWifexited) {
  DistRun R;
  FaultInjector FI(5);
  FaultSpec Crash;
  Crash.Keys = {dist::distAttemptKey(0, 0, 1)};
  FI.arm(dist::SiteWorkerExit, Crash);

  dist::DistConfig Cfg;
  Cfg.Workers = 4;
  Cfg.Faults = &FI;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_EQ(Rep.WorkersExited, 1u); // _exit(137): exited, not signaled.
  EXPECT_EQ(Rep.WorkersKilled, 0u);
  EXPECT_GE(Rep.ShardsReassigned, 1u);
}

TEST(DistCoordinator, CorruptReplyFrameIsCaughtNeverMiscounted) {
  DistRun R;
  FaultInjector FI(5);
  FaultSpec Corrupt;
  Corrupt.Keys = {dist::distAttemptKey(0, 0, 3)};
  FI.arm(dist::SiteFrameCorrupt, Corrupt);

  dist::DistConfig Cfg;
  Cfg.Workers = 4;
  Cfg.Faults = &FI;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  // The checksum rejected the damaged frame and the shard was redone —
  // a corrupt frame may cost time, never correctness.
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_GE(Rep.CorruptFrames, 1u);
  EXPECT_GE(Rep.Retries, 1u);
}

TEST(DistCoordinator, HungWorkerIsKilledOrOutracedBySpeculation) {
  DistRun R;
  FaultInjector FI(5);
  FaultSpec Hang;
  Hang.Keys = {dist::distAttemptKey(0, 0, 0)};
  FI.arm(dist::SiteWorkerHang, Hang);

  dist::DistConfig Cfg;
  Cfg.Workers = 4;
  Cfg.Faults = &FI;
  Cfg.TaskDeadlineSeconds = 0.04; // tight: the test stays fast.
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_EQ(Rep.Output, R.Serial);
  // Either the backup committed first or the hang-kill fired (with the
  // requeued attempt committing); both count the straggler machinery.
  EXPECT_GE(Rep.SpeculativeLaunches + Rep.HangsDetected, 1u);
  EXPECT_EQ(Rep.SerialRefolds, 0u);
}

TEST(DistCoordinator, EveryAttemptDyingFallsBackToSerialRefold) {
  DistRun R("sum", 2000, 4);
  FaultInjector FI(5);
  FaultSpec Kill;
  Kill.KeyModulo = 1; // every attempt of every shard dies.
  FI.arm(dist::SiteWorkerExit, Kill);

  dist::DistConfig Cfg;
  Cfg.Workers = 2;
  Cfg.MaxRetries = 1;
  Cfg.MaxWorkerRestarts = 64;
  Cfg.Faults = &FI;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  // The guaranteed last resort: the coordinator refolds in-process and
  // the answer is still exact.
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_EQ(Rep.SerialRefolds, 4u);
  EXPECT_EQ(Rep.ShardsCompleted, 4u);
}

// The acceptance sweep: ~8 workers, seeded probabilistic kills across
// several seeds; every run must be bit-identical to the serial fold and
// the sweep as a whole must have killed real workers and reassigned
// real shards (all verified through waitpid, not bookkeeping).
TEST(DistCoordinator, SeededKillSweepStaysBitIdentical) {
  DistRun R("second_max", 12000, 24);
  unsigned Killed = 0, Reassigned = 0;
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    FaultInjector FI(Seed);
    FaultSpec Kill;
    Kill.Probability = 0.18;
    FI.arm(dist::SiteWorkerKill, Kill);
    FaultSpec Crash;
    Crash.Probability = 0.12;
    FI.arm(dist::SiteWorkerExit, Crash);

    dist::DistConfig Cfg;
    Cfg.Workers = 8;
    Cfg.Faults = &FI;
    Cfg.BackoffJitterSeed = Seed;
    Cfg.MaxWorkerRestarts = 1000;
    dist::DistCoordinator Coord(R.Plan, Cfg);
    dist::DistRunReport Rep = Coord.run(R.Segs);
    EXPECT_EQ(Rep.Output, R.Serial) << "seed " << Seed;
    EXPECT_EQ(Rep.ShardsCompleted, 24u) << "seed " << Seed;
    Killed += Rep.WorkersKilled + Rep.WorkersExited;
    Reassigned += Rep.ShardsReassigned;
  }
  EXPECT_GT(Killed, 0u);
  EXPECT_GT(Reassigned, 0u);
}

TEST(DistCoordinator, PoolAndFaultKeysAdvanceAcrossRuns) {
  DistRun R;
  FaultInjector FI(5);
  FaultSpec Kill;
  // Planted on run 0 only: run 1's keys have RunIndex 1 << 32 mixed in,
  // so the same shard's first attempt must NOT die again.
  Kill.Keys = {dist::distAttemptKey(0, 0, 2)};
  FI.arm(dist::SiteWorkerKill, Kill);

  dist::DistConfig Cfg;
  Cfg.Workers = 3;
  Cfg.Faults = &FI;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  EXPECT_EQ(Coord.runIndex(), 0u);
  dist::DistRunReport First = Coord.run(R.Segs);
  EXPECT_EQ(First.Output, R.Serial);
  EXPECT_EQ(First.WorkersKilled, 1u);

  EXPECT_EQ(Coord.runIndex(), 1u);
  EXPECT_GE(Coord.liveWorkers(), 1u);
  dist::DistRunReport Second = Coord.run(R.Segs);
  EXPECT_EQ(Second.Output, R.Serial);
  EXPECT_EQ(Second.WorkersKilled, 0u); // the pattern did not repeat.
  EXPECT_EQ(Second.ShardsCompleted, 8u);
}

TEST(DistCoordinator, PreFiredTokenCancelsWithoutCommitting) {
  DistRun R;
  CancelToken Token = CancelToken::root();
  Token.cancel();
  dist::DistConfig Cfg;
  Cfg.Workers = 2;
  Cfg.Token = Token;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_TRUE(Rep.Cancelled);
  EXPECT_LT(Rep.ShardsCompleted, 8u);
}

TEST(DistCoordinator, ShutdownIsIdempotentAndReapsEveryWorker) {
  DistRun R;
  dist::DistConfig Cfg;
  Cfg.Workers = 3;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  EXPECT_EQ(Coord.run(R.Segs).Output, R.Serial);
  EXPECT_GE(Coord.liveWorkers(), 1u);
  Coord.shutdown();
  EXPECT_EQ(Coord.liveWorkers(), 0u);
  Coord.shutdown(); // second call is a no-op, not a crash.
  EXPECT_EQ(Coord.liveWorkers(), 0u);
}

TEST(DistCoordinator, PrewarmForksTheFullPoolBeforeAnyRun) {
  // Multi-threaded embedders (DiffOracle) prewarm before starting their
  // ThreadPool so the bulk of forks comes from a single-threaded parent.
  DistRun R;
  dist::DistConfig Cfg;
  Cfg.Workers = 3;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  EXPECT_EQ(Coord.liveWorkers(), 0u);
  Coord.prewarm();
  EXPECT_EQ(Coord.liveWorkers(), 3u);
  Coord.prewarm(); // idempotent: the pool is already full.
  EXPECT_EQ(Coord.liveWorkers(), 3u);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_EQ(Rep.WorkersSpawned, 0u); // run() had nothing left to fork.
}

TEST(DistCoordinator, SimultaneousHangsSurviveMidSweepRespawns) {
  // Every attempt of every shard hangs, so one hang sweep routinely
  // reaps SEVERAL workers back to back, and each handleDeath respawns
  // into Procs — dead entries accumulate and the vector reallocates
  // mid-run. Pins the indexed sweep: a range-for here is a
  // use-after-free the moment a respawn's push_back reallocates.
  DistRun R("sum", 2000, 6);
  FaultInjector FI(5);
  FaultSpec Hang;
  Hang.KeyModulo = 1;
  FI.arm(dist::SiteWorkerHang, Hang);

  dist::DistConfig Cfg;
  Cfg.Workers = 3;
  Cfg.MaxRetries = 1;
  Cfg.Faults = &FI;
  Cfg.TaskDeadlineSeconds = 0.02; // hang-kill at 40ms: the test stays fast.
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  // No attempt ever commits, so every shard lands on the last resort —
  // and the answer is still exact.
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_EQ(Rep.SerialRefolds, 6u);
  EXPECT_GE(Rep.HangsDetected, 6u);
  EXPECT_GE(Rep.WorkersRestarted, 6u);
}

} // namespace
