//===- tests/dist_smoke.cpp - Multi-process runtime, real-fault tier ------==//
//
// The fixed-seed distributed-execution slice that runs on every ctest
// invocation. Unlike chaos_smoke's simulated faults, everything here is
// the genuine article: worker PROCESSES are forked, killed with real
// SIGKILLs (verified via WIFSIGNALED in the coordinator's waitpid
// decoding), hung, and made to ship checksum-corrupt frames — and every
// recovery must still produce the bit-identical serial answer. Covered:
//
//  * wire protocol framing — roundtrip over a real socketpair, corrupt
//    byte detection, bounds-checked payload decoding, message codecs;
//  * decorrelated-jitter backoff — bounds, determinism, cap clamping
//    (shared by runtime::RunPolicy retries and the dist coordinator);
//  * ThreadPool::drain(Deadline) shedding — discardedTasks counts
//    exactly the queued-but-unstarted tasks, in-flight tasks complete;
//  * DistCoordinator recovery — planted kills/exits/corrupt frames/
//    hangs with predictable counters, a seeded kill sweep, serial-refold
//    last resort, pool reuse across runs, and cancellation.
//
// Every planted fault uses distAttemptKey(run, attempt, shard), so the
// expected counter deltas are exact, not statistical.
//
// TSan note: the coordinator forks; all DistCoordinator tests run it
// directly on the gtest thread with no ThreadPool alive in the parent,
// so the fork children never hold foreign locks.
//
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"
#include "dist/Protocol.h"
#include "dist/Shm.h"
#include "dist/Worker.h"
#include "lang/Benchmarks.h"
#include "runtime/Runner.h"
#include "runtime/SegmentSource.h"
#include "runtime/Workload.h"
#include "support/Cancel.h"
#include "support/FaultInject.h"
#include "support/ThreadPool.h"
#include "synth/Grassp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace grassp;

namespace {

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

struct SocketPair {
  int Fd[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fd), 0);
  }
  ~SocketPair() {
    if (Fd[0] >= 0)
      ::close(Fd[0]);
    if (Fd[1] >= 0)
      ::close(Fd[1]);
  }
};

TEST(DistProtocol, FrameRoundTripsOverARealSocket) {
  SocketPair S;
  std::vector<uint8_t> Payload = {1, 2, 3, 0xff, 0, 42};
  ASSERT_TRUE(dist::writeFrame(S.Fd[0], dist::MsgType::Task, Payload));
  dist::Frame F;
  ASSERT_EQ(dist::readFrameBlocking(S.Fd[1], &F), dist::RecvStatus::Ok);
  EXPECT_EQ(F.Type, dist::MsgType::Task);
  EXPECT_EQ(F.Payload, Payload);

  // Empty payloads are legal frames (Heartbeat, Shutdown).
  ASSERT_TRUE(dist::writeFrame(S.Fd[0], dist::MsgType::Shutdown, {}));
  ASSERT_EQ(dist::readFrameBlocking(S.Fd[1], &F), dist::RecvStatus::Ok);
  EXPECT_EQ(F.Type, dist::MsgType::Shutdown);
  EXPECT_TRUE(F.Payload.empty());
}

TEST(DistProtocol, CorruptedByteIsCaughtByTheChecksum) {
  // Flip each byte position in turn: the receiver must classify every
  // one as Corrupt, never deliver a damaged payload as Ok.
  for (int64_t At = 0; At != 6; ++At) {
    SocketPair S;
    std::vector<uint8_t> Payload = {9, 8, 7, 6, 5, 4};
    ASSERT_TRUE(
        dist::writeFrame(S.Fd[0], dist::MsgType::Result, Payload, At));
    dist::Frame F;
    EXPECT_EQ(dist::readFrameBlocking(S.Fd[1], &F),
              dist::RecvStatus::Corrupt)
        << "byte " << At;
  }
}

TEST(DistProtocol, EofAndCorruptAreSticky) {
  SocketPair S;
  ASSERT_TRUE(dist::writeFrame(S.Fd[0], dist::MsgType::Result, {1, 2}, 0));
  dist::FrameReader Reader;
  ASSERT_EQ(Reader.fill(S.Fd[1]), dist::RecvStatus::Ok);
  dist::Frame F;
  EXPECT_EQ(Reader.next(&F), dist::RecvStatus::Corrupt);
  // Framing after a corrupt frame is untrusted: still Corrupt.
  EXPECT_EQ(Reader.next(&F), dist::RecvStatus::Corrupt);

  ::close(S.Fd[0]);
  S.Fd[0] = -1;
  dist::FrameReader Fresh;
  EXPECT_EQ(Fresh.fill(S.Fd[1]), dist::RecvStatus::Eof);
}

TEST(DistProtocol, WireReaderRejectsTruncationAndOverrun) {
  dist::WireWriter W;
  W.vecI64({10, -20, 30});
  std::vector<uint8_t> Bytes = W.bytes();

  // Truncate mid-vector: decode must fail, not read garbage.
  for (size_t Cut = 0; Cut < Bytes.size(); ++Cut) {
    dist::WireReader R(Bytes.data(), Cut);
    std::vector<int64_t> V;
    EXPECT_FALSE(R.vecI64(&V) && Cut < Bytes.size()) << "cut " << Cut;
  }
  dist::WireReader R(Bytes);
  std::vector<int64_t> V;
  ASSERT_TRUE(R.vecI64(&V));
  EXPECT_EQ(V, (std::vector<int64_t>{10, -20, 30}));
  EXPECT_TRUE(R.atEnd());
}

TEST(DistProtocol, MessageCodecsRoundTrip) {
  dist::HelloMsg H;
  H.Pid = 4242;
  H.PlanHash = 0xdeadbeefcafe1234ULL;
  H.ShmGeneration = 3;
  H.ShmToken = 0x1122334455667788ULL;
  dist::HelloMsg H2;
  ASSERT_TRUE(dist::decodeHello(dist::encodeHello(H), &H2));
  EXPECT_EQ(H2.Pid, H.Pid);
  EXPECT_EQ(H2.PlanHash, H.PlanHash);
  EXPECT_EQ(H2.ShmGeneration, H.ShmGeneration);
  EXPECT_EQ(H2.ShmToken, H.ShmToken);

  // A batched Task mixing both transports: one inline shard, one
  // shared-memory descriptor.
  dist::TaskMsg T;
  dist::TaskItem A;
  A.TaskId = 7;
  A.ShardIndex = 3;
  A.AttemptKey = dist::distAttemptKey(2, 1, 3);
  A.Kind = dist::ShardTransport::Inline;
  A.Data = {5, -6, 7};
  dist::TaskItem B;
  B.TaskId = 8;
  B.ShardIndex = 4;
  B.AttemptKey = dist::distAttemptKey(2, 0, 4);
  B.Kind = dist::ShardTransport::Shm;
  B.Generation = 5;
  B.Offset = 1024;
  B.Count = 4096;
  T.Items = {A, B};
  dist::TaskMsg T2;
  ASSERT_TRUE(dist::decodeTask(dist::encodeTask(T), &T2));
  ASSERT_EQ(T2.Items.size(), 2u);
  EXPECT_EQ(T2.Items[0].TaskId, A.TaskId);
  EXPECT_EQ(T2.Items[0].ShardIndex, A.ShardIndex);
  EXPECT_EQ(T2.Items[0].AttemptKey, A.AttemptKey);
  EXPECT_EQ(T2.Items[0].Kind, dist::ShardTransport::Inline);
  EXPECT_EQ(T2.Items[0].Data, A.Data);
  EXPECT_EQ(T2.Items[1].Kind, dist::ShardTransport::Shm);
  EXPECT_EQ(T2.Items[1].Generation, B.Generation);
  EXPECT_EQ(T2.Items[1].Offset, B.Offset);
  EXPECT_EQ(T2.Items[1].Count, B.Count);

  dist::PublishMsg Pub;
  Pub.Generation = 9;
  Pub.Token = 0xfeedf00ddeadbeefULL;
  Pub.ByteOffset = 16;
  Pub.Elems = 1 << 20;
  dist::PublishMsg Pub2;
  ASSERT_TRUE(dist::decodePublish(dist::encodePublish(Pub), &Pub2));
  EXPECT_EQ(Pub2.Generation, Pub.Generation);
  EXPECT_EQ(Pub2.Token, Pub.Token);
  EXPECT_EQ(Pub2.ByteOffset, Pub.ByteOffset);
  EXPECT_EQ(Pub2.Elems, Pub.Elems);

  // A Result carrying every WorkerOutput field, including the nested
  // mode-argument table.
  dist::ResultMsg M;
  M.TaskId = 9;
  M.ShardIndex = 1;
  M.Out.Found = true;
  M.Out.Boundary = -11;
  M.Out.D = {1, 2, 3};
  M.Out.CtrlCur = {0, 2};
  M.Out.ModeArg = {{{1, 2}, {3, 4}}, {}, {{-5, 6}}};
  M.Out.PrefixData = {42};
  M.Out.Distinct = {7, 8};
  dist::ResultMsg M2;
  ASSERT_TRUE(dist::decodeResult(dist::encodeResult(M), &M2));
  EXPECT_EQ(M2.TaskId, M.TaskId);
  EXPECT_EQ(M2.Out.Found, M.Out.Found);
  EXPECT_EQ(M2.Out.Boundary, M.Out.Boundary);
  EXPECT_EQ(M2.Out.D, M.Out.D);
  EXPECT_EQ(M2.Out.CtrlCur, M.Out.CtrlCur);
  EXPECT_EQ(M2.Out.ModeArg, M.Out.ModeArg);
  EXPECT_EQ(M2.Out.PrefixData, M.Out.PrefixData);
  EXPECT_EQ(M2.Out.Distinct, M.Out.Distinct);

  // Trailing junk after a well-formed message is corruption, not slack.
  std::vector<uint8_t> Padded = dist::encodeHello(H);
  Padded.push_back(0);
  EXPECT_FALSE(dist::decodeHello(Padded, &H2));
}

//===----------------------------------------------------------------------===//
// Decorrelated-jitter backoff (RunPolicy + coordinator shared helper)
//===----------------------------------------------------------------------===//

TEST(Backoff, StaysWithinBaseAndCap) {
  const double Base = 0.001, Cap = 0.05;
  double Prev = Base;
  for (uint64_t Key = 0; Key != 1000; ++Key) {
    double S = runtime::decorrelatedBackoff(Base, Cap, Prev, 42, Key);
    EXPECT_GE(S, Base) << Key;
    EXPECT_LE(S, Cap) << Key;
    // Decorrelated jitter: next sleep is drawn from [Base, 3*Prev].
    EXPECT_LE(S, std::min(Cap, 3.0 * std::max(Prev, Base)) + 1e-12) << Key;
    Prev = S;
  }
}

TEST(Backoff, DeterministicInSeedAndKey) {
  double A = runtime::decorrelatedBackoff(0.001, 1.0, 0.004, 7, 123);
  double B = runtime::decorrelatedBackoff(0.001, 1.0, 0.004, 7, 123);
  EXPECT_EQ(A, B); // exact replay from (seed, key).
  double C = runtime::decorrelatedBackoff(0.001, 1.0, 0.004, 8, 123);
  double D = runtime::decorrelatedBackoff(0.001, 1.0, 0.004, 7, 124);
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
}

TEST(Backoff, GrowsTowardTheCapAndClampsThere) {
  const double Base = 0.001, Cap = 0.02;
  // Whatever the draws, 40 consecutive retries must have saturated well
  // past the base, and never past the cap.
  double Prev = Base, MaxSeen = 0;
  for (uint64_t K = 0; K != 40; ++K) {
    Prev = runtime::decorrelatedBackoff(Base, Cap, Prev, 1, K);
    MaxSeen = std::max(MaxSeen, Prev);
  }
  EXPECT_LE(MaxSeen, Cap);
  EXPECT_GT(MaxSeen, Base);
  // A Prev beyond the cap is clamped back inside it.
  EXPECT_LE(runtime::decorrelatedBackoff(Base, Cap, 10.0, 1, 0), Cap);
}

TEST(Backoff, ZeroBaseMeansNoSleep) {
  EXPECT_EQ(runtime::decorrelatedBackoff(0.0, 1.0, 0.5, 1, 1), 0.0);
  EXPECT_EQ(runtime::decorrelatedBackoff(-1.0, 1.0, 0.5, 1, 1), 0.0);
}

//===----------------------------------------------------------------------===//
// ThreadPool::drain(Deadline) shedding
//===----------------------------------------------------------------------===//

TEST(PoolDrain, ExpiredDeadlineShedsExactlyTheUnstartedTasks) {
  ThreadPool Pool(2);
  std::mutex Mu;
  std::condition_variable Cv;
  bool Release = false;
  std::atomic<unsigned> Ran{0};

  // Two blockers occupy both threads; six queued tasks never start
  // before the deadline expires.
  for (int I = 0; I != 2; ++I)
    Pool.submit([&] {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [&] { return Release; });
      ++Ran;
    });
  // Give the blockers time to actually occupy the workers, so exactly
  // six tasks sit queued-not-running.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int I = 0; I != 6; ++I)
    Pool.submit([&] { ++Ran; });

  std::thread Releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    std::lock_guard<std::mutex> Lock(Mu);
    Release = true;
    Cv.notify_all();
  });
  bool AllRan = Pool.drain(Deadline::after(0.05));
  Releaser.join();

  EXPECT_FALSE(AllRan);
  // In-flight tasks completed; queued-but-unstarted were discarded.
  EXPECT_EQ(Ran.load(), 2u);
  EXPECT_EQ(Pool.discardedTasks(), 6u);

  // The pool stays usable after a shedding drain.
  Pool.submit([&] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 3u);
  EXPECT_EQ(Pool.discardedTasks(), 6u);
}

TEST(PoolDrain, GenerousDeadlineRunsEverythingAndDiscardsNothing) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Ran{0};
  for (int I = 0; I != 16; ++I)
    Pool.submit([&] { ++Ran; });
  EXPECT_TRUE(Pool.drain(Deadline::after(10.0)));
  EXPECT_EQ(Ran.load(), 16u);
  EXPECT_EQ(Pool.discardedTasks(), 0u);
}

//===----------------------------------------------------------------------===//
// DistCoordinator: real processes, real kills
//===----------------------------------------------------------------------===//

const synth::SynthesisResult &synthFor(const char *Name) {
  static std::map<std::string, synth::SynthesisResult> Cache;
  auto It = Cache.find(Name);
  if (It == Cache.end())
    It = Cache.emplace(Name, synth::synthesize(*lang::findBenchmark(Name)))
             .first;
  return It->second;
}

struct DistRun {
  const lang::SerialProgram *P;
  std::vector<int64_t> Data;
  std::vector<runtime::SegmentView> Segs;
  runtime::CompiledProgram CP;
  runtime::CompiledPlan Plan;
  int64_t Serial;

  explicit DistRun(const char *Name = "sum", size_t N = 6000,
                   unsigned Shards = 8)
      : P(lang::findBenchmark(Name)),
        Data(runtime::generateWorkload(*P, N, 21)),
        Segs(runtime::partition(Data, Shards)), CP(*P),
        Plan(*P, synthFor(Name).Plan), Serial(CP.runSerial(Segs)) {}
};

TEST(DistCoordinator, CleanRunsMatchSerialAcrossPlanShapes) {
  // One benchmark per plan family: scalar fold, multi-state fold, bag
  // (hash-set distinct), and an order-sensitive mode machine.
  for (const char *Name :
       {"sum", "second_max", "count_distinct", "count_102"}) {
    DistRun R(Name);
    dist::DistConfig Cfg;
    Cfg.Workers = 3;
    dist::DistCoordinator Coord(R.Plan, Cfg);
    dist::DistRunReport Rep = Coord.run(R.Segs);
    EXPECT_EQ(Rep.Output, R.Serial) << Name;
    EXPECT_EQ(Rep.Shards, 8u) << Name;
    EXPECT_EQ(Rep.ShardsCompleted, 8u) << Name;
    EXPECT_EQ(Rep.WorkersKilled, 0u) << Name;
    EXPECT_EQ(Rep.SerialRefolds, 0u) << Name;
    EXPECT_GT(Rep.BytesShipped, 0u) << Name;
  }
}

TEST(DistCoordinator, PlantedSigkillIsDetectedViaWifsignaled) {
  DistRun R;
  FaultInjector FI(5);
  FaultSpec Kill;
  // Shard 2's first attempt: the worker raise(SIGKILL)s itself.
  Kill.Keys = {dist::distAttemptKey(0, 0, 2)};
  FI.arm(dist::SiteWorkerKill, Kill);

  dist::DistConfig Cfg;
  Cfg.Workers = 4;
  Cfg.Faults = &FI;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_EQ(Rep.Output, R.Serial);
  // The death was a real signal, decoded from waitpid status.
  EXPECT_EQ(Rep.WorkersKilled, 1u);
  EXPECT_EQ(Rep.WorkersExited, 0u);
  EXPECT_GE(Rep.ShardsReassigned, 1u);
  EXPECT_GE(Rep.Retries, 1u);
  EXPECT_GE(Rep.WorkersRestarted, 1u);
  EXPECT_EQ(Rep.SerialRefolds, 0u);
}

TEST(DistCoordinator, PlantedExit137IsDetectedViaWifexited) {
  DistRun R;
  FaultInjector FI(5);
  FaultSpec Crash;
  Crash.Keys = {dist::distAttemptKey(0, 0, 1)};
  FI.arm(dist::SiteWorkerExit, Crash);

  dist::DistConfig Cfg;
  Cfg.Workers = 4;
  Cfg.Faults = &FI;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_EQ(Rep.WorkersExited, 1u); // _exit(137): exited, not signaled.
  EXPECT_EQ(Rep.WorkersKilled, 0u);
  EXPECT_GE(Rep.ShardsReassigned, 1u);
}

TEST(DistCoordinator, CorruptReplyFrameIsCaughtNeverMiscounted) {
  DistRun R;
  FaultInjector FI(5);
  FaultSpec Corrupt;
  Corrupt.Keys = {dist::distAttemptKey(0, 0, 3)};
  FI.arm(dist::SiteFrameCorrupt, Corrupt);

  dist::DistConfig Cfg;
  Cfg.Workers = 4;
  Cfg.Faults = &FI;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  // The checksum rejected the damaged frame and the shard was redone —
  // a corrupt frame may cost time, never correctness.
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_GE(Rep.CorruptFrames, 1u);
  EXPECT_GE(Rep.Retries, 1u);
}

TEST(DistCoordinator, HungWorkerIsKilledOrOutracedBySpeculation) {
  DistRun R;
  FaultInjector FI(5);
  FaultSpec Hang;
  Hang.Keys = {dist::distAttemptKey(0, 0, 0)};
  FI.arm(dist::SiteWorkerHang, Hang);

  dist::DistConfig Cfg;
  Cfg.Workers = 4;
  Cfg.Faults = &FI;
  Cfg.TaskDeadlineSeconds = 0.04; // tight: the test stays fast.
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_EQ(Rep.Output, R.Serial);
  // Either the backup committed first or the hang-kill fired (with the
  // requeued attempt committing); both count the straggler machinery.
  EXPECT_GE(Rep.SpeculativeLaunches + Rep.HangsDetected, 1u);
  EXPECT_EQ(Rep.SerialRefolds, 0u);
}

TEST(DistCoordinator, EveryAttemptDyingFallsBackToSerialRefold) {
  DistRun R("sum", 2000, 4);
  FaultInjector FI(5);
  FaultSpec Kill;
  Kill.KeyModulo = 1; // every attempt of every shard dies.
  FI.arm(dist::SiteWorkerExit, Kill);

  dist::DistConfig Cfg;
  Cfg.Workers = 2;
  Cfg.MaxRetries = 1;
  Cfg.MaxWorkerRestarts = 64;
  Cfg.Faults = &FI;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  // The guaranteed last resort: the coordinator refolds in-process and
  // the answer is still exact.
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_EQ(Rep.SerialRefolds, 4u);
  EXPECT_EQ(Rep.ShardsCompleted, 4u);
}

// The acceptance sweep: ~8 workers, seeded probabilistic kills across
// several seeds; every run must be bit-identical to the serial fold and
// the sweep as a whole must have killed real workers and reassigned
// real shards (all verified through waitpid, not bookkeeping).
TEST(DistCoordinator, SeededKillSweepStaysBitIdentical) {
  DistRun R("second_max", 12000, 24);
  unsigned Killed = 0, Reassigned = 0;
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    FaultInjector FI(Seed);
    FaultSpec Kill;
    Kill.Probability = 0.18;
    FI.arm(dist::SiteWorkerKill, Kill);
    FaultSpec Crash;
    Crash.Probability = 0.12;
    FI.arm(dist::SiteWorkerExit, Crash);

    dist::DistConfig Cfg;
    Cfg.Workers = 8;
    Cfg.Faults = &FI;
    Cfg.BackoffJitterSeed = Seed;
    Cfg.MaxWorkerRestarts = 1000;
    dist::DistCoordinator Coord(R.Plan, Cfg);
    dist::DistRunReport Rep = Coord.run(R.Segs);
    EXPECT_EQ(Rep.Output, R.Serial) << "seed " << Seed;
    EXPECT_EQ(Rep.ShardsCompleted, 24u) << "seed " << Seed;
    Killed += Rep.WorkersKilled + Rep.WorkersExited;
    Reassigned += Rep.ShardsReassigned;
  }
  EXPECT_GT(Killed, 0u);
  EXPECT_GT(Reassigned, 0u);
}

TEST(DistCoordinator, PoolAndFaultKeysAdvanceAcrossRuns) {
  DistRun R;
  FaultInjector FI(5);
  FaultSpec Kill;
  // Planted on run 0 only: run 1's keys have RunIndex 1 << 32 mixed in,
  // so the same shard's first attempt must NOT die again.
  Kill.Keys = {dist::distAttemptKey(0, 0, 2)};
  FI.arm(dist::SiteWorkerKill, Kill);

  dist::DistConfig Cfg;
  Cfg.Workers = 3;
  Cfg.Faults = &FI;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  EXPECT_EQ(Coord.runIndex(), 0u);
  dist::DistRunReport First = Coord.run(R.Segs);
  EXPECT_EQ(First.Output, R.Serial);
  EXPECT_EQ(First.WorkersKilled, 1u);

  EXPECT_EQ(Coord.runIndex(), 1u);
  EXPECT_GE(Coord.liveWorkers(), 1u);
  dist::DistRunReport Second = Coord.run(R.Segs);
  EXPECT_EQ(Second.Output, R.Serial);
  EXPECT_EQ(Second.WorkersKilled, 0u); // the pattern did not repeat.
  EXPECT_EQ(Second.ShardsCompleted, 8u);
}

TEST(DistCoordinator, PreFiredTokenCancelsWithoutCommitting) {
  DistRun R;
  CancelToken Token = CancelToken::root();
  Token.cancel();
  dist::DistConfig Cfg;
  Cfg.Workers = 2;
  Cfg.Token = Token;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_TRUE(Rep.Cancelled);
  EXPECT_LT(Rep.ShardsCompleted, 8u);
}

TEST(DistCoordinator, ShutdownIsIdempotentAndReapsEveryWorker) {
  DistRun R;
  dist::DistConfig Cfg;
  Cfg.Workers = 3;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  EXPECT_EQ(Coord.run(R.Segs).Output, R.Serial);
  EXPECT_GE(Coord.liveWorkers(), 1u);
  Coord.shutdown();
  EXPECT_EQ(Coord.liveWorkers(), 0u);
  Coord.shutdown(); // second call is a no-op, not a crash.
  EXPECT_EQ(Coord.liveWorkers(), 0u);
}

TEST(DistCoordinator, PrewarmForksTheFullPoolBeforeAnyRun) {
  // Multi-threaded embedders (DiffOracle) prewarm before starting their
  // ThreadPool so the bulk of forks comes from a single-threaded parent.
  DistRun R;
  dist::DistConfig Cfg;
  Cfg.Workers = 3;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  EXPECT_EQ(Coord.liveWorkers(), 0u);
  Coord.prewarm();
  EXPECT_EQ(Coord.liveWorkers(), 3u);
  Coord.prewarm(); // idempotent: the pool is already full.
  EXPECT_EQ(Coord.liveWorkers(), 3u);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_EQ(Rep.WorkersSpawned, 0u); // run() had nothing left to fork.
}

TEST(DistCoordinator, SimultaneousHangsSurviveMidSweepRespawns) {
  // Every attempt of every shard hangs, so one hang sweep routinely
  // reaps SEVERAL workers back to back, and each handleDeath respawns
  // into Procs — dead entries accumulate and the vector reallocates
  // mid-run. Pins the indexed sweep: a range-for here is a
  // use-after-free the moment a respawn's push_back reallocates.
  DistRun R("sum", 2000, 6);
  FaultInjector FI(5);
  FaultSpec Hang;
  Hang.KeyModulo = 1;
  FI.arm(dist::SiteWorkerHang, Hang);

  dist::DistConfig Cfg;
  Cfg.Workers = 3;
  Cfg.MaxRetries = 1;
  Cfg.Faults = &FI;
  Cfg.TaskDeadlineSeconds = 0.02; // hang-kill at 40ms: the test stays fast.
  // One shard per task frame: with the default batching, a single
  // hang-kill can exhaust up to BatchShards attempts at once and the
  // per-shard hang accounting below would undercount depending on which
  // workers were idle at dispatch time (flaky under machine load).
  Cfg.BatchShards = 1;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  // No attempt ever commits, so every shard lands on the last resort —
  // and the answer is still exact.
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_EQ(Rep.SerialRefolds, 6u);
  EXPECT_GE(Rep.HangsDetected, 6u);
  EXPECT_GE(Rep.WorkersRestarted, 6u);
}

//===----------------------------------------------------------------------===//
// Shared-memory transport: codec fuzz, mapping windows, fd passing
//===----------------------------------------------------------------------===//

TEST(DistProtocol, TaskCodecRejectsMalformedPayloads) {
  dist::TaskMsg T;
  dist::TaskItem A;
  A.TaskId = 1;
  A.ShardIndex = 0;
  A.AttemptKey = 7;
  A.Kind = dist::ShardTransport::Inline;
  A.Data = {1, 2, 3};
  dist::TaskItem B;
  B.TaskId = 2;
  B.ShardIndex = 1;
  B.AttemptKey = 8;
  B.Kind = dist::ShardTransport::Shm;
  B.Generation = 4;
  B.Offset = 100;
  B.Count = 50;
  T.Items = {A, B};
  std::vector<uint8_t> P = dist::encodeTask(T);

  // Truncation at every byte boundary must decode false, never crash or
  // deliver a partial batch.
  for (size_t N = 0; N != P.size(); ++N) {
    std::vector<uint8_t> Cut(P.begin(), P.begin() + N);
    dist::TaskMsg Out;
    EXPECT_FALSE(dist::decodeTask(Cut, &Out)) << "truncated at " << N;
  }
  // Trailing junk fails the final atEnd() check.
  {
    std::vector<uint8_t> Junk = P;
    Junk.push_back(0xab);
    dist::TaskMsg Out;
    EXPECT_FALSE(dist::decodeTask(Junk, &Out));
  }
  // An empty batch is not a legal Task frame.
  {
    dist::TaskMsg Empty;
    dist::TaskMsg Out;
    EXPECT_FALSE(dist::decodeTask(dist::encodeTask(Empty), &Out));
  }
  // Item counts beyond MaxTaskItems are a corrupt length word.
  {
    dist::WireWriter W;
    W.u64(dist::MaxTaskItems + 1);
    dist::TaskMsg Out;
    EXPECT_FALSE(dist::decodeTask(W.take(), &Out));
  }
  // Unknown transport kinds are refused.
  {
    std::vector<uint8_t> Bad = dist::encodeTask(T);
    // Item A's layout: TaskId, ShardIndex, AttemptKey (3x u64 after the
    // u64 count), then the transport kind byte.
    Bad[8 + 24] = 9;
    dist::TaskMsg Out;
    EXPECT_FALSE(dist::decodeTask(Bad, &Out));
  }
  // A descriptor whose Count could never fit a frame is refused even
  // though no payload bytes back it.
  {
    dist::TaskMsg Huge = T;
    Huge.Items[1].Count = dist::MaxFramePayloadBytes; // elems, not bytes.
    dist::TaskMsg Out;
    EXPECT_FALSE(dist::decodeTask(dist::encodeTask(Huge), &Out));
  }
}

TEST(DistProtocol, PublishCodecRejectsTruncationAndJunk) {
  dist::PublishMsg M;
  M.Generation = 2;
  M.Token = 0x0123456789abcdefULL;
  M.ByteOffset = 16;
  M.Elems = 777;
  std::vector<uint8_t> P = dist::encodePublish(M);
  for (size_t N = 0; N != P.size(); ++N) {
    std::vector<uint8_t> Cut(P.begin(), P.begin() + N);
    dist::PublishMsg Out;
    EXPECT_FALSE(dist::decodePublish(Cut, &Out)) << "truncated at " << N;
  }
  std::vector<uint8_t> Junk = P;
  Junk.push_back(0);
  dist::PublishMsg Out;
  EXPECT_FALSE(dist::decodePublish(Junk, &Out));
}

TEST(DistProtocol, FrameWriterReusesBuffersAndRestoresCorruption) {
  // One writer, three frames: a clean one, a corrupted one, then a
  // clean one again. The corruption is an in-place flip that must be
  // undone after the send — if it leaked into the reused buffer, the
  // third frame would either carry the flipped byte or double-flip.
  // Fresh socketpair per frame: Corrupt is sticky per-reader by design,
  // and readFrameBlocking discards whatever a burst left buffered.
  dist::FrameWriter W;

  dist::ResultMsg R;
  R.TaskId = 11;
  R.ShardIndex = 2;
  R.Out.D = {5, -9};

  uint64_t CleanBytes = 0;
  {
    SocketPair S;
    dist::encodeResult(R, W.payload());
    ASSERT_TRUE(W.send(S.Fd[0], dist::MsgType::Result));
    CleanBytes = W.lastFrameBytes();
    EXPECT_GT(CleanBytes, dist::FrameHeaderBytes);
    dist::Frame F;
    ASSERT_EQ(dist::readFrameBlocking(S.Fd[1], &F), dist::RecvStatus::Ok);
    dist::ResultMsg Got;
    ASSERT_TRUE(dist::decodeResult(F.Payload, &Got));
    EXPECT_EQ(Got.Out.D, R.Out.D);
  }
  {
    SocketPair S;
    dist::encodeResult(R, W.payload());
    ASSERT_TRUE(W.send(S.Fd[0], dist::MsgType::Result, /*CorruptByteAt=*/3));
    EXPECT_EQ(W.lastFrameBytes(), CleanBytes);
    dist::Frame F;
    EXPECT_EQ(dist::readFrameBlocking(S.Fd[1], &F), dist::RecvStatus::Corrupt);
  }
  {
    // The corrupting flip was undone after the send: the next frame out
    // of the SAME writer decodes byte-for-byte clean.
    SocketPair S;
    dist::encodeResult(R, W.payload());
    ASSERT_TRUE(W.send(S.Fd[0], dist::MsgType::Result));
    EXPECT_EQ(W.lastFrameBytes(), CleanBytes);
    dist::Frame F;
    ASSERT_EQ(dist::readFrameBlocking(S.Fd[1], &F), dist::RecvStatus::Ok);
    dist::ResultMsg Got;
    ASSERT_TRUE(dist::decodeResult(F.Payload, &Got));
    EXPECT_EQ(Got.TaskId, R.TaskId);
    EXPECT_EQ(Got.Out.D, R.Out.D);
  }
}

TEST(DistShm, TokenIsDeterministicAndInputSensitive) {
  uint64_t T = dist::shmToken(1, 1000, 0xabcdef);
  EXPECT_EQ(dist::shmToken(1, 1000, 0xabcdef), T);
  EXPECT_NE(dist::shmToken(2, 1000, 0xabcdef), T);
  EXPECT_NE(dist::shmToken(1, 1001, 0xabcdef), T);
  EXPECT_NE(dist::shmToken(1, 1000, 0xabcdee), T);
}

TEST(DistShm, WindowMapsSealedBufferAndBoundsChecks) {
  if (!dist::shmTransportAvailable())
    GTEST_SKIP() << "no sealable memfd on this kernel";
  std::vector<int64_t> Vals(3000);
  for (size_t I = 0; I != Vals.size(); ++I)
    Vals[I] = static_cast<int64_t>(I) * 7 - 100;

  dist::ShmRegion R;
  R.Fd = dist::shmCreateBuffer();
  ASSERT_GE(R.Fd, 0);
  R.OwnsFd = true;
  ASSERT_TRUE(dist::shmAppend(R.Fd, Vals.data(), Vals.size() * 8));
  ASSERT_TRUE(dist::shmSeal(R.Fd));
  R.Generation = 1;
  R.Elems = Vals.size();
  R.ByteOffset = 0;

  dist::ShmWindow Win;
  runtime::SegmentView V;
  // Whole region.
  ASSERT_TRUE(Win.map(R, 0, Vals.size(), &V));
  ASSERT_EQ(V.Size, Vals.size());
  EXPECT_TRUE(std::equal(Vals.begin(), Vals.end(), V.Data));
  // An interior window whose byte offset is not page-aligned.
  ASSERT_TRUE(Win.map(R, 513, 1000, &V));
  ASSERT_EQ(V.Size, 1000u);
  EXPECT_EQ(V.Data[0], Vals[513]);
  EXPECT_EQ(V.Data[999], Vals[1512]);
  // Empty windows are legal and need no mapping.
  ASSERT_TRUE(Win.map(R, 100, 0, &V));
  EXPECT_EQ(V.Size, 0u);
  // Out-of-range descriptors are refused, including overflow-bait.
  EXPECT_FALSE(Win.map(R, Vals.size() + 1, 0, &V));
  EXPECT_FALSE(Win.map(R, 0, Vals.size() + 1, &V));
  EXPECT_FALSE(Win.map(R, 2999, 2, &V));
  EXPECT_FALSE(Win.map(R, UINT64_MAX - 1, 4, &V));
}

TEST(DistProtocol, PublishFrameCarriesTheMappingFdViaScmRights) {
  if (!dist::shmTransportAvailable())
    GTEST_SKIP() << "no sealable memfd on this kernel";
  // The coordinator side: build a sealed region and Publish it with the
  // fd attached. The worker side: receive frame + fd together, then map
  // a window through the RECEIVED fd and read the actual values back.
  std::vector<int64_t> Vals = {4, 8, 15, 16, 23, 42};
  int Fd = dist::shmCreateBuffer();
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(dist::shmAppend(Fd, Vals.data(), Vals.size() * 8));
  ASSERT_TRUE(dist::shmSeal(Fd));

  SocketPair S;
  dist::FrameWriter W;
  dist::PublishMsg M;
  M.Generation = 5;
  M.Token = dist::shmToken(5, Vals.size(), 99);
  M.Elems = Vals.size();
  dist::encodePublish(M, W.payload());
  ASSERT_TRUE(W.sendWithFd(S.Fd[0], dist::MsgType::Publish, Fd));
  ::close(Fd); // Sender's copy; the in-flight duplicate survives.

  dist::FrameReader Reader;
  std::vector<int> GotFds;
  ASSERT_EQ(Reader.fill(S.Fd[1], &GotFds), dist::RecvStatus::Ok);
  dist::Frame F;
  ASSERT_EQ(Reader.next(&F), dist::RecvStatus::Ok);
  EXPECT_EQ(F.Type, dist::MsgType::Publish);
  dist::PublishMsg Got;
  ASSERT_TRUE(dist::decodePublish(F.Payload, &Got));
  EXPECT_EQ(Got.Generation, M.Generation);
  EXPECT_EQ(Got.Token, M.Token);
  ASSERT_EQ(GotFds.size(), 1u);

  dist::ShmRegion R;
  R.Fd = GotFds[0];
  R.OwnsFd = true;
  R.Generation = Got.Generation;
  R.ByteOffset = Got.ByteOffset;
  R.Elems = Got.Elems;
  dist::ShmWindow Win;
  runtime::SegmentView V;
  ASSERT_TRUE(Win.map(R, 2, 3, &V));
  ASSERT_EQ(V.Size, 3u);
  EXPECT_EQ(V.Data[0], 15);
  EXPECT_EQ(V.Data[2], 23);
}

TEST(DistProtocol, UnsolicitedFdsAreClosedNotLeaked) {
  if (!dist::shmTransportAvailable())
    GTEST_SKIP() << "no sealable memfd on this kernel";
  // A peer that attaches an fd to a frame the receiver reads with the
  // fd-less fill() must not leak the descriptor into the process.
  int Fd = dist::shmCreateBuffer();
  ASSERT_GE(Fd, 0);
  int64_t One = 1;
  ASSERT_TRUE(dist::shmAppend(Fd, &One, 8));

  SocketPair S;
  dist::FrameWriter W;
  W.payload().u64(0);
  ASSERT_TRUE(W.sendWithFd(S.Fd[0], dist::MsgType::Heartbeat, Fd));
  ::close(Fd);

  dist::FrameReader Reader;
  ASSERT_EQ(Reader.fill(S.Fd[1]), dist::RecvStatus::Ok);
  dist::Frame F;
  ASSERT_EQ(Reader.next(&F), dist::RecvStatus::Ok);
  // The received duplicate was closed inside fill(); the next fd the
  // process opens reuses the lowest free slot, which would have been
  // occupied had the duplicate leaked. (Exact-fd assertions are too
  // brittle; just prove the system still hands out descriptors and no
  // EMFILE creep started.)
  int Probe = ::dup(S.Fd[1]);
  EXPECT_GE(Probe, 0);
  ::close(Probe);
}

//===----------------------------------------------------------------------===//
// Shm transport end-to-end: identity with inline, staleness, deadlines
//===----------------------------------------------------------------------===//

TEST(DistCoordinator, ShmTransportIsUsedAndAccountsMappedBytes) {
  if (!dist::shmTransportAvailable())
    GTEST_SKIP() << "no sealable memfd on this kernel";
  DistRun R;
  dist::DistConfig Cfg;
  Cfg.Workers = 3;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  ASSERT_TRUE(Coord.shmEnabled());
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_TRUE(Rep.UsedShm);
  // Every shard travelled as a descriptor: the socket carried frames,
  // not elements. 6000 elements * 8 B map through the region; the
  // frames themselves stay far under one element-payload's size.
  EXPECT_EQ(Rep.BytesMapped, R.Data.size() * 8);
  EXPECT_GT(Rep.TaskFrames, 0u);
  EXPECT_LT(Rep.BytesShipped, R.Data.size() * 8);

  // Prewarmed pools get the mapping by Publish frame instead of fork
  // inheritance — and a second run republishes to the (now stale) pool.
  dist::DistRunReport Rep2 = Coord.run(R.Segs);
  EXPECT_EQ(Rep2.Output, R.Serial);
  EXPECT_TRUE(Rep2.UsedShm);
  EXPECT_GT(Rep2.PublishFrames, 0u);
}

TEST(DistCoordinator, InlineFallbackConfigMatchesShmUnderPlantedKills) {
  // The always-tested fallback: same workload, same planted SIGKILL,
  // once over shm and once inline — bit-identical answers and identical
  // recovery counters.
  DistRun R;
  int64_t Outputs[2];
  for (int UseShm = 0; UseShm != 2; ++UseShm) {
    FaultInjector FI(5);
    FaultSpec Kill;
    Kill.Keys = {dist::distAttemptKey(0, 0, 2)};
    FI.arm(dist::SiteWorkerKill, Kill);
    dist::DistConfig Cfg;
    Cfg.Workers = 3;
    Cfg.UseShm = UseShm != 0;
    Cfg.Faults = &FI;
    dist::DistCoordinator Coord(R.Plan, Cfg);
    EXPECT_EQ(Coord.shmEnabled(),
              UseShm != 0 && dist::shmTransportAvailable());
    dist::DistRunReport Rep = Coord.run(R.Segs);
    Outputs[UseShm] = Rep.Output;
    EXPECT_EQ(Rep.Output, R.Serial);
    EXPECT_EQ(Rep.WorkersKilled, 1u);
    EXPECT_EQ(Rep.ShardsCompleted, 8u);
    if (!Cfg.UseShm) {
      EXPECT_FALSE(Rep.UsedShm);
      EXPECT_EQ(Rep.BytesMapped, 0u);
    }
  }
  EXPECT_EQ(Outputs[0], Outputs[1]);
}

TEST(DistCoordinator, NoShmEnvVarForcesTheInlineTransport) {
  ASSERT_EQ(::setenv("GRASSP_DIST_NO_SHM", "1", 1), 0);
  DistRun R;
  dist::DistConfig Cfg;
  Cfg.Workers = 2;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  EXPECT_FALSE(Coord.shmEnabled());
  dist::DistRunReport Rep = Coord.run(R.Segs);
  ASSERT_EQ(::unsetenv("GRASSP_DIST_NO_SHM"), 0);
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_FALSE(Rep.UsedShm);
  EXPECT_EQ(Rep.BytesMapped, 0u);
  // Inline transport ships the elements themselves.
  EXPECT_GE(Rep.BytesShipped, R.Data.size() * 8);
}

TEST(DistWorker, StaleGenerationDescriptorExitsLoudly) {
  if (!dist::shmTransportAvailable())
    GTEST_SKIP() << "no sealable memfd on this kernel";
  // A worker holding generation 3 that receives a generation-4
  // descriptor must refuse to fold (its mapping's bytes are not the
  // coordinator's input) and exit with the dedicated status the
  // coordinator's waitpid decoder recognizes.
  DistRun R("sum", 100, 2);

  dist::ShmRegion Inherited;
  Inherited.Fd = dist::shmCreateBuffer();
  ASSERT_GE(Inherited.Fd, 0);
  ASSERT_TRUE(dist::shmAppend(Inherited.Fd, R.Data.data(), R.Data.size() * 8));
  ASSERT_TRUE(dist::shmSeal(Inherited.Fd));
  Inherited.OwnsFd = true;
  Inherited.Generation = 3;
  Inherited.Token = dist::shmToken(3, R.Data.size(), R.Plan.compiled().bytecodeHash());
  Inherited.Elems = R.Data.size();

  SocketPair S;
  pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    ::close(S.Fd[0]);
    dist::workerMain(S.Fd[1], R.Plan, nullptr, 0.02, Inherited);
  }
  ::close(S.Fd[1]);
  S.Fd[1] = -1;

  // The Hello handshake reports the inherited mapping.
  dist::Frame F;
  ASSERT_EQ(dist::readFrameBlocking(S.Fd[0], &F), dist::RecvStatus::Ok);
  ASSERT_EQ(F.Type, dist::MsgType::Hello);
  dist::HelloMsg H;
  ASSERT_TRUE(dist::decodeHello(F.Payload, &H));
  EXPECT_EQ(H.ShmGeneration, 3u);
  EXPECT_EQ(H.ShmToken, Inherited.Token);

  dist::TaskMsg T;
  dist::TaskItem It;
  It.TaskId = 1;
  It.ShardIndex = 0;
  It.AttemptKey = dist::distAttemptKey(0, 0, 0);
  It.Kind = dist::ShardTransport::Shm;
  It.Generation = 4; // Not the mapping the worker holds.
  It.Offset = 0;
  It.Count = 10;
  T.Items = {It};
  ASSERT_TRUE(dist::writeFrame(S.Fd[0], dist::MsgType::Task,
                               dist::encodeTask(T)));
  int Status = 0;
  ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), dist::StaleMapExitStatus);
}

TEST(DistCoordinator, TaskDeadlineScalesWithShardElementCount) {
  dist::DistConfig Cfg;
  Cfg.TaskDeadlineSeconds = 0.25;
  Cfg.DeadlineNsPerElem = 100.0;
  // The base floor plus 100 ns per element: a million-element shard
  // earns 100 ms on top of the floor instead of tripping the straggler
  // detector at the same threshold as a thousand-element one.
  EXPECT_EQ(dist::DistCoordinator::taskDeadlineNs(Cfg, 0), 250000000);
  EXPECT_EQ(dist::DistCoordinator::taskDeadlineNs(Cfg, 1000000), 350000000);
  Cfg.DeadlineNsPerElem = 0.0;
  EXPECT_EQ(dist::DistCoordinator::taskDeadlineNs(Cfg, 1000000), 250000000);
}

TEST(DistCoordinator, ScaledDeadlineSuppressesFalseHangKills) {
  // A deliberately slow tier (no specialization, no native JIT) under a
  // tiny base deadline: without per-element scaling the hang sweep
  // would reap honest workers mid-fold; with it the run must finish
  // with zero kills. Speculation stays on — backups are cheap; kills
  // are the false positive this satellite fixes.
  DistRun R("sum", 40000, 4);
  runtime::CompiledPlan Slow(*R.P, synthFor("sum").Plan,
                             /*AllowSpecialize=*/false,
                             /*AllowNative=*/false);
  dist::DistConfig Cfg;
  Cfg.Workers = 2;
  Cfg.TaskDeadlineSeconds = 0.002; // 2ms floor: absurd on its own.
  Cfg.DeadlineNsPerElem = 2000.0;  // ...but 2us/elem covers the slow tier.
  Cfg.Speculate = false;
  Cfg.MaxRetries = 0;
  dist::DistCoordinator Coord(Slow, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_EQ(Rep.HangsDetected, 0u);
  EXPECT_EQ(Rep.WorkersKilled, 0u);
  EXPECT_EQ(Rep.SerialRefolds, 0u);
}

TEST(DistCoordinator, FileBackedSourceMapsTheWorkloadFileDirectly) {
  if (!dist::shmTransportAvailable())
    GTEST_SKIP() << "no sealable memfd on this kernel";
  // A binary workload file run through run(Src): workers mmap the
  // GRSPWB01 region by byte offset — zero element bytes cross the
  // socket and none are staged through an extra memfd copy.
  DistRun R("sum", 5000, 4);
  std::string Path = "dist_smoke_filemap.grsp.bin";
  {
    runtime::BinaryWorkloadWriter W(Path);
    W.append(R.Data);
    W.close();
  }
  runtime::SourceOptions Opts;
  Opts.ChunkElems = 1000;
  runtime::MmapFileSource Src(Path, Opts);

  dist::DistConfig Cfg;
  Cfg.Workers = 3;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(Src);
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_TRUE(Rep.UsedShm);
  EXPECT_EQ(Rep.BytesMapped, R.Data.size() * 8);
  EXPECT_LT(Rep.BytesShipped, R.Data.size() * 8);

  // And the identical run with shm disabled streams chunks inline —
  // same answer, different transport.
  dist::DistConfig CfgInline = Cfg;
  CfgInline.UseShm = false;
  dist::DistCoordinator CoordInline(R.Plan, CfgInline);
  dist::DistRunReport RepInline = CoordInline.run(Src);
  EXPECT_EQ(RepInline.Output, R.Serial);
  EXPECT_FALSE(RepInline.UsedShm);
  ::remove(Path.c_str());
}

TEST(DistCoordinator, BatchedFramesCoverAllShardsWithFewerTasks) {
  if (!dist::shmTransportAvailable())
    GTEST_SKIP() << "no sealable memfd on this kernel";
  // 16 shards over 2 workers with BatchShards=4: the initial deal packs
  // descriptors 4-per-frame, so the whole run needs far fewer Task
  // frames than shards — while every shard still completes and merges
  // in certified order.
  DistRun R("second_max", 8000, 16);
  dist::DistConfig Cfg;
  Cfg.Workers = 2;
  Cfg.BatchShards = 4;
  dist::DistCoordinator Coord(R.Plan, Cfg);
  dist::DistRunReport Rep = Coord.run(R.Segs);
  EXPECT_EQ(Rep.Output, R.Serial);
  EXPECT_EQ(Rep.ShardsCompleted, 16u);
  EXPECT_LE(Rep.TaskFrames, 8u);
}

} // namespace
