//===- tests/synth_equiv_test.cpp - Bounded verifier tests -----------------=//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "synth/EquivCheck.h"
#include "synth/PlanEval.h"
#include "synth/Grammar.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::ir;
using namespace grassp::synth;

namespace {

MergeFn singleFieldMerge(const lang::SerialProgram &P, Op O) {
  const lang::Field &F = P.State.field(0);
  return MergeFn{false,
                 {binary(O, var("a_" + F.Name, F.Ty),
                         var("b_" + F.Name, F.Ty))}};
}

TEST(EquivCheck, AcceptsCorrectSumMerge) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  EquivChecker C(*P);
  ParallelPlan Plan;
  Plan.Kind = Scenario::NoPrefix;
  Plan.Merge = singleFieldMerge(*P, Op::Add);
  EXPECT_EQ(C.verify(Plan, VerifyOptions()), Verdict::Equivalent);
}

TEST(EquivCheck, RefutesWrongSumMergeWithCounterexample) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  EquivChecker C(*P);
  ParallelPlan Plan;
  Plan.Kind = Scenario::NoPrefix;
  Plan.Merge = singleFieldMerge(*P, Op::Max);
  Segments Cex;
  ASSERT_EQ(C.verify(Plan, VerifyOptions(), &Cex), Verdict::Refuted);
  // The model really is a counterexample: serial != plan on it.
  EXPECT_NE(lang::runSerialSegmented(*P, Cex),
            runPlanConcrete(*P, Plan, Cex));
  // And it entered the corpus, so the same plan now fails the screen.
  EXPECT_FALSE(C.passesCorpus(Plan));
}

TEST(EquivCheck, CorpusScreensObviouslyWrongPlans) {
  const lang::SerialProgram *P = lang::findBenchmark("count");
  EquivChecker C(*P);
  C.seedCorpus(50, 1);
  ParallelPlan Wrong;
  Wrong.Kind = Scenario::NoPrefix;
  Wrong.Merge = singleFieldMerge(*P, Op::Min);
  EXPECT_FALSE(C.passesCorpus(Wrong));
  ParallelPlan Right;
  Right.Kind = Scenario::NoPrefix;
  Right.Merge = singleFieldMerge(*P, Op::Add);
  EXPECT_TRUE(C.passesCorpus(Right));
}

TEST(EquivCheck, ConstPrefixLengthMatters) {
  // is_sorted needs l >= 1; l = 0 (plain merge) must be refuted.
  const lang::SerialProgram *P = lang::findBenchmark("is_sorted");
  EquivChecker C(*P);
  std::vector<MergeFn> Ms = nontrivialMergeCandidates(*P);

  bool AnyL1Accepted = false;
  for (const MergeFn &M : Ms) {
    ParallelPlan Plan;
    Plan.Kind = Scenario::ConstPrefix;
    Plan.PrefixLen = 1;
    Plan.Merge = M;
    if (!C.passesCorpus(Plan))
      continue;
    if (C.verify(Plan, VerifyOptions()) == Verdict::Equivalent) {
      AnyL1Accepted = true;
      // The same merge *without* the repair must be wrong.
      ParallelPlan NoRepair = Plan;
      NoRepair.Kind = Scenario::NoPrefix;
      EXPECT_NE(C.verify(NoRepair, VerifyOptions()), Verdict::Equivalent);
      break;
    }
  }
  EXPECT_TRUE(AnyL1Accepted);
}

TEST(EquivCheck, SmtQueriesAreCounted) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  EquivChecker C(*P);
  ParallelPlan Plan;
  Plan.Kind = Scenario::NoPrefix;
  Plan.Merge = singleFieldMerge(*P, Op::Add);
  VerifyOptions Opts;
  C.verify(Plan, Opts);
  EXPECT_GT(C.numSmtChecks(), 0u);
}

} // namespace
