//===- tests/serve_hash_test.cpp - Canonical program hash + rebinding -----==//
//
// The solution-cache key contract (serve/CanonHash.h): invariant under
// alpha-renaming, field reordering and formatting; distinct across all
// Table-1 benchmarks; stable across runs and builds (golden values); and
// rebindPlanToProgram really does port a cached plan onto a renamed /
// reordered variant — checked semantically by running the rebound plan
// segment-parallel against the variant's serial fold.
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "runtime/Kernels.h"
#include "runtime/Workload.h"
#include "serve/CanonHash.h"
#include "serve/ProgramText.h"
#include "synth/Grassp.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace grassp;

namespace {

lang::SerialProgram parseOrDie(const std::string &Text) {
  lang::SerialProgram P;
  std::string Err;
  EXPECT_TRUE(serve::parseProgramText(Text, &P, &Err)) << Err << "\n" << Text;
  return P;
}

// The `average` benchmark in its canonical spelling and two structural
// twins: fields renamed, and fields renamed AND declared in the other
// order (steps and output rewritten consistently).
const char *AverageCanon =
    "(program (name average) (state (s int 0) (cnt int 0)) "
    "(step (s (add s in)) (cnt (add cnt 1))) "
    "(output (ite (eq cnt 0) 0 (div s cnt))) (range -100 100))";
const char *AverageRenamed =
    "(program (name avg2) (state (total int 0) (n int 0)) "
    "(step (total (add total in)) (n (add n 1))) "
    "(output (ite (eq n 0) 0 (div total n))) (range -100 100))";
const char *AverageReordered =
    "(program (name avg3) (state (n int 0) (total int 0)) "
    "(step (n (add n 1)) (total (add total in))) "
    "(output (ite (eq n 0) 0 (div total n))) (range -100 100))";

} // namespace

TEST(CanonHash, TextRoundTripPreservesHashForEveryBenchmark) {
  for (const lang::SerialProgram &P : lang::allBenchmarks()) {
    std::string Text = serve::printProgramText(P);
    lang::SerialProgram Back = parseOrDie(Text);
    EXPECT_EQ(serve::canonicalProgramHash(P),
              serve::canonicalProgramHash(Back))
        << P.Name;
    // The printer is a canonical form: print(parse(print(P))) is print(P).
    EXPECT_EQ(serve::printProgramText(Back), Text) << P.Name;
  }
}

TEST(CanonHash, AlphaRenamingAndReorderingAreInvisible) {
  uint64_t Canon = serve::canonicalProgramHash(parseOrDie(AverageCanon));
  EXPECT_EQ(Canon, serve::canonicalProgramHash(parseOrDie(AverageRenamed)));
  EXPECT_EQ(Canon,
            serve::canonicalProgramHash(parseOrDie(AverageReordered)));
}

TEST(CanonHash, FormattingIsInvisible) {
  std::string Spaced =
      "(program   (name average)\n\t(state (s int 0)   (cnt int 0))\n"
      "  (step (s (add s in)) (cnt (add cnt 1)))\n"
      "  (output (ite (eq cnt 0) 0 (div s cnt)))\n  (range -100 100))";
  EXPECT_EQ(serve::canonicalProgramHash(parseOrDie(AverageCanon)),
            serve::canonicalProgramHash(parseOrDie(Spaced)));
}

TEST(CanonHash, MeaningChangesMoveTheHash) {
  uint64_t Canon = serve::canonicalProgramHash(parseOrDie(AverageCanon));
  // A different init, a different step operator, a different output.
  const char *InitChanged =
      "(program (name x) (state (s int 1) (cnt int 0)) "
      "(step (s (add s in)) (cnt (add cnt 1))) "
      "(output (ite (eq cnt 0) 0 (div s cnt))) (range -100 100))";
  const char *StepChanged =
      "(program (name x) (state (s int 0) (cnt int 0)) "
      "(step (s (sub s in)) (cnt (add cnt 1))) "
      "(output (ite (eq cnt 0) 0 (div s cnt))) (range -100 100))";
  const char *OutputChanged =
      "(program (name x) (state (s int 0) (cnt int 0)) "
      "(step (s (add s in)) (cnt (add cnt 1))) (output s) "
      "(range -100 100))";
  EXPECT_NE(Canon, serve::canonicalProgramHash(parseOrDie(InitChanged)));
  EXPECT_NE(Canon, serve::canonicalProgramHash(parseOrDie(StepChanged)));
  EXPECT_NE(Canon, serve::canonicalProgramHash(parseOrDie(OutputChanged)));
}

TEST(CanonHash, AllBenchmarksPairwiseDistinct) {
  std::map<uint64_t, std::string> Seen;
  for (const lang::SerialProgram &P : lang::allBenchmarks()) {
    uint64_t H = serve::canonicalProgramHash(P);
    auto It = Seen.find(H);
    EXPECT_TRUE(It == Seen.end())
        << P.Name << " collides with " << (It == Seen.end() ? "" : It->second);
    Seen.emplace(H, P.Name);
  }
  EXPECT_GE(Seen.size(), 20u); // the Table-1 suite is not tiny.
}

TEST(CanonHash, GoldenKeysAreStableAcrossRunsAndBuilds) {
  // Frozen values of CanonHashVersion=1. If an intentional scheme change
  // breaks these, bump CanonHashVersion (stale caches must MISS, never
  // collide) and re-freeze.
  auto KeyOf = [](const char *Name) {
    const lang::SerialProgram *P = lang::findBenchmark(Name);
    EXPECT_NE(P, nullptr) << Name;
    return serve::canonicalProgramKey(*P);
  };
  EXPECT_EQ(KeyOf("count"), "801be0d43f9c0ccf");
  EXPECT_EQ(KeyOf("sum"), "627710cb9a594e6e");
  EXPECT_EQ(KeyOf("max_elem"), "7e778e371bdbfc53");
}

TEST(CanonHash, KeyHexRoundTrip) {
  for (uint64_t K : {0ull, 1ull, 0x801be0d43f9c0ccfull, ~0ull}) {
    uint64_t Back = 0;
    EXPECT_TRUE(serve::keyFromHex(serve::keyToHex(K), &Back));
    EXPECT_EQ(K, Back);
  }
  uint64_t Out;
  EXPECT_FALSE(serve::keyFromHex("", &Out));
  EXPECT_FALSE(serve::keyFromHex("xyz", &Out));
  EXPECT_FALSE(serve::keyFromHex("0123456789abcdef0", &Out)); // too long
}

TEST(CanonHash, PlanTextRoundTrip) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  ASSERT_NE(P, nullptr);
  synth::SynthesisResult R = synth::synthesize(*P);
  ASSERT_TRUE(R.Success);
  std::string Text = serve::printPlanText(R.Plan);
  synth::ParallelPlan Back;
  std::string Err;
  ASSERT_TRUE(serve::parsePlanText(Text, *P, &Back, &Err)) << Err;
  EXPECT_EQ(serve::printPlanText(Back), Text);
}

TEST(CanonHash, RebindPortsAPlanOntoARenamedReorderedVariant) {
  // Synthesize for the canonical spelling, rebind onto the reordered
  // twin, then prove the rebound plan COMPUTES the right thing: worker
  // fold per segment + certified merge == the variant's serial fold.
  lang::SerialProgram From = parseOrDie(AverageCanon);
  lang::SerialProgram To = parseOrDie(AverageReordered);
  ASSERT_EQ(serve::canonicalProgramHash(From),
            serve::canonicalProgramHash(To));

  synth::SynthesisResult R = synth::synthesize(From);
  ASSERT_TRUE(R.Success) << R.FailureReason;

  synth::ParallelPlan Rebound;
  ASSERT_TRUE(serve::rebindPlanToProgram(R.Plan, From, To, &Rebound));

  runtime::CompiledPlan CP(To, Rebound);
  std::vector<int64_t> Data = runtime::generateWorkload(To, 4096, 42);
  std::vector<runtime::SegmentView> Segs = runtime::partition(Data, 7);
  std::vector<runtime::WorkerOutput> Outs;
  for (const runtime::SegmentView &S : Segs)
    Outs.push_back(CP.runWorker(S));
  EXPECT_EQ(CP.merge(Outs, Segs), lang::runSerial(To, Data));
}

TEST(CanonHash, RebindRefusesNonCorrespondingPrograms) {
  lang::SerialProgram From = parseOrDie(AverageCanon);
  const lang::SerialProgram *Other = lang::findBenchmark("second_max");
  ASSERT_NE(Other, nullptr);
  synth::SynthesisResult R = synth::synthesize(From);
  ASSERT_TRUE(R.Success);
  synth::ParallelPlan Out;
  EXPECT_FALSE(serve::rebindPlanToProgram(R.Plan, From, *Other, &Out));
}
