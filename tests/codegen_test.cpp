//===- tests/codegen_test.cpp - Generated C++ translations -----------------=//
//
// Unit tests for expression rendering plus integration tests that
// compile the emitted translations with the host compiler and run them
// (the generated main self-verifies serial vs parallel).
//
//===----------------------------------------------------------------------===//

#include "codegen/CppCodegen.h"
#include "codegen/ExprCpp.h"
#include "lang/Benchmarks.h"
#include "synth/Grassp.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace grassp;
using namespace grassp::ir;
using namespace grassp::codegen;

namespace {

TEST(ExprCpp, Rendering) {
  ExprRef E = ite(eq(var("in", TypeKind::Int), constInt(2)),
                  add(var("res", TypeKind::Int), constInt(1)),
                  var("res", TypeKind::Int));
  std::map<std::string, std::string> M{{"in", "x"}, {"res", "s.res"}};
  EXPECT_EQ(exprToCpp(E, M),
            "((x == INT64_C(2)) ? (s.res + INT64_C(1)) : s.res)");
}

TEST(ExprCpp, HelpersForDivModMinMax) {
  ExprRef E = smax(intDiv(var("a", TypeKind::Int), constInt(2)),
                   intMod(var("a", TypeKind::Int), constInt(3)));
  std::string S = exprToCpp(E, {});
  EXPECT_NE(S.find("g_imax"), std::string::npos);
  EXPECT_NE(S.find("g_ediv"), std::string::npos);
  EXPECT_NE(S.find("g_emod"), std::string::npos);
}

// Compiles Source with the host compiler and runs it; returns the exit
// status (the generated mains return 0 on serial==parallel).
int compileAndRun(const std::string &Source, const std::string &Tag) {
  std::string Base = std::string(::testing::TempDir()) + "/gen_" + Tag;
  {
    std::ofstream Out(Base + ".cpp");
    Out << Source;
  }
  std::string Compile =
      "g++ -std=c++17 -O1 -o " + Base + " " + Base + ".cpp -lpthread";
  if (std::system(Compile.c_str()) != 0)
    return -1;
  std::string Run = Base + " > " + Base + ".out 2>&1";
  return std::system(Run.c_str());
}

class Translation : public ::testing::TestWithParam<std::string> {};

TEST_P(Translation, CompilesAndSelfVerifies) {
  const lang::SerialProgram *P = lang::findBenchmark(GetParam());
  ASSERT_NE(P, nullptr);
  synth::SynthesisResult R = synth::synthesize(*P);
  ASSERT_TRUE(R.Success);
  codegen::CppEmitOptions Opts;
  Opts.NumElements = 100000;
  std::string Src = codegen::emitStandaloneCpp(*P, R.Plan, Opts);
  ASSERT_FALSE(Src.empty());
  EXPECT_EQ(compileAndRun(Src, P->Name), 0) << Src.substr(0, 600);
}

// One representative per scenario keeps the compile time of this suite
// reasonable; the codegen paths are shared across benchmarks.
INSTANTIATE_TEST_SUITE_P(Scenarios, Translation,
                         ::testing::Values("sum",            // B1
                                           "second_max",     // B2
                                           "is_sorted",      // B3
                                           "count_102",      // B4
                                           "max_dist_ones",  // B4 max-acc
                                           "count_distinct"),// bag
                         [](const auto &Info) { return Info.param; });

TEST(MapReduceCodegen, StreamingPipelineComputesSum) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  synth::SynthesisResult R = synth::synthesize(*P);
  ASSERT_TRUE(R.Success);
  std::string Src = codegen::emitMapReduceCpp(*P, R.Plan);
  ASSERT_FALSE(Src.empty());

  std::string Base = std::string(::testing::TempDir()) + "/gen_mr_sum";
  {
    std::ofstream Out(Base + ".cpp");
    Out << Src;
  }
  ASSERT_EQ(std::system(("g++ -std=c++17 -O1 -o " + Base + " " + Base +
                         ".cpp")
                            .c_str()),
            0);
  // Two mappers over 1..100 and 101..200, one reducer: 20100.
  std::string Cmd = "( seq 1 100 | " + Base + " --map; seq 101 200 | " +
                    Base + " --map ) | " + Base + " --reduce > " + Base +
                    ".out";
  ASSERT_EQ(std::system(Cmd.c_str()), 0);
  std::ifstream In(Base + ".out");
  long long V = 0;
  In >> V;
  EXPECT_EQ(V, 20100);
}

TEST(MapReduceCodegen, RejectsPrefixPlans) {
  const lang::SerialProgram *P = lang::findBenchmark("is_sorted");
  synth::SynthesisResult R = synth::synthesize(*P);
  ASSERT_TRUE(R.Success);
  EXPECT_TRUE(codegen::emitMapReduceCpp(*P, R.Plan).empty());
}

} // namespace
