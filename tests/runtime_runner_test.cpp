//===- tests/runtime_runner_test.cpp - Runner and workload tests -----------=//

#include "lang/Benchmarks.h"
#include "runtime/Runner.h"
#include "support/ThreadPool.h"
#include "synth/Grassp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

using namespace grassp;
using namespace grassp::runtime;

namespace {

TEST(Partition, CoversDataContiguously) {
  std::vector<int64_t> Data(103);
  std::iota(Data.begin(), Data.end(), 0);
  for (unsigned M : {1u, 2u, 7u, 103u}) {
    std::vector<SegmentView> Segs = partition(Data, M);
    ASSERT_EQ(Segs.size(), M);
    size_t Total = 0;
    const int64_t *Expect = Data.data();
    for (const SegmentView &S : Segs) {
      EXPECT_GE(S.Size, 1u);
      EXPECT_EQ(S.Data, Expect);
      Expect += S.Size;
      Total += S.Size;
    }
    EXPECT_EQ(Total, Data.size());
    // Near-equal: sizes differ by at most one.
    size_t Mn = Segs[0].Size, Mx = Segs[0].Size;
    for (const SegmentView &S : Segs) {
      Mn = std::min(Mn, S.Size);
      Mx = std::max(Mx, S.Size);
    }
    EXPECT_LE(Mx - Mn, 1u);
  }
}

// The precondition is a real runtime check, not an assert: Release
// builds must also refuse shapes that would yield empty segments.
TEST(Partition, RejectsDegenerateShapes) {
  std::vector<int64_t> Data(5, 1);
  EXPECT_THROW(partition(Data, 0), std::invalid_argument);
  EXPECT_THROW(partition(Data, 6), std::invalid_argument);
  EXPECT_THROW(partition({}, 1), std::invalid_argument);
  EXPECT_NO_THROW(partition(Data, 5));
}

TEST(Partition, SegmentsFromLengthsAllowsEmptyButChecksTotal) {
  std::vector<int64_t> Data = {1, 2, 3};
  std::vector<SegmentView> Segs = segmentsFromLengths(Data, {0, 2, 0, 1});
  ASSERT_EQ(Segs.size(), 4u);
  EXPECT_EQ(Segs[0].Size, 0u);
  EXPECT_EQ(Segs[1].Size, 2u);
  EXPECT_EQ(Segs[3].Data[0], 3);
  EXPECT_THROW(segmentsFromLengths(Data, {1, 1}), std::invalid_argument);
}

TEST(Makespan, LptBasics) {
  // One worker: makespan is the sum.
  EXPECT_DOUBLE_EQ(makespan({1, 2, 3}, 1), 6.0);
  // Enough workers: makespan is the max.
  EXPECT_DOUBLE_EQ(makespan({1, 2, 3}, 3), 3.0);
  // The classic LPT suboptimality instance: {3,3,2,2,2} on 2 workers
  // schedules to 7 (optimal is 6) — LPT is a 7/6 approximation.
  EXPECT_DOUBLE_EQ(makespan({3, 3, 2, 2, 2}, 2), 7.0);
  // Balanced case: {4,3,3,2} on 2 workers -> 6.
  EXPECT_DOUBLE_EQ(makespan({4, 3, 3, 2}, 2), 6.0);
}

TEST(Makespan, NeverBelowTheoreticalBounds) {
  std::vector<double> T = {5, 1, 4, 2, 8, 3, 3, 6};
  double Sum = 0, Max = 0;
  for (double X : T) {
    Sum += X;
    Max = std::max(Max, X);
  }
  for (unsigned P = 1; P <= 8; ++P) {
    double M = makespan(T, P);
    EXPECT_GE(M + 1e-9, Sum / P);
    EXPECT_GE(M + 1e-9, Max);
    EXPECT_LE(M, Sum + 1e-9);
  }
}

TEST(Workload, GeneratorsMatchBenchmarks) {
  // With inversions disabled the is_sorted stream is monotone.
  const lang::SerialProgram *Sorted = lang::findBenchmark("is_sorted");
  WorkloadOptions NoInv;
  NoInv.SortedInversionPerMille = 0;
  std::vector<int64_t> S = generateWorkload(*Sorted, 1000, 3, NoInv);
  for (size_t I = 1; I != S.size(); ++I)
    EXPECT_LE(S[I - 1], S[I]);

  const lang::SerialProgram *Alt = lang::findBenchmark("alternating01");
  std::vector<int64_t> A = generateWorkload(*Alt, 100, 3);
  for (size_t I = 1; I != A.size(); ++I)
    EXPECT_NE(A[I - 1], A[I]);

  const lang::SerialProgram *Pat = lang::findBenchmark("count_102");
  std::vector<int64_t> Pd = generateWorkload(*Pat, 1000, 3);
  for (int64_t V : Pd)
    EXPECT_TRUE(V == 0 || V == 1 || V == 2);

  // The skewed distinct stream: wide head, narrow tail.
  const lang::SerialProgram *D = lang::findBenchmark("count_distinct");
  std::vector<int64_t> Dd = generateWorkload(*D, 8000, 3);
  for (size_t I = 4000; I != Dd.size(); ++I)
    EXPECT_GE(Dd[I], 1600);
}

// At the default inversion rate the is_sorted generator must exercise
// BOTH benchmark outcomes across seeds — the old always-monotone stream
// never took the false branch, so a broken false-path merge could pass
// every workload-driven test.
TEST(Workload, SortedGeneratorProducesBothOutcomes) {
  const lang::SerialProgram *Sorted = lang::findBenchmark("is_sorted");
  unsigned WithInversion = 0, FullySorted = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    std::vector<int64_t> S = generateWorkload(*Sorted, 450, Seed);
    bool Monotone = true;
    for (size_t I = 1; I != S.size(); ++I)
      if (S[I - 1] > S[I])
        Monotone = false;
    ++(Monotone ? FullySorted : WithInversion);
  }
  EXPECT_GT(WithInversion, 0u);
  EXPECT_GT(FullySorted, 0u);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
  // Reusable after wait().
  Pool.submit([&Count] { Count += 10; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 110);
}

TEST(Runner, SpeedupModelIsConsistent) {
  ParallelRunResult R;
  R.WorkerSeconds = {0.1, 0.1, 0.1, 0.1};
  R.MergeSeconds = 0.0;
  EXPECT_NEAR(modeledSpeedup(0.4, R, 4), 4.0, 1e-9);
  EXPECT_NEAR(modeledSpeedup(0.4, R, 1), 1.0, 1e-9);
}

TEST(Makespan, EdgeCases) {
  // More workers than tasks: extra workers idle, makespan is the max.
  EXPECT_DOUBLE_EQ(makespan({2.0, 1.0}, 8), 2.0);
  // All-zero task times and no tasks at all both model as zero.
  EXPECT_DOUBLE_EQ(makespan({0.0, 0.0, 0.0}, 4), 0.0);
  EXPECT_DOUBLE_EQ(makespan({}, 3), 0.0);
}

TEST(Runner, SpeedupModelEdgeCases) {
  // Zero measured work and zero merge: the model reports 0 rather than
  // dividing by zero.
  ParallelRunResult Z;
  Z.WorkerSeconds = {0.0, 0.0};
  Z.MergeSeconds = 0.0;
  EXPECT_DOUBLE_EQ(modeledSpeedup(1.0, Z, 4), 0.0);

  // No worker measurements at all (empty segment list).
  ParallelRunResult E;
  EXPECT_DOUBLE_EQ(modeledSpeedup(1.0, E, 2), 0.0);

  // P larger than the segment count still uses only the real work.
  ParallelRunResult W;
  W.WorkerSeconds = {0.2, 0.2};
  W.MergeSeconds = 0.0;
  EXPECT_NEAR(modeledSpeedup(0.4, W, 16), 2.0, 1e-9);
}

// One CompiledPlan shared across a multi-worker pool, folded over many
// segments, repeatedly: the merged output must equal the serial fold
// every round. Run under -DGRASSP_SANITIZE=thread this also proves the
// kernels are const-callable without races (the old shared Scratch
// buffer in CompiledProgram::output was not).
TEST(Runner, SharedPlanConcurrentStressMatchesSerial) {
  ThreadPool Pool(4);
  for (const char *Name : {"sum", "second_max", "is_sorted", "count_102",
                           "count_distinct"}) {
    const lang::SerialProgram *P = lang::findBenchmark(Name);
    ASSERT_NE(P, nullptr) << Name;
    synth::SynthesisResult R = synth::synthesize(*P);
    ASSERT_TRUE(R.Success) << Name;

    std::vector<int64_t> Data = generateWorkload(*P, 20000, 11);
    std::vector<SegmentView> Segs = partition(Data, 32);
    CompiledProgram CP(*P);
    CompiledPlan Plan(*P, R.Plan);
    int64_t Serial = CP.runSerial(Segs);
    for (int Round = 0; Round != 4; ++Round) {
      ParallelRunResult PR = runParallel(Plan, Segs, &Pool);
      EXPECT_EQ(PR.Output, Serial) << Name << " round " << Round;
    }
  }
}

// The h kernel itself, hammered from many workers through one shared
// CompiledProgram (runSerial ends in output()): concurrent const calls
// must agree with each other and with the single-threaded answer.
TEST(Runner, SharedCompiledProgramConcurrentOutput) {
  const lang::SerialProgram *P = lang::findBenchmark("delta_max_min");
  ASSERT_NE(P, nullptr);
  std::vector<int64_t> Data = generateWorkload(*P, 4000, 5);
  std::vector<SegmentView> Segs = partition(Data, 8);
  CompiledProgram CP(*P);
  int64_t Expected = CP.runSerial(Segs);

  ThreadPool Pool(4);
  std::vector<int64_t> Outs(64, 0);
  for (size_t I = 0; I != Outs.size(); ++I)
    Pool.submit([&, I] { Outs[I] = CP.runSerial(Segs); });
  Pool.wait();
  for (int64_t O : Outs)
    EXPECT_EQ(O, Expected);
}

// Every execution tier hammered concurrently on one shared const
// CompiledProgram. foldSegmentTier and output use thread-local scratch
// register files; under -DGRASSP_SANITIZE=thread this proves no tier
// touches shared mutable state per call.
TEST(Runner, AllTiersConcurrentOnSharedProgram) {
  ThreadPool Pool(4);
  for (const char *Name : {"sum", "second_max", "count_max", "is_sorted"}) {
    const lang::SerialProgram *P = lang::findBenchmark(Name);
    ASSERT_NE(P, nullptr) << Name;
    std::vector<int64_t> Data = generateWorkload(*P, 6000, 23);
    std::vector<SegmentView> Segs = partition(Data, 16);
    const CompiledProgram CP(*P);
    int64_t Expected = CP.runSerial(Segs);

    constexpr ExecTier AllTiers[] = {ExecTier::Specialized, ExecTier::LoopVM,
                                     ExecTier::PerElement};
    std::vector<int64_t> Outs(48, 0);
    for (size_t I = 0; I != Outs.size(); ++I) {
      ExecTier T = AllTiers[I % 3];
      if (!CP.tierAvailable(T))
        T = CP.tier();
      Pool.submit([&, I, T] { Outs[I] = CP.runSerialTier(T, Segs); });
    }
    Pool.wait();
    for (size_t I = 0; I != Outs.size(); ++I)
      EXPECT_EQ(Outs[I], Expected) << Name << " task " << I;
  }
}

} // namespace
