//===- tests/mapreduce_test.cpp - DFS and cluster-simulator tests ----------=//

#include "lang/Benchmarks.h"
#include "mapreduce/Cluster.h"
#include "runtime/Runner.h"
#include "synth/Grassp.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::mapreduce;

namespace {

TEST(MiniDfsTest, ShardsCoverFileWithRoundRobinPlacement) {
  MiniDfs Dfs(4, /*BlockElems=*/8);
  std::vector<int64_t> Data(100);
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<int64_t>(I);
  Dfs.put("f", Data);
  EXPECT_EQ(Dfs.size("f"), 100u);

  std::vector<Shard> Shards = Dfs.shards("f", 10);
  ASSERT_EQ(Shards.size(), 10u);
  size_t Total = 0;
  int64_t Next = 0;
  for (const Shard &S : Shards) {
    EXPECT_LT(S.HomeNode, 4u);
    for (size_t I = 0; I != S.View.Size; ++I)
      EXPECT_EQ(S.View.Data[I], Next++);
    Total += S.View.Size;
  }
  EXPECT_EQ(Total, 100u);
  // Blocks of 8 across 4 nodes: shard at offset 10 lives on node 1.
  EXPECT_EQ(Shards[1].HomeNode, 1u);
}

class JobBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(JobBenchmark, JobOutputMatchesSerialAndSpeedupIsBounded) {
  const lang::SerialProgram *P = lang::findBenchmark(GetParam());
  ASSERT_NE(P, nullptr);
  synth::SynthesisResult R = synth::synthesize(*P);
  ASSERT_TRUE(R.Success);

  ClusterConfig Cfg;
  // Calibrated so map tasks represent nontrivial modeled compute even on
  // the specialized native tier (microseconds of host time per shard);
  // otherwise modeled startup/dispatch/reduce costs dominate and the
  // model legitimately reports speedup < 1.
  Cfg.ComputeScale = 5.0e6;
  MiniDfs Dfs(Cfg.Nodes);
  std::vector<int64_t> Data = runtime::generateWorkload(*P, 60000, 5);
  Dfs.put("in", Data);

  JobReport Rep = runJob(*P, R.Plan, Dfs, "in", Cfg);
  runtime::CompiledProgram CP(*P);
  EXPECT_EQ(Rep.Output, CP.runSerial({{Data.data(), Data.size()}}));
  EXPECT_GT(Rep.Speedup, 1.0);
  EXPECT_LE(Rep.Speedup, Cfg.Nodes + 0.5);
  EXPECT_GT(Rep.ParallelJobSec, Cfg.JobStartupSec);
}

INSTANTIATE_TEST_SUITE_P(Table2, JobBenchmark,
                         ::testing::Values("sum", "average", "count_max",
                                           "second_max", "all_equal",
                                           "search"),
                         [](const auto &Info) { return Info.param; });

TEST(ClusterSim, ScheduleTasksSingleNodeSumsLoads) {
  // Nodes=1: nowhere to migrate, so the makespan is just the serial sum
  // of task times plus one dispatch charge per task.
  ClusterConfig Cfg;
  Cfg.Nodes = 1;
  Cfg.TaskDispatchSec = 1.5;
  std::vector<double> TaskSec = {1.0, 2.0, 3.0};
  std::vector<unsigned> Home = {0, 0, 0};
  EXPECT_DOUBLE_EQ(scheduleTasks(TaskSec, Home, Cfg),
                   (1.0 + 2.0 + 3.0) + 3 * Cfg.TaskDispatchSec);

  // No tasks: nothing scheduled, zero makespan.
  EXPECT_DOUBLE_EQ(scheduleTasks({}, {}, Cfg), 0.0);
}

TEST(ClusterSim, ScheduleTasksPrefersLocalPlacementWhenEvenlyLoaded) {
  // Two equal tasks homed on different nodes of a 2-node cluster: both
  // stay home (no remote-read penalty), so the makespan is one task plus
  // one dispatch.
  ClusterConfig Cfg;
  Cfg.Nodes = 2;
  Cfg.TaskDispatchSec = 0.5;
  std::vector<double> TaskSec = {4.0, 4.0};
  std::vector<unsigned> Home = {0, 1};
  EXPECT_DOUBLE_EQ(scheduleTasks(TaskSec, Home, Cfg), 4.5);
}

TEST(ClusterSim, DegradedMatchesHealthyWhenEveryNodeSurvives) {
  // With all nodes alive and no stragglers the degraded scheduler is the
  // healthy one: same placement policy, same tie-breaking, same makespan.
  ClusterConfig Cfg;
  Cfg.Nodes = 3;
  std::vector<double> TaskSec = {4.0, 2.5, 1.0, 3.0, 0.5};
  std::vector<unsigned> Home = {0, 1, 2, 0, 1};
  ScheduleStats Stats;
  EXPECT_DOUBLE_EQ(
      scheduleTasksDegraded(TaskSec, {}, Home, {true, true, true}, Cfg,
                            &Stats),
      scheduleTasks(TaskSec, Home, Cfg));
  EXPECT_EQ(Stats.FailedTasks, 0u);
  EXPECT_EQ(Stats.SpeculativeTasks, 0u);
}

TEST(ClusterSim, SingleNodeClusterWithDeadNodeErrorsNotHangs) {
  // Nodes=1 and the one node dead: there is no survivor to reschedule
  // onto, so the scheduler must refuse explicitly rather than hang or
  // silently drop the tasks.
  ClusterConfig Cfg;
  Cfg.Nodes = 1;
  EXPECT_THROW(scheduleTasksDegraded({1.0, 2.0}, {}, {0, 0}, {false}, Cfg),
               std::runtime_error);
  // ...but a dead node with nothing to run is a trivial no-op job.
  EXPECT_DOUBLE_EQ(scheduleTasksDegraded({}, {}, {}, {false}, Cfg), 0.0);
}

TEST(ClusterSim, AllTasksOnFailedNodeAreRescheduledOntoSurvivor) {
  // Every task homed on dead node 0 of a 2-node cluster: all are lost,
  // detected after the heartbeat timeout, and re-run serially on node 1
  // with the remote-read penalty.
  ClusterConfig Cfg;
  Cfg.Nodes = 2;
  Cfg.NodeFailureDetectSec = 10.0;
  Cfg.TaskDispatchSec = 1.5;
  Cfg.RemoteReadPenalty = 1.15;
  std::vector<double> TaskSec = {1.0, 2.0, 3.0};
  ScheduleStats Stats;
  double M = scheduleTasksDegraded(TaskSec, {}, {0, 0, 0}, {false, true},
                                   Cfg, &Stats);
  EXPECT_EQ(Stats.FailedTasks, 3u);
  // Recovery starts no earlier than failure detection, and the lone
  // survivor serializes the re-runs:
  //   10 + (3 + 2 + 1) * 1.15 + 3 * 1.5 = 21.4
  EXPECT_NEAR(M, 21.4, 1e-9);
  EXPECT_GE(M, Cfg.NodeFailureDetectSec);
}

TEST(ClusterSim, MoreNodesNeverSlower) {
  const lang::SerialProgram *P = lang::findBenchmark("sum");
  synth::SynthesisResult R = synth::synthesize(*P);
  ASSERT_TRUE(R.Success);
  std::vector<int64_t> Data = runtime::generateWorkload(*P, 60000, 5);

  double Prev = 1e100;
  for (unsigned Nodes : {2u, 5u, 10u}) {
    ClusterConfig Cfg;
    Cfg.Nodes = Nodes;
    Cfg.ComputeScale = 50000.0;
    MiniDfs Dfs(Nodes);
    Dfs.put("in", Data);
    JobReport Rep = runJob(*P, R.Plan, Dfs, "in", Cfg);
    EXPECT_LT(Rep.ParallelJobSec, Prev * 1.2); // allow timing noise
    Prev = Rep.ParallelJobSec;
  }
}

} // namespace
