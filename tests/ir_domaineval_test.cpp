//===- tests/ir_domaineval_test.cpp - Domain evaluator unit tests ---------==//
//
// Direct tests of the branch-free evaluation layer: scalar policies, the
// (value, keep-flag) bag representation, bag select, and agreement of
// the concrete and symbolic domains on bag programs.
//
//===----------------------------------------------------------------------===//

#include "ir/DomainEval.h"
#include "smt/Solver.h"

#include <gtest/gtest.h>

using namespace grassp::ir;

namespace {

using CP = ConcretePolicy;
using CV = DomainValue<CP>;

CV bagOf(CP &P, std::initializer_list<int64_t> Vals) {
  CV B = CV::emptyBag();
  for (int64_t V : Vals)
    B = bagInsertDistinctVal(P, B, P.constInt(V));
  return B;
}

TEST(DomainBag, InsertDistinctKeepsOneCopy) {
  CP P;
  CV B = bagOf(P, {4, 4, 5, 4, 6});
  EXPECT_EQ(bagSizeVal(P, B), 3);
  EXPECT_EQ(bagContains(P, B, P.constInt(5)), 1);
  EXPECT_EQ(bagContains(P, B, P.constInt(7)), 0);
}

TEST(DomainBag, UnionIsDuplicateFree) {
  CP P;
  CV A = bagOf(P, {1, 2, 3});
  CV B = bagOf(P, {3, 4});
  CV U = bagUnionVal(P, A, B);
  EXPECT_EQ(bagSizeVal(P, U), 4);
  // Union against itself is idempotent in size.
  EXPECT_EQ(bagSizeVal(P, bagUnionVal(P, U, U)), 4);
}

TEST(DomainBag, SelectGatesKeepFlags) {
  CP P;
  CV A = bagOf(P, {1, 2});
  CV B = bagOf(P, {7});
  CV T = selectValue(P, P.constBool(true), A, B);
  CV F = selectValue(P, P.constBool(false), A, B);
  EXPECT_EQ(bagSizeVal(P, T), 2);
  EXPECT_EQ(bagSizeVal(P, F), 1);
}

TEST(DomainEval, BagExpressionEvaluation) {
  // size(insert(insert(empty, x), y)) over the expression layer.
  CP P;
  DomainEnv<CP> Env;
  Env.emplace("b", CV::emptyBag());
  Env.emplace("x", CV::scalar(3));
  Env.emplace("y", CV::scalar(3));
  ExprRef E = bagSize(bagInsertDistinct(
      bagInsertDistinct(var("b", TypeKind::Bag), var("x", TypeKind::Int)),
      var("y", TypeKind::Int)));
  EXPECT_EQ(evalExpr(E, Env, P).Sc, 1);
}

TEST(DomainEval, SymbolicBagSizeIsExactViaSmt) {
  // Symbolically: |{x, y}| == ite(x == y, 1, 2) must be valid.
  SymbolicPolicy SP;
  DomainValue<SymbolicPolicy> B = DomainValue<SymbolicPolicy>::emptyBag();
  B = bagInsertDistinctVal(SP, B, var("x", TypeKind::Int));
  B = bagInsertDistinctVal(SP, B, var("y", TypeKind::Int));
  ExprRef Size = bagSizeVal(SP, B);
  ExprRef Expected =
      ite(eq(var("x", TypeKind::Int), var("y", TypeKind::Int)),
          constInt(1), constInt(2));
  grassp::smt::SmtSolver S;
  S.add(ne(Size, Expected));
  EXPECT_EQ(S.check(), grassp::smt::SatResult::Unsat);
}

TEST(DomainEval, PoliciesAgreeOnScalars) {
  // A mixed expression evaluated concretely vs. symbolically-then-folded.
  ExprRef E = smax(intMod(var("x", TypeKind::Int), constInt(5)),
                   ite(lt(var("x", TypeKind::Int), constInt(0)),
                       neg(var("x", TypeKind::Int)), constInt(2)));
  for (int64_t X : {-7, -1, 0, 3, 12}) {
    CP P;
    DomainEnv<CP> CEnv;
    CEnv.emplace("x", CV::scalar(X));
    int64_t Conc = evalExpr(E, CEnv, P).Sc;

    SymbolicPolicy SP;
    DomainEnv<SymbolicPolicy> SEnv;
    SEnv.emplace("x", DomainValue<SymbolicPolicy>::scalar(constInt(X)));
    ExprRef Sym = evalExpr(E, SEnv, SP).Sc;
    ASSERT_TRUE(Sym->isConstInt());
    EXPECT_EQ(Sym->intValue(), Conc) << "x=" << X;
  }
}

} // namespace
