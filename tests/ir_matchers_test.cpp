//===- tests/ir_matchers_test.cpp - Step-shape & transform algebra --------==//

#include "ir/Matchers.h"

#include <gtest/gtest.h>

using namespace grassp::ir;

namespace {

ExprRef iv(const char *N) { return var(N, TypeKind::Int); }
ExprRef in() { return iv("in"); }

TEST(StepShape, CountsValueAndCondVars) {
  // cnt' = ite(in == 2 && q == 1, cnt + 1, cnt)
  ExprRef E = ite(land(eq(in(), constInt(2)), eq(iv("q"), constInt(1))),
                  add(iv("cnt"), constInt(1)), iv("cnt"));
  StepShape S = analyzeStepShape(E);
  EXPECT_TRUE(S.ValueHasArith);
  EXPECT_TRUE(S.ValueVars.count("cnt"));
  EXPECT_TRUE(S.CondVars.count("in"));
  EXPECT_TRUE(S.CondVars.count("q"));
  EXPECT_FALSE(S.ValueVars.count("q"));
}

TEST(StepShape, FiniteControlShape) {
  // q' = ite(in == 1, 1, ite(in == 2, 0, q)): no arithmetic at values.
  ExprRef E = ite(eq(in(), constInt(1)), constInt(1),
                  ite(eq(in(), constInt(2)), constInt(0), iv("q")));
  StepShape S = analyzeStepShape(E);
  EXPECT_FALSE(S.ValueHasArith);
  EXPECT_EQ(S.ValueVars.size(), 1u);
  EXPECT_TRUE(S.ValueVars.count("q"));
}

TEST(StepShape, BooleanStructureIsSteeringOnly) {
  // seen' = seen || (in == 1): boolean structure yields a two-valued
  // result, so its variables only steer (CondVars) and the field remains
  // finite-control eligible (no arithmetic, no value vars).
  ExprRef E = lor(var("seen", TypeKind::Bool), eq(in(), constInt(1)));
  StepShape S = analyzeStepShape(E);
  EXPECT_FALSE(S.ValueHasArith);
  EXPECT_TRUE(S.ValueVars.empty());
  EXPECT_TRUE(S.CondVars.count("seen"));
  EXPECT_TRUE(S.CondVars.count("in"));
}

//===----------------------------------------------------------------------===
// AccTransform algebra.
//===----------------------------------------------------------------------===

using T = AccTransform;

TEST(AccTransform, Apply) {
  EXPECT_EQ(T::id().apply(7), 7);
  EXPECT_EQ(T::plus(3).apply(7), 10);
  EXPECT_EQ(T::maxc(9).apply(7), 9);
  EXPECT_EQ(T::minc(2).apply(7), 2);
  EXPECT_EQ(T::set(5).apply(7), 5);
}

struct ComposeCase {
  T First, Second;
};

class ComposeLaw : public ::testing::TestWithParam<ComposeCase> {};

TEST_P(ComposeLaw, CompositionMatchesSequentialApplication) {
  const ComposeCase &C = GetParam();
  T Composed = composeTransforms(C.First, C.Second);
  if (Composed.isUnknown())
    GTEST_SKIP() << "composition outside the family";
  for (int64_t A : {-10, -1, 0, 1, 3, 100})
    EXPECT_EQ(Composed.apply(A), C.Second.apply(C.First.apply(A)));
}

std::vector<ComposeCase> allPairs() {
  std::vector<T> Ts = {T::id(),     T::plus(2), T::plus(-3), T::maxc(4),
                       T::maxc(-1), T::minc(0), T::set(7),   T::set(-2)};
  std::vector<ComposeCase> Out;
  for (const T &A : Ts)
    for (const T &B : Ts)
      Out.push_back({A, B});
  return Out;
}

INSTANTIATE_TEST_SUITE_P(Pairs, ComposeLaw, ::testing::ValuesIn(allPairs()));

TEST(AccTransform, MixedFlavorsAreUnknown) {
  EXPECT_TRUE(composeTransforms(T::plus(1), T::maxc(2)).isUnknown());
  EXPECT_TRUE(composeTransforms(T::maxc(1), T::plus(2)).isUnknown());
}

TEST(ClassifyAccStep, BasicShapes) {
  ExprRef A = iv("a");
  EXPECT_EQ(classifyAccStep(A, "a"), T::id());
  EXPECT_EQ(classifyAccStep(constInt(3), "a"), T::set(3));
  EXPECT_EQ(classifyAccStep(add(A, constInt(2)), "a"), T::plus(2));
  EXPECT_EQ(classifyAccStep(sub(A, constInt(2)), "a"), T::plus(-2));
  EXPECT_EQ(classifyAccStep(smax(A, constInt(2)), "a"), T::maxc(2));
  EXPECT_EQ(classifyAccStep(smin(constInt(2), A), "a"), T::minc(2));
  // Nested: (a + 1) + 2 == +3.
  EXPECT_EQ(classifyAccStep(add(add(A, constInt(1)), constInt(2)), "a"),
            T::plus(3));
}

TEST(ClassifyAccStep, RejectsNonTransforms) {
  ExprRef A = iv("a");
  EXPECT_TRUE(classifyAccStep(mul(A, constInt(2)), "a").isUnknown());
  EXPECT_TRUE(classifyAccStep(add(A, A), "a").isUnknown());
  EXPECT_TRUE(classifyAccStep(iv("b"), "a").isUnknown());
  EXPECT_TRUE(classifyAccStep(sub(constInt(2), A), "a").isUnknown());
}

} // namespace
