//===- tests/runtime_kernels_test.cpp - Kernels vs reference semantics ----==//
//
// Cross-checks the compiled runtime kernels against (a) the serial
// reference interpreter and (b) the domain-generic plan executor, for
// every benchmark, over randomized workloads and segmentations.
//
//===----------------------------------------------------------------------===//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "runtime/Runner.h"
#include "support/Random.h"
#include "synth/Grassp.h"
#include "synth/PlanEval.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::lang;
using namespace grassp::runtime;
using namespace grassp::synth;

namespace {

class KernelBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelBenchmark, CompiledMatchesReference) {
  const SerialProgram *P = findBenchmark(GetParam());
  ASSERT_NE(P, nullptr);
  SynthesisResult R = synthesize(*P);
  ASSERT_TRUE(R.Success) << R.FailureReason;

  CompiledProgram CP(*P);
  CompiledPlan Plan(*P, R.Plan);

  Rng Rand(0x5151);
  for (int Trial = 0; Trial != 25; ++Trial) {
    size_t N = 40 + Rand.next() % 400;
    std::vector<int64_t> Data = generateWorkload(*P, N, Rand.next());
    unsigned M = 2 + Rand.next() % 6;
    std::vector<SegmentView> Segs = partition(Data, M);

    // Reference serial result via the interpreter.
    Segments RefSegs;
    for (const SegmentView &S : Segs)
      RefSegs.emplace_back(S.Data, S.Data + S.Size);
    int64_t Expected = runSerialSegmented(*P, RefSegs);

    // Compiled serial kernel.
    EXPECT_EQ(CP.runSerial(Segs), Expected);

    // Compiled parallel kernel (sequential workers).
    ParallelRunResult PR = runParallel(Plan, Segs, nullptr);
    EXPECT_EQ(PR.Output, Expected) << P->Name << " trial " << Trial;

    // Compiled parallel kernel on a real thread pool.
    ThreadPool Pool(3);
    ParallelRunResult PT = runParallel(Plan, Segs, &Pool);
    EXPECT_EQ(PT.Output, Expected);

    // Reference plan executor agrees too.
    EXPECT_EQ(runPlanConcrete(*P, R.Plan, RefSegs), Expected);
  }
}

std::vector<std::string> allNames() {
  std::vector<std::string> Names;
  for (const SerialProgram &P : allBenchmarks())
    Names.push_back(P.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(Table1, KernelBenchmark,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &Info) { return Info.param; });

} // namespace
