//===- tests/ir_expr_test.cpp - Expression IR unit tests ------------------==//

#include "ir/Expr.h"

#include <gtest/gtest.h>

using namespace grassp::ir;

namespace {

ExprRef iv(const char *N) { return var(N, TypeKind::Int); }
ExprRef bv(const char *N) { return var(N, TypeKind::Bool); }

TEST(ExprBuild, ConstantsAndVars) {
  EXPECT_TRUE(constInt(7)->isConstInt());
  EXPECT_EQ(constInt(7)->intValue(), 7);
  EXPECT_TRUE(constBool(true)->boolValue());
  EXPECT_EQ(iv("x")->varName(), "x");
  EXPECT_EQ(iv("x")->getType(), TypeKind::Int);
  EXPECT_EQ(bv("b")->getType(), TypeKind::Bool);
}

TEST(ExprFold, Arithmetic) {
  EXPECT_EQ(add(constInt(2), constInt(3))->intValue(), 5);
  EXPECT_EQ(sub(constInt(2), constInt(3))->intValue(), -1);
  EXPECT_EQ(mul(constInt(4), constInt(3))->intValue(), 12);
  EXPECT_EQ(neg(constInt(4))->intValue(), -4);
  EXPECT_EQ(smin(constInt(4), constInt(3))->intValue(), 3);
  EXPECT_EQ(smax(constInt(4), constInt(3))->intValue(), 4);
}

TEST(ExprFold, EuclideanDivMod) {
  // SMT-LIB semantics: -7 div 2 = -4, -7 mod 2 = 1.
  EXPECT_EQ(intDiv(constInt(-7), constInt(2))->intValue(), -4);
  EXPECT_EQ(intMod(constInt(-7), constInt(2))->intValue(), 1);
  EXPECT_EQ(intDiv(constInt(7), constInt(2))->intValue(), 3);
  EXPECT_EQ(intMod(constInt(7), constInt(2))->intValue(), 1);
}

TEST(ExprFold, Identities) {
  ExprRef X = iv("x");
  EXPECT_TRUE(structurallyEqual(add(X, constInt(0)), X));
  EXPECT_TRUE(structurallyEqual(mul(X, constInt(1)), X));
  EXPECT_EQ(mul(X, constInt(0))->intValue(), 0);
  EXPECT_EQ(sub(X, X)->intValue(), 0);
  EXPECT_TRUE(structurallyEqual(neg(neg(X)), X));
  EXPECT_TRUE(structurallyEqual(smin(X, X), X));
}

TEST(ExprFold, Comparisons) {
  EXPECT_TRUE(lt(constInt(1), constInt(2))->boolValue());
  EXPECT_FALSE(gt(constInt(1), constInt(2))->boolValue());
  ExprRef X = iv("x");
  EXPECT_TRUE(le(X, X)->boolValue());
  EXPECT_FALSE(ne(X, X)->boolValue());
}

TEST(ExprFold, Booleans) {
  ExprRef B = bv("b");
  EXPECT_TRUE(structurallyEqual(land(B, constBool(true)), B));
  EXPECT_FALSE(land(B, constBool(false))->boolValue());
  EXPECT_TRUE(lor(B, constBool(true))->boolValue());
  EXPECT_TRUE(structurallyEqual(lor(B, constBool(false)), B));
  EXPECT_TRUE(structurallyEqual(lnot(lnot(B)), B));
}

TEST(ExprFold, Ite) {
  ExprRef X = iv("x"), Y = iv("y"), C = bv("c");
  EXPECT_TRUE(structurallyEqual(ite(constBool(true), X, Y), X));
  EXPECT_TRUE(structurallyEqual(ite(constBool(false), X, Y), Y));
  EXPECT_TRUE(structurallyEqual(ite(C, X, X), X));
  // ite(c, true, false) == c; ite(!c, x, y) == ite(c, y, x).
  EXPECT_TRUE(
      structurallyEqual(ite(C, constBool(true), constBool(false)), C));
  EXPECT_TRUE(structurallyEqual(ite(lnot(C), X, Y), ite(C, Y, X)));
}

TEST(ExprQuery, CollectVarsAndConstants) {
  ExprRef E = ite(eq(iv("x"), constInt(5)), add(iv("y"), constInt(2)),
                  iv("y"));
  std::map<std::string, TypeKind> Vars;
  collectVars(E, Vars);
  EXPECT_EQ(Vars.size(), 2u);
  EXPECT_TRUE(Vars.count("x"));
  EXPECT_TRUE(Vars.count("y"));
  std::set<int64_t> Cs;
  collectIntConstants(E, Cs);
  EXPECT_TRUE(Cs.count(5));
  EXPECT_TRUE(Cs.count(2));
}

TEST(ExprTransform, Substitute) {
  ExprRef E = add(iv("x"), mul(iv("y"), constInt(2)));
  std::map<std::string, ExprRef> S{{"x", constInt(3)}, {"y", constInt(4)}};
  EXPECT_EQ(substitute(E, S)->intValue(), 11);
  // Partial substitution leaves the other variable intact.
  std::map<std::string, ExprRef> S2{{"x", constInt(3)}};
  std::map<std::string, TypeKind> Vars;
  collectVars(substitute(E, S2), Vars);
  EXPECT_EQ(Vars.size(), 1u);
  EXPECT_TRUE(Vars.count("y"));
}

TEST(ExprPrint, ToString) {
  ExprRef E = ite(eq(iv("in"), constInt(2)), add(iv("res"), constInt(1)),
                  iv("res"));
  EXPECT_EQ(toString(E), "ite((in == 2), (res + 1), res)");
}

TEST(ExprQuery, SizeAndHash) {
  ExprRef A = add(iv("x"), constInt(1));
  ExprRef B = add(iv("x"), constInt(1));
  EXPECT_EQ(exprSize(A), 3u);
  EXPECT_EQ(A->hash(), B->hash());
  EXPECT_TRUE(structurallyEqual(A, B));
  EXPECT_FALSE(structurallyEqual(A, add(iv("x"), constInt(2))));
}

TEST(ExprBuild, BagOps) {
  ExprRef Bag = var("s", TypeKind::Bag);
  ExprRef Ins = bagInsertDistinct(Bag, iv("x"));
  EXPECT_EQ(Ins->getType(), TypeKind::Bag);
  EXPECT_EQ(bagSize(Ins)->getType(), TypeKind::Int);
  EXPECT_EQ(bagUnion(Bag, Ins)->getType(), TypeKind::Bag);
}

// Parameterized constant-folding sweep over every binary opcode.
struct FoldCase {
  Op Opcode;
  int64_t A, B, Expected;
};

class BinFold : public ::testing::TestWithParam<FoldCase> {};

TEST_P(BinFold, FoldsToConstant) {
  const FoldCase &C = GetParam();
  ExprRef R = binary(C.Opcode, constInt(C.A), constInt(C.B));
  ASSERT_TRUE(R->isConst());
  int64_t Got = R->isConstInt() ? R->intValue() : (R->boolValue() ? 1 : 0);
  EXPECT_EQ(Got, C.Expected) << opName(C.Opcode);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BinFold,
    ::testing::Values(
        FoldCase{Op::Add, 9, -4, 5}, FoldCase{Op::Sub, 9, -4, 13},
        FoldCase{Op::Mul, 9, -4, -36}, FoldCase{Op::Div, 9, 4, 2},
        FoldCase{Op::Div, -9, 4, -3}, FoldCase{Op::Mod, -9, 4, 3},
        FoldCase{Op::Min, 9, -4, -4}, FoldCase{Op::Max, 9, -4, 9},
        FoldCase{Op::Eq, 3, 3, 1}, FoldCase{Op::Ne, 3, 3, 0},
        FoldCase{Op::Lt, 2, 3, 1}, FoldCase{Op::Le, 3, 3, 1},
        FoldCase{Op::Gt, 2, 3, 0}, FoldCase{Op::Ge, 2, 3, 0}));

} // namespace
