//===- tests/serve_cache_test.cpp - SolutionCache persistence edges ------===//
//
// Direct SolutionCache tests for the failure edges the end-to-end smoke
// cannot reach deterministically: a snapshot whose post-truncate journal
// reopen fails (fault site serve.journal.reopen) must leave the cache
// able to heal on the next put(), and a cold reload must still see every
// committed entry.
//
//===----------------------------------------------------------------------===//

#include "serve/Cache.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace grassp;

namespace {

serve::CacheEntry entry(uint64_t Key, const std::string &Prog) {
  serve::CacheEntry E;
  E.Key = Key;
  E.ProgramText = Prog;
  E.PlanText = "(plan (scenario no-prefix) (prefix 0) (merge 0 _))";
  E.Group = "B1";
  E.Cert = "certified";
  return E;
}

std::string freshDir() {
  char Tmpl[] = "/tmp/grassp-cache-XXXXXX";
  const char *D = ::mkdtemp(Tmpl);
  EXPECT_NE(D, nullptr);
  return std::string(D ? D : "/tmp") + "/cache";
}

} // namespace

TEST(ServeCache, PutHealsJournalAfterFailedReopen) {
  std::string Dir = freshDir();

  FaultInjector Inj(7);
  FaultSpec Reopen;
  Reopen.Probability = 1.0;
  Reopen.MaxFires = 1;
  Inj.arm(serve::FaultSiteJournalReopen, Reopen);

  serve::SolutionCache C;
  std::string Err;
  ASSERT_TRUE(C.open(Dir, &Err)) << Err;
  ASSERT_TRUE(C.put(entry(1, "p1")));

  // The snapshot lands on disk and truncates the journal, but the
  // reopen is made to fail: the cache is left with no journal writer.
  EXPECT_FALSE(C.snapshot(&Inj, &Err));

  // The next put must reopen the journal and commit durably — not fail
  // every later solve until restart.
  ASSERT_TRUE(C.put(entry(2, "p2")));
  ASSERT_TRUE(C.put(entry(3, "p3")));

  // A cold reload proves both the snapshotted and the post-heal entries
  // survived.
  serve::SolutionCache R;
  ASSERT_TRUE(R.open(Dir, &Err)) << Err;
  EXPECT_EQ(R.size(), 3u);
  EXPECT_TRUE(R.contains(1));
  ASSERT_NE(R.get(2), nullptr);
  EXPECT_EQ(R.get(2)->ProgramText, "p2");
  ASSERT_NE(R.get(3), nullptr);
  EXPECT_EQ(R.get(3)->ProgramText, "p3");
}

TEST(ServeCache, SnapshotAfterHealCompactsNormally) {
  std::string Dir = freshDir();

  FaultInjector Inj(11);
  FaultSpec Reopen;
  Reopen.Probability = 1.0;
  Reopen.MaxFires = 1;
  Inj.arm(serve::FaultSiteJournalReopen, Reopen);

  serve::SolutionCache C;
  std::string Err;
  ASSERT_TRUE(C.open(Dir, &Err)) << Err;
  ASSERT_TRUE(C.put(entry(1, "p1")));
  EXPECT_FALSE(C.snapshot(&Inj, &Err)); // injected reopen failure.
  ASSERT_TRUE(C.put(entry(2, "p2")));   // heals the writer.

  // The fault was one-shot: the next snapshot compacts cleanly and the
  // gauge resets.
  EXPECT_TRUE(C.snapshot(&Inj, &Err)) << Err;
  EXPECT_EQ(C.journaledSinceSnapshot(), 0u);
  ASSERT_TRUE(C.put(entry(3, "p3")));

  serve::SolutionCache R;
  ASSERT_TRUE(R.open(Dir, &Err)) << Err;
  EXPECT_EQ(R.size(), 3u);
}
