//===- tests/ir_bytecode_test.cpp - Bytecode VM vs tree evaluation --------==//
//
// Property tests: for every (bag-free) benchmark step function and output
// function, the compiled bytecode must agree with the domain evaluator on
// random states and inputs.
//
//===----------------------------------------------------------------------===//

#include "ir/Bytecode.h"
#include "ir/DomainEval.h"
#include "lang/Benchmarks.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::ir;

namespace {

TEST(Bytecode, SimpleExpression) {
  ExprRef E = ite(gt(var("x", TypeKind::Int), constInt(0)),
                  add(var("y", TypeKind::Int), constInt(1)),
                  neg(var("y", TypeKind::Int)));
  BytecodeFunction F = BytecodeFunction::compile({E}, {"x", "y"});
  std::vector<int64_t> Regs(F.numRegs());
  int64_t Out = 0;
  Regs[0] = 5;
  Regs[1] = 10;
  F.run(Regs.data(), &Out);
  EXPECT_EQ(Out, 11);
  Regs[0] = -5;
  Regs[1] = 10;
  F.run(Regs.data(), &Out);
  EXPECT_EQ(Out, -10);
}

TEST(Bytecode, SharedSubexpressionsCompileOnce) {
  ExprRef X = var("x", TypeKind::Int);
  ExprRef Shared = mul(X, X);
  ExprRef E = add(Shared, Shared);
  BytecodeFunction F = BytecodeFunction::compile({E}, {"x"});
  // mul once + add once = 2 instructions.
  EXPECT_EQ(F.numInstrs(), 2u);
}

TEST(Bytecode, DivModByZeroIsTotal) {
  ExprRef E = intDiv(var("x", TypeKind::Int), var("y", TypeKind::Int));
  ExprRef M = intMod(var("x", TypeKind::Int), var("y", TypeKind::Int));
  BytecodeFunction F = BytecodeFunction::compile({E, M}, {"x", "y"});
  std::vector<int64_t> Regs(F.numRegs());
  int64_t Out[2] = {7, 7};
  Regs[0] = 10;
  Regs[1] = 0;
  F.run(Regs.data(), Out);
  EXPECT_EQ(Out[0], 0);
  EXPECT_EQ(Out[1], 0);
}

class StepBytecode : public ::testing::TestWithParam<std::string> {};

TEST_P(StepBytecode, AgreesWithEvaluator) {
  const lang::SerialProgram *P = lang::findBenchmark(GetParam());
  ASSERT_NE(P, nullptr);
  if (P->State.hasBag())
    GTEST_SKIP() << "bag programs are not bytecode-compiled";

  std::vector<std::string> Inputs;
  for (const lang::Field &F : P->State.fields())
    Inputs.push_back(F.Name);
  Inputs.push_back(lang::inputVarName());
  std::vector<ExprRef> Roots = P->Step;
  Roots.push_back(P->Output);
  BytecodeFunction F = BytecodeFunction::compile(Roots, Inputs);

  Rng R(42);
  std::vector<int64_t> Regs(F.numRegs());
  std::vector<int64_t> Out(Roots.size());
  for (int Trial = 0; Trial != 200; ++Trial) {
    ConcretePolicy CP;
    DomainEnv<ConcretePolicy> Env;
    for (size_t I = 0; I != P->State.size(); ++I) {
      int64_t V = P->State.field(I).Ty == TypeKind::Bool
                      ? static_cast<int64_t>(R.next() % 2)
                      : R.range(-20, 20);
      Regs[I] = V;
      Env.emplace(P->State.field(I).Name,
                  DomainValue<ConcretePolicy>::scalar(V));
    }
    int64_t In = R.range(-10, 10);
    Regs[P->State.size()] = In;
    Env.emplace(lang::inputVarName(),
                DomainValue<ConcretePolicy>::scalar(In));
    F.run(Regs.data(), Out.data());
    for (size_t I = 0; I != Roots.size(); ++I)
      EXPECT_EQ(Out[I], evalExpr(Roots[I], Env, CP).Sc)
          << P->Name << " root " << I << " trial " << Trial;
  }
}

std::vector<std::string> allNames() {
  std::vector<std::string> Names;
  for (const lang::SerialProgram &P : lang::allBenchmarks())
    Names.push_back(P.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(Table1, StepBytecode,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &Info) { return Info.param; });

} // namespace
