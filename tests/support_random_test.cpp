//===- tests/support_random_test.cpp - PRNG and workload draws ------------==//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace grassp;

namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  bool Differs = false;
  for (int I = 0; I != 64; ++I) {
    uint64_t X = A.next();
    EXPECT_EQ(X, B.next());
    Differs |= (X != C.next());
  }
  EXPECT_TRUE(Differs);
}

TEST(Rng, BoundedStaysInRange) {
  Rng R(7);
  for (uint64_t N : {1ull, 2ull, 3ull, 5ull, 7ull, 64ull, 1000ull}) {
    for (int I = 0; I != 2000; ++I)
      EXPECT_LT(R.bounded(N), N);
  }
}

TEST(Rng, BoundedIsCloseToUniform) {
  // Deterministic seed, so this is a fixed arithmetic fact, not a flaky
  // statistical assertion: each of 3 buckets gets 60000/3 +- 2% draws.
  Rng R(0x5eed);
  std::map<uint64_t, unsigned> Counts;
  const unsigned Draws = 60000;
  for (unsigned I = 0; I != Draws; ++I)
    ++Counts[R.bounded(3)];
  for (uint64_t V = 0; V != 3; ++V) {
    EXPECT_GT(Counts[V], Draws / 3 - Draws / 50);
    EXPECT_LT(Counts[V], Draws / 3 + Draws / 50);
  }
}

TEST(RandomFromAlphabet, DrawsOnlyAlphabetValuesDeterministically) {
  std::vector<int64_t> Alphabet = {-3, 0, 7, 11, 12};
  Rng A(9), B(9);
  std::vector<int64_t> X = randomFromAlphabet(A, Alphabet, 500);
  std::vector<int64_t> Y = randomFromAlphabet(B, Alphabet, 500);
  EXPECT_EQ(X, Y);
  for (int64_t V : X)
    EXPECT_NE(std::find(Alphabet.begin(), Alphabet.end(), V),
              Alphabet.end());
}

TEST(RandomFromAlphabet, CoversEveryLetter) {
  std::vector<int64_t> Alphabet = {1, 2, 3};
  Rng R(123);
  std::vector<int64_t> X = randomFromAlphabet(R, Alphabet, 300);
  for (int64_t V : Alphabet)
    EXPECT_NE(std::find(X.begin(), X.end(), V), X.end());
}

} // namespace
