//===- tests/ir_bytecode_opt_test.cpp - Peephole optimizer certification --===//
//
// The peephole pass (constant folding, copy propagation, DCE, register
// compaction) and the loop-resident VM are never trusted: this file
// certifies both differentially. Randomly generated well-formed bytecode
// is run optimized and unoptimized on random register states and must
// agree bit-for-bit; foldLoop must agree with an element-at-a-time
// reference fold including the simultaneous-writeback hazard.
//
//===----------------------------------------------------------------------===//

#include "ir/Bytecode.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace grassp;
using ir::BcInstr;
using ir::BcOp;
using ir::BytecodeFunction;

namespace {

/// Runs \p F on a copy of \p Inputs (first numInputs() slots) and
/// returns the outputs.
std::vector<int64_t> evalOn(const BytecodeFunction &F,
                            const std::vector<int64_t> &Inputs) {
  std::vector<int64_t> Regs(F.numRegs(), 0);
  for (unsigned I = 0; I != F.numInputs(); ++I)
    Regs[I] = Inputs[I];
  std::vector<int64_t> Out(F.numOutputs(), 0);
  F.run(Regs.data(), Out.data());
  return Out;
}

/// Generates a random well-formed function: every operand reads an
/// input or an already-defined temporary (reads of undefined scratch
/// would make optimized/unoptimized comparison meaningless), while
/// destinations may freely redefine earlier registers — the non-SSA case
/// the optimizer's fact-killing must handle.
BytecodeFunction randomFunction(Rng &R, unsigned NumInputs,
                                unsigned NumInstrs, unsigned NumOutputs) {
  std::vector<BcInstr> Instrs;
  unsigned Defined = NumInputs;
  const unsigned MaxRegs = NumInputs + NumInstrs + 1;
  for (unsigned I = 0; I != NumInstrs; ++I) {
    BcInstr In;
    In.Opcode = static_cast<BcOp>(
        R.bounded(static_cast<uint64_t>(BcOp::Select) + 1));
    auto anyDefined = [&] {
      return static_cast<uint16_t>(R.bounded(Defined));
    };
    unsigned Ops = ir::bcNumOperands(In.Opcode);
    if (Ops >= 1)
      In.A = anyDefined();
    if (Ops >= 2)
      In.B = anyDefined();
    if (Ops >= 3)
      In.C = anyDefined();
    if (In.Opcode == BcOp::Const)
      In.Imm = static_cast<int64_t>(R.bounded(21)) - 10;
    // Half the writes redefine an existing register, half open a new
    // temporary.
    if (Defined < MaxRegs && R.chance(1, 2)) {
      In.Dst = static_cast<uint16_t>(Defined++);
    } else {
      In.Dst = static_cast<uint16_t>(R.bounded(Defined));
    }
    Instrs.push_back(In);
  }
  std::vector<uint16_t> Outputs;
  for (unsigned I = 0; I != NumOutputs; ++I)
    Outputs.push_back(static_cast<uint16_t>(R.bounded(Defined)));
  return BytecodeFunction::fromInstrs(std::move(Instrs), NumInputs, Defined,
                                      std::move(Outputs));
}

TEST(BytecodeOpt, OptimizedAgreesOnRandomProgramsAndStates) {
  Rng R(0x5eed);
  for (unsigned Trial = 0; Trial != 400; ++Trial) {
    unsigned NumInputs = 1 + static_cast<unsigned>(R.bounded(4));
    unsigned NumInstrs = static_cast<unsigned>(R.bounded(24));
    unsigned NumOutputs = 1 + static_cast<unsigned>(R.bounded(3));
    BytecodeFunction F = randomFunction(R, NumInputs, NumInstrs, NumOutputs);
    BytecodeFunction Opt = F.optimized();
    ASSERT_EQ(Opt.numInputs(), F.numInputs());
    ASSERT_EQ(Opt.numOutputs(), F.numOutputs());
    EXPECT_LE(Opt.numInstrs(), F.numInstrs());
    EXPECT_LE(Opt.numRegs(), F.numRegs());
    for (unsigned Run = 0; Run != 8; ++Run) {
      std::vector<int64_t> Inputs;
      for (unsigned I = 0; I != NumInputs; ++I)
        Inputs.push_back(R.range(-1000000, 1000000));
      EXPECT_EQ(evalOn(Opt, Inputs), evalOn(F, Inputs))
          << "trial " << Trial << " run " << Run;
    }
  }
}

TEST(BytecodeOpt, OptimizeIsIdempotent) {
  Rng R(42);
  for (unsigned Trial = 0; Trial != 50; ++Trial) {
    BytecodeFunction F = randomFunction(R, 2, 16, 2);
    BytecodeFunction O1 = F.optimized();
    BytecodeFunction O2 = O1.optimized();
    EXPECT_EQ(O2.numInstrs(), O1.numInstrs());
    for (unsigned Run = 0; Run != 4; ++Run) {
      std::vector<int64_t> In = {R.range(-50, 50), R.range(-50, 50)};
      EXPECT_EQ(evalOn(O2, In), evalOn(O1, In));
    }
  }
}

TEST(BytecodeOpt, FoldsConstantExpressions) {
  // out = (3 + 4) * 2 over one (unused) input: must fold to one Const.
  std::vector<BcInstr> Is = {
      {BcOp::Const, 1, 0, 0, 0, 3},
      {BcOp::Const, 2, 0, 0, 0, 4},
      {BcOp::Add, 3, 1, 2, 0, 0},
      {BcOp::Const, 4, 0, 0, 0, 2},
      {BcOp::Mul, 5, 3, 4, 0, 0},
  };
  BytecodeFunction F = BytecodeFunction::fromInstrs(Is, 1, 6, {5});
  BytecodeFunction O = F.optimized();
  ASSERT_EQ(O.numInstrs(), 1u);
  EXPECT_EQ(O.instrs()[0].Opcode, BcOp::Const);
  EXPECT_EQ(O.instrs()[0].Imm, 14);
}

TEST(BytecodeOpt, PropagatesCopiesAndDropsDeadCode) {
  // t1 = in0; t2 = t1; out = t2 + in1; plus an unused add. The copies
  // and the dead add must vanish: a single Add over the input slots.
  std::vector<BcInstr> Is = {
      {BcOp::Copy, 2, 0, 0, 0, 0},
      {BcOp::Copy, 3, 2, 0, 0, 0},
      {BcOp::Add, 4, 3, 1, 0, 0},
      {BcOp::Add, 5, 3, 3, 0, 0}, // dead.
  };
  BytecodeFunction F = BytecodeFunction::fromInstrs(Is, 2, 6, {4});
  BytecodeFunction O = F.optimized();
  ASSERT_EQ(O.numInstrs(), 1u);
  EXPECT_EQ(O.instrs()[0].Opcode, BcOp::Add);
  EXPECT_EQ(O.instrs()[0].A, 0);
  EXPECT_EQ(O.instrs()[0].B, 1);
  EXPECT_EQ(O.numRegs(), 3u); // two inputs + one compacted temp.
}

TEST(BytecodeOpt, SelectWithKnownConditionBecomesCopy) {
  // cond = 1; out = cond ? in0 : in1 -> out is in0 directly.
  std::vector<BcInstr> Is = {
      {BcOp::Const, 2, 0, 0, 0, 1},
      {BcOp::Select, 3, 2, 0, 1, 0},
  };
  BytecodeFunction F = BytecodeFunction::fromInstrs(Is, 2, 4, {3});
  BytecodeFunction O = F.optimized();
  EXPECT_EQ(O.numInstrs(), 0u); // output register resolved to input 0.
  EXPECT_EQ(evalOn(O, {7, 9})[0], 7);
}

TEST(BytecodeOpt, BooleanNormalizationIsNotBrokenByIdentityRules) {
  // or(x, 0) normalizes x to 0/1 and must NOT become copy(x).
  std::vector<BcInstr> Is = {
      {BcOp::Const, 1, 0, 0, 0, 0},
      {BcOp::Or, 2, 0, 1, 0, 0},
  };
  BytecodeFunction F = BytecodeFunction::fromInstrs(Is, 1, 3, {2});
  BytecodeFunction O = F.optimized();
  EXPECT_EQ(evalOn(O, {5})[0], 1);
  EXPECT_EQ(evalOn(O, {0})[0], 0);
  EXPECT_EQ(evalOn(O, {-3})[0], 1);
}

TEST(BytecodeOpt, RedefinitionKillsStaleFacts) {
  // t = in0; in0-slot redefined; out = t must still see the OLD value.
  // (Non-SSA hazard: the copy fact rooted at reg 0 dies on redefine.)
  std::vector<BcInstr> Is = {
      {BcOp::Copy, 1, 0, 0, 0, 0},
      {BcOp::Const, 0, 0, 0, 0, 999},
      {BcOp::Add, 2, 1, 0, 0, 0}, // old-in0 + 999.
  };
  BytecodeFunction F = BytecodeFunction::fromInstrs(Is, 1, 3, {2});
  BytecodeFunction O = F.optimized();
  EXPECT_EQ(evalOn(O, {5})[0], evalOn(F, {5})[0]);
  EXPECT_EQ(evalOn(O, {5})[0], 1004);
}

//===----------------------------------------------------------------------===//
// foldLoop (the loop-resident VM)
//===----------------------------------------------------------------------===//

/// Element-at-a-time reference fold through run().
std::vector<int64_t> refFold(const BytecodeFunction &F,
                             std::vector<int64_t> State,
                             const std::vector<int64_t> &Data) {
  std::vector<int64_t> Regs(F.numRegs(), 0);
  for (int64_t El : Data) {
    for (size_t K = 0; K != State.size(); ++K)
      Regs[K] = State[K];
    Regs[State.size()] = El;
    F.run(Regs.data(), State.data());
  }
  return State;
}

std::vector<int64_t> loopFold(const BytecodeFunction &F,
                              std::vector<int64_t> State,
                              const std::vector<int64_t> &Data) {
  std::vector<int64_t> Scratch(F.scratchSize(), 0);
  F.foldLoop(Data.data(), Data.size(), State.data(), Scratch.data());
  return State;
}

TEST(FoldLoop, SimultaneousWritebackReadsPreStepState) {
  // f(a, b, x) = (b, a + x): new a must read the OLD b and new b the OLD
  // a — the aliasing hazard the staging area exists for.
  std::vector<BcInstr> Is = {{BcOp::Add, 3, 0, 2, 0, 0}};
  BytecodeFunction F = BytecodeFunction::fromInstrs(Is, 3, 4, {1, 3});
  std::vector<int64_t> Data = {10, 100, 1000};
  std::vector<int64_t> Want = refFold(F, {1, 2}, Data);
  EXPECT_EQ(loopFold(F, {1, 2}, Data), Want);
}

TEST(FoldLoop, EmptyProgramAndEmptyDataAreNoOps) {
  // Identity step: outputs are the state input slots themselves.
  BytecodeFunction F = BytecodeFunction::fromInstrs({}, 2, 2, {0});
  EXPECT_EQ(loopFold(F, {7}, {1, 2, 3}), (std::vector<int64_t>{7}));
  std::vector<BcInstr> Is = {{BcOp::Add, 2, 0, 1, 0, 0}};
  BytecodeFunction G = BytecodeFunction::fromInstrs(Is, 2, 3, {2});
  EXPECT_EQ(loopFold(G, {5}, {}), (std::vector<int64_t>{5}));
}

TEST(FoldLoop, AgreesWithPerElementOnRandomStepFunctions) {
  Rng R(0xf01d);
  for (unsigned Trial = 0; Trial != 200; ++Trial) {
    unsigned NumFields = 1 + static_cast<unsigned>(R.bounded(3));
    BytecodeFunction F =
        randomFunction(R, NumFields + 1,
                       1 + static_cast<unsigned>(R.bounded(16)), NumFields);
    std::vector<int64_t> State;
    for (unsigned I = 0; I != NumFields; ++I)
      State.push_back(R.range(-100, 100));
    std::vector<int64_t> Data;
    for (unsigned I = 0, N = static_cast<unsigned>(R.bounded(50)); I != N;
         ++I)
      Data.push_back(R.range(-1000, 1000));
    EXPECT_EQ(loopFold(F, State, Data), refFold(F, State, Data))
        << "trial " << Trial;
    // The optimized function must fold identically too.
    BytecodeFunction O = F.optimized();
    EXPECT_EQ(loopFold(O, State, Data), refFold(F, State, Data))
        << "optimized, trial " << Trial;
  }
}

} // namespace
