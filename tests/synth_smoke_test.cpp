//===- tests/synth_smoke_test.cpp - End-to-end synthesis smoke tests ------==//

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "support/Random.h"
#include "synth/Grassp.h"
#include "synth/PlanEval.h"

#include <gtest/gtest.h>

using namespace grassp;
using namespace grassp::lang;
using namespace grassp::synth;

namespace {

SynthesisResult synthFor(const char *Name) {
  const SerialProgram *P = findBenchmark(Name);
  EXPECT_NE(P, nullptr) << Name;
  SynthOptions Opts;
  return synthesize(*P, Opts);
}

void checkPlanOnRandomData(const char *Name, const SynthesisResult &R) {
  const SerialProgram *P = findBenchmark(Name);
  ASSERT_TRUE(R.Success) << Name;
  Rng Rand(7);
  std::vector<int64_t> Reps = P->representativeInputs();
  for (int Trial = 0; Trial != 50; ++Trial) {
    unsigned M = 1 + Rand.next() % 5;
    Segments Segs(M);
    for (auto &S : Segs)
      S = randomFromAlphabet(Rand, Reps, 1 + Rand.next() % 8);
    EXPECT_EQ(runPlanConcrete(*P, R.Plan, Segs),
              runSerialSegmented(*P, Segs))
        << Name << " trial " << Trial;
  }
}

TEST(SynthSmoke, Count) {
  SynthesisResult R = synthFor("count");
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Group, "B1");
  checkPlanOnRandomData("count", R);
}

TEST(SynthSmoke, SecondMax) {
  SynthesisResult R = synthFor("second_max");
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Group, "B2");
  checkPlanOnRandomData("second_max", R);
}

TEST(SynthSmoke, IsSorted) {
  SynthesisResult R = synthFor("is_sorted");
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Group, "B3");
  checkPlanOnRandomData("is_sorted", R);
}

TEST(SynthSmoke, Count102) {
  SynthesisResult R = synthFor("count_102");
  ASSERT_TRUE(R.Success) << R.FailureReason;
  EXPECT_EQ(R.Group, "B4");
  checkPlanOnRandomData("count_102", R);
}

TEST(SynthSmoke, CountDistinctRefold) {
  SynthesisResult R = synthFor("count_distinct");
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Group, "B2");
  checkPlanOnRandomData("count_distinct", R);
}

} // namespace
