#!/usr/bin/env sh
# Out-of-core smoke: proves the mmap and chunked segment sources really
# run in bounded memory, not just that they exist. A generated binary
# workload is folded through `grassp run --input` under an address-space
# cap (ulimit -v) whose headroom over the process baseline is smaller
# than the file — any code path that materializes the whole input
# (loadWorkloadFile, a whole-file mmap) dies with ENOMEM, while the
# per-chunk windows and bounded pread buffers must pass and agree with
# each other bit-for-bit.
#
# The baseline is probed empirically (the binary maps Z3, so its VA
# floor is host-dependent): the smallest cap, in PROBE_STEP increments,
# under which an in-memory control run of the same shape succeeds.
#
# Usage: scripts/stream_smoke.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
GRASSP="$BUILD/tools/grassp"
[ -x "$GRASSP" ] || {
    echo "error: $GRASSP not built (cmake --build $BUILD --target grassp)" >&2
    exit 1
}

WORK="${TMPDIR:-/tmp}/grassp-stream-smoke.$$"
mkdir -p "$WORK"
trap 'rm -rf "$WORK"' EXIT INT TERM

# The whole test is meaningless unless `ulimit -v` both (a) can be set
# and (b) is actually enforced — containers and some kernels accept the
# syscall and then ignore the cap. Probe both before doing any work and
# SKIP (exit 77, ctest's SKIP_RETURN_CODE) instead of failing
# spuriously: a binary that maps Z3 cannot possibly run under a 16 MiB
# address-space cap, so if it does, the cap is not being enforced.
if ! sh -c "ulimit -v 16384" 2>/dev/null; then
    echo "SKIP: ulimit -v unsupported (cannot set an address-space cap)"
    exit 77
fi
if sh -c "ulimit -v 16384 && exec '$GRASSP' list" >/dev/null 2>&1; then
    echo "SKIP: ulimit -v unsupported (cap set but not enforced)"
    exit 77
fi

# 8 Mi elements = 64 MiB of payload; the cap's headroom over the probed
# baseline stays under 48 MiB (probe granularity + margin), so nothing
# may hold the whole file.
ELEMS=8388608
FILE_KB=$((64 * 1024))
MARGIN_KB=$((32 * 1024))
PROBE_STEP_KB=$((16 * 1024))
WORKERS=2
CHUNK_ELEMS=262144 # 2 MiB per resident chunk buffer.

echo "== generating $ELEMS-element binary workload (streamed) =="
"$GRASSP" convert --gen sum "$ELEMS" "$WORK/big.bin" --seed 99

# Probe: smallest cap where an in-memory run of the same worker shape
# works at all. Everything the control needs (Z3 mappings, thread
# stacks, malloc arenas) is in the baseline; the margin added below is
# for per-chunk buffers only.
BASE_KB=""
CAP_KB=$PROBE_STEP_KB
CEIL_KB=$((4 * 1024 * 1024))
while [ "$CAP_KB" -le "$CEIL_KB" ]; do
    if sh -c "ulimit -v $CAP_KB && exec '$GRASSP' run sum 100000 $WORKERS" \
        >/dev/null 2>&1; then
        BASE_KB=$CAP_KB
        break
    fi
    CAP_KB=$((CAP_KB + PROBE_STEP_KB))
done
if [ -z "$BASE_KB" ]; then
    echo "SKIP: no working baseline cap up to ${CEIL_KB}KB" >&2
    exit 77
fi
CAP_KB=$((BASE_KB + MARGIN_KB))
echo "baseline cap ${BASE_KB}KB, capped run at ${CAP_KB}KB" \
     "(headroom $((CAP_KB - BASE_KB))KB < file ${FILE_KB}KB)"

run_capped() {
    sh -c "ulimit -v $CAP_KB && exec '$GRASSP' run sum 1 $WORKERS \
        --input '$WORK/big.bin' --source $1 --chunk-elems $CHUNK_ELEMS"
}

echo "== mmap source under the cap =="
run_capped mmap | tee "$WORK/mmap.out"
echo "== chunked source under the cap =="
run_capped chunked | tee "$WORK/chunked.out"

# Compare the fold answers only — the trailing (0.0XXs) wall-clock on
# the serial line is incidental and differs between runs.
MM=$(grep '^serial' "$WORK/mmap.out" | awk '{print $3}')
CH=$(grep '^serial' "$WORK/chunked.out" | awk '{print $3}')
[ -n "$MM" ] && [ "$MM" = "$CH" ] || {
    echo "FAIL: mmap and chunked folds disagree: '$MM' vs '$CH'" >&2
    exit 1
}
echo "== stream smoke passed: both sources agree under the cap =="
