#!/usr/bin/env sh
# One-command verification: the tier-1 build + full ctest suite, then a
# ThreadSanitizer build of the concurrency-heavy targets (runner, thread
# pool, parallel synthesis driver, chaos/fault-injection tests) so data
# races in the fault-tolerant paths fail loudly instead of flaking.
#
# Usage: scripts/check.sh [build-dir] [tsan-build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
TSAN="${2:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier 1: build + full test suite ($BUILD) =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== serve smoke: the synthesis service end to end (30s cap) =="
# Also registered with ctest as serve_smoke_cli; this explicit run keeps
# the service-layer gate visible even under a filtered ctest invocation.
timeout 30 scripts/serve_smoke.sh "$BUILD"

echo "== execution tiers selected per benchmark =="
cmake --build "$BUILD" -j "$JOBS" --target bench_kernels >/dev/null
"$BUILD"/bench/bench_kernels --tiers

echo "== tier 2: ThreadSanitizer over the concurrent paths ($TSAN) =="
# dist_smoke rides along: the coordinator is a single-threaded poll
# loop, but it shares the backoff helper and ThreadPool drain paths with
# the threaded runner, and its fork children must never inherit a torn
# lock from an instrumented parent.
cmake -B "$TSAN" -S . -DGRASSP_SANITIZE=thread >/dev/null
cmake --build "$TSAN" -j "$JOBS" --target \
    runtime_runner_test support_threadpool_test support_cancel_test \
    smt_solver_test synth_paralleldriver_test chaos_smoke dist_smoke
ctest --test-dir "$TSAN" --output-on-failure -j "$JOBS" \
    -R 'runtime_runner|support_threadpool|support_cancel|smt_solver|paralleldriver|chaos_smoke|dist_smoke'

echo "== all checks passed =="
