#!/usr/bin/env sh
# Records the repo's performance baseline at fixed sizes and seeds:
#
#  1. bench_kernels --json  ->  BENCH_kernels.json at the repo root
#     (per-tier fold throughput for every Table-1 benchmark, the tier
#     speedups over the per-element VM, and the distinct kernel's
#     time(2N)/time(N) scaling ratio — ~2 is linear, ~4 was the old
#     O(n*k) membership scan);
#  2. bench_stream --json   ->  BENCH_stream.json at the repo root
#     (MergeTree incremental recompute: sustained append elements/sec
#     and the per-update latency vs a from-scratch refold at 256
#     chunks, every update differentially verified);
#  3. bench_parallel_cpp    ->  printed to stdout (the Table-2 style
#     serial-vs-parallel comparison on emitted C++);
#  4. bench_dist --json     ->  BENCH_dist.json at the repo root
#     (the multi-process runtime on both transports: cold/warm wall
#     time, the shm-vs-inline warm speedup, and socket bytes per
#     element — ~8 B/elem inline vs O(1) bytes per shard on the
#     zero-copy shared-memory transport);
#  5. bench_serve --json    ->  BENCH_serve.json at the repo root
#     (the synthesis service: cache-hit latency vs cold synth per hot
#     benchmark, and the shed/served split plus hit p50/p99 while a
#     synth flood saturates the solver pool).
#
# Deterministic inputs (fixed N and seed) keep runs comparable across
# commits; see EXPERIMENTS.md for how to read the numbers.
#
# Usage: scripts/bench_baseline.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"
N=1048576
SEED=99

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$JOBS" \
    --target bench_kernels bench_stream bench_parallel_cpp bench_dist \
             bench_serve

echo "== kernel tier throughput (N=$N seed=$SEED) -> BENCH_kernels.json =="
"$BUILD"/bench/bench_kernels --json --n "$N" --seed "$SEED" \
    > BENCH_kernels.json
"$BUILD"/bench/bench_kernels --n "$N" --seed "$SEED"

echo
echo "== ablation: same workload with the fused kernels disabled =="
"$BUILD"/bench/bench_kernels --no-specialize --n "$N" --seed "$SEED"

echo
echo "== ablation: same workload with the native jit tier disabled =="
"$BUILD"/bench/bench_kernels --no-native --n "$N" --seed "$SEED"

echo
echo "== incremental recompute (N=$N, 256 chunks) -> BENCH_stream.json =="
"$BUILD"/bench/bench_stream --json --n "$N" --seed "$SEED" \
    > BENCH_stream.json
"$BUILD"/bench/bench_stream --n "$N" --seed "$SEED"

echo
echo "== emitted parallel C++ (bench_parallel_cpp) =="
"$BUILD"/bench/bench_parallel_cpp

echo
echo "== dist runtime, shm vs inline transport (N=2M, 8 workers) =="
echo "==   -> BENCH_dist.json =="
"$BUILD"/bench/bench_dist 2000000 --workers 8 --shards 32 \
    --json BENCH_dist.json

echo
echo "== serve hot-path latency + overload shedding -> BENCH_serve.json =="
"$BUILD"/bench/bench_serve --json BENCH_serve.json

echo
echo "baseline written to BENCH_kernels.json, BENCH_stream.json," \
     "BENCH_dist.json, and BENCH_serve.json"
