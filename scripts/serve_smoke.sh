#!/usr/bin/env sh
# Serve smoke: the long-lived synthesis service end to end through the
# CLI, fast enough for a 30-second CI cap. One server is started on a
# private socket/cache, then:
#
#   synth (miss)  -> "solved ..." and a certified plan
#   synth (hit)   -> "hit ..." answered from the cache
#   run           -> an output line (checked against the serial fold by
#                    the server itself; the smoke checks the round trip)
#   stats         -> counters flow even while solves are possible
#   SIGTERM       -> graceful drain: exit 0 and a compacted cache.snap
#   warm restart  -> the committed entry is re-served as a hit
#
# The ctest registration and the CI step both wrap this in a 30s cap;
# the script's own watchdog SIGKILLs a wedged server so a hang fails
# fast instead of eating the whole cap.
#
# Usage: scripts/serve_smoke.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
GRASSP="$BUILD/tools/grassp"
[ -x "$GRASSP" ] || {
    echo "error: $GRASSP not built (cmake --build $BUILD --target grassp)" >&2
    exit 1
}

WORK="${TMPDIR:-/tmp}/grassp-serve-smoke.$$"
SOCK="$WORK/serve.sock"
CACHE="$WORK/cache"
mkdir -p "$WORK"
SERVER=""
cleanup() {
    [ -n "$SERVER" ] && kill -9 "$SERVER" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

start_server() {
    "$GRASSP" serve --socket "$SOCK" --cache "$CACHE" --pool 1 \
        2>>"$WORK/serve.log" &
    SERVER=$!
    # Watchdog: a wedged server dies well inside the CI cap.
    ( sleep 25 && kill -9 "$SERVER" 2>/dev/null ) &
    WATCHDOG=$!
}

stop_server_drain() {
    kill -TERM "$SERVER"
    RC=0
    wait "$SERVER" || RC=$?
    SERVER=""
    kill "$WATCHDOG" 2>/dev/null || true
    [ "$RC" -eq 0 ] || {
        echo "FAIL: drain exit code $RC (want 0)" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    }
}

req() { "$GRASSP" serve-req "$@" --socket "$SOCK"; }

expect() {
    # expect <pattern> <cmd...>: the request must succeed AND its reply
    # line must match.
    PAT=$1; shift
    OUT=$(req "$@") || {
        echo "FAIL: serve-req $* failed: $OUT" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    }
    echo "  serve-req $*: $OUT"
    case $OUT in
        $PAT) ;;
        *) echo "FAIL: serve-req $* reply '$OUT' !~ '$PAT'" >&2; exit 1 ;;
    esac
}

echo "== serve smoke: cold server =="
start_server
expect "solved *" synth count
expect "hit *"    synth count
expect "run output=*" run sum --n 100000 --seed 7
expect "*cache.hits=*" stats

echo "== SIGTERM drain =="
stop_server_drain
[ -f "$CACHE/cache.snap" ] || {
    echo "FAIL: no $CACHE/cache.snap after drain" >&2
    exit 1
}

echo "== warm restart serves the committed entry =="
start_server
expect "hit *" synth count
stop_server_drain

echo "== serve smoke passed =="
