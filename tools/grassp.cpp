//===- tools/grassp.cpp - The GRASSP command-line driver ------------------==//
//
// End-user entry point:
//
//   grassp list                      list the Table-1 benchmarks
//   grassp synth <name>             synthesize and describe the plan
//   grassp synth-all [--jobs N]     synthesize the whole suite, in
//                                   parallel on a thread pool
//   grassp run <name> [N] [P] [--no-specialize] [--no-native]
//              [--input FILE] [--source KIND] [--max-elems M]
//              [--chunk-elems C]
//                                   serial vs parallel over N elements;
//                                   prints the selected execution tier;
//                                   --no-specialize ablates the fused
//                                   kernels, --no-native the jit tier;
//                                   --input folds a workload file through
//                                   a segment source (mmap / chunked /
//                                   memory / auto) so inputs larger than
//                                   RAM never materialize
//   grassp convert <in.txt> <out.bin> [--max-elems M]
//   grassp convert --gen <name> <N> <out.bin> [--seed S]
//                                   text workload -> binary workload, or
//                                   stream-generate a benchmark workload
//                                   straight to binary, both in O(1)
//                                   memory
//   grassp stream <name> [--input FILE] [--source KIND] [opts]
//                                   incremental recompute over the
//                                   certified merge tree; append / edit /
//                                   query / verify commands on stdin
//   grassp emit-cpp <name>          print the standalone C++ translation
//   grassp emit-mr <name>           print the mapper/reducer translation
//   grassp emit-chc <name>          print the CHC system (SMT-LIB2)
//   grassp certify <name> [ms]      Spacer certification
//   grassp fuzz [opts]              differential oracle over all paths
//   grassp chaos [opts]             fuzz under seeded fault injection;
//                                   --dist adds the multi-process
//                                   runtime and kills REAL workers
//   grassp dist-run <name> [N]      run a workload on the multi-process
//                                   runtime (forked workers over Unix
//                                   sockets) with optional real fault
//                                   injection; prints the recovery
//                                   report next to the serial answer
//   grassp serve [opts]             long-lived synthesis service on a
//                                   Unix socket: persistent solution
//                                   cache, isolated solver workers,
//                                   SIGTERM drains gracefully
//   grassp serve-req <req> [opts]   one client request against a
//                                   running server (synth / run /
//                                   certify / stats)
//   grassp chaos --serve [opts]     fault-inject a REAL server process
//                                   and assert bit-identical answers,
//                                   zero service deaths
//
//===----------------------------------------------------------------------===//

#include "chc/Certify.h"
#include "codegen/CppCodegen.h"
#include "dist/Coordinator.h"
#include "dist/Worker.h"
#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "runtime/MergeTree.h"
#include "runtime/Runner.h"
#include "runtime/SegmentSource.h"
#include "runtime/Workload.h"
#include "serve/Chaos.h"
#include "serve/Client.h"
#include "serve/ProgramText.h"
#include "serve/Server.h"
#include "support/Args.h"
#include "support/Cancel.h"
#include "support/FaultInject.h"
#include "support/Timing.h"
#include "synth/Grassp.h"
#include "synth/ParallelDriver.h"
#include "testing/Fuzz.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <unistd.h>

using namespace grassp;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s list | synth <name> |\n"
               "       synth-all [--jobs N] [--timeout-ms T] [--retries K] "
               "[--max-budget-ms M] [--deadline-sec D]\n"
               "                 [--queue-cap Q] [--journal FILE] "
               "[--resume] |\n"
               "       run <name> [N] [P] [--no-specialize] [--no-native] "
               "[--input FILE] [--source auto|memory|mmap|chunked]\n"
               "                 [--max-elems M] [--chunk-elems C] |\n"
               "       convert <in.txt> <out.bin> [--max-elems M] |\n"
               "       convert --gen <name> <N> <out.bin> [--seed S] |\n"
               "       stream <name> [--input FILE] [--source KIND] "
               "[--chunk-elems C] [--max-elems M]\n"
               "                 [--no-specialize] [--no-native] "
               "(append/edit/query/verify/stats on stdin) |\n"
               "       emit-cpp "
               "<name> | emit-mr "
               "<name> | emit-chc <name> "
               "| certify <name> [timeout-ms] |\n"
               "       fuzz [--seconds N] [--seed S] [--segments M] "
               "[--no-emit] [--jobs N] [--faults] [--fault-seed S]\n"
               "            [--dist] [--dist-workers W] [--kill-permille K] "
               "[--exit-permille K] [--hang-permille K]\n"
               "            [--corrupt-permille K] [name...] |\n"
               "       chaos [same options as fuzz; --faults implied; "
               "--dist kills real worker processes] |\n"
               "       dist-run <name> [N] [--workers W] [--shards S] "
               "[--batch-shards B] [--input FILE] [--json] [--no-shm]\n"
               "                [--fault-seed S] [--kill-permille K] "
               "[--exit-permille K] [--hang-permille K]\n"
               "                [--corrupt-permille K] [--no-specialize] "
               "[--no-native] |\n"
               "       serve [--socket PATH] [--cache DIR] [--pool N] "
               "[--high-water N] [--snapshot-every N]\n"
               "             [--smt-timeout-ms T] [--deadline-sec D] "
               "[--seed S] |\n"
               "       serve-req synth|run|certify|stats [--socket PATH] "
               "[name] [--n N] [--seed S] |\n"
               "       chaos --serve [--seconds N] [--seed S] "
               "[--kill-permille K] [--hang-permille K]\n"
               "             [--torn-every N] [--disconnect-every N] "
               "[--kill-cycles N] [--pool N] [--dir D] [--verbose]\n",
               Prog);
  return 2;
}

const lang::SerialProgram *lookup(const char *Name) {
  const lang::SerialProgram *P = lang::findBenchmark(Name);
  if (!P)
    std::fprintf(stderr, "error: unknown benchmark '%s' (try 'list')\n",
                 Name);
  return P;
}

synth::SynthesisResult synthOrDie(const lang::SerialProgram &P) {
  synth::SynthesisResult R = synth::synthesize(P);
  if (!R.Success) {
    std::fprintf(stderr, "error: synthesis failed: %s\n",
                 R.FailureReason.c_str());
    std::exit(1);
  }
  return R;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage(argv[0]);
  const char *Cmd = argv[1];

  if (std::strcmp(Cmd, "list") == 0) {
    for (const lang::SerialProgram &P : lang::allBenchmarks())
      std::printf("%-22s %-4s %s\n", P.Name.c_str(),
                  P.ExpectedGroup.c_str(), P.Description.c_str());
    return 0;
  }
  if (std::strcmp(Cmd, "synth-all") == 0) {
    synth::DriverOptions Opts;
    unsigned DeadlineSec = 0;
    unsigned QueueCap = 0;
    for (int I = 2; I != argc; ++I) {
      auto numericOpt = [&](const char *Flag, unsigned *Out) {
        if (std::strcmp(argv[I], Flag) != 0 || I + 1 >= argc)
          return false;
        if (!parseUnsigned(argv[++I], Out)) {
          std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                       Flag, argv[I]);
          std::exit(2);
        }
        return true;
      };
      if (numericOpt("--jobs", &Opts.Jobs) ||
          numericOpt("--timeout-ms", &Opts.SmtTimeoutMs) ||
          numericOpt("--retries", &Opts.MaxRetries) ||
          numericOpt("--max-budget-ms", &Opts.MaxBudgetMs) ||
          numericOpt("--deadline-sec", &DeadlineSec) ||
          numericOpt("--queue-cap", &QueueCap))
        continue;
      if (std::strcmp(argv[I], "--journal") == 0 && I + 1 < argc) {
        Opts.JournalPath = argv[++I];
      } else if (std::strcmp(argv[I], "--resume") == 0) {
        Opts.Resume = true;
      } else {
        return usage(argv[0]);
      }
    }
    Opts.TaskDeadlineSec = DeadlineSec;
    Opts.QueueCap = QueueCap;
    if (Opts.Resume && Opts.JournalPath.empty()) {
      std::fprintf(stderr, "error: --resume needs --journal FILE\n");
      return 2;
    }
    // Ctrl-C fires this token: in-flight SMT queries are interrupted,
    // queued tasks are shed, the journal keeps every finished task, and
    // a later --resume re-runs exactly the remainder.
    Opts.Token = installSignalSource();
    synth::ParallelDriver Driver(Opts);
    std::vector<synth::TaskResult> Results = Driver.runAll();
    unsigned Solved = 0, Restored = 0, Cancelled = 0;
    for (const synth::TaskResult &T : Results) {
      std::printf("%-22s %-8s %-4s %s  (%u attempt%s%s)\n", T.Name.c_str(),
                  taskStatusName(T.Status),
                  T.Status == synth::TaskStatus::Solved
                      ? T.Result.Group.c_str()
                      : "-",
                  formatSeconds(T.Result.SynthSeconds).c_str(), T.Attempts,
                  T.Attempts == 1 ? "" : "s",
                  T.FromJournal ? ", from journal" : "");
      Solved += T.Status == synth::TaskStatus::Solved ? 1 : 0;
      Restored += T.FromJournal ? 1 : 0;
      Cancelled += T.Status == synth::TaskStatus::Cancelled ? 1 : 0;
    }
    std::printf("solved %u/%zu", Solved, Results.size());
    if (Restored)
      std::printf(" (%u restored from journal, not re-run)", Restored);
    if (Cancelled)
      std::printf(" (interrupted: %u task(s) cancelled%s)", Cancelled,
                  Opts.JournalPath.empty()
                      ? ""
                      : "; finished tasks are journaled, --resume "
                        "re-runs the rest");
    std::printf("\n");
    if (int Sig = signalExitCode())
      return Sig;
    return Solved == Results.size() ? 0 : 1;
  }
  if (std::strcmp(Cmd, "fuzz") == 0 || std::strcmp(Cmd, "chaos") == 0) {
    // `chaos --serve` is its own harness: it forks REAL server
    // processes, so the parent must NOT install the signal source (a
    // forked child would inherit the handler state without the watcher
    // thread). Intercept before any of the fuzz setup runs.
    for (int I = 2; I != argc; ++I) {
      if (std::strcmp(argv[I], "--serve") != 0)
        continue;
      if (std::strcmp(Cmd, "chaos") != 0)
        return usage(argv[0]);
      serve::ServeChaosOptions SC;
      for (int J = 2; J != argc; ++J) {
        auto numOpt = [&](const char *Flag, unsigned *Out) {
          if (std::strcmp(argv[J], Flag) != 0 || J + 1 >= argc)
            return false;
          if (!parseUnsigned(argv[++J], Out)) {
            std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                         Flag, argv[J]);
            std::exit(2);
          }
          return true;
        };
        auto seed64Opt = [&](const char *Flag, uint64_t *Out) {
          if (std::strcmp(argv[J], Flag) != 0 || J + 1 >= argc)
            return false;
          if (!parseSeed(argv[++J], Out)) {
            std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                         Flag, argv[J]);
            std::exit(2);
          }
          return true;
        };
        unsigned Pool = 0;
        if (numOpt("--seconds", &SC.Seconds) ||
            numOpt("--kill-permille", &SC.KillPermille) ||
            numOpt("--hang-permille", &SC.HangPermille) ||
            numOpt("--kill-cycles", &SC.KillCycles) ||
            seed64Opt("--seed", &SC.Seed) ||
            seed64Opt("--torn-every", &SC.TornEveryNth) ||
            seed64Opt("--disconnect-every", &SC.DisconnectEveryNth))
          continue;
        if (numOpt("--pool", &Pool)) {
          SC.PoolSize = Pool;
        } else if (std::strcmp(argv[J], "--dir") == 0 && J + 1 < argc) {
          SC.WorkDir = argv[++J];
        } else if (std::strcmp(argv[J], "--verbose") == 0) {
          SC.Verbose = true;
        } else if (std::strcmp(argv[J], "--serve") == 0) {
          continue;
        } else {
          return usage(argv[0]);
        }
      }
      return serve::serveChaosMain(SC);
    }
    testing::FuzzOptions FOpts;
    synth::DriverOptions DOpts;
    DOpts.Jobs = 0; // all hardware threads for the synthesis stage.
    // One Ctrl-C = clean partial summary + exit 130; a second one
    // hard-kills (the source restores SIG_DFL after firing).
    FOpts.Token = installSignalSource();
    DOpts.Token = FOpts.Token;
    FOpts.Chaos = std::strcmp(Cmd, "chaos") == 0;
    std::vector<std::string> Names;
    for (int I = 2; I != argc; ++I) {
      auto numericOpt = [&](const char *Flag, unsigned *Out) {
        if (std::strcmp(argv[I], Flag) != 0 || I + 1 >= argc)
          return false;
        if (!parseUnsigned(argv[++I], Out)) {
          std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                       Flag, argv[I]);
          std::exit(2);
        }
        return true;
      };
      auto seedOpt = [&](const char *Flag, uint64_t *Out) {
        if (std::strcmp(argv[I], Flag) != 0 || I + 1 >= argc)
          return false;
        if (!parseSeed(argv[++I], Out)) {
          std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                       Flag, argv[I]);
          std::exit(2);
        }
        return true;
      };
      if (numericOpt("--seconds", &FOpts.Seconds) ||
          numericOpt("--segments", &FOpts.Segments) ||
          numericOpt("--jobs", &DOpts.Jobs) ||
          numericOpt("--fail-permille", &FOpts.ChaosFailPermille) ||
          numericOpt("--dist-workers", &FOpts.DistWorkers) ||
          numericOpt("--kill-permille", &FOpts.DistKillPermille) ||
          numericOpt("--exit-permille", &FOpts.DistExitPermille) ||
          numericOpt("--hang-permille", &FOpts.DistHangPermille) ||
          numericOpt("--corrupt-permille", &FOpts.DistCorruptPermille) ||
          seedOpt("--seed", &FOpts.Seed) ||
          seedOpt("--fault-seed", &FOpts.ChaosSeed))
        continue;
      if (std::strcmp(argv[I], "--faults") == 0) {
        FOpts.Chaos = true;
      } else if (std::strcmp(argv[I], "--dist") == 0) {
        FOpts.Dist = true;
      } else if (std::strcmp(argv[I], "--no-emit") == 0) {
        FOpts.UseEmitted = false;
      } else if (argv[I][0] == '-') {
        return usage(argv[0]);
      } else {
        if (!lookup(argv[I]))
          return 2;
        Names.push_back(argv[I]);
      }
    }
    return testing::fuzzMain(Names, FOpts, DOpts);
  }
  if (std::strcmp(Cmd, "convert") == 0) {
    // Both forms stream in bounded memory: a >RAM workload can be
    // converted or generated without ever materializing it.
    if (argc >= 3 && std::strcmp(argv[2], "--gen") == 0) {
      if (argc < 6)
        return usage(argv[0]);
      const lang::SerialProgram *GP = lookup(argv[3]);
      if (!GP)
        return 2;
      size_t N = 0;
      if (!parseSize(argv[4], &N) || N == 0) {
        std::fprintf(stderr, "error: --gen expects a positive element "
                             "count, got '%s'\n",
                     argv[4]);
        return 2;
      }
      const char *OutPath = argv[5];
      uint64_t Seed = 1;
      for (int I = 6; I < argc; ++I) {
        if (std::strcmp(argv[I], "--seed") == 0 && I + 1 < argc &&
            parseSeed(argv[++I], &Seed))
          continue;
        return usage(argv[0]);
      }
      try {
        runtime::BinaryWorkloadWriter Writer(OutPath);
        runtime::WorkloadStream Stream(*GP, N, Seed);
        std::vector<int64_t> Slice;
        while (Stream.remaining() != 0) {
          Slice.clear();
          Stream.generate(size_t{1} << 20, Slice);
          Writer.append(Slice);
        }
        Writer.close();
        std::printf("wrote %llu element(s) to %s (%s, seed %llu)\n",
                    (unsigned long long)Writer.written(), OutPath,
                    GP->Name.c_str(), (unsigned long long)Seed);
      } catch (const std::exception &E) {
        std::fprintf(stderr, "error: %s\n", E.what());
        return 1;
      }
      return 0;
    }
    if (argc < 4)
      return usage(argv[0]);
    uint64_t MaxElems = 0;
    for (int I = 4; I < argc; ++I) {
      if (std::strcmp(argv[I], "--max-elems") == 0 && I + 1 < argc &&
          parseSeed(argv[++I], &MaxElems))
        continue;
      return usage(argv[0]);
    }
    try {
      uint64_t Count =
          runtime::convertTextToBinary(argv[2], argv[3], MaxElems);
      std::printf("wrote %llu element(s) to %s\n", (unsigned long long)Count,
                  argv[3]);
    } catch (const std::exception &E) {
      std::fprintf(stderr, "error: %s\n", E.what());
      return 1;
    }
    return 0;
  }
  if (std::strcmp(Cmd, "serve") == 0) {
    serve::ServerOptions SO;
    SO.SocketPath = "/tmp/grassp-serve.sock";
    SO.CacheDir = "grassp-serve-cache";
    unsigned Pool = 0, HighWater = 0, DeadlineSec = 0;
    for (int I = 2; I != argc; ++I) {
      auto numOpt = [&](const char *Flag, unsigned *Out) {
        if (std::strcmp(argv[I], Flag) != 0 || I + 1 >= argc)
          return false;
        if (!parseUnsigned(argv[++I], Out)) {
          std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                       Flag, argv[I]);
          std::exit(2);
        }
        return true;
      };
      unsigned SnapEvery = 0;
      if (numOpt("--pool", &Pool) || numOpt("--high-water", &HighWater) ||
          numOpt("--smt-timeout-ms", &SO.SmtTimeoutMs) ||
          numOpt("--deadline-sec", &DeadlineSec))
        continue;
      if (numOpt("--snapshot-every", &SnapEvery)) {
        SO.SnapshotEvery = SnapEvery;
      } else if (std::strcmp(argv[I], "--socket") == 0 && I + 1 < argc) {
        SO.SocketPath = argv[++I];
      } else if (std::strcmp(argv[I], "--cache") == 0 && I + 1 < argc) {
        SO.CacheDir = argv[++I];
      } else if (std::strcmp(argv[I], "--seed") == 0 && I + 1 < argc &&
                 parseSeed(argv[I + 1], &SO.Seed)) {
        ++I;
      } else {
        return usage(argv[0]);
      }
    }
    if (Pool)
      SO.PoolSize = Pool;
    if (HighWater)
      SO.HighWaterJobs = HighWater;
    if (DeadlineSec)
      SO.JobDeadlineSec = DeadlineSec;
    // SIGINT = hard stop; first SIGTERM = graceful drain (finish
    // in-flight solves, snapshot the cache, exit 0).
    SO.Root = installSignalSource();
    SO.Drain = installDrainSignalSource();
    serve::ServeServer Server;
    std::string Err;
    if (!Server.init(SO, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "grassp serve: listening on %s (cache %s, %zu "
                         "cached entr%s)\n",
                 SO.SocketPath.c_str(), SO.CacheDir.c_str(),
                 Server.cache().size(),
                 Server.cache().size() == 1 ? "y" : "ies");
    return Server.run();
  }
  if (std::strcmp(Cmd, "serve-req") == 0) {
    if (argc < 3)
      return usage(argv[0]);
    const char *Req = argv[2];
    std::string Socket = "/tmp/grassp-serve.sock";
    const char *Name = nullptr;
    size_t N = 1 << 16;
    uint64_t Seed = 1;
    for (int I = 3; I != argc; ++I) {
      if (std::strcmp(argv[I], "--socket") == 0 && I + 1 < argc) {
        Socket = argv[++I];
      } else if (std::strcmp(argv[I], "--n") == 0 && I + 1 < argc &&
                 parseSize(argv[I + 1], &N)) {
        ++I;
      } else if (std::strcmp(argv[I], "--seed") == 0 && I + 1 < argc &&
                 parseSeed(argv[I + 1], &Seed)) {
        ++I;
      } else if (argv[I][0] != '-' && !Name) {
        Name = argv[I];
      } else {
        return usage(argv[0]);
      }
    }
    serve::ServeClient Client;
    std::string Err;
    if (!Client.connect(Socket, 5.0, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    serve::ClientReply Reply;
    bool Sent = false;
    if (std::strcmp(Req, "stats") == 0) {
      Sent = Client.stats(&Reply);
    } else {
      if (!Name) {
        std::fprintf(stderr, "error: serve-req %s needs a benchmark name\n",
                     Req);
        return 2;
      }
      const lang::SerialProgram *RP = lookup(Name);
      if (!RP)
        return 2;
      std::string Text = serve::printProgramText(*RP);
      if (std::strcmp(Req, "synth") == 0)
        Sent = Client.synth(Text, &Reply);
      else if (std::strcmp(Req, "certify") == 0)
        Sent = Client.certify(Text, &Reply);
      else if (std::strcmp(Req, "run") == 0)
        Sent = Client.run(Text, runtime::generateWorkload(*RP, N, Seed),
                          &Reply);
      else
        return usage(argv[0]);
    }
    if (!Sent) {
      std::fprintf(stderr, "error: transport failure talking to %s\n",
                   Socket.c_str());
      return 1;
    }
    std::printf("%s\n", serve::describeReply(Reply).c_str());
    return Reply.IsOk ? 0 : 1;
  }
  if (argc < 3)
    return usage(argv[0]);
  const lang::SerialProgram *P = lookup(argv[2]);
  if (!P)
    return 1;

  if (std::strcmp(Cmd, "synth") == 0) {
    synth::SynthesisResult R = synthOrDie(*P);
    std::printf("%s (%s)\nsynthesized in %s, %u candidates, %u SMT "
                "queries\n\n%s\nstages:\n",
                P->Name.c_str(), P->Description.c_str(),
                formatSeconds(R.SynthSeconds).c_str(), R.CandidatesTried,
                R.SmtChecks, R.Plan.describe(*P).c_str());
    for (const std::string &S : R.StageLog)
      std::printf("  %s\n", S.c_str());
    return 0;
  }
  if (std::strcmp(Cmd, "run") == 0) {
    size_t N = 10000000;
    unsigned Workers = 8;
    bool Specialize = true;
    bool Native = true;
    const char *InputFile = nullptr;
    runtime::SourceKind Kind = runtime::SourceKind::Auto;
    uint64_t MaxElems = 0;
    size_t ChunkElems = 0;
    unsigned Positional = 0;
    for (int I = 3; I < argc; ++I) {
      if (std::strcmp(argv[I], "--no-specialize") == 0) {
        Specialize = false;
        continue;
      }
      if (std::strcmp(argv[I], "--no-native") == 0) {
        Native = false;
        continue;
      }
      if (std::strcmp(argv[I], "--input") == 0 && I + 1 < argc) {
        InputFile = argv[++I];
        continue;
      }
      if (std::strcmp(argv[I], "--source") == 0 && I + 1 < argc) {
        if (!runtime::parseSourceKind(argv[++I], &Kind)) {
          std::fprintf(stderr,
                       "error: --source expects auto, memory, mmap, or "
                       "chunked, got '%s'\n",
                       argv[I]);
          return 2;
        }
        continue;
      }
      if (std::strcmp(argv[I], "--max-elems") == 0 && I + 1 < argc &&
          parseSeed(argv[I + 1], &MaxElems)) {
        ++I;
        continue;
      }
      if (std::strcmp(argv[I], "--chunk-elems") == 0 && I + 1 < argc &&
          parseSize(argv[I + 1], &ChunkElems)) {
        ++I;
        continue;
      }
      bool Ok = Positional == 0   ? parseSize(argv[I], &N)
                : Positional == 1 ? parseUnsigned(argv[I], &Workers)
                                  : false;
      if (!Ok) {
        std::fprintf(stderr,
                     "error: run expects [N] [P] [--no-specialize] "
                     "[--no-native] [--input FILE] [--source KIND] "
                     "[--max-elems M] [--chunk-elems C], got '%s'\n",
                     argv[I]);
        return 2;
      }
      ++Positional;
    }
    synth::SynthesisResult R = synthOrDie(*P);
    runtime::CompiledProgram CP(*P, Specialize, Native);
    runtime::CompiledPlan Plan(*P, R.Plan, Specialize, Native);
    std::string Info = CP.specializationInfo();
    std::printf("tier     = %s%s%s%s\n", runtime::execTierName(CP.tier()),
                Info.empty() ? "" : " (", Info.c_str(),
                Info.empty() ? "" : ")");

    if (InputFile) {
      // File inputs go through a SegmentSource: serial and parallel both
      // hold one chunk resident at a time, so the file may be far
      // larger than RAM (or the address-space cap).
      std::unique_ptr<runtime::SegmentSource> Src;
      try {
        runtime::SourceOptions SOpts;
        if (ChunkElems)
          SOpts.ChunkElems = ChunkElems;
        SOpts.MinChunks = Workers;
        Src = runtime::openSegmentSource(InputFile, Kind, SOpts, MaxElems);
      } catch (const std::exception &E) {
        std::fprintf(stderr, "error: %s\n", E.what());
        return 2;
      }
      if (Src->elements() < Workers) {
        std::fprintf(stderr,
                     "error: workload file holds %llu element(s), fewer "
                     "than the %u workers\n",
                     (unsigned long long)Src->elements(), Workers);
        return 2;
      }
      std::printf("source   = %s (%llu elements, %zu chunks)\n",
                  Src->kind(), (unsigned long long)Src->elements(),
                  Src->chunkCount());
      double SerialSec = 0;
      int64_t SerialOut = runtime::runSerialSourceTimed(CP, *Src,
                                                        &SerialSec);
      runtime::ParallelRunResult PR = runtime::runParallel(Plan, *Src);
      std::printf("serial   = %lld (%s)\nparallel = %lld (modeled %.2fX "
                  "on %u workers)\n",
                  (long long)SerialOut, formatSeconds(SerialSec).c_str(),
                  (long long)PR.Output,
                  runtime::modeledSpeedup(SerialSec, PR, Workers),
                  Workers);
      return SerialOut == PR.Output ? 0 : 1;
    }

    std::vector<int64_t> Data = runtime::generateWorkload(*P, N, 1);
    std::vector<runtime::SegmentView> Segs =
        runtime::partition(Data, Workers);
    double SerialSec = 0;
    int64_t SerialOut = runtime::runSerialTimed(CP, Segs, &SerialSec);
    runtime::ParallelRunResult PR = runtime::runParallel(Plan, Segs);
    std::printf("serial   = %lld (%s)\nparallel = %lld (modeled %.2fX on "
                "%u workers)\n",
                (long long)SerialOut, formatSeconds(SerialSec).c_str(),
                (long long)PR.Output,
                runtime::modeledSpeedup(SerialSec, PR, Workers), Workers);
    return SerialOut == PR.Output ? 0 : 1;
  }
  if (std::strcmp(Cmd, "dist-run") == 0) {
    size_t N = 1000000;
    unsigned Workers = 4;
    unsigned Shards = 0; // 0 = pick 4 shards per worker below.
    unsigned BatchShards = 0; // 0 = the coordinator default.
    uint64_t FaultSeed = 7;
    unsigned KillPm = 0, ExitPm = 0, HangPm = 0, CorruptPm = 0;
    bool Specialize = true;
    bool Native = true;
    bool Json = false;
    bool NoShm = false;
    const char *InputFile = nullptr;
    unsigned Positional = 0;
    for (int I = 3; I < argc; ++I) {
      auto numericOpt = [&](const char *Flag, unsigned *Out) {
        if (std::strcmp(argv[I], Flag) != 0 || I + 1 >= argc)
          return false;
        if (!parseUnsigned(argv[++I], Out)) {
          std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                       Flag, argv[I]);
          std::exit(2);
        }
        return true;
      };
      if (numericOpt("--workers", &Workers) ||
          numericOpt("--shards", &Shards) ||
          numericOpt("--batch-shards", &BatchShards) ||
          numericOpt("--kill-permille", &KillPm) ||
          numericOpt("--exit-permille", &ExitPm) ||
          numericOpt("--hang-permille", &HangPm) ||
          numericOpt("--corrupt-permille", &CorruptPm))
        continue;
      if (std::strcmp(argv[I], "--fault-seed") == 0 && I + 1 < argc &&
          parseSeed(argv[I + 1], &FaultSeed)) {
        ++I;
        continue;
      }
      if (std::strcmp(argv[I], "--input") == 0 && I + 1 < argc) {
        InputFile = argv[++I];
        continue;
      }
      if (std::strcmp(argv[I], "--no-specialize") == 0) {
        Specialize = false;
        continue;
      }
      if (std::strcmp(argv[I], "--no-native") == 0) {
        Native = false;
        continue;
      }
      if (std::strcmp(argv[I], "--json") == 0) {
        Json = true;
        continue;
      }
      if (std::strcmp(argv[I], "--no-shm") == 0) {
        NoShm = true;
        continue;
      }
      if (Positional == 0 && parseSize(argv[I], &N)) {
        ++Positional;
        continue;
      }
      return usage(argv[0]);
    }
    if (Workers == 0) {
      std::fprintf(stderr, "error: --workers must be positive\n");
      return 2;
    }
    if (Shards == 0)
      Shards = Workers * 4;
    synth::SynthesisResult R = synthOrDie(*P);
    runtime::CompiledProgram CP(*P, Specialize, Native);
    runtime::CompiledPlan Plan(*P, R.Plan, Specialize, Native);
    if (!Json)
      std::printf("tier     = %s\n", runtime::execTierName(CP.tier()));

    // A file input runs through a SegmentSource (one shard per chunk;
    // binary files let workers mmap the GRSPWB01 region directly); the
    // default generated workload is partitioned in memory.
    std::unique_ptr<runtime::SegmentSource> Src;
    std::vector<int64_t> Data;
    std::vector<runtime::SegmentView> Segs;
    double SerialSec = 0;
    int64_t SerialOut = 0;
    if (InputFile) {
      try {
        runtime::SourceOptions SOpts;
        SOpts.MinChunks = Shards;
        Src = runtime::openSegmentSource(InputFile,
                                         runtime::SourceKind::Auto, SOpts);
      } catch (const std::exception &E) {
        std::fprintf(stderr, "error: %s\n", E.what());
        return 2;
      }
      N = Src->elements();
      if (!Json)
        std::printf("source   = %s (%llu elements, %zu chunks)\n",
                    Src->kind(), (unsigned long long)Src->elements(),
                    Src->chunkCount());
      SerialOut = runtime::runSerialSourceTimed(CP, *Src, &SerialSec);
    } else {
      Data = runtime::generateWorkload(*P, N, 1);
      Segs = runtime::partition(Data, Shards);
      SerialOut = runtime::runSerialTimed(CP, Segs, &SerialSec);
    }

    // Any nonzero permille arms the REAL fault sites: worker processes
    // consult the (fork-inherited) injector and genuinely _exit(137),
    // SIGKILL themselves, hang, or corrupt their reply frame.
    bool Chaos = KillPm || ExitPm || HangPm || CorruptPm;
    FaultInjector Injector(FaultSeed);
    dist::DistConfig DC;
    DC.Workers = Workers;
    DC.UseShm = !NoShm;
    if (BatchShards)
      DC.BatchShards = BatchShards;
    DC.BackoffJitterSeed = FaultSeed;
    DC.Token = installSignalSource();
    if (Chaos) {
      DC.Faults = &Injector;
      // Tight deadlines bound the wall-clock cost of injected hangs;
      // a generous restart budget keeps recovery distributed instead
      // of degrading to serial refolds.
      DC.TaskDeadlineSeconds = 0.05;
      DC.MaxWorkerRestarts = 100000;
      auto armSite = [&](const char *Site, unsigned Permille) {
        FaultSpec Spec;
        Spec.Probability = Permille / 1000.0;
        Injector.arm(Site, Spec);
      };
      armSite(dist::SiteWorkerKill, KillPm);
      armSite(dist::SiteWorkerExit, ExitPm);
      armSite(dist::SiteWorkerHang, HangPm);
      armSite(dist::SiteFrameCorrupt, CorruptPm);
      if (!Json)
        std::printf("faults   = seed %llu, permille kill=%u exit=%u "
                    "hang=%u corrupt=%u\n",
                    (unsigned long long)FaultSeed, KillPm, ExitPm, HangPm,
                    CorruptPm);
    }

    dist::DistCoordinator Coord(Plan, DC);
    dist::DistRunReport Rep = Src ? Coord.run(*Src) : Coord.run(Segs);
    if (Rep.Cancelled) {
      std::printf("cancelled before merge commit\n");
      if (int Sig = signalExitCode())
        return Sig;
      return 130;
    }
    bool Match = SerialOut == Rep.Output;
    if (Json) {
      // Machine-readable report: one object, stable keys, suitable for
      // CI assertions and the bench_baseline.sh artifact.
      std::printf(
          "{\n"
          "  \"benchmark\": \"%s\",\n"
          "  \"n\": %llu,\n"
          "  \"workers\": %u,\n"
          "  \"shards\": %u,\n"
          "  \"transport\": \"%s\",\n"
          "  \"output\": %lld,\n"
          "  \"serial\": %lld,\n"
          "  \"match\": %s,\n"
          "  \"serial_seconds\": %.6f,\n"
          "  \"wall_seconds\": %.6f,\n"
          "  \"merge_seconds\": %.6f,\n"
          "  \"recovery_seconds\": %.6f,\n"
          "  \"bytes_shipped\": %llu,\n"
          "  \"bytes_mapped\": %llu,\n"
          "  \"bytes_shipped_per_elem\": %.4f,\n"
          "  \"task_frames\": %u,\n"
          "  \"publish_frames\": %u,\n"
          "  \"shards_completed\": %u,\n"
          "  \"workers_spawned\": %u,\n"
          "  \"workers_killed\": %u,\n"
          "  \"workers_exited\": %u,\n"
          "  \"workers_restarted\": %u,\n"
          "  \"shards_reassigned\": %u,\n"
          "  \"speculative_launches\": %u,\n"
          "  \"speculative_wins\": %u,\n"
          "  \"corrupt_frames\": %u,\n"
          "  \"hangs_detected\": %u,\n"
          "  \"serial_refolds\": %u,\n"
          "  \"retries\": %u\n"
          "}\n",
          argv[2], (unsigned long long)N, Workers, Rep.Shards,
          Rep.UsedShm ? "shm" : "inline", (long long)Rep.Output,
          (long long)SerialOut, Match ? "true" : "false", SerialSec,
          Rep.WallSeconds, Rep.MergeSeconds, Rep.RecoverySeconds,
          (unsigned long long)Rep.BytesShipped,
          (unsigned long long)Rep.BytesMapped,
          N ? (double)Rep.BytesShipped / (double)N : 0.0, Rep.TaskFrames,
          Rep.PublishFrames, Rep.ShardsCompleted, Rep.WorkersSpawned,
          Rep.WorkersKilled, Rep.WorkersExited, Rep.WorkersRestarted,
          Rep.ShardsReassigned, Rep.SpeculativeLaunches,
          Rep.SpeculativeWins, Rep.CorruptFrames, Rep.HangsDetected,
          Rep.SerialRefolds, Rep.Retries);
    } else {
      std::printf("serial   = %lld (%s)\ndist     = %lld over %u shard(s) "
                  "on %u worker(s)\n%s\n",
                  (long long)SerialOut, formatSeconds(SerialSec).c_str(),
                  (long long)Rep.Output, Rep.Shards, Workers,
                  Rep.describe().c_str());
    }
    if (!Match) {
      std::fprintf(stderr, "error: MISMATCH: dist=%lld serial=%lld\n",
                   (long long)Rep.Output, (long long)SerialOut);
      return 1;
    }
    return 0;
  }
  if (std::strcmp(Cmd, "stream") == 0) {
    bool Specialize = true;
    bool Native = true;
    const char *InputFile = nullptr;
    runtime::SourceKind Kind = runtime::SourceKind::Auto;
    uint64_t MaxElems = 0;
    size_t ChunkElems = 0;
    for (int I = 3; I < argc; ++I) {
      if (std::strcmp(argv[I], "--no-specialize") == 0) {
        Specialize = false;
        continue;
      }
      if (std::strcmp(argv[I], "--no-native") == 0) {
        Native = false;
        continue;
      }
      if (std::strcmp(argv[I], "--input") == 0 && I + 1 < argc) {
        InputFile = argv[++I];
        continue;
      }
      if (std::strcmp(argv[I], "--source") == 0 && I + 1 < argc) {
        if (!runtime::parseSourceKind(argv[++I], &Kind)) {
          std::fprintf(stderr,
                       "error: --source expects auto, memory, mmap, or "
                       "chunked, got '%s'\n",
                       argv[I]);
          return 2;
        }
        continue;
      }
      if (std::strcmp(argv[I], "--max-elems") == 0 && I + 1 < argc &&
          parseSeed(argv[I + 1], &MaxElems)) {
        ++I;
        continue;
      }
      if (std::strcmp(argv[I], "--chunk-elems") == 0 && I + 1 < argc &&
          parseSize(argv[I + 1], &ChunkElems)) {
        ++I;
        continue;
      }
      return usage(argv[0]);
    }
    synth::SynthesisResult R = synthOrDie(*P);
    runtime::CompiledPlan Plan(*P, R.Plan, Specialize, Native);
    runtime::MergeTree Tree(Plan);

    // The current stream contents, for `edit` bounds and `verify`:
    // untouched initial-file chunks stay on disk (re-read through the
    // source only when verify materializes them); edits and appends
    // live in these maps. Only verify ever holds the whole stream.
    std::unique_ptr<runtime::SegmentSource> Src;
    std::map<size_t, std::vector<int64_t>> Edits;
    std::vector<std::vector<int64_t>> Appended;
    size_t FileChunks = 0;

    if (InputFile) {
      try {
        runtime::SourceOptions SOpts;
        if (ChunkElems)
          SOpts.ChunkElems = ChunkElems;
        Src = runtime::openSegmentSource(InputFile, Kind, SOpts, MaxElems);
        std::unique_ptr<runtime::SegmentCursor> C = Src->cursor();
        for (size_t I = 0; I != Src->chunkCount(); ++I)
          Tree.append(C->chunk(I));
        FileChunks = Src->chunkCount();
      } catch (const std::exception &E) {
        std::fprintf(stderr, "error: %s\n", E.what());
        return 2;
      }
      std::printf("loaded %llu element(s) from %s (%s source, %zu "
                  "chunks)\n",
                  (unsigned long long)Src->elements(), InputFile,
                  Src->kind(), FileChunks);
    }

    auto chunkData = [&](size_t I) -> std::vector<int64_t> {
      std::map<size_t, std::vector<int64_t>>::const_iterator It =
          Edits.find(I);
      if (It != Edits.end())
        return It->second;
      if (I < FileChunks) {
        std::unique_ptr<runtime::SegmentCursor> C = Src->cursor();
        runtime::SegmentView V = C->chunk(I);
        return std::vector<int64_t>(V.Data, V.Data + V.Size);
      }
      return Appended[I - FileChunks];
    };

    // Every malformed line gets a typed one-line diagnostic
    // (error[code]: ...) and the session keeps going; the codes are the
    // stable surface scripted drivers match on. A piped session that
    // hits EOF without an explicit `quit` exits nonzero — the driver's
    // input was truncated mid-conversation and silence would hide it.
    bool SawQuit = false;
    std::string Line;
    while (std::getline(std::cin, Line)) {
      std::istringstream In(Line);
      std::string Op;
      if (!(In >> Op) || Op[0] == '#')
        continue;
      try {
        if (Op == "quit") {
          SawQuit = true;
          break;
        }
        if (Op == "append" || Op == "edit") {
          size_t Idx = 0;
          if (Op == "edit" && !(In >> Idx)) {
            std::printf("error[bad-index]: edit expects a numeric chunk "
                        "index\n");
            continue;
          }
          std::vector<int64_t> Vals;
          int64_t V;
          while (In >> V)
            Vals.push_back(V);
          if (Vals.empty() || !In.eof()) {
            std::printf("error[bad-element]: %s expects integer "
                        "elements\n",
                        Op.c_str());
            continue;
          }
          runtime::SegmentView View = {Vals.data(), Vals.size()};
          if (Op == "append") {
            Tree.append(View);
            Appended.push_back(std::move(Vals));
            std::printf("ok: chunk %zu appended (%zu combine(s))\n",
                        Tree.chunks() - 1, Tree.lastUpdateCombines());
          } else {
            Tree.replace(Idx, View);
            Edits[Idx] = std::move(Vals);
            std::printf("ok: chunk %zu replaced (%zu combine(s))\n", Idx,
                        Tree.lastUpdateCombines());
          }
        } else if (Op == "query") {
          std::printf("query = %lld\n", (long long)Tree.query());
        } else if (Op == "verify") {
          // Ground truth: materialize the whole current stream once and
          // fold it flat through the reference interpreter.
          std::vector<int64_t> Flat;
          Flat.reserve(Tree.elements());
          for (size_t I = 0; I != Tree.chunks(); ++I) {
            std::vector<int64_t> C = chunkData(I);
            Flat.insert(Flat.end(), C.begin(), C.end());
          }
          int64_t Want = lang::runSerial(*P, Flat);
          int64_t Got = Tree.query();
          if (Want == Got)
            std::printf("verify ok: %lld (%llu elements)\n", (long long)Got,
                        (unsigned long long)Tree.elements());
          else
            std::printf("verify MISMATCH: tree=%lld refold=%lld\n",
                        (long long)Got, (long long)Want);
        } else if (Op == "stats") {
          std::printf("chunks=%zu elements=%llu support=%s\n", Tree.chunks(),
                      (unsigned long long)Tree.elements(),
                      Tree.support() == runtime::MergeTree::Support::LogPath
                          ? "log-path"
                          : "linear-merge");
        } else {
          std::printf("error[unknown-command]: '%s' (append/edit/query/"
                      "verify/stats/quit)\n",
                      Op.c_str());
        }
      } catch (const std::exception &E) {
        std::printf("error[runtime]: %s\n", E.what());
      }
      std::fflush(stdout);
    }
    // Interactive Ctrl-D is a normal goodbye; a script whose piped input
    // ran out before `quit` was cut off mid-command stream.
    if (!SawQuit && !isatty(STDIN_FILENO)) {
      std::fflush(stdout);
      std::fprintf(stderr, "error[eof]: input ended without 'quit'\n");
      return 1;
    }
    return 0;
  }
  if (std::strcmp(Cmd, "emit-cpp") == 0) {
    synth::SynthesisResult R = synthOrDie(*P);
    std::string Code = codegen::emitStandaloneCpp(*P, R.Plan);
    if (Code.empty()) {
      std::fprintf(stderr, "error: plan not supported by the emitter\n");
      return 1;
    }
    std::fputs(Code.c_str(), stdout);
    return 0;
  }
  if (std::strcmp(Cmd, "emit-mr") == 0) {
    synth::SynthesisResult R = synthOrDie(*P);
    std::string Code = codegen::emitMapReduceCpp(*P, R.Plan);
    if (Code.empty()) {
      std::fprintf(stderr, "error: only order-insensitive no-prefix "
                           "plans translate to MapReduce\n");
      return 1;
    }
    std::fputs(Code.c_str(), stdout);
    return 0;
  }
  if (std::strcmp(Cmd, "emit-chc") == 0) {
    synth::SynthesisResult R = synthOrDie(*P);
    std::string Text = chc::chcToSmtlib(*P, R.Plan);
    if (Text.empty()) {
      std::fprintf(stderr, "error: plan not encodable as CHCs\n");
      return 1;
    }
    std::fputs(Text.c_str(), stdout);
    return 0;
  }
  if (std::strcmp(Cmd, "certify") == 0) {
    synth::SynthesisResult R = synthOrDie(*P);
    chc::CertifyOptions Opts;
    if (argc > 3 && !parseUnsigned(argv[3], &Opts.TimeoutMs)) {
      std::fprintf(stderr, "error: certify expects a numeric timeout in "
                           "milliseconds, got '%s'\n",
                   argv[3]);
      return 2;
    }
    chc::CertifyOutcome C = chc::certify(*P, R.Plan, Opts);
    std::printf("%s: %s in %s (%u variables)\n", P->Name.c_str(),
                chc::certStatusName(C.Status),
                formatSeconds(C.Seconds).c_str(), C.NumVars);
    return C.Status == chc::CertStatus::Certified ? 0 : 1;
  }
  return usage(argv[0]);
}
