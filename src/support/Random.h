//===- support/Random.h - Deterministic PRNG ------------------------------==//
//
// A small, fast, deterministic PRNG (SplitMix64) used by workload
// generators and property tests. Deterministic seeding keeps the
// experiment harness reproducible across runs and machines.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SUPPORT_RANDOM_H
#define GRASSP_SUPPORT_RANDOM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace grassp {

/// SplitMix64 pseudo-random generator. Not cryptographic; used for
/// reproducible workload generation.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, N). Rejection-sampled, so the draw
  /// is exactly uniform (a plain `next() % N` over-weights the first
  /// 2^64 mod N values). Requires N > 0.
  uint64_t bounded(uint64_t N) {
    // Reject draws below 2^64 mod N, leaving a multiple of N outcomes.
    uint64_t Threshold = (0 - N) % N;
    for (;;) {
      uint64_t X = next();
      if (X >= Threshold)
        return X % N;
    }
  }

  /// Returns a uniform integer in [Lo, Hi] (inclusive). Requires Lo <= Hi.
  /// Exactly uniform (routed through bounded()).
  int64_t range(int64_t Lo, int64_t Hi) {
    uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
    return Lo + static_cast<int64_t>(bounded(Span));
  }

  /// Returns true with probability Num/Den. Requires Den > 0.
  bool chance(uint64_t Num, uint64_t Den) { return bounded(Den) < Num; }

private:
  uint64_t State;
};

/// Generates \p N elements uniformly drawn from \p Alphabet.
std::vector<int64_t> randomFromAlphabet(Rng &R,
                                        const std::vector<int64_t> &Alphabet,
                                        size_t N);

/// Generates \p N elements uniformly in [Lo, Hi].
std::vector<int64_t> randomInRange(Rng &R, int64_t Lo, int64_t Hi, size_t N);

} // namespace grassp

#endif // GRASSP_SUPPORT_RANDOM_H
