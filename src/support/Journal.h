//===- support/Journal.h - Crash-safe JSON-lines journals ----------------===//
//
// The one audited implementation of the append-only journal discipline
// that both synth-all (`synth::ParallelDriver`) and the serve solution
// cache persist through:
//
//  * One record per line, serialized as a single JSON object `{...}`.
//  * Appends are durable-on-crash at line granularity: JournalWriter
//    issues each line (with its trailing newline) as ONE write(2) to an
//    O_APPEND descriptor, so a line either reaches the kernel page
//    cache whole or not at all. A SIGKILL'd process keeps every line it
//    appended; only a torn *tail* (the write a crash interrupted at the
//    filesystem level) can be partial.
//  * Torn-line rejection on load: a line that does not both start with
//    '{' and end with '}' is skipped, never half-parsed.
//  * Later-duplicate-wins is the reader's contract: re-recording a key
//    appends a new line rather than rewriting the old one, and loaders
//    keep the last record per key.
//
// The companion primitive is atomicWriteFile(): full-file snapshots are
// written to a temp file in the same directory, fsync'd, and rename(2)'d
// into place, so a reader sees either the old snapshot or the new one,
// never a torn hybrid. (A fault-injected torn snapshot is exactly what
// the serve cache's journal-is-truth recovery is tested against.)
//
// The json* helpers are the same minimal field extractors synth-all
// always used — not a JSON parser, just enough for flat single-line
// records whose writers are also in this repo.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SUPPORT_JOURNAL_H
#define GRASSP_SUPPORT_JOURNAL_H

#include <string>
#include <vector>

namespace grassp {
namespace support {

/// Escapes `"` and `\` for a JSON string literal and drops control
/// characters (< 0x20) outright — journal records are single-line by
/// construction, so embedded newlines must never survive into a line.
std::string jsonEscape(const std::string &S);

/// Extracts "Key":"value" (string field) from a flat JSON-lines record.
bool jsonStringField(const std::string &Line, const std::string &Key,
                     std::string *Out);

/// Extracts "Key":number from a flat JSON-lines record.
bool jsonNumberField(const std::string &Line, const std::string &Key,
                     double *Out);

/// The torn-line filter: true when \p Line is `{...}`-delimited. A line
/// a crash cut short is missing its closing brace and must be rejected
/// outright rather than half-parsed.
bool journalLineWellFormed(const std::string &Line);

/// Loads every well-formed line of \p Path in file order (empty when
/// the file is absent). Callers apply their own per-key
/// later-duplicate-wins reduction on top.
std::vector<std::string> loadJournalLines(const std::string &Path);

/// Appends one record per call, each as a single write(2) of
/// "line\n" to an O_APPEND fd — the crash-durability contract above.
class JournalWriter {
public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter &) = delete;
  JournalWriter &operator=(const JournalWriter &) = delete;

  /// Opens (creating if needed) \p Path for appending. Returns false
  /// and stays closed on failure.
  bool open(const std::string &Path);
  bool isOpen() const { return Fd >= 0; }
  void close();

  /// Appends \p Line + '\n' as one write(2). False on I/O error (the
  /// writer stays open; the caller decides whether to keep going).
  bool append(const std::string &Line);

  /// fsync(2) the descriptor — callers that need the line to survive
  /// power loss (not just process death) call this after append().
  bool sync();

private:
  int Fd = -1;
};

/// Writes \p Content to \p Path atomically: temp file in the same
/// directory, fsync, rename(2) over the target. On success a concurrent
/// or crashed reader sees the old file or the new one, never a mix.
bool atomicWriteFile(const std::string &Path, const std::string &Content,
                     std::string *Err = nullptr);

} // namespace support
} // namespace grassp

#endif // GRASSP_SUPPORT_JOURNAL_H
