//===- support/Journal.cpp ------------------------------------------------==//

#include "support/Journal.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

namespace grassp {
namespace support {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20)
      continue;
    Out += C;
  }
  return Out;
}

bool jsonStringField(const std::string &Line, const std::string &Key,
                     std::string *Out) {
  std::string Needle = "\"" + Key + "\":\"";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return false;
  size_t Start = At + Needle.size();
  // Honor the writer's escaping: an unescaped '"' ends the value.
  std::string Val;
  size_t I = Start;
  for (; I < Line.size(); ++I) {
    char C = Line[I];
    if (C == '\\' && I + 1 < Line.size()) {
      Val += Line[++I];
      continue;
    }
    if (C == '"')
      break;
    Val += C;
  }
  if (I >= Line.size())
    return false; // unterminated string — torn mid-value.
  *Out = Val;
  return true;
}

bool jsonNumberField(const std::string &Line, const std::string &Key,
                     double *Out) {
  std::string Needle = "\"" + Key + "\":";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return false;
  const char *Start = Line.c_str() + At + Needle.size();
  char *End = nullptr;
  double V = std::strtod(Start, &End);
  if (End == Start)
    return false;
  *Out = V;
  return true;
}

bool journalLineWellFormed(const std::string &Line) {
  return Line.size() >= 2 && Line.front() == '{' && Line.back() == '}';
}

std::vector<std::string> loadJournalLines(const std::string &Path) {
  std::vector<std::string> Lines;
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (!journalLineWellFormed(Line))
      continue; // a torn tail from a crash is expected; skip it.
    Lines.push_back(Line);
  }
  return Lines;
}

JournalWriter::~JournalWriter() { close(); }

bool JournalWriter::open(const std::string &Path) {
  close();
  Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  return Fd >= 0;
}

void JournalWriter::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool JournalWriter::append(const std::string &Line) {
  if (Fd < 0)
    return false;
  std::string Rec = Line;
  Rec += '\n';
  // One write(2) per record: the line lands in the page cache whole, so
  // process death (even SIGKILL) after this call cannot tear it.
  size_t Off = 0;
  while (Off < Rec.size()) {
    ssize_t N = ::write(Fd, Rec.data() + Off, Rec.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool JournalWriter::sync() { return Fd >= 0 && ::fsync(Fd) == 0; }

bool atomicWriteFile(const std::string &Path, const std::string &Content,
                     std::string *Err) {
  auto fail = [&](const std::string &What) {
    if (Err)
      *Err = What + ": " + std::strerror(errno);
    return false;
  };
  std::string Tmp = Path + ".tmp.XXXXXX";
  std::vector<char> Buf(Tmp.begin(), Tmp.end());
  Buf.push_back('\0');
  int Fd = ::mkstemp(Buf.data());
  if (Fd < 0)
    return fail("mkstemp " + Tmp);
  Tmp.assign(Buf.data());
  size_t Off = 0;
  while (Off < Content.size()) {
    ssize_t N = ::write(Fd, Content.data() + Off, Content.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return fail("write " + Tmp);
    }
    Off += static_cast<size_t>(N);
  }
  // fsync before rename: otherwise a power cut can publish the name of
  // a file whose bytes never reached disk.
  if (::fsync(Fd) != 0) {
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return fail("fsync " + Tmp);
  }
  ::close(Fd);
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return fail("rename " + Tmp + " -> " + Path);
  }
  return true;
}

} // namespace support
} // namespace grassp
