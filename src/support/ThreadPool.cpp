//===- support/ThreadPool.cpp ---------------------------------------------==//

#include "support/ThreadPool.h"

#include <cassert>

namespace grassp {

ThreadPool::ThreadPool(unsigned NumThreads) {
  assert(NumThreads > 0 && "pool needs at least one worker");
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  // An error that was never collected by wait() is dropped here; count
  // it so a post-mortem (or a leak-hunting test) can still see it.
  if (FirstError)
    DroppedTotal += 1 + DroppedSinceWait;
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  QueueCv.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  IdleCv.wait(Lock, [this] { return Queue.empty() && Active == 0; });
  if (FirstError) {
    std::exception_ptr E = std::move(FirstError);
    FirstError = nullptr;
    uint64_t Dropped = DroppedSinceWait;
    DroppedSinceWait = 0;
    DroppedTotal += Dropped;
    Lock.unlock();
    if (Dropped == 0)
      std::rethrow_exception(E);
    // Surface the aggregate loss in the message when the type allows;
    // non-std::exception payloads are rethrown untouched.
    try {
      std::rethrow_exception(E);
    } catch (const std::exception &Ex) {
      throw std::runtime_error(std::string(Ex.what()) + " [+" +
                               std::to_string(Dropped) +
                               " more task exception(s) dropped]");
    }
  }
}

uint64_t ThreadPool::droppedExceptions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return DroppedTotal + DroppedSinceWait;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      QueueCv.wait(Lock, [this] { return ShuttingDown || !Queue.empty(); });
      if (ShuttingDown && Queue.empty())
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Active;
    }
    try {
      Task();
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!FirstError)
        FirstError = std::current_exception();
      else
        ++DroppedSinceWait;
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Active;
      if (Queue.empty() && Active == 0)
        IdleCv.notify_all();
    }
  }
}

} // namespace grassp
