//===- support/ThreadPool.cpp ---------------------------------------------==//

#include "support/ThreadPool.h"

#include <cassert>

namespace grassp {

ThreadPool::ThreadPool(unsigned NumThreads)
    : ThreadPool(PoolOptions{NumThreads, 0, CancelToken()}) {}

ThreadPool::ThreadPool(const PoolOptions &O) : Opts(O) {
  assert(Opts.NumThreads > 0 && "pool needs at least one worker");
  // Wake every sleeper when the pool's token fires: blocked submitters
  // give up, idle workers re-check, and drain()ers re-evaluate.
  TokenCallback = Opts.Token.onCancel([this] {
    std::lock_guard<std::mutex> Lock(Mutex);
    QueueCv.notify_all();
    SpaceCv.notify_all();
    IdleCv.notify_all();
  });
  Workers.reserve(Opts.NumThreads);
  for (unsigned I = 0; I != Opts.NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  // Unregister first: after this no callback can touch the dying pool.
  Opts.Token.removeOnCancel(TokenCallback);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  // An error that was never collected by wait() is dropped here; count
  // it so a post-mortem (or a leak-hunting test) can still see it.
  if (FirstError)
    DroppedTotal += 1 + DroppedSinceWait;
}

SubmitResult ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (Opts.QueueCap != 0)
      SpaceCv.wait(Lock, [this] {
        return Queue.size() < Opts.QueueCap || Opts.Token.cancelled();
      });
    if (Opts.Token.cancelled()) {
      ++Discarded;
      return SubmitResult::Cancelled;
    }
    Queue.push_back(std::move(Task));
  }
  QueueCv.notify_one();
  return SubmitResult::Ok;
}

SubmitResult ThreadPool::trySubmit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Opts.Token.cancelled()) {
      ++Discarded;
      return SubmitResult::Cancelled;
    }
    if (Opts.QueueCap != 0 && Queue.size() >= Opts.QueueCap)
      return SubmitResult::QueueFull;
    Queue.push_back(std::move(Task));
  }
  QueueCv.notify_one();
  return SubmitResult::Ok;
}

void ThreadPool::rethrowPendingError(std::unique_lock<std::mutex> &Lock) {
  if (!FirstError)
    return;
  std::exception_ptr E = std::move(FirstError);
  FirstError = nullptr;
  uint64_t Dropped = DroppedSinceWait;
  DroppedSinceWait = 0;
  DroppedTotal += Dropped;
  Lock.unlock();
  if (Dropped == 0)
    std::rethrow_exception(E);
  // Surface the aggregate loss in the message when the type allows;
  // non-std::exception payloads are rethrown untouched.
  try {
    std::rethrow_exception(E);
  } catch (const std::exception &Ex) {
    throw std::runtime_error(std::string(Ex.what()) + " [+" +
                             std::to_string(Dropped) +
                             " more task exception(s) dropped]");
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  IdleCv.wait(Lock, [this] { return Queue.empty() && Active == 0; });
  rethrowPendingError(Lock);
}

bool ThreadPool::drain(const Deadline &D) {
  std::unique_lock<std::mutex> Lock(Mutex);
  uint64_t DiscardedBefore = Discarded;
  // Phase 1: give queued work until the deadline (or the token).
  for (;;) {
    if (Queue.empty() && Active == 0) {
      rethrowPendingError(Lock);
      return Discarded == DiscardedBefore;
    }
    if (Opts.Token.cancelled() || D.expired())
      break;
    // Bounded waits double as the poll for token/deadline expiry; the
    // token callback and worker-idle notifications wake us earlier.
    auto Cap = Deadline::Clock::now() + std::chrono::milliseconds(50);
    IdleCv.wait_until(Lock, D.timeOr(Cap));
  }
  // Phase 2: shed what never started, then wait out the in-flight
  // tasks (cooperative tasks watching the same token return quickly).
  Discarded += Queue.size();
  Queue.clear();
  IdleCv.wait(Lock, [this] { return Active == 0; });
  bool RanEverything = Discarded == DiscardedBefore;
  rethrowPendingError(Lock);
  return RanEverything;
}

uint64_t ThreadPool::discardedTasks() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Discarded;
}

uint64_t ThreadPool::droppedExceptions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return DroppedTotal + DroppedSinceWait;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      QueueCv.wait(Lock, [this] { return ShuttingDown || !Queue.empty(); });
      if (ShuttingDown && Queue.empty())
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
      if (Opts.QueueCap != 0)
        SpaceCv.notify_one();
      // A fired token sheds the backlog here, one pop at a time: the
      // task is dropped un-run so wait()/drain() return promptly.
      if (Opts.Token.cancelled()) {
        ++Discarded;
        if (Queue.empty() && Active == 0)
          IdleCv.notify_all();
        continue;
      }
      ++Active;
    }
    try {
      Task();
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!FirstError)
        FirstError = std::current_exception();
      else
        ++DroppedSinceWait;
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Active;
      if (Queue.empty() && Active == 0)
        IdleCv.notify_all();
    }
  }
}

} // namespace grassp
