//===- support/ThreadPool.cpp ---------------------------------------------==//

#include "support/ThreadPool.h"

#include <cassert>

namespace grassp {

ThreadPool::ThreadPool(unsigned NumThreads) {
  assert(NumThreads > 0 && "pool needs at least one worker");
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  QueueCv.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  IdleCv.wait(Lock, [this] { return Queue.empty() && Active == 0; });
  if (FirstError) {
    std::exception_ptr E = std::move(FirstError);
    FirstError = nullptr;
    Lock.unlock();
    std::rethrow_exception(E);
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      QueueCv.wait(Lock, [this] { return ShuttingDown || !Queue.empty(); });
      if (ShuttingDown && Queue.empty())
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Active;
    }
    try {
      Task();
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Active;
      if (Queue.empty() && Active == 0)
        IdleCv.notify_all();
    }
  }
}

} // namespace grassp
