//===- support/Timing.h - Wall-clock timing helpers ----------------------===//
//
// Part of the GRASSP reproduction. Small stopwatch utilities used by the
// synthesis engine and the benchmark harnesses.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SUPPORT_TIMING_H
#define GRASSP_SUPPORT_TIMING_H

#include <chrono>
#include <cstdint>
#include <string>

namespace grassp {

/// A monotonic stopwatch. Starts on construction; \c seconds() and
/// \c millis() report the time elapsed since construction or the last
/// \c reset().
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Returns elapsed wall-clock seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns elapsed wall-clock milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Formats a duration in seconds as a short human-readable string such as
/// "1.056s" or "18m 23.1s" (the format used by the paper's Table 1).
std::string formatSeconds(double Seconds);

} // namespace grassp

#endif // GRASSP_SUPPORT_TIMING_H
