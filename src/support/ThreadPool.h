//===- support/ThreadPool.h - Minimal fixed-size thread pool -------------===//
//
// A small fixed-size thread pool used by the parallel runtime and the
// parallel synthesis driver. Tasks are std::function<void()>; \c wait()
// blocks until all submitted tasks have completed. The pool is also
// usable with a single worker, which the benchmark harness exploits on
// constrained machines.
//
// Tasks may throw: the first exception is captured and rethrown from the
// next \c wait(); later exceptions (and exceptions pending when the pool
// is destroyed without a wait) are discarded.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SUPPORT_THREADPOOL_H
#define GRASSP_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace grassp {

/// Fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished. If any task threw
  /// since the last wait(), rethrows the first captured exception (the
  /// pool itself stays usable).
  void wait();

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable QueueCv;
  std::condition_variable IdleCv;
  unsigned Active = 0;
  bool ShuttingDown = false;
  std::exception_ptr FirstError;
};

} // namespace grassp

#endif // GRASSP_SUPPORT_THREADPOOL_H
