//===- support/ThreadPool.h - Minimal fixed-size thread pool -------------===//
//
// A small fixed-size thread pool used by the parallel runtime and the
// parallel synthesis driver. Tasks are std::function<void()>; \c wait()
// blocks until all submitted tasks have completed. The pool is also
// usable with a single worker, which the benchmark harness exploits on
// constrained machines.
//
// Tasks may throw: the first exception is captured and rethrown from the
// next \c wait(). Later exceptions are not silently lost — the pool
// counts them, \c droppedExceptions() exposes the running total, and
// when the first error is a std::exception the rethrow carries the
// count in its message ("... [+N more task exception(s) dropped]").
// An error pending when the pool is destroyed without a wait is counted
// as dropped too (a destructor cannot throw).
//
// Admission control and cancellation (PoolOptions): a QueueCap bounds
// the number of queued-not-yet-running tasks — trySubmit() reports
// QueueFull instead of queueing unboundedly (the backpressure signal an
// admission layer needs), while submit() blocks interruptibly for
// space. A cancel token wired into the pool makes it shed: once the
// token fires, queued tasks are discarded instead of run (counted in
// discardedTasks()), new submissions are rejected, and wait()/drain()
// return as soon as the in-flight tasks — which are expected to watch
// the same token — come back. drain(Deadline) is the graceful-shutdown
// form of wait(): it gives queued work until the deadline, then
// discards whatever never started and waits only for the running tasks.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SUPPORT_THREADPOOL_H
#define GRASSP_SUPPORT_THREADPOOL_H

#include "support/Cancel.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace grassp {

/// How the pool disposed of one submission attempt.
enum class SubmitResult {
  Ok,        ///< Queued (or already running).
  QueueFull, ///< Bounded queue at capacity; caller should back off.
  Cancelled, ///< The pool's token fired; task dropped, not queued.
};

/// Construction-time knobs; the single-argument ThreadPool(N) ctor is
/// PoolOptions{N} with an unbounded queue and no token.
struct PoolOptions {
  unsigned NumThreads = 1;
  /// Max queued-not-running tasks; 0 = unbounded (legacy behavior).
  size_t QueueCap = 0;
  /// When this token fires the pool stops starting queued tasks and
  /// discards them; empty = never.
  CancelToken Token;
};

/// Fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumThreads);
  explicit ThreadPool(const PoolOptions &Opts);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker. With a QueueCap,
  /// blocks (interruptibly) until there is space; a task submitted
  /// after the pool's token fired is discarded and counted, and
  /// Cancelled is returned so bulk submitters can stop early. Never
  /// returns QueueFull (it waits instead; use trySubmit for that).
  SubmitResult submit(std::function<void()> Task);

  /// Non-blocking admission: QueueFull when the bounded queue is at
  /// capacity, Cancelled when the pool's token already fired.
  SubmitResult trySubmit(std::function<void()> Task);

  /// Blocks until every submitted task has finished. If any task threw
  /// since the last wait(), rethrows the first captured exception (the
  /// pool itself stays usable); when more than one task threw, the
  /// rethrown std::exception's message ends in
  /// "[+N more task exception(s) dropped]".
  void wait();

  /// Graceful shutdown: waits for idle like wait(), but only until
  /// \p D. On expiry (or when the pool's token fired), queued tasks
  /// that never started are discarded and only the in-flight tasks are
  /// waited for. Returns true when everything submitted actually ran.
  /// Pending task exceptions are rethrown exactly as from wait().
  bool drain(const Deadline &D);

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Tasks dropped un-run because the token fired or a drain deadline
  /// expired. Never reset.
  uint64_t discardedTasks() const;

  /// Cumulative count of task exceptions that were discarded because an
  /// earlier one was already captured (the destructor also counts an
  /// uncollected pending error). Never reset.
  uint64_t droppedExceptions() const;

private:
  void workerLoop();
  void rethrowPendingError(std::unique_lock<std::mutex> &Lock);

  PoolOptions Opts;
  uint64_t TokenCallback = 0;
  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  mutable std::mutex Mutex;
  std::condition_variable QueueCv;
  std::condition_variable SpaceCv; // waiters for bounded-queue space.
  std::condition_variable IdleCv;
  unsigned Active = 0;
  bool ShuttingDown = false;
  std::exception_ptr FirstError;
  uint64_t DroppedSinceWait = 0;  // dropped behind the pending FirstError.
  uint64_t DroppedTotal = 0;      // cumulative, exposed to callers.
  uint64_t Discarded = 0;         // tasks shed un-run.
};

} // namespace grassp

#endif // GRASSP_SUPPORT_THREADPOOL_H
