//===- support/ThreadPool.h - Minimal fixed-size thread pool -------------===//
//
// A small fixed-size thread pool used by the parallel runtime and the
// parallel synthesis driver. Tasks are std::function<void()>; \c wait()
// blocks until all submitted tasks have completed. The pool is also
// usable with a single worker, which the benchmark harness exploits on
// constrained machines.
//
// Tasks may throw: the first exception is captured and rethrown from the
// next \c wait(). Later exceptions are not silently lost — the pool
// counts them, \c droppedExceptions() exposes the running total, and
// when the first error is a std::exception the rethrow carries the
// count in its message ("... [+N more task exception(s) dropped]").
// An error pending when the pool is destroyed without a wait is counted
// as dropped too (a destructor cannot throw).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SUPPORT_THREADPOOL_H
#define GRASSP_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace grassp {

/// Fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished. If any task threw
  /// since the last wait(), rethrows the first captured exception (the
  /// pool itself stays usable); when more than one task threw, the
  /// rethrown std::exception's message ends in
  /// "[+N more task exception(s) dropped]".
  void wait();

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Cumulative count of task exceptions that were discarded because an
  /// earlier one was already captured (the destructor also counts an
  /// uncollected pending error). Never reset.
  uint64_t droppedExceptions() const;

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  mutable std::mutex Mutex;
  std::condition_variable QueueCv;
  std::condition_variable IdleCv;
  unsigned Active = 0;
  bool ShuttingDown = false;
  std::exception_ptr FirstError;
  uint64_t DroppedSinceWait = 0;  // dropped behind the pending FirstError.
  uint64_t DroppedTotal = 0;      // cumulative, exposed to callers.
};

} // namespace grassp

#endif // GRASSP_SUPPORT_THREADPOOL_H
