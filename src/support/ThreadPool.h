//===- support/ThreadPool.h - Minimal fixed-size thread pool -------------===//
//
// A small fixed-size thread pool used by the parallel runtime. Tasks are
// std::function<void()>; \c wait() blocks until all submitted tasks have
// completed. The pool is also usable with a single worker, which the
// benchmark harness exploits on constrained machines.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SUPPORT_THREADPOOL_H
#define GRASSP_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace grassp {

/// Fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void wait();

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable QueueCv;
  std::condition_variable IdleCv;
  unsigned Active = 0;
  bool ShuttingDown = false;
};

} // namespace grassp

#endif // GRASSP_SUPPORT_THREADPOOL_H
