//===- support/Args.h - Strict command-line number parsing ---------------===//
//
// Shared strict parsers for CLI tools and benchmark harnesses. Unlike
// std::atoi/atoll (which silently turn garbage into 0 — a zero-worker
// run or a zero-millisecond solver budget), these reject empty strings,
// trailing junk, and out-of-range values, so malformed arguments become
// hard usage errors at the call site.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SUPPORT_ARGS_H
#define GRASSP_SUPPORT_ARGS_H

#include <cctype>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>

namespace grassp {

/// Parses \p Arg as a base-10 unsigned; false on malformed or
/// out-of-range input (\p Out untouched on failure).
inline bool parseUnsigned(const char *Arg, unsigned *Out) {
  if (!Arg || !std::isdigit(static_cast<unsigned char>(*Arg)))
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long V = std::strtoul(Arg, &End, 10);
  if (End == Arg || *End != '\0' || errno == ERANGE ||
      V > std::numeric_limits<unsigned>::max())
    return false;
  *Out = static_cast<unsigned>(V);
  return true;
}

/// Parses \p Arg as a base-10 size_t; false on malformed input.
inline bool parseSize(const char *Arg, size_t *Out) {
  if (!Arg || !std::isdigit(static_cast<unsigned char>(*Arg)))
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(Arg, &End, 10);
  if (End == Arg || *End != '\0' || errno == ERANGE ||
      V > std::numeric_limits<size_t>::max())
    return false;
  *Out = static_cast<size_t>(V);
  return true;
}

/// Parses \p Arg as a base-10 uint64 (e.g. PRNG seeds).
inline bool parseSeed(const char *Arg, uint64_t *Out) {
  size_t V = 0;
  if (!parseSize(Arg, &V))
    return false;
  *Out = static_cast<uint64_t>(V);
  return true;
}

} // namespace grassp

#endif // GRASSP_SUPPORT_ARGS_H
