//===- support/Random.cpp --------------------------------------------------=//

#include "support/Random.h"

#include <cassert>

namespace grassp {

std::vector<int64_t> randomFromAlphabet(Rng &R,
                                        const std::vector<int64_t> &Alphabet,
                                        size_t N) {
  assert(!Alphabet.empty() && "alphabet must be non-empty");
  std::vector<int64_t> Out;
  Out.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Out.push_back(Alphabet[R.bounded(Alphabet.size())]);
  return Out;
}

std::vector<int64_t> randomInRange(Rng &R, int64_t Lo, int64_t Hi, size_t N) {
  std::vector<int64_t> Out;
  Out.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Out.push_back(R.range(Lo, Hi));
  return Out;
}

} // namespace grassp
