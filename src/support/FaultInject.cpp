//===- support/FaultInject.cpp --------------------------------------------==//

#include "support/FaultInject.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace grassp {

namespace {

/// FNV-1a over the site name; folded into the decision hash so distinct
/// sites draw from decorrelated streams of the same seed.
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// SplitMix64 finalizer: the stateless mixing step of support/Random.h,
/// applied to a combined (seed, site, index) word. Pure, so the same
/// (seed, site, index) always lands on the same verdict.
uint64_t mix(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

bool probabilityFires(double P, uint64_t Seed, uint64_t SiteHash,
                      uint64_t Index) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  uint64_t Draw = mix(Seed + 0x9e3779b97f4a7c15ULL * (SiteHash ^ Index));
  // Compare in double space; 2^64 as a double is exact.
  return static_cast<double>(Draw) < P * 18446744073709551616.0;
}

} // namespace

FaultInjectedError::FaultInjectedError(const std::string &Site, uint64_t Key)
    : std::runtime_error("injected fault at site '" + Site + "' (key " +
                         std::to_string(Key) + ")"),
      SiteName(Site), Key(Key) {}

void FaultInjector::arm(const std::string &Name, const FaultSpec &Spec) {
  std::unique_ptr<Site> &S = Sites[Name];
  if (!S)
    S = std::make_unique<Site>();
  S->Spec = Spec;
  S->Hits.store(0, std::memory_order_relaxed);
  S->Fires.store(0, std::memory_order_relaxed);
}

void FaultInjector::disarm(const std::string &Name) { Sites.erase(Name); }

bool FaultInjector::armed(const std::string &Name) const {
  return Sites.count(Name) != 0;
}

FaultInjector::Site *FaultInjector::find(const std::string &Name) const {
  auto It = Sites.find(Name);
  return It == Sites.end() ? nullptr : It->second.get();
}

bool FaultInjector::decide(const std::string &Name, bool Keyed,
                           uint64_t Key) {
  Site *S = find(Name);
  if (!S)
    return false;
  // Claim a hit index; for unkeyed sites it doubles as the decision index.
  uint64_t Hit = S->Hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const FaultSpec &Spec = S->Spec;

  bool Fire = false;
  if (Spec.EveryNth != 0 && Hit % Spec.EveryNth == 0)
    Fire = true;
  if (!Fire && Keyed && Spec.KeyModulo != 0 &&
      Key % Spec.KeyModulo == Spec.KeyResidue)
    Fire = true;
  if (!Fire && Keyed && !Spec.Keys.empty())
    Fire = std::find(Spec.Keys.begin(), Spec.Keys.end(), Key) !=
           Spec.Keys.end();
  if (!Fire)
    Fire = probabilityFires(Spec.Probability, Seed, fnv1a(Name),
                            Keyed ? Key : Hit);
  if (!Fire)
    return false;

  // Respect the fire cap; back out when this fire would exceed it.
  uint64_t Fired = S->Fires.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Fired > Spec.MaxFires) {
    S->Fires.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void FaultInjector::maybeThrow(const std::string &Site, uint64_t Key) {
  if (shouldFailKeyed(Site, Key))
    throw FaultInjectedError(Site, Key);
}

double FaultInjector::delayFor(const std::string &Site, uint64_t Key) {
  const FaultInjector::Site *S = find(Site);
  if (!S || S->Spec.DelaySeconds <= 0.0)
    return 0.0;
  return shouldFailKeyed(Site, Key) ? S->Spec.DelaySeconds : 0.0;
}

uint64_t FaultInjector::drawFor(const std::string &Site,
                                uint64_t Key) const {
  // Offset the stream so the parameter draw never correlates with the
  // fire/no-fire draw for the same (site, key).
  return mix(Seed + 0x9e3779b97f4a7c15ULL * (fnv1a(Site) ^ Key) +
             0x632be59bd9b4e019ULL);
}

FaultInjector::SiteStats
FaultInjector::stats(const std::string &Name) const {
  SiteStats St;
  if (const Site *S = find(Name)) {
    St.Hits = S->Hits.load(std::memory_order_relaxed);
    St.Fires = S->Fires.load(std::memory_order_relaxed);
  }
  return St;
}

uint64_t FaultInjector::totalFires() const {
  uint64_t Total = 0;
  for (const auto &KV : Sites)
    Total += KV.second->Fires.load(std::memory_order_relaxed);
  return Total;
}

std::string FaultInjector::describe() const {
  std::ostringstream OS;
  bool First = true;
  for (const auto &KV : Sites) {
    if (!First)
      OS << ", ";
    First = false;
    OS << KV.first << ": "
       << KV.second->Fires.load(std::memory_order_relaxed) << "/"
       << KV.second->Hits.load(std::memory_order_relaxed) << " fired";
  }
  return OS.str();
}

} // namespace grassp
