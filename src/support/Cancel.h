//===- support/Cancel.h - Cooperative cancellation and deadlines ---------===//
//
// The primitive that turns the batch pipeline into something a service
// can deadline and shed: a CancelToken is a shared flag that layers poll
// at their cooperative points, linked parent->child so cancelling a
// whole run fires every task, attempt, and sleep spawned under it.
//
//  * CancelToken — copyable handle to shared cancel state. A
//    default-constructed token is *empty*: it never cancels and costs
//    nothing, so every API can take one by default without behavior
//    change. CancelToken::root() mints live state; child() links a
//    subordinate token that fires when the parent fires (but can also
//    be cancelled alone, e.g. one synthesis task of a batch).
//  * Deadline — an absolute steady-clock point. child(Deadline)
//    attaches one; cancelled() then reports true once it passes, and
//    every wait in this file caps itself at the deadline. Children
//    inherit the earliest deadline on their ancestor chain.
//  * sleepFor/waitCancelledFor — interruptible sleeps: they return
//    early the moment the token (or an ancestor) fires, which is what
//    keeps retry backoff and injected straggler stalls from pinning a
//    worker after the run is dead.
//  * onCancel — callbacks run exactly once when the token fires
//    (immediately when already fired). Callbacks run under the state's
//    callback lock: removeOnCancel() returning guarantees the callback
//    is not and will never be in flight, so a caller may free what the
//    callback touches. Callbacks must not call back into the token.
//
// Deadline expiry is *passive*: nothing fires callbacks when a deadline
// passes with nobody looking. Layers that need an active bound (the
// SMT solver) combine the token with the deadline's remaining budget.
//
// installSignalSource() arms a process-wide root token fired by the
// first SIGINT/SIGTERM. The signal handler only sets a sig_atomic_t; a
// small watcher thread (joined at exit — never detached) notices within
// ~20ms, fires the token, and restores the default handler so a second
// Ctrl-C hard-kills a stuck process the classic way.
//
// installDrainSignalSource() layers graceful shutdown on top for
// long-lived services: once armed, the FIRST SIGTERM fires only the
// returned drain token (finish in-flight work, snapshot, exit 0) and
// re-arms the handlers; SIGINT — unchanged — or a SECOND SIGTERM still
// fires the hard root token and restores SIG_DFL. Batch tools that
// never arm drain keep the historical exit-fast semantics.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SUPPORT_CANCEL_H
#define GRASSP_SUPPORT_CANCEL_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>

namespace grassp {

namespace detail {
struct CancelState;
} // namespace detail

/// An absolute wall-clock bound on a piece of work. Default-constructed
/// deadlines never expire.
class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;
  static Deadline never() { return Deadline(); }
  /// A deadline \p Seconds from now; Seconds <= 0 is already expired.
  static Deadline after(double Seconds);
  static Deadline at(Clock::time_point When);

  bool isNever() const { return Never; }
  bool expired() const { return !Never && Clock::now() >= When; }

  /// Seconds until expiry; +infinity when never, 0 when already past.
  double remainingSeconds() const;

  /// Remaining budget in whole milliseconds, clamped to [1, CapMs] —
  /// the shape SMT timeouts want. CapMs == 0 means "no cap": the
  /// remaining time alone (and 0 when the deadline never expires).
  unsigned remainingMs(unsigned CapMs = 0) const;

  /// The tighter of the two deadlines.
  Deadline earliest(const Deadline &O) const;

  /// The wait bound: min(When, Fallback) — Fallback itself when never.
  Clock::time_point timeOr(Clock::time_point Fallback) const {
    return Never || Fallback < When ? Fallback : When;
  }

private:
  bool Never = true;
  Clock::time_point When{};
};

/// Copyable handle to shared cooperative-cancellation state. Empty
/// tokens (default-constructed) never cancel; all operations on them
/// are cheap no-ops, so APIs take a token by value with a default.
class CancelToken {
public:
  CancelToken() = default;

  /// Mints a fresh, independent cancellation root.
  static CancelToken root();

  /// True when this token carries live state (can ever cancel).
  bool valid() const { return State != nullptr; }

  /// A token that fires when this one fires but can also be cancelled
  /// on its own; \p D (if given) is attached on top of any inherited
  /// deadline (the earliest wins). child() of an empty token returns a
  /// fresh root carrying just \p D — callers need not special-case.
  CancelToken child(Deadline D = Deadline()) const;

  /// Fires this token and every descendant. Idempotent; no-op on empty.
  void cancel() const;

  /// True once cancel() ran here or on an ancestor, or the effective
  /// deadline passed.
  bool cancelled() const;

  /// The effective (earliest inherited) deadline.
  Deadline deadline() const;

  /// Blocks until cancelled, at most \p Seconds. Returns cancelled().
  bool waitCancelledFor(double Seconds) const;

  /// Interruptible sleep: true when the full duration elapsed, false
  /// when cancellation (or deadline expiry) cut it short. An empty
  /// token degrades to a plain sleep.
  bool sleepFor(double Seconds) const;

  /// Registers \p Fn to run exactly once when the token fires; runs it
  /// inline right now when the token is already cancelled. Returns an
  /// id for removeOnCancel (0 from an empty token: nothing registered).
  uint64_t onCancel(std::function<void()> Fn) const;

  /// Unregisters a callback. On return the callback is guaranteed not
  /// to be running and never to run.
  void removeOnCancel(uint64_t Id) const;

private:
  explicit CancelToken(std::shared_ptr<detail::CancelState> S)
      : State(std::move(S)) {}

  std::shared_ptr<detail::CancelState> State;
};

/// Arms the process-wide SIGINT/SIGTERM cancellation source (idempotent;
/// only the first call installs) and returns its root token. Every
/// long-running subcommand derives its run token from this.
CancelToken installSignalSource();

/// Arms SIGTERM-initiated graceful drain on the same source (idempotent)
/// and returns the drain token: the first SIGTERM fires it — and ONLY
/// it — then re-arms the handlers; SIGINT or a second SIGTERM fires the
/// hard root token from installSignalSource() exactly as before (a hard
/// fire cancels the drain token too, so drain waiters never outlive the
/// root). Services poll drain for "stop accepting, finish, exit clean"
/// and the root for "abandon everything now".
CancelToken installDrainSignalSource();

/// 128 + signal number once the source HARD-fired (130 for SIGINT, 143
/// for SIGTERM — the exit codes a shell expects), 0 while it has not.
/// A drain-only SIGTERM does not count: a clean drain exits 0.
int signalExitCode();

/// Sets SIGPIPE to SIG_IGN process-wide (idempotent). Every component
/// that writes to sockets or pipes calls this so a dead peer surfaces
/// as EPIPE through the normal I/O error path instead of killing the
/// process. FrameWriter also passes MSG_NOSIGNAL; this covers every
/// other write.
void ignoreSigpipe();

} // namespace grassp

#endif // GRASSP_SUPPORT_CANCEL_H
