//===- support/Timing.cpp -------------------------------------------------==//

#include "support/Timing.h"

#include <cstdio>

namespace grassp {

std::string formatSeconds(double Seconds) {
  char Buf[64];
  if (Seconds < 60.0) {
    std::snprintf(Buf, sizeof(Buf), "%.3fs", Seconds);
    return Buf;
  }
  int Minutes = static_cast<int>(Seconds / 60.0);
  double Rest = Seconds - Minutes * 60.0;
  std::snprintf(Buf, sizeof(Buf), "%dm %.1fs", Minutes, Rest);
  return Buf;
}

} // namespace grassp
