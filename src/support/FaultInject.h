//===- support/FaultInject.h - Deterministic seeded fault injection ------===//
//
// Named fault sites for chaos testing the parallel runtime, the cluster
// simulator, and the synthesis driver. Every trigger decision is a pure
// function of (seed, site name, hit index or caller key): a chaos run is
// replayable bit-for-bit from its seed, and keyed decisions are
// independent of thread interleaving entirely.
//
// Sites are armed before the parallel phase starts and consulted from
// worker threads; consultation is thread-safe and lock-free on the hot
// decision path (per-site atomics). A site that is not armed costs one
// hash-map lookup and decides "no fault".
//
// Canonical site names (see DESIGN.md, fault model):
//   runner.worker     segment worker attempt fails (throws)
//   runner.straggler  segment worker stalls for DelaySeconds
//   cluster.node      model node is dead for the whole job
//   cluster.straggler map task is slow (modeled, no real sleep)
//   synth.task        synthesis task attempt crashes (throws)
//
// The dist.* sites are REAL faults, not simulated ones: a worker
// *process* of the multi-process runtime (src/dist/) consults them when
// a task arrives and then actually dies, hangs, or ships a damaged
// frame — the coordinator's failure handling is exercised against the
// genuine article (SIGKILL, waitpid status decoding, checksum rejects):
//   dist.worker.exit   worker calls _exit(137) before computing
//   dist.worker.kill   worker raise(SIGKILL)s itself
//   dist.worker.hang   worker goes silent (no result, no heartbeat)
//   dist.frame.corrupt worker flips a byte in its reply frame
//
// The serve.* sites are the service-layer faults (src/serve/), also
// real: a solver worker process dies or wedges mid-solve, the cache
// snapshot is torn mid-write, a client vanishes mid-request:
//   serve.worker.kill    solver worker raise(SIGKILL)s on job receipt
//   serve.worker.hang    solver worker goes silent holding the job
//   serve.snapshot.torn  cache snapshot truncated at a drawn byte (and
//                        the journal kept), proving journal-is-truth
//   serve.journal.reopen the journal reopen after a snapshot fails,
//                        proving put() heals the closed writer
//   serve.client.disconnect  (client-side) connection dropped after a
//                        truncated request frame
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SUPPORT_FAULTINJECT_H
#define GRASSP_SUPPORT_FAULTINJECT_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace grassp {

/// Trigger configuration for one fault site. Triggers compose with OR;
/// MaxFires caps the total across all of them.
struct FaultSpec {
  /// Chance in [0, 1] that a given hit (or key) fires. The draw is a
  /// pure hash of (seed, site, hit index or key) — no RNG state.
  double Probability = 0.0;
  /// Hit-count trigger: fires on hits N, 2N, 3N, ... (1-based; 0 = off).
  uint64_t EveryNth = 0;
  /// Keyed trigger: fires when key % KeyModulo == KeyResidue (0 = off).
  /// Lets a test plant a fault on exactly segment 3 or node 7.
  uint64_t KeyModulo = 0;
  uint64_t KeyResidue = 0;
  /// Explicit keyed trigger: fires when the key is in this list. The
  /// most precise way to plant faults whose counters a test can predict.
  std::vector<uint64_t> Keys;
  /// Cap on total fires for the site (~0 = unlimited).
  uint64_t MaxFires = ~uint64_t{0};
  /// For delay sites: how long the victim stalls, in seconds. Callers
  /// must serve the stall interruptibly (poll their CancelToken, as the
  /// runner's straggler loop does) so an injected straggler cannot
  /// outlive a cancelled run.
  double DelaySeconds = 0.0;
};

/// Thrown by maybeThrow() when a site fires; fault-tolerant layers catch
/// it exactly like a real worker failure.
class FaultInjectedError : public std::runtime_error {
public:
  FaultInjectedError(const std::string &Site, uint64_t Key);
  const std::string &site() const { return SiteName; }
  uint64_t key() const { return Key; }

private:
  std::string SiteName;
  uint64_t Key;
};

/// The injector: a seed plus a set of armed sites.
class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed = 0) : Seed(Seed) {}

  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  uint64_t seed() const { return Seed; }

  /// Arms (or re-arms) \p Site with \p Spec. Not thread-safe against
  /// concurrent decisions — arm before the parallel phase.
  void arm(const std::string &Site, const FaultSpec &Spec);
  void disarm(const std::string &Site);
  bool armed(const std::string &Site) const;

  /// Hit-count decision: the Nth call for a site fires per the spec.
  /// The hit index is claimed atomically, so the *set* of firing hit
  /// indices is deterministic even when threads race for them.
  bool shouldFail(const std::string &Site) {
    return decide(Site, /*Keyed=*/false, 0);
  }

  /// Keyed decision: pure in (seed, site, key), fully independent of
  /// call order and thread interleaving.
  bool shouldFailKeyed(const std::string &Site, uint64_t Key) {
    return decide(Site, /*Keyed=*/true, Key);
  }

  /// Throws FaultInjectedError when the keyed decision fires.
  void maybeThrow(const std::string &Site, uint64_t Key);

  /// Seconds the caller should stall: the site's DelaySeconds when the
  /// keyed decision fires, else 0.
  double delayFor(const std::string &Site, uint64_t Key);

  /// A pure auxiliary 64-bit draw from (seed, site, key) — no counters
  /// touched, no fire recorded. For faults that need a deterministic
  /// parameter beyond fire/no-fire (e.g. which byte of a reply frame
  /// dist.frame.corrupt flips).
  uint64_t drawFor(const std::string &Site, uint64_t Key) const;

  struct SiteStats {
    uint64_t Hits = 0;
    uint64_t Fires = 0;
  };
  SiteStats stats(const std::string &Site) const;
  uint64_t totalFires() const;

  /// One-line summary, e.g. "runner.worker: 12/40 fired" per site.
  std::string describe() const;

private:
  struct Site {
    FaultSpec Spec;
    std::atomic<uint64_t> Hits{0};
    std::atomic<uint64_t> Fires{0};
  };

  bool decide(const std::string &Name, bool Keyed, uint64_t Key);
  Site *find(const std::string &Name) const;

  uint64_t Seed;
  // Pointer-valued map: Site addresses stay stable across arm() calls so
  // worker threads can hold no iterators and no locks on the hot path.
  std::map<std::string, std::unique_ptr<Site>> Sites;
};

} // namespace grassp

#endif // GRASSP_SUPPORT_FAULTINJECT_H
