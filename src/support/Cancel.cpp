//===- support/Cancel.cpp -------------------------------------------------==//

#include "support/Cancel.h"

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace grassp {

//===----------------------------------------------------------------------===//
// Deadline
//===----------------------------------------------------------------------===//

Deadline Deadline::after(double Seconds) {
  return at(Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(Seconds < 0 ? 0 : Seconds)));
}

Deadline Deadline::at(Clock::time_point When) {
  Deadline D;
  D.Never = false;
  D.When = When;
  return D;
}

double Deadline::remainingSeconds() const {
  if (Never)
    return std::numeric_limits<double>::infinity();
  double S = std::chrono::duration<double>(When - Clock::now()).count();
  return S > 0 ? S : 0;
}

unsigned Deadline::remainingMs(unsigned CapMs) const {
  if (Never)
    return CapMs;
  double Ms = remainingSeconds() * 1e3;
  double Cap = CapMs == 0 ? Ms : std::min<double>(Ms, CapMs);
  // Floor at 1ms: 0 means "no limit" to the SMT layer, which is the
  // opposite of an expired deadline.
  return Cap < 1 ? 1 : static_cast<unsigned>(Cap);
}

Deadline Deadline::earliest(const Deadline &O) const {
  if (Never)
    return O;
  if (O.Never)
    return *this;
  return When <= O.When ? *this : O;
}

//===----------------------------------------------------------------------===//
// CancelToken
//===----------------------------------------------------------------------===//

namespace detail {

struct CancelState {
  std::atomic<bool> Fired{false};
  /// Earliest deadline on the ancestor chain, frozen at creation.
  Deadline Dl;

  std::mutex Mutex; // guards Children and the Cv sleep predicate.
  std::condition_variable Cv;
  std::vector<std::weak_ptr<CancelState>> Children;

  /// Callbacks run (and are removed) under their own lock so that
  /// removeOnCancel() can guarantee "not in flight" without holding up
  /// concurrent cancelled() polls.
  std::mutex CallbackMutex;
  std::vector<std::pair<uint64_t, std::function<void()>>> Callbacks;
  uint64_t NextCallbackId = 1;
};

namespace {

/// Fires \p S and its whole subtree. Collects each node's callbacks
/// under CallbackMutex and runs them; wakes every sleeper.
void fireTree(const std::shared_ptr<CancelState> &S) {
  if (S->Fired.exchange(true, std::memory_order_acq_rel))
    return; // already fired; the subtree was handled then.

  std::vector<std::weak_ptr<CancelState>> Kids;
  {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Kids = S->Children;
  }
  S->Cv.notify_all();
  {
    // Run callbacks holding CallbackMutex: removeOnCancel() blocks on
    // the same lock, so once it returns no callback can be in flight.
    std::lock_guard<std::mutex> Lock(S->CallbackMutex);
    for (auto &KV : S->Callbacks)
      KV.second();
    S->Callbacks.clear();
  }
  for (const std::weak_ptr<CancelState> &W : Kids)
    if (std::shared_ptr<CancelState> Kid = W.lock())
      fireTree(Kid);
}

} // namespace

} // namespace detail

CancelToken CancelToken::root() {
  return CancelToken(std::make_shared<detail::CancelState>());
}

CancelToken CancelToken::child(Deadline D) const {
  auto Kid = std::make_shared<detail::CancelState>();
  if (!State) {
    Kid->Dl = D;
    return CancelToken(std::move(Kid));
  }
  Kid->Dl = State->Dl.earliest(D);
  bool ParentFired;
  {
    std::lock_guard<std::mutex> Lock(State->Mutex);
    // Registration and the fired-check are one atomic step: a parent
    // firing concurrently either sees the child in Children or we see
    // Fired here; either way the child ends up fired.
    ParentFired = State->Fired.load(std::memory_order_acquire);
    if (!ParentFired)
      State->Children.push_back(Kid);
  }
  if (ParentFired)
    Kid->Fired.store(true, std::memory_order_release);
  return CancelToken(std::move(Kid));
}

void CancelToken::cancel() const {
  if (State)
    detail::fireTree(State);
}

bool CancelToken::cancelled() const {
  if (!State)
    return false;
  return State->Fired.load(std::memory_order_acquire) || State->Dl.expired();
}

Deadline CancelToken::deadline() const {
  return State ? State->Dl : Deadline();
}

bool CancelToken::waitCancelledFor(double Seconds) const {
  if (!State)
    return false;
  if (cancelled())
    return true;
  auto Until = Deadline::Clock::now() +
               std::chrono::duration_cast<Deadline::Clock::duration>(
                   std::chrono::duration<double>(Seconds < 0 ? 0 : Seconds));
  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->Cv.wait_until(Lock, State->Dl.timeOr(Until), [this] {
    return State->Fired.load(std::memory_order_acquire);
  });
  Lock.unlock();
  return cancelled();
}

bool CancelToken::sleepFor(double Seconds) const {
  if (Seconds <= 0)
    return !cancelled();
  if (!State) {
    std::this_thread::sleep_for(std::chrono::duration<double>(Seconds));
    return true;
  }
  return !waitCancelledFor(Seconds);
}

uint64_t CancelToken::onCancel(std::function<void()> Fn) const {
  if (!State)
    return 0;
  {
    std::lock_guard<std::mutex> Lock(State->CallbackMutex);
    if (!State->Fired.load(std::memory_order_acquire)) {
      uint64_t Id = State->NextCallbackId++;
      State->Callbacks.emplace_back(Id, std::move(Fn));
      return Id;
    }
    // Already fired: fall through and run inline below, outside the
    // registration branch but still under the callback lock so the
    // "exactly once" and removal guarantees hold trivially.
    Fn();
  }
  return 0;
}

void CancelToken::removeOnCancel(uint64_t Id) const {
  if (!State || Id == 0)
    return;
  std::lock_guard<std::mutex> Lock(State->CallbackMutex);
  for (size_t I = 0; I != State->Callbacks.size(); ++I)
    if (State->Callbacks[I].first == Id) {
      State->Callbacks.erase(State->Callbacks.begin() + I);
      return;
    }
}

//===----------------------------------------------------------------------===//
// Signal source
//===----------------------------------------------------------------------===//

namespace {

/// The only thing a signal handler may do: set a lock-free flag. A
/// real atomic, not volatile sig_atomic_t: the handler runs on
/// whichever thread the kernel picked while the watcher reads from its
/// own thread, so this is cross-THREAD communication, not just
/// handler-vs-interrupted-code (volatile would be a data race there).
/// Lock-free atomic int stores are async-signal-safe.
std::atomic<int> GSignalFlag{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler needs a lock-free flag");

void signalHandler(int Sig) {
  GSignalFlag.store(Sig, std::memory_order_relaxed);
}

/// Polls the flag at ~20ms and fires the root token once. The thread is
/// joined from the static destructor — never detached — so TSan sees a
/// clean teardown and exit() cannot race a live watcher.
struct SignalSource {
  CancelToken Root = CancelToken::root();
  CancelToken Drain = CancelToken::root();
  /// Set by installDrainSignalSource(): the first SIGTERM fires Drain
  /// only; anything after it (or any SIGINT) hard-fires Root.
  std::atomic<bool> DrainArmed{false};
  std::atomic<int> FiredSignal{0};
  std::atomic<bool> Stop{false};
  std::thread Watcher;

  SignalSource() {
    std::signal(SIGINT, signalHandler);
    std::signal(SIGTERM, signalHandler);
    Watcher = std::thread([this] {
      bool DrainFired = false;
      while (!Stop.load(std::memory_order_acquire)) {
        int Sig = GSignalFlag.load(std::memory_order_relaxed);
        if (Sig != 0) {
          if (Sig == SIGTERM && !DrainFired &&
              DrainArmed.load(std::memory_order_acquire)) {
            // Graceful path: consume the flag, re-arm the handlers
            // (std::signal may be one-shot), fire only the drain
            // token, and keep watching for the hard follow-up.
            DrainFired = true;
            GSignalFlag.store(0, std::memory_order_relaxed);
            std::signal(SIGTERM, signalHandler);
            std::signal(SIGINT, signalHandler);
            Drain.cancel();
            continue;
          }
          FiredSignal.store(Sig, std::memory_order_release);
          // Restore defaults first: a second Ctrl-C during shutdown
          // kills the process the classic way instead of queueing.
          std::signal(SIGINT, SIG_DFL);
          std::signal(SIGTERM, SIG_DFL);
          // A hard fire implies drain: nothing may keep waiting on the
          // graceful token once the run is being torn down.
          Drain.cancel();
          Root.cancel();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  ~SignalSource() {
    Stop.store(true, std::memory_order_release);
    Watcher.join();
  }
};

SignalSource &signalSource() {
  static SignalSource S;
  return S;
}

} // namespace

CancelToken installSignalSource() { return signalSource().Root; }

CancelToken installDrainSignalSource() {
  SignalSource &S = signalSource();
  S.DrainArmed.store(true, std::memory_order_release);
  return S.Drain;
}

int signalExitCode() {
  int Sig = signalSource().FiredSignal.load(std::memory_order_acquire);
  return Sig == 0 ? 0 : 128 + Sig;
}

void ignoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

} // namespace grassp
