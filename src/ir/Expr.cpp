//===- ir/Expr.cpp ---------------------------------------------------------=//

#include "ir/Expr.h"

#include <cassert>
#include <functional>
#include <sstream>

namespace grassp {
namespace ir {

const char *typeName(TypeKind K) {
  switch (K) {
  case TypeKind::Int:
    return "Int";
  case TypeKind::Bool:
    return "Bool";
  case TypeKind::Bag:
    return "Bag";
  }
  return "?";
}

const char *opName(Op O) {
  switch (O) {
  case Op::ConstInt:
    return "const";
  case Op::ConstBool:
    return "constb";
  case Op::Var:
    return "var";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Div:
    return "div";
  case Op::Mod:
    return "mod";
  case Op::Neg:
    return "neg";
  case Op::Min:
    return "min";
  case Op::Max:
    return "max";
  case Op::Eq:
    return "eq";
  case Op::Ne:
    return "ne";
  case Op::Lt:
    return "lt";
  case Op::Le:
    return "le";
  case Op::Gt:
    return "gt";
  case Op::Ge:
    return "ge";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Not:
    return "not";
  case Op::Ite:
    return "ite";
  case Op::BagInsertDistinct:
    return "bag-insert";
  case Op::BagUnion:
    return "bag-union";
  case Op::BagSize:
    return "bag-size";
  }
  return "?";
}

Expr::Expr(Op O, TypeKind T, int64_t IV, bool BV, std::string VN,
           std::vector<ExprRef> Ops)
    : Opcode(O), Ty(T), IntVal(IV), BoolVal(BV), VarName(std::move(VN)),
      Operands(std::move(Ops)) {
  size_t H = std::hash<int>()(static_cast<int>(O));
  auto Mix = [&H](size_t X) {
    H ^= X + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  };
  Mix(std::hash<int64_t>()(IntVal));
  Mix(std::hash<bool>()(BoolVal));
  Mix(std::hash<std::string>()(VarName));
  for (const ExprRef &Opnd : Operands)
    Mix(Opnd->hash());
  HashCache = H;
}

int64_t Expr::intValue() const {
  assert(isConstInt() && "not a ConstInt");
  return IntVal;
}

bool Expr::boolValue() const {
  assert(isConstBool() && "not a ConstBool");
  return BoolVal;
}

const std::string &Expr::varName() const {
  assert(isVar() && "not a Var");
  return VarName;
}

static ExprRef makeNode(Op O, TypeKind Ty, int64_t IV, bool BV,
                        std::string VN, std::vector<ExprRef> Ops) {
  return std::make_shared<Expr>(O, Ty, IV, BV, std::move(VN), std::move(Ops));
}

ExprRef constInt(int64_t V) {
  return makeNode(Op::ConstInt, TypeKind::Int, V, false, "", {});
}

ExprRef constBool(bool V) {
  return makeNode(Op::ConstBool, TypeKind::Bool, 0, V, "", {});
}

ExprRef var(const std::string &Name, TypeKind Ty) {
  return makeNode(Op::Var, Ty, 0, false, Name, {});
}

bool structurallyEqual(const ExprRef &A, const ExprRef &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B)
    return false;
  if (A->hash() != B->hash() || A->getOp() != B->getOp() ||
      A->getType() != B->getType() ||
      A->numOperands() != B->numOperands())
    return false;
  switch (A->getOp()) {
  case Op::ConstInt:
    return A->intValue() == B->intValue();
  case Op::ConstBool:
    return A->boolValue() == B->boolValue();
  case Op::Var:
    return A->varName() == B->varName();
  default:
    break;
  }
  for (unsigned I = 0, E = A->numOperands(); I != E; ++I)
    if (!structurallyEqual(A->operand(I), B->operand(I)))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Folding builders
//===----------------------------------------------------------------------===//

ExprRef add(ExprRef A, ExprRef B) {
  assert(A->getType() == TypeKind::Int && B->getType() == TypeKind::Int);
  if (A->isConstInt() && B->isConstInt())
    return constInt(A->intValue() + B->intValue());
  if (A->isConstInt() && A->intValue() == 0)
    return B;
  if (B->isConstInt() && B->intValue() == 0)
    return A;
  return makeNode(Op::Add, TypeKind::Int, 0, false, "", {A, B});
}

ExprRef sub(ExprRef A, ExprRef B) {
  assert(A->getType() == TypeKind::Int && B->getType() == TypeKind::Int);
  if (A->isConstInt() && B->isConstInt())
    return constInt(A->intValue() - B->intValue());
  if (B->isConstInt() && B->intValue() == 0)
    return A;
  if (structurallyEqual(A, B))
    return constInt(0);
  return makeNode(Op::Sub, TypeKind::Int, 0, false, "", {A, B});
}

ExprRef mul(ExprRef A, ExprRef B) {
  assert(A->getType() == TypeKind::Int && B->getType() == TypeKind::Int);
  if (A->isConstInt() && B->isConstInt())
    return constInt(A->intValue() * B->intValue());
  if (A->isConstInt() && A->intValue() == 1)
    return B;
  if (B->isConstInt() && B->intValue() == 1)
    return A;
  if ((A->isConstInt() && A->intValue() == 0) ||
      (B->isConstInt() && B->intValue() == 0))
    return constInt(0);
  return makeNode(Op::Mul, TypeKind::Int, 0, false, "", {A, B});
}

/// Euclidean division matching SMT-LIB `div` semantics for positive
/// divisors (the only use in this codebase is "average" with count > 0);
/// we fold only when the divisor is a positive constant.
static int64_t euclidDiv(int64_t A, int64_t B) {
  int64_t Q = A / B;
  if (A % B != 0 && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

ExprRef intDiv(ExprRef A, ExprRef B) {
  assert(A->getType() == TypeKind::Int && B->getType() == TypeKind::Int);
  if (A->isConstInt() && B->isConstInt() && B->intValue() > 0)
    return constInt(euclidDiv(A->intValue(), B->intValue()));
  if (B->isConstInt() && B->intValue() == 1)
    return A;
  return makeNode(Op::Div, TypeKind::Int, 0, false, "", {A, B});
}

/// Euclidean remainder matching SMT-LIB `mod`: result is in [0, |B|).
static int64_t euclidMod(int64_t A, int64_t B) {
  int64_t R = A % B;
  if (R < 0)
    R += (B < 0 ? -B : B);
  return R;
}

ExprRef intMod(ExprRef A, ExprRef B) {
  assert(A->getType() == TypeKind::Int && B->getType() == TypeKind::Int);
  if (A->isConstInt() && B->isConstInt() && B->intValue() != 0)
    return constInt(euclidMod(A->intValue(), B->intValue()));
  return makeNode(Op::Mod, TypeKind::Int, 0, false, "", {A, B});
}

ExprRef neg(ExprRef A) {
  assert(A->getType() == TypeKind::Int);
  if (A->isConstInt())
    return constInt(-A->intValue());
  if (A->getOp() == Op::Neg)
    return A->operand(0);
  return makeNode(Op::Neg, TypeKind::Int, 0, false, "", {A});
}

ExprRef smin(ExprRef A, ExprRef B) {
  assert(A->getType() == TypeKind::Int && B->getType() == TypeKind::Int);
  if (A->isConstInt() && B->isConstInt())
    return constInt(std::min(A->intValue(), B->intValue()));
  if (structurallyEqual(A, B))
    return A;
  return makeNode(Op::Min, TypeKind::Int, 0, false, "", {A, B});
}

ExprRef smax(ExprRef A, ExprRef B) {
  assert(A->getType() == TypeKind::Int && B->getType() == TypeKind::Int);
  if (A->isConstInt() && B->isConstInt())
    return constInt(std::max(A->intValue(), B->intValue()));
  if (structurallyEqual(A, B))
    return A;
  return makeNode(Op::Max, TypeKind::Int, 0, false, "", {A, B});
}

static ExprRef makeCmp(Op O, ExprRef A, ExprRef B) {
  assert(A->getType() == TypeKind::Int && B->getType() == TypeKind::Int);
  if (A->isConstInt() && B->isConstInt()) {
    int64_t X = A->intValue(), Y = B->intValue();
    switch (O) {
    case Op::Eq:
      return constBool(X == Y);
    case Op::Ne:
      return constBool(X != Y);
    case Op::Lt:
      return constBool(X < Y);
    case Op::Le:
      return constBool(X <= Y);
    case Op::Gt:
      return constBool(X > Y);
    case Op::Ge:
      return constBool(X >= Y);
    default:
      break;
    }
  }
  if (structurallyEqual(A, B)) {
    switch (O) {
    case Op::Eq:
    case Op::Le:
    case Op::Ge:
      return constBool(true);
    case Op::Ne:
    case Op::Lt:
    case Op::Gt:
      return constBool(false);
    default:
      break;
    }
  }
  return makeNode(O, TypeKind::Bool, 0, false, "", {A, B});
}

ExprRef eq(ExprRef A, ExprRef B) {
  if (A->getType() == TypeKind::Bool) {
    assert(B->getType() == TypeKind::Bool);
    // Boolean equality as xnor via ite.
    return ite(A, B, lnot(B));
  }
  return makeCmp(Op::Eq, A, B);
}
ExprRef ne(ExprRef A, ExprRef B) {
  if (A->getType() == TypeKind::Bool)
    return lnot(eq(A, B));
  return makeCmp(Op::Ne, A, B);
}
ExprRef lt(ExprRef A, ExprRef B) { return makeCmp(Op::Lt, A, B); }
ExprRef le(ExprRef A, ExprRef B) { return makeCmp(Op::Le, A, B); }
ExprRef gt(ExprRef A, ExprRef B) { return makeCmp(Op::Gt, A, B); }
ExprRef ge(ExprRef A, ExprRef B) { return makeCmp(Op::Ge, A, B); }

ExprRef land(ExprRef A, ExprRef B) {
  assert(A->getType() == TypeKind::Bool && B->getType() == TypeKind::Bool);
  if (A->isConstBool())
    return A->boolValue() ? B : constBool(false);
  if (B->isConstBool())
    return B->boolValue() ? A : constBool(false);
  if (structurallyEqual(A, B))
    return A;
  return makeNode(Op::And, TypeKind::Bool, 0, false, "", {A, B});
}

ExprRef lor(ExprRef A, ExprRef B) {
  assert(A->getType() == TypeKind::Bool && B->getType() == TypeKind::Bool);
  if (A->isConstBool())
    return A->boolValue() ? constBool(true) : B;
  if (B->isConstBool())
    return B->boolValue() ? constBool(true) : A;
  if (structurallyEqual(A, B))
    return A;
  return makeNode(Op::Or, TypeKind::Bool, 0, false, "", {A, B});
}

ExprRef lnot(ExprRef A) {
  assert(A->getType() == TypeKind::Bool);
  if (A->isConstBool())
    return constBool(!A->boolValue());
  if (A->getOp() == Op::Not)
    return A->operand(0);
  return makeNode(Op::Not, TypeKind::Bool, 0, false, "", {A});
}

ExprRef ite(ExprRef C, ExprRef T, ExprRef E) {
  assert(C->getType() == TypeKind::Bool && "ite condition must be Bool");
  assert(T->getType() == E->getType() && "ite branches must agree");
  if (C->isConstBool())
    return C->boolValue() ? T : E;
  if (structurallyEqual(T, E))
    return T;
  // ite(c, true, false) == c; ite(c, false, true) == !c.
  if (T->getType() == TypeKind::Bool && T->isConstBool() && E->isConstBool()) {
    if (T->boolValue() && !E->boolValue())
      return C;
    if (!T->boolValue() && E->boolValue())
      return lnot(C);
  }
  if (C->getOp() == Op::Not)
    return ite(C->operand(0), E, T);
  return makeNode(Op::Ite, T->getType(), 0, false, "", {C, T, E});
}

ExprRef bagInsertDistinct(ExprRef Bag, ExprRef V) {
  assert(Bag->getType() == TypeKind::Bag && V->getType() == TypeKind::Int);
  return makeNode(Op::BagInsertDistinct, TypeKind::Bag, 0, false, "",
                  {Bag, V});
}

ExprRef bagUnion(ExprRef A, ExprRef B) {
  assert(A->getType() == TypeKind::Bag && B->getType() == TypeKind::Bag);
  return makeNode(Op::BagUnion, TypeKind::Bag, 0, false, "", {A, B});
}

ExprRef bagSize(ExprRef Bag) {
  assert(Bag->getType() == TypeKind::Bag);
  return makeNode(Op::BagSize, TypeKind::Int, 0, false, "", {Bag});
}

ExprRef binary(Op O, ExprRef A, ExprRef B) {
  switch (O) {
  case Op::Add:
    return add(A, B);
  case Op::Sub:
    return sub(A, B);
  case Op::Mul:
    return mul(A, B);
  case Op::Div:
    return intDiv(A, B);
  case Op::Mod:
    return intMod(A, B);
  case Op::Min:
    return smin(A, B);
  case Op::Max:
    return smax(A, B);
  case Op::Eq:
    return eq(A, B);
  case Op::Ne:
    return ne(A, B);
  case Op::Lt:
    return lt(A, B);
  case Op::Le:
    return le(A, B);
  case Op::Gt:
    return gt(A, B);
  case Op::Ge:
    return ge(A, B);
  case Op::And:
    return land(A, B);
  case Op::Or:
    return lor(A, B);
  case Op::BagInsertDistinct:
    return bagInsertDistinct(A, B);
  case Op::BagUnion:
    return bagUnion(A, B);
  default:
    assert(false && "not a binary op");
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Queries and transforms
//===----------------------------------------------------------------------===//

unsigned exprSize(const ExprRef &E) {
  unsigned N = 1;
  for (const ExprRef &Opnd : E->operands())
    N += exprSize(Opnd);
  return N;
}

void collectVars(const ExprRef &E, std::map<std::string, TypeKind> &Out) {
  if (E->isVar()) {
    Out.emplace(E->varName(), E->getType());
    return;
  }
  for (const ExprRef &Opnd : E->operands())
    collectVars(Opnd, Out);
}

void collectIntConstants(const ExprRef &E, std::set<int64_t> &Out) {
  if (E->isConstInt()) {
    Out.insert(E->intValue());
    return;
  }
  for (const ExprRef &Opnd : E->operands())
    collectIntConstants(Opnd, Out);
}

ExprRef substitute(const ExprRef &E,
                   const std::map<std::string, ExprRef> &Subst) {
  if (E->isVar()) {
    auto It = Subst.find(E->varName());
    if (It == Subst.end())
      return E;
    assert(It->second->getType() == E->getType() &&
           "substitution changes type");
    return It->second;
  }
  if (E->numOperands() == 0)
    return E;
  std::vector<ExprRef> NewOps;
  NewOps.reserve(E->numOperands());
  bool Changed = false;
  for (const ExprRef &Opnd : E->operands()) {
    ExprRef N = substitute(Opnd, Subst);
    Changed |= (N.get() != Opnd.get());
    NewOps.push_back(std::move(N));
  }
  if (!Changed)
    return E;
  switch (E->getOp()) {
  case Op::Neg:
    return neg(NewOps[0]);
  case Op::Not:
    return lnot(NewOps[0]);
  case Op::BagSize:
    return bagSize(NewOps[0]);
  case Op::Ite:
    return ite(NewOps[0], NewOps[1], NewOps[2]);
  default:
    return binary(E->getOp(), NewOps[0], NewOps[1]);
  }
}

static void printExpr(const ExprRef &E, std::ostringstream &OS) {
  auto Infix = [&](const char *Sym) {
    OS << '(';
    printExpr(E->operand(0), OS);
    OS << ' ' << Sym << ' ';
    printExpr(E->operand(1), OS);
    OS << ')';
  };
  auto Call = [&](const char *Name) {
    OS << Name << '(';
    for (unsigned I = 0, N = E->numOperands(); I != N; ++I) {
      if (I)
        OS << ", ";
      printExpr(E->operand(I), OS);
    }
    OS << ')';
  };
  switch (E->getOp()) {
  case Op::ConstInt:
    OS << E->intValue();
    return;
  case Op::ConstBool:
    OS << (E->boolValue() ? "true" : "false");
    return;
  case Op::Var:
    OS << E->varName();
    return;
  case Op::Add:
    return Infix("+");
  case Op::Sub:
    return Infix("-");
  case Op::Mul:
    return Infix("*");
  case Op::Div:
    return Infix("/");
  case Op::Mod:
    return Infix("%");
  case Op::Eq:
    return Infix("==");
  case Op::Ne:
    return Infix("!=");
  case Op::Lt:
    return Infix("<");
  case Op::Le:
    return Infix("<=");
  case Op::Gt:
    return Infix(">");
  case Op::Ge:
    return Infix(">=");
  case Op::And:
    return Infix("&&");
  case Op::Or:
    return Infix("||");
  case Op::Neg:
    OS << "-";
    printExpr(E->operand(0), OS);
    return;
  case Op::Not:
    OS << "!";
    printExpr(E->operand(0), OS);
    return;
  case Op::Min:
    return Call("min");
  case Op::Max:
    return Call("max");
  case Op::Ite:
    return Call("ite");
  case Op::BagInsertDistinct:
    return Call("bagInsert");
  case Op::BagUnion:
    return Call("bagUnion");
  case Op::BagSize:
    return Call("bagSize");
  }
}

std::string toString(const ExprRef &E) {
  std::ostringstream OS;
  printExpr(E, OS);
  return OS.str();
}

} // namespace ir
} // namespace grassp
