//===- ir/Matchers.h - Structural analyses over step expressions ---------===//
//
// Analyses used by the conditional-prefix (stage 3) synthesis:
//
//  * step-shape analysis: which variables occur at *value* positions of a
//    field-update expression vs. only inside `ite` conditions. A state
//    field has finite control range when its update only ever assigns
//    constants or other finite-control fields (the input may steer the
//    choice but never flows into the value).
//
//  * accumulator-transform classification: once control fields and the
//    input element are fixed to concrete values, an accumulator field's
//    update folds to one of a small algebra of unary transforms
//    (identity, +c, max c, min c, := c). These transforms compose, which
//    is what lets a prefix of arbitrary length be summarized by the
//    synthesized `sum` function (paper Sect. 7).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_IR_MATCHERS_H
#define GRASSP_IR_MATCHERS_H

#include "ir/Expr.h"

#include <cstdint>
#include <set>
#include <string>

namespace grassp {
namespace ir {

/// Result of analyzing the shape of a field-update expression.
struct StepShape {
  /// Variables occurring at value positions (outside ite conditions).
  std::set<std::string> ValueVars;
  /// Variables occurring inside ite conditions or comparisons.
  std::set<std::string> CondVars;
  /// True when a value position contains arithmetic (add/sub/mul/div/
  /// neg/min/max) — such a field can take unboundedly many values.
  bool ValueHasArith = false;
};

/// Computes the \c StepShape of \p E.
StepShape analyzeStepShape(const ExprRef &E);

/// A unary transform over a single accumulator value. Closed under
/// composition within one flavour (+, max, min), plus identity and
/// constant assignment; \c Unknown is the failure element.
struct AccTransform {
  enum Kind { Id, Plus, MaxC, MinC, Set, Unknown };
  Kind K = Id;
  int64_t C = 0;

  static AccTransform id() { return {Id, 0}; }
  static AccTransform unknown() { return {Unknown, 0}; }
  static AccTransform plus(int64_t C) { return C == 0 ? id() : AccTransform{Plus, C}; }
  static AccTransform maxc(int64_t C) { return {MaxC, C}; }
  static AccTransform minc(int64_t C) { return {MinC, C}; }
  static AccTransform set(int64_t C) { return {Set, C}; }

  bool isUnknown() const { return K == Unknown; }

  /// Applies the transform to \p A.
  int64_t apply(int64_t A) const;

  bool operator==(const AccTransform &O) const { return K == O.K && C == O.C; }
};

/// Returns "Second after First" (apply First, then Second); Unknown if the
/// composition leaves the representable family.
AccTransform composeTransforms(const AccTransform &First,
                               const AccTransform &Second);

/// Classifies expression \p E — assumed to mention at most the single
/// variable \p AccName — as a transform of that variable. Returns Unknown
/// when \p E does not fit the algebra (e.g. the accumulator occurs inside
/// a condition, or under multiplication).
AccTransform classifyAccStep(const ExprRef &E, const std::string &AccName);

} // namespace ir
} // namespace grassp

#endif // GRASSP_IR_MATCHERS_H
