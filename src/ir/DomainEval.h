//===- ir/DomainEval.h - Branch-free evaluation over abstract domains ----===//
//
// GRASSP evaluates the same program semantics in two domains:
//
//  * concretely (int64 scalars) — the reference interpreter used by the
//    runtime, the counterexample corpus, and property tests; and
//  * symbolically (IR expressions over fresh variables) — used by the
//    bounded equivalence verifier, which lowers the resulting terms to Z3.
//
// To guarantee that the verifier checks exactly what the runtime executes,
// evaluation is written once, branch-free (all control flow is `ite`), and
// templated over a *scalar policy*. Bags are represented uniformly as a
// list of (value, keep-flag) slots so that insert-if-absent is expressible
// without data-dependent control flow.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_IR_DOMAINEVAL_H
#define GRASSP_IR_DOMAINEVAL_H

#include "ir/Expr.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace grassp {
namespace ir {

/// A value in some domain: either a scalar (Int/Bool) or a bag of
/// (value, keep) slots. Slots with a false keep-flag are logically absent;
/// this representation makes duplicate-free insertion branch-free.
template <class S> struct DomainValue {
  using Scalar = typename S::Scalar;
  Scalar Sc{};
  bool IsBag = false;
  std::vector<std::pair<Scalar, Scalar>> Bag;

  static DomainValue scalar(Scalar V) {
    DomainValue R;
    R.Sc = std::move(V);
    return R;
  }
  static DomainValue emptyBag() {
    DomainValue R;
    R.IsBag = true;
    return R;
  }
};

/// Concrete scalar policy: int64 arithmetic, bools as 0/1.
struct ConcretePolicy {
  using Scalar = int64_t;

  Scalar constInt(int64_t V) { return V; }
  Scalar constBool(bool V) { return V ? 1 : 0; }
  Scalar add(Scalar A, Scalar B) { return A + B; }
  Scalar sub(Scalar A, Scalar B) { return A - B; }
  Scalar mul(Scalar A, Scalar B) { return A * B; }
  Scalar intDiv(Scalar A, Scalar B) {
    // Euclidean division; matches SMT-LIB `div`. Division by zero is
    // defined (arbitrarily) as zero to keep the interpreter total.
    if (B == 0)
      return 0;
    Scalar Q = A / B;
    if (A % B != 0 && ((A < 0) != (B < 0)))
      --Q;
    return Q;
  }
  Scalar intMod(Scalar A, Scalar B) {
    if (B == 0)
      return 0;
    Scalar R = A % B;
    if (R < 0)
      R += (B < 0 ? -B : B);
    return R;
  }
  Scalar negate(Scalar A) { return -A; }
  Scalar smin(Scalar A, Scalar B) { return A < B ? A : B; }
  Scalar smax(Scalar A, Scalar B) { return A > B ? A : B; }
  Scalar eq(Scalar A, Scalar B) { return A == B; }
  Scalar ne(Scalar A, Scalar B) { return A != B; }
  Scalar lt(Scalar A, Scalar B) { return A < B; }
  Scalar le(Scalar A, Scalar B) { return A <= B; }
  Scalar gt(Scalar A, Scalar B) { return A > B; }
  Scalar ge(Scalar A, Scalar B) { return A >= B; }
  Scalar land(Scalar A, Scalar B) { return (A != 0 && B != 0) ? 1 : 0; }
  Scalar lor(Scalar A, Scalar B) { return (A != 0 || B != 0) ? 1 : 0; }
  Scalar lnot(Scalar A) { return A == 0 ? 1 : 0; }
  Scalar ite(Scalar C, Scalar T, Scalar E) { return C != 0 ? T : E; }
};

/// Symbolic scalar policy: builds IR terms (which the SMT layer lowers).
struct SymbolicPolicy {
  using Scalar = ExprRef;

  Scalar constInt(int64_t V) { return ir::constInt(V); }
  Scalar constBool(bool V) { return ir::constBool(V); }
  Scalar add(Scalar A, Scalar B) { return ir::add(A, B); }
  Scalar sub(Scalar A, Scalar B) { return ir::sub(A, B); }
  Scalar mul(Scalar A, Scalar B) { return ir::mul(A, B); }
  Scalar intDiv(Scalar A, Scalar B) { return ir::intDiv(A, B); }
  Scalar intMod(Scalar A, Scalar B) { return ir::intMod(A, B); }
  Scalar negate(Scalar A) { return ir::neg(A); }
  Scalar smin(Scalar A, Scalar B) { return ir::smin(A, B); }
  Scalar smax(Scalar A, Scalar B) { return ir::smax(A, B); }
  Scalar eq(Scalar A, Scalar B) { return ir::eq(A, B); }
  Scalar ne(Scalar A, Scalar B) { return ir::ne(A, B); }
  Scalar lt(Scalar A, Scalar B) { return ir::lt(A, B); }
  Scalar le(Scalar A, Scalar B) { return ir::le(A, B); }
  Scalar gt(Scalar A, Scalar B) { return ir::gt(A, B); }
  Scalar ge(Scalar A, Scalar B) { return ir::ge(A, B); }
  Scalar land(Scalar A, Scalar B) { return ir::land(A, B); }
  Scalar lor(Scalar A, Scalar B) { return ir::lor(A, B); }
  Scalar lnot(Scalar A) { return ir::lnot(A); }
  Scalar ite(Scalar C, Scalar T, Scalar E) { return ir::ite(C, T, E); }
};

template <class S>
using DomainEnv = std::map<std::string, DomainValue<S>>;

/// Returns a Bool scalar meaning "value \p V occurs in \p Bag".
template <class S>
typename S::Scalar bagContains(S &P, const DomainValue<S> &Bag,
                               const typename S::Scalar &V) {
  typename S::Scalar Present = P.constBool(false);
  for (const auto &Slot : Bag.Bag)
    Present = P.lor(Present, P.land(Slot.second, P.eq(Slot.first, V)));
  return Present;
}

/// Inserts \p V into \p Bag unless present; returns the new bag.
template <class S>
DomainValue<S> bagInsertDistinctVal(S &P, const DomainValue<S> &Bag,
                                    const typename S::Scalar &V) {
  DomainValue<S> R = Bag;
  typename S::Scalar Keep = P.lnot(bagContains(P, Bag, V));
  R.Bag.emplace_back(V, std::move(Keep));
  return R;
}

/// Duplicate-free union of two bags.
template <class S>
DomainValue<S> bagUnionVal(S &P, const DomainValue<S> &A,
                           const DomainValue<S> &B) {
  DomainValue<S> R = A;
  for (const auto &Slot : B.Bag) {
    typename S::Scalar Keep =
        P.land(Slot.second, P.lnot(bagContains(P, R, Slot.first)));
    R.Bag.emplace_back(Slot.first, std::move(Keep));
  }
  return R;
}

/// Number of kept slots in \p Bag, as a scalar.
template <class S>
typename S::Scalar bagSizeVal(S &P, const DomainValue<S> &Bag) {
  typename S::Scalar N = P.constInt(0);
  for (const auto &Slot : Bag.Bag)
    N = P.add(N, P.ite(Slot.second, P.constInt(1), P.constInt(0)));
  return N;
}

/// Select between two domain values (branch-free bag-aware ite).
template <class S>
DomainValue<S> selectValue(S &P, const typename S::Scalar &C,
                           const DomainValue<S> &T, const DomainValue<S> &E) {
  if (!T.IsBag) {
    assert(!E.IsBag && "ite branch kinds differ");
    return DomainValue<S>::scalar(P.ite(C, T.Sc, E.Sc));
  }
  // Bag select: keep both slot lists, gating the keep flags.
  DomainValue<S> R = DomainValue<S>::emptyBag();
  for (const auto &Slot : T.Bag)
    R.Bag.emplace_back(Slot.first, P.land(C, Slot.second));
  typename S::Scalar NotC = P.lnot(C);
  for (const auto &Slot : E.Bag)
    R.Bag.emplace_back(Slot.first, P.land(NotC, Slot.second));
  return R;
}

/// Evaluates expression \p E in environment \p Env under policy \p P.
template <class S>
DomainValue<S> evalExpr(const ExprRef &E, const DomainEnv<S> &Env, S &P) {
  using DV = DomainValue<S>;
  switch (E->getOp()) {
  case Op::ConstInt:
    return DV::scalar(P.constInt(E->intValue()));
  case Op::ConstBool:
    return DV::scalar(P.constBool(E->boolValue()));
  case Op::Var: {
    auto It = Env.find(E->varName());
    assert(It != Env.end() && "unbound variable");
    return It->second;
  }
  case Op::Neg:
    return DV::scalar(P.negate(evalExpr(E->operand(0), Env, P).Sc));
  case Op::Not:
    return DV::scalar(P.lnot(evalExpr(E->operand(0), Env, P).Sc));
  case Op::Ite: {
    DV C = evalExpr(E->operand(0), Env, P);
    DV T = evalExpr(E->operand(1), Env, P);
    DV Else = evalExpr(E->operand(2), Env, P);
    return selectValue(P, C.Sc, T, Else);
  }
  case Op::BagInsertDistinct: {
    DV Bag = evalExpr(E->operand(0), Env, P);
    DV V = evalExpr(E->operand(1), Env, P);
    return bagInsertDistinctVal(P, Bag, V.Sc);
  }
  case Op::BagUnion: {
    DV A = evalExpr(E->operand(0), Env, P);
    DV B = evalExpr(E->operand(1), Env, P);
    return bagUnionVal(P, A, B);
  }
  case Op::BagSize: {
    DV Bag = evalExpr(E->operand(0), Env, P);
    return DV::scalar(bagSizeVal(P, Bag));
  }
  default:
    break;
  }
  // Binary scalar operators.
  DV A = evalExpr(E->operand(0), Env, P);
  DV B = evalExpr(E->operand(1), Env, P);
  switch (E->getOp()) {
  case Op::Add:
    return DV::scalar(P.add(A.Sc, B.Sc));
  case Op::Sub:
    return DV::scalar(P.sub(A.Sc, B.Sc));
  case Op::Mul:
    return DV::scalar(P.mul(A.Sc, B.Sc));
  case Op::Div:
    return DV::scalar(P.intDiv(A.Sc, B.Sc));
  case Op::Mod:
    return DV::scalar(P.intMod(A.Sc, B.Sc));
  case Op::Min:
    return DV::scalar(P.smin(A.Sc, B.Sc));
  case Op::Max:
    return DV::scalar(P.smax(A.Sc, B.Sc));
  case Op::Eq:
    return DV::scalar(P.eq(A.Sc, B.Sc));
  case Op::Ne:
    return DV::scalar(P.ne(A.Sc, B.Sc));
  case Op::Lt:
    return DV::scalar(P.lt(A.Sc, B.Sc));
  case Op::Le:
    return DV::scalar(P.le(A.Sc, B.Sc));
  case Op::Gt:
    return DV::scalar(P.gt(A.Sc, B.Sc));
  case Op::Ge:
    return DV::scalar(P.ge(A.Sc, B.Sc));
  case Op::And:
    return DV::scalar(P.land(A.Sc, B.Sc));
  case Op::Or:
    return DV::scalar(P.lor(A.Sc, B.Sc));
  default:
    assert(false && "unhandled opcode in evalExpr");
    return DV();
  }
}

} // namespace ir
} // namespace grassp

#endif // GRASSP_IR_DOMAINEVAL_H
