//===- ir/Bytecode.h - Register bytecode for hot fold loops --------------===//
//
// The parallel runtime folds step functions over hundreds of millions of
// elements; a tree-walking interpreter would dominate the measurement. We
// therefore compile scalar expressions into a linear register bytecode
// executed by a small switch-dispatch VM. Bags are not supported here —
// the one bag-typed benchmark uses a native kernel in the runtime.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_IR_BYTECODE_H
#define GRASSP_IR_BYTECODE_H

#include "ir/Expr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grassp {
namespace ir {

/// Bytecode opcodes. Booleans are 0/1 int64 registers.
enum class BcOp : uint8_t {
  Const, // R[Dst] = Imm
  Copy,  // R[Dst] = R[A]
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Neg,
  Min,
  Max,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Not,
  Select, // R[Dst] = R[A] ? R[B] : R[C]
};

/// One bytecode instruction (three-address with an immediate).
struct BcInstr {
  BcOp Opcode;
  uint16_t Dst = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int64_t Imm = 0;
};

/// A compiled multi-output function over named scalar inputs.
///
/// Inputs occupy registers [0, NumInputs); the compiler appends temporary
/// registers after them. \c run() expects the caller to have stored input
/// values in the first NumInputs slots of the register file and writes the
/// results into \p Out.
class BytecodeFunction {
public:
  /// Compiles \p Roots over inputs \p InputNames (slot i = name i).
  /// Expressions must be bag-free; asserts otherwise.
  static BytecodeFunction
  compile(const std::vector<ExprRef> &Roots,
          const std::vector<std::string> &InputNames);

  unsigned numInputs() const { return NumInputs; }
  unsigned numRegs() const { return NumRegs; }
  unsigned numOutputs() const {
    return static_cast<unsigned>(OutputRegs.size());
  }
  size_t numInstrs() const { return Instrs.size(); }

  /// Executes the function. \p Regs must have numRegs() slots with inputs
  /// filled in; results are written to \p Out (numOutputs() slots).
  void run(int64_t *Regs, int64_t *Out) const;

private:
  std::vector<BcInstr> Instrs;
  std::vector<uint16_t> OutputRegs;
  unsigned NumInputs = 0;
  unsigned NumRegs = 0;
};

} // namespace ir
} // namespace grassp

#endif // GRASSP_IR_BYTECODE_H
