//===- ir/Bytecode.h - Register bytecode for hot fold loops --------------===//
//
// The parallel runtime folds step functions over hundreds of millions of
// elements; a tree-walking interpreter would dominate the measurement. We
// therefore compile scalar expressions into a linear register bytecode.
// Two execution entry points exist:
//
//  * run()      - one call per evaluation (the historical per-element
//                 path, kept as the portable baseline tier);
//  * foldLoop() - the loop-resident fold: the *entire* segment loop runs
//                 inside the VM, state stays in the register file across
//                 iterations, the register file is caller-provided
//                 scratch, and dispatch uses computed-goto threading
//                 where the compiler supports it.
//
// Bytecode is post-processed by optimized(): a peephole pass doing
// constant folding, copy propagation, dead-instruction elimination, and
// register-file compaction. The optimizer is certified by differential
// testing (optimized == unoptimized on random register states), not
// trusted.
//
// Bags are not supported here — the one bag-typed benchmark uses a
// native hash-set kernel in the runtime.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_IR_BYTECODE_H
#define GRASSP_IR_BYTECODE_H

#include "ir/Expr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grassp {
namespace ir {

/// Bytecode opcodes. Booleans are 0/1 int64 registers.
enum class BcOp : uint8_t {
  Const, // R[Dst] = Imm
  Copy,  // R[Dst] = R[A]
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Neg,
  Min,
  Max,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Not,
  Select, // R[Dst] = R[A] ? R[B] : R[C]
};

/// One bytecode instruction (three-address with an immediate).
struct BcInstr {
  BcOp Opcode;
  uint16_t Dst = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int64_t Imm = 0;
};

/// Number of register operands an instruction of opcode \p O reads
/// (Const: 0, Copy/Neg/Not: 1, Select: 3, everything else: 2).
unsigned bcNumOperands(BcOp O);

/// Evaluates one non-Const, non-Copy opcode on concrete operand values,
/// with the VM's total Div/Mod semantics (floor division, non-negative
/// remainder, x/0 = x%0 = 0). Shared by the VM, the peephole constant
/// folder, and the optimizer tests.
int64_t evalBcOp(BcOp O, int64_t A, int64_t B, int64_t C);

/// A compiled multi-output function over named scalar inputs.
///
/// Inputs occupy registers [0, NumInputs); the compiler appends temporary
/// registers after them. \c run() expects the caller to have stored input
/// values in the first NumInputs slots of the register file and writes the
/// results into \p Out.
class BytecodeFunction {
public:
  /// Compiles \p Roots over inputs \p InputNames (slot i = name i).
  /// Expressions must be bag-free; asserts otherwise.
  static BytecodeFunction
  compile(const std::vector<ExprRef> &Roots,
          const std::vector<std::string> &InputNames);

  /// Builds a function from raw instructions (optimizer unit tests and
  /// fuzzers; compile() is the production path). Output registers must be
  /// < \p NumRegs and every instruction must stay inside the register
  /// file.
  static BytecodeFunction fromInstrs(std::vector<BcInstr> Instrs,
                                     unsigned NumInputs, unsigned NumRegs,
                                     std::vector<uint16_t> OutputRegs);

  unsigned numInputs() const { return NumInputs; }
  unsigned numRegs() const { return NumRegs; }
  unsigned numOutputs() const {
    return static_cast<unsigned>(OutputRegs.size());
  }
  size_t numInstrs() const { return Instrs.size(); }
  const std::vector<BcInstr> &instrs() const { return Instrs; }
  const std::vector<uint16_t> &outputRegs() const { return OutputRegs; }

  /// Returns a semantically equivalent function after the peephole pass:
  /// constant folding (including Select with a known condition and
  /// identity/absorbing elements), copy propagation, dead-instruction
  /// elimination, and register compaction. Inputs keep their slots.
  BytecodeFunction optimized() const;

  /// Executes the function. \p Regs must have numRegs() slots with inputs
  /// filled in; results are written to \p Out (numOutputs() slots).
  void run(int64_t *Regs, int64_t *Out) const;

  /// Scratch slots foldLoop() needs: the register file plus a writeback
  /// staging area for the simultaneous state assignment.
  size_t scratchSize() const { return NumRegs + OutputRegs.size(); }

  /// Loop-resident fold for step functions whose inputs are the state
  /// fields followed by the input element (numOutputs() + 1 ==
  /// numInputs()). Folds the function over \p Data: each iteration binds
  /// element i to the last input slot, evaluates, and writes the outputs
  /// back into the state slots simultaneously. \p State carries
  /// numOutputs() values in and out; \p Scratch must have scratchSize()
  /// slots and is wholly clobbered. State lives in the (caller-provided)
  /// register file for the whole loop — there is no per-element VM
  /// re-entry.
  void foldLoop(const int64_t *Data, size_t N, int64_t *State,
                int64_t *Scratch) const;

private:
  std::vector<BcInstr> Instrs;
  std::vector<uint16_t> OutputRegs;
  unsigned NumInputs = 0;
  unsigned NumRegs = 0;
};

} // namespace ir
} // namespace grassp

#endif // GRASSP_IR_BYTECODE_H
