//===- ir/Expr.h - Typed expression IR ------------------------------------==//
//
// The expression IR used throughout GRASSP. Serial programs (the
// specification), synthesized merge/sum/upd functions, and template
// candidates are all expressions over named variables.
//
// Expressions are immutable, reference-counted DAG nodes. Smart
// constructors perform local constant folding and algebraic
// simplification so that the synthesis engine and the symbolic verifier
// work with small terms.
//
// Three types exist: Int (mathematical integers, lowered to SMT Int),
// Bool, and Bag (a duplicate-free collection of Ints; used by the
// "counting distinct elements" benchmark).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_IR_EXPR_H
#define GRASSP_IR_EXPR_H

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace grassp {
namespace ir {

/// The three value types of the IR.
enum class TypeKind { Int, Bool, Bag };

/// Returns a human-readable type name ("Int", "Bool", "Bag").
const char *typeName(TypeKind K);

/// Expression opcodes.
enum class Op {
  ConstInt,
  ConstBool,
  Var,
  // Integer arithmetic.
  Add,
  Sub,
  Mul,
  Div, // Euclidean-style integer division (SMT `div`), used by "average".
  Mod, // Euclidean remainder (SMT `mod`), used by "sum of even elements".
  Neg,
  Min,
  Max,
  // Comparisons (Int x Int -> Bool).
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  // Boolean connectives.
  And,
  Or,
  Not,
  // Ternary choice; operands are (Bool, T, T).
  Ite,
  // Bag operations.
  BagInsertDistinct, // (Bag, Int) -> Bag: insert unless already present.
  BagUnion,          // (Bag, Bag) -> Bag: duplicate-free union.
  BagSize,           // Bag -> Int.
};

/// Returns the mnemonic for \p O (e.g. "add", "ite").
const char *opName(Op O);

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// An immutable expression node. Construct through the builder functions
/// below, never directly; the builders fold constants and canonicalize.
class Expr {
public:
  Expr(Op O, TypeKind Ty, int64_t IntVal, bool BoolVal, std::string VarName,
       std::vector<ExprRef> Operands);

  Op getOp() const { return Opcode; }
  TypeKind getType() const { return Ty; }

  bool isConstInt() const { return Opcode == Op::ConstInt; }
  bool isConstBool() const { return Opcode == Op::ConstBool; }
  bool isConst() const { return isConstInt() || isConstBool(); }
  bool isVar() const { return Opcode == Op::Var; }

  /// Value of a ConstInt node.
  int64_t intValue() const;
  /// Value of a ConstBool node.
  bool boolValue() const;
  /// Name of a Var node.
  const std::string &varName() const;

  const std::vector<ExprRef> &operands() const { return Operands; }
  const ExprRef &operand(unsigned I) const { return Operands[I]; }
  unsigned numOperands() const {
    return static_cast<unsigned>(Operands.size());
  }

  /// Structural hash (cached).
  size_t hash() const { return HashCache; }

private:
  Op Opcode;
  TypeKind Ty;
  int64_t IntVal = 0;
  bool BoolVal = false;
  std::string VarName;
  std::vector<ExprRef> Operands;
  size_t HashCache = 0;
};

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

ExprRef constInt(int64_t V);
ExprRef constBool(bool V);
/// Creates (or returns) a variable of type \p Ty named \p Name. Variables
/// are identified by name; two same-named vars denote the same value.
ExprRef var(const std::string &Name, TypeKind Ty);

ExprRef add(ExprRef A, ExprRef B);
ExprRef sub(ExprRef A, ExprRef B);
ExprRef mul(ExprRef A, ExprRef B);
ExprRef intDiv(ExprRef A, ExprRef B);
ExprRef intMod(ExprRef A, ExprRef B);
ExprRef neg(ExprRef A);
ExprRef smin(ExprRef A, ExprRef B);
ExprRef smax(ExprRef A, ExprRef B);

ExprRef eq(ExprRef A, ExprRef B);
ExprRef ne(ExprRef A, ExprRef B);
ExprRef lt(ExprRef A, ExprRef B);
ExprRef le(ExprRef A, ExprRef B);
ExprRef gt(ExprRef A, ExprRef B);
ExprRef ge(ExprRef A, ExprRef B);

ExprRef land(ExprRef A, ExprRef B);
ExprRef lor(ExprRef A, ExprRef B);
ExprRef lnot(ExprRef A);

ExprRef ite(ExprRef C, ExprRef T, ExprRef E);

ExprRef bagInsertDistinct(ExprRef Bag, ExprRef V);
ExprRef bagUnion(ExprRef A, ExprRef B);
ExprRef bagSize(ExprRef Bag);

/// Builds a generic binary node for \p O (dispatch helper for grammars).
ExprRef binary(Op O, ExprRef A, ExprRef B);

//===----------------------------------------------------------------------===//
// Queries and transforms
//===----------------------------------------------------------------------===//

/// Structural equality.
bool structurallyEqual(const ExprRef &A, const ExprRef &B);

/// Number of nodes in the expression tree (shared nodes counted once per
/// occurrence; used as a candidate-size metric).
unsigned exprSize(const ExprRef &E);

/// Collects the names (with types) of all variables occurring in \p E.
void collectVars(const ExprRef &E, std::map<std::string, TypeKind> &Out);

/// Collects all integer constants occurring in \p E.
void collectIntConstants(const ExprRef &E, std::set<int64_t> &Out);

/// Capture-free substitution of variables by expressions.
ExprRef substitute(const ExprRef &E,
                   const std::map<std::string, ExprRef> &Subst);

/// Renders \p E as a readable infix string, e.g.
/// "ite(in == 2, res + 1, res)".
std::string toString(const ExprRef &E);

} // namespace ir
} // namespace grassp

#endif // GRASSP_IR_EXPR_H
