//===- ir/BytecodeOpt.cpp - Peephole optimizer over register bytecode -----==//
//
// A single forward rewrite pass (constant folding, copy propagation,
// exact algebraic simplification) followed by backward dead-instruction
// elimination and register-file compaction. Straight-line three-address
// code with single forward control flow makes all of this a simple
// dataflow walk; no CFG is needed.
//
// Soundness note: every rewrite must hold for *arbitrary* int64 register
// contents, not just type-correct ones — the optimizer is certified by a
// differential test that runs optimized and unoptimized code on random
// register states. Transforms that rely on 0/1 booleans (e.g.
// or(x, false) -> x, which normalizes x to 0/1 in the original) are
// deliberately omitted.
//
//===----------------------------------------------------------------------===//

#include "ir/Bytecode.h"

#include <cassert>

namespace grassp {
namespace ir {

namespace {

/// What is currently known about a register's value at the rewrite
/// cursor. CopyOf sources are always fully-resolved roots (never
/// themselves CopyOf) and are invalidated when the root is redefined.
struct Fact {
  enum Kind { Unknown, ConstVal, CopyOf } K = Unknown;
  int64_t C = 0;
  uint16_t Src = 0;
};

class Peephole {
public:
  Peephole(const std::vector<BcInstr> &In, unsigned NumInputs,
           unsigned NumRegs, const std::vector<uint16_t> &Outputs)
      : NumInputs(NumInputs), NumRegs(NumRegs), Facts(NumRegs),
        OutputRegs(Outputs) {
    Instrs.reserve(In.size());
    for (const BcInstr &I : In)
      rewrite(I);
    for (uint16_t &R : OutputRegs)
      R = root(R);
    eliminateDead();
    compact();
  }

  std::vector<BcInstr> takeInstrs() { return std::move(Instrs); }
  std::vector<uint16_t> takeOutputs() { return std::move(OutputRegs); }
  unsigned numRegs() const { return NumRegs; }

private:
  uint16_t root(uint16_t R) const {
    return Facts[R].K == Fact::CopyOf ? Facts[R].Src : R;
  }
  bool isConst(uint16_t R) const { return Facts[R].K == Fact::ConstVal; }
  int64_t constOf(uint16_t R) const { return Facts[R].C; }

  /// Registers \p I as the new definition of its Dst: stale facts rooted
  /// at Dst die, then Dst's own fact is refreshed.
  void define(BcInstr I) {
    for (Fact &F : Facts)
      if (F.K == Fact::CopyOf && F.Src == I.Dst)
        F.K = Fact::Unknown;
    Fact &D = Facts[I.Dst];
    if (I.Opcode == BcOp::Const)
      D = {Fact::ConstVal, I.Imm, 0};
    else if (I.Opcode == BcOp::Copy)
      D = {Fact::CopyOf, 0, I.A}; // I.A is a root by construction.
    else
      D = {Fact::Unknown, 0, 0};
    Instrs.push_back(I);
  }

  void rewrite(BcInstr I) {
    // Copy-propagate the register operands first.
    unsigned Ops = bcNumOperands(I.Opcode);
    if (Ops >= 1)
      I.A = root(I.A);
    if (Ops >= 2)
      I.B = root(I.B);
    if (Ops >= 3)
      I.C = root(I.C);

    if (I.Opcode == BcOp::Copy && isConst(I.A))
      I = {BcOp::Const, I.Dst, 0, 0, 0, constOf(I.A)};
    if (I.Opcode == BcOp::Const || I.Opcode == BcOp::Copy) {
      define(I);
      return;
    }

    // Full constant folding through the VM's own evaluator.
    bool CA = isConst(I.A), CB = Ops >= 2 && isConst(I.B),
         CC = Ops >= 3 && isConst(I.C);
    if (CA && (Ops < 2 || CB) && (Ops < 3 || CC)) {
      define({BcOp::Const, I.Dst, 0, 0, 0,
              evalBcOp(I.Opcode, constOf(I.A), CB ? constOf(I.B) : 0,
                       CC ? constOf(I.C) : 0)});
      return;
    }

    // Exact algebraic simplifications (valid on arbitrary int64 values).
    switch (I.Opcode) {
    case BcOp::Select:
      if (CA) {
        define({BcOp::Copy, I.Dst, constOf(I.A) != 0 ? I.B : I.C, 0, 0, 0});
        return;
      }
      if (I.B == I.C) {
        define({BcOp::Copy, I.Dst, I.B, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Add:
      if (CA && constOf(I.A) == 0) {
        define({BcOp::Copy, I.Dst, I.B, 0, 0, 0});
        return;
      }
      if (CB && constOf(I.B) == 0) {
        define({BcOp::Copy, I.Dst, I.A, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Sub:
      if (CB && constOf(I.B) == 0) {
        define({BcOp::Copy, I.Dst, I.A, 0, 0, 0});
        return;
      }
      if (I.A == I.B) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Mul:
      if ((CA && constOf(I.A) == 0) || (CB && constOf(I.B) == 0)) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 0});
        return;
      }
      if (CA && constOf(I.A) == 1) {
        define({BcOp::Copy, I.Dst, I.B, 0, 0, 0});
        return;
      }
      if (CB && constOf(I.B) == 1) {
        define({BcOp::Copy, I.Dst, I.A, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Div:
      if (CB && constOf(I.B) == 1) {
        define({BcOp::Copy, I.Dst, I.A, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Mod:
      if (CB && (constOf(I.B) == 1 || constOf(I.B) == -1)) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Min:
    case BcOp::Max:
      if (I.A == I.B) {
        define({BcOp::Copy, I.Dst, I.A, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Eq:
    case BcOp::Le:
    case BcOp::Ge:
      if (I.A == I.B) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 1});
        return;
      }
      break;
    case BcOp::Ne:
    case BcOp::Lt:
    case BcOp::Gt:
      if (I.A == I.B) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 0});
        return;
      }
      break;
    case BcOp::And:
      // and(x, 0) == 0 regardless of x; and(x, c!=0) normalizes x, so it
      // must NOT become a copy.
      if ((CA && constOf(I.A) == 0) || (CB && constOf(I.B) == 0)) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Or:
      if ((CA && constOf(I.A) != 0) || (CB && constOf(I.B) != 0)) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 1});
        return;
      }
      break;
    default:
      break;
    }
    define(I);
  }

  /// Backward liveness: an instruction survives only if its destination
  /// is read later (or is an output register).
  void eliminateDead() {
    std::vector<bool> Live(NumRegs, false);
    for (uint16_t R : OutputRegs)
      Live[R] = true;
    std::vector<BcInstr> Kept;
    Kept.reserve(Instrs.size());
    for (size_t I = Instrs.size(); I != 0; --I) {
      const BcInstr &In = Instrs[I - 1];
      if (!Live[In.Dst])
        continue;
      Live[In.Dst] = false;
      unsigned Ops = bcNumOperands(In.Opcode);
      if (Ops >= 1)
        Live[In.A] = true;
      if (Ops >= 2)
        Live[In.B] = true;
      if (Ops >= 3)
        Live[In.C] = true;
      Kept.push_back(In);
    }
    Instrs.assign(Kept.rbegin(), Kept.rend());
  }

  /// Renumbers surviving temporaries densely after the input slots, so
  /// the loop-resident VM touches the smallest possible register file.
  void compact() {
    std::vector<uint16_t> Map(NumRegs, 0xffff);
    for (unsigned R = 0; R != NumInputs; ++R)
      Map[R] = static_cast<uint16_t>(R);
    unsigned Next = NumInputs;
    auto mapReg = [&](uint16_t R) {
      if (Map[R] == 0xffff)
        Map[R] = static_cast<uint16_t>(Next++);
      return Map[R];
    };
    for (BcInstr &I : Instrs) {
      unsigned Ops = bcNumOperands(I.Opcode);
      // Operands of well-formed code are always already defined; map
      // them before the destination so self-references read the old slot.
      if (Ops >= 1)
        I.A = mapReg(I.A);
      if (Ops >= 2)
        I.B = mapReg(I.B);
      if (Ops >= 3)
        I.C = mapReg(I.C);
      I.Dst = mapReg(I.Dst);
    }
    for (uint16_t &R : OutputRegs)
      R = mapReg(R);
    NumRegs = Next;
  }

  unsigned NumInputs;
  unsigned NumRegs;
  std::vector<Fact> Facts;
  std::vector<BcInstr> Instrs;
  std::vector<uint16_t> OutputRegs;
};

/// Canonicalizes the guarded-accumulator shape
///
///   t   = add x, y
///   dst = select c, t, x        ; c provably 0/1-valued
///
/// into the maskable form
///
///   m   = mul c, y
///   dst = add x, m
///
/// which trades the VM's only data-dependent operation for straight-line
/// arithmetic (and hands the native tier a multiply-accumulate the host
/// compiler vectorizes outright). The rewrite is exact on arbitrary
/// register states *given* c in {0,1}, so c's boolean-ness is derived
/// structurally from its defining instruction in the same straight-line
/// code, never assumed. Fires only when the add feeds nothing but the
/// select (otherwise the pair stays and code would grow) and when x and
/// y still hold their add-time values at the select.
///
/// Runs between peephole passes: operands are copy-propagated roots and
/// the dead add left behind is swept by the next pass's DCE.
bool canonicalizeGuardedSelects(std::vector<BcInstr> &Instrs,
                                unsigned &NumRegs,
                                const std::vector<uint16_t> &OutputRegs) {
  const size_t N = Instrs.size();
  constexpr size_t NoDef = static_cast<size_t>(-1);

  // Forward facts, per register: is the current value 0/1, and which
  // instruction defined it. Defs record their operands' def sites so a
  // later reader can tell whether the operands are still live-as-of-def.
  std::vector<char> Bool(NumRegs, 0);
  std::vector<size_t> DefSite(NumRegs, NoDef);
  std::vector<std::pair<size_t, size_t>> OperandDefs(N, {NoDef, NoDef});

  // Uses of the value Instrs[J] defines: reads before the next
  // redefinition, plus 1 if it survives to an output register.
  auto usesOfDef = [&](size_t J) {
    const uint16_t D = Instrs[J].Dst;
    unsigned Uses = 0;
    for (size_t K = J + 1; K != N; ++K) {
      const BcInstr &I = Instrs[K];
      unsigned Ops = bcNumOperands(I.Opcode);
      Uses += (Ops >= 1 && I.A == D) + (Ops >= 2 && I.B == D) +
              (Ops >= 3 && I.C == D);
      if (I.Dst == D)
        return Uses;
    }
    for (uint16_t R : OutputRegs)
      Uses += R == D ? 1 : 0;
    return Uses;
  };

  auto definesBool = [&](const BcInstr &I) -> char {
    switch (I.Opcode) {
    case BcOp::Const:
      return I.Imm == 0 || I.Imm == 1;
    case BcOp::Copy:
      return Bool[I.A];
    case BcOp::Eq:
    case BcOp::Ne:
    case BcOp::Lt:
    case BcOp::Le:
    case BcOp::Gt:
    case BcOp::Ge:
    case BcOp::And:
    case BcOp::Or:
    case BcOp::Not:
      return 1;
    case BcOp::Select:
      return Bool[I.B] && Bool[I.C];
    case BcOp::Min:
    case BcOp::Max:
    case BcOp::Mul: // a product of 0/1 values is 0/1.
      return Bool[I.A] && Bool[I.B];
    default:
      return 0;
    }
  };

  std::vector<BcInstr> Out;
  Out.reserve(N + 2);
  bool Changed = false;
  for (size_t J = 0; J != N; ++J) {
    const BcInstr &I = Instrs[J];
    bool Rewritten = false;
    if (I.Opcode == BcOp::Select && Bool[I.A] && NumRegs < 0xfffe) {
      const size_t AddAt = DefSite[I.B];
      if (AddAt != NoDef && Instrs[AddAt].Opcode == BcOp::Add &&
          usesOfDef(AddAt) == 1) {
        const BcInstr &AddI = Instrs[AddAt];
        // Both add operands must be un-redefined since the add (the
        // select's true arm replays the add at the select site).
        const bool OperandsLive =
            DefSite[AddI.A] == OperandDefs[AddAt].first &&
            DefSite[AddI.B] == OperandDefs[AddAt].second;
        uint16_t T = 0xffff;
        if (OperandsLive && AddI.A == I.C)
          T = AddI.B;
        else if (OperandsLive && AddI.B == I.C)
          T = AddI.A;
        if (T != 0xffff) {
          const uint16_t M = static_cast<uint16_t>(NumRegs++);
          Bool.push_back(0);
          DefSite.push_back(NoDef);
          Out.push_back({BcOp::Mul, M, I.A, T, 0, 0});
          Out.push_back({BcOp::Add, I.Dst, I.C, M, 0, 0});
          Changed = true;
          Rewritten = true;
        }
      }
    }
    if (!Rewritten)
      Out.push_back(I);
    // Fact updates track the original program; the rewritten pair
    // computes the identical dst value, so the facts hold for it too.
    unsigned Ops = bcNumOperands(I.Opcode);
    OperandDefs[J] = {Ops >= 1 ? DefSite[I.A] : NoDef,
                      Ops >= 2 ? DefSite[I.B] : NoDef};
    Bool[I.Dst] = definesBool(I);
    DefSite[I.Dst] = J;
  }
  Instrs = std::move(Out);
  return Changed;
}

} // namespace

BytecodeFunction BytecodeFunction::optimized() const {
  // One forward pass can expose work for the next (a rewrite introduces
  // a copy whose uses were already visited, DCE uncovers a now-dead
  // chain), so iterate to a fixed point. Each productive pass strictly
  // shrinks the instruction list, which bounds the loop; the cap is a
  // belt-and-braces guard.
  BytecodeFunction Cur = *this;
  for (unsigned Pass = 0; Pass != 8; ++Pass) {
    Peephole P(Cur.Instrs, Cur.NumInputs, Cur.NumRegs, Cur.OutputRegs);
    unsigned Regs = P.numRegs();
    BytecodeFunction Next =
        fromInstrs(P.takeInstrs(), Cur.NumInputs, Regs, P.takeOutputs());
    // Guarded-select canonicalization runs on peephole-clean code; when
    // it fires, the next peephole round sweeps the add it orphaned (so
    // the pass pair never grows the final program) and may expose more
    // candidates.
    bool Canon = canonicalizeGuardedSelects(Next.Instrs, Next.NumRegs,
                                            Next.OutputRegs);
    bool Fixed = !Canon && Next.Instrs.size() == Cur.Instrs.size();
    Cur = std::move(Next);
    if (Fixed)
      break;
  }
  return Cur;
}

} // namespace ir
} // namespace grassp
