//===- ir/BytecodeOpt.cpp - Peephole optimizer over register bytecode -----==//
//
// A single forward rewrite pass (constant folding, copy propagation,
// exact algebraic simplification) followed by backward dead-instruction
// elimination and register-file compaction. Straight-line three-address
// code with single forward control flow makes all of this a simple
// dataflow walk; no CFG is needed.
//
// Soundness note: every rewrite must hold for *arbitrary* int64 register
// contents, not just type-correct ones — the optimizer is certified by a
// differential test that runs optimized and unoptimized code on random
// register states. Transforms that rely on 0/1 booleans (e.g.
// or(x, false) -> x, which normalizes x to 0/1 in the original) are
// deliberately omitted.
//
//===----------------------------------------------------------------------===//

#include "ir/Bytecode.h"

#include <cassert>

namespace grassp {
namespace ir {

namespace {

/// What is currently known about a register's value at the rewrite
/// cursor. CopyOf sources are always fully-resolved roots (never
/// themselves CopyOf) and are invalidated when the root is redefined.
struct Fact {
  enum Kind { Unknown, ConstVal, CopyOf } K = Unknown;
  int64_t C = 0;
  uint16_t Src = 0;
};

class Peephole {
public:
  Peephole(const std::vector<BcInstr> &In, unsigned NumInputs,
           unsigned NumRegs, const std::vector<uint16_t> &Outputs)
      : NumInputs(NumInputs), NumRegs(NumRegs), Facts(NumRegs),
        OutputRegs(Outputs) {
    Instrs.reserve(In.size());
    for (const BcInstr &I : In)
      rewrite(I);
    for (uint16_t &R : OutputRegs)
      R = root(R);
    eliminateDead();
    compact();
  }

  std::vector<BcInstr> takeInstrs() { return std::move(Instrs); }
  std::vector<uint16_t> takeOutputs() { return std::move(OutputRegs); }
  unsigned numRegs() const { return NumRegs; }

private:
  uint16_t root(uint16_t R) const {
    return Facts[R].K == Fact::CopyOf ? Facts[R].Src : R;
  }
  bool isConst(uint16_t R) const { return Facts[R].K == Fact::ConstVal; }
  int64_t constOf(uint16_t R) const { return Facts[R].C; }

  /// Registers \p I as the new definition of its Dst: stale facts rooted
  /// at Dst die, then Dst's own fact is refreshed.
  void define(BcInstr I) {
    for (Fact &F : Facts)
      if (F.K == Fact::CopyOf && F.Src == I.Dst)
        F.K = Fact::Unknown;
    Fact &D = Facts[I.Dst];
    if (I.Opcode == BcOp::Const)
      D = {Fact::ConstVal, I.Imm, 0};
    else if (I.Opcode == BcOp::Copy)
      D = {Fact::CopyOf, 0, I.A}; // I.A is a root by construction.
    else
      D = {Fact::Unknown, 0, 0};
    Instrs.push_back(I);
  }

  void rewrite(BcInstr I) {
    // Copy-propagate the register operands first.
    unsigned Ops = bcNumOperands(I.Opcode);
    if (Ops >= 1)
      I.A = root(I.A);
    if (Ops >= 2)
      I.B = root(I.B);
    if (Ops >= 3)
      I.C = root(I.C);

    if (I.Opcode == BcOp::Copy && isConst(I.A))
      I = {BcOp::Const, I.Dst, 0, 0, 0, constOf(I.A)};
    if (I.Opcode == BcOp::Const || I.Opcode == BcOp::Copy) {
      define(I);
      return;
    }

    // Full constant folding through the VM's own evaluator.
    bool CA = isConst(I.A), CB = Ops >= 2 && isConst(I.B),
         CC = Ops >= 3 && isConst(I.C);
    if (CA && (Ops < 2 || CB) && (Ops < 3 || CC)) {
      define({BcOp::Const, I.Dst, 0, 0, 0,
              evalBcOp(I.Opcode, constOf(I.A), CB ? constOf(I.B) : 0,
                       CC ? constOf(I.C) : 0)});
      return;
    }

    // Exact algebraic simplifications (valid on arbitrary int64 values).
    switch (I.Opcode) {
    case BcOp::Select:
      if (CA) {
        define({BcOp::Copy, I.Dst, constOf(I.A) != 0 ? I.B : I.C, 0, 0, 0});
        return;
      }
      if (I.B == I.C) {
        define({BcOp::Copy, I.Dst, I.B, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Add:
      if (CA && constOf(I.A) == 0) {
        define({BcOp::Copy, I.Dst, I.B, 0, 0, 0});
        return;
      }
      if (CB && constOf(I.B) == 0) {
        define({BcOp::Copy, I.Dst, I.A, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Sub:
      if (CB && constOf(I.B) == 0) {
        define({BcOp::Copy, I.Dst, I.A, 0, 0, 0});
        return;
      }
      if (I.A == I.B) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Mul:
      if ((CA && constOf(I.A) == 0) || (CB && constOf(I.B) == 0)) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 0});
        return;
      }
      if (CA && constOf(I.A) == 1) {
        define({BcOp::Copy, I.Dst, I.B, 0, 0, 0});
        return;
      }
      if (CB && constOf(I.B) == 1) {
        define({BcOp::Copy, I.Dst, I.A, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Div:
      if (CB && constOf(I.B) == 1) {
        define({BcOp::Copy, I.Dst, I.A, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Mod:
      if (CB && (constOf(I.B) == 1 || constOf(I.B) == -1)) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Min:
    case BcOp::Max:
      if (I.A == I.B) {
        define({BcOp::Copy, I.Dst, I.A, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Eq:
    case BcOp::Le:
    case BcOp::Ge:
      if (I.A == I.B) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 1});
        return;
      }
      break;
    case BcOp::Ne:
    case BcOp::Lt:
    case BcOp::Gt:
      if (I.A == I.B) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 0});
        return;
      }
      break;
    case BcOp::And:
      // and(x, 0) == 0 regardless of x; and(x, c!=0) normalizes x, so it
      // must NOT become a copy.
      if ((CA && constOf(I.A) == 0) || (CB && constOf(I.B) == 0)) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 0});
        return;
      }
      break;
    case BcOp::Or:
      if ((CA && constOf(I.A) != 0) || (CB && constOf(I.B) != 0)) {
        define({BcOp::Const, I.Dst, 0, 0, 0, 1});
        return;
      }
      break;
    default:
      break;
    }
    define(I);
  }

  /// Backward liveness: an instruction survives only if its destination
  /// is read later (or is an output register).
  void eliminateDead() {
    std::vector<bool> Live(NumRegs, false);
    for (uint16_t R : OutputRegs)
      Live[R] = true;
    std::vector<BcInstr> Kept;
    Kept.reserve(Instrs.size());
    for (size_t I = Instrs.size(); I != 0; --I) {
      const BcInstr &In = Instrs[I - 1];
      if (!Live[In.Dst])
        continue;
      Live[In.Dst] = false;
      unsigned Ops = bcNumOperands(In.Opcode);
      if (Ops >= 1)
        Live[In.A] = true;
      if (Ops >= 2)
        Live[In.B] = true;
      if (Ops >= 3)
        Live[In.C] = true;
      Kept.push_back(In);
    }
    Instrs.assign(Kept.rbegin(), Kept.rend());
  }

  /// Renumbers surviving temporaries densely after the input slots, so
  /// the loop-resident VM touches the smallest possible register file.
  void compact() {
    std::vector<uint16_t> Map(NumRegs, 0xffff);
    for (unsigned R = 0; R != NumInputs; ++R)
      Map[R] = static_cast<uint16_t>(R);
    unsigned Next = NumInputs;
    auto mapReg = [&](uint16_t R) {
      if (Map[R] == 0xffff)
        Map[R] = static_cast<uint16_t>(Next++);
      return Map[R];
    };
    for (BcInstr &I : Instrs) {
      unsigned Ops = bcNumOperands(I.Opcode);
      // Operands of well-formed code are always already defined; map
      // them before the destination so self-references read the old slot.
      if (Ops >= 1)
        I.A = mapReg(I.A);
      if (Ops >= 2)
        I.B = mapReg(I.B);
      if (Ops >= 3)
        I.C = mapReg(I.C);
      I.Dst = mapReg(I.Dst);
    }
    for (uint16_t &R : OutputRegs)
      R = mapReg(R);
    NumRegs = Next;
  }

  unsigned NumInputs;
  unsigned NumRegs;
  std::vector<Fact> Facts;
  std::vector<BcInstr> Instrs;
  std::vector<uint16_t> OutputRegs;
};

} // namespace

BytecodeFunction BytecodeFunction::optimized() const {
  // One forward pass can expose work for the next (a rewrite introduces
  // a copy whose uses were already visited, DCE uncovers a now-dead
  // chain), so iterate to a fixed point. Each productive pass strictly
  // shrinks the instruction list, which bounds the loop; the cap is a
  // belt-and-braces guard.
  BytecodeFunction Cur = *this;
  for (unsigned Pass = 0; Pass != 8; ++Pass) {
    Peephole P(Cur.Instrs, Cur.NumInputs, Cur.NumRegs, Cur.OutputRegs);
    unsigned Regs = P.numRegs();
    BytecodeFunction Next =
        fromInstrs(P.takeInstrs(), Cur.NumInputs, Regs, P.takeOutputs());
    bool Fixed = Next.Instrs.size() == Cur.Instrs.size();
    Cur = std::move(Next);
    if (Fixed)
      break;
  }
  return Cur;
}

} // namespace ir
} // namespace grassp
