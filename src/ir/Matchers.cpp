//===- ir/Matchers.cpp -----------------------------------------------------=//

#include "ir/Matchers.h"

#include <algorithm>
#include <cassert>

namespace grassp {
namespace ir {

static void collectAllVars(const ExprRef &E, std::set<std::string> &Out) {
  if (E->isVar()) {
    Out.insert(E->varName());
    return;
  }
  for (const ExprRef &Opnd : E->operands())
    collectAllVars(Opnd, Out);
}

static void analyzeShape(const ExprRef &E, StepShape &S) {
  switch (E->getOp()) {
  case Op::ConstInt:
  case Op::ConstBool:
    return;
  case Op::Var:
    S.ValueVars.insert(E->varName());
    return;
  case Op::Ite:
    // The condition only steers the choice.
    collectAllVars(E->operand(0), S.CondVars);
    analyzeShape(E->operand(1), S);
    analyzeShape(E->operand(2), S);
    return;
  case Op::Eq:
  case Op::Ne:
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
    // A comparison at value position produces a Bool drawn from a
    // two-element set; treat its operands as condition-only.
    collectAllVars(E, S.CondVars);
    return;
  case Op::And:
  case Op::Or:
  case Op::Not:
    // Boolean structure over comparisons; operand vars only steer.
    collectAllVars(E, S.CondVars);
    return;
  default:
    // Arithmetic or bag ops at a value position.
    S.ValueHasArith = true;
    for (const ExprRef &Opnd : E->operands())
      collectAllVars(Opnd, S.ValueVars);
    return;
  }
}

StepShape analyzeStepShape(const ExprRef &E) {
  StepShape S;
  analyzeShape(E, S);
  return S;
}

int64_t AccTransform::apply(int64_t A) const {
  switch (K) {
  case Id:
    return A;
  case Plus:
    return A + C;
  case MaxC:
    return std::max(A, C);
  case MinC:
    return std::min(A, C);
  case Set:
    return C;
  case Unknown:
    break;
  }
  assert(false && "applying Unknown transform");
  return A;
}

AccTransform composeTransforms(const AccTransform &First,
                               const AccTransform &Second) {
  if (First.isUnknown() || Second.isUnknown())
    return AccTransform::unknown();
  if (Second.K == AccTransform::Id)
    return First;
  if (First.K == AccTransform::Id)
    return Second;
  if (Second.K == AccTransform::Set)
    return Second;
  if (First.K == AccTransform::Set)
    return AccTransform::set(Second.apply(First.C));
  if (First.K == Second.K) {
    switch (First.K) {
    case AccTransform::Plus:
      return AccTransform::plus(First.C + Second.C);
    case AccTransform::MaxC:
      return AccTransform::maxc(std::max(First.C, Second.C));
    case AccTransform::MinC:
      return AccTransform::minc(std::min(First.C, Second.C));
    default:
      break;
    }
  }
  return AccTransform::unknown();
}

AccTransform classifyAccStep(const ExprRef &E, const std::string &AccName) {
  // Constant result: assignment.
  if (E->isConstInt())
    return AccTransform::set(E->intValue());
  if (E->isConstBool())
    return AccTransform::set(E->boolValue() ? 1 : 0);
  if (E->isVar())
    return E->varName() == AccName ? AccTransform::id()
                                   : AccTransform::unknown();

  auto ClassifyWithConst = [&](const ExprRef &A, const ExprRef &B,
                               auto Make) -> AccTransform {
    // One side must fold to a constant, the other classifies recursively.
    const ExprRef *VarSide = nullptr;
    int64_t C = 0;
    if (A->isConstInt()) {
      C = A->intValue();
      VarSide = &B;
    } else if (B->isConstInt()) {
      C = B->intValue();
      VarSide = &A;
    } else {
      return AccTransform::unknown();
    }
    AccTransform Inner = classifyAccStep(*VarSide, AccName);
    if (Inner.isUnknown())
      return Inner;
    return composeTransforms(Inner, Make(C));
  };

  switch (E->getOp()) {
  case Op::Add:
    return ClassifyWithConst(E->operand(0), E->operand(1),
                             [](int64_t C) { return AccTransform::plus(C); });
  case Op::Sub: {
    // acc - c == acc + (-c); c - acc is not representable.
    const ExprRef &A = E->operand(0);
    const ExprRef &B = E->operand(1);
    if (!B->isConstInt())
      return AccTransform::unknown();
    AccTransform Inner = classifyAccStep(A, AccName);
    if (Inner.isUnknown())
      return Inner;
    return composeTransforms(Inner, AccTransform::plus(-B->intValue()));
  }
  case Op::Max:
    return ClassifyWithConst(E->operand(0), E->operand(1),
                             [](int64_t C) { return AccTransform::maxc(C); });
  case Op::Min:
    return ClassifyWithConst(E->operand(0), E->operand(1),
                             [](int64_t C) { return AccTransform::minc(C); });
  default:
    return AccTransform::unknown();
  }
}

} // namespace ir
} // namespace grassp
