//===- ir/Bytecode.cpp -----------------------------------------------------=//

#include "ir/Bytecode.h"

#include <cassert>
#include <unordered_map>

namespace grassp {
namespace ir {

namespace {

/// Compilation context: value-numbers already-compiled subexpressions so
/// shared DAG nodes are evaluated once.
class Compiler {
public:
  Compiler(std::vector<BcInstr> &Instrs, unsigned FirstTemp)
      : Instrs(Instrs), NextReg(FirstTemp) {}

  uint16_t compile(const ExprRef &E,
                   const std::unordered_map<std::string, uint16_t> &Slots) {
    auto It = Cache.find(E.get());
    if (It != Cache.end())
      return It->second;
    uint16_t R = compileUncached(E, Slots);
    Cache.emplace(E.get(), R);
    return R;
  }

  unsigned nextReg() const { return NextReg; }

private:
  uint16_t fresh() {
    assert(NextReg < 0xffff && "register file overflow");
    return static_cast<uint16_t>(NextReg++);
  }

  uint16_t emitBin(BcOp O, uint16_t A, uint16_t B) {
    uint16_t D = fresh();
    Instrs.push_back({O, D, A, B, 0, 0});
    return D;
  }

  uint16_t
  compileUncached(const ExprRef &E,
                  const std::unordered_map<std::string, uint16_t> &Slots) {
    switch (E->getOp()) {
    case Op::ConstInt: {
      uint16_t D = fresh();
      Instrs.push_back({BcOp::Const, D, 0, 0, 0, E->intValue()});
      return D;
    }
    case Op::ConstBool: {
      uint16_t D = fresh();
      Instrs.push_back({BcOp::Const, D, 0, 0, 0, E->boolValue() ? 1 : 0});
      return D;
    }
    case Op::Var: {
      auto It = Slots.find(E->varName());
      assert(It != Slots.end() && "unbound variable in bytecode compile");
      return It->second;
    }
    case Op::Neg: {
      uint16_t A = compile(E->operand(0), Slots);
      uint16_t D = fresh();
      Instrs.push_back({BcOp::Neg, D, A, 0, 0, 0});
      return D;
    }
    case Op::Not: {
      uint16_t A = compile(E->operand(0), Slots);
      uint16_t D = fresh();
      Instrs.push_back({BcOp::Not, D, A, 0, 0, 0});
      return D;
    }
    case Op::Ite: {
      uint16_t C = compile(E->operand(0), Slots);
      uint16_t T = compile(E->operand(1), Slots);
      uint16_t F = compile(E->operand(2), Slots);
      uint16_t D = fresh();
      Instrs.push_back({BcOp::Select, D, C, T, F, 0});
      return D;
    }
    case Op::BagInsertDistinct:
    case Op::BagUnion:
    case Op::BagSize:
      assert(false && "bag operations are not bytecode-compilable");
      return 0;
    default:
      break;
    }
    uint16_t A = compile(E->operand(0), Slots);
    uint16_t B = compile(E->operand(1), Slots);
    switch (E->getOp()) {
    case Op::Add:
      return emitBin(BcOp::Add, A, B);
    case Op::Sub:
      return emitBin(BcOp::Sub, A, B);
    case Op::Mul:
      return emitBin(BcOp::Mul, A, B);
    case Op::Div:
      return emitBin(BcOp::Div, A, B);
    case Op::Mod:
      return emitBin(BcOp::Mod, A, B);
    case Op::Min:
      return emitBin(BcOp::Min, A, B);
    case Op::Max:
      return emitBin(BcOp::Max, A, B);
    case Op::Eq:
      return emitBin(BcOp::Eq, A, B);
    case Op::Ne:
      return emitBin(BcOp::Ne, A, B);
    case Op::Lt:
      return emitBin(BcOp::Lt, A, B);
    case Op::Le:
      return emitBin(BcOp::Le, A, B);
    case Op::Gt:
      return emitBin(BcOp::Gt, A, B);
    case Op::Ge:
      return emitBin(BcOp::Ge, A, B);
    case Op::And:
      return emitBin(BcOp::And, A, B);
    case Op::Or:
      return emitBin(BcOp::Or, A, B);
    default:
      assert(false && "unhandled opcode");
      return 0;
    }
  }

  std::vector<BcInstr> &Instrs;
  unsigned NextReg;
  std::unordered_map<const Expr *, uint16_t> Cache;
};

} // namespace

BytecodeFunction
BytecodeFunction::compile(const std::vector<ExprRef> &Roots,
                          const std::vector<std::string> &InputNames) {
  BytecodeFunction F;
  F.NumInputs = static_cast<unsigned>(InputNames.size());
  std::unordered_map<std::string, uint16_t> Slots;
  for (unsigned I = 0; I != F.NumInputs; ++I)
    Slots.emplace(InputNames[I], static_cast<uint16_t>(I));
  Compiler C(F.Instrs, F.NumInputs);
  for (const ExprRef &Root : Roots)
    F.OutputRegs.push_back(C.compile(Root, Slots));
  F.NumRegs = C.nextReg();
  return F;
}

void BytecodeFunction::run(int64_t *R, int64_t *Out) const {
  for (const BcInstr &I : Instrs) {
    switch (I.Opcode) {
    case BcOp::Const:
      R[I.Dst] = I.Imm;
      break;
    case BcOp::Copy:
      R[I.Dst] = R[I.A];
      break;
    case BcOp::Add:
      R[I.Dst] = R[I.A] + R[I.B];
      break;
    case BcOp::Sub:
      R[I.Dst] = R[I.A] - R[I.B];
      break;
    case BcOp::Mul:
      R[I.Dst] = R[I.A] * R[I.B];
      break;
    case BcOp::Div: {
      int64_t A = R[I.A], B = R[I.B];
      if (B == 0) {
        R[I.Dst] = 0;
      } else {
        int64_t Q = A / B;
        if (A % B != 0 && ((A < 0) != (B < 0)))
          --Q;
        R[I.Dst] = Q;
      }
      break;
    }
    case BcOp::Mod: {
      int64_t A = R[I.A], B = R[I.B];
      if (B == 0) {
        R[I.Dst] = 0;
      } else {
        int64_t M = A % B;
        if (M < 0)
          M += (B < 0 ? -B : B);
        R[I.Dst] = M;
      }
      break;
    }
    case BcOp::Neg:
      R[I.Dst] = -R[I.A];
      break;
    case BcOp::Min:
      R[I.Dst] = R[I.A] < R[I.B] ? R[I.A] : R[I.B];
      break;
    case BcOp::Max:
      R[I.Dst] = R[I.A] > R[I.B] ? R[I.A] : R[I.B];
      break;
    case BcOp::Eq:
      R[I.Dst] = R[I.A] == R[I.B];
      break;
    case BcOp::Ne:
      R[I.Dst] = R[I.A] != R[I.B];
      break;
    case BcOp::Lt:
      R[I.Dst] = R[I.A] < R[I.B];
      break;
    case BcOp::Le:
      R[I.Dst] = R[I.A] <= R[I.B];
      break;
    case BcOp::Gt:
      R[I.Dst] = R[I.A] > R[I.B];
      break;
    case BcOp::Ge:
      R[I.Dst] = R[I.A] >= R[I.B];
      break;
    case BcOp::And:
      R[I.Dst] = (R[I.A] != 0) & (R[I.B] != 0);
      break;
    case BcOp::Or:
      R[I.Dst] = (R[I.A] != 0) | (R[I.B] != 0);
      break;
    case BcOp::Not:
      R[I.Dst] = R[I.A] == 0;
      break;
    case BcOp::Select:
      R[I.Dst] = R[I.A] != 0 ? R[I.B] : R[I.C];
      break;
    }
  }
  for (size_t I = 0, N = OutputRegs.size(); I != N; ++I)
    Out[I] = R[OutputRegs[I]];
}

} // namespace ir
} // namespace grassp
