//===- ir/Bytecode.cpp -----------------------------------------------------=//

#include "ir/Bytecode.h"

#include <cassert>
#include <unordered_map>

// Threaded (computed-goto) dispatch for the loop-resident VM. Both GCC
// and Clang support the labels-as-values extension regardless of the
// -std= dialect; any other compiler falls back to switch dispatch.
#if defined(__GNUC__) || defined(__clang__)
#define GRASSP_BC_THREADED 1
#else
#define GRASSP_BC_THREADED 0
#endif

namespace grassp {
namespace ir {

unsigned bcNumOperands(BcOp O) {
  switch (O) {
  case BcOp::Const:
    return 0;
  case BcOp::Copy:
  case BcOp::Neg:
  case BcOp::Not:
    return 1;
  case BcOp::Select:
    return 3;
  default:
    return 2;
  }
}

int64_t evalBcOp(BcOp O, int64_t A, int64_t B, int64_t C) {
  switch (O) {
  case BcOp::Add:
    return A + B;
  case BcOp::Sub:
    return A - B;
  case BcOp::Mul:
    return A * B;
  case BcOp::Div: {
    if (B == 0)
      return 0;
    int64_t Q = A / B;
    if (A % B != 0 && ((A < 0) != (B < 0)))
      --Q;
    return Q;
  }
  case BcOp::Mod: {
    if (B == 0)
      return 0;
    int64_t M = A % B;
    if (M < 0)
      M += (B < 0 ? -B : B);
    return M;
  }
  case BcOp::Neg:
    return -A;
  case BcOp::Min:
    return A < B ? A : B;
  case BcOp::Max:
    return A > B ? A : B;
  case BcOp::Eq:
    return A == B;
  case BcOp::Ne:
    return A != B;
  case BcOp::Lt:
    return A < B;
  case BcOp::Le:
    return A <= B;
  case BcOp::Gt:
    return A > B;
  case BcOp::Ge:
    return A >= B;
  case BcOp::And:
    return (A != 0) & (B != 0);
  case BcOp::Or:
    return (A != 0) | (B != 0);
  case BcOp::Not:
    return A == 0;
  case BcOp::Select:
    return A != 0 ? B : C;
  case BcOp::Const:
  case BcOp::Copy:
    break;
  }
  assert(false && "evalBcOp: Const/Copy have no operand semantics");
  return 0;
}

namespace {

/// Compilation context: value-numbers already-compiled subexpressions so
/// shared DAG nodes are evaluated once.
class Compiler {
public:
  Compiler(std::vector<BcInstr> &Instrs, unsigned FirstTemp)
      : Instrs(Instrs), NextReg(FirstTemp) {}

  uint16_t compile(const ExprRef &E,
                   const std::unordered_map<std::string, uint16_t> &Slots) {
    auto It = Cache.find(E.get());
    if (It != Cache.end())
      return It->second;
    uint16_t R = compileUncached(E, Slots);
    Cache.emplace(E.get(), R);
    return R;
  }

  unsigned nextReg() const { return NextReg; }

private:
  uint16_t fresh() {
    assert(NextReg < 0xffff && "register file overflow");
    return static_cast<uint16_t>(NextReg++);
  }

  uint16_t emitBin(BcOp O, uint16_t A, uint16_t B) {
    uint16_t D = fresh();
    Instrs.push_back({O, D, A, B, 0, 0});
    return D;
  }

  uint16_t
  compileUncached(const ExprRef &E,
                  const std::unordered_map<std::string, uint16_t> &Slots) {
    switch (E->getOp()) {
    case Op::ConstInt: {
      uint16_t D = fresh();
      Instrs.push_back({BcOp::Const, D, 0, 0, 0, E->intValue()});
      return D;
    }
    case Op::ConstBool: {
      uint16_t D = fresh();
      Instrs.push_back({BcOp::Const, D, 0, 0, 0, E->boolValue() ? 1 : 0});
      return D;
    }
    case Op::Var: {
      auto It = Slots.find(E->varName());
      assert(It != Slots.end() && "unbound variable in bytecode compile");
      return It->second;
    }
    case Op::Neg: {
      uint16_t A = compile(E->operand(0), Slots);
      uint16_t D = fresh();
      Instrs.push_back({BcOp::Neg, D, A, 0, 0, 0});
      return D;
    }
    case Op::Not: {
      uint16_t A = compile(E->operand(0), Slots);
      uint16_t D = fresh();
      Instrs.push_back({BcOp::Not, D, A, 0, 0, 0});
      return D;
    }
    case Op::Ite: {
      uint16_t C = compile(E->operand(0), Slots);
      uint16_t T = compile(E->operand(1), Slots);
      uint16_t F = compile(E->operand(2), Slots);
      uint16_t D = fresh();
      Instrs.push_back({BcOp::Select, D, C, T, F, 0});
      return D;
    }
    case Op::BagInsertDistinct:
    case Op::BagUnion:
    case Op::BagSize:
      assert(false && "bag operations are not bytecode-compilable");
      return 0;
    default:
      break;
    }
    uint16_t A = compile(E->operand(0), Slots);
    uint16_t B = compile(E->operand(1), Slots);
    switch (E->getOp()) {
    case Op::Add:
      return emitBin(BcOp::Add, A, B);
    case Op::Sub:
      return emitBin(BcOp::Sub, A, B);
    case Op::Mul:
      return emitBin(BcOp::Mul, A, B);
    case Op::Div:
      return emitBin(BcOp::Div, A, B);
    case Op::Mod:
      return emitBin(BcOp::Mod, A, B);
    case Op::Min:
      return emitBin(BcOp::Min, A, B);
    case Op::Max:
      return emitBin(BcOp::Max, A, B);
    case Op::Eq:
      return emitBin(BcOp::Eq, A, B);
    case Op::Ne:
      return emitBin(BcOp::Ne, A, B);
    case Op::Lt:
      return emitBin(BcOp::Lt, A, B);
    case Op::Le:
      return emitBin(BcOp::Le, A, B);
    case Op::Gt:
      return emitBin(BcOp::Gt, A, B);
    case Op::Ge:
      return emitBin(BcOp::Ge, A, B);
    case Op::And:
      return emitBin(BcOp::And, A, B);
    case Op::Or:
      return emitBin(BcOp::Or, A, B);
    default:
      assert(false && "unhandled opcode");
      return 0;
    }
  }

  std::vector<BcInstr> &Instrs;
  unsigned NextReg;
  std::unordered_map<const Expr *, uint16_t> Cache;
};

} // namespace

BytecodeFunction
BytecodeFunction::compile(const std::vector<ExprRef> &Roots,
                          const std::vector<std::string> &InputNames) {
  BytecodeFunction F;
  F.NumInputs = static_cast<unsigned>(InputNames.size());
  std::unordered_map<std::string, uint16_t> Slots;
  for (unsigned I = 0; I != F.NumInputs; ++I)
    Slots.emplace(InputNames[I], static_cast<uint16_t>(I));
  Compiler C(F.Instrs, F.NumInputs);
  for (const ExprRef &Root : Roots)
    F.OutputRegs.push_back(C.compile(Root, Slots));
  F.NumRegs = C.nextReg();
  return F;
}

BytecodeFunction
BytecodeFunction::fromInstrs(std::vector<BcInstr> Instrs, unsigned NumInputs,
                             unsigned NumRegs,
                             std::vector<uint16_t> OutputRegs) {
  assert(NumInputs <= NumRegs && "inputs must fit in the register file");
#ifndef NDEBUG
  for (const BcInstr &I : Instrs) {
    assert(I.Dst < NumRegs && "destination outside the register file");
    unsigned Ops = bcNumOperands(I.Opcode);
    assert((Ops < 1 || I.A < NumRegs) && (Ops < 2 || I.B < NumRegs) &&
           (Ops < 3 || I.C < NumRegs) && "operand outside the register file");
  }
  for (uint16_t R : OutputRegs)
    assert(R < NumRegs && "output register outside the register file");
#endif
  BytecodeFunction F;
  F.Instrs = std::move(Instrs);
  F.OutputRegs = std::move(OutputRegs);
  F.NumInputs = NumInputs;
  F.NumRegs = NumRegs;
  return F;
}

void BytecodeFunction::run(int64_t *R, int64_t *Out) const {
  for (const BcInstr &I : Instrs) {
    switch (I.Opcode) {
    case BcOp::Const:
      R[I.Dst] = I.Imm;
      break;
    case BcOp::Copy:
      R[I.Dst] = R[I.A];
      break;
    default:
      R[I.Dst] = evalBcOp(I.Opcode, R[I.A], R[I.B], R[I.C]);
      break;
    }
  }
  for (size_t I = 0, N = OutputRegs.size(); I != N; ++I)
    Out[I] = R[OutputRegs[I]];
}

void BytecodeFunction::foldLoop(const int64_t *Data, size_t N,
                                int64_t *State, int64_t *Scratch) const {
  assert(numOutputs() + 1 == NumInputs &&
         "foldLoop expects inputs = state fields followed by the element");
  const unsigned NF = numOutputs();
  int64_t *const R = Scratch;            // the register file.
  int64_t *const Stage = Scratch + NumRegs; // simultaneous-writeback area.
  for (unsigned K = 0; K != NF; ++K)
    R[K] = State[K];
  const BcInstr *const Base = Instrs.data();
  const BcInstr *const EndI = Base + Instrs.size();
  const uint16_t *const ORegs = OutputRegs.data();

#if GRASSP_BC_THREADED
  // One label per opcode; table order must match the BcOp enum. Dispatch
  // jumps directly from the end of one handler to the start of the next,
  // so the element loop never leaves this frame.
  static const void *const Tbl[] = {
      &&L_Const, &&L_Copy, &&L_Add, &&L_Sub, &&L_Mul, &&L_Div, &&L_Mod,
      &&L_Neg,   &&L_Min,  &&L_Max, &&L_Eq,  &&L_Ne,  &&L_Lt,  &&L_Le,
      &&L_Gt,    &&L_Ge,   &&L_And, &&L_Or,  &&L_Not, &&L_Select};
  static_assert(sizeof(Tbl) / sizeof(Tbl[0]) ==
                    static_cast<size_t>(BcOp::Select) + 1,
                "dispatch table out of sync with BcOp");
  const BcInstr *IP = Base;
  size_t I = 0;

#define GRASSP_BC_NEXT                                                        \
  do {                                                                        \
    if (++IP == EndI)                                                         \
      goto L_IterDone;                                                        \
    goto *Tbl[static_cast<unsigned>(IP->Opcode)];                             \
  } while (0)

L_IterBegin:
  if (I == N)
    goto L_AllDone;
  R[NF] = Data[I];
  IP = Base;
  if (IP == EndI)
    goto L_IterDone;
  goto *Tbl[static_cast<unsigned>(IP->Opcode)];

L_Const:
  R[IP->Dst] = IP->Imm;
  GRASSP_BC_NEXT;
L_Copy:
  R[IP->Dst] = R[IP->A];
  GRASSP_BC_NEXT;
L_Add:
  R[IP->Dst] = R[IP->A] + R[IP->B];
  GRASSP_BC_NEXT;
L_Sub:
  R[IP->Dst] = R[IP->A] - R[IP->B];
  GRASSP_BC_NEXT;
L_Mul:
  R[IP->Dst] = R[IP->A] * R[IP->B];
  GRASSP_BC_NEXT;
L_Div:
  R[IP->Dst] = evalBcOp(BcOp::Div, R[IP->A], R[IP->B], 0);
  GRASSP_BC_NEXT;
L_Mod:
  R[IP->Dst] = evalBcOp(BcOp::Mod, R[IP->A], R[IP->B], 0);
  GRASSP_BC_NEXT;
L_Neg:
  R[IP->Dst] = -R[IP->A];
  GRASSP_BC_NEXT;
L_Min:
  R[IP->Dst] = R[IP->A] < R[IP->B] ? R[IP->A] : R[IP->B];
  GRASSP_BC_NEXT;
L_Max:
  R[IP->Dst] = R[IP->A] > R[IP->B] ? R[IP->A] : R[IP->B];
  GRASSP_BC_NEXT;
L_Eq:
  R[IP->Dst] = R[IP->A] == R[IP->B];
  GRASSP_BC_NEXT;
L_Ne:
  R[IP->Dst] = R[IP->A] != R[IP->B];
  GRASSP_BC_NEXT;
L_Lt:
  R[IP->Dst] = R[IP->A] < R[IP->B];
  GRASSP_BC_NEXT;
L_Le:
  R[IP->Dst] = R[IP->A] <= R[IP->B];
  GRASSP_BC_NEXT;
L_Gt:
  R[IP->Dst] = R[IP->A] > R[IP->B];
  GRASSP_BC_NEXT;
L_Ge:
  R[IP->Dst] = R[IP->A] >= R[IP->B];
  GRASSP_BC_NEXT;
L_And:
  R[IP->Dst] = (R[IP->A] != 0) & (R[IP->B] != 0);
  GRASSP_BC_NEXT;
L_Or:
  R[IP->Dst] = (R[IP->A] != 0) | (R[IP->B] != 0);
  GRASSP_BC_NEXT;
L_Not:
  R[IP->Dst] = R[IP->A] == 0;
  GRASSP_BC_NEXT;
L_Select: {
  // Mask blend instead of a ternary: a data-dependent branch here
  // mispredicts on every unpredictable guard (the exact shape guarded
  // accumulators feed this VM), costing more than the whole rest of
  // the dispatch loop.
  const int64_t M = -static_cast<int64_t>(R[IP->A] != 0);
  R[IP->Dst] = ((R[IP->B] ^ R[IP->C]) & M) ^ R[IP->C];
}
  GRASSP_BC_NEXT;

L_IterDone:
  // Simultaneous assignment: read every output before writing any state
  // slot (an output may name another field's input register).
  for (unsigned K = 0; K != NF; ++K)
    Stage[K] = R[ORegs[K]];
  for (unsigned K = 0; K != NF; ++K)
    R[K] = Stage[K];
  ++I;
  goto L_IterBegin;

L_AllDone:;
#undef GRASSP_BC_NEXT
#else
  for (size_t I = 0; I != N; ++I) {
    R[NF] = Data[I];
    for (const BcInstr *IP = Base; IP != EndI; ++IP) {
      switch (IP->Opcode) {
      case BcOp::Const:
        R[IP->Dst] = IP->Imm;
        break;
      case BcOp::Copy:
        R[IP->Dst] = R[IP->A];
        break;
      case BcOp::Select: {
        // Branch-free blend; see the threaded handler above.
        const int64_t M = -static_cast<int64_t>(R[IP->A] != 0);
        R[IP->Dst] = ((R[IP->B] ^ R[IP->C]) & M) ^ R[IP->C];
        break;
      }
      default:
        R[IP->Dst] = evalBcOp(IP->Opcode, R[IP->A], R[IP->B], R[IP->C]);
        break;
      }
    }
    for (unsigned K = 0; K != NF; ++K)
      Stage[K] = R[ORegs[K]];
    for (unsigned K = 0; K != NF; ++K)
      R[K] = Stage[K];
  }
#endif
  for (unsigned K = 0; K != NF; ++K)
    State[K] = R[K];
}

} // namespace ir
} // namespace grassp
