//===- serve/SolverPool.h - Fork-isolated solver worker pool -------------===//
//
// The reason `grassp serve` survives: Z3 never runs inside the server
// process. Every cache-miss solve is shipped over a socketpair to a
// prewarmed worker child forked before any solver state existed, so a
// segfaulting, hanging, or OOM-killed solve takes down exactly one
// disposable process. The server observes the death through the fd
// (EOF/POLLHUP — no idle heartbeats needed on a reliable socketpair)
// and through waitpid, decodes WIFSIGNALED/WIFEXITED for the failure
// report, and retries the job on a fresh worker with decorrelated
// backoff.
//
// Failure policy, in order:
//
//  * A SolveDone with Solved=0 is a *deterministic* synthesis failure
//    (no plan in the fragment class): reported once, never retried,
//    never breaker-counted.
//  * A worker death mid-job is an *infrastructure* failure: the job is
//    requeued with decorrelatedBackoff(Base, Cap, Prev, Seed, Key) up
//    to MaxAttempts total attempts.
//  * BreakerFailures consecutive deaths on the SAME key trip its
//    circuit breaker: the key is quarantined for QuarantineSec and the
//    waiters get a typed error[solver-unavailable] with retry-after —
//    one poisonous program cannot eat the pool alive while healthy
//    keys keep being served.
//  * A job exceeding JobDeadlineSec is a hang: the worker is SIGKILLed
//    and the death path above takes over (this is what reaps the
//    serve.worker.hang fault).
//
// Single-threaded like everything in the serve loop: the server calls
// pump() every tick (and pollFds() so worker replies wake it early).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SERVE_SOLVERPOOL_H
#define GRASSP_SERVE_SOLVERPOOL_H

#include "serve/Protocol.h"
#include "support/Cancel.h"
#include "support/FaultInject.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include <poll.h>

namespace grassp {
namespace serve {

/// Fault sites consulted BY THE WORKER CHILD when a job arrives, keyed
/// by SolveJobMsg::FaultKey (pure in (key, attempt) — replayable).
inline constexpr const char *FaultSiteWorkerKill = "serve.worker.kill";
inline constexpr const char *FaultSiteWorkerHang = "serve.worker.hang";

struct SolverPoolOptions {
  /// Prewarmed worker processes.
  size_t PoolSize = 2;
  /// Per-attempt wall-clock bound; past it the worker is SIGKILLed.
  double JobDeadlineSec = 60.0;
  /// Total attempts per job before giving up (1 = no retry).
  unsigned MaxAttempts = 3;
  /// Decorrelated-jitter retry backoff (seconds).
  double BackoffBaseSec = 0.02;
  double BackoffCapSec = 1.0;
  /// Consecutive worker deaths on one key that trip its breaker.
  unsigned BreakerFailures = 3;
  /// How long a tripped key stays quarantined.
  double QuarantineSec = 5.0;
  /// Lifetime cap on worker respawns (fork-bomb backstop).
  unsigned MaxRespawns = 256;
  /// Seed for the backoff draws.
  uint64_t Seed = 0;
  /// Solver budgets forwarded in each job.
  uint32_t SmtTimeoutMs = 30000;
  uint32_t CertTimeoutMs = 20000;
  /// Injector consulted by worker children (inherited across fork) at
  /// serve.worker.kill / serve.worker.hang. Optional.
  FaultInjector *Faults = nullptr;
  /// Runs in the CHILD immediately after fork, before the worker loop:
  /// the server closes its listen socket, client fds, and cache journal
  /// fd here so a worker never holds server resources open.
  std::function<void()> AtForkChild;
};

/// One finished job, surfaced by pump().
struct SolveOutcome {
  uint64_t JobId = 0;
  uint64_t Key = 0;
  /// The worker's verdict (valid when Kind == Done).
  SolveDoneMsg Done;
  enum class Kind : uint8_t {
    Done,        ///< Worker replied (Done.Solved says success/failure).
    Exhausted,   ///< Died MaxAttempts times; FailureReason has the story.
    Quarantined, ///< Key circuit-broken; RetryAfterMs set.
  } Outcome = Kind::Done;
  std::string FailureReason;
  uint32_t RetryAfterMs = 0;
};

class SolverPool {
public:
  SolverPool() = default;
  ~SolverPool();

  SolverPool(const SolverPool &) = delete;
  SolverPool &operator=(const SolverPool &) = delete;

  /// Forks the prewarmed workers. False (with \p Err) when fork or
  /// socketpair fails outright.
  bool start(const SolverPoolOptions &Opts, std::string *Err);

  /// Enqueues a solve for \p Key; returns the job id. The caller has
  /// already checked quarantine (submit does not re-check — a caller
  /// that wants to queue into a quarantined key may).
  uint64_t submit(uint64_t Key, const std::string &ProgramText);

  /// True when \p Key is currently circuit-broken; \p RetryAfterMs (if
  /// non-null) receives the remaining quarantine in ms (>= 1).
  bool quarantined(uint64_t Key, uint32_t *RetryAfterMs = nullptr);

  /// Appends the worker fds (POLLIN) so the server's poll() wakes the
  /// moment a solve finishes or a worker dies.
  void pollFds(std::vector<struct pollfd> *Out) const;

  /// One scheduling round: drains worker replies, reaps deaths, kills
  /// deadline-blown hangs, requeues/retries/quarantines, dispatches
  /// ready jobs to idle workers, respawns. Finished jobs append to
  /// \p Out.
  void pump(std::vector<SolveOutcome> *Out);

  /// Sends Shutdown to every worker and reaps them (SIGKILL after
  /// \p GraceSec). In-flight jobs are abandoned. Idempotent.
  void shutdown(double GraceSec = 2.0);

  size_t idleWorkers() const;
  size_t liveWorkers() const;
  size_t pendingJobs() const { return Pending.size(); }
  size_t inFlightJobs() const;

  struct Stats {
    uint64_t Submitted = 0;
    uint64_t Completed = 0; ///< SolveDone received (either verdict).
    uint64_t WorkerDeaths = 0;
    uint64_t DeadlineKills = 0;
    uint64_t Retries = 0;
    uint64_t Exhausted = 0;
    uint64_t BreakerTrips = 0;
    uint64_t Respawns = 0;
  };
  const Stats &stats() const { return Counters; }

private:
  struct Job {
    uint64_t JobId = 0;
    uint64_t Key = 0;
    std::string Program;
    unsigned Attempt = 0;  ///< attempts already consumed.
    double PrevBackoff = 0;
    Deadline ReadyAt;      ///< not dispatched before this passes.
  };

  struct Worker {
    pid_t Pid = -1;
    int Fd = -1;
    dist::FrameReader Reader;
    dist::FrameWriter Writer;
    bool Busy = false;
    Job Current;          ///< valid when Busy.
    Deadline JobDeadline; ///< valid when Busy.
  };

  bool spawnWorker(std::string *Err);
  void dispatchReady();
  void handleWorkerDown(size_t Idx, std::vector<SolveOutcome> *Out);
  void failAttempt(Job J, const std::string &Reason,
                   std::vector<SolveOutcome> *Out);

  SolverPoolOptions Opts;
  std::vector<Worker> Workers;
  std::deque<Job> Pending;
  uint64_t NextJobId = 1;
  /// Consecutive infrastructure failures per key (reset on SolveDone).
  std::map<uint64_t, unsigned> BreakerCount;
  /// Quarantine expiry per tripped key.
  std::map<uint64_t, Deadline> Quarantine;
  Stats Counters;
  bool Started = false;
  bool ShutDown = false;
};

/// The worker child's main loop (exposed for the chaos harness, which
/// forks workers under its own injector). Never returns; _exit()s on
/// Shutdown, EOF, or a corrupt frame.
[[noreturn]] void solverWorkerMain(int Fd, FaultInjector *Faults);

} // namespace serve
} // namespace grassp

#endif // GRASSP_SERVE_SOLVERPOOL_H
