//===- serve/CanonHash.h - Canonical structural program hash -------------===//
//
// The solution-cache key: a 64-bit hash of a SerialProgram that is
// invariant under everything that does not change the synthesis
// problem —
//
//  * alpha-renaming: state fields are identified by ROLE, not by name.
//    Each field gets a signature refined Weisfeiler-Leman-style: start
//    from (type, init), then repeatedly mix in the hash of the field's
//    step expression with every field REFERENCE resolved to the
//    referencing-round signature of the referenced field. After
//    |fields|+1 rounds two fields share a signature iff they are
//    structurally interchangeable, so renaming (or any consistent
//    permutation of names) cannot move the hash.
//  * field reordering: the final per-field signatures are sorted before
//    they enter the program hash, and the output/alphabet are hashed
//    independently of declaration order.
//  * formatting: hashing consumes the parsed IR, never source text, so
//    whitespace/comment/layout variants are identical by construction.
//
// What DOES reach the hash: field types and initial values (except Bag
// init, which does not exist), step and output structure, the input
// alphabet (sorted, deduplicated) and generator range — exactly the
// inputs synthesize() reads. Name, Description and ExpectedGroup are
// display metadata and are excluded.
//
// Stability: the mix is private FNV-1a/avalanche arithmetic — never
// std::hash — so a key written by one build is valid for every later
// run on any platform. CanonHashVersion salts the hash; bump it when
// the scheme changes so stale cache entries miss instead of colliding.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SERVE_CANONHASH_H
#define GRASSP_SERVE_CANONHASH_H

#include "lang/Program.h"
#include "synth/ParallelPlan.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grassp {
namespace serve {

inline constexpr uint64_t CanonHashVersion = 1;

/// The canonical structural hash described above.
uint64_t canonicalProgramHash(const lang::SerialProgram &P);

/// The final per-field WL signatures, in declaration order. Two
/// programs with equal canonicalProgramHash have equal signature
/// multisets; the pairing of equal signatures is the field
/// correspondence rebindPlanToProgram() renames along.
std::vector<uint64_t> canonicalFieldSignatures(const lang::SerialProgram &P);

/// Rewrites \p Plan — synthesized for \p From — so it applies to \p To,
/// an alpha-renamed / field-reordered variant with the same canonical
/// hash: field indices are remapped and merge-operand variables
/// ("a_<field>"/"b_<field>") renamed along the signature pairing.
/// False when the programs' signatures do not actually correspond
/// (hash collision or caller error); treat as a cache miss.
bool rebindPlanToProgram(const synth::ParallelPlan &Plan,
                         const lang::SerialProgram &From,
                         const lang::SerialProgram &To,
                         synth::ParallelPlan *Out);

/// The hash as the fixed-width lowercase hex the cache journal stores.
std::string canonicalProgramKey(const lang::SerialProgram &P);
std::string keyToHex(uint64_t Key);
bool keyFromHex(const std::string &Hex, uint64_t *Key);

} // namespace serve
} // namespace grassp

#endif // GRASSP_SERVE_CANONHASH_H
