//===- serve/CanonHash.cpp ------------------------------------------------==//

#include "serve/CanonHash.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace grassp {
namespace serve {

namespace {

// Private mixing only: std::hash is implementation-defined and would
// make on-disk keys build-dependent.

constexpr uint64_t FnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t FnvPrime = 0x100000001b3ULL;

uint64_t mixByte(uint64_t H, uint8_t B) { return (H ^ B) * FnvPrime; }

uint64_t mixU64(uint64_t H, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    H = mixByte(H, static_cast<uint8_t>(V >> (I * 8)));
  return H;
}

/// splitmix64 finalizer: spreads the low-entropy FNV state before a
/// value is reused as a field signature inside another hash.
uint64_t avalanche(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Distinguished code for the input-element variable: it is the one
/// variable whose IDENTITY (not name) is fixed by the language.
constexpr uint64_t InputVarCode = 0x1337a11ce0ULL;

/// Hash of an expression with every field reference replaced by the
/// current per-field signature. Memoized per (round) via \p Memo: step
/// expressions are DAGs and the refinement re-walks them once per
/// round.
uint64_t exprHash(const ir::ExprRef &E,
                  const std::map<std::string, uint64_t> &FieldSig,
                  std::map<const ir::Expr *, uint64_t> &Memo) {
  auto It = Memo.find(E.get());
  if (It != Memo.end())
    return It->second;
  uint64_t H = FnvOffset;
  H = mixByte(H, static_cast<uint8_t>(E->getOp()));
  H = mixByte(H, static_cast<uint8_t>(E->getType()));
  if (E->isConstInt())
    H = mixU64(H, static_cast<uint64_t>(E->intValue()));
  else if (E->isConstBool())
    H = mixByte(H, E->boolValue() ? 1 : 0);
  else if (E->isVar()) {
    auto F = FieldSig.find(E->varName());
    // Unknown variables (merge operands etc.) hash by name — canonical
    // program hashing only ever sees fields and "in", but keep total.
    uint64_t Code;
    if (F != FieldSig.end())
      Code = F->second;
    else if (E->varName() == lang::inputVarName())
      Code = InputVarCode;
    else {
      Code = FnvOffset;
      for (char C : E->varName())
        Code = mixByte(Code, static_cast<uint8_t>(C));
    }
    H = mixU64(H, Code);
  }
  H = mixU64(H, E->numOperands());
  for (const ir::ExprRef &Op : E->operands())
    H = mixU64(H, exprHash(Op, FieldSig, Memo));
  H = avalanche(H);
  Memo.emplace(E.get(), H);
  return H;
}

} // namespace

std::vector<uint64_t> canonicalFieldSignatures(const lang::SerialProgram &P) {
  const size_t N = P.State.size();

  // Round 0: a field's signature is its local facts — type, and init
  // for the types that have one (bag fields start empty by definition;
  // their InitInt is noise and must not reach the hash).
  std::vector<uint64_t> Sig(N);
  for (size_t I = 0; I < N; ++I) {
    const lang::Field &F = P.State.field(I);
    uint64_t H = FnvOffset;
    H = mixByte(H, static_cast<uint8_t>(F.Ty));
    if (F.Ty != ir::TypeKind::Bag)
      H = mixU64(H, static_cast<uint64_t>(F.InitInt));
    Sig[I] = avalanche(H);
  }

  // Weisfeiler-Leman refinement: each round folds the field's step
  // expression — with references resolved to current signatures — into
  // its signature. N+1 rounds are enough for the signature partition to
  // stabilize on an N-field state.
  for (size_t Round = 0; Round <= N; ++Round) {
    std::map<std::string, uint64_t> Ref;
    for (size_t I = 0; I < N; ++I)
      Ref[P.State.field(I).Name] = Sig[I];
    std::map<const ir::Expr *, uint64_t> Memo;
    std::vector<uint64_t> Next(N);
    for (size_t I = 0; I < N; ++I) {
      uint64_t H = FnvOffset;
      H = mixU64(H, Sig[I]);
      H = mixU64(H, exprHash(P.Step[I], Ref, Memo));
      Next[I] = avalanche(H);
    }
    Sig = std::move(Next);
  }
  return Sig;
}

uint64_t canonicalProgramHash(const lang::SerialProgram &P) {
  const size_t N = P.State.size();
  std::vector<uint64_t> Sig = canonicalFieldSignatures(P);

  // The program hash: sorted final signatures (declaration order must
  // not matter), the output over final signatures, and the semantic
  // workload parameters.
  uint64_t H = FnvOffset;
  H = mixU64(H, CanonHashVersion);
  H = mixU64(H, N);
  std::vector<uint64_t> Sorted = Sig;
  std::sort(Sorted.begin(), Sorted.end());
  for (uint64_t S : Sorted)
    H = mixU64(H, S);

  std::map<std::string, uint64_t> Ref;
  for (size_t I = 0; I < N; ++I)
    Ref[P.State.field(I).Name] = Sig[I];
  std::map<const ir::Expr *, uint64_t> Memo;
  H = mixU64(H, exprHash(P.Output, Ref, Memo));

  std::vector<int64_t> Alpha = P.InputAlphabet;
  std::sort(Alpha.begin(), Alpha.end());
  Alpha.erase(std::unique(Alpha.begin(), Alpha.end()), Alpha.end());
  H = mixU64(H, Alpha.size());
  for (int64_t V : Alpha)
    H = mixU64(H, static_cast<uint64_t>(V));
  H = mixU64(H, static_cast<uint64_t>(P.GenLo));
  H = mixU64(H, static_cast<uint64_t>(P.GenHi));
  return avalanche(H);
}

bool rebindPlanToProgram(const synth::ParallelPlan &Plan,
                         const lang::SerialProgram &From,
                         const lang::SerialProgram &To,
                         synth::ParallelPlan *Out) {
  const size_t N = From.State.size();
  if (To.State.size() != N)
    return false;
  std::vector<uint64_t> FromSig = canonicalFieldSignatures(From);
  std::vector<uint64_t> ToSig = canonicalFieldSignatures(To);

  // Pair fields by signature: sort both sides by (signature, index) and
  // match positionally. Fields that tie on signature are structurally
  // interchangeable, so any signature-preserving bijection is valid.
  std::vector<size_t> FromOrder(N), ToOrder(N);
  for (size_t I = 0; I < N; ++I)
    FromOrder[I] = ToOrder[I] = I;
  auto bySig = [](const std::vector<uint64_t> &Sig) {
    return [&Sig](size_t A, size_t B) {
      return Sig[A] != Sig[B] ? Sig[A] < Sig[B] : A < B;
    };
  };
  std::sort(FromOrder.begin(), FromOrder.end(), bySig(FromSig));
  std::sort(ToOrder.begin(), ToOrder.end(), bySig(ToSig));

  std::vector<size_t> Map(N); // From index -> To index.
  for (size_t I = 0; I < N; ++I) {
    size_t F = FromOrder[I], T = ToOrder[I];
    if (FromSig[F] != ToSig[T] ||
        From.State.field(F).Ty != To.State.field(T).Ty)
      return false; // not actually corresponding: treat as a miss.
    Map[F] = T;
  }

  // Merge-operand variable renaming along the pairing.
  std::map<std::string, ir::ExprRef> Subst;
  for (size_t F = 0; F < N; ++F) {
    const lang::Field &FF = From.State.field(F);
    const lang::Field &TF = To.State.field(Map[F]);
    if (FF.Name == TF.Name)
      continue;
    Subst["a_" + FF.Name] = ir::var("a_" + TF.Name, FF.Ty);
    Subst["b_" + FF.Name] = ir::var("b_" + TF.Name, FF.Ty);
  }
  auto rebindExpr = [&](const ir::ExprRef &E) -> ir::ExprRef {
    if (!E || Subst.empty())
      return E;
    return ir::substitute(E, Subst);
  };

  synth::ParallelPlan R = Plan;
  if (!Plan.Merge.Combine.empty()) {
    if (Plan.Merge.Combine.size() != N)
      return false;
    R.Merge.Combine.assign(N, nullptr);
    for (size_t F = 0; F < N; ++F)
      R.Merge.Combine[Map[F]] = rebindExpr(Plan.Merge.Combine[F]);
  }
  for (size_t &I : R.Cond.CtrlFields) {
    if (I >= N)
      return false;
    I = Map[I];
  }
  for (size_t &I : R.Cond.AccFields) {
    if (I >= N)
      return false;
    I = Map[I];
  }
  // PrefixCond / CtrlStep / AccMode / AccArg range over "in" only and
  // CtrlValues rows are positional in CtrlFields — nothing to rename.
  *Out = std::move(R);
  return true;
}

std::string keyToHex(uint64_t Key) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Key));
  return Buf;
}

bool keyFromHex(const std::string &Hex, uint64_t *Key) {
  if (Hex.size() != 16)
    return false;
  uint64_t V = 0;
  for (char C : Hex) {
    uint64_t D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else
      return false;
    V = (V << 4) | D;
  }
  *Key = V;
  return true;
}

std::string canonicalProgramKey(const lang::SerialProgram &P) {
  return keyToHex(canonicalProgramHash(P));
}

} // namespace serve
} // namespace grassp
