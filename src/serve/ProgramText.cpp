//===- serve/ProgramText.cpp ----------------------------------------------==//

#include "serve/ProgramText.h"

#include <cstdlib>
#include <map>
#include <sstream>

namespace grassp {
namespace serve {

namespace {

//===----------------------------------------------------------------------===//
// S-expressions
//===----------------------------------------------------------------------===//

struct Sexp {
  bool IsAtom = false;
  std::string Atom;
  std::vector<Sexp> Kids;
};

constexpr unsigned MaxDepth = 200;

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Err;

  explicit Parser(const std::string &T) : Text(T) {}

  bool fail(const std::string &What) {
    Err = What + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (C == ' ' || C == '\t' || C == '\n' || C == '\r') {
        ++Pos;
        continue;
      }
      break;
    }
  }

  bool parse(Sexp *Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == ')')
      return fail("unexpected ')'");
    if (C == '(') {
      ++Pos;
      Out->IsAtom = false;
      Out->Kids.clear();
      for (;;) {
        skipSpace();
        if (Pos >= Text.size())
          return fail("unterminated list");
        if (Text[Pos] == ')') {
          ++Pos;
          return true;
        }
        Out->Kids.emplace_back();
        if (!parse(&Out->Kids.back(), Depth + 1))
          return false;
      }
    }
    // Atom: everything up to whitespace, paren, or comment.
    size_t Start = Pos;
    while (Pos < Text.size()) {
      char A = Text[Pos];
      if (A == '(' || A == ')' || A == ';' || A == ' ' || A == '\t' ||
          A == '\n' || A == '\r')
        break;
      ++Pos;
    }
    Out->IsAtom = true;
    Out->Atom = Text.substr(Start, Pos - Start);
    return true;
  }
};

bool parseSexpTop(const std::string &Text, Sexp *Out, std::string *Err) {
  Parser P(Text);
  if (!P.parse(Out, 0)) {
    *Err = P.Err;
    return false;
  }
  P.skipSpace();
  if (P.Pos != Text.size()) {
    *Err = "trailing garbage at offset " + std::to_string(P.Pos);
    return false;
  }
  return true;
}

bool isHead(const Sexp &S, const char *Name) {
  return !S.IsAtom && !S.Kids.empty() && S.Kids[0].IsAtom &&
         S.Kids[0].Atom == Name;
}

bool atomInt(const Sexp &S, int64_t *Out) {
  if (!S.IsAtom || S.Atom.empty())
    return false;
  const char *C = S.Atom.c_str();
  char *End = nullptr;
  long long V = std::strtoll(C, &End, 10);
  if (End != C + S.Atom.size())
    return false;
  *Out = V;
  return true;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

using Env = std::map<std::string, ir::TypeKind>;

struct OpInfo {
  const char *Name;
  ir::Op O;
};

const OpInfo OpTable[] = {
    {"add", ir::Op::Add},       {"sub", ir::Op::Sub},
    {"mul", ir::Op::Mul},       {"div", ir::Op::Div},
    {"mod", ir::Op::Mod},       {"neg", ir::Op::Neg},
    {"min", ir::Op::Min},       {"max", ir::Op::Max},
    {"eq", ir::Op::Eq},         {"ne", ir::Op::Ne},
    {"lt", ir::Op::Lt},         {"le", ir::Op::Le},
    {"gt", ir::Op::Gt},         {"ge", ir::Op::Ge},
    {"and", ir::Op::And},       {"or", ir::Op::Or},
    {"not", ir::Op::Not},       {"ite", ir::Op::Ite},
    {"bag-insert", ir::Op::BagInsertDistinct},
    {"bag-union", ir::Op::BagUnion},
    {"bag-size", ir::Op::BagSize},
};

const char *opText(ir::Op O) {
  for (const OpInfo &I : OpTable)
    if (I.O == O)
      return I.Name;
  return nullptr;
}

/// Strictly typed expression build; every operand is checked before the
/// IR builders see it (the builders assert, this is the boundary that
/// must reject instead).
ir::ExprRef buildExpr(const Sexp &S, const Env &E, std::string *Err) {
  using ir::TypeKind;
  auto fail = [&](const std::string &What) -> ir::ExprRef {
    if (Err->empty())
      *Err = What;
    return nullptr;
  };
  if (S.IsAtom) {
    int64_t V;
    if (atomInt(S, &V))
      return ir::constInt(V);
    if (S.Atom == "true")
      return ir::constBool(true);
    if (S.Atom == "false")
      return ir::constBool(false);
    auto It = E.find(S.Atom);
    if (It == E.end())
      return fail("unbound variable '" + S.Atom + "'");
    return ir::var(It->first, It->second);
  }
  if (S.Kids.empty() || !S.Kids[0].IsAtom)
    return fail("expected operator list");
  const std::string &Head = S.Kids[0].Atom;
  const OpInfo *Info = nullptr;
  for (const OpInfo &I : OpTable)
    if (Head == I.Name) {
      Info = &I;
      break;
    }
  if (!Info)
    return fail("unknown operator '" + Head + "'");

  std::vector<ir::ExprRef> Args;
  for (size_t I = 1; I < S.Kids.size(); ++I) {
    ir::ExprRef A = buildExpr(S.Kids[I], E, Err);
    if (!A)
      return nullptr;
    Args.push_back(std::move(A));
  }
  auto want = [&](size_t N) { return Args.size() == N; };
  auto allOf = [&](TypeKind K) {
    for (const ir::ExprRef &A : Args)
      if (A->getType() != K)
        return false;
    return true;
  };
  switch (Info->O) {
  case ir::Op::Add:
  case ir::Op::Sub:
  case ir::Op::Mul:
  case ir::Op::Div:
  case ir::Op::Mod:
  case ir::Op::Min:
  case ir::Op::Max:
    if (!want(2) || !allOf(TypeKind::Int))
      return fail("'" + Head + "' wants two Int operands");
    return ir::binary(Info->O, Args[0], Args[1]);
  case ir::Op::Neg:
    if (!want(1) || !allOf(TypeKind::Int))
      return fail("'neg' wants one Int operand");
    return ir::neg(Args[0]);
  case ir::Op::Eq:
  case ir::Op::Ne:
  case ir::Op::Lt:
  case ir::Op::Le:
  case ir::Op::Gt:
  case ir::Op::Ge:
    if (!want(2) || !allOf(TypeKind::Int))
      return fail("'" + Head + "' wants two Int operands");
    return ir::binary(Info->O, Args[0], Args[1]);
  case ir::Op::And:
  case ir::Op::Or:
    if (!want(2) || !allOf(TypeKind::Bool))
      return fail("'" + Head + "' wants two Bool operands");
    return ir::binary(Info->O, Args[0], Args[1]);
  case ir::Op::Not:
    if (!want(1) || !allOf(TypeKind::Bool))
      return fail("'not' wants one Bool operand");
    return ir::lnot(Args[0]);
  case ir::Op::Ite:
    if (!want(3) || Args[0]->getType() != TypeKind::Bool ||
        Args[1]->getType() != Args[2]->getType())
      return fail("'ite' wants (Bool, T, T)");
    return ir::ite(Args[0], Args[1], Args[2]);
  case ir::Op::BagInsertDistinct:
    if (!want(2) || Args[0]->getType() != TypeKind::Bag ||
        Args[1]->getType() != TypeKind::Int)
      return fail("'bag-insert' wants (Bag, Int)");
    return ir::bagInsertDistinct(Args[0], Args[1]);
  case ir::Op::BagUnion:
    if (!want(2) || !allOf(TypeKind::Bag))
      return fail("'bag-union' wants two Bag operands");
    return ir::bagUnion(Args[0], Args[1]);
  case ir::Op::BagSize:
    if (!want(1) || !allOf(TypeKind::Bag))
      return fail("'bag-size' wants one Bag operand");
    return ir::bagSize(Args[0]);
  default:
    return fail("operator '" + Head + "' is not an expression head");
  }
}

void printExpr(const ir::ExprRef &E, std::string &Out) {
  if (E->isConstInt()) {
    Out += std::to_string(E->intValue());
    return;
  }
  if (E->isConstBool()) {
    Out += E->boolValue() ? "true" : "false";
    return;
  }
  if (E->isVar()) {
    Out += E->varName();
    return;
  }
  const char *Name = opText(E->getOp());
  Out += '(';
  Out += Name ? Name : "?";
  for (const ir::ExprRef &A : E->operands()) {
    Out += ' ';
    printExpr(A, Out);
  }
  Out += ')';
}

std::string exprText(const ir::ExprRef &E) {
  std::string S;
  printExpr(E, S);
  return S;
}

//===----------------------------------------------------------------------===//
// Scenario / flavor names
//===----------------------------------------------------------------------===//

struct ScenarioName {
  const char *Name;
  synth::Scenario S;
};
const ScenarioName Scenarios[] = {
    {"no-prefix", synth::Scenario::NoPrefix},
    {"const-prefix", synth::Scenario::ConstPrefix},
    {"cond-refold", synth::Scenario::CondPrefixRefold},
    {"cond-summary", synth::Scenario::CondPrefixSummary},
};

struct FlavorName {
  const char *Name;
  synth::AccFlavor F;
};
const FlavorName Flavors[] = {
    {"plus", synth::AccFlavor::Plus}, {"max", synth::AccFlavor::Max},
    {"min", synth::AccFlavor::Min},   {"and", synth::AccFlavor::And},
    {"or", synth::AccFlavor::Or},     {"set", synth::AccFlavor::SetLike},
};

} // namespace

//===----------------------------------------------------------------------===//
// Programs
//===----------------------------------------------------------------------===//

std::string printProgramText(const lang::SerialProgram &P) {
  std::string Out = "(program (name ";
  Out += P.Name.empty() ? "anon" : P.Name;
  Out += ") (state";
  for (const lang::Field &F : P.State.fields()) {
    Out += " (";
    Out += F.Name;
    switch (F.Ty) {
    case ir::TypeKind::Int:
      Out += " int " + std::to_string(F.InitInt);
      break;
    case ir::TypeKind::Bool:
      Out += " bool " + std::to_string(F.InitInt ? 1 : 0);
      break;
    case ir::TypeKind::Bag:
      Out += " bag";
      break;
    }
    Out += ')';
  }
  Out += ") (step";
  for (size_t I = 0; I < P.State.size(); ++I) {
    Out += " (";
    Out += P.State.field(I).Name;
    Out += ' ';
    Out += exprText(P.Step[I]);
    Out += ')';
  }
  Out += ") (output ";
  Out += exprText(P.Output);
  Out += ')';
  if (!P.InputAlphabet.empty()) {
    Out += " (alphabet";
    for (int64_t V : P.InputAlphabet)
      Out += ' ' + std::to_string(V);
    Out += ')';
  }
  Out += " (range " + std::to_string(P.GenLo) + ' ' + std::to_string(P.GenHi) +
         ')';
  if (!P.ExpectedGroup.empty())
    Out += " (group " + P.ExpectedGroup + ')';
  Out += ')';
  return Out;
}

bool parseProgramText(const std::string &Text, lang::SerialProgram *Out,
                      std::string *Err) {
  Err->clear();
  if (Text.size() > (1u << 20)) {
    *Err = "program text too large";
    return false;
  }
  Sexp Top;
  if (!parseSexpTop(Text, &Top, Err))
    return false;
  if (!isHead(Top, "program")) {
    *Err = "expected (program ...)";
    return false;
  }
  lang::SerialProgram P;
  const Sexp *StepClause = nullptr, *OutputClause = nullptr;
  bool SawState = false, SawRange = false;
  for (size_t I = 1; I < Top.Kids.size(); ++I) {
    const Sexp &C = Top.Kids[I];
    if (C.IsAtom || C.Kids.empty() || !C.Kids[0].IsAtom) {
      *Err = "expected a (head ...) clause";
      return false;
    }
    const std::string &Head = C.Kids[0].Atom;
    if (Head == "name") {
      if (C.Kids.size() != 2 || !C.Kids[1].IsAtom) {
        *Err = "(name N) wants one atom";
        return false;
      }
      P.Name = C.Kids[1].Atom;
    } else if (Head == "state") {
      if (SawState) {
        *Err = "duplicate (state ...)";
        return false;
      }
      SawState = true;
      std::vector<lang::Field> Fields;
      for (size_t J = 1; J < C.Kids.size(); ++J) {
        const Sexp &FS = C.Kids[J];
        if (FS.IsAtom || FS.Kids.size() < 2 || !FS.Kids[0].IsAtom ||
            !FS.Kids[1].IsAtom) {
          *Err = "state field wants (name type [init])";
          return false;
        }
        lang::Field F;
        F.Name = FS.Kids[0].Atom;
        const std::string &Ty = FS.Kids[1].Atom;
        if (Ty == "int" || Ty == "bool") {
          F.Ty = Ty == "int" ? ir::TypeKind::Int : ir::TypeKind::Bool;
          if (FS.Kids.size() != 3 || !atomInt(FS.Kids[2], &F.InitInt)) {
            *Err = "field '" + F.Name + "' wants an integer init";
            return false;
          }
          if (F.Ty == ir::TypeKind::Bool && F.InitInt != 0 && F.InitInt != 1) {
            *Err = "bool field '" + F.Name + "' init must be 0/1";
            return false;
          }
        } else if (Ty == "bag") {
          F.Ty = ir::TypeKind::Bag;
          if (FS.Kids.size() != 2) {
            *Err = "bag field '" + F.Name + "' takes no init";
            return false;
          }
        } else {
          *Err = "unknown field type '" + Ty + "'";
          return false;
        }
        for (const lang::Field &Prev : Fields)
          if (Prev.Name == F.Name) {
            *Err = "duplicate field '" + F.Name + "'";
            return false;
          }
        if (F.Name == lang::inputVarName()) {
          *Err = "field may not shadow '" + std::string(lang::inputVarName()) +
                 "'";
          return false;
        }
        Fields.push_back(std::move(F));
      }
      if (Fields.empty()) {
        *Err = "state needs at least one field";
        return false;
      }
      P.State = lang::StateLayout(std::move(Fields));
    } else if (Head == "step") {
      StepClause = &C;
    } else if (Head == "output") {
      OutputClause = &C;
    } else if (Head == "alphabet") {
      for (size_t J = 1; J < C.Kids.size(); ++J) {
        int64_t V;
        if (!atomInt(C.Kids[J], &V)) {
          *Err = "alphabet wants integers";
          return false;
        }
        P.InputAlphabet.push_back(V);
      }
    } else if (Head == "range") {
      if (C.Kids.size() != 3 || !atomInt(C.Kids[1], &P.GenLo) ||
          !atomInt(C.Kids[2], &P.GenHi) || P.GenLo > P.GenHi) {
        *Err = "(range lo hi) wants lo <= hi";
        return false;
      }
      SawRange = true;
    } else if (Head == "group") {
      if (C.Kids.size() != 2 || !C.Kids[1].IsAtom) {
        *Err = "(group G) wants one atom";
        return false;
      }
      P.ExpectedGroup = C.Kids[1].Atom;
    } else if (Head == "desc") {
      // Tolerated and ignored: display metadata.
    } else {
      *Err = "unknown program clause '" + Head + "'";
      return false;
    }
  }
  (void)SawRange;
  if (!SawState || !StepClause || !OutputClause) {
    *Err = "program needs (state ...), (step ...) and (output ...)";
    return false;
  }

  Env E;
  E[lang::inputVarName()] = ir::TypeKind::Int;
  for (const lang::Field &F : P.State.fields())
    E[F.Name] = F.Ty;

  P.Step.assign(P.State.size(), nullptr);
  for (size_t J = 1; J < StepClause->Kids.size(); ++J) {
    const Sexp &SS = StepClause->Kids[J];
    if (SS.IsAtom || SS.Kids.size() != 2 || !SS.Kids[0].IsAtom) {
      *Err = "step wants (field expr) pairs";
      return false;
    }
    int Idx = P.State.indexOf(SS.Kids[0].Atom);
    if (Idx < 0) {
      *Err = "step for unknown field '" + SS.Kids[0].Atom + "'";
      return false;
    }
    if (P.Step[Idx]) {
      *Err = "duplicate step for field '" + SS.Kids[0].Atom + "'";
      return false;
    }
    ir::ExprRef Ex = buildExpr(SS.Kids[1], E, Err);
    if (!Ex)
      return false;
    if (Ex->getType() != P.State.field(Idx).Ty) {
      *Err = "step for '" + SS.Kids[0].Atom + "' has the wrong type";
      return false;
    }
    P.Step[Idx] = std::move(Ex);
  }
  for (size_t I = 0; I < P.State.size(); ++I)
    if (!P.Step[I]) {
      *Err = "missing step for field '" + P.State.field(I).Name + "'";
      return false;
    }

  if (OutputClause->Kids.size() != 2) {
    *Err = "(output E) wants one expression";
    return false;
  }
  P.Output = buildExpr(OutputClause->Kids[1], E, Err);
  if (!P.Output)
    return false;
  *Out = std::move(P);
  return true;
}

//===----------------------------------------------------------------------===//
// Plans
//===----------------------------------------------------------------------===//

std::string printPlanText(const synth::ParallelPlan &Plan) {
  std::string Out = "(plan (scenario ";
  for (const ScenarioName &S : Scenarios)
    if (S.S == Plan.Kind)
      Out += S.Name;
  Out += ") (prefix " + std::to_string(Plan.PrefixLen) + ") (merge ";
  Out += Plan.Merge.Refold ? '1' : '0';
  for (const ir::ExprRef &C : Plan.Merge.Combine) {
    Out += ' ';
    Out += C ? exprText(C) : "_";
  }
  Out += ')';
  if (Plan.Kind == synth::Scenario::CondPrefixRefold ||
      Plan.Kind == synth::Scenario::CondPrefixSummary) {
    const synth::CondPrefixInfo &CP = Plan.Cond;
    Out += " (cond (pc " + exprText(CP.PrefixCond) + ") (ctrl";
    for (size_t I : CP.CtrlFields)
      Out += ' ' + std::to_string(I);
    Out += ") (acc";
    for (size_t I : CP.AccFields)
      Out += ' ' + std::to_string(I);
    Out += ") (flavors";
    for (synth::AccFlavor F : CP.AccFlavors)
      for (const FlavorName &FN : Flavors)
        if (FN.F == F) {
          Out += ' ';
          Out += FN.Name;
        }
    Out += ") (vals";
    for (const std::vector<int64_t> &Row : CP.CtrlValues) {
      Out += " (";
      for (size_t K = 0; K < Row.size(); ++K)
        Out += (K ? " " : "") + std::to_string(Row[K]);
      Out += ')';
    }
    auto table = [&](const char *Name,
                     const std::vector<std::vector<ir::ExprRef>> &T) {
      Out += ") (";
      Out += Name;
      for (const std::vector<ir::ExprRef> &Row : T) {
        Out += " (";
        for (size_t K = 0; K < Row.size(); ++K) {
          if (K)
            Out += ' ';
          Out += Row[K] ? exprText(Row[K]) : "_";
        }
        Out += ')';
      }
    };
    table("cstep", CP.CtrlStep);
    table("mode", CP.AccMode);
    table("arg", CP.AccArg);
    Out += "))";
  }
  Out += ')';
  return Out;
}

bool parsePlanText(const std::string &Text, const lang::SerialProgram &Prog,
                   synth::ParallelPlan *Out, std::string *Err) {
  Err->clear();
  if (Text.size() > (1u << 20)) {
    *Err = "plan text too large";
    return false;
  }
  Sexp Top;
  if (!parseSexpTop(Text, &Top, Err))
    return false;
  if (!isHead(Top, "plan")) {
    *Err = "expected (plan ...)";
    return false;
  }

  Env MergeEnv, InEnv;
  InEnv[lang::inputVarName()] = ir::TypeKind::Int;
  for (const lang::Field &F : Prog.State.fields()) {
    MergeEnv["a_" + F.Name] = F.Ty;
    MergeEnv["b_" + F.Name] = F.Ty;
  }

  synth::ParallelPlan P;
  bool SawScenario = false;
  const size_t NFields = Prog.State.size();

  auto parseMaybeExpr = [&](const Sexp &S, const Env &E) -> ir::ExprRef {
    if (S.IsAtom && S.Atom == "_")
      return nullptr;
    return buildExpr(S, E, Err);
  };

  for (size_t I = 1; I < Top.Kids.size(); ++I) {
    const Sexp &C = Top.Kids[I];
    if (C.IsAtom || C.Kids.empty() || !C.Kids[0].IsAtom) {
      *Err = "expected a (head ...) clause";
      return false;
    }
    const std::string &Head = C.Kids[0].Atom;
    if (Head == "scenario") {
      if (C.Kids.size() != 2 || !C.Kids[1].IsAtom) {
        *Err = "(scenario S) wants one atom";
        return false;
      }
      for (const ScenarioName &S : Scenarios)
        if (C.Kids[1].Atom == S.Name) {
          P.Kind = S.S;
          SawScenario = true;
        }
      if (!SawScenario) {
        *Err = "unknown scenario '" + C.Kids[1].Atom + "'";
        return false;
      }
    } else if (Head == "prefix") {
      int64_t V;
      if (C.Kids.size() != 2 || !atomInt(C.Kids[1], &V) || V < 0 ||
          V > 1000000) {
        *Err = "(prefix K) wants a small non-negative integer";
        return false;
      }
      P.PrefixLen = static_cast<int>(V);
    } else if (Head == "merge") {
      int64_t R;
      if (C.Kids.size() < 2 || !atomInt(C.Kids[1], &R) || (R != 0 && R != 1)) {
        *Err = "(merge R E...) wants R in {0,1}";
        return false;
      }
      P.Merge.Refold = R == 1;
      for (size_t J = 2; J < C.Kids.size(); ++J) {
        Err->clear();
        ir::ExprRef Ex = parseMaybeExpr(C.Kids[J], MergeEnv);
        if (!Ex && !Err->empty())
          return false;
        if (Ex && J - 2 < NFields &&
            Ex->getType() != Prog.State.field(J - 2).Ty) {
          *Err = "merge expr " + std::to_string(J - 2) + " has the wrong type";
          return false;
        }
        P.Merge.Combine.push_back(std::move(Ex));
      }
      if (!P.Merge.Combine.empty() && P.Merge.Combine.size() != NFields) {
        *Err = "merge wants one expr per state field";
        return false;
      }
    } else if (Head == "cond") {
      synth::CondPrefixInfo &CP = P.Cond;
      for (size_t J = 1; J < C.Kids.size(); ++J) {
        const Sexp &CC = C.Kids[J];
        if (CC.IsAtom || CC.Kids.empty() || !CC.Kids[0].IsAtom) {
          *Err = "cond wants (head ...) clauses";
          return false;
        }
        const std::string &CH = CC.Kids[0].Atom;
        if (CH == "pc") {
          if (CC.Kids.size() != 2) {
            *Err = "(pc E) wants one expression";
            return false;
          }
          CP.PrefixCond = buildExpr(CC.Kids[1], InEnv, Err);
          if (!CP.PrefixCond)
            return false;
          if (CP.PrefixCond->getType() != ir::TypeKind::Bool) {
            *Err = "prefix condition must be Bool";
            return false;
          }
        } else if (CH == "ctrl" || CH == "acc") {
          std::vector<size_t> &Dst =
              CH == "ctrl" ? CP.CtrlFields : CP.AccFields;
          for (size_t K = 1; K < CC.Kids.size(); ++K) {
            int64_t V;
            if (!atomInt(CC.Kids[K], &V) || V < 0 ||
                static_cast<size_t>(V) >= NFields) {
              *Err = "'" + CH + "' wants field indices";
              return false;
            }
            Dst.push_back(static_cast<size_t>(V));
          }
        } else if (CH == "flavors") {
          for (size_t K = 1; K < CC.Kids.size(); ++K) {
            bool Found = false;
            for (const FlavorName &FN : Flavors)
              if (CC.Kids[K].IsAtom && CC.Kids[K].Atom == FN.Name) {
                CP.AccFlavors.push_back(FN.F);
                Found = true;
              }
            if (!Found) {
              *Err = "unknown accumulator flavor";
              return false;
            }
          }
        } else if (CH == "vals") {
          for (size_t K = 1; K < CC.Kids.size(); ++K) {
            if (CC.Kids[K].IsAtom) {
              *Err = "vals wants rows of integers";
              return false;
            }
            std::vector<int64_t> Row;
            for (const Sexp &Cell : CC.Kids[K].Kids) {
              int64_t V;
              if (!atomInt(Cell, &V)) {
                *Err = "vals wants integers";
                return false;
              }
              Row.push_back(V);
            }
            CP.CtrlValues.push_back(std::move(Row));
          }
        } else if (CH == "cstep" || CH == "mode" || CH == "arg") {
          std::vector<std::vector<ir::ExprRef>> &Dst =
              CH == "cstep" ? CP.CtrlStep
                            : (CH == "mode" ? CP.AccMode : CP.AccArg);
          for (size_t K = 1; K < CC.Kids.size(); ++K) {
            if (CC.Kids[K].IsAtom) {
              *Err = "'" + CH + "' wants rows of expressions";
              return false;
            }
            std::vector<ir::ExprRef> Row;
            for (const Sexp &Cell : CC.Kids[K].Kids) {
              Err->clear();
              ir::ExprRef Ex = parseMaybeExpr(Cell, InEnv);
              if (!Ex && !Err->empty())
                return false;
              Row.push_back(std::move(Ex));
            }
            Dst.push_back(std::move(Row));
          }
        } else {
          *Err = "unknown cond clause '" + CH + "'";
          return false;
        }
      }
    } else {
      *Err = "unknown plan clause '" + Head + "'";
      return false;
    }
  }
  if (!SawScenario) {
    *Err = "plan needs (scenario ...)";
    return false;
  }

  // Shape validation for conditional-prefix tables: the runtime indexes
  // these without checks, so reject inconsistency here.
  if (P.Kind == synth::Scenario::CondPrefixRefold ||
      P.Kind == synth::Scenario::CondPrefixSummary) {
    synth::CondPrefixInfo &CP = P.Cond;
    if (!CP.PrefixCond) {
      *Err = "cond plan needs (pc E)";
      return false;
    }
    if (CP.AccFlavors.size() != CP.AccFields.size()) {
      *Err = "flavors must parallel acc fields";
      return false;
    }
    size_t NV = CP.CtrlValues.size();
    auto rows = [&](const std::vector<std::vector<ir::ExprRef>> &T,
                    size_t Width) {
      if (T.size() != NV)
        return false;
      for (const std::vector<ir::ExprRef> &Row : T)
        if (Row.size() != Width)
          return false;
      return true;
    };
    for (const std::vector<int64_t> &Row : CP.CtrlValues)
      if (Row.size() != CP.CtrlFields.size()) {
        *Err = "vals row width must match ctrl fields";
        return false;
      }
    if (P.Kind == synth::Scenario::CondPrefixSummary) {
      if (!rows(CP.CtrlStep, CP.CtrlFields.size()) ||
          !rows(CP.AccMode, CP.AccFields.size()) ||
          !rows(CP.AccArg, CP.AccFields.size())) {
        *Err = "summary tables must be (valuations x fields)";
        return false;
      }
    }
  }
  *Out = std::move(P);
  return true;
}

//===----------------------------------------------------------------------===//
// Bytecode listing
//===----------------------------------------------------------------------===//

std::string disassembleBytecode(const ir::BytecodeFunction &F) {
  static const char *Names[] = {"const", "copy", "add", "sub", "mul",
                                "div",   "mod",  "neg", "min", "max",
                                "eq",    "ne",   "lt",  "le",  "gt",
                                "ge",    "and",  "or",  "not", "select"};
  std::ostringstream OS;
  OS << "fn inputs=" << F.numInputs() << " regs=" << F.numRegs() << " out=[";
  for (size_t I = 0; I < F.outputRegs().size(); ++I)
    OS << (I ? " " : "") << 'r' << F.outputRegs()[I];
  OS << "]\n";
  const std::vector<ir::BcInstr> &Is = F.instrs();
  for (size_t I = 0; I < Is.size(); ++I) {
    const ir::BcInstr &In = Is[I];
    OS << "  " << I << ": " << Names[static_cast<unsigned>(In.Opcode)] << " r"
       << In.Dst;
    if (In.Opcode == ir::BcOp::Const) {
      OS << ", " << In.Imm;
    } else {
      unsigned N = ir::bcNumOperands(In.Opcode);
      if (N >= 1)
        OS << ", r" << In.A;
      if (N >= 2)
        OS << ", r" << In.B;
      if (N >= 3)
        OS << ", r" << In.C;
    }
    OS << '\n';
  }
  return OS.str();
}

} // namespace serve
} // namespace grassp
