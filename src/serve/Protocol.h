//===- serve/Protocol.h - Payload codecs for the serve service -----------===//
//
// The serve service speaks the same GDP1 framing as the dist runtime
// (dist/Protocol.h owns the frame layer and the MsgType registry; types
// 16..23 are ours). This header owns the payload codecs.
//
// Client <-> server (one Unix-socket connection, strict request/reply
// lockstep per connection):
//
//   SynthReq    program text            -> ReplyOk(Synth) | ReplyErr
//   RunReq      program text + workload -> ReplyOk(Run)   | ReplyErr
//   CertifyReq  program text            -> ReplyOk(Certify) | ReplyErr
//   StatsReq    (empty)                 -> ReplyOk(Stats)
//
// ReplyErr carries a typed error code — rendered "error[overloaded]",
// "error[solver-unavailable]", ... — plus a retry-after hint for the
// shedding codes, so a client can tell "back off and retry" from "this
// program genuinely has no plan".
//
// Server <-> solver worker (socketpair to a forked, prewarmed child):
//
//   SolveJob    job id + key + program + budgets
//   SolveDone   outcome: plan text + group + certification, or failure
//
// All decoders are strict (any truncation/overrun -> false; treat the
// frame as corrupt).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SERVE_PROTOCOL_H
#define GRASSP_SERVE_PROTOCOL_H

#include "dist/Protocol.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace grassp {
namespace serve {

/// Typed request errors. The names are wire-stable: clients and tests
/// match on errCodeName().
enum class ErrCode : uint32_t {
  BadRequest = 1,        ///< Malformed frame or unparsable program.
  Overloaded = 2,        ///< Queue past high water; shed with retry-after.
  SolverUnavailable = 3, ///< Key circuit-broken after repeated solver
                         ///< crashes; quarantined with retry-after.
  SynthFailed = 4,       ///< Synthesis genuinely found no plan.
  ShuttingDown = 5,      ///< Draining; no new synth work admitted.
  Internal = 6,          ///< Unexpected server-side failure.
};

/// "bad-request", "overloaded", "solver-unavailable", "synth-failed",
/// "shutting-down", "internal".
const char *errCodeName(ErrCode C);
bool errCodeFromWire(uint32_t V, ErrCode *Out);

/// Certification outcome on the wire (chc::CertStatus + NotRun).
enum class CertWire : uint8_t {
  Certified = 1,
  NotCertified = 2,
  Unknown = 3,
  Unsupported = 4,
  NotRun = 5,
};
const char *certWireName(CertWire C);

enum class ReplyKind : uint8_t {
  Synth = 1,
  Run = 2,
  Certify = 3,
  Stats = 4,
};

struct SynthReqMsg {
  std::string Program;
};
struct RunReqMsg {
  std::string Program;
  std::vector<int64_t> Data;
};
struct CertifyReqMsg {
  std::string Program;
};

struct SynthReply {
  uint8_t CacheHit = 0; ///< 1: answered with zero solver work.
  std::string Key;      ///< canonical key, hex.
  std::string Group;    ///< Table-1 group of the plan.
  std::string PlanText;
  std::string Description; ///< Plan.describe() rendering.
  std::string Bytecode;    ///< Disassembled optimized fold function.
  CertWire Cert = CertWire::NotRun;
  double SolveSeconds = 0; ///< Solver wall clock (original solve).
};

struct RunReply {
  int64_t Output = 0;
  std::string Tier; ///< Execution tier that folded the workload.
  std::string Key;
};

struct CertifyReply {
  uint8_t CacheHit = 0;
  std::string Key;
  std::string Group;
  CertWire Cert = CertWire::NotRun;
};

struct StatsReply {
  std::vector<std::pair<std::string, uint64_t>> Counters;
};

struct ErrReply {
  ErrCode Code = ErrCode::Internal;
  uint32_t RetryAfterMs = 0;
  std::string Message;
};

struct SolveJobMsg {
  uint64_t JobId = 0;
  uint64_t Key = 0;
  /// Fault-site key for this attempt: pure in (key, attempt), so chaos
  /// runs replay worker kills/hangs exactly.
  uint64_t FaultKey = 0;
  uint32_t SmtTimeoutMs = 30000;
  uint32_t CertTimeoutMs = 20000;
  std::string Program;
};

struct SolveDoneMsg {
  uint64_t JobId = 0;
  uint64_t Key = 0;
  uint8_t Solved = 0;
  CertWire Cert = CertWire::NotRun;
  std::string PlanText;
  std::string Group;
  std::string FailureReason;
  double Seconds = 0;
  uint32_t Candidates = 0;
  uint32_t SmtChecks = 0;
};

// Encoders append to a WireWriter; decoders are strict.
void encodeSynthReq(const SynthReqMsg &M, dist::WireWriter &W);
bool decodeSynthReq(const std::vector<uint8_t> &P, SynthReqMsg *M);
void encodeRunReq(const RunReqMsg &M, dist::WireWriter &W);
bool decodeRunReq(const std::vector<uint8_t> &P, RunReqMsg *M);
void encodeCertifyReq(const CertifyReqMsg &M, dist::WireWriter &W);
bool decodeCertifyReq(const std::vector<uint8_t> &P, CertifyReqMsg *M);

void encodeSynthReply(const SynthReply &M, dist::WireWriter &W);
void encodeRunReply(const RunReply &M, dist::WireWriter &W);
void encodeCertifyReply(const CertifyReply &M, dist::WireWriter &W);
void encodeStatsReply(const StatsReply &M, dist::WireWriter &W);

/// A ReplyOk payload is a ReplyKind tag byte followed by the kind's
/// encoding; decodeReplyOk dispatches on the tag.
struct OkReply {
  ReplyKind Kind = ReplyKind::Synth;
  SynthReply Synth;
  RunReply Run;
  CertifyReply Certify;
  StatsReply Stats;
};
bool decodeReplyOk(const std::vector<uint8_t> &P, OkReply *M);

void encodeErrReply(const ErrReply &M, dist::WireWriter &W);
bool decodeErrReply(const std::vector<uint8_t> &P, ErrReply *M);

void encodeSolveJob(const SolveJobMsg &M, dist::WireWriter &W);
bool decodeSolveJob(const std::vector<uint8_t> &P, SolveJobMsg *M);
void encodeSolveDone(const SolveDoneMsg &M, dist::WireWriter &W);
bool decodeSolveDone(const std::vector<uint8_t> &P, SolveDoneMsg *M);

} // namespace serve
} // namespace grassp

#endif // GRASSP_SERVE_PROTOCOL_H
