//===- serve/Client.h - Blocking client for grassp serve -----------------===//
//
// A small lockstep client: one request frame out, one reply frame back,
// over a Unix-domain socket. Used by `grassp serve-req`, the chaos
// harness, the load benchmark, and the smoke tests.
//
// sendTruncatedSynth() is the serve.client.disconnect fault made flesh:
// it writes a frame header promising more payload than it sends, then
// hangs up — the server must shrug (drop the connection) and keep
// serving everyone else.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SERVE_CLIENT_H
#define GRASSP_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grassp {
namespace serve {

/// Client-side fault site: drop the connection after a truncated frame.
inline constexpr const char *FaultSiteClientDisconnect =
    "serve.client.disconnect";

/// One reply: exactly one of Ok / Err is meaningful (IsOk says which).
struct ClientReply {
  bool IsOk = false;
  OkReply Ok;
  ErrReply Err;
};

class ServeClient {
public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Connects to the server's socket; retries for up to \p TimeoutSec
  /// (the server may still be binding). False with \p Err on failure.
  bool connect(const std::string &SocketPath, double TimeoutSec,
               std::string *Err);
  bool connected() const { return Fd >= 0; }
  void close();

  /// The four requests. Each returns false ONLY on transport failure
  /// (send failed, EOF, corrupt reply); a server-side error is a
  /// successful round trip with Out->IsOk == false.
  bool synth(const std::string &ProgramText, ClientReply *Out);
  bool run(const std::string &ProgramText, const std::vector<int64_t> &Data,
           ClientReply *Out);
  bool certify(const std::string &ProgramText, ClientReply *Out);
  bool stats(ClientReply *Out);

  /// Writes a deliberately truncated SynthReq frame (header claims more
  /// payload than follows) and closes the connection — the dead-client
  /// fault. Returns false if even the partial write failed.
  bool sendTruncatedSynth(const std::string &ProgramText);

private:
  bool roundTrip(dist::MsgType Type, ClientReply *Out);

  int Fd = -1;
  dist::FrameWriter Writer;
};

/// Renders a reply for terminal output (the `grassp serve-req` printer
/// and the smoke tests' expectations).
std::string describeReply(const ClientReply &R);

} // namespace serve
} // namespace grassp

#endif // GRASSP_SERVE_CLIENT_H
