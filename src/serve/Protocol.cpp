//===- serve/Protocol.cpp -------------------------------------------------==//

#include "serve/Protocol.h"

namespace grassp {
namespace serve {

using dist::WireReader;
using dist::WireWriter;

const char *errCodeName(ErrCode C) {
  switch (C) {
  case ErrCode::BadRequest:
    return "bad-request";
  case ErrCode::Overloaded:
    return "overloaded";
  case ErrCode::SolverUnavailable:
    return "solver-unavailable";
  case ErrCode::SynthFailed:
    return "synth-failed";
  case ErrCode::ShuttingDown:
    return "shutting-down";
  case ErrCode::Internal:
    return "internal";
  }
  return "?";
}

bool errCodeFromWire(uint32_t V, ErrCode *Out) {
  if (V < static_cast<uint32_t>(ErrCode::BadRequest) ||
      V > static_cast<uint32_t>(ErrCode::Internal))
    return false;
  *Out = static_cast<ErrCode>(V);
  return true;
}

const char *certWireName(CertWire C) {
  switch (C) {
  case CertWire::Certified:
    return "certified";
  case CertWire::NotCertified:
    return "not-certified";
  case CertWire::Unknown:
    return "unknown";
  case CertWire::Unsupported:
    return "unsupported";
  case CertWire::NotRun:
    return "not-run";
  }
  return "?";
}

namespace {

bool certFromWire(uint8_t V, CertWire *Out) {
  if (V < static_cast<uint8_t>(CertWire::Certified) ||
      V > static_cast<uint8_t>(CertWire::NotRun))
    return false;
  *Out = static_cast<CertWire>(V);
  return true;
}

/// Doubles cross the wire as micro-units in a u64: the protocol stays
/// fixed-width integers end to end.
uint64_t packSeconds(double S) {
  if (S < 0)
    S = 0;
  return static_cast<uint64_t>(S * 1e6);
}
double unpackSeconds(uint64_t U) { return static_cast<double>(U) / 1e6; }

} // namespace

void encodeSynthReq(const SynthReqMsg &M, WireWriter &W) { W.str(M.Program); }
bool decodeSynthReq(const std::vector<uint8_t> &P, SynthReqMsg *M) {
  WireReader R(P);
  return R.str(&M->Program) && R.atEnd();
}

void encodeRunReq(const RunReqMsg &M, WireWriter &W) {
  W.str(M.Program);
  W.vecI64(M.Data);
}
bool decodeRunReq(const std::vector<uint8_t> &P, RunReqMsg *M) {
  WireReader R(P);
  return R.str(&M->Program) && R.vecI64(&M->Data) && R.atEnd();
}

void encodeCertifyReq(const CertifyReqMsg &M, WireWriter &W) {
  W.str(M.Program);
}
bool decodeCertifyReq(const std::vector<uint8_t> &P, CertifyReqMsg *M) {
  WireReader R(P);
  return R.str(&M->Program) && R.atEnd();
}

void encodeSynthReply(const SynthReply &M, WireWriter &W) {
  W.u8(static_cast<uint8_t>(ReplyKind::Synth));
  W.u8(M.CacheHit);
  W.str(M.Key);
  W.str(M.Group);
  W.str(M.PlanText);
  W.str(M.Description);
  W.str(M.Bytecode);
  W.u8(static_cast<uint8_t>(M.Cert));
  W.u64(packSeconds(M.SolveSeconds));
}

void encodeRunReply(const RunReply &M, WireWriter &W) {
  W.u8(static_cast<uint8_t>(ReplyKind::Run));
  W.i64(M.Output);
  W.str(M.Tier);
  W.str(M.Key);
}

void encodeCertifyReply(const CertifyReply &M, WireWriter &W) {
  W.u8(static_cast<uint8_t>(ReplyKind::Certify));
  W.u8(M.CacheHit);
  W.str(M.Key);
  W.str(M.Group);
  W.u8(static_cast<uint8_t>(M.Cert));
}

void encodeStatsReply(const StatsReply &M, WireWriter &W) {
  W.u8(static_cast<uint8_t>(ReplyKind::Stats));
  W.u64(M.Counters.size());
  for (const std::pair<std::string, uint64_t> &KV : M.Counters) {
    W.str(KV.first);
    W.u64(KV.second);
  }
}

bool decodeReplyOk(const std::vector<uint8_t> &P, OkReply *M) {
  WireReader R(P);
  uint8_t Kind;
  if (!R.u8(&Kind))
    return false;
  switch (static_cast<ReplyKind>(Kind)) {
  case ReplyKind::Synth: {
    SynthReply &S = M->Synth;
    uint8_t Cert;
    uint64_t Sec;
    if (!(R.u8(&S.CacheHit) && R.str(&S.Key) && R.str(&S.Group) &&
          R.str(&S.PlanText) && R.str(&S.Description) && R.str(&S.Bytecode) &&
          R.u8(&Cert) && R.u64(&Sec) && R.atEnd()))
      return false;
    if (!certFromWire(Cert, &S.Cert))
      return false;
    S.SolveSeconds = unpackSeconds(Sec);
    M->Kind = ReplyKind::Synth;
    return true;
  }
  case ReplyKind::Run: {
    RunReply &S = M->Run;
    if (!(R.i64(&S.Output) && R.str(&S.Tier) && R.str(&S.Key) && R.atEnd()))
      return false;
    M->Kind = ReplyKind::Run;
    return true;
  }
  case ReplyKind::Certify: {
    CertifyReply &S = M->Certify;
    uint8_t Cert;
    if (!(R.u8(&S.CacheHit) && R.str(&S.Key) && R.str(&S.Group) &&
          R.u8(&Cert) && R.atEnd()))
      return false;
    if (!certFromWire(Cert, &S.Cert))
      return false;
    M->Kind = ReplyKind::Certify;
    return true;
  }
  case ReplyKind::Stats: {
    StatsReply &S = M->Stats;
    uint64_t N;
    if (!R.u64(&N) || N > (1u << 16))
      return false;
    S.Counters.clear();
    for (uint64_t I = 0; I < N; ++I) {
      std::string K;
      uint64_t V;
      if (!R.str(&K) || !R.u64(&V))
        return false;
      S.Counters.emplace_back(std::move(K), V);
    }
    if (!R.atEnd())
      return false;
    M->Kind = ReplyKind::Stats;
    return true;
  }
  }
  return false;
}

void encodeErrReply(const ErrReply &M, WireWriter &W) {
  W.u32(static_cast<uint32_t>(M.Code));
  W.u32(M.RetryAfterMs);
  W.str(M.Message);
}

bool decodeErrReply(const std::vector<uint8_t> &P, ErrReply *M) {
  WireReader R(P);
  uint32_t Code;
  if (!(R.u32(&Code) && R.u32(&M->RetryAfterMs) && R.str(&M->Message) &&
        R.atEnd()))
    return false;
  return errCodeFromWire(Code, &M->Code);
}

void encodeSolveJob(const SolveJobMsg &M, WireWriter &W) {
  W.u64(M.JobId);
  W.u64(M.Key);
  W.u64(M.FaultKey);
  W.u32(M.SmtTimeoutMs);
  W.u32(M.CertTimeoutMs);
  W.str(M.Program);
}

bool decodeSolveJob(const std::vector<uint8_t> &P, SolveJobMsg *M) {
  WireReader R(P);
  return R.u64(&M->JobId) && R.u64(&M->Key) && R.u64(&M->FaultKey) &&
         R.u32(&M->SmtTimeoutMs) && R.u32(&M->CertTimeoutMs) &&
         R.str(&M->Program) && R.atEnd();
}

void encodeSolveDone(const SolveDoneMsg &M, WireWriter &W) {
  W.u64(M.JobId);
  W.u64(M.Key);
  W.u8(M.Solved);
  W.u8(static_cast<uint8_t>(M.Cert));
  W.str(M.PlanText);
  W.str(M.Group);
  W.str(M.FailureReason);
  W.u64(packSeconds(M.Seconds));
  W.u32(M.Candidates);
  W.u32(M.SmtChecks);
}

bool decodeSolveDone(const std::vector<uint8_t> &P, SolveDoneMsg *M) {
  WireReader R(P);
  uint8_t Cert;
  uint64_t Sec;
  if (!(R.u64(&M->JobId) && R.u64(&M->Key) && R.u8(&M->Solved) &&
        R.u8(&Cert) && R.str(&M->PlanText) && R.str(&M->Group) &&
        R.str(&M->FailureReason) && R.u64(&Sec) && R.u32(&M->Candidates) &&
        R.u32(&M->SmtChecks) && R.atEnd()))
    return false;
  if (!certFromWire(Cert, &M->Cert))
    return false;
  M->Seconds = unpackSeconds(Sec);
  return true;
}

} // namespace serve
} // namespace grassp
