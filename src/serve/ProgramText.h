//===- serve/ProgramText.h - Textual program/plan exchange format --------===//
//
// The serve service is spoken to by clients that do not share our
// address space, so programs and synthesized plans need a serialized
// form. This is a small s-expression format, chosen over ad-hoc JSON
// because IR terms are trees and because the cache journal embeds both
// texts inside single-line JSON records (the printers emit exactly one
// line, no newlines ever).
//
// A program:
//
//   (program (name count_gt)
//            (state (cnt int 0))
//            (step (cnt (ite (gt in 5) (add cnt 1) cnt)))
//            (output cnt)
//            (alphabet 1 2 3)      ; optional
//            (range -100 100)      ; optional, defaults -100 100
//            (group B1))           ; optional expected Table-1 group
//
// Expressions are prefix lists over the IR ops (add sub mul div mod neg
// min max eq ne lt le gt ge and or not ite bag-insert bag-union
// bag-size), integer literals, true/false, and variables resolved
// against a typing environment — a program's step/output see its state
// fields plus "in"; a plan's exprs see "in" and the "a_<field>" /
// "b_<field>" merge operands. `;` starts a comment to end of line.
//
// A plan (parsed against its program for field count/typing):
//
//   (plan (scenario no-prefix|const-prefix|cond-refold|cond-summary)
//         (prefix K)
//         (merge R E...)          ; R=0/1 refold flag; one E per field,
//                                 ; `_` for a field with no combine expr
//         (cond (pc E) (ctrl I...) (acc I...) (flavors F...)
//               (vals (I...)...) (cstep (E...)...)
//               (mode (E...)...) (arg (E...)...)))
//
// Parsers are strict: unknown heads, unbound variables, type-incorrect
// operands, wrong table shapes, or torn input all fail with a message —
// this is the validation boundary for bytes that cross the socket or
// come back out of the on-disk cache.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SERVE_PROGRAMTEXT_H
#define GRASSP_SERVE_PROGRAMTEXT_H

#include "ir/Bytecode.h"
#include "lang/Program.h"
#include "synth/ParallelPlan.h"

#include <string>

namespace grassp {
namespace serve {

/// Renders \p P as one line of program text (no newlines; the journal
/// embeds it in a JSON string). Description is intentionally dropped —
/// it is display metadata, not semantics.
std::string printProgramText(const lang::SerialProgram &P);

/// Strict parse; false (with \p Err set) on any malformed input.
bool parseProgramText(const std::string &Text, lang::SerialProgram *Out,
                      std::string *Err);

/// Renders \p Plan as one line of plan text.
std::string printPlanText(const synth::ParallelPlan &Plan);

/// Strict parse against \p Prog (field indices and merge arity are
/// validated against its state layout).
bool parsePlanText(const std::string &Text, const lang::SerialProgram &Prog,
                   synth::ParallelPlan *Out, std::string *Err);

/// Human-readable listing of a compiled fold function — the "bytecode"
/// field of a synth reply, so a cache hit hands back the executable
/// artifact with zero solver work.
std::string disassembleBytecode(const ir::BytecodeFunction &F);

} // namespace serve
} // namespace grassp

#endif // GRASSP_SERVE_PROGRAMTEXT_H
