//===- serve/Chaos.h - Chaos harness for the serve service ---------------===//
//
// `grassp chaos --serve`: runs a REAL server process under seeded fault
// injection and asserts the service contract holds:
//
//  * Bit-identical answers. Every synth answer for one canonical key —
//    across solver-worker kills, hangs, retries, torn snapshots, and
//    warm restarts — must be byte-for-byte the same (plan text, group,
//    certification). A divergence is a correctness bug, full stop.
//  * Run answers match ground truth. Every run reply is compared to
//    lang::runSerial on the same workload computed in the harness.
//  * Zero service deaths. Solver workers may die freely (that is the
//    point); the SERVER process exiting before the harness asks it to
//    fails the run.
//  * kill -9 loses nothing committed. The server is SIGKILLed after
//    answers were given, restarted warm on the same cache dir, and
//    every previously-answered key must come back as a cache hit with
//    the identical answer.
//  * SIGTERM drains clean: exit code 0, cache snapshot on disk.
//
// All faults are decided from one seed (support/FaultInject.h), so a
// failing run replays exactly.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SERVE_CHAOS_H
#define GRASSP_SERVE_CHAOS_H

#include <cstdint>
#include <string>

namespace grassp {
namespace serve {

struct ServeChaosOptions {
  /// Wall-clock budget for the fault-sweep phase.
  unsigned Seconds = 8;
  uint64_t Seed = 7;
  /// Solver-worker fault rates (permille per job receipt).
  unsigned KillPermille = 150;
  unsigned HangPermille = 80;
  /// Tear every Nth cache snapshot (0 = off).
  uint64_t TornEveryNth = 2;
  /// Drop a connection after a truncated frame every Nth request.
  uint64_t DisconnectEveryNth = 7;
  /// kill -9 + warm-restart cycles after the sweep.
  unsigned KillCycles = 2;
  size_t PoolSize = 2;
  /// Scratch directory; empty = mkdtemp under TMPDIR.
  std::string WorkDir;
  bool Verbose = false;
};

/// Runs the whole campaign; prints a summary line per phase and a final
/// verdict. Returns 0 on a clean run, 1 on any divergence or unexpected
/// service death.
int serveChaosMain(const ServeChaosOptions &Opts);

} // namespace serve
} // namespace grassp

#endif // GRASSP_SERVE_CHAOS_H
