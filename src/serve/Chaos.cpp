//===- serve/Chaos.cpp ---------------------------------------------------==//

#include "serve/Chaos.h"

#include "lang/Benchmarks.h"
#include "lang/Interp.h"
#include "runtime/Workload.h"
#include "serve/Client.h"
#include "serve/ProgramText.h"
#include "serve/Server.h"
#include "support/Cancel.h"
#include "support/FaultInject.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

namespace grassp {
namespace serve {

namespace {

/// Fast scan-group benchmarks: every one solves in well under a second,
/// so a chaos campaign gets through many solve/kill/retry cycles.
const char *const ChaosBenchmarks[] = {"count",   "sum",      "max_elem",
                                       "sum_even", "count_gt", "second_max"};

struct Answer {
  bool Negative = false;
  std::string Plan;
  std::string Group;
  std::string Cert;
  std::string Reason; ///< Negative: the failure message.
};

struct Campaign {
  ServeChaosOptions Opts;
  std::string Dir;
  std::string SocketPath;
  std::string CacheDir;
  pid_t ServerPid = -1;
  /// What the service answered, per benchmark name; every later answer
  /// must be bit-identical.
  std::map<std::string, Answer> Answers;
  uint64_t Requests = 0;
  uint64_t OkReplies = 0;
  uint64_t TypedErrors = 0;
  uint64_t Truncations = 0;
  uint64_t Divergences = 0;
  uint64_t ServiceDeaths = 0;
};

void note(const Campaign &C, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));
void note(const Campaign &C, const char *Fmt, ...) {
  if (!C.Opts.Verbose)
    return;
  va_list Ap;
  va_start(Ap, Fmt);
  std::vfprintf(stderr, Fmt, Ap);
  va_end(Ap);
}

void diverge(Campaign &C, const std::string &What) {
  ++C.Divergences;
  std::fprintf(stderr, "DIVERGENCE: %s\n", What.c_str());
}

bool serverAlive(const Campaign &C) {
  return C.ServerPid > 0 && ::kill(C.ServerPid, 0) == 0;
}

/// Forks a server on the campaign's socket/cache paths. The child arms
/// its own injector (fault decisions replay from the campaign seed) and
/// installs the signal sources FRESH — the harness deliberately never
/// installs them in the parent, so the fork inherits pristine state.
pid_t forkServer(Campaign &C, bool WithFaults) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid;

  // ---- child: the real server process ----
  static FaultInjector Inj(C.Opts.Seed);
  if (WithFaults) {
    FaultSpec Kill;
    Kill.Probability = C.Opts.KillPermille / 1000.0;
    Inj.arm(FaultSiteWorkerKill, Kill);
    FaultSpec Hang;
    Hang.Probability = C.Opts.HangPermille / 1000.0;
    Inj.arm(FaultSiteWorkerHang, Hang);
    if (C.Opts.TornEveryNth) {
      FaultSpec Torn;
      Torn.EveryNth = C.Opts.TornEveryNth;
      Inj.arm(FaultSiteSnapshotTorn, Torn);
    }
  }
  ServerOptions SO;
  SO.SocketPath = C.SocketPath;
  SO.CacheDir = C.CacheDir;
  SO.PoolSize = C.Opts.PoolSize;
  SO.SmtTimeoutMs = 10000;
  SO.CertTimeoutMs = 10000;
  // Tight enough to reap injected hangs within the campaign, with
  // honest headroom over the slowest real solve in the suite
  // (second_max: ~1.7s synth + certify).
  SO.JobDeadlineSec = 5.0;
  SO.MaxAttempts = 3;
  SO.BreakerFailures = 3;
  SO.QuarantineSec = 0.4;
  SO.BackoffBaseSec = 0.01;
  SO.BackoffCapSec = 0.1;
  SO.HighWaterJobs = 4;
  SO.SnapshotEvery = 3; // compact often: the torn-snapshot site must fire.
  SO.Seed = C.Opts.Seed;
  SO.Faults = WithFaults ? &Inj : nullptr;
  SO.Root = installSignalSource();
  SO.Drain = installDrainSignalSource();
  ServeServer Server;
  std::string Err;
  if (!Server.init(SO, &Err)) {
    std::fprintf(stderr, "server init failed: %s\n", Err.c_str());
    std::fflush(nullptr);
    ::_exit(9);
  }
  int Rc = Server.run();
  std::fflush(nullptr);
  ::_exit(Rc);
}

/// Reaps \p Pid within \p TimeoutSec; false when it did not exit.
bool waitForExit(pid_t Pid, double TimeoutSec, int *Status) {
  Deadline Until = Deadline::after(TimeoutSec);
  for (;;) {
    pid_t R = ::waitpid(Pid, Status, WNOHANG);
    if (R == Pid)
      return true;
    if (R < 0 && errno == ECHILD)
      return true;
    if (Until.expired())
      return false;
    ::usleep(5000);
  }
}

void stopServer(Campaign &C, int Sig) {
  if (C.ServerPid <= 0)
    return;
  ::kill(C.ServerPid, Sig);
  int St = 0;
  if (!waitForExit(C.ServerPid, 20.0, &St)) {
    ::kill(C.ServerPid, SIGKILL);
    waitForExit(C.ServerPid, 5.0, &St);
  }
  C.ServerPid = -1;
}

/// One synth round trip with retries across the service's typed
/// backpressure errors. Returns false on campaign-fatal failure.
bool synthUntilAnswer(Campaign &C, const std::string &Name,
                      const std::string &Text, Answer *Out, bool *WasHit) {
  Deadline Budget = Deadline::after(60.0);
  while (!Budget.expired()) {
    ServeClient Client;
    std::string Err;
    if (!Client.connect(C.SocketPath, 2.0, &Err)) {
      if (!serverAlive(C)) {
        ++C.ServiceDeaths;
        diverge(C, "server process died (connect: " + Err + ")");
        return false;
      }
      continue;
    }
    ClientReply R;
    ++C.Requests;
    if (!Client.synth(Text, &R)) {
      if (!serverAlive(C)) {
        ++C.ServiceDeaths;
        diverge(C, "server process died mid-request on " + Name);
        return false;
      }
      continue; // transient transport hiccup with a live server: retry.
    }
    if (R.IsOk) {
      ++C.OkReplies;
      Out->Negative = false;
      Out->Plan = R.Ok.Synth.PlanText;
      Out->Group = R.Ok.Synth.Group;
      Out->Cert = certWireName(R.Ok.Synth.Cert);
      if (WasHit)
        *WasHit = R.Ok.Synth.CacheHit != 0;
      return true;
    }
    ++C.TypedErrors;
    switch (R.Err.Code) {
    case ErrCode::SynthFailed:
      Out->Negative = true;
      Out->Reason = R.Err.Message;
      if (WasHit)
        *WasHit = false;
      return true;
    case ErrCode::Overloaded:
    case ErrCode::SolverUnavailable:
    case ErrCode::ShuttingDown: {
      // The contract: shed with a hint, never wrongly. Back off and
      // retry inside the budget.
      uint32_t Ms = R.Err.RetryAfterMs ? R.Err.RetryAfterMs : 50;
      ::usleep(std::min<uint32_t>(Ms, 300) * 1000);
      continue;
    }
    case ErrCode::BadRequest:
    case ErrCode::Internal:
      diverge(C, Name + ": unexpected error[" +
                     errCodeName(R.Err.Code) + "] " + R.Err.Message);
      return false;
    }
  }
  diverge(C, Name + ": no answer within the retry budget");
  return false;
}

void checkAnswer(Campaign &C, const std::string &Name, const Answer &Got) {
  auto It = C.Answers.find(Name);
  if (It == C.Answers.end()) {
    C.Answers[Name] = Got;
    return;
  }
  const Answer &Want = It->second;
  if (Want.Negative != Got.Negative)
    diverge(C, Name + ": answer flipped between solved and synth-failed");
  else if (!Got.Negative &&
           (Want.Plan != Got.Plan || Want.Group != Got.Group ||
            Want.Cert != Got.Cert))
    diverge(C, Name + ": answer not bit-identical\n  was: " + Want.Plan +
                   " [" + Want.Group + "/" + Want.Cert + "]\n  got: " +
                   Got.Plan + " [" + Got.Group + "/" + Got.Cert + "]");
}

/// Fire-and-forget synth: pushes the request frame and returns without
/// reading the reply, so the harness can SIGKILL the server mid-solve.
void sendSynthNoWait(Campaign &C, const std::string &Text) {
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, C.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return;
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) == 0) {
    SynthReqMsg M;
    M.Program = Text;
    dist::WireWriter W;
    encodeSynthReq(M, W);
    dist::writeFrame(Fd, dist::MsgType::SynthReq, W.bytes());
  }
  ::close(Fd);
}

//===--------------------------------------------------------------------===//
// Phases
//===--------------------------------------------------------------------===//

bool phaseFaultSweep(Campaign &C) {
  std::fprintf(stderr,
               "chaos --serve: fault sweep (%us, kill=%u‰ hang=%u‰ "
               "torn-every=%llu seed=%llu)\n",
               C.Opts.Seconds, C.Opts.KillPermille, C.Opts.HangPermille,
               (unsigned long long)C.Opts.TornEveryNth,
               (unsigned long long)C.Opts.Seed);
  C.ServerPid = forkServer(C, /*WithFaults=*/true);
  if (C.ServerPid < 0)
    return false;

  std::vector<const lang::SerialProgram *> Progs;
  std::vector<std::string> Texts;
  for (const char *Name : ChaosBenchmarks) {
    const lang::SerialProgram *P = lang::findBenchmark(Name);
    if (!P)
      continue;
    Progs.push_back(P);
    Texts.push_back(printProgramText(*P));
  }

  Deadline Until = Deadline::after(C.Opts.Seconds);
  uint64_t Iter = 0;
  while (!Until.expired() && C.Divergences == 0) {
    size_t I = Iter % Progs.size();
    const lang::SerialProgram &P = *Progs[I];
    ++Iter;

    // Dead-client fault: a truncated frame then a hangup, every Nth.
    if (C.Opts.DisconnectEveryNth &&
        Iter % C.Opts.DisconnectEveryNth == 0) {
      ServeClient Trunc;
      std::string Err;
      if (Trunc.connect(C.SocketPath, 2.0, &Err) &&
          Trunc.sendTruncatedSynth(Texts[I]))
        ++C.Truncations;
      if (!serverAlive(C)) {
        ++C.ServiceDeaths;
        diverge(C, "server died on a truncated client frame");
        return false;
      }
    }

    Answer A;
    if (!synthUntilAnswer(C, P.Name, Texts[I], &A, nullptr))
      return false;
    checkAnswer(C, P.Name, A);

    // Every few iterations, fold a workload through the service and
    // compare with locally computed ground truth.
    if (Iter % 3 == 0) {
      std::vector<int64_t> Data =
          runtime::generateWorkload(P, 256, C.Opts.Seed + Iter);
      int64_t Want = lang::runSerial(P, Data);
      ServeClient Client;
      std::string Err;
      if (Client.connect(C.SocketPath, 2.0, &Err)) {
        ClientReply R;
        ++C.Requests;
        if (Client.run(Texts[I], Data, &R)) {
          if (!R.IsOk)
            diverge(C, P.Name + ": run rejected: " + R.Err.Message);
          else if (R.Ok.Run.Output != Want)
            diverge(C, P.Name + ": run output " +
                           std::to_string(R.Ok.Run.Output) +
                           " != serial ground truth " +
                           std::to_string(Want));
          else
            ++C.OkReplies;
        } else if (!serverAlive(C)) {
          ++C.ServiceDeaths;
          diverge(C, "server died during a run request");
          return false;
        }
      }
    }
  }

  note(C, "  sweep: %llu requests, %llu ok, %llu typed errors, %llu "
          "truncations\n",
       (unsigned long long)C.Requests, (unsigned long long)C.OkReplies,
       (unsigned long long)C.TypedErrors, (unsigned long long)C.Truncations);
  return C.Divergences == 0;
}

bool phaseKillRestart(Campaign &C) {
  std::fprintf(stderr, "chaos --serve: kill -9 / warm-restart (%u cycles)\n",
               C.Opts.KillCycles);
  for (unsigned Cycle = 0; Cycle != C.Opts.KillCycles; ++Cycle) {
    // Push one more request in and SIGKILL while it may be mid-solve:
    // an uncommitted solve may be lost (it re-runs later); committed
    // entries may NOT be.
    if (serverAlive(C)) {
      const lang::SerialProgram *P =
          lang::findBenchmark(ChaosBenchmarks[Cycle % 6]);
      if (P)
        sendSynthNoWait(C, printProgramText(*P));
      ::usleep(20000);
      stopServer(C, SIGKILL);
      note(C, "  cycle %u: server SIGKILLed\n", Cycle);
    }

    // Warm restart on the same cache dir: every answer ever given must
    // come back as a CACHE HIT, bit-identical.
    C.ServerPid = forkServer(C, /*WithFaults=*/true);
    for (const auto &KV : C.Answers) {
      if (KV.second.Negative)
        continue; // negative answers are memory-only by design.
      const lang::SerialProgram *P = lang::findBenchmark(KV.first.c_str());
      if (!P)
        continue;
      Answer A;
      bool WasHit = false;
      if (!synthUntilAnswer(C, KV.first, printProgramText(*P), &A, &WasHit))
        return false;
      if (!WasHit)
        diverge(C, KV.first +
                       ": committed entry LOST across kill -9 + restart "
                       "(answered as a fresh solve, not a cache hit)");
      checkAnswer(C, KV.first, A);
    }
    if (C.Divergences)
      return false;
  }
  return true;
}

bool phaseDrain(Campaign &C) {
  std::fprintf(stderr, "chaos --serve: SIGTERM graceful drain\n");
  if (!serverAlive(C))
    C.ServerPid = forkServer(C, /*WithFaults=*/true);
  // One request to prove the server is up, then ask it to drain.
  const lang::SerialProgram *P = lang::findBenchmark(ChaosBenchmarks[0]);
  Answer A;
  if (!P || !synthUntilAnswer(C, P->Name, printProgramText(*P), &A, nullptr))
    return false;
  checkAnswer(C, P->Name, A);

  ::kill(C.ServerPid, SIGTERM);
  int St = 0;
  if (!waitForExit(C.ServerPid, 20.0, &St)) {
    diverge(C, "server did not exit within 20s of SIGTERM");
    stopServer(C, SIGKILL);
    return false;
  }
  C.ServerPid = -1;
  if (!WIFEXITED(St) || WEXITSTATUS(St) != 0) {
    diverge(C, "drain exit status not clean (wait status " +
                   std::to_string(St) + ")");
    return false;
  }
  struct stat Sb;
  if (::stat((C.CacheDir + "/cache.snap").c_str(), &Sb) != 0) {
    diverge(C, "drain left no cache snapshot behind");
    return false;
  }
  return true;
}

} // namespace

int serveChaosMain(const ServeChaosOptions &OptsIn) {
  Campaign C;
  C.Opts = OptsIn;
  if (C.Opts.WorkDir.empty()) {
    char Tmpl[] = "/tmp/grassp-serve-chaos-XXXXXX";
    const char *D = ::mkdtemp(Tmpl);
    if (!D) {
      std::fprintf(stderr, "error: mkdtemp failed\n");
      return 1;
    }
    C.Dir = D;
  } else {
    C.Dir = C.Opts.WorkDir;
    ::mkdir(C.Dir.c_str(), 0755);
  }
  C.SocketPath = C.Dir + "/serve.sock";
  C.CacheDir = C.Dir + "/cache";

  bool Ok = phaseFaultSweep(C) && phaseKillRestart(C) && phaseDrain(C);
  stopServer(C, SIGKILL);

  std::fprintf(stderr,
               "chaos --serve: %llu requests, %llu ok, %llu typed errors, "
               "%llu truncated clients, %llu divergences, %llu service "
               "deaths -> %s\n",
               (unsigned long long)C.Requests,
               (unsigned long long)C.OkReplies,
               (unsigned long long)C.TypedErrors,
               (unsigned long long)C.Truncations,
               (unsigned long long)C.Divergences,
               (unsigned long long)C.ServiceDeaths,
               Ok && C.Divergences == 0 && C.ServiceDeaths == 0 ? "OK"
                                                                : "FAILED");
  return Ok && C.Divergences == 0 && C.ServiceDeaths == 0 ? 0 : 1;
}

} // namespace serve
} // namespace grassp
