//===- serve/Server.h - The grassp serve loop ----------------------------===//
//
// A long-lived, single-threaded synthesis service over a Unix-domain
// socket, the same poll()-loop shape as dist::Coordinator. One process,
// one loop, no locks: connections, the solution cache, and the solver
// pool are all owned by the loop and touched only between poll wakeups.
//
// The request ladder for a synth/certify request, in order:
//
//   1. unparsable            -> error[bad-request]
//   2. cache hit             -> certified plan + bytecode, ZERO solver
//                               work (the plan is rebound to the
//                               requester's field names — alpha-variant
//                               programs share one entry)
//   3. negative-cache hit    -> error[synth-failed] (deterministic "no
//                               plan exists" answers are cached too)
//   4. key quarantined       -> error[solver-unavailable] + retry-after
//   5. draining (SIGTERM)    -> error[shutting-down]
//   6. same key in flight    -> coalesce: join the existing solve's
//                               waiter list, one solver job total
//   7. queue past high water -> error[overloaded] + retry-after; cache
//                               hits and run/certify-hits STILL served —
//                               degradation is graceful, not total
//   8. otherwise             -> submit to the solver pool
//
// Durability: the cache journals every solution BEFORE any waiter gets
// the reply (serve/Cache.h), so an answer a client ever saw survives
// kill -9 of the server; a warm restart re-serves it as a hit.
//
// Shutdown: the first SIGTERM (support/Cancel.h drain source) stops
// accepting connections and admits no new solves, finishes in-flight
// ones, snapshots the cache, and exits 0. SIGINT or a second SIGTERM
// abandons everything immediately.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SERVE_SERVER_H
#define GRASSP_SERVE_SERVER_H

#include "serve/Cache.h"
#include "serve/Protocol.h"
#include "serve/SolverPool.h"
#include "support/Cancel.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace grassp {
namespace lang {
struct SerialProgram;
}
namespace runtime {
class CompiledProgram;
}

namespace serve {

struct ServerOptions {
  std::string SocketPath;
  std::string CacheDir;
  /// Solver pool shape and budgets (forwarded to SolverPoolOptions).
  size_t PoolSize = 2;
  uint32_t SmtTimeoutMs = 30000;
  uint32_t CertTimeoutMs = 20000;
  double JobDeadlineSec = 60.0;
  unsigned MaxAttempts = 3;
  unsigned BreakerFailures = 3;
  double QuarantineSec = 5.0;
  double BackoffBaseSec = 0.02;
  double BackoffCapSec = 1.0;
  /// Admission control: synth misses are shed once queued + in-flight
  /// jobs reach this many.
  size_t HighWaterJobs = 8;
  /// The retry-after hint attached to shed replies, ms.
  uint32_t RetryAfterMs = 250;
  size_t MaxConns = 64;
  /// Unsent reply bytes buffered per connection (fds are nonblocking;
  /// the buffer drains on POLLOUT). A client that keeps submitting but
  /// stops reading is dropped once its backlog passes this — it may
  /// never wedge the loop's single thread in write(2).
  size_t MaxConnOutBytes = 8u << 20;
  /// Negative (synth-failed) cache bounds: the table is dropped
  /// wholesale at the cap (the RunMemoCap discipline) and each entry
  /// expires after the TTL, so one environmental failure cannot answer
  /// synth-failed for a key until restart.
  size_t NegativeCap = 1024;
  double NegativeTtlSec = 600.0;
  /// Journal entries between snapshot compactions.
  uint64_t SnapshotEvery = 64;
  /// Memoized compiled programs kept for RunReq (LRU-free: the table is
  /// simply dropped when full).
  size_t RunMemoCap = 128;
  uint64_t Seed = 0;
  /// Optional injector: solver worker faults + snapshot tearing.
  FaultInjector *Faults = nullptr;
  /// Hard cancel (SIGINT / second SIGTERM): abandon everything.
  CancelToken Root;
  /// Graceful drain (first SIGTERM): finish, snapshot, exit 0.
  CancelToken Drain;
};

class ServeServer {
public:
  ServeServer(); // out-of-line: RunEntry is incomplete here.
  ~ServeServer();

  ServeServer(const ServeServer &) = delete;
  ServeServer &operator=(const ServeServer &) = delete;

  /// Binds the socket, opens the cache, prewarms the pool. False (with
  /// \p Err) on any setup failure.
  bool init(const ServerOptions &Opts, std::string *Err);

  /// The serve loop. Returns 0 on clean drain shutdown, 128+sig when
  /// the hard signal source fired, 0 when the root token was cancelled
  /// programmatically.
  int run();

  /// Counters snapshot (also the StatsReq payload).
  std::vector<std::pair<std::string, uint64_t>> counters() const;

  const SolutionCache &cache() const { return Cache; }

private:
  struct Conn {
    uint64_t Id = 0; ///< Identity for waiters; fds get reused, ids do not.
    int Fd = -1;     ///< Nonblocking; negative = condemned, reap pending.
    dist::FrameReader Reader;
    dist::FrameWriter Writer;
    /// Reply bytes a slow reader has not taken yet: [OutOff, Out.size())
    /// is unsent, flushed opportunistically after each reply and on
    /// POLLOUT. Capped by ServerOptions::MaxConnOutBytes.
    std::vector<uint8_t> Out;
    size_t OutOff = 0;
  };

  struct Waiter {
    uint64_t ConnId = 0;
    ReplyKind Kind = ReplyKind::Synth;
    /// The requester's program, canonically printed — replies rebind
    /// the solved plan to THESE field names.
    std::string ProgramText;
  };

  /// Memoized compiled program for RunReq. CompiledProgram holds a
  /// reference to its SerialProgram, so both live here, address-stable.
  struct RunEntry;

  void acceptPending();
  void serviceConn(Conn &C);
  void dropConn(size_t Idx);
  Conn *connById(uint64_t Id);
  void closeFdsInForkedChild();

  bool sendOk(Conn &C, const OkReply &R);
  bool sendErr(Conn &C, ErrCode Code, const std::string &Msg,
               uint32_t RetryAfterMs = 0);
  /// Frames the encoded payload into C.Out and flushes what the socket
  /// will take now. On a dead peer — or a backlog past MaxConnOutBytes —
  /// condemns the connection and returns false.
  bool sendFrame(Conn &C, dist::MsgType Type);
  /// Drains C.Out; false means the connection must be condemned.
  bool flushConn(Conn &C);

  void handleFrame(Conn &C, const dist::Frame &F);
  void handleSynthLike(Conn &C, const std::string &Text, ReplyKind Kind);
  void handleRun(Conn &C, const dist::Frame &F);
  void handleStats(Conn &C);

  /// Builds the cache-hit reply: parses the cached program + plan,
  /// rebinds to \p Req's field names, renders description + bytecode.
  bool buildSynthReply(const CacheEntry &E, const lang::SerialProgram &Req,
                       bool CacheHit, SynthReply *Out);
  void replyToWaiters(uint64_t Key, const SolveOutcome &O);
  void maybeSnapshot();

  ServerOptions Opts;
  int ListenFd = -1;
  std::vector<Conn> Conns;
  uint64_t NextConnId = 1;
  SolutionCache Cache;
  SolverPool Pool;

  std::map<uint64_t, std::vector<Waiter>> Waiters; ///< key -> waiters.
  std::set<uint64_t> InFlight;                     ///< keys being solved.
  /// Canonical program text per in-flight key (what the worker solves
  /// and what the cache entry will record).
  std::map<uint64_t, std::string> InFlightText;
  struct NegEntry {
    std::string Reason;
    Deadline Expiry;
  };
  /// Synthesis failures: key -> reason. Bounded (NegativeCap) and
  /// TTL-expired (NegativeTtlSec) — a failure verdict that aged out is
  /// re-solved, in case its cause was environmental.
  std::map<uint64_t, NegEntry> Negative;

  /// Keyed by an exact-text hash of the canonically printed program —
  /// NOT the alpha-invariant canonical key — and verified against the
  /// stored text on every hit, so which program runs never rests on the
  /// collision resistance of a 64-bit hash.
  std::map<uint64_t, std::unique_ptr<RunEntry>> RunMemo;

  struct {
    uint64_t Accepted = 0;
    uint64_t Disconnects = 0;
    uint64_t BadRequests = 0;
    uint64_t CacheHits = 0;
    uint64_t CacheMisses = 0;
    uint64_t NegativeHits = 0;
    uint64_t Coalesced = 0;
    uint64_t ShedOverloaded = 0;
    uint64_t ShedShutdown = 0;
    uint64_t QuarantineRejects = 0;
    uint64_t Solved = 0;
    uint64_t SynthFailed = 0;
    uint64_t RunRequests = 0;
    uint64_t StatsRequests = 0;
    uint64_t Snapshots = 0;
  } C;

  bool Inited = false;
};

} // namespace serve
} // namespace grassp

#endif // GRASSP_SERVE_SERVER_H
