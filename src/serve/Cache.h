//===- serve/Cache.h - Persistent, crash-safe solution cache -------------===//
//
// The reason `grassp serve` scales: most requests are answered from
// this cache with zero solver work. An entry maps a canonical program
// key (serve/CanonHash.h) to the synthesized plan, its Table-1 group,
// its certification status, and the original solve cost.
//
// Persistence is journal-is-truth, snapshot-is-optimization:
//
//  * put() appends one JSON line to `cache.journal` through
//    support::JournalWriter BEFORE the server replies — the write(2)'d
//    line is the commit point, so an entry a client was ever told about
//    survives kill -9 of the server (page cache holds it; fsync is not
//    needed for process-death durability).
//  * snapshot() compacts: the full table is written to `cache.snap` via
//    atomicWriteFile (temp + fsync + rename) and ONLY after that
//    succeeds is the journal truncated. A crash between the two leaves
//    snapshot + journal both present — load() reads the snapshot first,
//    then replays the journal on top (later wins), so the overlap is
//    harmless and a torn snapshot write (fault site serve.snapshot.torn
//    skips the truncation after tearing the snapshot) loses nothing.
//  * Torn tails anywhere are rejected line-by-line by the shared
//    journal discipline (support/Journal.h).
//
// The cache is single-threaded by construction (the serve loop owns
// it); no locking.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SERVE_CACHE_H
#define GRASSP_SERVE_CACHE_H

#include "support/FaultInject.h"
#include "support/Journal.h"

#include <cstdint>
#include <map>
#include <string>

namespace grassp {
namespace serve {

/// Fault site: tears the snapshot file at a drawn byte offset and keeps
/// the journal, so recovery must come from the journal.
inline constexpr const char *FaultSiteSnapshotTorn = "serve.snapshot.torn";

/// Fault site: the journal reopen after snapshot+truncate fails, leaving
/// the cache with no journal writer — put() must heal it on the next
/// append rather than failing every later solve until restart.
inline constexpr const char *FaultSiteJournalReopen = "serve.journal.reopen";

struct CacheEntry {
  uint64_t Key = 0;
  std::string ProgramText; ///< Canonical source of the cached solve.
  std::string PlanText;
  std::string Group;
  std::string Cert; ///< certWireName() string ("certified", ...).
  double SolveSeconds = 0;
  uint32_t Candidates = 0;
  uint32_t SmtChecks = 0;
};

class SolutionCache {
public:
  /// Opens (creating) \p Dir, loads snapshot + journal, re-opens the
  /// journal for appending. False on I/O failure.
  bool open(const std::string &Dir, std::string *Err);

  bool contains(uint64_t Key) const { return Entries.count(Key) != 0; }
  const CacheEntry *get(uint64_t Key) const;
  size_t size() const { return Entries.size(); }

  /// Inserts/overwrites and journals the entry. Returns false when the
  /// journal append failed — the caller must NOT claim durability.
  bool put(const CacheEntry &E);

  /// Entries journaled since the last snapshot (the compaction gauge).
  uint64_t journaledSinceSnapshot() const { return SinceSnapshot; }

  /// Compacts journal into snapshot. \p Faults (optional) is consulted
  /// at serve.snapshot.torn — when it fires, the written snapshot is
  /// truncated at a drawn offset and the journal is NOT truncated,
  /// simulating a crash mid-compaction.
  bool snapshot(FaultInjector *Faults, std::string *Err);

  /// For solver-pool fork children: drop the inherited journal fd so a
  /// child cannot interleave writes with the server's commit stream.
  /// Forked children never put(); they only need the fd gone.
  void closeInForkedChild() { Journal.close(); }

  /// Counters loaded at open() for the stats reply.
  uint64_t loadedFromSnapshot() const { return FromSnapshot; }
  uint64_t loadedFromJournal() const { return FromJournal; }

  static std::string entryLine(const CacheEntry &E);
  static bool parseEntryLine(const std::string &Line, CacheEntry *Out);

private:
  std::string Dir;
  std::map<uint64_t, CacheEntry> Entries;
  support::JournalWriter Journal;
  uint64_t SinceSnapshot = 0;
  uint64_t FromSnapshot = 0;
  uint64_t FromJournal = 0;
};

} // namespace serve
} // namespace grassp

#endif // GRASSP_SERVE_CACHE_H
