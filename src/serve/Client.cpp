//===- serve/Client.cpp --------------------------------------------------==//

#include "serve/Client.h"

#include "support/Cancel.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace grassp {
namespace serve {

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

bool ServeClient::connect(const std::string &SocketPath, double TimeoutSec,
                          std::string *Err) {
  ignoreSigpipe();
  close();
  struct sockaddr_un Addr;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + SocketPath;
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);

  Deadline Until = Deadline::after(TimeoutSec);
  for (;;) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0) {
      if (Err)
        *Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                  sizeof(Addr)) == 0)
      return true;
    int E = errno;
    ::close(Fd);
    Fd = -1;
    // The server may still be binding (ENOENT) or draining its listen
    // backlog (ECONNREFUSED): retry inside the budget.
    if ((E != ENOENT && E != ECONNREFUSED) || Until.expired()) {
      if (Err)
        *Err = "connect " + SocketPath + ": " + std::strerror(E);
      return false;
    }
    ::usleep(10000);
  }
}

bool ServeClient::roundTrip(dist::MsgType Type, ClientReply *Out) {
  if (Fd < 0)
    return false;
  if (!Writer.send(Fd, Type)) {
    close();
    return false;
  }
  dist::Frame F;
  if (dist::readFrameBlocking(Fd, &F) != dist::RecvStatus::Ok) {
    close();
    return false;
  }
  if (F.Type == dist::MsgType::ReplyOk) {
    Out->IsOk = true;
    if (!decodeReplyOk(F.Payload, &Out->Ok)) {
      close();
      return false;
    }
    return true;
  }
  if (F.Type == dist::MsgType::ReplyErr) {
    Out->IsOk = false;
    if (!decodeErrReply(F.Payload, &Out->Err)) {
      close();
      return false;
    }
    return true;
  }
  close(); // a reply that is neither: protocol violation.
  return false;
}

bool ServeClient::synth(const std::string &ProgramText, ClientReply *Out) {
  SynthReqMsg M;
  M.Program = ProgramText;
  encodeSynthReq(M, Writer.payload());
  return roundTrip(dist::MsgType::SynthReq, Out);
}

bool ServeClient::run(const std::string &ProgramText,
                      const std::vector<int64_t> &Data, ClientReply *Out) {
  RunReqMsg M;
  M.Program = ProgramText;
  M.Data = Data;
  encodeRunReq(M, Writer.payload());
  return roundTrip(dist::MsgType::RunReq, Out);
}

bool ServeClient::certify(const std::string &ProgramText, ClientReply *Out) {
  CertifyReqMsg M;
  M.Program = ProgramText;
  encodeCertifyReq(M, Writer.payload());
  return roundTrip(dist::MsgType::CertifyReq, Out);
}

bool ServeClient::stats(ClientReply *Out) {
  Writer.payload(); // empty payload.
  return roundTrip(dist::MsgType::StatsReq, Out);
}

bool ServeClient::sendTruncatedSynth(const std::string &ProgramText) {
  if (Fd < 0)
    return false;
  SynthReqMsg M;
  M.Program = ProgramText;
  dist::WireWriter W;
  encodeSynthReq(M, W);
  const std::vector<uint8_t> &Payload = W.bytes();

  // Hand-build the GDP1 header over the FULL payload, then send only
  // half of it and hang up: the server's FrameReader must classify the
  // torn tail as EOF mid-frame and drop the connection, nothing more.
  std::vector<uint8_t> Buf;
  auto PutU32 = [&Buf](uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  };
  auto PutU64 = [&Buf](uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  };
  PutU32(dist::FrameMagic);
  PutU32(static_cast<uint32_t>(dist::MsgType::SynthReq));
  PutU64(Payload.size());
  // Checksum over type+len+payload, matching FrameWriter's layout.
  std::vector<uint8_t> Sum;
  {
    std::vector<uint8_t> Tmp(Buf.begin() + 4, Buf.end());
    Tmp.insert(Tmp.end(), Payload.begin(), Payload.end());
    PutU64(dist::fnv1aBytes(Tmp.data(), Tmp.size()));
  }
  Buf.insert(Buf.end(), Payload.begin(), Payload.begin() + Payload.size() / 2);

  size_t Off = 0;
  while (Off < Buf.size()) {
    ssize_t N = ::send(Fd, Buf.data() + Off, Buf.size() - Off, MSG_NOSIGNAL);
    if (N <= 0) {
      close();
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  close();
  return true;
}

std::string describeReply(const ClientReply &R) {
  std::ostringstream OS;
  if (!R.IsOk) {
    OS << "error[" << errCodeName(R.Err.Code) << "]";
    if (R.Err.RetryAfterMs)
      OS << " retry-after=" << R.Err.RetryAfterMs << "ms";
    if (!R.Err.Message.empty())
      OS << " " << R.Err.Message;
    return OS.str();
  }
  switch (R.Ok.Kind) {
  case ReplyKind::Synth:
    OS << (R.Ok.Synth.CacheHit ? "hit" : "solved") << " key="
       << R.Ok.Synth.Key << " group=" << R.Ok.Synth.Group << " cert="
       << certWireName(R.Ok.Synth.Cert) << " plan=" << R.Ok.Synth.PlanText;
    break;
  case ReplyKind::Run:
    OS << "run output=" << R.Ok.Run.Output << " tier=" << R.Ok.Run.Tier
       << " key=" << R.Ok.Run.Key;
    break;
  case ReplyKind::Certify:
    OS << (R.Ok.Certify.CacheHit ? "hit" : "solved") << " key="
       << R.Ok.Certify.Key << " group=" << R.Ok.Certify.Group << " cert="
       << certWireName(R.Ok.Certify.Cert);
    break;
  case ReplyKind::Stats:
    for (const auto &KV : R.Ok.Stats.Counters)
      OS << KV.first << "=" << KV.second << " ";
    break;
  }
  return OS.str();
}

} // namespace serve
} // namespace grassp
