//===- serve/Server.cpp --------------------------------------------------==//

#include "serve/Server.h"

#include "runtime/Kernels.h"
#include "serve/CanonHash.h"
#include "serve/ProgramText.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace grassp {
namespace serve {

namespace {

constexpr int TickMs = 25;

bool certWireFromName(const std::string &S, CertWire *Out) {
  for (CertWire W : {CertWire::Certified, CertWire::NotCertified,
                     CertWire::Unknown, CertWire::Unsupported,
                     CertWire::NotRun}) {
    if (S == certWireName(W)) {
      *Out = W;
      return true;
    }
  }
  return false;
}

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace

struct ServeServer::RunEntry {
  lang::SerialProgram Prog;
  std::string Text; ///< printProgramText(Prog): the hit-verification key.
  runtime::CompiledProgram Compiled;
  RunEntry(lang::SerialProgram P, std::string T)
      : Prog(std::move(P)), Text(std::move(T)), Compiled(Prog) {}
};

ServeServer::ServeServer() = default;

ServeServer::~ServeServer() {
  for (Conn &Cn : Conns)
    if (Cn.Fd >= 0)
      ::close(Cn.Fd);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    if (!Opts.SocketPath.empty())
      ::unlink(Opts.SocketPath.c_str());
  }
}

void ServeServer::closeFdsInForkedChild() {
  // Runs in a freshly forked solver worker: drop every server-side fd
  // so a worker never pins the listen socket, a client connection, or
  // the cache journal open.
  if (ListenFd >= 0)
    ::close(ListenFd);
  for (Conn &Cn : Conns)
    if (Cn.Fd >= 0)
      ::close(Cn.Fd);
  Cache.closeInForkedChild();
}

bool ServeServer::init(const ServerOptions &O, std::string *Err) {
  Opts = O;
  ignoreSigpipe();

  if (!Cache.open(Opts.CacheDir, Err))
    return false;

  struct sockaddr_un Addr;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    *Err = "socket path too long: " + Opts.SocketPath;
    return false;
  }
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0) {
    *Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(Opts.SocketPath.c_str()); // stale path from a previous life.
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(ListenFd, 64) != 0) {
    *Err = std::string("bind/listen ") + Opts.SocketPath + ": " +
           std::strerror(errno);
    return false;
  }
  setNonBlocking(ListenFd);

  SolverPoolOptions PO;
  PO.PoolSize = Opts.PoolSize;
  PO.JobDeadlineSec = Opts.JobDeadlineSec;
  PO.MaxAttempts = Opts.MaxAttempts;
  PO.BackoffBaseSec = Opts.BackoffBaseSec;
  PO.BackoffCapSec = Opts.BackoffCapSec;
  PO.BreakerFailures = Opts.BreakerFailures;
  PO.QuarantineSec = Opts.QuarantineSec;
  PO.Seed = Opts.Seed;
  PO.SmtTimeoutMs = Opts.SmtTimeoutMs;
  PO.CertTimeoutMs = Opts.CertTimeoutMs;
  PO.Faults = Opts.Faults;
  PO.AtForkChild = [this] { closeFdsInForkedChild(); };
  if (!Pool.start(PO, Err))
    return false;

  Inited = true;
  return true;
}

ServeServer::Conn *ServeServer::connById(uint64_t Id) {
  for (Conn &Cn : Conns)
    if (Cn.Id == Id && Cn.Fd >= 0)
      return &Cn;
  return nullptr;
}

void ServeServer::dropConn(size_t Idx) {
  ::close(Conns[Idx].Fd);
  Conns.erase(Conns.begin() + static_cast<long>(Idx));
  ++C.Disconnects;
}

void ServeServer::acceptPending() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN (or transient) — next tick.
    ::fcntl(Fd, F_SETFD, FD_CLOEXEC);
    setNonBlocking(Fd); // replies buffer + drain on POLLOUT, never block.
    if (Conns.size() >= Opts.MaxConns) {
      ::close(Fd); // over the connection cap: refuse by closing.
      continue;
    }
    Conn Cn;
    Cn.Id = NextConnId++;
    Cn.Fd = Fd;
    Conns.push_back(std::move(Cn));
    ++C.Accepted;
  }
}

bool ServeServer::flushConn(Conn &Cn) {
  // Reclaim the sent prefix before it dominates the buffer.
  if (Cn.OutOff > (1u << 20) || Cn.OutOff > Cn.Out.size() / 2) {
    Cn.Out.erase(Cn.Out.begin(), Cn.Out.begin() + static_cast<long>(Cn.OutOff));
    Cn.OutOff = 0;
  }
  while (Cn.OutOff < Cn.Out.size()) {
    ssize_t W = ::send(Cn.Fd, Cn.Out.data() + Cn.OutOff,
                       Cn.Out.size() - Cn.OutOff, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        // The client is not reading right now: keep the tail buffered
        // and let POLLOUT resume it — unless the backlog is past the
        // cap, in which case the connection is condemned, not the loop.
        return Cn.Out.size() - Cn.OutOff <= Opts.MaxConnOutBytes;
      return false; // dead peer.
    }
    Cn.OutOff += static_cast<size_t>(W);
  }
  Cn.Out.clear();
  Cn.OutOff = 0;
  return true;
}

bool ServeServer::sendFrame(Conn &Cn, dist::MsgType Type) {
  if (Cn.Fd < 0)
    return false; // already condemned earlier in this burst.
  Cn.Writer.frameInto(Type, &Cn.Out);
  if (flushConn(Cn))
    return true;
  Cn.Fd = -Cn.Fd - 1; // dead or not-reading; reaped on the next sweep.
  return false;
}

bool ServeServer::sendOk(Conn &Cn, const OkReply &R) {
  // Each encode*Reply writes its own ReplyKind tag as the first byte.
  dist::WireWriter &P = Cn.Writer.payload();
  switch (R.Kind) {
  case ReplyKind::Synth:
    encodeSynthReply(R.Synth, P);
    break;
  case ReplyKind::Run:
    encodeRunReply(R.Run, P);
    break;
  case ReplyKind::Certify:
    encodeCertifyReply(R.Certify, P);
    break;
  case ReplyKind::Stats:
    encodeStatsReply(R.Stats, P);
    break;
  }
  return sendFrame(Cn, dist::MsgType::ReplyOk);
}

bool ServeServer::sendErr(Conn &Cn, ErrCode Code, const std::string &Msg,
                          uint32_t RetryAfterMs) {
  if (Cn.Fd < 0)
    return false;
  ErrReply E;
  E.Code = Code;
  E.RetryAfterMs = RetryAfterMs;
  E.Message = Msg;
  encodeErrReply(E, Cn.Writer.payload());
  return sendFrame(Cn, dist::MsgType::ReplyErr);
}

bool ServeServer::buildSynthReply(const CacheEntry &E,
                                  const lang::SerialProgram &Req,
                                  bool CacheHit, SynthReply *Out) {
  std::string Err;
  lang::SerialProgram Cached;
  if (!parseProgramText(E.ProgramText, &Cached, &Err))
    return false; // a corrupt-but-parsing journal entry: treat as miss.
  synth::ParallelPlan Plan;
  if (!parsePlanText(E.PlanText, Cached, &Plan, &Err))
    return false;
  synth::ParallelPlan Rebound;
  if (!rebindPlanToProgram(Plan, Cached, Req, &Rebound))
    return false;

  Out->CacheHit = CacheHit ? 1 : 0;
  Out->Key = keyToHex(E.Key);
  Out->Group = E.Group;
  Out->PlanText = printPlanText(Rebound);
  Out->Description = Rebound.describe(Req);
  if (!Req.State.hasBag()) {
    std::vector<std::string> Inputs;
    for (const lang::Field &F : Req.State.fields())
      Inputs.push_back(F.Name);
    Inputs.push_back(lang::inputVarName());
    Out->Bytecode = disassembleBytecode(
        ir::BytecodeFunction::compile(Req.Step, Inputs).optimized());
  } else {
    Out->Bytecode = "(bag program: native distinct-set kernel)";
  }
  CertWire W;
  Out->Cert = certWireFromName(E.Cert, &W) ? W : CertWire::NotRun;
  Out->SolveSeconds = E.SolveSeconds;
  return true;
}

void ServeServer::handleSynthLike(Conn &Cn, const std::string &Text,
                                  ReplyKind Kind) {
  lang::SerialProgram Prog;
  std::string Err;
  if (!parseProgramText(Text, &Prog, &Err)) {
    ++C.BadRequests;
    sendErr(Cn, ErrCode::BadRequest, Err);
    return;
  }
  uint64_t Key = canonicalProgramHash(Prog);

  if (const CacheEntry *E = Cache.get(Key)) {
    OkReply R;
    if (Kind == ReplyKind::Certify) {
      R.Kind = ReplyKind::Certify;
      R.Certify.CacheHit = 1;
      R.Certify.Key = keyToHex(Key);
      R.Certify.Group = E->Group;
      CertWire W;
      R.Certify.Cert =
          certWireFromName(E->Cert, &W) ? W : CertWire::NotRun;
      ++C.CacheHits;
      sendOk(Cn, R);
      return;
    }
    R.Kind = ReplyKind::Synth;
    if (buildSynthReply(*E, Prog, /*CacheHit=*/true, &R.Synth)) {
      ++C.CacheHits;
      sendOk(Cn, R);
      return;
    }
    // Unreboundable entry (collision or corruption): fall through and
    // solve honestly.
  }
  ++C.CacheMisses;

  auto NegIt = Negative.find(Key);
  if (NegIt != Negative.end()) {
    if (NegIt->second.Expiry.expired()) {
      // The failure verdict aged out: solve afresh, in case the cause
      // was environmental rather than "no plan exists".
      Negative.erase(NegIt);
    } else {
      ++C.NegativeHits;
      sendErr(Cn, ErrCode::SynthFailed, NegIt->second.Reason);
      return;
    }
  }

  uint32_t RetryMs = 0;
  if (Pool.quarantined(Key, &RetryMs)) {
    ++C.QuarantineRejects;
    sendErr(Cn, ErrCode::SolverUnavailable,
            "key quarantined after repeated solver crashes", RetryMs);
    return;
  }

  if (Opts.Drain.cancelled()) {
    ++C.ShedShutdown;
    sendErr(Cn, ErrCode::ShuttingDown, "server is draining", 0);
    return;
  }

  Waiter W;
  W.ConnId = Cn.Id;
  W.Kind = Kind;
  W.ProgramText = printProgramText(Prog);

  if (InFlight.count(Key)) {
    // Coalesce: someone is already solving this key; one job serves
    // every waiter.
    ++C.Coalesced;
    Waiters[Key].push_back(std::move(W));
    return;
  }

  if (Pool.pendingJobs() + Pool.inFlightJobs() >= Opts.HighWaterJobs) {
    // Graceful degradation: shed the solver-bound request, keep the
    // cheap ones flowing.
    ++C.ShedOverloaded;
    sendErr(Cn, ErrCode::Overloaded, "synthesis queue past high water",
            Opts.RetryAfterMs);
    return;
  }

  InFlight.insert(Key);
  InFlightText[Key] = W.ProgramText;
  Waiters[Key].push_back(std::move(W));
  Pool.submit(Key, InFlightText[Key]);
}

void ServeServer::handleRun(Conn &Cn, const dist::Frame &F) {
  RunReqMsg Req;
  if (!decodeRunReq(F.Payload, &Req)) {
    ++C.BadRequests;
    sendErr(Cn, ErrCode::BadRequest, "undecodable run request");
    return;
  }
  lang::SerialProgram Prog;
  std::string Err;
  if (!parseProgramText(Req.Program, &Prog, &Err)) {
    ++C.BadRequests;
    sendErr(Cn, ErrCode::BadRequest, Err);
    return;
  }
  ++C.RunRequests;
  uint64_t Key = canonicalProgramHash(Prog);
  // The memo is keyed by an EXACT-text hash of the canonical printing
  // and every hit is verified against the stored text: a colliding key
  // must recompile, never silently execute the first comer's program.
  // (Alpha-variants thus memoize separately — correctness over sharing.)
  std::string CanonText = printProgramText(Prog);
  uint64_t MemoKey = dist::fnv1aBytes(
      reinterpret_cast<const uint8_t *>(CanonText.data()), CanonText.size());
  auto It = RunMemo.find(MemoKey);
  std::unique_ptr<RunEntry> Scratch;
  const RunEntry *E;
  if (It != RunMemo.end() && It->second->Text == CanonText) {
    E = It->second.get();
  } else if (It != RunMemo.end()) {
    // Text-hash collision: compile the requester's own program for this
    // request only; the occupied slot keeps its entry.
    Scratch = std::make_unique<RunEntry>(std::move(Prog), std::move(CanonText));
    E = Scratch.get();
  } else {
    if (RunMemo.size() >= Opts.RunMemoCap)
      RunMemo.clear(); // bounded memory beats clever eviction here.
    E = RunMemo
            .emplace(MemoKey, std::make_unique<RunEntry>(std::move(Prog),
                                                         std::move(CanonText)))
            .first->second.get();
  }
  const runtime::CompiledProgram &CP = E->Compiled;
  runtime::SegmentView Seg{Req.Data.data(), Req.Data.size()};
  OkReply R;
  R.Kind = ReplyKind::Run;
  R.Run.Output = CP.runSerial({Seg});
  R.Run.Tier = runtime::execTierName(CP.tier());
  R.Run.Key = keyToHex(Key);
  sendOk(Cn, R);
}

void ServeServer::handleStats(Conn &Cn) {
  ++C.StatsRequests;
  OkReply R;
  R.Kind = ReplyKind::Stats;
  R.Stats.Counters = counters();
  sendOk(Cn, R);
}

std::vector<std::pair<std::string, uint64_t>> ServeServer::counters() const {
  const SolverPool::Stats &P = Pool.stats();
  return {
      {"conns.accepted", C.Accepted},
      {"conns.dropped", C.Disconnects},
      {"req.bad", C.BadRequests},
      {"req.run", C.RunRequests},
      {"req.stats", C.StatsRequests},
      {"cache.size", Cache.size()},
      {"cache.hits", C.CacheHits},
      {"cache.misses", C.CacheMisses},
      {"cache.negative-hits", C.NegativeHits},
      {"cache.loaded-snapshot", Cache.loadedFromSnapshot()},
      {"cache.loaded-journal", Cache.loadedFromJournal()},
      {"cache.snapshots", C.Snapshots},
      {"synth.solved", C.Solved},
      {"synth.failed", C.SynthFailed},
      {"synth.coalesced", C.Coalesced},
      {"shed.overloaded", C.ShedOverloaded},
      {"shed.shutting-down", C.ShedShutdown},
      {"shed.quarantined", C.QuarantineRejects},
      {"pool.submitted", P.Submitted},
      {"pool.completed", P.Completed},
      {"pool.worker-deaths", P.WorkerDeaths},
      {"pool.deadline-kills", P.DeadlineKills},
      {"pool.retries", P.Retries},
      {"pool.exhausted", P.Exhausted},
      {"pool.breaker-trips", P.BreakerTrips},
      {"pool.respawns", P.Respawns},
      {"pool.live-workers", Pool.liveWorkers()},
      {"serve.draining", Opts.Drain.cancelled() ? 1u : 0u},
  };
}

void ServeServer::handleFrame(Conn &Cn, const dist::Frame &F) {
  switch (F.Type) {
  case dist::MsgType::SynthReq: {
    SynthReqMsg M;
    if (!decodeSynthReq(F.Payload, &M)) {
      ++C.BadRequests;
      sendErr(Cn, ErrCode::BadRequest, "undecodable synth request");
      return;
    }
    handleSynthLike(Cn, M.Program, ReplyKind::Synth);
    return;
  }
  case dist::MsgType::CertifyReq: {
    CertifyReqMsg M;
    if (!decodeCertifyReq(F.Payload, &M)) {
      ++C.BadRequests;
      sendErr(Cn, ErrCode::BadRequest, "undecodable certify request");
      return;
    }
    handleSynthLike(Cn, M.Program, ReplyKind::Certify);
    return;
  }
  case dist::MsgType::RunReq:
    handleRun(Cn, F);
    return;
  case dist::MsgType::StatsReq:
    handleStats(Cn);
    return;
  default:
    ++C.BadRequests;
    sendErr(Cn, ErrCode::BadRequest, "unexpected frame type");
    return;
  }
}

void ServeServer::serviceConn(Conn &Cn) {
  // One fill per POLLIN wakeup (nonblocking fd: EAGAIN is NeedMore),
  // then drain every complete frame it produced.
  dist::RecvStatus S = Cn.Reader.fill(Cn.Fd);
  if (S == dist::RecvStatus::Eof || S == dist::RecvStatus::Error ||
      S == dist::RecvStatus::Corrupt) {
    Cn.Fd = -Cn.Fd - 1; // mark dead; reaped by the caller. (Fd >= 0 check.)
    return;
  }
  for (;;) {
    dist::Frame F;
    S = Cn.Reader.next(&F);
    if (S == dist::RecvStatus::NeedMore)
      return;
    if (S != dist::RecvStatus::Ok) {
      // Corrupt framing: the connection cannot be trusted any further.
      Cn.Fd = -Cn.Fd - 1;
      return;
    }
    handleFrame(Cn, F);
    if (Cn.Fd < 0)
      return; // a reply failed mid-burst; connection already condemned.
  }
}

void ServeServer::replyToWaiters(uint64_t Key, const SolveOutcome &O) {
  auto WIt = Waiters.find(Key);
  std::vector<Waiter> Ws;
  if (WIt != Waiters.end()) {
    Ws = std::move(WIt->second);
    Waiters.erase(WIt);
  }
  InFlight.erase(Key);
  InFlightText.erase(Key);

  // A failed send condemns the connection inside sendFrame(); the reap
  // sweep collects it.
  for (const Waiter &W : Ws) {
    Conn *Cn = connById(W.ConnId);
    if (!Cn)
      continue; // waiter hung up mid-solve; the answer is cached anyway.
    switch (O.Outcome) {
    case SolveOutcome::Kind::Done: {
      if (!O.Done.Solved) {
        sendErr(*Cn, ErrCode::SynthFailed, O.Done.FailureReason);
        break;
      }
      const CacheEntry *E = Cache.get(Key);
      if (!E) { // journal append failed earlier; never claim durability.
        sendErr(*Cn, ErrCode::Internal, "cache journal write failed");
        break;
      }
      lang::SerialProgram Req;
      std::string Err;
      OkReply R;
      if (W.Kind == ReplyKind::Certify) {
        R.Kind = ReplyKind::Certify;
        R.Certify.CacheHit = 0;
        R.Certify.Key = keyToHex(Key);
        R.Certify.Group = E->Group;
        R.Certify.Cert = O.Done.Cert;
        sendOk(*Cn, R);
        break;
      }
      R.Kind = ReplyKind::Synth;
      if (parseProgramText(W.ProgramText, &Req, &Err) &&
          buildSynthReply(*E, Req, /*CacheHit=*/false, &R.Synth))
        sendOk(*Cn, R);
      else
        sendErr(*Cn, ErrCode::Internal, "reply construction failed");
      break;
    }
    case SolveOutcome::Kind::Exhausted:
      sendErr(*Cn, ErrCode::SolverUnavailable, O.FailureReason,
              Opts.RetryAfterMs);
      break;
    case SolveOutcome::Kind::Quarantined:
      sendErr(*Cn, ErrCode::SolverUnavailable, O.FailureReason,
              O.RetryAfterMs);
      break;
    }
  }
}

void ServeServer::maybeSnapshot() {
  if (Cache.journaledSinceSnapshot() < Opts.SnapshotEvery)
    return;
  std::string Err;
  if (Cache.snapshot(Opts.Faults, &Err))
    ++C.Snapshots;
  // A failed snapshot is not fatal: the journal still holds everything.
}

int ServeServer::run() {
  if (!Inited)
    return 1;
  std::vector<SolveOutcome> Outcomes;
  bool DrainClosed = false;

  for (;;) {
    if (Opts.Root.cancelled()) {
      // Hard stop: abandon in-flight work, but the journal already
      // holds every answer any client was ever given.
      Pool.shutdown(0.5);
      int Sig = signalExitCode();
      return Sig ? Sig : 0;
    }

    bool Draining = Opts.Drain.cancelled();
    if (Draining && !DrainClosed) {
      // Stop accepting; existing connections keep being served.
      ::close(ListenFd);
      ::unlink(Opts.SocketPath.c_str());
      ListenFd = -1;
      DrainClosed = true;
    }
    if (Draining && InFlight.empty() && Pool.pendingJobs() == 0 &&
        Pool.inFlightJobs() == 0) {
      // Drained: persist and leave cleanly.
      std::string Err;
      if (Cache.snapshot(Opts.Faults, &Err))
        ++C.Snapshots;
      Pool.shutdown(2.0);
      for (Conn &Cn : Conns)
        if (Cn.Fd >= 0) {
          flushConn(Cn); // best-effort tail flush; drain must not block.
          ::close(Cn.Fd);
        }
      Conns.clear();
      return 0;
    }

    std::vector<struct pollfd> Pfds;
    if (ListenFd >= 0)
      Pfds.push_back({ListenFd, POLLIN, 0});
    size_t ConnBase = Pfds.size();
    // Snapshot the count NOW: acceptPending() below appends to Conns,
    // and those new connections have no pollfd this tick — sweeping to
    // Conns.size() would read the solver-pool entries Pool.pollFds
    // appends after ours (or walk off the end of Pfds).
    const size_t NConns = Conns.size();
    for (Conn &Cn : Conns) {
      short Ev = POLLIN;
      if (Cn.OutOff < Cn.Out.size())
        Ev |= POLLOUT; // a slow reader's backlog wants draining.
      Pfds.push_back({Cn.Fd, Ev, 0});
    }
    Pool.pollFds(&Pfds);

    int Rc = ::poll(Pfds.data(), Pfds.size(), TickMs);
    if (Rc < 0 && errno != EINTR) {
      Pool.shutdown(0.5);
      return 1;
    }

    if (ListenFd >= 0 && (Pfds[0].revents & POLLIN))
      acceptPending();

    for (size_t I = 0; I != NConns; ++I) {
      short Re = Pfds[ConnBase + I].revents;
      if ((Re & POLLOUT) && Conns[I].Fd >= 0 && !flushConn(Conns[I]))
        Conns[I].Fd = -Conns[I].Fd - 1; // dead mid-drain; reap below.
      if ((Re & (POLLIN | POLLHUP | POLLERR)) && Conns[I].Fd >= 0)
        serviceConn(Conns[I]);
    }
    // Reap condemned connections (marked with a negative fd) AFTER the
    // sweep so the pollfd indices above stayed aligned.
    for (size_t I = Conns.size(); I-- > 0;) {
      if (Conns[I].Fd < 0) {
        Conns[I].Fd = -Conns[I].Fd - 1; // restore for close().
        dropConn(I);
      }
    }

    Outcomes.clear();
    Pool.pump(&Outcomes);
    for (const SolveOutcome &O : Outcomes) {
      if (O.Outcome == SolveOutcome::Kind::Done && O.Done.Solved) {
        // Commit BEFORE any reply: the journal line is the durability
        // point every client-visible answer sits behind.
        CacheEntry E;
        E.Key = O.Key;
        auto TIt = InFlightText.find(O.Key);
        E.ProgramText = TIt != InFlightText.end() ? TIt->second : "";
        E.PlanText = O.Done.PlanText;
        E.Group = O.Done.Group;
        E.Cert = certWireName(O.Done.Cert);
        E.SolveSeconds = O.Done.Seconds;
        E.Candidates = O.Done.Candidates;
        E.SmtChecks = O.Done.SmtChecks;
        if (Cache.put(E))
          ++C.Solved;
      } else if (O.Outcome == SolveOutcome::Kind::Done && !O.Done.Solved) {
        if (Negative.size() >= Opts.NegativeCap)
          Negative.clear(); // the RunMemoCap discipline: drop wholesale.
        Negative[O.Key] = {O.Done.FailureReason,
                           Deadline::after(Opts.NegativeTtlSec)};
        ++C.SynthFailed;
      }
      replyToWaiters(O.Key, O);
    }

    maybeSnapshot();
  }
}

} // namespace serve
} // namespace grassp
