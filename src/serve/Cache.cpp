//===- serve/Cache.cpp ----------------------------------------------------==//

#include "serve/Cache.h"

#include "serve/CanonHash.h"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

namespace grassp {
namespace serve {

namespace {
std::string snapPath(const std::string &Dir) { return Dir + "/cache.snap"; }
std::string journalPath(const std::string &Dir) {
  return Dir + "/cache.journal";
}
} // namespace

std::string SolutionCache::entryLine(const CacheEntry &E) {
  std::ostringstream OS;
  OS << "{\"key\":\"" << keyToHex(E.Key) << "\",\"group\":\""
     << support::jsonEscape(E.Group) << "\",\"cert\":\""
     << support::jsonEscape(E.Cert) << "\",\"seconds\":" << E.SolveSeconds
     << ",\"candidates\":" << E.Candidates << ",\"smt\":" << E.SmtChecks
     << ",\"program\":\"" << support::jsonEscape(E.ProgramText)
     << "\",\"plan\":\"" << support::jsonEscape(E.PlanText) << "\"}";
  return OS.str();
}

bool SolutionCache::parseEntryLine(const std::string &Line, CacheEntry *Out) {
  if (!support::journalLineWellFormed(Line))
    return false;
  CacheEntry E;
  std::string KeyHex;
  if (!support::jsonStringField(Line, "key", &KeyHex) ||
      !keyFromHex(KeyHex, &E.Key) ||
      !support::jsonStringField(Line, "program", &E.ProgramText) ||
      !support::jsonStringField(Line, "plan", &E.PlanText))
    return false;
  support::jsonStringField(Line, "group", &E.Group);
  support::jsonStringField(Line, "cert", &E.Cert);
  double V = 0;
  if (support::jsonNumberField(Line, "seconds", &V))
    E.SolveSeconds = V;
  if (support::jsonNumberField(Line, "candidates", &V))
    E.Candidates = static_cast<uint32_t>(V);
  if (support::jsonNumberField(Line, "smt", &V))
    E.SmtChecks = static_cast<uint32_t>(V);
  *Out = E;
  return true;
}

bool SolutionCache::open(const std::string &D, std::string *Err) {
  Dir = D;
  Entries.clear();
  SinceSnapshot = FromSnapshot = FromJournal = 0;
  if (::mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    *Err = "mkdir " + Dir + ": " + std::strerror(errno);
    return false;
  }
  // Snapshot first, then journal replays on top: later wins, and an
  // un-truncated journal after a torn snapshot restores every commit.
  for (const std::string &Line : support::loadJournalLines(snapPath(Dir))) {
    CacheEntry E;
    if (parseEntryLine(Line, &E)) {
      Entries[E.Key] = std::move(E);
      ++FromSnapshot;
    }
  }
  for (const std::string &Line : support::loadJournalLines(journalPath(Dir))) {
    CacheEntry E;
    if (parseEntryLine(Line, &E)) {
      Entries[E.Key] = std::move(E);
      ++FromJournal;
      ++SinceSnapshot;
    }
  }
  if (!Journal.open(journalPath(Dir))) {
    *Err = "open " + journalPath(Dir) + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

const CacheEntry *SolutionCache::get(uint64_t Key) const {
  auto It = Entries.find(Key);
  return It == Entries.end() ? nullptr : &It->second;
}

bool SolutionCache::put(const CacheEntry &E) {
  // A snapshot whose post-truncate reopen failed leaves the writer
  // closed; heal here so one transient open failure cannot turn every
  // later solve into "cache journal write failed" until restart.
  if (!Journal.isOpen() && !Journal.open(journalPath(Dir)))
    return false;
  // Journal append IS the commit point: only after the line is written
  // may the server reply, so every answer a client ever saw is
  // reconstructible after kill -9.
  if (!Journal.append(entryLine(E)))
    return false;
  Entries[E.Key] = E;
  ++SinceSnapshot;
  return true;
}

bool SolutionCache::snapshot(FaultInjector *Faults, std::string *Err) {
  std::string Content;
  for (const auto &KV : Entries) {
    Content += entryLine(KV.second);
    Content += '\n';
  }
  bool Torn = Faults && Faults->shouldFailKeyed(FaultSiteSnapshotTorn,
                                               Entries.size());
  if (Torn && !Content.empty()) {
    // The injected crash-mid-compaction: publish a snapshot cut at an
    // arbitrary drawn byte and leave the journal alone. load() must
    // still reconstruct every entry (the torn tail line is rejected,
    // the journal replays the rest).
    size_t Cut = static_cast<size_t>(
        Faults->drawFor(FaultSiteSnapshotTorn, Entries.size()) %
        Content.size());
    Content.resize(Cut);
  }
  if (!support::atomicWriteFile(snapPath(Dir), Content, Err))
    return false;
  if (Torn)
    return true; // journal deliberately kept: recovery path under test.
  // Truncate the journal ONLY now that the snapshot is durably in
  // place; reopen in append mode for subsequent puts.
  Journal.close();
  if (::truncate(journalPath(Dir).c_str(), 0) != 0 && errno != ENOENT) {
    *Err = std::string("truncate journal: ") + std::strerror(errno);
    // Keep appending to the un-truncated journal; nothing is lost.
    Journal.open(journalPath(Dir));
    return false;
  }
  if (Faults && Faults->shouldFail(FaultSiteJournalReopen)) {
    // Injected reopen failure: leave the writer closed. The snapshot is
    // durable and the journal empty, so nothing is lost — put() heals
    // the writer on its next append.
    *Err = "reopen journal: injected fault";
    return false;
  }
  if (!Journal.open(journalPath(Dir))) {
    *Err = "reopen journal: " + std::string(std::strerror(errno));
    // Not fatal for later puts: put() retries the open before appending.
    return false;
  }
  SinceSnapshot = 0;
  return true;
}

} // namespace serve
} // namespace grassp
