//===- serve/SolverPool.cpp ----------------------------------------------==//

#include "serve/SolverPool.h"

#include "chc/Certify.h"
#include "runtime/Runner.h"
#include "serve/ProgramText.h"
#include "synth/Grassp.h"

#include <csignal>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace grassp {
namespace serve {

namespace {

CertWire certWireOf(chc::CertStatus S) {
  switch (S) {
  case chc::CertStatus::Certified:
    return CertWire::Certified;
  case chc::CertStatus::NotCertified:
    return CertWire::NotCertified;
  case chc::CertStatus::Unknown:
    return CertWire::Unknown;
  case chc::CertStatus::Unsupported:
    return CertWire::Unsupported;
  }
  return CertWire::Unknown;
}

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// Human-readable decode of a worker's wait status.
std::string describeWait(int St) {
  std::ostringstream OS;
  if (WIFSIGNALED(St))
    OS << "killed by signal " << WTERMSIG(St);
  else if (WIFEXITED(St))
    OS << "exited with status " << WEXITSTATUS(St);
  else
    OS << "ended with wait status " << St;
  return OS.str();
}

/// The fault key for one (key, attempt) pair: pure, so a chaos run
/// replays the exact same kill/hang pattern from its seed.
uint64_t attemptFaultKey(uint64_t Key, unsigned Attempt) {
  uint64_t X = Key + 0x9e3779b97f4a7c15ULL * (Attempt + 1);
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  return X;
}

} // namespace

//===----------------------------------------------------------------------===//
// The worker child
//===----------------------------------------------------------------------===//

[[noreturn]] void solverWorkerMain(int Fd, FaultInjector *Faults) {
  ignoreSigpipe();
  dist::FrameWriter Writer;
  for (;;) {
    dist::Frame F;
    dist::RecvStatus S = dist::readFrameBlocking(Fd, &F);
    if (S != dist::RecvStatus::Ok)
      ::_exit(0); // server gone or channel untrusted: clean end.
    if (F.Type == dist::MsgType::Shutdown)
      ::_exit(0);
    if (F.Type != dist::MsgType::SolveJob)
      continue; // stray frame; stay in lockstep.

    SolveJobMsg Job;
    if (!decodeSolveJob(F.Payload, &Job))
      ::_exit(0); // checksummed but undecodable: give up loudly.

    // The REAL faults, decided before any solver work so the server's
    // death handling sees a job-holding casualty.
    if (Faults) {
      if (Faults->shouldFailKeyed(FaultSiteWorkerKill, Job.FaultKey)) {
        ::raise(SIGKILL);
        ::_exit(137); // unreachable; belt and braces.
      }
      if (Faults->shouldFailKeyed(FaultSiteWorkerHang, Job.FaultKey)) {
        // Go silent holding the job: the pool's per-job deadline must
        // notice and SIGKILL us.
        for (;;)
          ::pause();
      }
    }

    SolveDoneMsg Done;
    Done.JobId = Job.JobId;
    Done.Key = Job.Key;
    try {
      lang::SerialProgram Prog;
      std::string Err;
      if (!parseProgramText(Job.Program, &Prog, &Err)) {
        Done.Solved = 0;
        Done.FailureReason = "unparsable program: " + Err;
      } else {
        synth::SynthOptions SO;
        SO.Bounds.SmtTimeoutMs = Job.SmtTimeoutMs;
        synth::SynthesisResult R = synth::synthesize(Prog, SO);
        Done.Seconds = R.SynthSeconds;
        Done.Candidates = R.CandidatesTried;
        Done.SmtChecks = R.SmtChecks;
        if (R.Success) {
          Done.Solved = 1;
          Done.Group = R.Group;
          Done.PlanText = printPlanText(R.Plan);
          chc::CertifyOptions CO;
          CO.TimeoutMs = Job.CertTimeoutMs;
          chc::CertifyOutcome C = chc::certify(Prog, R.Plan, CO);
          Done.Cert = certWireOf(C.Status);
        } else {
          Done.Solved = 0;
          Done.FailureReason =
              R.FailureReason.empty() ? "no plan found" : R.FailureReason;
        }
      }
    } catch (const std::exception &E) {
      Done.Solved = 0;
      Done.FailureReason = std::string("solver exception: ") + E.what();
    }

    encodeSolveDone(Done, Writer.payload());
    if (!Writer.send(Fd, dist::MsgType::SolveDone))
      ::_exit(0);
  }
}

//===----------------------------------------------------------------------===//
// The parent-side pool
//===----------------------------------------------------------------------===//

SolverPool::~SolverPool() { shutdown(0.5); }

bool SolverPool::spawnWorker(std::string *Err) {
  int Fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0) {
    if (Err)
      *Err = std::string("socketpair: ") + std::strerror(errno);
    return false;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Fds[0]);
    ::close(Fds[1]);
    if (Err)
      *Err = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (Pid == 0) {
    // Child: drop the parent end and every server resource the owner
    // registered (listen socket, client fds, cache journal fd), then
    // serve solves until told otherwise.
    ::close(Fds[0]);
    if (Opts.AtForkChild)
      Opts.AtForkChild();
    solverWorkerMain(Fds[1], Opts.Faults);
  }
  ::close(Fds[1]);
  setNonBlocking(Fds[0]);
  Worker W;
  W.Pid = Pid;
  W.Fd = Fds[0];
  Workers.push_back(std::move(W));
  return true;
}

bool SolverPool::start(const SolverPoolOptions &O, std::string *Err) {
  Opts = O;
  for (size_t I = 0; I != Opts.PoolSize; ++I)
    if (!spawnWorker(Err))
      return false;
  Started = true;
  return true;
}

uint64_t SolverPool::submit(uint64_t Key, const std::string &ProgramText) {
  Job J;
  J.JobId = NextJobId++;
  J.Key = Key;
  J.Program = ProgramText;
  J.PrevBackoff = Opts.BackoffBaseSec;
  Pending.push_back(std::move(J));
  ++Counters.Submitted;
  return Pending.back().JobId;
}

bool SolverPool::quarantined(uint64_t Key, uint32_t *RetryAfterMs) {
  auto It = Quarantine.find(Key);
  if (It == Quarantine.end())
    return false;
  if (It->second.expired()) {
    // Quarantine served: the key gets a fresh chance (and a fresh
    // breaker count — the next death starts the count over).
    Quarantine.erase(It);
    BreakerCount.erase(Key);
    return false;
  }
  if (RetryAfterMs) {
    double Sec = It->second.remainingSeconds();
    *RetryAfterMs = static_cast<uint32_t>(Sec * 1000.0) + 1;
  }
  return true;
}

void SolverPool::pollFds(std::vector<struct pollfd> *Out) const {
  for (const Worker &W : Workers)
    if (W.Fd >= 0)
      Out->push_back({W.Fd, POLLIN, 0});
}

size_t SolverPool::idleWorkers() const {
  size_t N = 0;
  for (const Worker &W : Workers)
    if (W.Fd >= 0 && !W.Busy)
      ++N;
  return N;
}

size_t SolverPool::liveWorkers() const {
  size_t N = 0;
  for (const Worker &W : Workers)
    if (W.Fd >= 0)
      ++N;
  return N;
}

size_t SolverPool::inFlightJobs() const {
  size_t N = 0;
  for (const Worker &W : Workers)
    if (W.Fd >= 0 && W.Busy)
      ++N;
  return N;
}

void SolverPool::failAttempt(Job J, const std::string &Reason,
                             std::vector<SolveOutcome> *Out) {
  ++Counters.WorkerDeaths;
  unsigned &Fails = BreakerCount[J.Key];
  ++Fails;
  if (Fails >= Opts.BreakerFailures) {
    // Circuit broken: quarantine the key and tell the waiters. The
    // count stays until the quarantine expires (see quarantined()).
    Quarantine[J.Key] = Deadline::after(Opts.QuarantineSec);
    ++Counters.BreakerTrips;
    SolveOutcome O;
    O.JobId = J.JobId;
    O.Key = J.Key;
    O.Outcome = SolveOutcome::Kind::Quarantined;
    O.FailureReason = Reason + " (" + std::to_string(Fails) +
                      " consecutive solver deaths; key quarantined)";
    O.RetryAfterMs = static_cast<uint32_t>(Opts.QuarantineSec * 1000.0) + 1;
    Out->push_back(std::move(O));
    return;
  }
  if (J.Attempt + 1 < Opts.MaxAttempts) {
    // Requeue with decorrelated jitter so correlated deaths spread out.
    ++Counters.Retries;
    J.PrevBackoff = runtime::decorrelatedBackoff(
        Opts.BackoffBaseSec, Opts.BackoffCapSec, J.PrevBackoff, Opts.Seed,
        attemptFaultKey(J.Key, J.Attempt));
    ++J.Attempt;
    J.ReadyAt = Deadline::after(J.PrevBackoff);
    Pending.push_back(std::move(J));
    return;
  }
  ++Counters.Exhausted;
  SolveOutcome O;
  O.JobId = J.JobId;
  O.Key = J.Key;
  O.Outcome = SolveOutcome::Kind::Exhausted;
  O.FailureReason = Reason + " after " + std::to_string(J.Attempt + 1) +
                    " attempts";
  Out->push_back(std::move(O));
}

void SolverPool::handleWorkerDown(size_t Idx, std::vector<SolveOutcome> *Out) {
  Worker &W = Workers[Idx];
  ::close(W.Fd);
  W.Fd = -1;
  int St = 0;
  std::string Reason = "solver worker died";
  // The fd is closed, so the child (if merely wedged rather than dead)
  // got EOF; give waitpid one blocking chance after a SIGKILL nudge.
  ::kill(W.Pid, SIGKILL);
  if (::waitpid(W.Pid, &St, 0) == W.Pid)
    Reason = "solver worker " + describeWait(St);
  W.Pid = -1;
  if (W.Busy) {
    W.Busy = false;
    failAttempt(std::move(W.Current), Reason, Out);
    W.Current = Job();
  }
  // Keep the pool at strength unless we are shutting down or the
  // fork-bomb backstop tripped.
  if (!ShutDown && Counters.Respawns < Opts.MaxRespawns) {
    std::string Err;
    if (spawnWorker(&Err))
      ++Counters.Respawns;
  }
}

void SolverPool::dispatchReady() {
  for (size_t I = 0; I != Workers.size() && !Pending.empty(); ++I) {
    Worker &W = Workers[I];
    if (W.Fd < 0 || W.Busy)
      continue;
    // Find the first pending job whose backoff has elapsed.
    size_t Pick = Pending.size();
    for (size_t J = 0; J != Pending.size(); ++J) {
      if (Pending[J].ReadyAt.isNever() || Pending[J].ReadyAt.expired()) {
        Pick = J;
        break;
      }
    }
    if (Pick == Pending.size())
      return; // everything queued is still backing off.
    Job J = std::move(Pending[Pick]);
    Pending.erase(Pending.begin() + static_cast<long>(Pick));

    SolveJobMsg Msg;
    Msg.JobId = J.JobId;
    Msg.Key = J.Key;
    // Fold the JobId in so a RE-SUBMISSION of a previously exhausted or
    // quarantined key redraws its fault fate: without it, a key whose
    // (seed, key, 0..2) draws all land on "kill" can never solve, no
    // matter how often clients retry. JobIds are assigned in submit
    // order, so a chaos campaign still replays exactly from its seed.
    Msg.FaultKey = attemptFaultKey(J.Key ^ (J.JobId * 0x9e3779b97f4a7c15ULL),
                                   J.Attempt);
    Msg.SmtTimeoutMs = Opts.SmtTimeoutMs;
    Msg.CertTimeoutMs = Opts.CertTimeoutMs;
    Msg.Program = J.Program;
    encodeSolveJob(Msg, W.Writer.payload());
    if (!W.Writer.send(W.Fd, dist::MsgType::SolveJob)) {
      // Send failed: the worker is gone. Requeue the job unscathed (the
      // death path will also run when pump notices the fd) and mark the
      // worker down right here so we do not loop on it.
      Pending.push_front(std::move(J));
      std::vector<SolveOutcome> Ignore;
      handleWorkerDown(I, &Ignore);
      continue;
    }
    W.Busy = true;
    W.Current = std::move(J);
    W.JobDeadline = Deadline::after(Opts.JobDeadlineSec);
  }
}

void SolverPool::pump(std::vector<SolveOutcome> *Out) {
  if (!Started || ShutDown)
    return;

  for (size_t I = 0; I != Workers.size(); ++I) {
    Worker &W = Workers[I];
    if (W.Fd < 0)
      continue;

    // Deadline-blown hang: SIGKILL; the read below then sees EOF.
    if (W.Busy && W.JobDeadline.expired()) {
      ++Counters.DeadlineKills;
      ::kill(W.Pid, SIGKILL);
    }

    // Drain whatever the worker sent; nonblocking, so an idle worker
    // costs one EAGAIN.
    bool Down = false;
    for (;;) {
      dist::RecvStatus S = W.Reader.fill(W.Fd);
      if (S == dist::RecvStatus::NeedMore)
        break;
      if (S != dist::RecvStatus::Ok) {
        Down = true;
        break;
      }
    }
    for (;;) {
      dist::Frame F;
      dist::RecvStatus S = W.Reader.next(&F);
      if (S == dist::RecvStatus::NeedMore)
        break;
      if (S != dist::RecvStatus::Ok) {
        Down = true; // corrupt framing: the worker cannot be trusted.
        break;
      }
      if (F.Type != dist::MsgType::SolveDone)
        continue;
      SolveDoneMsg Done;
      if (!decodeSolveDone(F.Payload, &Done)) {
        Down = true;
        break;
      }
      // A reply for a stale job (e.g. after a deadline kill raced the
      // answer) is dropped; the retry already owns the job id.
      if (!W.Busy || Done.JobId != W.Current.JobId)
        continue;
      ++Counters.Completed;
      BreakerCount.erase(Done.Key); // infrastructure healthy for this key.
      SolveOutcome O;
      O.JobId = Done.JobId;
      O.Key = Done.Key;
      O.Done = std::move(Done);
      O.Outcome = SolveOutcome::Kind::Done;
      Out->push_back(std::move(O));
      W.Busy = false;
      W.Current = Job();
    }
    if (Down)
      handleWorkerDown(I, Out);
  }

  dispatchReady();
}

void SolverPool::shutdown(double GraceSec) {
  if (!Started || ShutDown)
    return;
  ShutDown = true;
  for (Worker &W : Workers) {
    if (W.Fd < 0)
      continue;
    W.Writer.payload();
    W.Writer.send(W.Fd, dist::MsgType::Shutdown);
  }
  Deadline Grace = Deadline::after(GraceSec);
  for (Worker &W : Workers) {
    if (W.Pid <= 0)
      continue;
    for (;;) {
      int St = 0;
      pid_t R = ::waitpid(W.Pid, &St, WNOHANG);
      if (R == W.Pid || (R < 0 && errno == ECHILD))
        break;
      if (Grace.expired()) {
        ::kill(W.Pid, SIGKILL);
        ::waitpid(W.Pid, &St, 0);
        break;
      }
      ::usleep(2000);
    }
    if (W.Fd >= 0)
      ::close(W.Fd);
    W.Fd = -1;
    W.Pid = -1;
    W.Busy = false;
  }
  Pending.clear();
}

} // namespace serve
} // namespace grassp
