//===- mapreduce/Dfs.cpp ---------------------------------------------------=//

#include "mapreduce/Dfs.h"

#include <cassert>

namespace grassp {
namespace mapreduce {

void MiniDfs::put(const std::string &Name, std::vector<int64_t> Data) {
  Files[Name] = std::move(Data);
}

size_t MiniDfs::size(const std::string &Name) const {
  auto It = Files.find(Name);
  return It == Files.end() ? 0 : It->second.size();
}

std::vector<Shard> MiniDfs::shards(const std::string &Name,
                                   unsigned NumShards) const {
  auto It = Files.find(Name);
  assert(It != Files.end() && "unknown file");
  const std::vector<int64_t> &Data = It->second;
  assert(Data.size() >= NumShards && "file smaller than shard count");

  std::vector<Shard> Out;
  std::vector<runtime::SegmentView> Views =
      runtime::partition(Data, NumShards);
  for (unsigned I = 0; I != NumShards; ++I) {
    size_t FirstElem = Views[I].Data - Data.data();
    unsigned HomeNode =
        static_cast<unsigned>((FirstElem / BlockElems) % NumNodes);
    Out.push_back({Views[I], HomeNode});
  }
  return Out;
}

} // namespace mapreduce
} // namespace grassp
