//===- mapreduce/Dfs.h - In-memory sharded distributed file system -------===//
//
// A miniature stand-in for HDFS (see DESIGN.md, substitutions): files are
// integer streams stored in fixed-size blocks; a map task consumes one
// shard (a contiguous run of blocks). Block placement is round-robin
// across nodes, which the cluster simulator uses for locality accounting.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_MAPREDUCE_DFS_H
#define GRASSP_MAPREDUCE_DFS_H

#include "runtime/Workload.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace grassp {
namespace mapreduce {

/// One shard of a file: a contiguous element range plus the node that
/// stores its first block (preferred locality).
struct Shard {
  runtime::SegmentView View;
  unsigned HomeNode = 0;
};

/// The mini DFS.
class MiniDfs {
public:
  explicit MiniDfs(unsigned NumNodes, size_t BlockElems = 1 << 16)
      : NumNodes(NumNodes), BlockElems(BlockElems) {}

  /// Stores \p Data under \p Name (replaces any existing file).
  void put(const std::string &Name, std::vector<int64_t> Data);

  /// Total elements in \p Name; 0 if absent.
  size_t size(const std::string &Name) const;

  /// Splits \p Name into \p NumShards contiguous shards with round-robin
  /// block placement.
  std::vector<Shard> shards(const std::string &Name,
                            unsigned NumShards) const;

  unsigned numNodes() const { return NumNodes; }

private:
  unsigned NumNodes;
  size_t BlockElems;
  std::map<std::string, std::vector<int64_t>> Files;
};

} // namespace mapreduce
} // namespace grassp

#endif // GRASSP_MAPREDUCE_DFS_H
