//===- mapreduce/Cluster.cpp -----------------------------------------------=//

#include "mapreduce/Cluster.h"

#include "support/Timing.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace grassp {
namespace mapreduce {

namespace {

/// Descending-duration task order (LPT).
std::vector<size_t> lptOrder(const std::vector<double> &TaskSec) {
  std::vector<size_t> Order(TaskSec.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return TaskSec[A] > TaskSec[B];
  });
  return Order;
}

/// Least-loaded node among the alive ones; Skip (if < Nodes) is
/// excluded so a backup never lands on its primary's node.
unsigned leastLoadedAlive(const std::vector<double> &Load,
                          const std::vector<bool> &Alive, unsigned Skip) {
  unsigned Best = ~0u;
  for (unsigned N = 0; N != Load.size(); ++N) {
    if (!Alive[N] || N == Skip)
      continue;
    if (Best == ~0u || Load[N] < Load[Best])
      Best = N;
  }
  return Best;
}

} // namespace

double scheduleTasks(const std::vector<double> &TaskSec,
                     const std::vector<unsigned> &Home,
                     const ClusterConfig &Cfg) {
  std::vector<double> Load(Cfg.Nodes, 0.0);
  for (size_t I : lptOrder(TaskSec)) {
    unsigned HomeNode = Home[I];
    unsigned BestNode = 0;
    for (unsigned S = 1; S != Cfg.Nodes; ++S)
      if (Load[S] < Load[BestNode])
        BestNode = S;

    double HomeCost = Load[HomeNode] + TaskSec[I] + Cfg.TaskDispatchSec;
    double AwayCost = Load[BestNode] +
                      TaskSec[I] * Cfg.RemoteReadPenalty +
                      Cfg.TaskDispatchSec;
    if (HomeCost <= AwayCost)
      Load[HomeNode] = HomeCost;
    else
      Load[BestNode] = AwayCost;
  }
  if (Load.empty())
    return 0.0;
  return *std::max_element(Load.begin(), Load.end());
}

double scheduleTasksDegraded(const std::vector<double> &TaskSec,
                             const std::vector<double> &ExtraSec,
                             const std::vector<unsigned> &Home,
                             const std::vector<bool> &Alive,
                             const ClusterConfig &Cfg,
                             ScheduleStats *Stats) {
  assert(Alive.size() == Cfg.Nodes && Home.size() == TaskSec.size());
  unsigned AliveCount = 0;
  for (bool A : Alive)
    AliveCount += A ? 1 : 0;
  if (AliveCount == 0 && !TaskSec.empty())
    throw std::runtime_error(
        "cluster: no surviving nodes; the job cannot make progress");

  std::vector<double> Load(Cfg.Nodes, 0.0);
  ScheduleStats Local;

  auto extra = [&](size_t I) {
    return I < ExtraSec.size() ? ExtraSec[I] : 0.0;
  };

  // Pass 1: tasks whose home node survived — the healthy LPT policy of
  // scheduleTasks restricted to alive nodes, plus straggler handling.
  for (size_t I : lptOrder(TaskSec)) {
    if (!Alive[Home[I]])
      continue;
    unsigned HomeNode = Home[I];
    unsigned BestNode = leastLoadedAlive(Load, Alive, /*Skip=*/~0u);
    double Effective = TaskSec[I] + extra(I);

    double HomeCost = Load[HomeNode] + Effective + Cfg.TaskDispatchSec;
    double AwayCost = Load[BestNode] +
                      Effective * Cfg.RemoteReadPenalty +
                      Cfg.TaskDispatchSec;
    unsigned Node = HomeCost <= AwayCost ? HomeNode : BestNode;
    double RunCost = Node == HomeNode ? Effective
                                      : Effective * Cfg.RemoteReadPenalty;

    // Hadoop-style speculation: a straggler's backup copy launches on
    // another surviving node once the task has overrun; the earlier
    // finisher wins and the loser is killed. The backup reads remotely
    // and re-runs the task at its normal (un-stalled) duration.
    if (Cfg.SpeculativeExecution && extra(I) > 0 && AliveCount >= 2) {
      unsigned BackupNode = leastLoadedAlive(Load, Alive, Node);
      if (BackupNode != ~0u) {
        ++Local.SpeculativeTasks;
        double Detect = Cfg.SpeculativeSlowFactor * TaskSec[I];
        double BackupDur =
            TaskSec[I] * Cfg.RemoteReadPenalty + Cfg.TaskDispatchSec;
        double BackupFinish =
            std::max(Load[Node] + Detect, Load[BackupNode]) + BackupDur;
        double PrimaryFinish = Load[Node] + RunCost + Cfg.TaskDispatchSec;
        if (BackupFinish < PrimaryFinish) {
          // Backup wins: the primary node is released at detection; the
          // backup node carries the re-execution.
          Load[Node] += Detect + Cfg.TaskDispatchSec;
          Load[BackupNode] = BackupFinish;
          continue;
        }
        // Primary wins: the losing backup still occupied its node.
        Load[BackupNode] += BackupDur;
      }
    }
    Load[Node] += RunCost + Cfg.TaskDispatchSec;
  }

  // Pass 2: tasks lost with their home node. They are noticed after the
  // heartbeat timeout and re-executed on survivors; the shard's replica
  // is remote by construction.
  for (size_t I : lptOrder(TaskSec)) {
    if (Alive[Home[I]])
      continue;
    ++Local.FailedTasks;
    unsigned Node = leastLoadedAlive(Load, Alive, /*Skip=*/~0u);
    double Start = std::max(Load[Node], Cfg.NodeFailureDetectSec);
    Load[Node] = Start + TaskSec[I] * Cfg.RemoteReadPenalty +
                 Cfg.TaskDispatchSec;
  }

  if (Stats)
    *Stats = Local;
  if (Load.empty())
    return 0.0;
  return *std::max_element(Load.begin(), Load.end());
}

JobReport runJob(const lang::SerialProgram &Prog,
                 const synth::ParallelPlan &Plan, const MiniDfs &Dfs,
                 const std::string &File, const ClusterConfig &Cfg) {
  JobReport Report;

  // One map task per DFS shard; two waves per node is a typical Hadoop
  // sizing, so shards = nodes * slots.
  unsigned NumShards = Cfg.Nodes * Cfg.MapSlotsPerNode;
  std::vector<Shard> Shards = Dfs.shards(File, NumShards);
  Report.NumShards = NumShards;

  // The failure model: which nodes are dead, which tasks straggle. Map
  // outputs stay exact either way — a re-executed task recomputes the
  // same pure function of its shard; only the time accounting degrades.
  std::vector<bool> Alive(Cfg.Nodes, true);
  if (Cfg.Faults) {
    for (unsigned N = 0; N != Cfg.Nodes; ++N)
      if (Cfg.Faults->shouldFailKeyed(FaultSiteClusterNode, N)) {
        Alive[N] = false;
        ++Report.FailedNodes;
      }
    if (Report.FailedNodes == Cfg.Nodes)
      throw std::runtime_error(
          "cluster: every node failed; the job cannot make progress");
  }

  runtime::CompiledPlan Compiled(Prog, Plan);

  // Execute every map task for real, timing each.
  std::vector<runtime::WorkerOutput> Outputs;
  std::vector<double> TaskSec;
  std::vector<double> ExtraSec;
  std::vector<unsigned> Home;
  std::vector<runtime::SegmentView> Views;
  Outputs.reserve(NumShards);
  for (const Shard &S : Shards) {
    Stopwatch T;
    Outputs.push_back(Compiled.runWorker(S.View));
    double Sec = T.seconds() * Cfg.ComputeScale;
    TaskSec.push_back(Sec);
    ExtraSec.push_back(
        Cfg.Faults ? Cfg.Faults->delayFor(FaultSiteClusterStraggler,
                                          TaskSec.size() - 1)
                   : 0.0);
    Home.push_back(S.HomeNode);
    Views.push_back(S.View);
    Report.MeasuredComputeSec += Sec;
  }

  Stopwatch MergeT;
  Report.Output = Compiled.merge(Outputs, Views);
  double MergeSec = MergeT.seconds() * Cfg.ComputeScale;

  // Modeled N-node job: startup + scheduled map makespan + reduce. A
  // faulted run reports RecoverySec = degraded minus healthy makespan.
  double MapMakespan;
  if (Cfg.Faults) {
    ScheduleStats Stats;
    MapMakespan =
        scheduleTasksDegraded(TaskSec, ExtraSec, Home, Alive, Cfg, &Stats);
    Report.FailedTasks = Stats.FailedTasks;
    Report.SpeculativeTasks = Stats.SpeculativeTasks;
    Report.RecoverySec =
        std::max(0.0, MapMakespan - scheduleTasks(TaskSec, Home, Cfg));
  } else {
    MapMakespan = scheduleTasks(TaskSec, Home, Cfg);
  }
  Report.ParallelJobSec = Cfg.JobStartupSec + MapMakespan +
                          Cfg.ReduceBaseSec +
                          Cfg.ReducePerShardSec * NumShards + MergeSec;

  // Modeled one-node serial job: startup + all compute sequentially.
  double SerialCompute = 0;
  for (double T : TaskSec)
    SerialCompute += T;
  Report.SerialJobSec = Cfg.JobStartupSec + SerialCompute + MergeSec;

  Report.Speedup = Report.SerialJobSec / Report.ParallelJobSec;
  return Report;
}

} // namespace mapreduce
} // namespace grassp
