//===- mapreduce/Cluster.cpp -----------------------------------------------=//

#include "mapreduce/Cluster.h"

#include "support/Timing.h"

#include <algorithm>
#include <cassert>

namespace grassp {
namespace mapreduce {

double scheduleTasks(const std::vector<double> &TaskSec,
                     const std::vector<unsigned> &Home,
                     const ClusterConfig &Cfg) {
  std::vector<double> Load(Cfg.Nodes, 0.0);
  // Longest tasks first.
  std::vector<size_t> Order(TaskSec.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return TaskSec[A] > TaskSec[B];
  });

  for (size_t I : Order) {
    unsigned HomeNode = Home[I];
    unsigned BestNode = 0;
    for (unsigned S = 1; S != Cfg.Nodes; ++S)
      if (Load[S] < Load[BestNode])
        BestNode = S;

    double HomeCost = Load[HomeNode] + TaskSec[I] + Cfg.TaskDispatchSec;
    double AwayCost = Load[BestNode] +
                      TaskSec[I] * Cfg.RemoteReadPenalty +
                      Cfg.TaskDispatchSec;
    if (HomeCost <= AwayCost)
      Load[HomeNode] = HomeCost;
    else
      Load[BestNode] = AwayCost;
  }
  if (Load.empty())
    return 0.0;
  return *std::max_element(Load.begin(), Load.end());
}

JobReport runJob(const lang::SerialProgram &Prog,
                 const synth::ParallelPlan &Plan, const MiniDfs &Dfs,
                 const std::string &File, const ClusterConfig &Cfg) {
  JobReport Report;

  // One map task per DFS shard; two waves per node is a typical Hadoop
  // sizing, so shards = nodes * slots.
  unsigned NumShards = Cfg.Nodes * Cfg.MapSlotsPerNode;
  std::vector<Shard> Shards = Dfs.shards(File, NumShards);
  Report.NumShards = NumShards;

  runtime::CompiledPlan Compiled(Prog, Plan);

  // Execute every map task for real, timing each.
  std::vector<runtime::WorkerOutput> Outputs;
  std::vector<double> TaskSec;
  std::vector<unsigned> Home;
  std::vector<runtime::SegmentView> Views;
  Outputs.reserve(NumShards);
  for (const Shard &S : Shards) {
    Stopwatch T;
    Outputs.push_back(Compiled.runWorker(S.View));
    double Sec = T.seconds() * Cfg.ComputeScale;
    TaskSec.push_back(Sec);
    Home.push_back(S.HomeNode);
    Views.push_back(S.View);
    Report.MeasuredComputeSec += Sec;
  }

  Stopwatch MergeT;
  Report.Output = Compiled.merge(Outputs, Views);
  double MergeSec = MergeT.seconds() * Cfg.ComputeScale;

  // Modeled N-node job: startup + scheduled map makespan + reduce.
  double MapMakespan = scheduleTasks(TaskSec, Home, Cfg);
  Report.ParallelJobSec = Cfg.JobStartupSec + MapMakespan +
                          Cfg.ReduceBaseSec +
                          Cfg.ReducePerShardSec * NumShards + MergeSec;

  // Modeled one-node serial job: startup + all compute sequentially.
  double SerialCompute = 0;
  for (double T : TaskSec)
    SerialCompute += T;
  Report.SerialJobSec = Cfg.JobStartupSec + SerialCompute + MergeSec;

  Report.Speedup = Report.SerialJobSec / Report.ParallelJobSec;
  return Report;
}

} // namespace mapreduce
} // namespace grassp
