//===- mapreduce/Cluster.h - MapReduce jobs on a simulated cluster -------===//
//
// Reproduces the paper's Table-2 experiment (10-node Amazon EMR) on a
// single host: map tasks execute the *real* compiled worker kernels and
// are timed; the cluster simulator then schedules those measured task
// times onto N model nodes (locality-aware LPT), adding Hadoop-style job
// startup, per-task dispatch, and reduce costs. The serial baseline is
// the same job on one node. Outputs are exact (the kernels really run);
// only the time accounting is modeled — see DESIGN.md.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_MAPREDUCE_CLUSTER_H
#define GRASSP_MAPREDUCE_CLUSTER_H

#include "mapreduce/Dfs.h"
#include "runtime/Kernels.h"
#include "support/FaultInject.h"

#include <string>
#include <vector>

namespace grassp {
namespace mapreduce {

/// Fault sites the cluster simulator consults (ClusterConfig::Faults).
/// cluster.node is keyed by the node id: a firing node is dead for the
/// whole job, its map tasks are lost and re-executed on survivors.
/// cluster.straggler is keyed by the map-task index: a firing task runs
/// DelaySeconds of *modeled* seconds slow (nothing really sleeps), which
/// Hadoop-style speculative execution may hide with a backup copy.
inline constexpr const char *FaultSiteClusterNode = "cluster.node";
inline constexpr const char *FaultSiteClusterStraggler = "cluster.straggler";

/// Cost model of the cluster; defaults loosely follow a small EMR
/// deployment (job startup dominated by YARN container spin-up).
struct ClusterConfig {
  unsigned Nodes = 10;
  unsigned MapSlotsPerNode = 2;       // m3.xlarge-ish
  double JobStartupSec = 12.0;        // AM + container launch
  double TaskDispatchSec = 1.5;       // per map task
  double RemoteReadPenalty = 1.15;    // non-local shard read factor
  double ReduceBaseSec = 4.0;         // reducer spin-up + commit
  double ReducePerShardSec = 0.05;    // shuffle+merge per map output
  /// Multiplier applied to measured compute time to model the target
  /// node's speed relative to this host (1.0 = same speed).
  double ComputeScale = 1.0;

  // Failure model (consulted only when Faults is set).
  FaultInjector *Faults = nullptr;
  /// Heartbeat timeout before a dead node's tasks are re-executed.
  double NodeFailureDetectSec = 10.0;
  /// Hadoop-style speculative execution for straggling map tasks.
  bool SpeculativeExecution = true;
  /// A straggler's backup launches after the task has run for this
  /// multiple of its normal duration.
  double SpeculativeSlowFactor = 1.5;
};

struct JobReport {
  int64_t Output = 0;
  unsigned NumShards = 0;
  double SerialJobSec = 0;   // modeled one-node serial job.
  double ParallelJobSec = 0; // modeled N-node MapReduce job.
  double Speedup = 0;
  double MeasuredComputeSec = 0; // actual host compute across all tasks.
  // Degraded-cluster accounting (all zero on a healthy run).
  unsigned FailedNodes = 0;
  unsigned FailedTasks = 0;      // map tasks lost to dead nodes, re-run.
  unsigned SpeculativeTasks = 0; // backup copies launched for stragglers.
  double RecoverySec = 0;        // degraded minus healthy map makespan.
};

/// Locality-aware LPT at node granularity. Map tasks are scan-dominated,
/// so a node's shard reads serialize on its storage bandwidth: each node
/// is one bin regardless of map slots. Tasks prefer their home node; a
/// task migrates when another node is less loaded, paying the
/// remote-read penalty. Returns the map-phase makespan in seconds (0 for
/// an empty task list). Requires Cfg.Nodes >= 1 and every Home entry
/// < Cfg.Nodes.
double scheduleTasks(const std::vector<double> &TaskSec,
                     const std::vector<unsigned> &Home,
                     const ClusterConfig &Cfg);

struct ScheduleStats {
  unsigned FailedTasks = 0;
  unsigned SpeculativeTasks = 0;
};

/// Degraded-cluster variant of scheduleTasks. Nodes with Alive[n] ==
/// false are dead for the whole job: their tasks are lost, detected
/// after Cfg.NodeFailureDetectSec, and re-executed on surviving nodes
/// with the remote-read penalty (Hadoop's map re-execution). Straggling
/// tasks (ExtraSec[i] > 0 modeled extra seconds; pass {} for none) may
/// get a speculative backup on another surviving node; the earlier
/// completion wins. Throws std::runtime_error when no node survives —
/// a degraded cluster degrades explicitly, it never hangs or silently
/// drops tasks. Requires every Home entry < Cfg.Nodes and Alive.size()
/// == Cfg.Nodes.
double scheduleTasksDegraded(const std::vector<double> &TaskSec,
                             const std::vector<double> &ExtraSec,
                             const std::vector<unsigned> &Home,
                             const std::vector<bool> &Alive,
                             const ClusterConfig &Cfg,
                             ScheduleStats *Stats = nullptr);

/// Runs plan \p Plan as a MapReduce job over DFS file \p File.
JobReport runJob(const lang::SerialProgram &Prog,
                 const synth::ParallelPlan &Plan, const MiniDfs &Dfs,
                 const std::string &File, const ClusterConfig &Cfg);

} // namespace mapreduce
} // namespace grassp

#endif // GRASSP_MAPREDUCE_CLUSTER_H
