//===- mapreduce/Cluster.h - MapReduce jobs on a simulated cluster -------===//
//
// Reproduces the paper's Table-2 experiment (10-node Amazon EMR) on a
// single host: map tasks execute the *real* compiled worker kernels and
// are timed; the cluster simulator then schedules those measured task
// times onto N model nodes (locality-aware LPT), adding Hadoop-style job
// startup, per-task dispatch, and reduce costs. The serial baseline is
// the same job on one node. Outputs are exact (the kernels really run);
// only the time accounting is modeled — see DESIGN.md.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_MAPREDUCE_CLUSTER_H
#define GRASSP_MAPREDUCE_CLUSTER_H

#include "mapreduce/Dfs.h"
#include "runtime/Kernels.h"

#include <string>
#include <vector>

namespace grassp {
namespace mapreduce {

/// Cost model of the cluster; defaults loosely follow a small EMR
/// deployment (job startup dominated by YARN container spin-up).
struct ClusterConfig {
  unsigned Nodes = 10;
  unsigned MapSlotsPerNode = 2;       // m3.xlarge-ish
  double JobStartupSec = 12.0;        // AM + container launch
  double TaskDispatchSec = 1.5;       // per map task
  double RemoteReadPenalty = 1.15;    // non-local shard read factor
  double ReduceBaseSec = 4.0;         // reducer spin-up + commit
  double ReducePerShardSec = 0.05;    // shuffle+merge per map output
  /// Multiplier applied to measured compute time to model the target
  /// node's speed relative to this host (1.0 = same speed).
  double ComputeScale = 1.0;
};

struct JobReport {
  int64_t Output = 0;
  unsigned NumShards = 0;
  double SerialJobSec = 0;   // modeled one-node serial job.
  double ParallelJobSec = 0; // modeled N-node MapReduce job.
  double Speedup = 0;
  double MeasuredComputeSec = 0; // actual host compute across all tasks.
};

/// Locality-aware LPT at node granularity. Map tasks are scan-dominated,
/// so a node's shard reads serialize on its storage bandwidth: each node
/// is one bin regardless of map slots. Tasks prefer their home node; a
/// task migrates when another node is less loaded, paying the
/// remote-read penalty. Returns the map-phase makespan in seconds (0 for
/// an empty task list). Requires Cfg.Nodes >= 1 and every Home entry
/// < Cfg.Nodes.
double scheduleTasks(const std::vector<double> &TaskSec,
                     const std::vector<unsigned> &Home,
                     const ClusterConfig &Cfg);

/// Runs plan \p Plan as a MapReduce job over DFS file \p File.
JobReport runJob(const lang::SerialProgram &Prog,
                 const synth::ParallelPlan &Plan, const MiniDfs &Dfs,
                 const std::string &File, const ClusterConfig &Cfg);

} // namespace mapreduce
} // namespace grassp

#endif // GRASSP_MAPREDUCE_CLUSTER_H
