//===- smt/Solver.cpp ------------------------------------------------------=//

#include "smt/Solver.h"

#include <cassert>
#include <optional>
#include <unordered_map>

#include <z3++.h>

namespace grassp {
namespace smt {

struct SmtSolver::Impl {
  z3::context Ctx;
  z3::solver Solver;
  std::optional<z3::model> Model;
  std::unordered_map<const ir::Expr *, z3::expr> Cache;
  /// Keeps every asserted root (and thus its whole DAG) alive for the
  /// solver's lifetime: the cache keys are raw node addresses, so a
  /// freed-and-reallocated node must never alias a cached one.
  std::vector<ir::ExprRef> Retained;

  Impl() : Solver(Ctx) {}

  z3::expr lower(const ir::ExprRef &E) {
    auto It = Cache.find(E.get());
    if (It != Cache.end())
      return It->second;
    z3::expr Z = lowerUncached(E);
    Cache.emplace(E.get(), Z);
    return Z;
  }

  z3::expr lowerUncached(const ir::ExprRef &E) {
    using ir::Op;
    switch (E->getOp()) {
    case Op::ConstInt:
      return Ctx.int_val(static_cast<int64_t>(E->intValue()));
    case Op::ConstBool:
      return Ctx.bool_val(E->boolValue());
    case Op::Var:
      if (E->getType() == ir::TypeKind::Bool)
        return Ctx.bool_const(E->varName().c_str());
      assert(E->getType() == ir::TypeKind::Int && "bag var reached solver");
      return Ctx.int_const(E->varName().c_str());
    case Op::Neg:
      return -lower(E->operand(0));
    case Op::Not:
      return !lower(E->operand(0));
    case Op::Ite:
      return z3::ite(lower(E->operand(0)), lower(E->operand(1)),
                     lower(E->operand(2)));
    default:
      break;
    }
    z3::expr A = lower(E->operand(0));
    z3::expr B = lower(E->operand(1));
    switch (E->getOp()) {
    case Op::Add:
      return A + B;
    case Op::Sub:
      return A - B;
    case Op::Mul:
      return A * B;
    case Op::Div:
      return A / B; // SMT-LIB integer div.
    case Op::Mod:
      return z3::mod(A, B);
    case Op::Min:
      return z3::ite(A <= B, A, B);
    case Op::Max:
      return z3::ite(A >= B, A, B);
    case Op::Eq:
      return A == B;
    case Op::Ne:
      return A != B;
    case Op::Lt:
      return A < B;
    case Op::Le:
      return A <= B;
    case Op::Gt:
      return A > B;
    case Op::Ge:
      return A >= B;
    case Op::And:
      return A && B;
    case Op::Or:
      return A || B;
    default:
      assert(false && "unhandled opcode in SMT lowering");
      return Ctx.bool_val(false);
    }
  }
};

SmtSolver::SmtSolver() : I(std::make_unique<Impl>()) {}
SmtSolver::~SmtSolver() = default;

void SmtSolver::add(const ir::ExprRef &E) {
  assert(E->getType() == ir::TypeKind::Bool && "assertions must be Bool");
  I->Retained.push_back(E);
  I->Solver.add(I->lower(E));
}

void SmtSolver::push() { I->Solver.push(); }
void SmtSolver::pop() { I->Solver.pop(); }

SatResult SmtSolver::check(unsigned TimeoutMs) {
  ++Checks;
  if (TimeoutMs != 0) {
    z3::params P(I->Ctx);
    P.set("timeout", TimeoutMs);
    I->Solver.set(P);
  }
  I->Model.reset();
  switch (I->Solver.check()) {
  case z3::sat:
    I->Model = I->Solver.get_model();
    return SatResult::Sat;
  case z3::unsat:
    return SatResult::Unsat;
  case z3::unknown:
    return SatResult::Unknown;
  }
  return SatResult::Unknown;
}

int64_t SmtSolver::modelInt(const std::string &Name) const {
  assert(I->Model && "no model available");
  z3::expr V = I->Model->eval(I->Ctx.int_const(Name.c_str()),
                              /*model_completion=*/true);
  int64_t Out = 0;
  if (!V.is_numeral_i64(Out))
    return 0;
  return Out;
}

bool SmtSolver::modelBool(const std::string &Name) const {
  assert(I->Model && "no model available");
  z3::expr V = I->Model->eval(I->Ctx.bool_const(Name.c_str()),
                              /*model_completion=*/true);
  return V.is_true();
}

} // namespace smt
} // namespace grassp
