//===- smt/Solver.cpp ------------------------------------------------------=//

#include "smt/Solver.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <optional>
#include <thread>
#include <unordered_map>

#include <z3++.h>

namespace grassp {
namespace smt {

struct SmtSolver::Impl {
  z3::context Ctx;
  z3::solver Solver;
  std::optional<z3::model> Model;
  std::unordered_map<const ir::Expr *, z3::expr> Cache;
  /// Keeps every asserted root (and thus its whole DAG) alive for the
  /// solver's lifetime: the cache keys are raw node addresses, so a
  /// freed-and-reallocated node must never alias a cached one.
  std::vector<ir::ExprRef> Retained;

  Impl() : Solver(Ctx) {
    // Z3 installs its own SIGINT handler around every check by default,
    // which would swallow Ctrl-C mid-solve (interrupting just that one
    // query and resuming the run). Signal policy belongs to
    // installSignalSource(); cancellation reaches in-flight checks via
    // the interrupt watcher instead.
    z3::params P(Ctx);
    P.set("ctrl_c", false);
    Solver.set(P);
  }

  z3::expr lower(const ir::ExprRef &E) {
    auto It = Cache.find(E.get());
    if (It != Cache.end())
      return It->second;
    z3::expr Z = lowerUncached(E);
    Cache.emplace(E.get(), Z);
    return Z;
  }

  z3::expr lowerUncached(const ir::ExprRef &E) {
    using ir::Op;
    switch (E->getOp()) {
    case Op::ConstInt:
      return Ctx.int_val(static_cast<int64_t>(E->intValue()));
    case Op::ConstBool:
      return Ctx.bool_val(E->boolValue());
    case Op::Var:
      if (E->getType() == ir::TypeKind::Bool)
        return Ctx.bool_const(E->varName().c_str());
      assert(E->getType() == ir::TypeKind::Int && "bag var reached solver");
      return Ctx.int_const(E->varName().c_str());
    case Op::Neg:
      return -lower(E->operand(0));
    case Op::Not:
      return !lower(E->operand(0));
    case Op::Ite:
      return z3::ite(lower(E->operand(0)), lower(E->operand(1)),
                     lower(E->operand(2)));
    default:
      break;
    }
    z3::expr A = lower(E->operand(0));
    z3::expr B = lower(E->operand(1));
    switch (E->getOp()) {
    case Op::Add:
      return A + B;
    case Op::Sub:
      return A - B;
    case Op::Mul:
      return A * B;
    case Op::Div:
      return A / B; // SMT-LIB integer div.
    case Op::Mod:
      return z3::mod(A, B);
    case Op::Min:
      return z3::ite(A <= B, A, B);
    case Op::Max:
      return z3::ite(A >= B, A, B);
    case Op::Eq:
      return A == B;
    case Op::Ne:
      return A != B;
    case Op::Lt:
      return A < B;
    case Op::Le:
      return A <= B;
    case Op::Gt:
      return A > B;
    case Op::Ge:
      return A >= B;
    case Op::And:
      return A && B;
    case Op::Or:
      return A || B;
    default:
      assert(false && "unhandled opcode in SMT lowering");
      return Ctx.bool_val(false);
    }
  }
};

SmtSolver::SmtSolver() : I(std::make_unique<Impl>()) {}
SmtSolver::~SmtSolver() = default;

void SmtSolver::add(const ir::ExprRef &E) {
  assert(E->getType() == ir::TypeKind::Bool && "assertions must be Bool");
  I->Retained.push_back(E);
  I->Solver.add(I->lower(E));
}

void SmtSolver::push() { I->Solver.push(); }
void SmtSolver::pop() { I->Solver.pop(); }

namespace {

/// Maps a CancelToken firing — and, when armed with a budget, the SMT
/// timeout — onto Z3's interrupt while one check() is in flight. A
/// dedicated watcher thread (joined in the destructor, never detached)
/// sleeps on the token and calls z3::context::interrupt() the moment it
/// fires or the budget runs out; it then keeps re-issuing the interrupt
/// every few milliseconds until the check returns, closing the race
/// where an interrupt lands in the gap before Z3 actually starts
/// solving (Z3 consumes — and can lose — interrupts delivered between
/// checks).
///
/// The watcher owns the budget deliberately: Z3's own `timeout` param
/// arms a scoped_timer whose teardown can deadlock the check when a
/// concurrent Z3_interrupt lands at the wrong moment (observed as a
/// futex-parked check that no further interrupt wakes, with the timer
/// pool threads parked beside it). So whenever a watcher runs, the Z3
/// timer must not — one clock, no rendezvous to race.
///
/// Interrupting is safe mid-CEGIS: the check returns unknown with
/// reason "interrupted", the context and all asserted formulas stay
/// valid, and the caller discards the verdict as Cancelled (token
/// fired) or Unknown (budget expired).
class ScopedInterruptWatcher {
public:
  ScopedInterruptWatcher(z3::context &Ctx, const CancelToken &Token,
                         unsigned BudgetMs)
      : Ctx(Ctx), Token(Token) {
    if (BudgetMs != 0)
      BudgetEnd = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(BudgetMs);
    if (Token.valid())
      Watcher = std::thread([this] { run(); });
  }

  ~ScopedInterruptWatcher() {
    Done.store(true, std::memory_order_release);
    if (Watcher.joinable())
      Watcher.join();
  }

private:
  bool budgetExpired() const {
    return BudgetEnd && std::chrono::steady_clock::now() >= *BudgetEnd;
  }

  void run() {
    while (!Done.load(std::memory_order_acquire)) {
      if (Token.cancelled() || budgetExpired()) {
        Ctx.interrupt();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      } else {
        // Wakes early when the token fires; the 50ms cap bounds how
        // long a deadline/budget expiry (which fires no callbacks) or
        // the done flag goes unnoticed.
        Token.waitCancelledFor(0.05);
      }
    }
  }

  z3::context &Ctx;
  CancelToken Token;
  std::optional<std::chrono::steady_clock::time_point> BudgetEnd;
  std::thread Watcher;
  std::atomic<bool> Done{false};
};

} // namespace

SatResult SmtSolver::check(unsigned TimeoutMs, CancelToken Token) {
  ++Checks;
  if (Token.cancelled())
    return SatResult::Cancelled;
  // A token deadline clamps the SMT budget: a query admitted 800ms
  // before the deadline runs under an 800ms timeout even when the
  // budget ladder would grant more.
  unsigned EffectiveMs = Token.deadline().remainingMs(TimeoutMs);
  // With a valid token the interrupt watcher enforces the budget and
  // Z3's own timer stays disarmed (see ScopedInterruptWatcher); the
  // explicit no-timeout value also clears any timeout a previous
  // token-less check left set on this solver. Without a token, Z3's
  // timeout param is used as usual and no interrupt is ever issued.
  {
    constexpr unsigned NoTimeout = 4294967295u; // Z3's "unbounded".
    z3::params P(I->Ctx);
    P.set("timeout", (Token.valid() || EffectiveMs == 0) ? NoTimeout
                                                         : EffectiveMs);
    I->Solver.set(P);
  }
  I->Model.reset();
  z3::check_result R;
  {
    ScopedInterruptWatcher Watch(I->Ctx, Token, EffectiveMs);
    R = I->Solver.check();
  }
  if (Token.cancelled())
    return SatResult::Cancelled; // interrupted (or raced the verdict).
  switch (R) {
  case z3::sat:
    I->Model = I->Solver.get_model();
    return SatResult::Sat;
  case z3::unsat:
    return SatResult::Unsat;
  case z3::unknown:
    return SatResult::Unknown;
  }
  return SatResult::Unknown;
}

int64_t SmtSolver::modelInt(const std::string &Name) const {
  assert(I->Model && "no model available");
  z3::expr V = I->Model->eval(I->Ctx.int_const(Name.c_str()),
                              /*model_completion=*/true);
  int64_t Out = 0;
  if (!V.is_numeral_i64(Out))
    return 0;
  return Out;
}

bool SmtSolver::modelBool(const std::string &Name) const {
  assert(I->Model && "no model available");
  z3::expr V = I->Model->eval(I->Ctx.bool_const(Name.c_str()),
                              /*model_completion=*/true);
  return V.is_true();
}

} // namespace smt
} // namespace grassp
