//===- smt/Solver.h - Z3-backed SMT solving over the IR ------------------===//
//
// A thin, layering-friendly facade over the Z3 C++ API. The rest of the
// codebase speaks ir::ExprRef; this class lowers IR terms to Z3, runs
// satisfiability checks, and reads models back as plain integers. Z3
// headers stay out of public headers (pimpl).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SMT_SOLVER_H
#define GRASSP_SMT_SOLVER_H

#include "ir/Expr.h"
#include "support/Cancel.h"

#include <cstdint>
#include <memory>
#include <string>

namespace grassp {
namespace smt {

enum class SatResult {
  Sat,
  Unsat,
  Unknown,   ///< The solver gave up within its budget (e.g. timeout).
  Cancelled, ///< The caller's CancelToken fired; the query was
             ///< interrupted (Z3_solver_interrupt) or never started.
};

/// An incremental SMT solver session. Variables are identified by the IR
/// variable names; Int lowers to SMT Int, Bool to SMT Bool. Bag-typed
/// terms never reach the solver (the symbolic evaluator eliminates them).
class SmtSolver {
public:
  SmtSolver();
  ~SmtSolver();

  SmtSolver(const SmtSolver &) = delete;
  SmtSolver &operator=(const SmtSolver &) = delete;

  /// Asserts a Bool-typed IR expression.
  void add(const ir::ExprRef &E);

  void push();
  void pop();

  /// Checks satisfiability of the asserted formulas. \p TimeoutMs == 0
  /// means no limit.
  ///
  /// \p Token makes the check cancellable: a watcher maps the token
  /// firing to Z3_solver_interrupt, so a CEGIS query stuck deep in the
  /// solver returns Cancelled within milliseconds instead of running
  /// out its whole SMT budget. A token deadline additionally clamps the
  /// effective timeout to the remaining budget. The solver survives an
  /// interrupt — the context stays valid and later checks are unharmed
  /// (the interrupted query's verdict is simply discarded).
  SatResult check(unsigned TimeoutMs = 0, CancelToken Token = CancelToken());

  /// After a Sat result: the model value of Int variable \p Name
  /// (0 when the model leaves it unconstrained).
  int64_t modelInt(const std::string &Name) const;

  /// After a Sat result: the model value of Bool variable \p Name.
  bool modelBool(const std::string &Name) const;

  /// Number of check() calls performed (statistics for the benches).
  unsigned numChecks() const { return Checks; }

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  unsigned Checks = 0;
};

} // namespace smt
} // namespace grassp

#endif // GRASSP_SMT_SOLVER_H
