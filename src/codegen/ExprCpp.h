//===- codegen/ExprCpp.h - Rendering IR expressions as C++ ----------------==//

#ifndef GRASSP_CODEGEN_EXPRCPP_H
#define GRASSP_CODEGEN_EXPRCPP_H

#include "ir/Expr.h"

#include <map>
#include <string>

namespace grassp {
namespace codegen {

/// Renders \p E as a C++ expression over int64_t values (Bools are 0/1).
/// \p VarMap maps IR variable names to C++ lvalue expressions; unmapped
/// variables render as their own name.
std::string exprToCpp(const ir::ExprRef &E,
                      const std::map<std::string, std::string> &VarMap);

/// The preamble emitted once per generated file: type alias and the
/// Euclidean div/mod + min/max helpers the rendered expressions rely on.
const char *cppPreamble();

} // namespace codegen
} // namespace grassp

#endif // GRASSP_CODEGEN_EXPRCPP_H
