//===- codegen/CppCodegen.h - Standalone C++ translations ----------------===//
//
// Emits the paper's "C++ translations of the GRASSP solutions"
// (Sect. 9.4): a self-contained multithreaded C++ source file that
// generates a workload, runs the serial specification and the
// synthesized parallel plan, prints both results
// ("serial=<v> parallel=<v> OK|MISMATCH"), and exits nonzero on a
// mismatch. Run with no arguments the binary generates its own workload
// (SplitMix64 + rejection sampling, the runtime's distribution); given
// argv[1] it instead reads one decimal element per line from that file —
// the hook the differential-oracle harness (src/testing) uses to replay
// identical workloads across execution paths. Integration tests compile
// and run the emitted code with the host compiler.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_CODEGEN_CPPCODEGEN_H
#define GRASSP_CODEGEN_CPPCODEGEN_H

#include "lang/Program.h"
#include "synth/ParallelPlan.h"

#include <string>

namespace grassp {
namespace codegen {

struct CppEmitOptions {
  unsigned NumThreads = 8;
  size_t NumElements = 1 << 20;
  uint64_t Seed = 42;
};

/// Emits the standalone translation. Supports all scenarios except
/// CondPrefixRefold (an internal ablation comparator); returns "" for
/// unsupported plans.
std::string emitStandaloneCpp(const lang::SerialProgram &Prog,
                              const synth::ParallelPlan &Plan,
                              const CppEmitOptions &Opts = CppEmitOptions());

/// Emits a Hadoop-streaming style translation: one binary with --map
/// (stdin shard -> partial state line) and --reduce (partial state lines
/// -> final output) modes. NoPrefix scalar plans only; "" otherwise.
std::string emitMapReduceCpp(const lang::SerialProgram &Prog,
                             const synth::ParallelPlan &Plan);

} // namespace codegen
} // namespace grassp

#endif // GRASSP_CODEGEN_CPPCODEGEN_H
