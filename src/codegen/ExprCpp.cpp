//===- codegen/ExprCpp.cpp -------------------------------------------------=//

#include "codegen/ExprCpp.h"

#include <cassert>
#include <sstream>

using namespace grassp::ir;

namespace grassp {
namespace codegen {

namespace {

void render(const ExprRef &E,
            const std::map<std::string, std::string> &VarMap,
            std::ostringstream &OS) {
  auto Infix = [&](const char *Sym) {
    OS << '(';
    render(E->operand(0), VarMap, OS);
    OS << ' ' << Sym << ' ';
    render(E->operand(1), VarMap, OS);
    OS << ')';
  };
  auto Call = [&](const char *Fn) {
    OS << Fn << '(';
    render(E->operand(0), VarMap, OS);
    OS << ", ";
    render(E->operand(1), VarMap, OS);
    OS << ')';
  };
  switch (E->getOp()) {
  case Op::ConstInt:
    OS << "INT64_C(" << E->intValue() << ")";
    return;
  case Op::ConstBool:
    OS << (E->boolValue() ? "INT64_C(1)" : "INT64_C(0)");
    return;
  case Op::Var: {
    auto It = VarMap.find(E->varName());
    OS << (It == VarMap.end() ? E->varName() : It->second);
    return;
  }
  case Op::Add:
    return Infix("+");
  case Op::Sub:
    return Infix("-");
  case Op::Mul:
    return Infix("*");
  case Op::Div:
    return Call("g_ediv");
  case Op::Mod:
    return Call("g_emod");
  case Op::Min:
    return Call("g_imin");
  case Op::Max:
    return Call("g_imax");
  case Op::Eq:
    return Infix("==");
  case Op::Ne:
    return Infix("!=");
  case Op::Lt:
    return Infix("<");
  case Op::Le:
    return Infix("<=");
  case Op::Gt:
    return Infix(">");
  case Op::Ge:
    return Infix(">=");
  case Op::And:
    return Infix("&&");
  case Op::Or:
    return Infix("||");
  case Op::Neg:
    OS << "(-";
    render(E->operand(0), VarMap, OS);
    OS << ')';
    return;
  case Op::Not:
    OS << "(!";
    render(E->operand(0), VarMap, OS);
    OS << ')';
    return;
  case Op::Ite:
    OS << '(';
    render(E->operand(0), VarMap, OS);
    OS << " ? ";
    render(E->operand(1), VarMap, OS);
    OS << " : ";
    render(E->operand(2), VarMap, OS);
    OS << ')';
    return;
  case Op::BagInsertDistinct:
  case Op::BagUnion:
  case Op::BagSize:
    assert(false && "bag expressions are emitted by the set-based path");
    return;
  }
}

} // namespace

std::string exprToCpp(const ExprRef &E,
                      const std::map<std::string, std::string> &VarMap) {
  std::ostringstream OS;
  render(E, VarMap, OS);
  return OS.str();
}

const char *cppPreamble() {
  return R"(#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using i64 = int64_t;

// Euclidean division/remainder matching SMT-LIB semantics.
static inline i64 g_ediv(i64 a, i64 b) {
  if (b == 0) return 0;
  i64 q = a / b;
  if (a % b != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}
static inline i64 g_emod(i64 a, i64 b) {
  if (b == 0) return 0;
  i64 r = a % b;
  if (r < 0) r += (b < 0 ? -b : b);
  return r;
}
static inline i64 g_imin(i64 a, i64 b) { return a < b ? a : b; }
static inline i64 g_imax(i64 a, i64 b) { return a > b ? a : b; }
)";
}

} // namespace codegen
} // namespace grassp
