//===- codegen/CppCodegen.cpp ----------------------------------------------=//

#include "codegen/CppCodegen.h"
#include "codegen/ExprCpp.h"

#include <sstream>

using namespace grassp::ir;
using namespace grassp::lang;
using namespace grassp::synth;

namespace grassp {
namespace codegen {

namespace {

/// VarMap binding state fields to "<obj>.<field>" plus "in" to \p InName.
std::map<std::string, std::string> stateMap(const SerialProgram &Prog,
                                            const std::string &Obj,
                                            const std::string &InName = "") {
  std::map<std::string, std::string> M;
  for (const Field &F : Prog.State.fields())
    M[F.Name] = Obj + "." + F.Name;
  if (!InName.empty())
    M[inputVarName()] = InName;
  return M;
}

void emitStateStruct(const SerialProgram &Prog, std::ostringstream &OS) {
  OS << "struct State {\n";
  for (const Field &F : Prog.State.fields())
    OS << "  i64 " << F.Name << " = INT64_C(" << F.InitInt << ");\n";
  OS << "};\n\n";
  OS << "static void step(State &s, i64 in) {\n  State n;\n";
  std::map<std::string, std::string> M = stateMap(Prog, "s", "in");
  for (size_t I = 0; I != Prog.State.size(); ++I)
    OS << "  n." << Prog.State.field(I).Name << " = "
       << exprToCpp(Prog.Step[I], M) << ";\n";
  OS << "  s = n;\n}\n\n";
  OS << "static i64 output(const State &s) {\n  return "
     << exprToCpp(Prog.Output, stateMap(Prog, "s")) << ";\n}\n\n";
}

void emitMerge(const SerialProgram &Prog, const ParallelPlan &Plan,
               std::ostringstream &OS) {
  OS << "static State merge2(const State &a, const State &b) {\n"
        "  State r;\n";
  std::map<std::string, std::string> M;
  for (const Field &F : Prog.State.fields()) {
    M["a_" + F.Name] = "a." + F.Name;
    M["b_" + F.Name] = "b." + F.Name;
  }
  for (size_t I = 0; I != Prog.State.size(); ++I)
    OS << "  r." << Prog.State.field(I).Name << " = "
       << exprToCpp(Plan.Merge.Combine[I], M) << ";\n";
  OS << "  return r;\n}\n\n";
}

void emitWorkload(const SerialProgram &Prog, const CppEmitOptions &Opts,
                  std::ostringstream &OS) {
  // SplitMix64 plus rejection sampling, matching support/Random.h
  // exactly: generated binaries draw from the same distribution as the
  // runtime workload generators (a plain `bits % n` over-weights the
  // first 2^64 mod n values).
  OS << "static uint64_t g_rng;\n"
     << "static inline uint64_t g_next() {\n"
     << "  uint64_t z = (g_rng += 0x9e3779b97f4a7c15ull);\n"
     << "  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;\n"
     << "  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;\n"
     << "  return z ^ (z >> 31);\n"
     << "}\n"
     << "static inline uint64_t g_bounded(uint64_t n) {\n"
     << "  uint64_t t = (0 - n) % n;\n"
     << "  for (;;) { uint64_t x = g_next(); if (x >= t) return x % n; }\n"
     << "}\n\n";
  OS << "static std::vector<i64> make_workload() {\n"
     << "  std::vector<i64> d(" << Opts.NumElements << ");\n"
     << "  g_rng = " << Opts.Seed << "ull;\n"
     << "  for (auto &x : d) {\n";
  if (!Prog.InputAlphabet.empty()) {
    OS << "    static const i64 alpha[] = {";
    for (size_t I = 0; I != Prog.InputAlphabet.size(); ++I)
      OS << (I ? ", " : "") << Prog.InputAlphabet[I];
    OS << "};\n    x = alpha[g_bounded(" << Prog.InputAlphabet.size()
       << ")];\n";
  } else {
    OS << "    x = (i64)g_bounded(" << (Prog.GenHi - Prog.GenLo + 1)
       << ") + (" << Prog.GenLo << ");\n";
  }
  OS << "  }\n  return d;\n}\n\n";
  // File-input hook for the differential oracle: argv[1] names a text
  // file with one decimal element per line, optionally led by a
  // "# grassp-workload <count>" header. The parser is strict — a
  // truncated, overflowing, or junk-bearing file exits 2 with a
  // file:line diagnostic instead of silently folding a prefix (the
  // exact mirror of runtime::loadWorkloadFile).
  OS << R"CPP(static std::vector<i64> load_workload(const char *path) {
  std::FILE *f = std::fopen(path, "r");
  if (!f) { std::fprintf(stderr, "%s:0: cannot open file\n", path);
            std::exit(2); }
  std::vector<i64> d;
  char buf[256];
  unsigned long line = 0;
  int have_header = 0;
  unsigned long long declared = 0;
  while (std::fgets(buf, sizeof buf, f)) {
    ++line;
    size_t len = std::strlen(buf);
    if (len + 1 == sizeof buf && buf[len - 1] != '\n') {
      std::fprintf(stderr, "%s:%lu: line too long\n", path, line);
      std::exit(2);
    }
    while (len && (buf[len - 1] == '\n' || buf[len - 1] == '\r'))
      buf[--len] = 0;
    if (buf[0] == '#') {
      const char *tag = "# grassp-workload ";
      size_t taglen = std::strlen(tag);
      if (line != 1 || std::strncmp(buf, tag, taglen) != 0) {
        std::fprintf(stderr,
                     "%s:%lu: bad header (expected '# grassp-workload "
                     "<count>')\n", path, line);
        std::exit(2);
      }
      errno = 0;
      char *end = 0;
      declared = std::strtoull(buf + taglen, &end, 10);
      if (end == buf + taglen || *end || errno == ERANGE ||
          buf[taglen] == '-') {
        std::fprintf(stderr, "%s:%lu: malformed count in header\n",
                     path, line);
        std::exit(2);
      }
      have_header = 1;
      continue;
    }
    errno = 0;
    char *end = 0;
    long long v = std::strtoll(buf, &end, 10);
    if (len == 0 || end == buf || *end || errno == ERANGE) {
      std::fprintf(stderr,
                   "%s:%lu: malformed element '%s' (expected one decimal "
                   "int64 per line)\n", path, line, buf);
      std::exit(2);
    }
    d.push_back((i64)v);
  }
  std::fclose(f);
  if (have_header && d.size() != declared) {
    std::fprintf(stderr,
                 "%s:0: element count mismatch: header declares %llu but "
                 "file holds %llu%s\n", path, declared,
                 (unsigned long long)d.size(),
                 d.size() < declared ? " (truncated file?)" : "");
    std::exit(2);
  }
  return d;
}

)CPP";
}

void emitMainCommon(const CppEmitOptions &Opts, std::ostringstream &OS,
                    const char *WorkerCall, const char *MergeCall) {
  OS << "int main(int argc, char **argv) {\n"
     << "  const unsigned T = " << Opts.NumThreads << ";\n"
     << "  std::vector<i64> data = argc > 1 ? load_workload(argv[1])\n"
     << "                                   : make_workload();\n"
     << "  // Serial run (the specification).\n"
     << "  State ser;\n"
     << "  for (i64 x : data) step(ser, x);\n"
     << "  i64 serial_out = output(ser);\n"
     << "  // Parallel run over T contiguous segments.\n"
     << "  size_t n = data.size(), base = n / T, rem = n % T, off = 0;\n"
     << "  std::vector<size_t> lo(T), hi(T);\n"
     << "  for (unsigned i = 0; i != T; ++i) {\n"
     << "    size_t len = base + (i < rem ? 1 : 0);\n"
     << "    lo[i] = off; hi[i] = off + len; off += len;\n"
     << "  }\n"
     << "  std::vector<Worker> w(T);\n"
     << "  std::vector<std::thread> threads;\n"
     << "  for (unsigned i = 0; i != T; ++i)\n"
     << "    threads.emplace_back([&, i] { " << WorkerCall << " });\n"
     << "  for (auto &t : threads) t.join();\n"
     << "  i64 parallel_out = " << MergeCall << ";\n"
     << "  std::printf(\"serial=%lld parallel=%lld %s\\n\",\n"
     << "              (long long)serial_out, (long long)parallel_out,\n"
     << "              serial_out == parallel_out ? \"OK\" : \"MISMATCH\");\n"
     << "  return serial_out == parallel_out ? 0 : 1;\n"
     << "}\n";
}

std::string emitNoOrConstPrefix(const SerialProgram &Prog,
                                const ParallelPlan &Plan,
                                const CppEmitOptions &Opts) {
  std::ostringstream OS;
  OS << "// Generated by grassp-codegen: " << Prog.Description << "\n"
     << "// scenario: " << scenarioName(Plan.Kind) << "\n\n"
     << cppPreamble() << "\n";
  emitStateStruct(Prog, OS);
  emitMerge(Prog, Plan, OS);
  emitWorkload(Prog, Opts, OS);

  OS << "struct Worker { State d; };\n\n"
     << "static void run_worker(Worker &w, const i64 *p, size_t n) {\n"
     << "  for (size_t i = 0; i != n; ++i) step(w.d, p[i]);\n"
     << "}\n\n";
  if (Plan.Kind == Scenario::ConstPrefix)
    OS << "static const size_t PREFIX_LEN = " << Plan.PrefixLen << ";\n\n";

  // Empty segments (n < T) are dropped before merging: a d0 partial
  // state need not be neutral for a nontrivial merge, and the constant
  // prefix must be repaired from the next *non-empty* segment.
  std::ostringstream Merge;
  Merge << "[&]{\n"
        << "    std::vector<unsigned> act;\n"
        << "    for (unsigned i = 0; i != T; ++i)\n"
        << "      if (hi[i] > lo[i]) act.push_back(i);\n"
        << "    if (act.empty()) { State z; return output(z); }\n";
  if (Plan.Kind == Scenario::ConstPrefix)
    Merge << "    for (size_t k = 0; k + 1 < act.size(); ++k) {\n"
          << "      unsigned i = act[k], j = act[k + 1];\n"
          << "      size_t l = hi[j] - lo[j];\n"
          << "      if (l > PREFIX_LEN) l = PREFIX_LEN;\n"
          << "      for (size_t q = 0; q != l; ++q)\n"
          << "        step(w[i].d, data[lo[j] + q]);\n"
          << "    }\n";
  Merge << "    State acc = w[act[0]].d;\n"
        << "    for (size_t k = 1; k != act.size(); ++k)\n"
        << "      acc = merge2(acc, w[act[k]].d);\n"
        << "    return output(acc);\n  }()";
  emitMainCommon(Opts, OS, "run_worker(w[i], data.data() + lo[i], hi[i] - lo[i]);",
                 Merge.str().c_str());
  return OS.str();
}

std::string emitCondPrefixSummary(const SerialProgram &Prog,
                                  const ParallelPlan &Plan,
                                  const CppEmitOptions &Opts) {
  const CondPrefixInfo &CP = Plan.Cond;
  size_t NV = CP.numValuations();
  size_t NC = CP.CtrlFields.size();
  size_t NA = CP.AccFields.size();

  std::ostringstream OS;
  OS << "// Generated by grassp-codegen: " << Prog.Description << "\n"
     << "// scenario: cond-prefix-summary; prefix_cond(in) = "
     << ir::toString(CP.PrefixCond) << "\n\n"
     << cppPreamble() << "\n";
  emitStateStruct(Prog, OS);
  emitWorkload(Prog, Opts, OS);

  std::map<std::string, std::string> InMap{{inputVarName(), "in"}};
  OS << "static inline i64 prefix_cond(i64 in) { return "
     << exprToCpp(CP.PrefixCond, InMap) << "; }\n\n";

  OS << "static const int NV = " << NV << ";\n"
     << "static const int NC = " << NC << ";\n"
     << "static const int NA = " << NA << ";\n"
     << "static const i64 CTRL_VALS[NV][NC] = {\n";
  for (size_t V = 0; V != NV; ++V) {
    OS << "  {";
    for (size_t K = 0; K != NC; ++K)
      OS << (K ? ", " : "") << CP.CtrlValues[V][K];
    OS << "},\n";
  }
  OS << "};\n\n"
     << "static int ctrl_index(const i64 *c) {\n"
     << "  for (int v = 0; v != NV; ++v) {\n"
     << "    bool m = true;\n"
     << "    for (int k = 0; k != NC; ++k) m = m && c[k] == CTRL_VALS[v][k];\n"
     << "    if (m) return v;\n"
     << "  }\n  return -1;\n}\n\n";

  // The synthesized sum: per-valuation control transitions and
  // parametric accumulator transforms (nested-ite form).
  OS << "static i64 ctrl_step(int v, int k, i64 in) {\n"
     << "  switch (v * NC + k) {\n";
  for (size_t V = 0; V != NV; ++V)
    for (size_t K = 0; K != NC; ++K)
      OS << "  case " << (V * NC + K) << ": return "
         << exprToCpp(CP.CtrlStep[V][K], InMap) << ";\n";
  OS << "  }\n  return 0;\n}\n"
     << "static i64 acc_mode(int v, int j, i64 in) {\n"
     << "  switch (v * NA + j) {\n";
  for (size_t V = 0; V != NV; ++V)
    for (size_t J = 0; J != NA; ++J)
      OS << "  case " << (V * NA + J) << ": return "
         << exprToCpp(CP.AccMode[V][J], InMap) << ";\n";
  OS << "  }\n  return 0;\n}\n"
     << "static i64 acc_arg(int v, int j, i64 in) {\n"
     << "  switch (v * NA + j) {\n";
  for (size_t V = 0; V != NV; ++V)
    for (size_t J = 0; J != NA; ++J)
      OS << "  case " << (V * NA + J) << ": return "
         << exprToCpp(CP.AccArg[V][J], InMap) << ";\n";
  OS << "  }\n  return 0;\n}\n\n";

  // Accumulator flavors as combiner functions.
  OS << "static i64 acc_op(int j, i64 a, i64 b) {\n  switch (j) {\n";
  for (size_t J = 0; J != NA; ++J) {
    OS << "  case " << J << ": return ";
    switch (CP.AccFlavors[J]) {
    case AccFlavor::Plus:
      OS << "a + b;\n";
      break;
    case AccFlavor::Max:
      OS << "g_imax(a, b);\n";
      break;
    case AccFlavor::Min:
      OS << "g_imin(a, b);\n";
      break;
    case AccFlavor::And:
      OS << "(a && b) ? 1 : 0;\n";
      break;
    case AccFlavor::Or:
      OS << "(a || b) ? 1 : 0;\n";
      break;
    case AccFlavor::SetLike:
      OS << "b;\n";
      break;
    }
  }
  OS << "  }\n  return b;\n}\n\n";

  // Field-index tables.
  auto EmitIdx = [&](const char *Name, const std::vector<size_t> &Idx) {
    OS << "static const int " << Name << "[] = {";
    for (size_t I = 0; I != Idx.size(); ++I)
      OS << (I ? ", " : "") << Idx[I];
    OS << "};\n";
  };
  EmitIdx("CTRL_FIELD", CP.CtrlFields);
  EmitIdx("ACC_FIELD", CP.AccFields);
  OS << "static i64 *field_ptr(State &s, int f) {\n"
     << "  switch (f) {\n";
  for (size_t I = 0; I != Prog.State.size(); ++I)
    OS << "  case " << I << ": return &s." << Prog.State.field(I).Name
       << ";\n";
  OS << "  }\n  return nullptr;\n}\n\n";

  OS << R"(struct Delta {
  int ctrl[NV];
  i64 mode[NV][NA > 0 ? NA : 1];
  i64 arg[NV][NA > 0 ? NA : 1];
};

struct Worker {
  bool found = false;
  i64 boundary = 0;
  State d;
  Delta delta;
};

// The synthesized sum, applied online while scanning the prefix.
static void sum_step(Delta &dl, i64 in) {
  for (int v = 0; v != NV; ++v) {
    int cur = dl.ctrl[v];
    for (int j = 0; j != NA; ++j) {
      i64 m2 = acc_mode(cur, j, in), a2 = acc_arg(cur, j, in);
      if (m2 == 1) { dl.mode[v][j] = 1; dl.arg[v][j] = a2; }
      else if (m2 == 2) {
        if (dl.mode[v][j] == 0) { dl.mode[v][j] = 2; dl.arg[v][j] = a2; }
        else dl.arg[v][j] = acc_op(j, dl.arg[v][j], a2);
      }
    }
    i64 next[NC];
    for (int k = 0; k != NC; ++k) next[k] = ctrl_step(cur, k, in);
    int idx = ctrl_index(next);
    if (idx >= 0) dl.ctrl[v] = idx;
  }
}

static void run_worker(Worker &w, const i64 *p, size_t n) {
  for (int v = 0; v != NV; ++v) {
    w.delta.ctrl[v] = v;
    for (int j = 0; j != NA; ++j) { w.delta.mode[v][j] = 0; w.delta.arg[v][j] = 0; }
  }
  size_t i = 0;
  for (; i != n && !prefix_cond(p[i]); ++i) sum_step(w.delta, p[i]);
  if (i != n) {
    w.found = true;
    w.boundary = p[i];
    for (; i != n; ++i) step(w.d, p[i]); // suffix incl. boundary
  }
}

// The synthesized upd: applies a prefix summary to the carried state.
static void upd(State &c, const Worker &w) {
  i64 cv[NC];
  for (int k = 0; k != NC; ++k) cv[k] = *field_ptr(c, CTRL_FIELD[k]);
  int idx = ctrl_index(cv);
  if (idx < 0) return;
  int end = w.delta.ctrl[idx];
  for (int k = 0; k != NC; ++k)
    *field_ptr(c, CTRL_FIELD[k]) = CTRL_VALS[end][k];
  for (int j = 0; j != NA; ++j) {
    i64 m = w.delta.mode[idx][j], a = w.delta.arg[idx][j];
    i64 *f = field_ptr(c, ACC_FIELD[j]);
    if (m == 1) *f = a;
    else if (m == 2) *f = acc_op(j, *f, a);
  }
}

static void combine_boundary(State &c, const Worker &w) {
  State t = c; step(t, w.boundary);
  State w0; step(w0, w.boundary);
  State d = w.d;
  State r = d; // control fields and set-like accumulators take d.
  for (int j = 0; j != NA; ++j) {
    i64 *rf = field_ptr(r, ACC_FIELD[j]);
    State tt = t, dd = d, zz = w0;
    i64 tv = *field_ptr(tt, ACC_FIELD[j]);
    i64 dv = *field_ptr(dd, ACC_FIELD[j]);
    i64 zv = *field_ptr(zz, ACC_FIELD[j]);
    *rf = COMBINE_BODY;
  }
  c = r;
}
)";

  // Patch in the per-flavor combine body.
  std::string Text = OS.str();
  std::ostringstream CB;
  CB << "[&]{ switch (j) {\n";
  for (size_t J = 0; J != NA; ++J) {
    CB << "      case " << J << ": return ";
    switch (CP.AccFlavors[J]) {
    case AccFlavor::Plus:
      CB << "tv + (dv - zv);\n";
      break;
    case AccFlavor::Max:
      CB << "g_imax(tv, dv);\n";
      break;
    case AccFlavor::Min:
      CB << "g_imin(tv, dv);\n";
      break;
    case AccFlavor::And:
      CB << "(i64)((tv && (!zv || dv)) ? 1 : 0);\n";
      break;
    case AccFlavor::Or:
      CB << "(i64)((tv || (dv && !zv)) ? 1 : 0);\n";
      break;
    case AccFlavor::SetLike:
      CB << "dv;\n";
      break;
    }
  }
  CB << "      } return dv; }()";
  size_t Pos = Text.find("COMBINE_BODY");
  Text.replace(Pos, 12, CB.str());

  std::ostringstream Tail;
  Tail << "\nstatic i64 merge_all(const std::vector<Worker> &w) {\n"
       << "  State c;\n"
       << "  for (const Worker &x : w) {\n"
       << "    upd(c, x);\n"
       << "    if (x.found) combine_boundary(c, x);\n"
       << "  }\n  return output(c);\n}\n\n";
  std::ostringstream Main;
  emitMainCommon(Opts, Main,
                 "run_worker(w[i], data.data() + lo[i], hi[i] - lo[i]);",
                 "merge_all(w)");
  return Text + Tail.str() + Main.str();
}

} // namespace

std::string emitStandaloneCpp(const SerialProgram &Prog,
                              const ParallelPlan &Plan,
                              const CppEmitOptions &Opts) {
  if (Prog.State.hasBag()) {
    // The distinct-elements benchmark: emit the set-based translation.
    std::ostringstream OS;
    OS << "// Generated by grassp-codegen: " << Prog.Description << "\n"
       << cppPreamble() << "#include <unordered_set>\n\n";
    emitWorkload(Prog, Opts, OS);
    OS << "struct Worker { std::unordered_set<i64> seen; };\n"
       << "static void run_worker(Worker &w, const i64 *p, size_t n) {\n"
       << "  for (size_t i = 0; i != n; ++i) w.seen.insert(p[i]);\n}\n\n"
       << "int main(int argc, char **argv) {\n"
       << "  const unsigned T = " << Opts.NumThreads << ";\n"
       << "  std::vector<i64> data = argc > 1 ? load_workload(argv[1])\n"
       << "                                   : make_workload();\n"
       << "  std::unordered_set<i64> ser(data.begin(), data.end());\n"
       << "  i64 serial_out = (i64)ser.size();\n"
       << "  size_t n = data.size(), base = n / T, rem = n % T, off = 0;\n"
       << "  std::vector<size_t> lo(T), hi(T);\n"
       << "  for (unsigned i = 0; i != T; ++i) {\n"
       << "    size_t len = base + (i < rem ? 1 : 0);\n"
       << "    lo[i] = off; hi[i] = off + len; off += len;\n  }\n"
       << "  std::vector<Worker> w(T);\n"
       << "  std::vector<std::thread> threads;\n"
       << "  for (unsigned i = 0; i != T; ++i)\n"
       << "    threads.emplace_back([&, i] {"
       << " run_worker(w[i], data.data() + lo[i], hi[i] - lo[i]); });\n"
       << "  for (auto &t : threads) t.join();\n"
       << "  std::unordered_set<i64> all;\n"
       << "  for (auto &x : w) all.insert(x.seen.begin(), x.seen.end());\n"
       << "  i64 parallel_out = (i64)all.size();\n"
       << "  std::printf(\"serial=%lld parallel=%lld %s\\n\",\n"
       << "              (long long)serial_out, (long long)parallel_out,\n"
       << "              serial_out == parallel_out ? \"OK\" : \"MISMATCH\");\n"
       << "  return serial_out == parallel_out ? 0 : 1;\n}\n";
    return OS.str();
  }
  switch (Plan.Kind) {
  case Scenario::NoPrefix:
  case Scenario::ConstPrefix:
    return emitNoOrConstPrefix(Prog, Plan, Opts);
  case Scenario::CondPrefixSummary:
    return emitCondPrefixSummary(Prog, Plan, Opts);
  case Scenario::CondPrefixRefold:
    return "";
  }
  return "";
}

std::string emitMapReduceCpp(const SerialProgram &Prog,
                             const ParallelPlan &Plan) {
  if (Plan.Kind != Scenario::NoPrefix || Plan.Merge.Refold ||
      Prog.State.hasBag())
    return "";
  std::ostringstream OS;
  OS << "// Generated by grassp-codegen (Hadoop-streaming style): "
     << Prog.Description << "\n"
     << cppPreamble() << "#include <cstring>\n\n";
  emitStateStruct(Prog, OS);
  emitMerge(Prog, Plan, OS);
  OS << R"(static void print_state(const State &s) {
)";
  OS << "  std::printf(\"";
  for (size_t I = 0; I != Prog.State.size(); ++I)
    OS << (I ? " " : "") << "%lld";
  OS << "\\n\"";
  for (size_t I = 0; I != Prog.State.size(); ++I)
    OS << ", (long long)s." << Prog.State.field(I).Name;
  OS << ");\n}\n\n";
  OS << "static bool read_state(State &s) {\n  long long ";
  for (size_t I = 0; I != Prog.State.size(); ++I)
    OS << (I ? ", " : "") << "v" << I;
  OS << ";\n  if (std::scanf(\"";
  for (size_t I = 0; I != Prog.State.size(); ++I)
    OS << (I ? " " : "") << "%lld";
  OS << "\"";
  for (size_t I = 0; I != Prog.State.size(); ++I)
    OS << ", &v" << I;
  OS << ") != " << Prog.State.size() << ") return false;\n";
  for (size_t I = 0; I != Prog.State.size(); ++I)
    OS << "  s." << Prog.State.field(I).Name << " = v" << I << ";\n";
  OS << "  return true;\n}\n\n";
  OS << R"(int main(int argc, char **argv) {
  if (argc == 2 && std::strcmp(argv[1], "--map") == 0) {
    State s;
    long long v;
    while (std::scanf("%lld", &v) == 1) step(s, (i64)v);
    print_state(s);
    return 0;
  }
  if (argc == 2 && std::strcmp(argv[1], "--reduce") == 0) {
    State acc;
    bool first = true;
    State s;
    while (read_state(s)) {
      acc = first ? s : merge2(acc, s);
      first = false;
    }
    std::printf("%lld\n", (long long)output(acc));
    return 0;
  }
  std::fprintf(stderr, "usage: %s --map | --reduce\n", argv[0]);
  return 2;
}
)";
  return OS.str();
}

} // namespace codegen
} // namespace grassp
