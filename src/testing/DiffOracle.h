//===- testing/DiffOracle.h - Differential oracle over execution paths ---===//
//
// One plan, up to ten executions of the same workload:
//
//  1. the tree-walking reference interpreter (lang::runSerial) — the
//     ground truth, a flat fold of f with no segmentation at all;
//  2. the per-element bytecode VM folded over the segments
//     (CompiledProgram on the PerElement tier, unoptimized bytecode);
//  3. the loop-resident VM (LoopVM tier: peephole-optimized bytecode,
//     the whole segment loop threaded inside the VM);
//  4. the jit-compiled native kernel (Native tier: the optimized
//     bytecode lowered to C++, built by the host compiler and
//     dlopen'd; absent without a host compiler);
//  5. the pattern-specialized native kernels (Specialized tier; present
//     only when the program's step shape specializes — for bag programs
//     this is the hash-set distinct kernel and the only tier);
//  6. the compiled plan run segment-parallel on a real ThreadPool
//     (runtime::runParallel);
//  7. the compiled plan run over a chunked SegmentSource (the
//     out-of-core entry point, runtime::runParallel(Plan, Source)) with
//     chunk boundaries deliberately misaligned with the segment shape;
//  8. the MergeTree replay: the same chunks appended one at a time to
//     the incremental-recompute tree, querying the root (skipped, with
//     path 7, on empty workloads — sources reject them by contract);
//  9. the emitted standalone C++ translation, compiled on the fly with
//     the host compiler and fed the identical workload through its
//     file-input hook (skipped gracefully when no compiler is present
//     or the plan has no translation; a compiler that *fails* on the
//     translation, or an emitted binary that dies or won't run, is
//     reported as a divergence, never a silent no-verdict);
// 10. (opt-in, UseDist) the real multi-process distributed runtime
//     (dist::DistCoordinator): forked worker processes over Unix
//     sockets, one shard per segment — a genuinely independent
//     process-isolated path, and the one chaos mode kills real workers
//     under while demanding the same bit-identical answer.
//
// Running every tier on every fuzzed workload is what lets the runtime
// trust neither the peephole optimizer nor the specialized kernels: a
// miscompiled lane diverges from the interpreter here.
//
// Any disagreement is a divergence; minimize() shrinks a diverging input
// with a ddmin-style pass (drop segments, halve segments, drop single
// elements), re-checking the full oracle after every step so the
// reproducer it returns still diverges.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_TESTING_DIFFORACLE_H
#define GRASSP_TESTING_DIFFORACLE_H

#include "dist/Coordinator.h"
#include "lang/Program.h"
#include "runtime/Kernels.h"
#include "runtime/Runner.h"
#include "support/ThreadPool.h"
#include "synth/ParallelPlan.h"

#include <memory>
#include <string>
#include <vector>

namespace grassp {
namespace testing {

/// A workload already carved into segments; empty segments are legal and
/// deliberately interesting.
using SegmentedInput = std::vector<std::vector<int64_t>>;

struct OracleConfig {
  /// Attempt the emitted-C++ path. Quietly disabled when the host has no
  /// g++ or the plan has no standalone translation.
  bool UseEmitted = true;
  /// Worker threads for the ThreadPool path and the emitted binary.
  unsigned Threads = 4;
  /// Fault-tolerance policy for the plan+pool path. Chaos mode points
  /// Policy.Faults at a seeded injector: the oracle then checks that
  /// the fault-tolerant run is still bit-identical to the other paths.
  runtime::RunPolicy Policy;
  /// Add the real multi-process runtime as an independent path. The
  /// coordinator (and its forked workers) persist across checks; with
  /// Dist.Faults armed at the dist.* sites, workers genuinely die
  /// mid-fold and the oracle demands bit-identical recovery.
  bool UseDist = false;
  dist::DistConfig Dist;
};

struct OracleVerdict {
  bool Diverged = false;
  /// Ground-truth output (the reference interpreter).
  int64_t Expected = 0;
  /// On divergence: every path's value, e.g.
  /// "interp=3 vm=3 loop-vm=3 fused=4 plan+pool=3".
  std::string Detail;
};

class DiffOracle {
public:
  /// \p Prog must outlive the oracle (benchmarks have static storage);
  /// \p Plan is copied.
  DiffOracle(const lang::SerialProgram &Prog, const synth::ParallelPlan &Plan,
             const OracleConfig &Cfg = OracleConfig());
  ~DiffOracle();

  DiffOracle(const DiffOracle &) = delete;
  DiffOracle &operator=(const DiffOracle &) = delete;

  /// Paths compared per check: the interpreter, every execution tier the
  /// program supports (including the jit-compiled native tier when a
  /// host compiler exists), the plan+pool run, the chunked-source
  /// parallel run and the MergeTree replay (skipped on empty
  /// workloads), and (when ready) the emitted binary. 7-9 for typical
  /// scalar programs, 5 or 6 for bag programs (which have only the
  /// hash-set tier).
  unsigned numPaths() const {
    unsigned N = 4; // interpreter + plan+pool + source+pool + merge-tree.
    if (Compiled.tierAvailable(runtime::ExecTier::PerElement))
      ++N;
    if (Compiled.tierAvailable(runtime::ExecTier::LoopVM))
      ++N;
    if (Compiled.tierAvailable(runtime::ExecTier::Native))
      ++N;
    if (Compiled.tierAvailable(runtime::ExecTier::Specialized))
      ++N;
    return N + (EmittedReady ? 1 : 0) + (DistCoord ? 1 : 0);
  }
  bool emittedActive() const { return EmittedReady; }
  bool distActive() const { return DistCoord != nullptr; }
  /// True when the translation existed but the host compiler failed on
  /// it; every check() then reports the compile detail as a divergence.
  bool emittedBroken() const { return EmittedBroken; }

  /// Runs all paths on \p Segs and compares.
  OracleVerdict check(const SegmentedInput &Segs);

  /// Shrinks a diverging input, spending at most \p MaxChecks oracle
  /// re-checks; the result is guaranteed to still diverge.
  SegmentedInput minimize(SegmentedInput Segs, unsigned MaxChecks = 200);

  /// Total oracle checks run (fuzzing + minimization).
  unsigned long checksRun() const { return Checks; }

  /// Fault-tolerance activity accumulated over every check (all zero
  /// unless the config armed a fault injector).
  struct FaultStats {
    unsigned long FailedAttempts = 0;
    unsigned long Retries = 0;
    unsigned long SpeculativeLaunches = 0;
    unsigned long SpeculativeWins = 0;
    unsigned long SerialRefolds = 0;
  };
  const FaultStats &faultStats() const { return Faults; }

  /// Distributed-path recovery activity accumulated over every check
  /// (all zero unless UseDist). Every counter here describes a REAL
  /// event: WorkersKilled saw WIFSIGNALED, CorruptFrames were checksum
  /// rejects of actual wire bytes.
  struct DistStats {
    unsigned long Runs = 0;
    unsigned long WorkersKilled = 0;
    unsigned long WorkersExited = 0;
    unsigned long WorkersRestarted = 0;
    unsigned long ShardsReassigned = 0;
    unsigned long SpeculativeLaunches = 0;
    unsigned long SpeculativeWins = 0;
    unsigned long CorruptFrames = 0;
    unsigned long HangsDetected = 0;
    unsigned long SerialRefolds = 0;
  };
  const DistStats &distStats() const { return DistSt; }

  /// "file.cpp:3 segments [1 2 | | 7]" — reproducer pretty-printer.
  static std::string formatInput(const SegmentedInput &Segs);

  /// True when the host compiler ($CXX, falling back to g++) works on
  /// this host (cached after the first probe).
  static bool hostCompilerAvailable();

private:
  bool runEmitted(const std::vector<int64_t> &Flat, int64_t *SerialOut,
                  int64_t *ParallelOut, std::string *Error);
  /// Removes the emitted-path scratch dir (idempotent). Called by the
  /// destructor AND on the constructor's failure paths — a throwing or
  /// compile-failing constructor must not leak the dir.
  void removeScratch();

  const lang::SerialProgram &Prog;
  synth::ParallelPlan Plan; // owned: CompiledPlan holds a reference.
  runtime::CompiledProgram Compiled;
  runtime::CompiledPlan CompiledPlanImpl;
  // Declared (and so constructed) BEFORE Pool: the coordinator prewarms
  // its worker pool at construction, putting the bulk of its fork()s
  // before any ThreadPool thread exists. Chaos-mode respawns still fork
  // with Pool threads live — POSIX-undefined but safe on the
  // glibc/Linux target (see the fork-safety note in dist/Coordinator.h).
  std::unique_ptr<dist::DistCoordinator> DistCoord;
  ThreadPool Pool;
  runtime::RunPolicy Policy;
  unsigned long Checks = 0;
  FaultStats Faults;
  DistStats DistSt;

  // Emitted-path state: a temp dir holding the compiled binary plus the
  // per-check workload/output files. Broken means a compiler exists but
  // failed on the translation (reported per check, with the cc.log
  // detail in EmittedError).
  bool EmittedReady = false;
  bool EmittedBroken = false;
  std::string EmittedError;
  std::string TmpDir;
  std::string BinPath;
};

} // namespace testing
} // namespace grassp

#endif // GRASSP_TESTING_DIFFORACLE_H
