//===- testing/Fuzz.cpp ---------------------------------------------------==//

#include "testing/Fuzz.h"

#include "dist/Worker.h"
#include "lang/Benchmarks.h"
#include "runtime/Runner.h"
#include "runtime/Workload.h"
#include "support/FaultInject.h"
#include "support/Timing.h"

#include <algorithm>
#include <cstdio>

namespace grassp {
namespace testing {

namespace {

/// Carves flat \p Data into owned segments with lengths \p Lens.
SegmentedInput carve(const std::vector<int64_t> &Data,
                     const std::vector<size_t> &Lens) {
  SegmentedInput Segs;
  Segs.reserve(Lens.size());
  size_t Off = 0;
  for (size_t L : Lens) {
    Segs.emplace_back(Data.begin() + Off, Data.begin() + Off + L);
    Off += L;
  }
  return Segs;
}

/// Golden-ratio increment decorrelates per-round seeds (SplitMix64's own
/// stream constant).
constexpr uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;

} // namespace

FuzzReport fuzzBenchmark(const lang::SerialProgram &Prog,
                         const synth::ParallelPlan &Plan,
                         const FuzzOptions &Opts) {
  FuzzReport R;
  R.Benchmark = Prog.Name;

  OracleConfig OC;
  OC.UseEmitted = Opts.UseEmitted;
  FaultInjector Injector(Opts.ChaosSeed);
  if (Opts.Chaos) {
    FaultSpec Worker;
    Worker.Probability = Opts.ChaosFailPermille / 1000.0;
    Injector.arm(runtime::FaultSiteWorker, Worker);
    FaultSpec Straggler;
    Straggler.Probability = Opts.ChaosStragglerPermille / 1000.0;
    Straggler.DelaySeconds = Opts.ChaosStragglerSec;
    Injector.arm(runtime::FaultSiteStraggler, Straggler);
    OC.Policy.MaxRetries = 3;
    OC.Policy.Speculate = true;
    OC.Policy.Faults = &Injector;
  }
  if (Opts.Dist) {
    OC.UseDist = true;
    OC.Dist.Workers = Opts.DistWorkers ? Opts.DistWorkers : 1;
    OC.Dist.MaxRetries = 3;
    // Tight deadlines keep injected hangs cheap: backup at 40ms, kill
    // at 80ms, so a silent worker costs one beat of wall clock, not a
    // stuck sweep.
    OC.Dist.TaskDeadlineSeconds = 0.04;
    OC.Dist.HangKillFactor = 2.0;
    OC.Dist.BackoffJitterSeed = Opts.ChaosSeed;
    // Chaos kills churn through many processes; the respawn budget must
    // not degrade the whole sweep to serial refolds.
    OC.Dist.MaxWorkerRestarts = 100000;
    OC.Dist.Token = Opts.Token;
    // Rotate the shard transport across benchmarks (seeded, so sweeps
    // replay): most checks take the zero-copy shared-memory path, every
    // fourth forces the inline fallback — both must stay bit-identical
    // under the same injected faults.
    uint64_t TransportMix = Opts.ChaosSeed;
    for (char C : Prog.Name)
      TransportMix = (TransportMix ^ (uint64_t)(unsigned char)C) * kSeedStride;
    OC.Dist.UseShm = (TransportMix >> 17) % 4 != 0;
    if (Opts.Chaos) {
      OC.Dist.Faults = &Injector;
      FaultSpec Kill;
      Kill.Probability = Opts.DistKillPermille / 1000.0;
      Injector.arm(dist::SiteWorkerKill, Kill);
      FaultSpec Exit;
      Exit.Probability = Opts.DistExitPermille / 1000.0;
      Injector.arm(dist::SiteWorkerExit, Exit);
      FaultSpec Hang;
      Hang.Probability = Opts.DistHangPermille / 1000.0;
      Injector.arm(dist::SiteWorkerHang, Hang);
      FaultSpec Corrupt;
      Corrupt.Probability = Opts.DistCorruptPermille / 1000.0;
      Injector.arm(dist::SiteFrameCorrupt, Corrupt);
    }
  }
  // Interruptible runs: a fired token wakes injected stragglers and
  // retry backoffs instead of letting them pin pool workers.
  OC.Policy.Token = Opts.Token;
  DiffOracle Oracle(Prog, Plan, OC);
  R.PathsCompared = Oracle.numPaths();

  std::vector<size_t> Sizes = Opts.Sizes;
  if (Sizes.empty())
    Sizes = {0, 1, 2, 3, 5, 17, 64, 257};

  auto tryInput = [&](const std::vector<int64_t> &Data,
                      const std::vector<size_t> &Lens,
                      const std::string &ShapeName, uint64_t Seed) {
    SegmentedInput Segs = carve(Data, Lens);
    OracleVerdict V = Oracle.check(Segs);
    if (!V.Diverged)
      return false;
    R.Diverged = true;
    R.Shape = ShapeName;
    R.Detail = V.Detail;
    R.Seed = Seed;
    R.Reproducer = Oracle.minimize(std::move(Segs), Opts.MaxMinimizeChecks);
    OracleVerdict MV = Oracle.check(R.Reproducer);
    if (MV.Diverged) // refresh the per-path values for the shrunk input.
      R.Detail = MV.Detail;
    return true;
  };

  // One full deterministic sweep for a given workload seed: every size,
  // every adversarial shape, plus the marker-planted variant for
  // alphabet programs.
  auto sweep = [&](uint64_t Seed) {
    for (size_t N : Sizes) {
      if (Opts.Token.cancelled()) {
        R.Cancelled = true;
        return false;
      }
      std::vector<int64_t> Data = runtime::generateWorkload(Prog, N, Seed);
      std::vector<runtime::SegmentShape> Shapes =
          runtime::adversarialShapes(N, Opts.Segments);
      if (N <= 8) {
        // Explicit M > N shapes: more segments than elements.
        for (runtime::SegmentShape &S :
             runtime::adversarialShapes(N, static_cast<unsigned>(N) + 3)) {
          S.Name += "/M>N";
          Shapes.push_back(std::move(S));
        }
      }
      for (const runtime::SegmentShape &Shape : Shapes) {
        if (Opts.Token.cancelled()) {
          R.Cancelled = true;
          return false;
        }
        if (tryInput(Data, Shape.Lens, Shape.Name, Seed))
          return true;
        if (!Prog.InputAlphabet.empty() && N != 0) {
          // Plant alphabet symbols (the boundary markers conditional
          // prefixes key on) at the first and last slot of every
          // non-empty segment.
          std::vector<int64_t> Marked = Data;
          size_t Rot = 0, Off = 0;
          for (size_t L : Shape.Lens) {
            if (L != 0) {
              Marked[Off] =
                  Prog.InputAlphabet[Rot++ % Prog.InputAlphabet.size()];
              Marked[Off + L - 1] =
                  Prog.InputAlphabet[Rot++ % Prog.InputAlphabet.size()];
            }
            Off += L;
          }
          if (tryInput(Marked, Shape.Lens, Shape.Name + "+markers", Seed))
            return true;
        }
      }
    }
    return false;
  };

  Stopwatch T;
  bool Found = sweep(Opts.Seed);
  for (uint64_t Round = 1; !Found && !R.Cancelled && Opts.Seconds != 0 &&
                           T.seconds() < static_cast<double>(Opts.Seconds);
       ++Round)
    Found = sweep(Opts.Seed + Round * kSeedStride);

  R.Checks = Oracle.checksRun();
  // Dist fault fires happen in the forked WORKERS (their injector copy),
  // so the parent's fire counters never see them; the honest measure is
  // the coordinator's waitpid-verified recovery stats below.
  R.FaultFires = Injector.totalFires();
  R.Faults = Oracle.faultStats();
  R.Dist = Oracle.distStats();
  return R;
}

int fuzzMain(const std::vector<std::string> &Names, const FuzzOptions &Opts,
             const synth::DriverOptions &DriverOpts) {
  std::vector<const lang::SerialProgram *> Progs;
  if (Names.empty()) {
    for (const lang::SerialProgram &P : lang::allBenchmarks())
      Progs.push_back(&P);
  } else {
    for (const std::string &N : Names) {
      const lang::SerialProgram *P = lang::findBenchmark(N);
      if (!P) {
        std::fprintf(stderr, "error: unknown benchmark '%s'\n", N.c_str());
        return 2;
      }
      Progs.push_back(P);
    }
  }

  std::printf("fuzz: synthesizing %zu plan(s), all-tier oracle%s...\n",
              Progs.size(),
              Opts.UseEmitted && DiffOracle::hostCompilerAvailable()
                  ? " (emitted C++ enabled)"
                  : "");
  if (Opts.Chaos)
    std::printf("fuzz: chaos mode armed (seed %llu, worker-fail %u/1000, "
                "straggler %u/1000 @ %.1fms)\n",
                (unsigned long long)Opts.ChaosSeed, Opts.ChaosFailPermille,
                Opts.ChaosStragglerPermille, Opts.ChaosStragglerSec * 1e3);
  if (Opts.Dist)
    std::printf("fuzz: dist mode armed (%u worker processes%s)\n",
                Opts.DistWorkers,
                Opts.Chaos ? "; REAL faults: kill/exit/hang/corrupt-frame"
                           : "");
  synth::ParallelDriver Driver(DriverOpts);
  std::vector<synth::TaskResult> Results = Driver.run(Progs);

  // The --seconds budget is the whole run's; split it evenly across the
  // benchmarks (each still gets at least its deterministic sweep).
  FuzzOptions PerBench = Opts;
  if (Opts.Seconds != 0)
    PerBench.Seconds = std::max<unsigned>(
        1, Opts.Seconds / static_cast<unsigned>(Progs.size()));

  std::printf("%-22s %-6s %-7s %-8s %s\n", "benchmark", "group", "paths",
              "checks", "verdict");
  bool AnyDivergence = false;
  bool Interrupted = false;
  unsigned Fuzzed = 0;
  uint64_t TotalFires = 0;
  unsigned long TotalRetries = 0, TotalRefolds = 0, TotalSpec = 0;
  DiffOracle::DistStats Dist;
  for (size_t I = 0; I != Progs.size(); ++I) {
    if (Opts.Token.cancelled()) {
      Interrupted = true;
      break;
    }
    if (Results[I].Status == synth::TaskStatus::Cancelled) {
      Interrupted = true;
      std::printf("%-22s %-6s synthesis cancelled\n",
                  Progs[I]->Name.c_str(), "-");
      continue;
    }
    if (!Results[I].Result.Success) {
      std::printf("%-22s %-6s synthesis failed: %s\n",
                  Progs[I]->Name.c_str(), "-",
                  Results[I].Result.FailureReason.c_str());
      continue;
    }
    FuzzReport R = fuzzBenchmark(*Progs[I], Results[I].Result.Plan, PerBench);
    if (R.Cancelled)
      Interrupted = true;
    else
      ++Fuzzed;
    TotalFires += R.FaultFires;
    TotalRetries += R.Faults.Retries;
    TotalRefolds += R.Faults.SerialRefolds;
    TotalSpec += R.Faults.SpeculativeLaunches;
    Dist.Runs += R.Dist.Runs;
    Dist.WorkersKilled += R.Dist.WorkersKilled;
    Dist.WorkersExited += R.Dist.WorkersExited;
    Dist.WorkersRestarted += R.Dist.WorkersRestarted;
    Dist.ShardsReassigned += R.Dist.ShardsReassigned;
    Dist.SpeculativeLaunches += R.Dist.SpeculativeLaunches;
    Dist.SpeculativeWins += R.Dist.SpeculativeWins;
    Dist.CorruptFrames += R.Dist.CorruptFrames;
    Dist.HangsDetected += R.Dist.HangsDetected;
    Dist.SerialRefolds += R.Dist.SerialRefolds;
    if (!R.Diverged) {
      if (Opts.Chaos)
        std::printf("%-22s %-6s %-7u %-8lu ok (faults=%llu retries=%lu "
                    "refolds=%lu spec=%lu)\n",
                    R.Benchmark.c_str(), Results[I].Result.Group.c_str(),
                    R.PathsCompared, R.Checks,
                    (unsigned long long)R.FaultFires, R.Faults.Retries,
                    R.Faults.SerialRefolds, R.Faults.SpeculativeLaunches);
      else
        std::printf("%-22s %-6s %-7u %-8lu ok\n", R.Benchmark.c_str(),
                    Results[I].Result.Group.c_str(), R.PathsCompared,
                    R.Checks);
      continue;
    }
    AnyDivergence = true;
    std::printf("%-22s %-6s %-7u %-8lu DIVERGED\n", R.Benchmark.c_str(),
                Results[I].Result.Group.c_str(), R.PathsCompared, R.Checks);
    std::printf("  shape: %s (seed %llu)\n  %s\n  minimized reproducer: %s\n",
                R.Shape.c_str(), (unsigned long long)R.Seed,
                R.Detail.c_str(),
                DiffOracle::formatInput(R.Reproducer).c_str());
  }
  std::printf("fuzzed %u/%zu benchmark(s): %s%s\n", Fuzzed, Progs.size(),
              AnyDivergence ? "DIVERGENCE FOUND" : "no divergences",
              Interrupted ? " (interrupted; summary covers completed "
                            "checks only)"
                          : "");
  if (Opts.Chaos)
    std::printf("chaos: %llu fault(s) injected, %lu retried, %lu refolded "
                "serially, %lu speculative backup(s); outputs stayed "
                "bit-identical\n",
                (unsigned long long)TotalFires, TotalRetries, TotalRefolds,
                TotalSpec);
  if (Opts.Dist)
    std::printf("dist: %lu run(s); %lu worker(s) killed (WIFSIGNALED), "
                "%lu crashed/exited, %lu restarted; %lu shard(s) "
                "reassigned, %lu/%lu speculative win(s), %lu corrupt "
                "frame(s) caught, %lu hang(s) detected, %lu serial "
                "refold(s)%s\n",
                Dist.Runs, Dist.WorkersKilled, Dist.WorkersExited,
                Dist.WorkersRestarted, Dist.ShardsReassigned,
                Dist.SpeculativeWins, Dist.SpeculativeLaunches,
                Dist.CorruptFrames, Dist.HangsDetected, Dist.SerialRefolds,
                AnyDivergence ? "" : "; outputs stayed bit-identical");
  if (AnyDivergence)
    return 1;
  if (Interrupted) {
    int Sig = signalExitCode();
    return Sig != 0 ? Sig : 130;
  }
  return Fuzzed == Progs.size() ? 0 : 1;
}

} // namespace testing
} // namespace grassp
