//===- testing/Fuzz.h - Differential fuzzing over the benchmark suite ----===//
//
// Drives DiffOracle over each benchmark's synthesized plan with (a)
// seeded random workloads across a size ladder and (b) the adversarial
// segment shapes of runtime::adversarialShapes — empty segments,
// length-1 segments, all data in one segment, more segments than
// elements — plus marker-planting at segment edges for alphabet
// programs, where conditional prefixes start and end.
//
// Two modes: a bounded fixed sweep (Seconds == 0, the ctest fuzz_smoke
// configuration — fixed seeds, deterministic, a few seconds) and an
// open-ended soak (Seconds > 0: the fixed sweep first, then fresh
// random rounds until the budget runs out). Both report the first
// divergence with a minimized reproducer.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_TESTING_FUZZ_H
#define GRASSP_TESTING_FUZZ_H

#include "lang/Program.h"
#include "support/Cancel.h"
#include "synth/ParallelDriver.h"
#include "synth/ParallelPlan.h"
#include "testing/DiffOracle.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grassp {
namespace testing {

struct FuzzOptions {
  uint64_t Seed = 1;
  /// 0 = one deterministic sweep; N = sweep plus random rounds for ~N
  /// seconds of wall-clock budget.
  unsigned Seconds = 0;
  /// Baseline segment count M for the adversarial shapes.
  unsigned Segments = 4;
  bool UseEmitted = true;
  /// Workload sizes; empty picks the default ladder
  /// {0, 1, 2, 3, 5, 17, 64, 257}.
  std::vector<size_t> Sizes;
  /// Oracle re-check budget for reproducer minimization.
  unsigned MaxMinimizeChecks = 200;
  /// Chaos mode: arm a seeded fault injector on the plan+pool path
  /// (worker failures + stragglers) and check the fault-tolerant run is
  /// still bit-identical to every other path.
  bool Chaos = false;
  /// Seed for the chaos injector (independent of the workload Seed so
  /// the same workloads can be replayed with different fault patterns).
  uint64_t ChaosSeed = 7;
  /// Chance in permille that one worker attempt fails (runner.worker).
  unsigned ChaosFailPermille = 200;
  /// Chance in permille that a segment straggles (runner.straggler),
  /// and the modeled stall it suffers.
  unsigned ChaosStragglerPermille = 60;
  double ChaosStragglerSec = 0.004;
  /// Distributed mode: run every check through the real multi-process
  /// runtime as an extra oracle path. With Chaos also set, the dist.*
  /// sites are armed too, so worker PROCESSES really _exit(137),
  /// SIGKILL themselves, hang, and corrupt reply frames mid-sweep —
  /// while every output must stay bit-identical.
  bool Dist = false;
  unsigned DistWorkers = 4;
  unsigned DistKillPermille = 30;    // dist.worker.kill (raise SIGKILL)
  unsigned DistExitPermille = 30;    // dist.worker.exit (_exit 137)
  unsigned DistHangPermille = 4;     // dist.worker.hang (go silent)
  unsigned DistCorruptPermille = 20; // dist.frame.corrupt (flip a byte)
  /// Cooperative cancellation (Ctrl-C): sweeps stop between oracle
  /// checks, chaos runs abandon their partial merges, and fuzzMain
  /// prints a clean summary of what completed and exits 130/143.
  CancelToken Token;
};

struct FuzzReport {
  bool Diverged = false;
  /// The sweep was cut short by Opts.Token; counters cover the checks
  /// that did run, and Diverged is still trustworthy for them.
  bool Cancelled = false;
  std::string Benchmark;
  std::string Shape;  // shape name (suffix "+markers" for the variant).
  std::string Detail; // per-path values from the oracle.
  SegmentedInput Reproducer; // minimized.
  uint64_t Seed = 0;  // workload seed of the diverging round.
  unsigned long Checks = 0;
  unsigned PathsCompared = 0;
  /// Chaos mode only: faults actually fired and the recovery activity
  /// the runner reported while every check stayed bit-identical.
  uint64_t FaultFires = 0;
  DiffOracle::FaultStats Faults;
  /// Dist mode only: the distributed runtime's real recovery activity.
  DiffOracle::DistStats Dist;
};

/// Fuzzes one benchmark/plan pair; stops at the first divergence.
FuzzReport fuzzBenchmark(const lang::SerialProgram &Prog,
                         const synth::ParallelPlan &Plan,
                         const FuzzOptions &Opts);

/// The `grassp fuzz` entry point: synthesizes the requested benchmarks
/// (all 27 when \p Names is empty) on the parallel driver, fuzzes each,
/// prints a per-benchmark table plus any minimized reproducer, and
/// returns a process exit code (0 = no divergence).
int fuzzMain(const std::vector<std::string> &Names, const FuzzOptions &Opts,
             const synth::DriverOptions &DriverOpts);

} // namespace testing
} // namespace grassp

#endif // GRASSP_TESTING_FUZZ_H
