//===- testing/DiffOracle.cpp ---------------------------------------------==//

#include "testing/DiffOracle.h"

#include "codegen/CppCodegen.h"
#include "jit/NativeKernel.h"
#include "lang/Interp.h"
#include "runtime/MergeTree.h"
#include "runtime/Runner.h"
#include "runtime/SegmentSource.h"
#include "runtime/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#else
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace grassp {
namespace testing {

namespace {

std::unique_ptr<dist::DistCoordinator>
makePrewarmedCoordinator(const runtime::CompiledPlan &Plan,
                         const dist::DistConfig &Cfg) {
  auto C = std::make_unique<dist::DistCoordinator>(Plan, Cfg);
  C->prewarm();
  return C;
}

} // namespace

bool DiffOracle::hostCompilerAvailable() {
  // One probe for the whole process (shared with the native jit tier):
  // $CXX when set, g++ otherwise.
  return jit::hostCompilerAvailable();
}

DiffOracle::DiffOracle(const lang::SerialProgram &P,
                       const synth::ParallelPlan &PlanIn,
                       const OracleConfig &Cfg)
    : Prog(P), Plan(PlanIn), Compiled(P), CompiledPlanImpl(P, Plan),
      // Coordinator (with its worker pool prewarmed) strictly before
      // Pool in member order: the initial forks happen while this
      // process is still single-threaded.
      DistCoord(Cfg.UseDist
                    ? makePrewarmedCoordinator(CompiledPlanImpl, Cfg.Dist)
                    : nullptr),
      Pool(Cfg.Threads ? Cfg.Threads : 1), Policy(Cfg.Policy) {
  if (!Cfg.UseEmitted || !hostCompilerAvailable())
    return;
  codegen::CppEmitOptions EOpts;
  EOpts.NumThreads = Cfg.Threads ? Cfg.Threads : 1;
  EOpts.NumElements = 1024; // overridden by the file-input hook anyway.
  std::string Src = codegen::emitStandaloneCpp(Prog, Plan, EOpts);
  if (Src.empty())
    return; // no translation for this plan (e.g. CondPrefixRefold).

  // Scratch under $TMPDIR (fallback /tmp) — sandboxed CI jobs point
  // TMPDIR somewhere writable and nothing here may hardcode /tmp.
  std::string Template = jit::tempRootDir() + "/grassp_oracle_XXXXXX";
  char *Dir = mkdtemp(&Template[0]);
  if (!Dir)
    return;
  TmpDir = Dir;
  try {
    std::string SrcPath = TmpDir + "/gen.cpp";
    BinPath = TmpDir + "/gen";
    {
      std::ofstream Out(SrcPath);
      Out << Src;
    }
    // Quoted paths and $CXX: an oracle temp dir with shell
    // metacharacters must not silently change the command.
    std::string Compile = jit::shellQuote(jit::hostCxx()) +
                          " -std=c++17 -O1 -o " + jit::shellQuote(BinPath) +
                          " " + jit::shellQuote(SrcPath) + " -lpthread > " +
                          jit::shellQuote(TmpDir + "/cc.log") + " 2>&1";
    int Rc = std::system(Compile.c_str());
    EmittedReady = jit::waitStatusOk(Rc);
    if (!EmittedReady) {
      // The probe said a compiler exists, so a failing compile here is a
      // real defect (a bad translation, a crashed compiler) that check()
      // must surface as a divergence, not quietly run one path short.
      EmittedBroken = true;
      EmittedError = "emitted compile failed (" +
                     jit::describeWaitStatus(Rc) + ")";
      std::ifstream Log(TmpDir + "/cc.log");
      std::string Line, Last;
      while (std::getline(Log, Line))
        if (!Line.empty())
          Last = Line;
      if (!Last.empty())
        EmittedError += ": " + Last;
      // The compile log is folded into EmittedError above, so the
      // scratch dir has nothing left to say — remove it now rather
      // than holding a dead dir for the oracle's whole lifetime.
      removeScratch();
    }
  } catch (...) {
    // A throwing constructor never runs the destructor: the failure
    // and cancellation paths must clean the scratch dir themselves.
    removeScratch();
    throw;
  }
}

void DiffOracle::removeScratch() {
  if (TmpDir.empty())
    return;
  // Best-effort cleanup of the fixed file set; the dir itself last.
  for (const char *F : {"/gen.cpp", "/gen", "/cc.log", "/in.txt", "/out.txt"})
    std::remove((TmpDir + F).c_str());
  rmdir(TmpDir.c_str());
  TmpDir.clear();
  EmittedReady = false;
}

DiffOracle::~DiffOracle() { removeScratch(); }

bool DiffOracle::runEmitted(const std::vector<int64_t> &Flat,
                            int64_t *SerialOut, int64_t *ParallelOut,
                            std::string *Error) {
  std::string InPath = TmpDir + "/in.txt";
  std::string OutPath = TmpDir + "/out.txt";
  {
    // Headered form: the emitted parser verifies the count, so a
    // truncated write surfaces as a parse error, not a wrong answer.
    std::ofstream In(InPath);
    In << runtime::workloadFileHeader(Flat.size()) << '\n';
    for (int64_t V : Flat)
      In << V << '\n';
  }
  std::string Cmd = jit::shellQuote(BinPath) + " " +
                    jit::shellQuote(InPath) + " > " +
                    jit::shellQuote(OutPath) + " 2>&1";
  int Rc = std::system(Cmd.c_str());
  // Decode the wait status first: a binary that never ran or died on a
  // signal produced no verdict at all, which is an oracle failure — not
  // a silent agreement.
  if (Rc == -1 || (!WIFEXITED(Rc) && !WIFSIGNALED(Rc))) {
    if (Error)
      *Error = "emitted binary did not run (" +
               jit::describeWaitStatus(Rc) + ")";
    return false;
  }
  if (WIFSIGNALED(Rc)) {
    if (Error)
      *Error = "emitted binary " + jit::describeWaitStatus(Rc);
    return false;
  }
  std::ifstream Out(OutPath);
  std::string Line;
  std::getline(Out, Line);
  long long S = 0, Par = 0;
  if (std::sscanf(Line.c_str(), "serial=%lld parallel=%lld", &S, &Par) !=
      2) {
    if (Error)
      *Error = "unparsable output (" + jit::describeWaitStatus(Rc) +
               "): \"" + Line + "\"";
    return false;
  }
  *SerialOut = S;
  *ParallelOut = Par;
  // A nonzero *exit* is fine here: it means the binary's own self-check
  // already saw the serial/parallel mismatch, and the parsed values
  // carry the detail to the divergence report.
  return true;
}

OracleVerdict DiffOracle::check(const SegmentedInput &Segs) {
  ++Checks;
  std::vector<int64_t> Flat;
  std::vector<size_t> Lens;
  Lens.reserve(Segs.size());
  for (const std::vector<int64_t> &S : Segs) {
    Flat.insert(Flat.end(), S.begin(), S.end());
    Lens.push_back(S.size());
  }

  OracleVerdict V;
  V.Expected = lang::runSerial(Prog, Flat);

  std::vector<runtime::SegmentView> Views =
      runtime::segmentsFromLengths(Flat, Lens);
  // One value per available execution tier; each is its own path.
  struct TierRun {
    runtime::ExecTier T;
    const char *Name;
    bool Active = false;
    int64_t Value = 0;
  };
  TierRun Tiers[] = {{runtime::ExecTier::PerElement, "vm"},
                     {runtime::ExecTier::LoopVM, "loop-vm"},
                     {runtime::ExecTier::Native, "native"},
                     {runtime::ExecTier::Specialized, "fused"}};
  for (TierRun &R : Tiers) {
    if (!Compiled.tierAvailable(R.T))
      continue;
    R.Active = true;
    R.Value = Compiled.runSerialTier(R.T, Views);
  }
  runtime::ParallelRunResult PR =
      runtime::runParallel(CompiledPlanImpl, Views, &Pool, Policy);
  if (PR.Cancelled)
    return V; // cut mid-run: no parallel output exists, so no verdict.
  int64_t Par = PR.Output;
  Faults.FailedAttempts += PR.FailedAttempts;
  Faults.Retries += PR.Retries;
  Faults.SpeculativeLaunches += PR.SpeculativeLaunches;
  Faults.SpeculativeWins += PR.SpeculativeWins;
  Faults.SerialRefolds += PR.SerialRefolds;

  // Out-of-core + streaming paths: the same workload through a chunked
  // SegmentSource (source-backed runParallel) and through the MergeTree
  // (append one chunk at a time, query the root). Chunk geometry is
  // deliberately different from the segment shape, so chunk/segment
  // boundary mismatches are exercised on every fuzzed workload.
  bool SourceActive = !Flat.empty();
  int64_t SourceVal = 0, TreeVal = 0;
  if (SourceActive) {
    runtime::SourceOptions SOpts;
    SOpts.ChunkElems = std::max<size_t>(1, Flat.size() / 7);
    SOpts.MinChunks = 3;
    runtime::VectorSource Src(Flat, SOpts);
    runtime::ParallelRunResult SR =
        runtime::runParallel(CompiledPlanImpl, Src, &Pool, Policy);
    if (SR.Cancelled)
      return V;
    SourceVal = SR.Output;
    runtime::MergeTree Tree(CompiledPlanImpl);
    std::unique_ptr<runtime::SegmentCursor> C = Src.cursor();
    for (size_t I = 0; I != Src.chunkCount(); ++I)
      Tree.append(C->chunk(I));
    TreeVal = Tree.query();
  }

  // The multi-process path: real forked workers, real sockets, and —
  // when the dist.* fault sites are armed — real kills mid-fold. The
  // coordinator recovers however it must (reassignment, backups, serial
  // refold); the answer still has to match the interpreter exactly.
  bool DistOn = DistCoord != nullptr;
  int64_t DistVal = 0;
  if (DistOn) {
    dist::DistRunReport DR = DistCoord->run(Views);
    if (DR.Cancelled)
      return V;
    DistVal = DR.Output;
    ++DistSt.Runs;
    DistSt.WorkersKilled += DR.WorkersKilled;
    DistSt.WorkersExited += DR.WorkersExited;
    DistSt.WorkersRestarted += DR.WorkersRestarted;
    DistSt.ShardsReassigned += DR.ShardsReassigned;
    DistSt.SpeculativeLaunches += DR.SpeculativeLaunches;
    DistSt.SpeculativeWins += DR.SpeculativeWins;
    DistSt.CorruptFrames += DR.CorruptFrames;
    DistSt.HangsDetected += DR.HangsDetected;
    DistSt.SerialRefolds += DR.SerialRefolds;
  }

  bool EmittedOk = true;
  int64_t EmSerial = 0, EmParallel = 0;
  std::string EmittedFailure;
  if (EmittedBroken) {
    // The translation exists but would not compile: a defect, not an
    // absent path.
    EmittedOk = false;
    EmittedFailure = EmittedError;
  } else if (EmittedReady) {
    EmittedOk = runEmitted(Flat, &EmSerial, &EmParallel, &EmittedFailure);
  }

  bool Agree = Par == V.Expected && !EmittedBroken &&
               (!EmittedReady ||
                (EmittedOk && EmSerial == V.Expected &&
                 EmParallel == V.Expected));
  for (const TierRun &R : Tiers)
    Agree &= !R.Active || R.Value == V.Expected;
  Agree &= !SourceActive ||
           (SourceVal == V.Expected && TreeVal == V.Expected);
  Agree &= !DistOn || DistVal == V.Expected;
  if (Agree)
    return V;

  V.Diverged = true;
  std::ostringstream D;
  D << "interp=" << V.Expected;
  for (const TierRun &R : Tiers)
    if (R.Active)
      D << ' ' << R.Name << '=' << R.Value;
  D << " plan+pool=" << Par;
  if (SourceActive)
    D << " source+pool=" << SourceVal << " merge-tree=" << TreeVal;
  if (DistOn)
    D << " dist=" << DistVal;
  if (EmittedReady || EmittedBroken) {
    if (EmittedOk)
      D << " emitted-serial=" << EmSerial << " emitted-parallel="
        << EmParallel;
    else
      D << " emitted=<" << EmittedFailure << ">";
  }
  V.Detail = D.str();
  return V;
}

SegmentedInput DiffOracle::minimize(SegmentedInput Segs, unsigned MaxChecks) {
  unsigned Budget = MaxChecks;
  auto stillDiverges = [&](const SegmentedInput &Cand) {
    if (Budget == 0)
      return false;
    --Budget;
    return check(Cand).Diverged;
  };

  bool Progress = true;
  while (Progress && Budget != 0) {
    Progress = false;

    // Drop whole segments.
    for (size_t I = 0; I < Segs.size() && Segs.size() > 1;) {
      SegmentedInput Cand = Segs;
      Cand.erase(Cand.begin() + I);
      if (stillDiverges(Cand)) {
        Segs = std::move(Cand);
        Progress = true;
      } else {
        ++I;
      }
    }

    // Bisection-shrink each segment: drop its first or second half.
    for (size_t I = 0; I < Segs.size(); ++I) {
      while (Segs[I].size() > 1 && Budget != 0) {
        size_t Half = Segs[I].size() / 2;
        SegmentedInput Front = Segs;
        Front[I].erase(Front[I].begin(), Front[I].begin() + Half);
        if (stillDiverges(Front)) {
          Segs = std::move(Front);
          Progress = true;
          continue;
        }
        SegmentedInput Back = Segs;
        Back[I].erase(Back[I].begin() + Half, Back[I].end());
        if (stillDiverges(Back)) {
          Segs = std::move(Back);
          Progress = true;
          continue;
        }
        break;
      }
    }

    // Drop single elements.
    for (size_t I = 0; I < Segs.size(); ++I) {
      for (size_t J = 0; J < Segs[I].size() && Budget != 0;) {
        SegmentedInput Cand = Segs;
        Cand[I].erase(Cand[I].begin() + J);
        if (stillDiverges(Cand)) {
          Segs = std::move(Cand);
          Progress = true;
        } else {
          ++J;
        }
      }
    }
  }
  return Segs;
}

std::string DiffOracle::formatInput(const SegmentedInput &Segs) {
  std::ostringstream OS;
  OS << Segs.size() << " segment" << (Segs.size() == 1 ? "" : "s") << " [";
  for (size_t I = 0; I != Segs.size(); ++I) {
    if (I)
      OS << " |";
    for (int64_t V : Segs[I])
      OS << ' ' << V;
    if (Segs[I].empty())
      OS << ' ';
  }
  OS << " ]";
  return OS.str();
}

} // namespace testing
} // namespace grassp
