//===- runtime/MergeTree.cpp ---------------------------------------------===//

#include "runtime/MergeTree.h"

#include "runtime/DistinctSet.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace grassp {
namespace runtime {

MergeTree::MergeTree(const CompiledPlan &Plan)
    : Plan(Plan),
      Sup(Plan.plan().Kind == synth::Scenario::NoPrefix ||
                  Plan.plan().Kind == synth::Scenario::ConstPrefix
              ? Support::LogPath
              : Support::LinearMerge),
      Refold(Plan.plan().Merge.Refold),
      PrefixLen(Plan.plan().Kind == synth::Scenario::ConstPrefix
                    ? Plan.plan().PrefixLen
                    : 0) {}

MergeTree::Node MergeTree::makeLeaf(SegmentView Chunk) const {
  Node L;
  WorkerOutput W = Plan.runWorker(Chunk);
  if (Refold) {
    L.Distinct = std::move(W.Distinct);
    return L;
  }
  L.Right = std::move(W.D);
  if (PrefixLen != 0)
    L.Head.assign(Chunk.Data,
                  Chunk.Data + std::min<size_t>(PrefixLen, Chunk.Size));
  return L;
}

MergeTree::Node MergeTree::combine(const Node &A, const Node &B) const {
  Node N;
  if (Refold) {
    DistinctSet All;
    for (int64_t V : A.Distinct)
      All.insert(V);
    for (int64_t V : B.Distinct)
      All.insert(V);
    N.Distinct = All.takeOrder();
    return N;
  }
  // Repair A's rightmost chunk state with the head of the chunk that
  // follows it — B's leftmost (what the flat ConstPrefix merge does;
  // no-op for NoPrefix, whose Head is empty).
  std::vector<int64_t> AR = A.Right;
  if (!B.Head.empty())
    Plan.compiled().foldSegment(AR, {B.Head.data(), B.Head.size()});
  std::vector<int64_t> S = A.HasState ? Plan.mergeStates(A.State, AR) : AR;
  if (B.HasState)
    S = Plan.mergeStates(S, B.State);
  N.HasState = true;
  N.State = std::move(S);
  N.Right = B.Right;
  N.Head = A.Head;
  return N;
}

void MergeTree::updatePath(size_t Leaf) {
  LastCombines = 0;
  size_t I = Leaf;
  for (size_t K = 0; K + 1 < Levels.size() || Levels.back().size() > 1;
       ++K) {
    if (K + 1 == Levels.size())
      Levels.emplace_back();
    std::vector<Node> &Up = Levels[K + 1];
    size_t Parent = I / 2;
    if (Up.size() <= Parent)
      Up.resize(Parent + 1);
    const std::vector<Node> &Cur = Levels[K];
    size_t Lc = Parent * 2, Rc = Lc + 1;
    if (Rc < Cur.size()) {
      Up[Parent] = combine(Cur[Lc], Cur[Rc]);
      ++LastCombines;
    } else {
      // Odd tail: carried up unchanged until it gains a right sibling.
      Up[Parent] = Cur[Lc];
    }
    I = Parent;
    if (Levels[K + 1].size() == 1 && K + 2 == Levels.size())
      break;
  }
}

void MergeTree::append(SegmentView Chunk) {
  if (Chunk.Size == 0)
    throw std::invalid_argument("MergeTree::append: empty chunk "
                                "(sources never produce one)");
  if (Sup == Support::LinearMerge) {
    Leaves.push_back(Plan.runWorker(Chunk));
    LastCombines = Leaves.size() - 1;
  } else {
    if (Levels.empty())
      Levels.emplace_back();
    Levels[0].push_back(makeLeaf(Chunk));
    updatePath(Levels[0].size() - 1);
  }
  ChunkSizes.push_back(Chunk.Size);
  NumElements += Chunk.Size;
}

void MergeTree::replace(size_t I, SegmentView Chunk) {
  if (I >= chunks())
    throw std::out_of_range("MergeTree::replace: chunk " +
                            std::to_string(I) + " out of range (have " +
                            std::to_string(chunks()) + ")");
  if (Chunk.Size == 0)
    throw std::invalid_argument("MergeTree::replace: empty chunk "
                                "(sources never produce one)");
  if (Sup == Support::LinearMerge) {
    Leaves[I] = Plan.runWorker(Chunk);
    LastCombines = Leaves.size() - 1;
  } else {
    Levels[0][I] = makeLeaf(Chunk);
    updatePath(I);
  }
  NumElements += Chunk.Size;
  NumElements -= ChunkSizes[I];
  ChunkSizes[I] = Chunk.Size;
}

int64_t MergeTree::query() const {
  if (chunks() == 0)
    throw std::logic_error("MergeTree::query: no chunks appended");
  if (Sup == Support::LinearMerge) {
    // Conditional-prefix summaries compose left-to-right; re-merge the
    // tiny per-chunk outputs (no chunk data is touched). merge() reads
    // nothing from the views for these plans beyond their count.
    std::vector<SegmentView> Segs(Leaves.size());
    for (size_t K = 0; K != Leaves.size(); ++K)
      Segs[K] = {nullptr, ChunkSizes[K]};
    return Plan.merge(Leaves, Segs);
  }
  const Node &Root = Levels.back().front();
  if (Refold)
    return static_cast<int64_t>(Root.Distinct.size());
  // The flat merge never repairs the final segment's state, so the
  // root's Right joins here, at the very end.
  if (!Root.HasState)
    return Plan.compiled().output(Root.Right);
  return Plan.compiled().output(Plan.mergeStates(Root.State, Root.Right));
}

} // namespace runtime
} // namespace grassp
