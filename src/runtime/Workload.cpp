//===- runtime/Workload.cpp ------------------------------------------------=//

#include "runtime/Workload.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>

namespace grassp {
namespace runtime {

std::vector<int64_t> generateWorkload(const lang::SerialProgram &Prog,
                                      size_t N, uint64_t Seed) {
  Rng R(Seed);
  std::vector<int64_t> Out;
  Out.reserve(N);

  if (Prog.Name == "is_sorted") {
    // Nearly sorted ("system log files consistent with system time").
    int64_t Cur = 0;
    for (size_t I = 0; I != N; ++I) {
      Cur += static_cast<int64_t>(R.next() % 3);
      Out.push_back(Cur);
    }
    return Out;
  }
  if (Prog.Name == "all_equal") {
    Out.assign(N, 5);
    return Out;
  }
  if (Prog.Name == "alternating01") {
    for (size_t I = 0; I != N; ++I)
      Out.push_back(static_cast<int64_t>(I & 1));
    return Out;
  }
  if (Prog.Name == "count_distinct") {
    // Skewed stream reproducing the paper's superlinear observation: the
    // first eighth carries many distinct values, the rest only a few, so
    // a serial linear-search membership structure pays the full distinct
    // count on every later element while per-thread structures stay tiny.
    size_t Head = N / 8;
    for (size_t I = 0; I != N; ++I)
      Out.push_back(I < Head ? R.range(0, 1500) : 1600 + R.range(0, 9));
    return Out;
  }
  if (!Prog.InputAlphabet.empty()) {
    // Alphabet streams; markers (the boundary symbols) appear with their
    // natural uniform frequency, which keeps conditional prefixes short.
    return randomFromAlphabet(R, Prog.InputAlphabet, N);
  }
  return randomInRange(R, Prog.GenLo, Prog.GenHi, N);
}

std::vector<SegmentView> partition(const std::vector<int64_t> &Data,
                                   unsigned M) {
  assert(Data.size() >= M && M > 0 && "not enough data for M segments");
  std::vector<SegmentView> Segs;
  Segs.reserve(M);
  size_t N = Data.size();
  size_t Base = N / M, Rem = N % M;
  size_t Off = 0;
  for (unsigned I = 0; I != M; ++I) {
    size_t Len = Base + (I < Rem ? 1 : 0);
    Segs.push_back({Data.data() + Off, Len});
    Off += Len;
  }
  assert(Off == N && "partition must cover the data");
  return Segs;
}

} // namespace runtime
} // namespace grassp
