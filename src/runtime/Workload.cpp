//===- runtime/Workload.cpp ------------------------------------------------=//

#include "runtime/Workload.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <stdexcept>

namespace grassp {
namespace runtime {

WorkloadStream::WorkloadStream(const lang::SerialProgram &Prog,
                               size_t TotalN, uint64_t Seed,
                               const WorkloadOptions &Opts)
    : Prog(Prog), TotalN(TotalN), Opts(Opts), R(Seed) {}

size_t WorkloadStream::generate(size_t Count, std::vector<int64_t> &Out) {
  size_t N = std::min(Count, remaining());
  Out.reserve(Out.size() + N);

  if (Prog.Name == "is_sorted") {
    // Nearly sorted ("system log files consistent with system time"),
    // with rare injected inversions so both outcomes of the sortedness
    // check occur across seeds.
    for (size_t K = 0; K != N; ++K) {
      size_t I = Produced + K;
      if (I != 0 && Opts.SortedInversionPerMille != 0 &&
          R.chance(Opts.SortedInversionPerMille, 1000))
        SortedCur -= 1 + static_cast<int64_t>(R.next() % 3);
      else
        SortedCur += static_cast<int64_t>(R.next() % 3);
      Out.push_back(SortedCur);
    }
  } else if (Prog.Name == "all_equal") {
    Out.insert(Out.end(), N, 5);
  } else if (Prog.Name == "alternating01") {
    for (size_t K = 0; K != N; ++K)
      Out.push_back(static_cast<int64_t>((Produced + K) & 1));
  } else if (Prog.Name == "count_distinct") {
    // Skewed stream reproducing the paper's superlinear observation: the
    // first eighth carries many distinct values, the rest only a few, so
    // a serial linear-search membership structure pays the full distinct
    // count on every later element while per-thread structures stay tiny.
    size_t Head = TotalN / 8;
    for (size_t K = 0; K != N; ++K)
      Out.push_back(Produced + K < Head ? R.range(0, 1500)
                                        : 1600 + R.range(0, 9));
  } else if (!Prog.InputAlphabet.empty()) {
    // Alphabet streams; markers (the boundary symbols) appear with their
    // natural uniform frequency, which keeps conditional prefixes short.
    for (size_t K = 0; K != N; ++K)
      Out.push_back(Prog.InputAlphabet[R.bounded(Prog.InputAlphabet.size())]);
  } else {
    for (size_t K = 0; K != N; ++K)
      Out.push_back(R.range(Prog.GenLo, Prog.GenHi));
  }
  Produced += N;
  return N;
}

std::vector<int64_t> generateWorkload(const lang::SerialProgram &Prog,
                                      size_t N, uint64_t Seed,
                                      const WorkloadOptions &Opts) {
  std::vector<int64_t> Out;
  WorkloadStream(Prog, N, Seed, Opts).generate(N, Out);
  return Out;
}

WorkloadParseError::WorkloadParseError(std::string File, unsigned Line,
                                       std::string Reason)
    : std::runtime_error(File + ":" + std::to_string(Line) + ": " + Reason),
      FileName(std::move(File)), LineNo(Line), Why(std::move(Reason)) {}

std::string workloadFileHeader(size_t Count) {
  return "# grassp-workload " + std::to_string(Count);
}

bool parseWorkloadElement(std::string Line, int64_t *Out) {
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  if (Line.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Line.c_str(), &End, 10);
  if (End == Line.c_str() || *End != '\0' || errno == ERANGE)
    return false;
  *Out = static_cast<int64_t>(V);
  return true;
}

bool parseWorkloadHeader(const std::string &Stripped, uint64_t *Count,
                         std::string *Reason) {
  // Must be the exact header: "# grassp-workload <count>".
  const std::string Tag = "# grassp-workload ";
  if (Stripped.compare(0, Tag.size(), Tag) != 0) {
    if (Reason)
      *Reason = "unrecognized header (expected '# grassp-workload "
                "<count>')";
    return false;
  }
  std::string CountStr = Stripped.substr(Tag.size());
  errno = 0;
  char *End = nullptr;
  unsigned long long C = std::strtoull(CountStr.c_str(), &End, 10);
  if (End == CountStr.c_str() || *End != '\0' || errno == ERANGE ||
      CountStr.front() == '-') {
    if (Reason)
      *Reason = "malformed element count '" + CountStr + "' in header";
    return false;
  }
  *Count = static_cast<uint64_t>(C);
  return true;
}

std::vector<int64_t> loadWorkloadFile(const std::string &Path,
                                      uint64_t MaxElems) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In)
    throw WorkloadParseError(Path, 0, "cannot open file");
  // Bytes on disk bound the sane reserve: every element line is at
  // least two bytes ("0\n"), so a header declaring more than bytes/2
  // elements is lying and must not drive the allocation.
  uint64_t FileBytes =
      static_cast<uint64_t>(std::max<std::streamoff>(0, In.tellg()));
  In.seekg(0);

  std::vector<int64_t> Out;
  bool HaveHeader = false;
  size_t Declared = 0;
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::string Stripped = Line;
    if (!Stripped.empty() && Stripped.back() == '\r')
      Stripped.pop_back();
    if (!Stripped.empty() && Stripped.front() == '#') {
      if (LineNo != 1)
        throw WorkloadParseError(Path, LineNo,
                                 "comment lines are only allowed as the "
                                 "first-line header");
      uint64_t C = 0;
      std::string Reason;
      if (!parseWorkloadHeader(Stripped, &C, &Reason))
        throw WorkloadParseError(Path, LineNo, Reason);
      if (MaxElems != 0 && C > MaxElems)
        throw WorkloadParseError(
            Path, LineNo,
            "header declares " + std::to_string(C) +
                " elements, over the --max-elems cap of " +
                std::to_string(MaxElems));
      HaveHeader = true;
      Declared = static_cast<size_t>(C);
      Out.reserve(static_cast<size_t>(
          std::min<uint64_t>(Declared, FileBytes / 2 + 1)));
      continue;
    }
    int64_t V = 0;
    if (!parseWorkloadElement(Line, &V))
      throw WorkloadParseError(Path, LineNo,
                               "malformed element '" + Stripped +
                                   "' (expected one decimal int64 per "
                                   "line)");
    if (MaxElems != 0 && Out.size() == MaxElems)
      throw WorkloadParseError(Path, LineNo,
                               "file holds more than the --max-elems cap "
                               "of " + std::to_string(MaxElems) +
                                   " element(s)");
    Out.push_back(V);
  }
  if (In.bad())
    throw WorkloadParseError(Path, LineNo, "read error");
  if (HaveHeader && Out.size() != Declared)
    throw WorkloadParseError(
        Path, 0,
        "element count mismatch: header declares " +
            std::to_string(Declared) + " but file holds " +
            std::to_string(Out.size()) +
            (Out.size() < Declared ? " (truncated file?)" : ""));
  return Out;
}

std::vector<SegmentView> partition(const std::vector<int64_t> &Data,
                                   unsigned M) {
  if (M == 0 || Data.size() < M)
    throw std::invalid_argument(
        "runtime::partition: need 0 < M <= Data.size() (M=" +
        std::to_string(M) + ", N=" + std::to_string(Data.size()) +
        "); use segmentsFromLengths for degenerate shapes");
  std::vector<SegmentView> Segs;
  Segs.reserve(M);
  size_t N = Data.size();
  size_t Base = N / M, Rem = N % M;
  size_t Off = 0;
  for (unsigned I = 0; I != M; ++I) {
    size_t Len = Base + (I < Rem ? 1 : 0);
    Segs.push_back({Data.data() + Off, Len});
    Off += Len;
  }
  assert(Off == N && "partition must cover the data");
  return Segs;
}

std::vector<SegmentView> segmentsFromLengths(const std::vector<int64_t> &Data,
                                             const std::vector<size_t> &Lens) {
  size_t Total = std::accumulate(Lens.begin(), Lens.end(), size_t{0});
  if (Total != Data.size())
    throw std::invalid_argument(
        "runtime::segmentsFromLengths: lengths sum to " +
        std::to_string(Total) + " but Data has " +
        std::to_string(Data.size()) + " elements");
  std::vector<SegmentView> Segs;
  Segs.reserve(Lens.size());
  size_t Off = 0;
  for (size_t Len : Lens) {
    Segs.push_back({Data.data() + Off, Len});
    Off += Len;
  }
  return Segs;
}

namespace {

/// Near-equal lengths (the partition() split), but tolerating M > N by
/// letting trailing segments go empty.
std::vector<size_t> nearEqualLens(size_t N, unsigned M) {
  std::vector<size_t> Lens(M, 0);
  size_t Base = M ? N / M : 0, Rem = M ? N % M : 0;
  for (unsigned I = 0; I != M; ++I)
    Lens[I] = Base + (I < Rem ? 1 : 0);
  return Lens;
}

} // namespace

std::vector<SegmentShape> adversarialShapes(size_t N, unsigned M) {
  std::vector<SegmentShape> Shapes;
  if (M == 0)
    return Shapes;
  auto Add = [&](std::string Name, std::vector<size_t> Lens) {
    // Dedup: degenerate N/M make several recipes coincide.
    for (const SegmentShape &S : Shapes)
      if (S.Lens == Lens)
        return;
    Shapes.push_back({std::move(Name), std::move(Lens)});
  };

  Add("near-equal", nearEqualLens(N, M));

  if (M > 1) {
    // Empty segment at the front, middle, and back.
    std::vector<size_t> Rest = nearEqualLens(N, M - 1);
    std::vector<size_t> Front = Rest;
    Front.insert(Front.begin(), 0);
    Add("empty-first", Front);
    std::vector<size_t> Mid = Rest;
    Mid.insert(Mid.begin() + Mid.size() / 2, 0);
    Add("empty-middle", Mid);
    std::vector<size_t> Back = Rest;
    Back.push_back(0);
    Add("empty-last", Back);

    // All data in one segment, everything else empty.
    std::vector<size_t> First(M, 0);
    First[0] = N;
    Add("all-in-first", First);
    std::vector<size_t> Last(M, 0);
    Last[M - 1] = N;
    Add("all-in-last", Last);

    // Length-1 head segments; the remainder lands in the last segment.
    std::vector<size_t> Ones(M, 0);
    size_t Left = N;
    for (unsigned I = 0; I + 1 < M && Left != 0; ++I) {
      Ones[I] = 1;
      --Left;
    }
    Ones[M - 1] += Left;
    Add("length-1-head", Ones);

    // Data only in every other segment (empty segments interleaved).
    std::vector<size_t> Alt(M, 0);
    unsigned Holders = (M + 1) / 2;
    std::vector<size_t> Packed = nearEqualLens(N, Holders);
    for (unsigned I = 0; I != Holders; ++I)
      Alt[2 * I] = Packed[I];
    Add("alternating-empty", Alt);
  }
  return Shapes;
}

} // namespace runtime
} // namespace grassp
