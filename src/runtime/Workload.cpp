//===- runtime/Workload.cpp ------------------------------------------------=//

#include "runtime/Workload.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace grassp {
namespace runtime {

std::vector<int64_t> generateWorkload(const lang::SerialProgram &Prog,
                                      size_t N, uint64_t Seed,
                                      const WorkloadOptions &Opts) {
  Rng R(Seed);
  std::vector<int64_t> Out;
  Out.reserve(N);

  if (Prog.Name == "is_sorted") {
    // Nearly sorted ("system log files consistent with system time"),
    // with rare injected inversions so both outcomes of the sortedness
    // check occur across seeds.
    int64_t Cur = 0;
    for (size_t I = 0; I != N; ++I) {
      if (I != 0 && Opts.SortedInversionPerMille != 0 &&
          R.chance(Opts.SortedInversionPerMille, 1000))
        Cur -= 1 + static_cast<int64_t>(R.next() % 3);
      else
        Cur += static_cast<int64_t>(R.next() % 3);
      Out.push_back(Cur);
    }
    return Out;
  }
  if (Prog.Name == "all_equal") {
    Out.assign(N, 5);
    return Out;
  }
  if (Prog.Name == "alternating01") {
    for (size_t I = 0; I != N; ++I)
      Out.push_back(static_cast<int64_t>(I & 1));
    return Out;
  }
  if (Prog.Name == "count_distinct") {
    // Skewed stream reproducing the paper's superlinear observation: the
    // first eighth carries many distinct values, the rest only a few, so
    // a serial linear-search membership structure pays the full distinct
    // count on every later element while per-thread structures stay tiny.
    size_t Head = N / 8;
    for (size_t I = 0; I != N; ++I)
      Out.push_back(I < Head ? R.range(0, 1500) : 1600 + R.range(0, 9));
    return Out;
  }
  if (!Prog.InputAlphabet.empty()) {
    // Alphabet streams; markers (the boundary symbols) appear with their
    // natural uniform frequency, which keeps conditional prefixes short.
    return randomFromAlphabet(R, Prog.InputAlphabet, N);
  }
  return randomInRange(R, Prog.GenLo, Prog.GenHi, N);
}

std::vector<SegmentView> partition(const std::vector<int64_t> &Data,
                                   unsigned M) {
  if (M == 0 || Data.size() < M)
    throw std::invalid_argument(
        "runtime::partition: need 0 < M <= Data.size() (M=" +
        std::to_string(M) + ", N=" + std::to_string(Data.size()) +
        "); use segmentsFromLengths for degenerate shapes");
  std::vector<SegmentView> Segs;
  Segs.reserve(M);
  size_t N = Data.size();
  size_t Base = N / M, Rem = N % M;
  size_t Off = 0;
  for (unsigned I = 0; I != M; ++I) {
    size_t Len = Base + (I < Rem ? 1 : 0);
    Segs.push_back({Data.data() + Off, Len});
    Off += Len;
  }
  assert(Off == N && "partition must cover the data");
  return Segs;
}

std::vector<SegmentView> segmentsFromLengths(const std::vector<int64_t> &Data,
                                             const std::vector<size_t> &Lens) {
  size_t Total = std::accumulate(Lens.begin(), Lens.end(), size_t{0});
  if (Total != Data.size())
    throw std::invalid_argument(
        "runtime::segmentsFromLengths: lengths sum to " +
        std::to_string(Total) + " but Data has " +
        std::to_string(Data.size()) + " elements");
  std::vector<SegmentView> Segs;
  Segs.reserve(Lens.size());
  size_t Off = 0;
  for (size_t Len : Lens) {
    Segs.push_back({Data.data() + Off, Len});
    Off += Len;
  }
  return Segs;
}

namespace {

/// Near-equal lengths (the partition() split), but tolerating M > N by
/// letting trailing segments go empty.
std::vector<size_t> nearEqualLens(size_t N, unsigned M) {
  std::vector<size_t> Lens(M, 0);
  size_t Base = M ? N / M : 0, Rem = M ? N % M : 0;
  for (unsigned I = 0; I != M; ++I)
    Lens[I] = Base + (I < Rem ? 1 : 0);
  return Lens;
}

} // namespace

std::vector<SegmentShape> adversarialShapes(size_t N, unsigned M) {
  std::vector<SegmentShape> Shapes;
  if (M == 0)
    return Shapes;
  auto Add = [&](std::string Name, std::vector<size_t> Lens) {
    // Dedup: degenerate N/M make several recipes coincide.
    for (const SegmentShape &S : Shapes)
      if (S.Lens == Lens)
        return;
    Shapes.push_back({std::move(Name), std::move(Lens)});
  };

  Add("near-equal", nearEqualLens(N, M));

  if (M > 1) {
    // Empty segment at the front, middle, and back.
    std::vector<size_t> Rest = nearEqualLens(N, M - 1);
    std::vector<size_t> Front = Rest;
    Front.insert(Front.begin(), 0);
    Add("empty-first", Front);
    std::vector<size_t> Mid = Rest;
    Mid.insert(Mid.begin() + Mid.size() / 2, 0);
    Add("empty-middle", Mid);
    std::vector<size_t> Back = Rest;
    Back.push_back(0);
    Add("empty-last", Back);

    // All data in one segment, everything else empty.
    std::vector<size_t> First(M, 0);
    First[0] = N;
    Add("all-in-first", First);
    std::vector<size_t> Last(M, 0);
    Last[M - 1] = N;
    Add("all-in-last", Last);

    // Length-1 head segments; the remainder lands in the last segment.
    std::vector<size_t> Ones(M, 0);
    size_t Left = N;
    for (unsigned I = 0; I + 1 < M && Left != 0; ++I) {
      Ones[I] = 1;
      --Left;
    }
    Ones[M - 1] += Left;
    Add("length-1-head", Ones);

    // Data only in every other segment (empty segments interleaved).
    std::vector<size_t> Alt(M, 0);
    unsigned Holders = (M + 1) / 2;
    std::vector<size_t> Packed = nearEqualLens(N, Holders);
    for (unsigned I = 0; I != Holders; ++I)
      Alt[2 * I] = Packed[I];
    Add("alternating-empty", Alt);
  }
  return Shapes;
}

} // namespace runtime
} // namespace grassp
