//===- runtime/SegmentSource.h - Out-of-core segment sources -------------===//
//
// The workload-side abstraction that lets every fold run over inputs far
// larger than RAM (the paper's experiments folded 95-126 GB mmap'ed
// files; see DESIGN.md "Out-of-core and streaming"). A SegmentSource
// describes an element stream carved into fixed chunks; a SegmentCursor
// materializes one chunk at a time, so the resident footprint of a fold
// is one chunk per concurrent reader — never the whole input.
//
// Three implementations:
//
//  * VectorSource      - the existing in-memory workload, zero-copy
//                        views (what generated workloads use);
//  * MmapFileSource    - a binary workload file, one page-aligned mmap
//                        *window* per chunk access with
//                        madvise(SEQUENTIAL) (a whole-file map would
//                        charge the full file against the address-space
//                        limit, which is exactly what out-of-core must
//                        avoid);
//  * ChunkedFileSource - a streaming reader with bounded buffering: one
//                        chunk-sized pread buffer per cursor for binary
//                        files, and a byte-offset chunk index + strict
//                        line reparse for text workload files (so even
//                        unconverted text inputs never materialize).
//
// Binary files carry an 8-byte magic + little-endian element count
// header ("grassp convert" writes them; see BinaryWorkloadMagic). Cursor
// creation is const and thread-safe: parallel workers each hold their
// own cursor and read disjoint chunks concurrently (pread / per-cursor
// mappings share the one O_RDONLY descriptor).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_RUNTIME_SEGMENTSOURCE_H
#define GRASSP_RUNTIME_SEGMENTSOURCE_H

#include "runtime/Workload.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace grassp {
namespace runtime {

/// Magic prefix of a binary workload file: 8 bytes, then the element
/// count as a little-endian uint64, then count little-endian int64
/// payload words. The trailing digit is the format version.
inline constexpr char BinaryWorkloadMagic[8] = {'G', 'R', 'S', 'P',
                                                'W', 'B', '0', '1'};
inline constexpr size_t BinaryWorkloadHeaderBytes = 16;

/// One-chunk-at-a-time reader over a SegmentSource. Cursors are cheap;
/// each concurrent reader owns one. The view returned by chunk()/head()
/// is valid until the next call on the same cursor or the cursor's
/// destruction.
class SegmentCursor {
public:
  virtual ~SegmentCursor() = default;

  /// Materializes chunk \p I (whole).
  virtual SegmentView chunk(size_t I) = 0;

  /// Materializes only the first min(N, chunkElems(I)) elements of
  /// chunk \p I — the constant-prefix merge repair needs segment heads,
  /// not whole segments. Default reads the whole chunk and truncates;
  /// file sources override with a bounded read.
  virtual SegmentView head(size_t I, size_t N);
};

/// An element stream of known length carved into contiguous chunks.
/// Chunk geometry is fixed at construction (see SourceOptions) and
/// identical across cursors, so "chunk I" names the same elements for
/// every reader and for the MergeTree's chunk index.
class SegmentSource {
public:
  virtual ~SegmentSource() = default;

  /// Total elements in the stream.
  virtual uint64_t elements() const = 0;
  /// Number of chunks covering the stream (>= 1; a zero-length stream
  /// is rejected at construction, mirroring runtime::partition()).
  virtual size_t chunkCount() const = 0;
  /// Element offset of chunk \p I's first element.
  uint64_t chunkBegin(size_t I) const;
  /// Elements in chunk \p I.
  size_t chunkElems(size_t I) const;
  /// New independent reader; const and thread-safe.
  virtual std::unique_ptr<SegmentCursor> cursor() const = 0;
  /// "memory" / "mmap" / "chunked" — for tier/source reporting.
  virtual const char *kind() const = 0;

  /// Zero-copy export for the distributed runtime: when the whole
  /// element stream is one contiguous run of little-endian int64 words
  /// inside one open file, reports the (O_RDONLY) fd and the byte
  /// offset of element 0 and returns true. Chunk geometry then gives
  /// every chunk a stable byte offset — ByteOffset + chunkBegin(I) * 8
  /// — that remote workers can mmap directly. Binary workload files
  /// (GRSPWB01) qualify with ByteOffset = BinaryWorkloadHeaderBytes;
  /// the default (in-memory vectors, text files) reports false and the
  /// caller falls back to copying transports.
  virtual bool contiguousByteRegion(int *Fd, uint64_t *ByteOffset) const {
    (void)Fd;
    (void)ByteOffset;
    return false;
  }

protected:
  /// Near-equal chunk geometry over \p N elements: every chunk holds
  /// Base or Base+1 elements (the partition() split generalized to a
  /// chunk-size target). Called once by each implementation's ctor.
  void initChunks(uint64_t N, size_t ChunkElemsTarget, size_t MinChunks);

  uint64_t NumElements = 0;
  size_t NumChunks = 0;
};

/// Geometry knobs shared by every source.
struct SourceOptions {
  /// Target elements per chunk (the bounded-buffer size for file
  /// sources: 1 Mi elements = 8 MiB per cursor).
  size_t ChunkElems = size_t{1} << 20;
  /// Lower bound on the chunk count, so a small input still fans out
  /// across parallel workers. Clamped to the element count — chunks are
  /// never empty.
  size_t MinChunks = 1;
};

/// The in-memory source: owns the vector, zero-copy chunk views.
class VectorSource : public SegmentSource {
public:
  /// Throws std::invalid_argument on an empty workload (callers see the
  /// same contract as partition()).
  explicit VectorSource(std::vector<int64_t> Data,
                        const SourceOptions &Opts = SourceOptions());

  uint64_t elements() const override { return NumElements; }
  size_t chunkCount() const override { return NumChunks; }
  std::unique_ptr<SegmentCursor> cursor() const override;
  const char *kind() const override { return "memory"; }

  const std::vector<int64_t> &data() const { return Data; }

private:
  std::vector<int64_t> Data;
};

/// Binary workload file via per-chunk mmap windows.
class MmapFileSource : public SegmentSource {
public:
  /// Throws WorkloadParseError on a missing/short/foreign file and
  /// std::invalid_argument (with the path) on a zero-length workload.
  explicit MmapFileSource(const std::string &Path,
                          const SourceOptions &Opts = SourceOptions());
  ~MmapFileSource() override;

  uint64_t elements() const override { return NumElements; }
  size_t chunkCount() const override { return NumChunks; }
  std::unique_ptr<SegmentCursor> cursor() const override;
  const char *kind() const override { return "mmap"; }
  bool contiguousByteRegion(int *OutFd, uint64_t *ByteOffset) const override {
    *OutFd = Fd;
    *ByteOffset = BinaryWorkloadHeaderBytes;
    return true;
  }

  const std::string &path() const { return Path; }

private:
  std::string Path;
  int Fd = -1;
};

/// Streaming reader with bounded buffering: binary files by pread, text
/// workload files by a byte-offset chunk index built in one up-front
/// scan (the scan itself holds no elements) and strict per-line reparse
/// on access.
class ChunkedFileSource : public SegmentSource {
public:
  /// Accepts binary and text workload files (sniffed by magic). Throws
  /// WorkloadParseError on malformed files, std::invalid_argument on a
  /// zero-length workload. \p MaxElems != 0 rejects larger inputs with
  /// a WorkloadParseError before any data is read.
  explicit ChunkedFileSource(const std::string &Path,
                             const SourceOptions &Opts = SourceOptions(),
                             uint64_t MaxElems = 0);
  ~ChunkedFileSource() override;

  uint64_t elements() const override { return NumElements; }
  size_t chunkCount() const override { return NumChunks; }
  std::unique_ptr<SegmentCursor> cursor() const override;
  const char *kind() const override { return "chunked"; }
  /// Binary files are a contiguous word region past the header; text
  /// files are line-encoded and must be reparsed, so they do not
  /// qualify.
  bool contiguousByteRegion(int *OutFd, uint64_t *ByteOffset) const override {
    if (Text)
      return false;
    *OutFd = Fd;
    *ByteOffset = BinaryWorkloadHeaderBytes;
    return true;
  }

  const std::string &path() const { return Path; }
  bool isText() const { return Text; }

private:
  std::string Path;
  int Fd = -1;
  bool Text = false;
  /// Text files only: byte offset of each chunk's first line (one entry
  /// per chunk plus the end sentinel).
  std::vector<uint64_t> TextChunkOffsets;
};

/// How openSegmentSource should back the file.
enum class SourceKind { Auto, Memory, Mmap, Chunked };

/// Parses "mem"/"memory", "mmap", "chunked", "auto"; false on others.
bool parseSourceKind(const char *Name, SourceKind *Out);
const char *sourceKindName(SourceKind K);

/// Opens \p Path as a segment source. Auto picks Mmap for binary files
/// and Memory (loadWorkloadFile) for text. Memory over text honors
/// \p MaxElems via loadWorkloadFile; Mmap demands a binary file (text
/// callers are pointed at `grassp convert` in the error). Throws
/// WorkloadParseError / std::invalid_argument as the sources do.
std::unique_ptr<SegmentSource>
openSegmentSource(const std::string &Path, SourceKind Kind,
                  const SourceOptions &Opts = SourceOptions(),
                  uint64_t MaxElems = 0);

/// True when \p Path starts with the binary workload magic.
bool isBinaryWorkloadFile(const std::string &Path);

/// Incremental writer for binary workload files: streams values out and
/// patches the element count on close(), so files of any size are
/// written with O(1) memory. The temp-file + rename publish means a
/// crashed writer never leaves a half-written file at \p Path.
class BinaryWorkloadWriter {
public:
  /// Throws WorkloadParseError (file-level) when the temp file cannot
  /// be created.
  explicit BinaryWorkloadWriter(const std::string &Path);
  /// Unlinks the temp file when close() was never reached.
  ~BinaryWorkloadWriter();

  void append(const int64_t *Vals, size_t N);
  void append(const std::vector<int64_t> &Vals) {
    append(Vals.data(), Vals.size());
  }
  /// Patches the header count, fsyncs, and renames into place. Throws
  /// WorkloadParseError on I/O errors.
  void close();

  uint64_t written() const { return Count; }

private:
  std::string Path, TmpPath;
  int Fd = -1;
  uint64_t Count = 0;
};

/// Streams a text workload file into the binary format (O(1) memory;
/// strict text parsing via the loadWorkloadFile grammar, header count
/// verified when present). Returns the element count.
uint64_t convertTextToBinary(const std::string &TextPath,
                             const std::string &BinPath,
                             uint64_t MaxElems = 0);

} // namespace runtime
} // namespace grassp

#endif // GRASSP_RUNTIME_SEGMENTSOURCE_H
