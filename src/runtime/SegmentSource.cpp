//===- runtime/SegmentSource.cpp -----------------------------------------===//

#include "runtime/SegmentSource.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

// The binary format is little-endian on disk and read back by plain
// int64 loads; a big-endian host would need byte swaps nobody has
// written.
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__) &&             \
    __BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__
#error "binary workload files assume a little-endian host"
#endif

namespace grassp {
namespace runtime {

namespace {

std::string errnoString() { return std::strerror(errno); }

/// pread that retries EINTR and short reads. Throws on error/EOF.
void preadFull(int Fd, void *Buf, size_t Bytes, uint64_t Off,
               const std::string &Path) {
  char *P = static_cast<char *>(Buf);
  while (Bytes != 0) {
    ssize_t N = ::pread(Fd, P, Bytes, static_cast<off_t>(Off));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      throw WorkloadParseError(Path, 0, "read error: " + errnoString());
    }
    if (N == 0)
      throw WorkloadParseError(Path, 0, "unexpected end of file");
    P += N;
    Off += static_cast<uint64_t>(N);
    Bytes -= static_cast<size_t>(N);
  }
}

/// write that retries EINTR and short writes. Throws on error.
void writeFull(int Fd, const void *Buf, size_t Bytes,
               const std::string &Path) {
  const char *P = static_cast<const char *>(Buf);
  while (Bytes != 0) {
    ssize_t N = ::write(Fd, P, Bytes);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      throw WorkloadParseError(Path, 0, "write error: " + errnoString());
    }
    P += N;
    Bytes -= static_cast<size_t>(N);
  }
}

int openReadOnly(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    throw WorkloadParseError(Path, 0, "cannot open file: " + errnoString());
  return Fd;
}

uint64_t fileBytes(int Fd, const std::string &Path) {
  struct stat St;
  if (::fstat(Fd, &St) != 0)
    throw WorkloadParseError(Path, 0, "stat failed: " + errnoString());
  return static_cast<uint64_t>(St.st_size);
}

void throwEmptyWorkload(const std::string &Path) {
  // Mirrors partition()'s contract: segment sources never produce empty
  // chunk sets, so a zero-length workload is rejected at open.
  throw std::invalid_argument("segment source: workload file '" + Path +
                              "' holds zero elements");
}

/// Reads + validates the binary header; returns the element count.
/// Enforces the exact payload size so truncated or trailing-garbage
/// files fail loudly.
uint64_t readBinaryCount(int Fd, const std::string &Path) {
  uint64_t Bytes = fileBytes(Fd, Path);
  if (Bytes < BinaryWorkloadHeaderBytes)
    throw WorkloadParseError(Path, 0,
                             "not a binary workload file (shorter than "
                             "the header)");
  char Header[BinaryWorkloadHeaderBytes];
  preadFull(Fd, Header, sizeof(Header), 0, Path);
  if (std::memcmp(Header, BinaryWorkloadMagic,
                  sizeof(BinaryWorkloadMagic)) != 0)
    throw WorkloadParseError(Path, 0,
                             "not a binary workload file (bad magic; "
                             "text inputs go through 'grassp convert')");
  uint64_t Count = 0;
  std::memcpy(&Count, Header + sizeof(BinaryWorkloadMagic), sizeof(Count));
  if (Count > (UINT64_MAX - BinaryWorkloadHeaderBytes) / sizeof(int64_t) ||
      Bytes != BinaryWorkloadHeaderBytes + Count * sizeof(int64_t))
    throw WorkloadParseError(
        Path, 0,
        "binary workload size mismatch: header declares " +
            std::to_string(Count) + " element(s) but the file holds " +
            std::to_string(Bytes) + " byte(s)");
  return Count;
}

uint64_t chunkByteOffset(uint64_t ElemBegin) {
  return BinaryWorkloadHeaderBytes + ElemBegin * sizeof(int64_t);
}

void checkChunkIndex(size_t I, size_t NumChunks) {
  if (I >= NumChunks)
    throw std::out_of_range("segment source: chunk " + std::to_string(I) +
                            " out of range (have " +
                            std::to_string(NumChunks) + ")");
}

//===----------------------------------------------------------------------===//
// Cursors
//===----------------------------------------------------------------------===//

class VectorCursor : public SegmentCursor {
public:
  VectorCursor(const SegmentSource &Src, const std::vector<int64_t> &Data)
      : Src(Src), Data(Data) {}

  SegmentView chunk(size_t I) override {
    checkChunkIndex(I, Src.chunkCount());
    return {Data.data() + Src.chunkBegin(I), Src.chunkElems(I)};
  }
  SegmentView head(size_t I, size_t N) override {
    SegmentView V = chunk(I);
    return {V.Data, std::min(N, V.Size)};
  }

private:
  const SegmentSource &Src;
  const std::vector<int64_t> &Data;
};

/// One live page-aligned window per cursor; remapped on every chunk()
/// so the resident footprint is a single chunk regardless of file size.
class MmapCursor : public SegmentCursor {
public:
  MmapCursor(const SegmentSource &Src, int Fd, std::string Path)
      : Src(Src), Fd(Fd), Path(std::move(Path)),
        Page(static_cast<size_t>(::sysconf(_SC_PAGESIZE))) {}
  ~MmapCursor() override { unmap(); }

  SegmentView chunk(size_t I) override { return window(I, Src.chunkElems(I)); }
  SegmentView head(size_t I, size_t N) override {
    return window(I, std::min(N, Src.chunkElems(I)));
  }

private:
  SegmentView window(size_t I, size_t Elems) {
    checkChunkIndex(I, Src.chunkCount());
    unmap();
    if (Elems == 0)
      return {nullptr, 0};
    uint64_t Off = chunkByteOffset(Src.chunkBegin(I));
    uint64_t Aligned = Off - Off % Page;
    size_t Lead = static_cast<size_t>(Off - Aligned);
    MapLen = Lead + Elems * sizeof(int64_t);
    Map = ::mmap(nullptr, MapLen, PROT_READ, MAP_PRIVATE,
                 Fd, static_cast<off_t>(Aligned));
    if (Map == MAP_FAILED) {
      Map = nullptr;
      MapLen = 0;
      throw WorkloadParseError(Path, 0, "mmap failed: " + errnoString());
    }
    // Advisory only; folds walk each window front to back exactly once.
    ::madvise(Map, MapLen, MADV_SEQUENTIAL);
    return {reinterpret_cast<const int64_t *>(static_cast<char *>(Map) + Lead),
            Elems};
  }

  void unmap() {
    if (Map) {
      ::munmap(Map, MapLen);
      Map = nullptr;
      MapLen = 0;
    }
  }

  const SegmentSource &Src;
  int Fd;
  std::string Path;
  size_t Page;
  void *Map = nullptr;
  size_t MapLen = 0;
};

/// Bounded-buffer binary reader: one chunk-sized pread buffer.
class BinaryChunkCursor : public SegmentCursor {
public:
  BinaryChunkCursor(const SegmentSource &Src, int Fd, std::string Path)
      : Src(Src), Fd(Fd), Path(std::move(Path)) {}

  SegmentView chunk(size_t I) override { return read(I, Src.chunkElems(I)); }
  SegmentView head(size_t I, size_t N) override {
    return read(I, std::min(N, Src.chunkElems(I)));
  }

private:
  SegmentView read(size_t I, size_t Elems) {
    checkChunkIndex(I, Src.chunkCount());
    Buf.resize(Elems);
    if (Elems != 0)
      preadFull(Fd, Buf.data(), Elems * sizeof(int64_t),
                chunkByteOffset(Src.chunkBegin(I)), Path);
    return {Buf.data(), Elems};
  }

  const SegmentSource &Src;
  int Fd;
  std::string Path;
  std::vector<int64_t> Buf;
};

/// Text reader: seeks to the chunk's byte offset (from the up-front
/// index) and strictly reparses exactly the chunk's lines. Each cursor
/// owns its stream, so concurrent cursors never share seek state.
class TextChunkCursor : public SegmentCursor {
public:
  TextChunkCursor(const SegmentSource &Src, std::string Path,
                  const std::vector<uint64_t> &Offsets)
      : Src(Src), Path(std::move(Path)), Offsets(Offsets), In(this->Path) {
    if (!In)
      throw WorkloadParseError(this->Path, 0,
                               "cannot open file: " + errnoString());
  }

  SegmentView chunk(size_t I) override { return read(I, Src.chunkElems(I)); }
  SegmentView head(size_t I, size_t N) override {
    return read(I, std::min(N, Src.chunkElems(I)));
  }

private:
  SegmentView read(size_t I, size_t Elems) {
    checkChunkIndex(I, Src.chunkCount());
    Buf.clear();
    Buf.reserve(Elems);
    In.clear();
    In.seekg(static_cast<std::streamoff>(Offsets[I]));
    std::string Line;
    for (size_t K = 0; K != Elems; ++K) {
      if (!std::getline(In, Line))
        throw WorkloadParseError(Path, 0,
                                 "file shrank under the streaming reader "
                                 "(chunk " + std::to_string(I) + ")");
      int64_t V = 0;
      if (!parseWorkloadElement(Line, &V))
        throw WorkloadParseError(Path, 0,
                                 "malformed element '" + Line +
                                     "' (file changed under the streaming "
                                     "reader?)");
      Buf.push_back(V);
    }
    return {Buf.data(), Buf.size()};
  }

  const SegmentSource &Src;
  std::string Path;
  const std::vector<uint64_t> &Offsets;
  std::ifstream In;
  std::vector<int64_t> Buf;
};

} // namespace

//===----------------------------------------------------------------------===//
// SegmentCursor / SegmentSource geometry
//===----------------------------------------------------------------------===//

SegmentView SegmentCursor::head(size_t I, size_t N) {
  SegmentView V = chunk(I);
  return {V.Data, std::min(N, V.Size)};
}

void SegmentSource::initChunks(uint64_t N, size_t ChunkElemsTarget,
                               size_t MinChunks) {
  NumElements = N;
  if (ChunkElemsTarget == 0)
    ChunkElemsTarget = 1;
  uint64_t Chunks = (N + ChunkElemsTarget - 1) / ChunkElemsTarget;
  Chunks = std::max<uint64_t>(Chunks, std::max<size_t>(MinChunks, 1));
  Chunks = std::min<uint64_t>(Chunks, N); // chunks are never empty
  NumChunks = static_cast<size_t>(Chunks);
}

uint64_t SegmentSource::chunkBegin(size_t I) const {
  uint64_t Base = NumElements / NumChunks, Rem = NumElements % NumChunks;
  return I * Base + std::min<uint64_t>(I, Rem);
}

size_t SegmentSource::chunkElems(size_t I) const {
  uint64_t Base = NumElements / NumChunks, Rem = NumElements % NumChunks;
  return static_cast<size_t>(Base + (I < Rem ? 1 : 0));
}

//===----------------------------------------------------------------------===//
// VectorSource
//===----------------------------------------------------------------------===//

VectorSource::VectorSource(std::vector<int64_t> Data,
                           const SourceOptions &Opts)
    : Data(std::move(Data)) {
  if (this->Data.empty())
    throw std::invalid_argument(
        "segment source: in-memory workload holds zero elements");
  initChunks(this->Data.size(), Opts.ChunkElems, Opts.MinChunks);
}

std::unique_ptr<SegmentCursor> VectorSource::cursor() const {
  return std::make_unique<VectorCursor>(*this, Data);
}

//===----------------------------------------------------------------------===//
// MmapFileSource
//===----------------------------------------------------------------------===//

MmapFileSource::MmapFileSource(const std::string &Path,
                               const SourceOptions &Opts)
    : Path(Path), Fd(openReadOnly(Path)) {
  try {
    uint64_t Count = readBinaryCount(Fd, Path);
    if (Count == 0)
      throwEmptyWorkload(Path);
    initChunks(Count, Opts.ChunkElems, Opts.MinChunks);
  } catch (...) {
    ::close(Fd);
    throw;
  }
}

MmapFileSource::~MmapFileSource() {
  if (Fd >= 0)
    ::close(Fd);
}

std::unique_ptr<SegmentCursor> MmapFileSource::cursor() const {
  return std::make_unique<MmapCursor>(*this, Fd, Path);
}

//===----------------------------------------------------------------------===//
// ChunkedFileSource
//===----------------------------------------------------------------------===//

namespace {

/// First text pass: validates the whole file with the loadWorkloadFile
/// grammar while holding no elements; returns the count and the byte
/// offset of the first element line.
void scanTextWorkload(const std::string &Path, uint64_t MaxElems,
                      uint64_t *CountOut, uint64_t *DataStartOut) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    throw WorkloadParseError(Path, 0, "cannot open file: " + errnoString());
  uint64_t Count = 0, DataStart = 0;
  bool HaveHeader = false;
  uint64_t Declared = 0;
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::string Stripped = Line;
    if (!Stripped.empty() && Stripped.back() == '\r')
      Stripped.pop_back();
    if (!Stripped.empty() && Stripped.front() == '#') {
      if (LineNo != 1)
        throw WorkloadParseError(Path, LineNo,
                                 "comment lines are only allowed as the "
                                 "first-line header");
      std::string Reason;
      if (!parseWorkloadHeader(Stripped, &Declared, &Reason))
        throw WorkloadParseError(Path, LineNo, Reason);
      if (MaxElems != 0 && Declared > MaxElems)
        throw WorkloadParseError(
            Path, LineNo,
            "header declares " + std::to_string(Declared) +
                " elements, over the --max-elems cap of " +
                std::to_string(MaxElems));
      HaveHeader = true;
      DataStart = static_cast<uint64_t>(In.tellg());
      continue;
    }
    int64_t V = 0;
    if (!parseWorkloadElement(Line, &V))
      throw WorkloadParseError(Path, LineNo,
                               "malformed element '" + Stripped +
                                   "' (expected one decimal int64 per "
                                   "line)");
    if (MaxElems != 0 && Count == MaxElems)
      throw WorkloadParseError(Path, LineNo,
                               "file holds more than the --max-elems cap "
                               "of " + std::to_string(MaxElems) +
                                   " element(s)");
    ++Count;
  }
  if (In.bad())
    throw WorkloadParseError(Path, LineNo, "read error");
  if (HaveHeader && Count != Declared)
    throw WorkloadParseError(
        Path, 0,
        "element count mismatch: header declares " +
            std::to_string(Declared) + " but file holds " +
            std::to_string(Count) +
            (Count < Declared ? " (truncated file?)" : ""));
  *CountOut = Count;
  *DataStartOut = DataStart;
}

} // namespace

ChunkedFileSource::ChunkedFileSource(const std::string &Path,
                                     const SourceOptions &Opts,
                                     uint64_t MaxElems)
    : Path(Path), Fd(openReadOnly(Path)) {
  try {
    char Magic[sizeof(BinaryWorkloadMagic)] = {};
    uint64_t Bytes = fileBytes(Fd, Path);
    if (Bytes >= sizeof(Magic))
      preadFull(Fd, Magic, sizeof(Magic), 0, Path);
    Text = std::memcmp(Magic, BinaryWorkloadMagic, sizeof(Magic)) != 0;

    if (!Text) {
      uint64_t Count = readBinaryCount(Fd, Path);
      if (Count == 0)
        throwEmptyWorkload(Path);
      if (MaxElems != 0 && Count > MaxElems)
        throw WorkloadParseError(
            Path, 0,
            "file holds " + std::to_string(Count) +
                " elements, over the --max-elems cap of " +
                std::to_string(MaxElems));
      initChunks(Count, Opts.ChunkElems, Opts.MinChunks);
      return;
    }

    // Text: one validating counting pass, then a second pass recording
    // the byte offset of each chunk's first line. Neither holds
    // elements, so the index is O(chunks) regardless of file size.
    uint64_t Count = 0, DataStart = 0;
    scanTextWorkload(Path, MaxElems, &Count, &DataStart);
    if (Count == 0)
      throwEmptyWorkload(Path);
    initChunks(Count, Opts.ChunkElems, Opts.MinChunks);

    std::ifstream In(Path, std::ios::binary);
    In.seekg(static_cast<std::streamoff>(DataStart));
    TextChunkOffsets.reserve(NumChunks);
    std::string Line;
    uint64_t Elem = 0;
    size_t NextChunk = 0;
    while (NextChunk != NumChunks) {
      uint64_t Pos = static_cast<uint64_t>(In.tellg());
      if (Elem == chunkBegin(NextChunk)) {
        TextChunkOffsets.push_back(Pos);
        ++NextChunk;
      }
      if (NextChunk == NumChunks)
        break;
      if (!std::getline(In, Line))
        throw WorkloadParseError(Path, 0, "read error building chunk index");
      ++Elem;
    }
  } catch (...) {
    ::close(Fd);
    throw;
  }
}

ChunkedFileSource::~ChunkedFileSource() {
  if (Fd >= 0)
    ::close(Fd);
}

std::unique_ptr<SegmentCursor> ChunkedFileSource::cursor() const {
  if (Text)
    return std::make_unique<TextChunkCursor>(*this, Path, TextChunkOffsets);
  return std::make_unique<BinaryChunkCursor>(*this, Fd, Path);
}

//===----------------------------------------------------------------------===//
// openSegmentSource and friends
//===----------------------------------------------------------------------===//

bool parseSourceKind(const char *Name, SourceKind *Out) {
  std::string S = Name ? Name : "";
  if (S == "auto")
    *Out = SourceKind::Auto;
  else if (S == "mem" || S == "memory")
    *Out = SourceKind::Memory;
  else if (S == "mmap")
    *Out = SourceKind::Mmap;
  else if (S == "chunked")
    *Out = SourceKind::Chunked;
  else
    return false;
  return true;
}

const char *sourceKindName(SourceKind K) {
  switch (K) {
  case SourceKind::Auto:
    return "auto";
  case SourceKind::Memory:
    return "memory";
  case SourceKind::Mmap:
    return "mmap";
  case SourceKind::Chunked:
    return "chunked";
  }
  return "?";
}

bool isBinaryWorkloadFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  char Magic[sizeof(BinaryWorkloadMagic)] = {};
  if (!In.read(Magic, sizeof(Magic)))
    return false;
  return std::memcmp(Magic, BinaryWorkloadMagic, sizeof(Magic)) == 0;
}

namespace {

/// Fully materializes a binary workload file (the Memory source kind
/// over converted files).
std::vector<int64_t> readBinaryAll(const std::string &Path,
                                   uint64_t MaxElems) {
  int Fd = openReadOnly(Path);
  std::vector<int64_t> Out;
  try {
    uint64_t Count = readBinaryCount(Fd, Path);
    if (MaxElems != 0 && Count > MaxElems)
      throw WorkloadParseError(
          Path, 0,
          "file holds " + std::to_string(Count) +
              " elements, over the --max-elems cap of " +
              std::to_string(MaxElems));
    Out.resize(static_cast<size_t>(Count));
    if (Count != 0)
      preadFull(Fd, Out.data(), static_cast<size_t>(Count) * sizeof(int64_t),
                BinaryWorkloadHeaderBytes, Path);
  } catch (...) {
    ::close(Fd);
    throw;
  }
  ::close(Fd);
  return Out;
}

} // namespace

std::unique_ptr<SegmentSource> openSegmentSource(const std::string &Path,
                                                 SourceKind Kind,
                                                 const SourceOptions &Opts,
                                                 uint64_t MaxElems) {
  bool Binary = isBinaryWorkloadFile(Path);
  if (Kind == SourceKind::Auto)
    Kind = Binary ? SourceKind::Mmap : SourceKind::Memory;
  switch (Kind) {
  case SourceKind::Memory: {
    std::vector<int64_t> Data = Binary ? readBinaryAll(Path, MaxElems)
                                       : loadWorkloadFile(Path, MaxElems);
    if (Data.empty())
      throwEmptyWorkload(Path);
    return std::make_unique<VectorSource>(std::move(Data), Opts);
  }
  case SourceKind::Mmap: {
    auto Src = std::make_unique<MmapFileSource>(Path, Opts);
    if (MaxElems != 0 && Src->elements() > MaxElems)
      throw WorkloadParseError(
          Path, 0,
          "file holds " + std::to_string(Src->elements()) +
              " elements, over the --max-elems cap of " +
              std::to_string(MaxElems));
    return Src;
  }
  case SourceKind::Chunked:
    return std::make_unique<ChunkedFileSource>(Path, Opts, MaxElems);
  case SourceKind::Auto:
    break;
  }
  throw std::logic_error("openSegmentSource: unreachable source kind");
}

//===----------------------------------------------------------------------===//
// BinaryWorkloadWriter / convertTextToBinary
//===----------------------------------------------------------------------===//

BinaryWorkloadWriter::BinaryWorkloadWriter(const std::string &Path)
    : Path(Path), TmpPath(Path + ".tmp." + std::to_string(::getpid())) {
  Fd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
              0644);
  if (Fd < 0)
    throw WorkloadParseError(TmpPath, 0,
                             "cannot create file: " + errnoString());
  char Header[BinaryWorkloadHeaderBytes] = {};
  std::memcpy(Header, BinaryWorkloadMagic, sizeof(BinaryWorkloadMagic));
  // Count placeholder (zero) — patched by close().
  writeFull(Fd, Header, sizeof(Header), TmpPath);
}

BinaryWorkloadWriter::~BinaryWorkloadWriter() {
  if (Fd >= 0) {
    ::close(Fd);
    ::unlink(TmpPath.c_str());
  }
}

void BinaryWorkloadWriter::append(const int64_t *Vals, size_t N) {
  if (Fd < 0)
    throw std::logic_error("BinaryWorkloadWriter: append after close");
  writeFull(Fd, Vals, N * sizeof(int64_t), TmpPath);
  Count += N;
}

void BinaryWorkloadWriter::close() {
  if (Fd < 0)
    throw std::logic_error("BinaryWorkloadWriter: double close");
  uint64_t C = Count;
  if (::pwrite(Fd, &C, sizeof(C),
               static_cast<off_t>(sizeof(BinaryWorkloadMagic))) !=
      static_cast<ssize_t>(sizeof(C)))
    throw WorkloadParseError(TmpPath, 0,
                             "cannot patch element count: " + errnoString());
  if (::fsync(Fd) != 0)
    throw WorkloadParseError(TmpPath, 0, "fsync failed: " + errnoString());
  ::close(Fd);
  Fd = -1;
  if (::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::string E = errnoString();
    ::unlink(TmpPath.c_str());
    throw WorkloadParseError(Path, 0, "cannot publish file: " + E);
  }
}

uint64_t convertTextToBinary(const std::string &TextPath,
                             const std::string &BinPath, uint64_t MaxElems) {
  std::ifstream In(TextPath, std::ios::binary);
  if (!In)
    throw WorkloadParseError(TextPath, 0,
                             "cannot open file: " + errnoString());
  BinaryWorkloadWriter Writer(BinPath);
  std::vector<int64_t> Batch;
  const size_t BatchElems = size_t{1} << 16;
  Batch.reserve(BatchElems);

  bool HaveHeader = false;
  uint64_t Declared = 0;
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::string Stripped = Line;
    if (!Stripped.empty() && Stripped.back() == '\r')
      Stripped.pop_back();
    if (!Stripped.empty() && Stripped.front() == '#') {
      if (LineNo != 1)
        throw WorkloadParseError(TextPath, LineNo,
                                 "comment lines are only allowed as the "
                                 "first-line header");
      std::string Reason;
      if (!parseWorkloadHeader(Stripped, &Declared, &Reason))
        throw WorkloadParseError(TextPath, LineNo, Reason);
      if (MaxElems != 0 && Declared > MaxElems)
        throw WorkloadParseError(
            TextPath, LineNo,
            "header declares " + std::to_string(Declared) +
                " elements, over the --max-elems cap of " +
                std::to_string(MaxElems));
      HaveHeader = true;
      continue;
    }
    int64_t V = 0;
    if (!parseWorkloadElement(Line, &V))
      throw WorkloadParseError(TextPath, LineNo,
                               "malformed element '" + Stripped +
                                   "' (expected one decimal int64 per "
                                   "line)");
    if (MaxElems != 0 && Writer.written() + Batch.size() == MaxElems)
      throw WorkloadParseError(TextPath, LineNo,
                               "file holds more than the --max-elems cap "
                               "of " + std::to_string(MaxElems) +
                                   " element(s)");
    Batch.push_back(V);
    if (Batch.size() == BatchElems) {
      Writer.append(Batch);
      Batch.clear();
    }
  }
  if (In.bad())
    throw WorkloadParseError(TextPath, LineNo, "read error");
  Writer.append(Batch);
  if (HaveHeader && Writer.written() != Declared)
    throw WorkloadParseError(
        TextPath, 0,
        "element count mismatch: header declares " +
            std::to_string(Declared) + " but file holds " +
            std::to_string(Writer.written()) +
            (Writer.written() < Declared ? " (truncated file?)" : ""));
  Writer.close();
  return Writer.written();
}

} // namespace runtime
} // namespace grassp
