//===- runtime/Runner.cpp --------------------------------------------------=//

#include "runtime/Runner.h"

#include "runtime/SegmentSource.h"
#include "support/Timing.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <functional>
#include <thread>

namespace grassp {
namespace runtime {

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-segment commit cell. State 0 = pending, 1 = claimed by a winner
/// that is still copying its output out, 2 = committed and readable.
/// Primary and speculative backup race on the claim; exactly one wins.
struct Slot {
  std::atomic<int> State{0};
  std::atomic<int64_t> StartNs{-1}; // primary's start; -1 = still queued.
  std::atomic<int64_t> DurNs{0};
  std::atomic<bool> BackupLaunched{false};
};

double medianOf(std::vector<double> V) {
  if (V.empty())
    return 0.0;
  size_t Mid = V.size() / 2;
  std::nth_element(V.begin(), V.begin() + Mid, V.end());
  return V[Mid];
}

/// SplitMix64 finalizer — the same stateless mixer FaultInject uses, so
/// backoff jitter is pure in (seed, key) with no shared RNG state.
uint64_t mixBits(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

} // namespace

double decorrelatedBackoff(double Base, double Cap, double Prev,
                           uint64_t Seed, uint64_t Key) {
  if (Base <= 0.0)
    return 0.0;
  if (Cap < Base)
    Cap = Base;
  if (Prev < Base)
    Prev = Base;
  // Uniform in [Base, 3*Prev]: 2^64 as a double is exact, the quotient
  // lies in [0, 1).
  double U = static_cast<double>(
                 mixBits(Seed + 0x9e3779b97f4a7c15ULL * (Key + 1))) /
             18446744073709551616.0;
  double Sleep = Base + U * (3.0 * Prev - Base);
  return std::min(Sleep, Cap);
}

int64_t runSerialTimed(const CompiledProgram &Prog,
                       const std::vector<SegmentView> &Segs,
                       double *Seconds) {
  Stopwatch Timer;
  int64_t Out = Prog.runSerial(Segs);
  if (Seconds)
    *Seconds = Timer.seconds();
  return Out;
}

namespace {

/// The shared fault-tolerance core of runParallel: retries with backoff,
/// speculative backups, guaranteed serial refolds, and cooperative
/// cancellation, parameterized over how a segment's worker output is
/// computed (\p Work — must be a pure function of the segment index,
/// callable concurrently) and how committed outputs merge (\p Merge).
/// Both the in-memory and the SegmentSource entry points are thin
/// wrappers, so out-of-core runs get the exact same guarantees.
ParallelRunResult
runParallelCore(size_t N, const std::function<WorkerOutput(size_t)> &Work,
                const std::function<int64_t(std::vector<WorkerOutput> &)> &Merge,
                ThreadPool *Pool, const RunPolicy &Policy) {
  ParallelRunResult R;
  Stopwatch Total;
  std::vector<WorkerOutput> Outputs(N);
  R.WorkerSeconds.assign(N, 0.0);
  FaultInjector *FI = Policy.Faults;

  // One fault-injected worker attempt; throws on an injected (or real)
  // failure.
  auto attemptOnce = [&](size_t I, unsigned Attempt) {
    if (FI)
      FI->maybeThrow(FaultSiteWorker, Attempt * WorkerAttemptKeyStride + I);
    return Work(I);
  };

  if (!Pool) {
    // Measured critical-path mode: sequential, per-segment retry loop;
    // injected straggler stalls are *modeled* (added to the recorded
    // worker time) rather than slept.
    for (size_t I = 0; I != N && !R.Cancelled; ++I) {
      if (Policy.Token.cancelled()) {
        R.Cancelled = true;
        break;
      }
      double InjectedStall = FI ? FI->delayFor(FaultSiteStraggler, I) : 0.0;
      double PrevSleep = Policy.BackoffSeconds;
      for (unsigned Attempt = 0;; ++Attempt) {
        Stopwatch W;
        try {
          Outputs[I] = attemptOnce(I, Attempt);
          R.WorkerSeconds[I] = W.seconds() + InjectedStall;
          ++R.CompletedSegments;
          break;
        } catch (...) {
          ++R.FailedAttempts;
          if (Policy.Token.cancelled()) {
            R.Cancelled = true;
            break;
          }
          if (Attempt >= Policy.MaxRetries) {
            // Last resort: refold the segment with no injection.
            ++R.SerialRefolds;
            Stopwatch W2;
            Outputs[I] = Work(I);
            R.WorkerSeconds[I] = W2.seconds();
            ++R.CompletedSegments;
            break;
          }
          ++R.Retries;
          // Interruptible: a fired token cuts the backoff short and the
          // next iteration notices it.
          PrevSleep = decorrelatedBackoff(
              Policy.BackoffSeconds, Policy.BackoffCapSeconds, PrevSleep,
              Policy.BackoffJitterSeed,
              Attempt * WorkerAttemptKeyStride + I);
          Policy.Token.sleepFor(PrevSleep);
        }
      }
    }
  } else {
    std::vector<Slot> Slots(N);
    std::atomic<unsigned> Alive{0};
    std::atomic<unsigned> FailedAttempts{0}, Retries{0};
    std::atomic<unsigned> SpecLaunches{0}, SpecWins{0};

    auto tryCommit = [&](size_t I, WorkerOutput &&Out, double Sec) {
      int Expected = 0;
      if (!Slots[I].State.compare_exchange_strong(
              Expected, 1, std::memory_order_acq_rel))
        return false;
      Outputs[I] = std::move(Out);
      R.WorkerSeconds[I] = Sec;
      Slots[I].DurNs.store(static_cast<int64_t>(Sec * 1e9),
                           std::memory_order_relaxed);
      Slots[I].State.store(2, std::memory_order_release);
      return true;
    };

    // Primary and backup bodies share the retry loop; backups skip
    // injection (they model re-execution on a healthy node) and bail as
    // soon as the other copy has committed.
    auto runBody = [&](size_t I, bool IsBackup) {
      double Stall =
          (!IsBackup && FI) ? FI->delayFor(FaultSiteStraggler, I) : 0.0;
      if (!IsBackup)
        Slots[I].StartNs.store(nowNs(), std::memory_order_relaxed);
      if (Stall > 0) {
        // Cancellable stall: wake early once a backup commits or the
        // run token fires — an injected straggler must not outlive a
        // cancelled run.
        int64_t End = nowNs() + static_cast<int64_t>(Stall * 1e9);
        while (nowNs() < End &&
               Slots[I].State.load(std::memory_order_acquire) == 0 &&
               !Policy.Token.cancelled())
          std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      double PrevSleep = Policy.BackoffSeconds;
      for (unsigned Attempt = 0;; ++Attempt) {
        if (Slots[I].State.load(std::memory_order_acquire) != 0)
          return; // the other copy already won.
        if (Policy.Token.cancelled())
          return; // cut: the slot stays uncommitted, nothing merges.
        Stopwatch W;
        try {
          WorkerOutput Out = IsBackup ? Work(I) : attemptOnce(I, Attempt);
          if (tryCommit(I, std::move(Out), W.seconds() + Stall) && IsBackup)
            SpecWins.fetch_add(1, std::memory_order_relaxed);
          return;
        } catch (...) {
          FailedAttempts.fetch_add(1, std::memory_order_relaxed);
          if (Attempt >= Policy.MaxRetries)
            return; // permanent failure; serial refold below.
          Retries.fetch_add(1, std::memory_order_relaxed);
          // Interruptible: a fired token wakes the backoff and the next
          // iteration returns.
          PrevSleep = decorrelatedBackoff(
              Policy.BackoffSeconds, Policy.BackoffCapSeconds, PrevSleep,
              Policy.BackoffJitterSeed,
              Attempt * WorkerAttemptKeyStride + I);
          Policy.Token.sleepFor(PrevSleep);
        }
      }
    };

    for (size_t I = 0; I != N; ++I) {
      Alive.fetch_add(1, std::memory_order_relaxed);
      Pool->submit([&, I] {
        runBody(I, /*IsBackup=*/false);
        Alive.fetch_sub(1, std::memory_order_release);
      });
    }

    if (Policy.Speculate) {
      // Straggler monitor: once enough workers finished, re-execute any
      // still-running worker that exceeds the median by the configured
      // factor. First finisher wins the commit; the loser's result is
      // discarded, so the merged output cannot change.
      while (Alive.load(std::memory_order_acquire) != 0) {
        if (Policy.Token.cancelled())
          break; // stop launching backups; workers are bailing out.
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        std::vector<double> DoneSec;
        for (Slot &S : Slots)
          if (S.State.load(std::memory_order_acquire) == 2)
            DoneSec.push_back(
                S.DurNs.load(std::memory_order_relaxed) / 1e9);
        size_t NeedDone = std::max<size_t>(
            1, static_cast<size_t>(Policy.SpeculationMinCompletedFraction *
                                   static_cast<double>(N)));
        if (DoneSec.size() < NeedDone)
          continue;
        double Threshold =
            std::max(Policy.SpeculationMinSeconds,
                     Policy.SpeculationDelayFactor * medianOf(DoneSec));
        int64_t Now = nowNs();
        for (size_t I = 0; I != N; ++I) {
          Slot &S = Slots[I];
          if (S.State.load(std::memory_order_acquire) != 0)
            continue;
          int64_t St = S.StartNs.load(std::memory_order_relaxed);
          if (St < 0 || (Now - St) / 1e9 < Threshold)
            continue;
          bool Expected = false;
          if (!S.BackupLaunched.compare_exchange_strong(Expected, true))
            continue;
          SpecLaunches.fetch_add(1, std::memory_order_relaxed);
          Alive.fetch_add(1, std::memory_order_relaxed);
          Pool->submit([&, I] {
            runBody(I, /*IsBackup=*/true);
            Alive.fetch_sub(1, std::memory_order_release);
          });
        }
      }
    }
    Pool->wait();
    R.Cancelled = Policy.Token.cancelled();

    // Guaranteed path: segments whose every attempt failed are refolded
    // serially on this thread, injection-free. Real (non-injected)
    // kernel errors propagate from here. A cancelled run must NOT take
    // it — refolding every abandoned segment is exactly the work the
    // cancel asked us not to do.
    for (size_t I = 0; I != N && !R.Cancelled; ++I) {
      if (Slots[I].State.load(std::memory_order_acquire) == 2)
        continue;
      ++R.SerialRefolds;
      Stopwatch W;
      Outputs[I] = Work(I);
      R.WorkerSeconds[I] = W.seconds();
    }
    for (size_t I = 0; I != N; ++I)
      if (Slots[I].State.load(std::memory_order_acquire) == 2)
        ++R.CompletedSegments;
    R.CompletedSegments += R.SerialRefolds;
    R.FailedAttempts = FailedAttempts.load(std::memory_order_relaxed);
    R.Retries = Retries.load(std::memory_order_relaxed);
    R.SpeculativeLaunches = SpecLaunches.load(std::memory_order_relaxed);
    R.SpeculativeWins = SpecWins.load(std::memory_order_relaxed);
  }

  if (R.Cancelled || Policy.Token.cancelled()) {
    // Partial stats only: committing a merge over a mix of computed and
    // default-constructed worker outputs would be a wrong answer.
    R.Cancelled = true;
    R.WallSeconds = Total.seconds();
    return R;
  }

  Stopwatch MergeTimer;
  R.Output = Merge(Outputs);
  R.MergeSeconds = MergeTimer.seconds();
  R.WallSeconds = Total.seconds();
  return R;
}

} // namespace

ParallelRunResult runParallel(const CompiledPlan &Plan,
                              const std::vector<SegmentView> &Segs,
                              ThreadPool *Pool, const RunPolicy &Policy) {
  return runParallelCore(
      Segs.size(), [&](size_t I) { return Plan.runWorker(Segs[I]); },
      [&](std::vector<WorkerOutput> &Outputs) {
        return Plan.merge(Outputs, Segs);
      },
      Pool, Policy);
}

ParallelRunResult runParallel(const CompiledPlan &Plan,
                              const SegmentSource &Src, ThreadPool *Pool,
                              const RunPolicy &Policy) {
  const size_t N = Src.chunkCount();

  // Constant-prefix merge repair reads min(PrefixLen, Size) elements
  // from each segment; prefetch exactly those heads (tiny) so merge()
  // never needs whole chunks resident. The views carry the TRUE chunk
  // size with head-only data — the documented merge() contract.
  size_t PrefixLen = Plan.plan().Kind == synth::Scenario::ConstPrefix
                         ? Plan.plan().PrefixLen
                         : 0;
  std::vector<std::vector<int64_t>> Heads(N);
  std::vector<SegmentView> HeadViews(N);
  {
    std::unique_ptr<SegmentCursor> C = Src.cursor();
    for (size_t I = 0; I != N; ++I) {
      if (PrefixLen != 0) {
        SegmentView H = C->head(I, PrefixLen);
        Heads[I].assign(H.Data, H.Data + H.Size);
      }
      HeadViews[I] = {Heads[I].data(), Src.chunkElems(I)};
    }
  }

  return runParallelCore(
      N,
      [&](size_t I) {
        // A fresh cursor per attempt: cursors are not thread-safe, and
        // retries/backups may run the same chunk concurrently. The
        // chunk view lives as long as the cursor.
        std::unique_ptr<SegmentCursor> C = Src.cursor();
        return Plan.runWorker(C->chunk(I));
      },
      [&](std::vector<WorkerOutput> &Outputs) {
        return Plan.merge(Outputs, HeadViews);
      },
      Pool, Policy);
}

int64_t runSerialSourceTimed(const CompiledProgram &Prog,
                             const SegmentSource &Src, double *Seconds) {
  Stopwatch Timer;
  int64_t Out = Prog.runSerialSource(Src);
  if (Seconds)
    *Seconds = Timer.seconds();
  return Out;
}

double makespan(const std::vector<double> &WorkerSeconds, unsigned P) {
  assert(P > 0);
  std::vector<double> Sorted = WorkerSeconds;
  std::sort(Sorted.rbegin(), Sorted.rend());
  std::vector<double> Load(P, 0.0);
  for (double T : Sorted)
    *std::min_element(Load.begin(), Load.end()) += T;
  return *std::max_element(Load.begin(), Load.end());
}

double modeledSpeedup(double SerialSeconds, const ParallelRunResult &R,
                      unsigned P) {
  double Par = makespan(R.WorkerSeconds, P) + R.MergeSeconds;
  return Par > 0 ? SerialSeconds / Par : 0.0;
}

} // namespace runtime
} // namespace grassp
