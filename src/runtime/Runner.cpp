//===- runtime/Runner.cpp --------------------------------------------------=//

#include "runtime/Runner.h"

#include "support/Timing.h"

#include <algorithm>
#include <cassert>

namespace grassp {
namespace runtime {

int64_t runSerialTimed(const CompiledProgram &Prog,
                       const std::vector<SegmentView> &Segs,
                       double *Seconds) {
  Stopwatch Timer;
  int64_t Out = Prog.runSerial(Segs);
  if (Seconds)
    *Seconds = Timer.seconds();
  return Out;
}

ParallelRunResult runParallel(const CompiledPlan &Plan,
                              const std::vector<SegmentView> &Segs,
                              ThreadPool *Pool) {
  ParallelRunResult R;
  Stopwatch Total;
  std::vector<WorkerOutput> Outputs(Segs.size());
  R.WorkerSeconds.assign(Segs.size(), 0.0);

  if (Pool) {
    for (size_t I = 0; I != Segs.size(); ++I) {
      Pool->submit([&, I] {
        Stopwatch W;
        Outputs[I] = Plan.runWorker(Segs[I]);
        R.WorkerSeconds[I] = W.seconds();
      });
    }
    Pool->wait();
  } else {
    for (size_t I = 0; I != Segs.size(); ++I) {
      Stopwatch W;
      Outputs[I] = Plan.runWorker(Segs[I]);
      R.WorkerSeconds[I] = W.seconds();
    }
  }

  Stopwatch MergeTimer;
  R.Output = Plan.merge(Outputs, Segs);
  R.MergeSeconds = MergeTimer.seconds();
  R.WallSeconds = Total.seconds();
  return R;
}

double makespan(const std::vector<double> &WorkerSeconds, unsigned P) {
  assert(P > 0);
  std::vector<double> Sorted = WorkerSeconds;
  std::sort(Sorted.rbegin(), Sorted.rend());
  std::vector<double> Load(P, 0.0);
  for (double T : Sorted)
    *std::min_element(Load.begin(), Load.end()) += T;
  return *std::max_element(Load.begin(), Load.end());
}

double modeledSpeedup(double SerialSeconds, const ParallelRunResult &R,
                      unsigned P) {
  double Par = makespan(R.WorkerSeconds, P) + R.MergeSeconds;
  return Par > 0 ? SerialSeconds / Par : 0.0;
}

} // namespace runtime
} // namespace grassp
