//===- runtime/Workload.h - Per-benchmark workload generation ------------===//
//
// Deterministic synthetic data streams matching each benchmark's input
// model (paper Sect. 9.1): alphabet streams for the pattern counters,
// nearly-sorted streams for the sortedness check, constant streams for
// the equality check, and uniform integers for the generic scans.
//
// Also home of the segment-shape machinery: partition() produces the
// standard near-equal non-empty split, while segmentsFromLengths() and
// adversarialShapes() let the differential-oracle harness exercise the
// shapes the verifier's non-empty data model never sees (empty segments,
// length-1 segments, all data in one segment, M > N).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_RUNTIME_WORKLOAD_H
#define GRASSP_RUNTIME_WORKLOAD_H

#include "lang/Program.h"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace grassp {
namespace runtime {

/// A view of one contiguous segment of the input stream.
struct SegmentView {
  const int64_t *Data = nullptr;
  size_t Size = 0;
};

/// Knobs for generateWorkload().
struct WorkloadOptions {
  /// Expected inversions per 1000 elements of the "nearly sorted"
  /// is_sorted stream. The default keeps streams *nearly* sorted but
  /// makes sure the false branch of the benchmark is exercised across
  /// seeds (a strictly monotone generator never is). 0 restores the
  /// always-sorted stream.
  unsigned SortedInversionPerMille = 1;
};

/// Generates \p N elements appropriate for \p Prog.
std::vector<int64_t> generateWorkload(const lang::SerialProgram &Prog,
                                      size_t N, uint64_t Seed,
                                      const WorkloadOptions &Opts =
                                          WorkloadOptions());

/// Typed rejection of a malformed workload file; what() reads
/// "file:line: reason" (line 0 = a file-level problem such as a count
/// mismatch or an unreadable path).
class WorkloadParseError : public std::runtime_error {
public:
  WorkloadParseError(std::string File, unsigned Line, std::string Reason);
  const std::string &file() const { return FileName; }
  unsigned line() const { return LineNo; }
  const std::string &reason() const { return Why; }

private:
  std::string FileName;
  unsigned LineNo;
  std::string Why;
};

/// Loads a workload file: one decimal int64 per line, optionally led by
/// a `# grassp-workload <count>` header (the form the oracle and the
/// emitted programs write). The parser is strict so a truncated or
/// corrupted file fails loudly instead of folding garbage:
///  * every element line must be exactly one int64 — no trailing junk,
///    no blank lines, values outside int64 (overflow) rejected;
///  * with a header, the element count must equal the declared count
///    (catches truncation, which the bare format cannot detect);
///  * only the first line may be a `#` comment, and it must be the
///    well-formed header.
/// Throws WorkloadParseError; never returns partial data.
std::vector<int64_t> loadWorkloadFile(const std::string &Path);

/// The canonical header line (without newline) for \p Count elements.
std::string workloadFileHeader(size_t Count);

/// Splits \p Data into \p M contiguous, non-empty, near-equal segments.
/// Throws std::invalid_argument unless 0 < M <= Data.size(); this is a
/// real runtime check, not an assert, so Release builds cannot silently
/// produce zero-length trailing segments.
std::vector<SegmentView> partition(const std::vector<int64_t> &Data,
                                   unsigned M);

/// Builds segment views with the exact lengths \p Lens (empty segments
/// allowed). Throws std::invalid_argument unless the lengths sum to
/// Data.size(). The testing entry point for shapes partition() rejects.
std::vector<SegmentView> segmentsFromLengths(const std::vector<int64_t> &Data,
                                             const std::vector<size_t> &Lens);

/// One named adversarial segment shape: lengths summing to N.
struct SegmentShape {
  std::string Name;
  std::vector<size_t> Lens;
};

/// Adversarial segment shapes covering \p N elements with \p M segments
/// (M may exceed N; empty segments appear deliberately): near-equal,
/// empty first/middle/last, alternating empties, length-1 head, and all
/// data in a single segment. Shapes degenerate gracefully for tiny N.
std::vector<SegmentShape> adversarialShapes(size_t N, unsigned M);

} // namespace runtime
} // namespace grassp

#endif // GRASSP_RUNTIME_WORKLOAD_H
