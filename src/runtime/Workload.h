//===- runtime/Workload.h - Per-benchmark workload generation ------------===//
//
// Deterministic synthetic data streams matching each benchmark's input
// model (paper Sect. 9.1): alphabet streams for the pattern counters,
// nearly-sorted streams for the sortedness check, constant streams for
// the equality check, and uniform integers for the generic scans.
//
// Also home of the segment-shape machinery: partition() produces the
// standard near-equal non-empty split, while segmentsFromLengths() and
// adversarialShapes() let the differential-oracle harness exercise the
// shapes the verifier's non-empty data model never sees (empty segments,
// length-1 segments, all data in one segment, M > N).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_RUNTIME_WORKLOAD_H
#define GRASSP_RUNTIME_WORKLOAD_H

#include "lang/Program.h"
#include "support/Random.h"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace grassp {
namespace runtime {

/// A view of one contiguous segment of the input stream.
struct SegmentView {
  const int64_t *Data = nullptr;
  size_t Size = 0;
};

/// Knobs for generateWorkload().
struct WorkloadOptions {
  /// Expected inversions per 1000 elements of the "nearly sorted"
  /// is_sorted stream. The default keeps streams *nearly* sorted but
  /// makes sure the false branch of the benchmark is exercised across
  /// seeds (a strictly monotone generator never is). 0 restores the
  /// always-sorted stream.
  unsigned SortedInversionPerMille = 1;
};

/// Generates \p N elements appropriate for \p Prog.
std::vector<int64_t> generateWorkload(const lang::SerialProgram &Prog,
                                      size_t N, uint64_t Seed,
                                      const WorkloadOptions &Opts =
                                          WorkloadOptions());

/// Incremental form of generateWorkload: produces the identical element
/// stream in caller-sized slices, so >RAM workload files can be written
/// with O(1) memory (`grassp convert --gen`). The total length is fixed
/// up front because some generators are position-dependent (the
/// count_distinct head is TotalN/8 elements; alternating01 keys on the
/// absolute index); generateWorkload(P, N, S) == one N-sized slice.
class WorkloadStream {
public:
  WorkloadStream(const lang::SerialProgram &Prog, size_t TotalN,
                 uint64_t Seed,
                 const WorkloadOptions &Opts = WorkloadOptions());

  /// Appends the next min(Count, remaining()) elements to \p Out;
  /// returns how many were produced.
  size_t generate(size_t Count, std::vector<int64_t> &Out);
  size_t remaining() const { return TotalN - Produced; }
  size_t total() const { return TotalN; }

private:
  const lang::SerialProgram &Prog;
  size_t TotalN;
  WorkloadOptions Opts;
  Rng R;
  size_t Produced = 0;
  int64_t SortedCur = 0; // is_sorted generator state.
};

/// Typed rejection of a malformed workload file; what() reads
/// "file:line: reason" (line 0 = a file-level problem such as a count
/// mismatch or an unreadable path).
class WorkloadParseError : public std::runtime_error {
public:
  WorkloadParseError(std::string File, unsigned Line, std::string Reason);
  const std::string &file() const { return FileName; }
  unsigned line() const { return LineNo; }
  const std::string &reason() const { return Why; }

private:
  std::string FileName;
  unsigned LineNo;
  std::string Why;
};

/// Loads a workload file: one decimal int64 per line, optionally led by
/// a `# grassp-workload <count>` header (the form the oracle and the
/// emitted programs write). The parser is strict so a truncated or
/// corrupted file fails loudly instead of folding garbage:
///  * every element line must be exactly one int64 — no trailing junk,
///    no blank lines, values outside int64 (overflow) rejected;
///  * with a header, the element count must equal the declared count
///    (catches truncation, which the bare format cannot detect);
///  * only the first line may be a `#` comment, and it must be the
///    well-formed header.
/// \p MaxElems != 0 caps the accepted element count: a header declaring
/// more is rejected *before* any storage is reserved (a hostile or
/// corrupted header must produce a typed error, not a bad_alloc), and a
/// bare file is rejected at the first element past the cap. The vector
/// is reserved from the header count up front (clamped by the cap and
/// by a bytes-on-disk bound, since no well-formed file holds more
/// elements than half its byte size).
/// Throws WorkloadParseError; never returns partial data.
std::vector<int64_t> loadWorkloadFile(const std::string &Path,
                                      uint64_t MaxElems = 0);

/// Strict one-int64 parse of a workload element line (no junk, no blank
/// lines, int64 range enforced; lone '\r' tail tolerated). Shared by
/// loadWorkloadFile and the streaming text source.
bool parseWorkloadElement(std::string Line, int64_t *Out);

/// Parses a stripped first line as the canonical `# grassp-workload
/// <count>` header. Returns false with \p Reason set when the line is a
/// comment but not a well-formed header.
bool parseWorkloadHeader(const std::string &Stripped, uint64_t *Count,
                         std::string *Reason);

/// The canonical header line (without newline) for \p Count elements.
std::string workloadFileHeader(size_t Count);

/// Splits \p Data into \p M contiguous, non-empty, near-equal segments.
/// Throws std::invalid_argument unless 0 < M <= Data.size(); this is a
/// real runtime check, not an assert, so Release builds cannot silently
/// produce zero-length trailing segments.
std::vector<SegmentView> partition(const std::vector<int64_t> &Data,
                                   unsigned M);

/// Builds segment views with the exact lengths \p Lens (empty segments
/// allowed). Throws std::invalid_argument unless the lengths sum to
/// Data.size(). The testing entry point for shapes partition() rejects.
std::vector<SegmentView> segmentsFromLengths(const std::vector<int64_t> &Data,
                                             const std::vector<size_t> &Lens);

/// One named adversarial segment shape: lengths summing to N.
struct SegmentShape {
  std::string Name;
  std::vector<size_t> Lens;
};

/// Adversarial segment shapes covering \p N elements with \p M segments
/// (M may exceed N; empty segments appear deliberately): near-equal,
/// empty first/middle/last, alternating empties, length-1 head, and all
/// data in a single segment. Shapes degenerate gracefully for tiny N.
std::vector<SegmentShape> adversarialShapes(size_t N, unsigned M);

} // namespace runtime
} // namespace grassp

#endif // GRASSP_RUNTIME_WORKLOAD_H
