//===- runtime/Workload.h - Per-benchmark workload generation ------------===//
//
// Deterministic synthetic data streams matching each benchmark's input
// model (paper Sect. 9.1): alphabet streams for the pattern counters,
// nearly-sorted streams for the sortedness check, constant streams for
// the equality check, and uniform integers for the generic scans.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_RUNTIME_WORKLOAD_H
#define GRASSP_RUNTIME_WORKLOAD_H

#include "lang/Program.h"

#include <cstdint>
#include <vector>

namespace grassp {
namespace runtime {

/// A view of one contiguous segment of the input stream.
struct SegmentView {
  const int64_t *Data = nullptr;
  size_t Size = 0;
};

/// Generates \p N elements appropriate for \p Prog.
std::vector<int64_t> generateWorkload(const lang::SerialProgram &Prog,
                                      size_t N, uint64_t Seed);

/// Splits \p Data into \p M contiguous, non-empty, near-equal segments.
/// Requires Data.size() >= M.
std::vector<SegmentView> partition(const std::vector<int64_t> &Data,
                                   unsigned M);

} // namespace runtime
} // namespace grassp

#endif // GRASSP_RUNTIME_WORKLOAD_H
