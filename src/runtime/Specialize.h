//===- runtime/Specialize.h - Pattern-specialized native fold kernels ----===//
//
// The fastest execution tier: a structural matcher over the serial step
// expressions that recognizes the paper's recurring shapes and lowers
// them to hand-fused native loops the compiler can autovectorize.
//
// A step function specializes when every state field is covered by
//
//  * an independent accumulator lane
//        f' = ite(Guard(in), Op(f, Term(in)), f)
//    with Op in {+, min, max, or}, Term in {in, constant, |in|}, and
//    Guard in {true, in <cmp> c, in mod m == k}; or
//
//  * a coupled two-field kernel: counted extremum (running max/min plus
//    its occurrence count, as in count_max/count_min) or second extremum
//    (top-two running max/min, as in second_max).
//
// Lanes read only their own field(s) and the input element, so each runs
// as its own tight pass over the segment; the per-lane loops carry no
// dispatch and fold to SIMD on -O2.
//
// Specialized kernels are never trusted: they register as an extra path
// in testing/DiffOracle and must stay bit-identical to the bytecode VM
// and the reference interpreter on every fuzzed workload.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_RUNTIME_SPECIALIZE_H
#define GRASSP_RUNTIME_SPECIALIZE_H

#include "lang/Program.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace grassp {
namespace runtime {

/// A fully matched, directly executable specialization of a step
/// function. Build with specializeStep(); execute with fold().
class SpecializedStep {
public:
  enum class GuardKind : uint8_t { True, Eq, Ne, Lt, Le, Gt, Ge, ModEq };
  enum class TermKind : uint8_t { In, Const, AbsIn };
  enum class AccOpKind : uint8_t { Add, Min, Max, Or };

  /// One independent accumulator:
  ///   State[Field] = Guard ? Op(State[Field], Term) : State[Field].
  struct Lane {
    uint16_t Field = 0;
    GuardKind G = GuardKind::True;
    int64_t GC = 0; // comparison constant / ModEq residue k.
    int64_t GM = 0; // ModEq modulus (|m|; 0 never occurs post-match).
    TermKind T = TermKind::In;
    int64_t TC = 0; // Term constant.
    AccOpKind O = AccOpKind::Add;
  };

  /// Running extremum plus its occurrence count (count_max/count_min).
  struct Counted {
    uint16_t Ext = 0;
    uint16_t Cnt = 0;
    bool IsMax = true;
  };

  /// Top-two running extremum (second_max and its min dual).
  struct Second {
    uint16_t M1 = 0;
    uint16_t M2 = 0;
    bool IsMax = true;
  };

  /// Folds the whole segment into \p State (NumFields slots), one fused
  /// native pass per lane/kernel. Read-only state is untouched; safe to
  /// call concurrently on distinct states.
  void fold(int64_t *State, const int64_t *Data, size_t N) const;

  /// Human-readable kernel summary, e.g. "s:add(in)[in>5]; cnt:add(1)".
  const std::string &describe() const { return Desc; }

  const std::vector<Lane> &lanes() const { return Lanes; }
  const std::vector<Counted> &countedKernels() const { return Counteds; }
  const std::vector<Second> &secondKernels() const { return Seconds; }

private:
  friend std::optional<SpecializedStep>
  specializeStep(const lang::SerialProgram &Prog);

  std::vector<Lane> Lanes;
  std::vector<Counted> Counteds;
  std::vector<Second> Seconds;
  std::string Desc;
};

/// Tries to match every state field of \p Prog against the specialized
/// kernel shapes. Returns nullopt when any field falls outside them (the
/// program then executes on the loop-resident VM tier) or when the state
/// is bag-typed (bags have their own native hash-set kernel).
std::optional<SpecializedStep> specializeStep(const lang::SerialProgram &Prog);

} // namespace runtime
} // namespace grassp

#endif // GRASSP_RUNTIME_SPECIALIZE_H
