//===- runtime/Specialize.cpp ---------------------------------------------==//

#include "runtime/Specialize.h"

#include "ir/Expr.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace grassp {
namespace runtime {

namespace {

using ir::Expr;
using ir::ExprRef;
using ir::Op;

using GuardKind = SpecializedStep::GuardKind;
using TermKind = SpecializedStep::TermKind;
using AccOpKind = SpecializedStep::AccOpKind;
using Lane = SpecializedStep::Lane;

bool isInVar(const ExprRef &E) {
  return E->isVar() && E->varName() == lang::inputVarName();
}

bool isVarNamed(const ExprRef &E, const std::string &Name) {
  return E->isVar() && E->varName() == Name;
}

/// Matches a binary node with operands {in, var Name} in either order.
bool isVarOpIn(const ExprRef &E, Op O, const std::string &Name,
               bool *InFirst = nullptr) {
  if (E->getOp() != O || E->numOperands() != 2)
    return false;
  if (isInVar(E->operand(0)) && isVarNamed(E->operand(1), Name)) {
    if (InFirst)
      *InFirst = true;
    return true;
  }
  if (isVarNamed(E->operand(0), Name) && isInVar(E->operand(1))) {
    if (InFirst)
      *InFirst = false;
    return true;
  }
  return false;
}

struct Guard {
  GuardKind K = GuardKind::True;
  int64_t C = 0;
  int64_t M = 0;
};

GuardKind flipCmp(GuardKind K) {
  switch (K) {
  case GuardKind::Lt:
    return GuardKind::Gt;
  case GuardKind::Le:
    return GuardKind::Ge;
  case GuardKind::Gt:
    return GuardKind::Lt;
  case GuardKind::Ge:
    return GuardKind::Le;
  default:
    return K; // Eq/Ne are symmetric.
  }
}

std::optional<GuardKind> cmpKind(Op O) {
  switch (O) {
  case Op::Eq:
    return GuardKind::Eq;
  case Op::Ne:
    return GuardKind::Ne;
  case Op::Lt:
    return GuardKind::Lt;
  case Op::Le:
    return GuardKind::Le;
  case Op::Gt:
    return GuardKind::Gt;
  case Op::Ge:
    return GuardKind::Ge;
  default:
    return std::nullopt;
  }
}

/// intMod(in, c) with a nonzero constant modulus; returns |c|.
std::optional<int64_t> matchModOfIn(const ExprRef &E) {
  if (E->getOp() != Op::Mod || !isInVar(E->operand(0)) ||
      !E->operand(1)->isConstInt())
    return std::nullopt;
  int64_t M = E->operand(1)->intValue();
  if (M == 0)
    return std::nullopt; // mod 0 is the VM's total-function edge case.
  return M < 0 ? -M : M;
}

/// A guard over the input element only: true, in <cmp> c, or
/// in mod m == k.
std::optional<Guard> matchGuard(const ExprRef &E) {
  if (E->isConstBool())
    return E->boolValue() ? std::optional<Guard>({GuardKind::True, 0, 0})
                          : std::nullopt;
  std::optional<GuardKind> K = cmpKind(E->getOp());
  if (!K)
    return std::nullopt;
  const ExprRef &A = E->operand(0);
  const ExprRef &B = E->operand(1);
  // in mod m == k (Eq only; residues live in [0, m)).
  if (*K == GuardKind::Eq) {
    if (auto M = matchModOfIn(A); M && B->isConstInt())
      return Guard{GuardKind::ModEq, B->intValue(), *M};
    if (auto M = matchModOfIn(B); M && A->isConstInt())
      return Guard{GuardKind::ModEq, A->intValue(), *M};
  }
  if (isInVar(A) && B->isConstInt())
    return Guard{*K, B->intValue(), 0};
  if (A->isConstInt() && isInVar(B))
    return Guard{flipCmp(*K), A->intValue(), 0};
  return std::nullopt;
}

/// Negation for the representable guards (ModEq has no complement in the
/// family).
std::optional<Guard> negateGuard(const Guard &G) {
  switch (G.K) {
  case GuardKind::Eq:
    return Guard{GuardKind::Ne, G.C, 0};
  case GuardKind::Ne:
    return Guard{GuardKind::Eq, G.C, 0};
  case GuardKind::Lt:
    return Guard{GuardKind::Ge, G.C, 0};
  case GuardKind::Le:
    return Guard{GuardKind::Gt, G.C, 0};
  case GuardKind::Gt:
    return Guard{GuardKind::Le, G.C, 0};
  case GuardKind::Ge:
    return Guard{GuardKind::Lt, G.C, 0};
  default:
    return std::nullopt;
  }
}

struct Term {
  TermKind K = TermKind::In;
  int64_t C = 0;
};

/// in, an integer constant, or |in| spelled max(in, -in).
std::optional<Term> matchTerm(const ExprRef &E) {
  if (isInVar(E))
    return Term{TermKind::In, 0};
  if (E->isConstInt())
    return Term{TermKind::Const, E->intValue()};
  if (E->getOp() == Op::Max && E->numOperands() == 2) {
    auto isNegIn = [](const ExprRef &X) {
      return X->getOp() == Op::Neg && isInVar(X->operand(0));
    };
    if ((isInVar(E->operand(0)) && isNegIn(E->operand(1))) ||
        (isNegIn(E->operand(0)) && isInVar(E->operand(1))))
      return Term{TermKind::AbsIn, 0};
  }
  return std::nullopt;
}

/// The unguarded accumulator core Op(field, Term): add/min/max with a
/// matched term, or field `or` Guard (modeled as or-accumulating the
/// constant 1 under that guard).
std::optional<Lane> matchAccCore(const std::string &Field, const ExprRef &E) {
  AccOpKind O;
  switch (E->getOp()) {
  case Op::Add:
    O = AccOpKind::Add;
    break;
  case Op::Min:
    O = AccOpKind::Min;
    break;
  case Op::Max:
    O = AccOpKind::Max;
    break;
  case Op::Or: {
    for (unsigned I = 0; I != 2; ++I) {
      if (!isVarNamed(E->operand(I), Field))
        continue;
      std::optional<Guard> G = matchGuard(E->operand(1 - I));
      if (!G)
        continue;
      Lane L;
      L.G = G->K;
      L.GC = G->C;
      L.GM = G->M;
      L.T = TermKind::Const;
      L.TC = 1;
      L.O = AccOpKind::Or;
      return L;
    }
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
  for (unsigned I = 0; I != 2; ++I) {
    if (!isVarNamed(E->operand(I), Field))
      continue;
    std::optional<Term> T = matchTerm(E->operand(1 - I));
    if (!T)
      continue;
    Lane L;
    L.T = T->K;
    L.TC = T->C;
    L.O = O;
    return L;
  }
  return std::nullopt;
}

/// A full independent lane: the core, optionally wrapped in
/// ite(Guard, core, field) (or the negated ite(Guard, field, core)).
std::optional<Lane> matchLane(const std::string &Field, const ExprRef &E) {
  if (std::optional<Lane> L = matchAccCore(Field, E))
    return L;
  if (E->getOp() != Op::Ite)
    return std::nullopt;
  std::optional<Guard> G = matchGuard(E->operand(0));
  if (!G)
    return std::nullopt;
  const ExprRef *Core = nullptr;
  if (isVarNamed(E->operand(2), Field)) {
    Core = &E->operand(1);
  } else if (isVarNamed(E->operand(1), Field)) {
    G = negateGuard(*G);
    if (!G)
      return std::nullopt;
    Core = &E->operand(2);
  } else {
    return std::nullopt;
  }
  std::optional<Lane> L = matchAccCore(Field, *Core);
  // A guarded core must itself be unguarded (no guard composition).
  if (!L || L->G != GuardKind::True)
    return std::nullopt;
  L->G = G->K;
  L->GC = G->C;
  L->GM = G->M;
  return L;
}

/// count_max / count_min:
///   ext' = max(ext, in)                       (min resp.)
///   cnt' = ite(in > ext, 1, ite(in == ext, cnt + 1, cnt))
std::optional<SpecializedStep::Counted>
matchCounted(const std::string &Ext, const std::string &Cnt,
             const ExprRef &ExtStep, const ExprRef &CntStep) {
  bool IsMax;
  if (isVarOpIn(ExtStep, Op::Max, Ext))
    IsMax = true;
  else if (isVarOpIn(ExtStep, Op::Min, Ext))
    IsMax = false;
  else
    return std::nullopt;
  if (CntStep->getOp() != Op::Ite)
    return std::nullopt;

  // Condition 1: strictly-better element (in > ext for max, < for min).
  const ExprRef &C1 = CntStep->operand(0);
  bool InFirst;
  Op Strict = IsMax ? Op::Gt : Op::Lt;
  Op StrictFlip = IsMax ? Op::Lt : Op::Gt;
  if (!(isVarOpIn(C1, Strict, Ext, &InFirst) && InFirst) &&
      !(isVarOpIn(C1, StrictFlip, Ext, &InFirst) && !InFirst))
    return std::nullopt;
  if (!CntStep->operand(1)->isConstInt() ||
      CntStep->operand(1)->intValue() != 1)
    return std::nullopt;

  // Inner ite: in == ext ? cnt + 1 : cnt.
  const ExprRef &Inner = CntStep->operand(2);
  if (Inner->getOp() != Op::Ite || !isVarOpIn(Inner->operand(0), Op::Eq, Ext))
    return std::nullopt;
  const ExprRef &Incr = Inner->operand(1);
  bool IncrOk =
      Incr->getOp() == Op::Add &&
      ((isVarNamed(Incr->operand(0), Cnt) && Incr->operand(1)->isConstInt() &&
        Incr->operand(1)->intValue() == 1) ||
       (isVarNamed(Incr->operand(1), Cnt) && Incr->operand(0)->isConstInt() &&
        Incr->operand(0)->intValue() == 1));
  if (!IncrOk || !isVarNamed(Inner->operand(2), Cnt))
    return std::nullopt;
  return SpecializedStep::Counted{0, 0, IsMax};
}

/// second_max (and the min dual):
///   m1' = max(m1, in)
///   m2' = ite(in >= m1, m1, max(m2, in))
std::optional<SpecializedStep::Second>
matchSecond(const std::string &M1, const std::string &M2,
            const ExprRef &S1, const ExprRef &S2) {
  bool IsMax;
  if (isVarOpIn(S1, Op::Max, M1))
    IsMax = true;
  else if (isVarOpIn(S1, Op::Min, M1))
    IsMax = false;
  else
    return std::nullopt;
  if (S2->getOp() != Op::Ite || !isVarNamed(S2->operand(1), M1))
    return std::nullopt;
  const ExprRef &Cond = S2->operand(0);
  bool InFirst;
  Op Weak = IsMax ? Op::Ge : Op::Le;
  Op WeakFlip = IsMax ? Op::Le : Op::Ge;
  if (!(isVarOpIn(Cond, Weak, M1, &InFirst) && InFirst) &&
      !(isVarOpIn(Cond, WeakFlip, M1, &InFirst) && !InFirst))
    return std::nullopt;
  if (!isVarOpIn(S2->operand(2), IsMax ? Op::Max : Op::Min, M2))
    return std::nullopt;
  return SpecializedStep::Second{0, 0, IsMax};
}

//===----------------------------------------------------------------------===//
// Fused native loops
//===----------------------------------------------------------------------===//

template <class G, class T, class O>
int64_t accLoop(int64_t Acc, const int64_t *Data, size_t N, G Guard, T Term,
                O Op) {
  for (size_t I = 0; I != N; ++I) {
    int64_t X = Data[I];
    if (Guard(X))
      Acc = Op(Acc, Term(X));
  }
  return Acc;
}

int64_t runLane(const Lane &L, int64_t Acc, const int64_t *Data, size_t N) {
  auto withOp = [&](auto Guard, auto Term) -> int64_t {
    switch (L.O) {
    case AccOpKind::Add:
      return accLoop(Acc, Data, N, Guard, Term,
                     [](int64_t A, int64_t B) { return A + B; });
    case AccOpKind::Min:
      return accLoop(Acc, Data, N, Guard, Term,
                     [](int64_t A, int64_t B) { return A < B ? A : B; });
    case AccOpKind::Max:
      return accLoop(Acc, Data, N, Guard, Term,
                     [](int64_t A, int64_t B) { return A > B ? A : B; });
    case AccOpKind::Or:
      return accLoop(Acc, Data, N, Guard, Term, [](int64_t A, int64_t B) {
        return static_cast<int64_t>((A != 0) | (B != 0));
      });
    }
    return Acc;
  };
  auto withTerm = [&](auto Guard) -> int64_t {
    switch (L.T) {
    case TermKind::In:
      return withOp(Guard, [](int64_t X) { return X; });
    case TermKind::Const: {
      int64_t C = L.TC;
      return withOp(Guard, [C](int64_t) { return C; });
    }
    case TermKind::AbsIn:
      return withOp(Guard, [](int64_t X) { return X < 0 ? -X : X; });
    }
    return Acc;
  };
  switch (L.G) {
  case GuardKind::True:
    return withTerm([](int64_t) { return true; });
  case GuardKind::Eq: {
    int64_t C = L.GC;
    return withTerm([C](int64_t X) { return X == C; });
  }
  case GuardKind::Ne: {
    int64_t C = L.GC;
    return withTerm([C](int64_t X) { return X != C; });
  }
  case GuardKind::Lt: {
    int64_t C = L.GC;
    return withTerm([C](int64_t X) { return X < C; });
  }
  case GuardKind::Le: {
    int64_t C = L.GC;
    return withTerm([C](int64_t X) { return X <= C; });
  }
  case GuardKind::Gt: {
    int64_t C = L.GC;
    return withTerm([C](int64_t X) { return X > C; });
  }
  case GuardKind::Ge: {
    int64_t C = L.GC;
    return withTerm([C](int64_t X) { return X >= C; });
  }
  case GuardKind::ModEq: {
    // Euclidean residue: emod(x, m) == emod(x, |m|), in [0, |m|).
    int64_t M = L.GM, K = L.GC;
    return withTerm([M, K](int64_t X) {
      int64_t R = X % M;
      if (R < 0)
        R += M;
      return R == K;
    });
  }
  }
  return Acc;
}

//===----------------------------------------------------------------------===//
// describe() helpers
//===----------------------------------------------------------------------===//

std::string laneString(const Lane &L, const std::string &Field) {
  std::ostringstream OS;
  OS << Field << ':';
  switch (L.O) {
  case AccOpKind::Add:
    OS << "add";
    break;
  case AccOpKind::Min:
    OS << "min";
    break;
  case AccOpKind::Max:
    OS << "max";
    break;
  case AccOpKind::Or:
    OS << "or";
    break;
  }
  OS << '(';
  switch (L.T) {
  case TermKind::In:
    OS << "in";
    break;
  case TermKind::Const:
    OS << L.TC;
    break;
  case TermKind::AbsIn:
    OS << "|in|";
    break;
  }
  OS << ')';
  static const char *CmpNames[] = {"", "==", "!=", "<", "<=", ">", ">="};
  switch (L.G) {
  case GuardKind::True:
    break;
  case GuardKind::ModEq:
    OS << "[in%" << L.GM << "==" << L.GC << ']';
    break;
  default:
    OS << "[in" << CmpNames[static_cast<unsigned>(L.G)] << L.GC << ']';
    break;
  }
  return OS.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// SpecializedStep
//===----------------------------------------------------------------------===//

void SpecializedStep::fold(int64_t *State, const int64_t *Data,
                           size_t N) const {
  for (const Counted &K : Counteds) {
    int64_t M = State[K.Ext], C = State[K.Cnt];
    if (K.IsMax) {
      for (size_t I = 0; I != N; ++I) {
        int64_t X = Data[I];
        if (X > M) {
          M = X;
          C = 1;
        } else if (X == M) {
          ++C;
        }
      }
    } else {
      for (size_t I = 0; I != N; ++I) {
        int64_t X = Data[I];
        if (X < M) {
          M = X;
          C = 1;
        } else if (X == M) {
          ++C;
        }
      }
    }
    State[K.Ext] = M;
    State[K.Cnt] = C;
  }
  for (const Second &K : Seconds) {
    int64_t M1 = State[K.M1], M2 = State[K.M2];
    if (K.IsMax) {
      for (size_t I = 0; I != N; ++I) {
        int64_t X = Data[I];
        if (X >= M1) {
          M2 = M1;
          M1 = X;
        } else if (X > M2) {
          M2 = X;
        }
      }
    } else {
      for (size_t I = 0; I != N; ++I) {
        int64_t X = Data[I];
        if (X <= M1) {
          M2 = M1;
          M1 = X;
        } else if (X < M2) {
          M2 = X;
        }
      }
    }
    State[K.M1] = M1;
    State[K.M2] = M2;
  }
  for (const Lane &L : Lanes)
    State[L.Field] = runLane(L, State[L.Field], Data, N);
}

std::optional<SpecializedStep>
specializeStep(const lang::SerialProgram &Prog) {
  if (Prog.State.hasBag())
    return std::nullopt;
  size_t NF = Prog.State.size();
  if (NF == 0 || Prog.Step.size() != NF)
    return std::nullopt;

  SpecializedStep S;
  std::vector<bool> Covered(NF, false);
  std::vector<std::string> Parts;

  // Coupled two-field kernels claim their fields first, so e.g.
  // count_max's extremum is not grabbed as a plain max lane leaving the
  // count unmatched.
  for (size_t I = 0; I != NF; ++I) {
    for (size_t J = 0; J != NF; ++J) {
      if (I == J || Covered[I] || Covered[J])
        continue;
      const std::string &NI = Prog.State.field(I).Name;
      const std::string &NJ = Prog.State.field(J).Name;
      if (auto C = matchCounted(NI, NJ, Prog.Step[I], Prog.Step[J])) {
        C->Ext = static_cast<uint16_t>(I);
        C->Cnt = static_cast<uint16_t>(J);
        S.Counteds.push_back(*C);
        Covered[I] = Covered[J] = true;
        Parts.push_back(NI + "," + NJ + ":counted-" +
                        (C->IsMax ? "max" : "min"));
        continue;
      }
      if (auto W = matchSecond(NI, NJ, Prog.Step[I], Prog.Step[J])) {
        W->M1 = static_cast<uint16_t>(I);
        W->M2 = static_cast<uint16_t>(J);
        S.Seconds.push_back(*W);
        Covered[I] = Covered[J] = true;
        Parts.push_back(NI + "," + NJ + ":second-" +
                        (W->IsMax ? "max" : "min"));
      }
    }
  }

  for (size_t I = 0; I != NF; ++I) {
    if (Covered[I])
      continue;
    const std::string &Name = Prog.State.field(I).Name;
    // The lane shape only mentions the field and the input; reject
    // anything referencing other state up front.
    std::map<std::string, ir::TypeKind> Vars;
    ir::collectVars(Prog.Step[I], Vars);
    for (const auto &[V, Ty] : Vars)
      if (V != Name && V != lang::inputVarName())
        return std::nullopt;
    std::optional<Lane> L = matchLane(Name, Prog.Step[I]);
    if (!L)
      return std::nullopt;
    L->Field = static_cast<uint16_t>(I);
    S.Lanes.push_back(*L);
    Parts.push_back(laneString(*L, Name));
  }

  std::ostringstream OS;
  for (size_t I = 0; I != Parts.size(); ++I)
    OS << (I ? "; " : "") << Parts[I];
  S.Desc = OS.str();
  return S;
}

} // namespace runtime
} // namespace grassp
