//===- runtime/Kernels.h - Compiled execution kernels --------------------===//
//
// Fast concrete execution of serial programs and synthesized plans. Step
// functions, output functions, prefix predicates, and the summary tables
// are compiled to register bytecode (ir/Bytecode.h) once, then folded
// over millions of elements. The one bag-typed benchmark ("counting
// distinct elements") uses a native hash-set kernel instead.
//
// These kernels implement exactly the ParallelPlan semantics of
// synth/PlanEval.h; a property test cross-checks them against the
// domain-generic reference executor.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_RUNTIME_KERNELS_H
#define GRASSP_RUNTIME_KERNELS_H

#include "ir/Bytecode.h"
#include "runtime/Workload.h"
#include "synth/ParallelPlan.h"

#include <cstdint>
#include <vector>

namespace grassp {
namespace runtime {

/// The serial program compiled to bytecode (scalar states) or routed to
/// the native distinct-elements kernel (bag states).
class CompiledProgram {
public:
  explicit CompiledProgram(const lang::SerialProgram &Prog);

  bool usesBag() const { return Bag; }
  const lang::SerialProgram &program() const { return Prog; }

  /// d0 as a flat int64 vector (Bools are 0/1). Bag programs return {}.
  std::vector<int64_t> initialState() const;

  /// In-place fold of f over \p Seg.
  void foldSegment(std::vector<int64_t> &State, SegmentView Seg) const;

  /// One f step.
  void step(std::vector<int64_t> &State, int64_t El) const;

  /// h. Uses only local buffers, so a CompiledProgram shared across
  /// ThreadPool workers is const-callable without races.
  int64_t output(const std::vector<int64_t> &State) const;

  /// Serial run over consecutive segments (bag programs included).
  int64_t runSerial(const std::vector<SegmentView> &Segs) const;

private:
  const lang::SerialProgram &Prog;
  bool Bag = false;
  ir::BytecodeFunction StepFn;   // inputs: fields + "in".
  ir::BytecodeFunction OutputFn; // inputs: fields.
};

/// Per-segment worker output (conditional-prefix scenarios carry summary
/// tables; the distinct kernel carries its local hash set).
struct WorkerOutput {
  bool Found = false;
  int64_t Boundary = 0;
  std::vector<int64_t> D;

  std::vector<uint32_t> CtrlCur;                  // [v] -> valuation idx
  std::vector<std::vector<std::pair<int64_t, int64_t>>> ModeArg; // [v][j]

  std::vector<int64_t> PrefixData; // refold scenario

  /// Bag kernel: the distinct elements in insertion order. Like the
  /// paper's serial code, membership is a linear search — the source of
  /// the superlinear "counting distinct" speedup (Sect. 9.4).
  std::vector<int64_t> Distinct;
};

/// A synthesized plan compiled for fast segment-parallel execution.
class CompiledPlan {
public:
  CompiledPlan(const lang::SerialProgram &Prog,
               const synth::ParallelPlan &Plan);

  /// Runs the per-segment worker (safe to call concurrently).
  WorkerOutput runWorker(SegmentView Seg) const;

  /// Merges worker outputs into the final output. \p Segs is consulted
  /// by constant-prefix plans for the repair elements.
  int64_t merge(const std::vector<WorkerOutput> &Workers,
                const std::vector<SegmentView> &Segs) const;

  const synth::ParallelPlan &plan() const { return Plan; }

private:
  WorkerOutput runScanWorker(SegmentView Seg) const;
  WorkerOutput runCondWorker(SegmentView Seg) const;
  void applyUpd(std::vector<int64_t> &C, const WorkerOutput &W) const;
  void combineAtBoundary(std::vector<int64_t> &C,
                         const WorkerOutput &W) const;
  int64_t applyFlavor(synth::AccFlavor F, int64_t A, int64_t B) const;

  const lang::SerialProgram &Prog;
  const synth::ParallelPlan &Plan;
  CompiledProgram Compiled;

  // Conditional-prefix machinery, compiled.
  ir::BytecodeFunction PcFn; // inputs: "in".
  std::vector<std::vector<ir::BytecodeFunction>> CtrlStepFns; // [v][k]
  std::vector<std::vector<ir::BytecodeFunction>> ModeFns;     // [v][j]
  std::vector<std::vector<ir::BytecodeFunction>> ArgFns;      // [v][j]
};

} // namespace runtime
} // namespace grassp

#endif // GRASSP_RUNTIME_KERNELS_H
