//===- runtime/Kernels.h - Compiled execution kernels --------------------===//
//
// Fast concrete execution of serial programs and synthesized plans. Step
// functions, output functions, prefix predicates, and the summary tables
// are compiled to register bytecode (ir/Bytecode.h) once, then folded
// over millions of elements.
//
// Folding runs on a four-tier pipeline; CompiledProgram picks the
// fastest tier available for its program and every caller (serial run,
// parallel workers, merge repair) goes through the same selection, so
// measured speedups compare like against like:
//
//   Specialized - pattern-matched native kernels (runtime/Specialize.h);
//                 bag-typed programs use the native hash-set distinct
//                 kernel (runtime/DistinctSet.h) at this tier.
//   Native      - the optimized bytecode compiled to a real machine-code
//                 fold loop by the host compiler (jit/NativeKernel.h)
//                 and dlopen'd; present when a host compiler exists.
//   LoopVM      - the whole segment loop runs inside the bytecode VM
//                 (BytecodeFunction::foldLoop) on peephole-optimized
//                 bytecode with threaded dispatch.
//   PerElement  - one BytecodeFunction::run call per element; the
//                 portable baseline kept as a differential reference.
//
// All tiers are semantically identical by construction and certified by
// the differential oracle (testing/DiffOracle runs every available tier
// on every fuzzed workload).
//
// These kernels implement exactly the ParallelPlan semantics of
// synth/PlanEval.h; a property test cross-checks them against the
// domain-generic reference executor.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_RUNTIME_KERNELS_H
#define GRASSP_RUNTIME_KERNELS_H

#include "ir/Bytecode.h"
#include "jit/NativeKernel.h"
#include "runtime/Specialize.h"
#include "runtime/Workload.h"
#include "synth/ParallelPlan.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace grassp {
namespace runtime {

class SegmentSource;

/// Execution tiers, fastest first.
enum class ExecTier : uint8_t { Specialized, Native, LoopVM, PerElement };

/// "specialized" / "native" / "loop-vm" / "per-element".
const char *execTierName(ExecTier T);

/// The serial program compiled to bytecode (scalar states) or routed to
/// the native distinct-elements kernel (bag states).
class CompiledProgram {
public:
  /// \p AllowSpecialize gates the specialized tier (the `--no-specialize`
  /// ablation); the hash-set distinct kernel for bag programs is not an
  /// ablatable tier and stays on regardless. \p AllowNative gates the
  /// jit-compiled tier (`--no-native`); it also quietly stays off when
  /// no host compiler is available.
  explicit CompiledProgram(const lang::SerialProgram &Prog,
                           bool AllowSpecialize = true,
                           bool AllowNative = true);

  bool usesBag() const { return Bag; }
  const lang::SerialProgram &program() const { return Prog; }

  /// Canonical hash of the optimized step bytecode — the same key the
  /// jit KernelCache uses, so it identifies the compiled plan across
  /// process boundaries (the dist runtime's fork handshake verifies a
  /// worker inherited the coordinator's plan by comparing this hash).
  uint64_t bytecodeHash() const;

  /// The tier all fold entry points run on.
  ExecTier tier() const { return Tier; }
  bool tierAvailable(ExecTier T) const;
  /// Kernel summary for the specialized tier ("" when not specialized).
  std::string specializationInfo() const;

  /// d0 as a flat int64 vector (Bools are 0/1). Bag programs return {}.
  std::vector<int64_t> initialState() const;

  /// In-place fold of f over \p Seg on the selected tier. Uses
  /// thread-local scratch only, so a shared CompiledProgram is
  /// const-callable from concurrent workers.
  void foldSegment(std::vector<int64_t> &State, SegmentView Seg) const;

  /// Same fold forced onto tier \p T (differential testing; \p T must be
  /// available).
  void foldSegmentTier(ExecTier T, std::vector<int64_t> &State,
                       SegmentView Seg) const;

  /// One f step.
  void step(std::vector<int64_t> &State, int64_t El) const;

  /// h. Uses thread-local scratch only; const-callable concurrently.
  int64_t output(const std::vector<int64_t> &State) const;

  /// Serial run over consecutive segments (bag programs included).
  int64_t runSerial(const std::vector<SegmentView> &Segs) const;

  /// Serial run forced onto tier \p T (must be available). For bag
  /// programs only the Specialized (hash-set) tier exists.
  int64_t runSerialTier(ExecTier T, const std::vector<SegmentView> &Segs) const;

  /// Serial run over a SegmentSource, one chunk resident at a time —
  /// the out-of-core path. Bit-identical to runSerial over the same
  /// element stream (a fold over [c0 ++ c1 ++ ...] is a fold).
  int64_t runSerialSource(const SegmentSource &Src) const;
  int64_t runSerialSourceTier(ExecTier T, const SegmentSource &Src) const;

private:
  const lang::SerialProgram &Prog;
  bool Bag = false;
  ExecTier Tier = ExecTier::PerElement;
  ir::BytecodeFunction StepFn;   // unoptimized; the per-element tier.
  ir::BytecodeFunction StepOpt;  // peephole-optimized; the loop-VM tier.
  ir::BytecodeFunction OutputFn; // inputs: fields.
  std::optional<SpecializedStep> Spec;
  std::shared_ptr<const jit::NativeKernel> Native; // the jit tier.
};

/// Per-segment worker output (conditional-prefix scenarios carry summary
/// tables; the distinct kernel carries its local element set).
struct WorkerOutput {
  bool Found = false;
  int64_t Boundary = 0;
  std::vector<int64_t> D;

  std::vector<uint32_t> CtrlCur;                  // [v] -> valuation idx
  std::vector<std::vector<std::pair<int64_t, int64_t>>> ModeArg; // [v][j]

  std::vector<int64_t> PrefixData; // refold scenario

  /// Bag kernel: the distinct elements in insertion order (hash-set
  /// membership; see runtime/DistinctSet.h).
  std::vector<int64_t> Distinct;
};

/// A synthesized plan compiled for fast segment-parallel execution.
class CompiledPlan {
public:
  CompiledPlan(const lang::SerialProgram &Prog,
               const synth::ParallelPlan &Plan, bool AllowSpecialize = true,
               bool AllowNative = true);

  /// Runs the per-segment worker (safe to call concurrently).
  WorkerOutput runWorker(SegmentView Seg) const;

  /// Merges worker outputs into the final output. \p Segs is consulted
  /// by constant-prefix plans for the repair elements: only the first
  /// min(PrefixLen, Size) elements of each segment are ever read, so
  /// out-of-core callers may pass head-buffer views whose Size is the
  /// true segment length but whose Data holds only that prefix.
  int64_t merge(const std::vector<WorkerOutput> &Workers,
                const std::vector<SegmentView> &Segs) const;

  /// The certified binary merge on scalar partial states (the m the
  /// CHC engine certified; merge() left-folds it). Public so the
  /// MergeTree can re-associate it over a balanced tree — sound because
  /// certification makes m associative on fold images.
  std::vector<int64_t> mergeStates(const std::vector<int64_t> &A,
                                   const std::vector<int64_t> &B) const;

  const synth::ParallelPlan &plan() const { return Plan; }
  const CompiledProgram &compiled() const { return Compiled; }

private:
  WorkerOutput runScanWorker(SegmentView Seg) const;
  WorkerOutput runCondWorker(SegmentView Seg) const;
  void applyUpd(std::vector<int64_t> &C, const WorkerOutput &W) const;
  void combineAtBoundary(std::vector<int64_t> &C,
                         const WorkerOutput &W) const;
  int64_t applyFlavor(synth::AccFlavor F, int64_t A, int64_t B) const;

  const lang::SerialProgram &Prog;
  const synth::ParallelPlan &Plan;
  CompiledProgram Compiled;

  // Conditional-prefix machinery, compiled.
  ir::BytecodeFunction PcFn; // inputs: "in".
  std::vector<std::vector<ir::BytecodeFunction>> CtrlStepFns; // [v][k]
  std::vector<std::vector<ir::BytecodeFunction>> ModeFns;     // [v][j]
  std::vector<std::vector<ir::BytecodeFunction>> ArgFns;      // [v][j]
};

} // namespace runtime
} // namespace grassp

#endif // GRASSP_RUNTIME_KERNELS_H
