//===- runtime/MergeTree.h - Incremental recompute over certified merges -===//
//
// The online-aggregation payoff of certified merges (ROADMAP item 3): a
// balanced tree of per-chunk partial fold states, keyed by chunk index.
// append(chunk) folds ONLY the new chunk and re-combines the O(log n)
// internal nodes on its root path; replace(i, chunk) re-folds only chunk
// i and the same path. query() reads the root. A from-scratch refold
// touches every element; the tree touches one chunk — that asymmetry is
// what bench_stream measures.
//
// Soundness: the CHC engine certified the plan's binary merge m as a
// homomorphism witness — m(fold(x), fold(y)) = fold(x ++ y) on fold
// images — which makes m associative there, so re-associating the
// runner's left fold of m into a balanced tree cannot change the
// result. Every tree query is differentially checked against a full
// refold in runtime_stream_test and the fuzz_smoke streaming slice.
//
// Support levels per plan shape:
//
//  * LogPath     - NoPrefix / ConstPrefix scalar plans (internal nodes
//                  combine partial states via m; constant-prefix repair
//                  folds the right child's leftmost chunk head, kept in
//                  each node) and Refold plans (distinct-set union —
//                  trivially associative). O(log n) state merges per
//                  update.
//  * LinearMerge - conditional-prefix plans: their summary tables
//                  compose left-to-right only, so query() re-merges the
//                  n tiny leaf outputs linearly. Updates still fold just
//                  one chunk — the merge is O(n) in *chunks*, not
//                  elements, and stays far ahead of a full refold.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_RUNTIME_MERGETREE_H
#define GRASSP_RUNTIME_MERGETREE_H

#include "runtime/Kernels.h"

#include <cstdint>
#include <vector>

namespace grassp {
namespace runtime {

class MergeTree {
public:
  enum class Support { LogPath, LinearMerge };

  explicit MergeTree(const CompiledPlan &Plan);

  /// Folds \p Chunk as chunk index chunks() and re-combines its root
  /// path. Chunks must be non-empty (the SegmentSource invariant);
  /// throws std::invalid_argument otherwise.
  void append(SegmentView Chunk);

  /// Re-folds chunk \p I from \p Chunk's data and re-combines its root
  /// path. The replacement may change the chunk's length.
  void replace(size_t I, SegmentView Chunk);

  /// Output over all appended chunks. Throws std::logic_error on an
  /// empty tree (mirrors the empty-workload contract).
  int64_t query() const;

  size_t chunks() const { return ChunkSizes.size(); }
  uint64_t elements() const { return NumElements; }
  Support support() const { return Sup; }

  /// Plan-state merges performed by the last append/replace (path
  /// recombines; the per-update work bench_stream reports).
  size_t lastUpdateCombines() const { return LastCombines; }

private:
  /// One tree node (leaf or internal) for the LogPath shapes. For
  /// scalar plans: State is the m-combination of the node's repaired
  /// chunk states except the rightmost, Right the rightmost chunk's
  /// unrepaired state (the flat merge never repairs the final segment,
  /// so the repair of this node's last chunk must wait until a right
  /// sibling exists), Head the ≤PrefixLen-element repair prefix of the
  /// node's leftmost chunk. For Refold plans only Distinct is used.
  struct Node {
    bool HasState = false; // node spans >= 2 chunks
    std::vector<int64_t> State;
    std::vector<int64_t> Right;
    std::vector<int64_t> Head;
    std::vector<int64_t> Distinct;
  };

  Node makeLeaf(SegmentView Chunk) const;
  Node combine(const Node &A, const Node &B) const;
  void updatePath(size_t Leaf);

  const CompiledPlan &Plan;
  Support Sup;
  bool Refold;
  size_t PrefixLen; // ConstPrefix repair length; 0 otherwise

  uint64_t NumElements = 0;
  std::vector<size_t> ChunkSizes;
  size_t LastCombines = 0;

  // LogPath: Levels[0] = leaf nodes, Levels[k][i] covers leaves
  // [i*2^k, (i+1)*2^k); an odd tail node is carried up unchanged.
  std::vector<std::vector<Node>> Levels;

  // LinearMerge: per-chunk worker outputs, re-merged on query().
  std::vector<WorkerOutput> Leaves;
};

} // namespace runtime
} // namespace grassp

#endif // GRASSP_RUNTIME_MERGETREE_H
