//===- runtime/Kernels.cpp -------------------------------------------------=//

#include "runtime/Kernels.h"

#include "ir/DomainEval.h"
#include "lang/Interp.h"
#include "runtime/DistinctSet.h"
#include "runtime/SegmentSource.h"

#include <cassert>

namespace grassp {
namespace runtime {

namespace {

std::vector<std::string> fieldNames(const lang::SerialProgram &Prog,
                                    bool WithInput) {
  std::vector<std::string> Names;
  for (const lang::Field &F : Prog.State.fields())
    Names.push_back(F.Name);
  if (WithInput)
    Names.push_back(lang::inputVarName());
  return Names;
}

/// Per-thread scratch for the fold/output entry points. Grows
/// monotonically and is reused across calls, so a shared CompiledProgram
/// does no per-call heap allocation and stays const-callable from
/// concurrent ThreadPool workers.
int64_t *tlScratch(size_t N) {
  thread_local std::vector<int64_t> S;
  if (S.size() < N)
    S.resize(N);
  return S.data();
}

/// Runs a single-input bytecode function on one element.
int64_t run1(const ir::BytecodeFunction &Fn, int64_t El,
             std::vector<int64_t> &Regs) {
  Regs.resize(Fn.numRegs());
  Regs[0] = El;
  int64_t Out = 0;
  Fn.run(Regs.data(), &Out);
  return Out;
}

} // namespace

const char *execTierName(ExecTier T) {
  switch (T) {
  case ExecTier::Specialized:
    return "specialized";
  case ExecTier::Native:
    return "native";
  case ExecTier::LoopVM:
    return "loop-vm";
  case ExecTier::PerElement:
    return "per-element";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// CompiledProgram
//===----------------------------------------------------------------------===//

CompiledProgram::CompiledProgram(const lang::SerialProgram &Prog,
                                 bool AllowSpecialize, bool AllowNative)
    : Prog(Prog), Bag(Prog.State.hasBag()) {
  if (Bag) {
    assert(Prog.State.size() == 1 && "bag kernels support bag-only state");
    Tier = ExecTier::Specialized; // the native hash-set distinct kernel.
    return;
  }
  StepFn = ir::BytecodeFunction::compile(Prog.Step, fieldNames(Prog, true));
  StepOpt = StepFn.optimized();
  OutputFn = ir::BytecodeFunction::compile({Prog.Output},
                                           fieldNames(Prog, false))
                 .optimized();
  if (AllowSpecialize)
    Spec = specializeStep(Prog);
  // Null when no host compiler, the compile failed, or the jit is
  // disabled; the tier simply doesn't exist then.
  if (AllowNative)
    Native = jit::KernelCache::instance().getOrCompile(StepOpt);
  Tier = Spec     ? ExecTier::Specialized
         : Native ? ExecTier::Native
                  : ExecTier::LoopVM;
}

bool CompiledProgram::tierAvailable(ExecTier T) const {
  if (Bag)
    return T == ExecTier::Specialized;
  switch (T) {
  case ExecTier::Specialized:
    return Spec.has_value();
  case ExecTier::Native:
    return Native != nullptr;
  case ExecTier::LoopVM:
  case ExecTier::PerElement:
    return true;
  }
  return false;
}

std::string CompiledProgram::specializationInfo() const {
  if (Bag)
    return "distinct(hash-set)";
  return Spec ? Spec->describe() : std::string();
}

uint64_t CompiledProgram::bytecodeHash() const {
  return jit::bytecodeHash(StepOpt);
}

std::vector<int64_t> CompiledProgram::initialState() const {
  std::vector<int64_t> St;
  if (Bag)
    return St;
  for (const lang::Field &F : Prog.State.fields())
    St.push_back(F.InitInt);
  return St;
}

void CompiledProgram::foldSegment(std::vector<int64_t> &State,
                                  SegmentView Seg) const {
  foldSegmentTier(Tier, State, Seg);
}

void CompiledProgram::foldSegmentTier(ExecTier T, std::vector<int64_t> &State,
                                      SegmentView Seg) const {
  assert(!Bag && "bag programs use runSerial / the distinct worker");
  assert(tierAvailable(T) && "tier not available for this program");
  switch (T) {
  case ExecTier::Specialized:
    Spec->fold(State.data(), Seg.Data, Seg.Size);
    return;
  case ExecTier::Native:
    Native->fold(State.data(), Seg.Data, Seg.Size);
    return;
  case ExecTier::LoopVM:
    StepOpt.foldLoop(Seg.Data, Seg.Size, State.data(),
                     tlScratch(StepOpt.scratchSize()));
    return;
  case ExecTier::PerElement: {
    size_t NF = State.size();
    int64_t *Regs = tlScratch(StepFn.numRegs());
    for (size_t I = 0; I != Seg.Size; ++I) {
      for (size_t K = 0; K != NF; ++K)
        Regs[K] = State[K];
      Regs[NF] = Seg.Data[I];
      StepFn.run(Regs, State.data());
    }
    return;
  }
  }
}

void CompiledProgram::step(std::vector<int64_t> &State, int64_t El) const {
  SegmentView One{&El, 1};
  foldSegment(State, One);
}

int64_t CompiledProgram::output(const std::vector<int64_t> &State) const {
  assert(!Bag);
  int64_t *Regs = tlScratch(OutputFn.numRegs());
  for (size_t K = 0; K != State.size(); ++K)
    Regs[K] = State[K];
  int64_t Out = 0;
  OutputFn.run(Regs, &Out);
  return Out;
}

int64_t CompiledProgram::runSerial(const std::vector<SegmentView> &Segs) const {
  return runSerialTier(Tier, Segs);
}

int64_t
CompiledProgram::runSerialTier(ExecTier T,
                               const std::vector<SegmentView> &Segs) const {
  assert(tierAvailable(T) && "tier not available for this program");
  if (Bag) {
    DistinctSet Seen;
    for (const SegmentView &S : Segs)
      for (size_t I = 0; I != S.Size; ++I)
        Seen.insert(S.Data[I]);
    return static_cast<int64_t>(Seen.size());
  }
  std::vector<int64_t> St = initialState();
  for (const SegmentView &S : Segs)
    foldSegmentTier(T, St, S);
  return output(St);
}

int64_t CompiledProgram::runSerialSource(const SegmentSource &Src) const {
  return runSerialSourceTier(Tier, Src);
}

int64_t CompiledProgram::runSerialSourceTier(ExecTier T,
                                             const SegmentSource &Src) const {
  assert(tierAvailable(T) && "tier not available for this program");
  std::unique_ptr<SegmentCursor> C = Src.cursor();
  if (Bag) {
    DistinctSet Seen;
    for (size_t I = 0; I != Src.chunkCount(); ++I) {
      SegmentView S = C->chunk(I);
      for (size_t K = 0; K != S.Size; ++K)
        Seen.insert(S.Data[K]);
    }
    return static_cast<int64_t>(Seen.size());
  }
  std::vector<int64_t> St = initialState();
  for (size_t I = 0; I != Src.chunkCount(); ++I)
    foldSegmentTier(T, St, C->chunk(I));
  return output(St);
}

//===----------------------------------------------------------------------===//
// CompiledPlan
//===----------------------------------------------------------------------===//

CompiledPlan::CompiledPlan(const lang::SerialProgram &Prog,
                           const synth::ParallelPlan &Plan,
                           bool AllowSpecialize, bool AllowNative)
    : Prog(Prog), Plan(Plan), Compiled(Prog, AllowSpecialize, AllowNative) {
  if (Plan.Kind != synth::Scenario::CondPrefixRefold &&
      Plan.Kind != synth::Scenario::CondPrefixSummary)
    return;
  const synth::CondPrefixInfo &CP = Plan.Cond;
  std::vector<std::string> InOnly = {lang::inputVarName()};
  PcFn = ir::BytecodeFunction::compile({CP.PrefixCond}, InOnly);
  if (Plan.Kind != synth::Scenario::CondPrefixSummary)
    return;
  CtrlStepFns.resize(CP.numValuations());
  ModeFns.resize(CP.numValuations());
  ArgFns.resize(CP.numValuations());
  for (size_t V = 0; V != CP.numValuations(); ++V) {
    for (const ir::ExprRef &E : CP.CtrlStep[V])
      CtrlStepFns[V].push_back(ir::BytecodeFunction::compile({E}, InOnly));
    for (const ir::ExprRef &E : CP.AccMode[V])
      ModeFns[V].push_back(ir::BytecodeFunction::compile({E}, InOnly));
    for (const ir::ExprRef &E : CP.AccArg[V])
      ArgFns[V].push_back(ir::BytecodeFunction::compile({E}, InOnly));
  }
}

int64_t CompiledPlan::applyFlavor(synth::AccFlavor F, int64_t A,
                                  int64_t B) const {
  switch (F) {
  case synth::AccFlavor::Plus:
    return A + B;
  case synth::AccFlavor::Max:
    return A > B ? A : B;
  case synth::AccFlavor::Min:
    return A < B ? A : B;
  case synth::AccFlavor::And:
    return (A != 0 && B != 0) ? 1 : 0;
  case synth::AccFlavor::Or:
    return (A != 0 || B != 0) ? 1 : 0;
  case synth::AccFlavor::SetLike:
    return B;
  }
  return A;
}

WorkerOutput CompiledPlan::runWorker(SegmentView Seg) const {
  switch (Plan.Kind) {
  case synth::Scenario::NoPrefix:
  case synth::Scenario::ConstPrefix:
    return runScanWorker(Seg);
  case synth::Scenario::CondPrefixRefold:
  case synth::Scenario::CondPrefixSummary:
    return runCondWorker(Seg);
  }
  return {};
}

WorkerOutput CompiledPlan::runScanWorker(SegmentView Seg) const {
  WorkerOutput W;
  if (Compiled.usesBag()) {
    DistinctSet Seen;
    for (size_t I = 0; I != Seg.Size; ++I)
      Seen.insert(Seg.Data[I]);
    W.Distinct = Seen.takeOrder();
    return W;
  }
  W.D = Compiled.initialState();
  Compiled.foldSegment(W.D, Seg);
  return W;
}

WorkerOutput CompiledPlan::runCondWorker(SegmentView Seg) const {
  const synth::CondPrefixInfo &CP = Plan.Cond;
  bool Summary = Plan.Kind == synth::Scenario::CondPrefixSummary;
  size_t NumV = CP.numValuations();
  size_t NumAcc = CP.AccFields.size();
  size_t NumCtrl = CP.CtrlFields.size();

  WorkerOutput W;
  W.D = Compiled.initialState();
  if (Summary) {
    W.CtrlCur.resize(NumV);
    for (size_t V = 0; V != NumV; ++V)
      W.CtrlCur[V] = static_cast<uint32_t>(V);
    W.ModeArg.assign(NumV, std::vector<std::pair<int64_t, int64_t>>(
                               NumAcc, {0, 0}));
  }

  std::vector<int64_t> Regs;
  std::vector<int64_t> NewCtrl(NumCtrl);
  size_t I = 0;
  for (; I != Seg.Size; ++I) {
    int64_t El = Seg.Data[I];
    if (run1(PcFn, El, Regs) != 0)
      break; // boundary found.
    if (!Summary) {
      W.PrefixData.push_back(El);
      continue;
    }
    for (size_t V = 0; V != NumV; ++V) {
      uint32_t Cur = W.CtrlCur[V];
      // Accumulator transforms use the pre-element valuation.
      for (size_t J = 0; J != NumAcc; ++J) {
        int64_t M2 = run1(ModeFns[Cur][J], El, Regs);
        int64_t A2 = run1(ArgFns[Cur][J], El, Regs);
        auto &[M1, A1] = W.ModeArg[V][J];
        if (M2 == 1) {
          M1 = 1;
          A1 = A2;
        } else if (M2 == 2) {
          if (M1 == 0) {
            M1 = 2;
            A1 = A2;
          } else {
            A1 = applyFlavor(CP.AccFlavors[J], A1, A2);
          }
        } // M2 == 0: identity, nothing to do.
      }
      for (size_t K = 0; K != NumCtrl; ++K)
        NewCtrl[K] = run1(CtrlStepFns[Cur][K], El, Regs);
      // Map the valuation back to its index; unknown valuations keep the
      // current index (the verifier rules this out for accepted plans).
      for (size_t X = 0; X != NumV; ++X) {
        bool Match = true;
        for (size_t K = 0; K != NumCtrl; ++K)
          Match &= (CP.CtrlValues[X][K] == NewCtrl[K]);
        if (Match) {
          W.CtrlCur[V] = static_cast<uint32_t>(X);
          break;
        }
      }
    }
  }
  if (I != Seg.Size) {
    W.Found = true;
    W.Boundary = Seg.Data[I];
    Compiled.foldSegment(W.D, {Seg.Data + I, Seg.Size - I});
  }
  return W;
}

void CompiledPlan::applyUpd(std::vector<int64_t> &C,
                            const WorkerOutput &W) const {
  const synth::CondPrefixInfo &CP = Plan.Cond;
  // Find C's control valuation.
  size_t Idx = CP.numValuations();
  for (size_t V = 0; V != CP.numValuations(); ++V) {
    bool Match = true;
    for (size_t K = 0; K != CP.CtrlFields.size(); ++K)
      Match &= (C[CP.CtrlFields[K]] == CP.CtrlValues[V][K]);
    if (Match) {
      Idx = V;
      break;
    }
  }
  if (Idx == CP.numValuations())
    return; // unreachable for verified plans.
  const std::vector<int64_t> &End = CP.CtrlValues[W.CtrlCur[Idx]];
  for (size_t K = 0; K != CP.CtrlFields.size(); ++K)
    C[CP.CtrlFields[K]] = End[K];
  for (size_t J = 0; J != CP.AccFields.size(); ++J) {
    auto [M, A] = W.ModeArg[Idx][J];
    int64_t &Cur = C[CP.AccFields[J]];
    if (M == 1)
      Cur = A;
    else if (M == 2)
      Cur = applyFlavor(CP.AccFlavors[J], Cur, A);
  }
}

void CompiledPlan::combineAtBoundary(std::vector<int64_t> &C,
                                     const WorkerOutput &W) const {
  const synth::CondPrefixInfo &CP = Plan.Cond;
  std::vector<int64_t> T = C;
  Compiled.step(T, W.Boundary);
  std::vector<int64_t> W0 = Compiled.initialState();
  Compiled.step(W0, W.Boundary);

  C = W.D; // control fields and SetLike accumulators.
  for (size_t J = 0; J != CP.AccFields.size(); ++J) {
    size_t F = CP.AccFields[J];
    switch (CP.AccFlavors[J]) {
    case synth::AccFlavor::Plus:
      C[F] = T[F] + (W.D[F] - W0[F]);
      break;
    case synth::AccFlavor::Max:
      C[F] = std::max(T[F], W.D[F]);
      break;
    case synth::AccFlavor::Min:
      C[F] = std::min(T[F], W.D[F]);
      break;
    case synth::AccFlavor::And:
      C[F] = (T[F] != 0 && (W0[F] == 0 || W.D[F] != 0)) ? 1 : 0;
      break;
    case synth::AccFlavor::Or:
      C[F] = (T[F] != 0 || (W.D[F] != 0 && W0[F] == 0)) ? 1 : 0;
      break;
    case synth::AccFlavor::SetLike:
      break; // already W.D[F].
    }
  }
}

std::vector<int64_t>
CompiledPlan::mergeStates(const std::vector<int64_t> &A,
                          const std::vector<int64_t> &B) const {
  ir::ConcretePolicy P;
  ir::DomainEnv<ir::ConcretePolicy> Env;
  for (size_t K = 0; K != Prog.State.size(); ++K) {
    Env.emplace("a_" + Prog.State.field(K).Name,
                ir::DomainValue<ir::ConcretePolicy>::scalar(A[K]));
    Env.emplace("b_" + Prog.State.field(K).Name,
                ir::DomainValue<ir::ConcretePolicy>::scalar(B[K]));
  }
  std::vector<int64_t> Out(Prog.State.size());
  for (size_t K = 0; K != Prog.State.size(); ++K)
    Out[K] = ir::evalExpr(Plan.Merge.Combine[K], Env, P).Sc;
  return Out;
}

int64_t CompiledPlan::merge(const std::vector<WorkerOutput> &Workers,
                            const std::vector<SegmentView> &Segs) const {
  assert(Workers.size() == Segs.size() && "one worker output per segment");
  switch (Plan.Kind) {
  case synth::Scenario::NoPrefix:
  case synth::Scenario::ConstPrefix: {
    if (Plan.Merge.Refold) {
      DistinctSet All;
      for (const WorkerOutput &W : Workers)
        for (int64_t V : W.Distinct)
          All.insert(V);
      return static_cast<int64_t>(All.size());
    }
    // Empty segments sit outside the verified data model (the bounded
    // checker quantifies over non-empty segments only), and a d0 partial
    // state is not guaranteed to be neutral for a nontrivial merge — so
    // drop them here. The concatenation semantics is unchanged, and the
    // remaining shape is one the plan was verified for.
    std::vector<std::vector<int64_t>> States;
    std::vector<size_t> Live; // indices of non-empty segments.
    States.reserve(Workers.size());
    for (size_t I = 0; I != Workers.size(); ++I) {
      if (Segs[I].Size == 0)
        continue;
      States.push_back(Workers[I].D);
      Live.push_back(I);
    }
    if (States.empty())
      return Compiled.output(Compiled.initialState());
    // Repair partial states with constant prefixes of the *next
    // non-empty* successor (what PlanEval::runConstPrefix computes once
    // empties are dropped).
    if (Plan.Kind == synth::Scenario::ConstPrefix) {
      for (size_t I = 0; I + 1 < States.size(); ++I) {
        const SegmentView &Next = Segs[Live[I + 1]];
        size_t L = std::min<size_t>(Plan.PrefixLen, Next.Size);
        Compiled.foldSegment(States[I], {Next.Data, L});
      }
    }
    // Left fold of the binary merge (interpreted; m is tiny).
    std::vector<int64_t> Acc = States[0];
    for (size_t I = 1; I != States.size(); ++I)
      Acc = mergeStates(Acc, States[I]);
    return Compiled.output(Acc);
  }
  case synth::Scenario::CondPrefixRefold:
  case synth::Scenario::CondPrefixSummary: {
    std::vector<int64_t> C = Compiled.initialState();
    for (const WorkerOutput &W : Workers) {
      if (Plan.Kind == synth::Scenario::CondPrefixSummary) {
        applyUpd(C, W);
      } else if (!W.PrefixData.empty()) {
        Compiled.foldSegment(C, {W.PrefixData.data(), W.PrefixData.size()});
      }
      if (W.Found)
        combineAtBoundary(C, W);
    }
    return Compiled.output(C);
  }
  }
  return 0;
}

} // namespace runtime
} // namespace grassp
