//===- runtime/Runner.h - Parallel execution and speedup modeling --------===//
//
// Two execution modes:
//
//  * ThreadPool mode — workers run concurrently on real std::threads (the
//    paper's 8-thread POSIX study); used for correctness and on machines
//    with real parallelism.
//  * Measured critical-path mode — workers run one-by-one, each timed;
//    the P-worker makespan is computed by LPT scheduling and the modeled
//    speedup is serial / (makespan + merge). This reproduces the *shape*
//    of the paper's Table-1 speedups on hosts without 8 hardware threads
//    (see DESIGN.md, substitutions).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_RUNTIME_RUNNER_H
#define GRASSP_RUNTIME_RUNNER_H

#include "runtime/Kernels.h"
#include "support/ThreadPool.h"

#include <vector>

namespace grassp {
namespace runtime {

struct ParallelRunResult {
  int64_t Output = 0;
  double WallSeconds = 0;               // end-to-end wall time.
  std::vector<double> WorkerSeconds;    // per-segment compute time.
  double MergeSeconds = 0;
};

/// Serial run over \p Segs; wall time in \p Seconds (optional).
int64_t runSerialTimed(const CompiledProgram &Prog,
                       const std::vector<SegmentView> &Segs,
                       double *Seconds = nullptr);

/// Parallel run. With \p Pool the workers execute concurrently; without,
/// they run sequentially but are timed individually (critical-path mode).
ParallelRunResult runParallel(const CompiledPlan &Plan,
                              const std::vector<SegmentView> &Segs,
                              ThreadPool *Pool = nullptr);

/// LPT makespan of \p WorkerSeconds on \p P identical workers.
double makespan(const std::vector<double> &WorkerSeconds, unsigned P);

/// Modeled speedup: SerialSeconds / (makespan(P) + MergeSeconds).
double modeledSpeedup(double SerialSeconds, const ParallelRunResult &R,
                      unsigned P);

} // namespace runtime
} // namespace grassp

#endif // GRASSP_RUNTIME_RUNNER_H
