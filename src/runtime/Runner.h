//===- runtime/Runner.h - Parallel execution and speedup modeling --------===//
//
// Two execution modes:
//
//  * ThreadPool mode — workers run concurrently on real std::threads (the
//    paper's 8-thread POSIX study); used for correctness and on machines
//    with real parallelism.
//  * Measured critical-path mode — workers run one-by-one, each timed;
//    the P-worker makespan is computed by LPT scheduling and the modeled
//    speedup is serial / (makespan + merge). This reproduces the *shape*
//    of the paper's Table-1 speedups on hosts without 8 hardware threads
//    (see DESIGN.md, substitutions).
//
// Fault tolerance: a RunPolicy arms runParallel against failing and
// straggling segment workers. Failed attempts (injected via
// support/FaultInject or real exceptions) are retried with bounded
// exponential backoff; stragglers get a speculative backup copy whose
// first finisher wins; a segment whose every attempt failed is refolded
// serially on the calling thread as a guaranteed last resort. The merged
// output is bit-identical to the fault-free run in every case — workers
// are pure functions of their segment.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_RUNTIME_RUNNER_H
#define GRASSP_RUNTIME_RUNNER_H

#include "runtime/Kernels.h"
#include "support/Cancel.h"
#include "support/FaultInject.h"
#include "support/ThreadPool.h"

#include <vector>

namespace grassp {
namespace runtime {

/// Fault sites runParallel consults. The worker site is keyed by
/// Attempt * WorkerAttemptKeyStride + SegmentIndex, so a test can plant
/// "segment 3's first attempt fails" exactly; the straggler site is
/// keyed by the segment index alone (a slow node stays slow). Backup
/// copies and serial refolds never consult the injector — they model
/// re-execution on a healthy node and are the guaranteed path.
inline constexpr const char *FaultSiteWorker = "runner.worker";
inline constexpr const char *FaultSiteStraggler = "runner.straggler";
inline constexpr uint64_t WorkerAttemptKeyStride = 1000003;

/// Fault-tolerance policy for runParallel. The default policy retries
/// but injects nothing, so existing callers behave exactly as before
/// (a worker that never throws never retries).
struct RunPolicy {
  /// Extra attempts granted to a failed segment worker before the
  /// serial-refold fallback.
  unsigned MaxRetries = 2;
  /// Base retry sleep in seconds (0 = immediate). Kept tiny by default:
  /// the simulated cluster pays modeled time, the real thread pool
  /// should not stall tests. The actual sleep before each retry is
  /// decorrelatedBackoff(Base, Cap, Prev, ...) — exponential growth with
  /// decorrelated jitter so correlated faults do not produce
  /// synchronized retry storms.
  double BackoffSeconds = 0.0;
  /// Upper bound on any single backoff sleep.
  double BackoffCapSeconds = 0.25;
  /// Seed for the jitter draw. The draw is a pure function of
  /// (seed, attempt key), never of wall clock or shared RNG state, so a
  /// chaos run replays its exact backoff schedule from its seed.
  uint64_t BackoffJitterSeed = 0;
  /// Launch a backup copy of straggling workers (ThreadPool mode only).
  bool Speculate = false;
  /// A running worker is a straggler once the batch is
  /// SpeculationMinCompletedFraction done and the worker has been
  /// running longer than SpeculationDelayFactor times the median
  /// completed-worker time (floored at SpeculationMinSeconds).
  double SpeculationDelayFactor = 4.0;
  double SpeculationMinCompletedFraction = 0.5;
  double SpeculationMinSeconds = 0.002;
  /// Fault injector consulted at the runner.worker / runner.straggler
  /// sites; null = no injection.
  FaultInjector *Faults = nullptr;
  /// Cooperative cancellation. When it fires, retry backoff and
  /// injected straggler stalls wake immediately, no new attempts or
  /// backups start, and runParallel returns a result with Cancelled set
  /// and NO merged output — a partial merge is never committed. Empty =
  /// never cancels (legacy behavior).
  CancelToken Token;
};

struct ParallelRunResult {
  int64_t Output = 0;
  /// The run was cut short by Policy.Token: Output is NOT valid (the
  /// merge was skipped rather than committed partially); WorkerSeconds
  /// and the accounting below still describe the work that did finish.
  bool Cancelled = false;
  /// Segments whose worker output was committed before the cut; equals
  /// Segs.size() on a completed run.
  unsigned CompletedSegments = 0;
  double WallSeconds = 0;               // end-to-end wall time.
  std::vector<double> WorkerSeconds;    // per-segment compute time.
  double MergeSeconds = 0;
  // Fault-tolerance accounting.
  unsigned FailedAttempts = 0;     // worker attempts that threw.
  unsigned Retries = 0;            // re-attempts scheduled after failures.
  unsigned SpeculativeLaunches = 0;// backup copies launched.
  unsigned SpeculativeWins = 0;    // backups that beat their primary.
  unsigned SerialRefolds = 0;      // segments recovered on the caller.
};

/// Decorrelated-jitter backoff (the AWS "decorrelated jitter" scheme):
/// the next sleep is drawn uniformly from [Base, 3 * Prev] and capped at
/// \p Cap, where \p Prev is the previous sleep (pass Base before the
/// first retry). The draw is a pure hash of (Seed, Key) — bit-exact
/// replay from the seed, and distinct keys (segments, attempts, workers)
/// decorrelate even when their faults were perfectly correlated.
/// Returns 0 when Base <= 0 (backoff disabled).
double decorrelatedBackoff(double Base, double Cap, double Prev,
                           uint64_t Seed, uint64_t Key);

/// Serial run over \p Segs; wall time in \p Seconds (optional).
int64_t runSerialTimed(const CompiledProgram &Prog,
                       const std::vector<SegmentView> &Segs,
                       double *Seconds = nullptr);

/// Parallel run. With \p Pool the workers execute concurrently; without,
/// they run sequentially but are timed individually (critical-path mode).
/// \p Policy governs retries, speculation, and fault injection.
ParallelRunResult runParallel(const CompiledPlan &Plan,
                              const std::vector<SegmentView> &Segs,
                              ThreadPool *Pool = nullptr,
                              const RunPolicy &Policy = RunPolicy());

/// Out-of-core parallel run: one worker per source chunk, each holding
/// one chunk resident via its own cursor. Shares the exact retry /
/// speculation / refold / cancellation core with the in-memory overload
/// and is bit-identical to it on the same element stream (constant-
/// prefix repair heads are prefetched; whole chunks never are).
ParallelRunResult runParallel(const CompiledPlan &Plan,
                              const SegmentSource &Src,
                              ThreadPool *Pool = nullptr,
                              const RunPolicy &Policy = RunPolicy());

/// Serial out-of-core run over \p Src; wall time in \p Seconds.
int64_t runSerialSourceTimed(const CompiledProgram &Prog,
                             const SegmentSource &Src,
                             double *Seconds = nullptr);

/// LPT makespan of \p WorkerSeconds on \p P identical workers.
double makespan(const std::vector<double> &WorkerSeconds, unsigned P);

/// Modeled speedup: SerialSeconds / (makespan(P) + MergeSeconds).
double modeledSpeedup(double SerialSeconds, const ParallelRunResult &R,
                      unsigned P);

} // namespace runtime
} // namespace grassp

#endif // GRASSP_RUNTIME_RUNNER_H
