//===- runtime/DistinctSet.h - Insertion-ordered int64 hash set ----------===//
//
// Open-addressing hash set used by the "counting distinct elements"
// kernels. The paper's serial reference code does a linear membership
// scan, which makes every distinct-elements run O(n*k); this set keeps
// the same observable behavior (insertion order is preserved, so worker
// outputs and merge refolds see identical sequences) at O(n) expected.
//
// Keys are hashed with the SplitMix64 finalizer — the same mixer as
// support/Random.h — which is enough to break up the adversarial
// low-entropy workloads the fuzzer generates.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_RUNTIME_DISTINCTSET_H
#define GRASSP_RUNTIME_DISTINCTSET_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace grassp {
namespace runtime {

class DistinctSet {
public:
  explicit DistinctSet(size_t ExpectedDistinct = 0) {
    size_t Cap = 64;
    while (Cap * 7 < ExpectedDistinct * 10)
      Cap *= 2;
    Keys.resize(Cap);
    Used.assign(Cap, 0);
    Mask = Cap - 1;
  }

  /// Inserts \p V unless already present; returns true when newly added.
  bool insert(int64_t V) {
    size_t I = slotFor(V);
    if (Used[I])
      return false;
    Used[I] = 1;
    Keys[I] = V;
    Order.push_back(V);
    if (Order.size() * 10 >= Keys.size() * 7)
      grow();
    return true;
  }

  bool contains(int64_t V) const { return Used[slotFor(V)]; }

  size_t size() const { return Order.size(); }

  /// The distinct elements in first-seen order.
  const std::vector<int64_t> &order() const { return Order; }
  std::vector<int64_t> takeOrder() { return std::move(Order); }

private:
  static uint64_t mix(uint64_t X) {
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
    return X ^ (X >> 31);
  }

  /// First slot in the probe chain holding \p V, or the free slot where
  /// it belongs.
  size_t slotFor(int64_t V) const {
    size_t I = static_cast<size_t>(mix(static_cast<uint64_t>(V))) & Mask;
    while (Used[I] && Keys[I] != V)
      I = (I + 1) & Mask;
    return I;
  }

  void grow() {
    std::vector<int64_t> OldKeys = std::move(Keys);
    std::vector<uint8_t> OldUsed = std::move(Used);
    Keys.assign(OldKeys.size() * 2, 0);
    Used.assign(OldKeys.size() * 2, 0);
    Mask = Keys.size() - 1;
    for (size_t I = 0; I != OldKeys.size(); ++I) {
      if (!OldUsed[I])
        continue;
      size_t J = slotFor(OldKeys[I]);
      Used[J] = 1;
      Keys[J] = OldKeys[I];
    }
  }

  std::vector<int64_t> Keys;
  std::vector<uint8_t> Used;
  std::vector<int64_t> Order;
  size_t Mask = 0;
};

} // namespace runtime
} // namespace grassp

#endif // GRASSP_RUNTIME_DISTINCTSET_H
