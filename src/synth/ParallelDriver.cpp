//===- synth/ParallelDriver.cpp -------------------------------------------==//

#include "synth/ParallelDriver.h"

#include "lang/Benchmarks.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <thread>

namespace grassp {
namespace synth {

const char *taskStatusName(TaskStatus S) {
  switch (S) {
  case TaskStatus::Solved:
    return "solved";
  case TaskStatus::Unknown:
    return "unknown";
  case TaskStatus::Failed:
    return "failed";
  }
  return "?";
}

ParallelDriver::ParallelDriver(DriverOptions Opts) : Opts(std::move(Opts)) {}

TaskResult ParallelDriver::synthesizeOne(const lang::SerialProgram &Prog,
                                         const DriverOptions &Opts) {
  TaskResult T;
  T.Name = Prog.Name;
  unsigned Budget = Opts.SmtTimeoutMs;
  for (unsigned Attempt = 0;; ++Attempt) {
    SynthOptions SO = Opts.Synth;
    SO.Bounds.SmtTimeoutMs = Budget;
    ++T.Attempts;
    T.BudgetMs = Budget;
    SynthesisResult R = synthesize(Prog, SO);
    bool SawUnknown = R.UnknownVerdicts != 0;
    if (Attempt > 0) {
      // Merge this attempt into the accumulated result: times and counts
      // add up, stage logs concatenate around a retry marker.
      R.SynthSeconds += T.Result.SynthSeconds;
      R.CandidatesTried += T.Result.CandidatesTried;
      R.SmtChecks += T.Result.SmtChecks;
      R.UnknownVerdicts += T.Result.UnknownVerdicts;
      std::vector<std::string> Log = std::move(T.Result.StageLog);
      Log.push_back("driver: retry with SMT budget " +
                    std::to_string(Budget) + "ms");
      Log.insert(Log.end(), R.StageLog.begin(), R.StageLog.end());
      R.StageLog = std::move(Log);
    }
    T.Result = std::move(R);
    if (T.Result.Success) {
      T.Status = TaskStatus::Solved;
      return T;
    }
    if (!SawUnknown) {
      T.Status = TaskStatus::Failed;
      return T;
    }
    if (Attempt >= Opts.MaxRetries) {
      T.Status = TaskStatus::Unknown;
      T.Result.StageLog.push_back(
          "driver: still unknown at " + std::to_string(Budget) +
          "ms SMT budget, giving up");
      return T;
    }
    Budget *= 2;
  }
}

std::vector<TaskResult>
ParallelDriver::run(const std::vector<const lang::SerialProgram *> &Progs)
    const {
  std::vector<TaskResult> Results(Progs.size());
  unsigned Jobs = Opts.Jobs != 0
                      ? Opts.Jobs
                      : std::max(1u, std::thread::hardware_concurrency());
  Jobs = std::min<unsigned>(Jobs, std::max<size_t>(Progs.size(), 1));
  if (Jobs <= 1) {
    for (size_t I = 0; I != Progs.size(); ++I)
      Results[I] = synthesizeOne(*Progs[I], Opts);
    return Results;
  }
  ThreadPool Pool(Jobs);
  for (size_t I = 0; I != Progs.size(); ++I)
    Pool.submit([this, &Results, &Progs, I] {
      Results[I] = synthesizeOne(*Progs[I], Opts);
    });
  Pool.wait();
  return Results;
}

std::vector<TaskResult> ParallelDriver::runAll() const {
  std::vector<const lang::SerialProgram *> Progs;
  for (const lang::SerialProgram &P : lang::allBenchmarks())
    Progs.push_back(&P);
  return run(Progs);
}

} // namespace synth
} // namespace grassp
