//===- synth/ParallelDriver.cpp -------------------------------------------==//

#include "synth/ParallelDriver.h"

#include "lang/Benchmarks.h"
#include "support/Journal.h"
#include "support/ThreadPool.h"
#include "support/Timing.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

namespace grassp {
namespace synth {

const char *taskStatusName(TaskStatus S) {
  switch (S) {
  case TaskStatus::Solved:
    return "solved";
  case TaskStatus::Unknown:
    return "unknown";
  case TaskStatus::Failed:
    return "failed";
  case TaskStatus::TimedOut:
    return "timeout";
  case TaskStatus::Crashed:
    return "crashed";
  case TaskStatus::Cancelled:
    return "cancelled";
  }
  return "?";
}

bool taskStatusFromName(const std::string &Name, TaskStatus *Out) {
  for (TaskStatus S :
       {TaskStatus::Solved, TaskStatus::Unknown, TaskStatus::Failed,
        TaskStatus::TimedOut, TaskStatus::Crashed, TaskStatus::Cancelled})
    if (Name == taskStatusName(S)) {
      *Out = S;
      return true;
    }
  return false;
}

std::string journalLine(const TaskResult &T) {
  std::ostringstream OS;
  OS << "{\"task\":\"" << support::jsonEscape(T.Name) << "\",\"status\":\""
     << taskStatusName(T.Status) << "\",\"group\":\""
     << support::jsonEscape(T.Result.Group) << "\",\"attempts\":" << T.Attempts
     << ",\"budget_ms\":" << T.BudgetMs << ",\"seconds\":"
     << T.Result.SynthSeconds << "}";
  return OS.str();
}

bool parseJournalLine(const std::string &Line, JournalEntry *Out) {
  // A torn line (the write a crash interrupted) is cut before its
  // closing brace; reject it outright rather than half-parsing it.
  if (!support::journalLineWellFormed(Line))
    return false;
  JournalEntry E;
  std::string Status;
  if (!support::jsonStringField(Line, "task", &E.Name) ||
      !support::jsonStringField(Line, "status", &Status) ||
      !taskStatusFromName(Status, &E.Status))
    return false;
  support::jsonStringField(Line, "group", &E.Group);
  double V = 0;
  if (support::jsonNumberField(Line, "attempts", &V))
    E.Attempts = static_cast<unsigned>(V);
  if (support::jsonNumberField(Line, "budget_ms", &V))
    E.BudgetMs = static_cast<unsigned>(V);
  if (support::jsonNumberField(Line, "seconds", &V))
    E.Seconds = V;
  *Out = E;
  return true;
}

std::vector<JournalEntry> loadJournal(const std::string &Path) {
  std::vector<JournalEntry> Entries;
  for (const std::string &Line : support::loadJournalLines(Path)) {
    JournalEntry E;
    if (!parseJournalLine(Line, &E))
      continue;
    // Later lines win: a re-run of the same task supersedes the old row.
    auto It = std::find_if(Entries.begin(), Entries.end(),
                           [&](const JournalEntry &X) {
                             return X.Name == E.Name;
                           });
    if (It != Entries.end())
      *It = E;
    else
      Entries.push_back(E);
  }
  return Entries;
}

ParallelDriver::ParallelDriver(DriverOptions Opts) : Opts(std::move(Opts)) {}

TaskResult ParallelDriver::synthesizeOne(const lang::SerialProgram &Prog,
                                         const DriverOptions &Opts,
                                         uint64_t TaskIndex) {
  TaskResult T;
  T.Name = Prog.Name;
  Stopwatch Wall;
  double Budget = Opts.SmtTimeoutMs;
  unsigned CrashBudget = Opts.MaxCrashRetries;

  // The per-task token: a child of the run token carrying the watchdog
  // deadline. Layered under the Wall check below it upgrades the
  // watchdog from "stop climbing between rungs" to "interrupt the SMT
  // query mid-flight and clamp each query to the remaining budget".
  Deadline TaskDl = Opts.TaskDeadlineSec > 0
                        ? Deadline::after(Opts.TaskDeadlineSec)
                        : Deadline();
  CancelToken TaskTok;
  if (Opts.Token.valid() || !TaskDl.isNever())
    TaskTok = Opts.Token.child(TaskDl);

  // Distinguishes "the whole run was cancelled" (Cancelled; never
  // journaled, so --resume re-runs the task) from "this task ran out of
  // wall clock" (TimedOut; a final verdict).
  auto classifyCut = [&]() {
    if (Opts.Token.cancelled()) {
      T.Status = TaskStatus::Cancelled;
      T.Result.FailureReason = "cancelled";
      T.Result.StageLog.push_back("driver: run cancelled, abandoning task");
    } else {
      T.Status = TaskStatus::TimedOut;
      T.Result.StageLog.push_back(
          "driver: watchdog deadline hit after " +
          std::to_string(Wall.seconds()) + "s, giving up");
    }
    return T;
  };

  auto capped = [&](double B) {
    if (Opts.MaxBudgetMs != 0)
      B = std::min(B, static_cast<double>(Opts.MaxBudgetMs));
    return std::max(1u, static_cast<unsigned>(B));
  };
  auto mergeAttempt = [&](SynthesisResult R, const std::string &Marker) {
    if (T.Attempts > 1) {
      R.SynthSeconds += T.Result.SynthSeconds;
      R.CandidatesTried += T.Result.CandidatesTried;
      R.SmtChecks += T.Result.SmtChecks;
      R.UnknownVerdicts += T.Result.UnknownVerdicts;
      std::vector<std::string> Log = std::move(T.Result.StageLog);
      Log.push_back(Marker);
      Log.insert(Log.end(), R.StageLog.begin(), R.StageLog.end());
      R.StageLog = std::move(Log);
    }
    T.Result = std::move(R);
  };

  for (unsigned Rung = 0;; ++Rung) {
    if (TaskTok.cancelled())
      return classifyCut();
    unsigned BudgetMs = capped(Budget);
    SynthOptions SO = Opts.Synth;
    SO.Bounds.SmtTimeoutMs = BudgetMs;
    SO.Bounds.Token = TaskTok;
    ++T.Attempts;
    T.BudgetMs = BudgetMs;

    SynthesisResult R;
    bool Crashed = false;
    std::string CrashWhat;
    try {
      if (Opts.Faults)
        Opts.Faults->maybeThrow(
            FaultSiteSynthTask,
            (T.Attempts - 1) * SynthAttemptKeyStride + TaskIndex);
      R = synthesize(Prog, SO);
    } catch (const std::exception &E) {
      Crashed = true;
      CrashWhat = E.what();
    }

    if (Crashed) {
      // A crashed attempt contributes no counts; just log it in place.
      T.Result.StageLog.push_back("driver: attempt " +
                                  std::to_string(T.Attempts) +
                                  " crashed (" + CrashWhat + ")");
      if (CrashBudget == 0) {
        T.Status = TaskStatus::Crashed;
        T.Result.FailureReason = "crashed: " + CrashWhat;
        T.Result.StageLog.push_back(
            "driver: crash-retry budget exhausted, giving up");
        return T;
      }
      --CrashBudget;
      ++T.CrashRetries;
      --Rung; // a crash re-runs the same ladder rung.
      T.Result.StageLog.push_back("driver: re-running attempt at " +
                                  std::to_string(BudgetMs) + "ms budget");
      continue;
    }

    bool SawUnknown = R.UnknownVerdicts != 0;
    mergeAttempt(std::move(R), "driver: retry with SMT budget " +
                                   std::to_string(BudgetMs) + "ms");
    if (T.Result.Success) {
      T.Status = TaskStatus::Solved;
      return T;
    }
    if (T.Result.Cancelled)
      return classifyCut();
    if (!SawUnknown) {
      T.Status = TaskStatus::Failed;
      return T;
    }
    if (Opts.TaskDeadlineSec > 0 && Wall.seconds() >= Opts.TaskDeadlineSec) {
      T.Status = TaskStatus::TimedOut;
      T.Result.StageLog.push_back(
          "driver: watchdog deadline hit after " +
          std::to_string(Wall.seconds()) + "s, giving up");
      return T;
    }
    if (Rung >= Opts.MaxRetries) {
      T.Status = TaskStatus::Unknown;
      T.Result.StageLog.push_back(
          "driver: still unknown at " + std::to_string(BudgetMs) +
          "ms SMT budget, giving up");
      return T;
    }
    Budget *= Opts.BudgetMultiplier > 1.0 ? Opts.BudgetMultiplier : 2.0;
  }
}

std::vector<TaskResult>
ParallelDriver::run(const std::vector<const lang::SerialProgram *> &Progs)
    const {
  std::vector<TaskResult> Results(Progs.size());

  // Resume: anything the journal already solved is restored, not re-run.
  std::map<std::string, JournalEntry> Done;
  if (Opts.Resume && !Opts.JournalPath.empty())
    for (const JournalEntry &E : loadJournal(Opts.JournalPath))
      if (E.Status == TaskStatus::Solved)
        Done[E.Name] = E;

  support::JournalWriter Journal;
  std::mutex JournalMutex;
  if (!Opts.JournalPath.empty() && !Journal.open(Opts.JournalPath))
    std::fprintf(stderr,
                 "warning: cannot open journal '%s'; running without\n",
                 Opts.JournalPath.c_str());
  auto record = [&](const TaskResult &T) {
    if (!Journal.isOpen())
      return;
    // A cancelled task got no verdict; keeping it out of the journal is
    // what makes --resume re-run exactly the unfinished remainder.
    if (T.Status == TaskStatus::Cancelled)
      return;
    std::lock_guard<std::mutex> Lock(JournalMutex);
    Journal.append(journalLine(T)); // one task, one durable line.
  };

  std::vector<size_t> Pending;
  for (size_t I = 0; I != Progs.size(); ++I) {
    auto It = Done.find(Progs[I]->Name);
    if (It == Done.end()) {
      Pending.push_back(I);
      continue;
    }
    TaskResult &T = Results[I];
    T.Name = It->second.Name;
    T.Status = It->second.Status;
    T.Attempts = It->second.Attempts;
    T.BudgetMs = It->second.BudgetMs;
    T.FromJournal = true;
    T.Result.Group = It->second.Group;
    T.Result.SynthSeconds = It->second.Seconds;
    T.Result.StageLog.push_back("driver: restored from journal, not re-run");
  }

  unsigned Jobs = Opts.Jobs != 0
                      ? Opts.Jobs
                      : std::max(1u, std::thread::hardware_concurrency());
  // A task the cancelled run never started (shed from the queue, or
  // skipped by the worker's entry check).
  auto markCancelled = [&](size_t I) {
    TaskResult &T = Results[I];
    T.Name = Progs[I]->Name;
    T.Status = TaskStatus::Cancelled;
    T.Result.Cancelled = true;
    T.Result.FailureReason = "cancelled";
    T.Result.StageLog.push_back("driver: run cancelled before task started");
  };

  Jobs = std::min<unsigned>(Jobs, std::max<size_t>(Pending.size(), 1));
  if (Jobs <= 1) {
    for (size_t I : Pending) {
      if (Opts.Token.cancelled()) {
        markCancelled(I);
        continue;
      }
      Results[I] = synthesizeOne(*Progs[I], Opts, I);
      record(Results[I]);
    }
    return Results;
  }
  PoolOptions PO;
  PO.NumThreads = Jobs;
  PO.QueueCap = Opts.QueueCap;
  PO.Token = Opts.Token;
  ThreadPool Pool(PO);
  std::vector<std::atomic<bool>> Started(Progs.size());
  for (size_t I : Pending) {
    SubmitResult SR = Pool.submit([this, &Results, &Progs, &record, &Started,
                                   I] {
      if (Opts.Token.cancelled())
        return; // marked Cancelled below, after the pool settles.
      Started[I].store(true, std::memory_order_release);
      Results[I] = synthesizeOne(*Progs[I], Opts, I);
      record(Results[I]);
    });
    if (SR == SubmitResult::Cancelled)
      break; // every later pending task is marked below.
  }
  Pool.wait();
  for (size_t I : Pending)
    if (!Started[I].load(std::memory_order_acquire))
      markCancelled(I);
  return Results;
}

std::vector<TaskResult> ParallelDriver::runAll() const {
  std::vector<const lang::SerialProgram *> Progs;
  for (const lang::SerialProgram &P : lang::allBenchmarks())
    Progs.push_back(&P);
  return run(Progs);
}

} // namespace synth
} // namespace grassp
