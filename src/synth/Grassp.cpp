//===- synth/Grassp.cpp ----------------------------------------------------=//

#include "synth/Grassp.h"

#include "support/Timing.h"
#include "synth/CondPrefix.h"
#include "synth/Grammar.h"

#include <sstream>

namespace grassp {
namespace synth {

namespace {

/// Tries each plan in \p Plans against the corpus and the bounded
/// verifier; returns the first verified plan.
bool tryPlans(EquivChecker &Checker, const std::vector<ParallelPlan> &Plans,
              const VerifyOptions &Bounds, SynthesisResult &Res,
              const char *StageName) {
  unsigned Tried = 0, Screened = 0;
  for (const ParallelPlan &Plan : Plans) {
    if (Bounds.Token.cancelled()) {
      Res.Cancelled = true;
      break;
    }
    ++Tried;
    if (!Checker.passesCorpus(Plan)) {
      ++Screened;
      continue;
    }
    Verdict V = Checker.verify(Plan, Bounds);
    if (V == Verdict::Cancelled) {
      Res.Cancelled = true;
      break;
    }
    if (V == Verdict::Unknown)
      ++Res.UnknownVerdicts;
    if (V == Verdict::Equivalent) {
      Res.Plan = Plan;
      Res.Success = true;
      std::ostringstream OS;
      OS << StageName << ": solved with candidate " << Tried << " of "
         << Plans.size() << " (" << Screened
         << " screened out by the corpus)";
      Res.StageLog.push_back(OS.str());
      Res.CandidatesTried += Tried;
      return true;
    }
    // Refuted or Unknown: the refuting model (if any) is already in the
    // corpus; keep searching.
  }
  std::ostringstream OS;
  if (Res.Cancelled)
    OS << StageName << ": cancelled after " << Tried << " of "
       << Plans.size() << " candidates";
  else
    OS << StageName << ": exhausted " << Plans.size() << " candidates ("
       << Screened << " screened out by the corpus)";
  Res.StageLog.push_back(OS.str());
  Res.CandidatesTried += Tried;
  return false;
}

} // namespace

SynthesisResult synthesize(const lang::SerialProgram &Prog,
                           const SynthOptions &Opts) {
  Stopwatch Timer;
  SynthesisResult Res;
  EquivChecker Checker(Prog);
  Checker.seedCorpus(Opts.CorpusTests, Opts.CorpusSeed);
  for (const Segments &S : Opts.SeedInputs)
    Checker.addCounterexample(S);

  auto Finish = [&](bool Ok) {
    Res.SynthSeconds = Timer.seconds();
    Res.SmtChecks = Checker.numSmtChecks();
    if (Ok)
      Res.Group = Res.Plan.group();
    return Res;
  };
  auto FinishCancelled = [&]() {
    Res.FailureReason = "cancelled";
    return Finish(false);
  };
  if (Opts.Bounds.Token.cancelled())
    return FinishCancelled();

  // Stage 0: user-supplied merge templates, if any (paper Sect. 4).
  if (!Opts.ExtraMerges.empty()) {
    std::vector<ParallelPlan> Plans;
    for (const MergeFn &M : Opts.ExtraMerges) {
      ParallelPlan P;
      P.Kind = Scenario::NoPrefix;
      P.Merge = M;
      Plans.push_back(std::move(P));
    }
    if (tryPlans(Checker, Plans, Opts.Bounds, Res, "stage0-user"))
      return Finish(true);
    if (Res.Cancelled)
      return FinishCancelled();
  }

  // Stage 1: no prefix, trivial merge.
  {
    std::vector<ParallelPlan> Plans;
    for (MergeFn &M : trivialMergeCandidates(Prog)) {
      ParallelPlan P;
      P.Kind = Scenario::NoPrefix;
      P.Merge = std::move(M);
      Plans.push_back(std::move(P));
    }
    if (!Plans.empty() &&
        tryPlans(Checker, Plans, Opts.Bounds, Res, "stage1-trivial"))
      return Finish(true);
    if (Res.Cancelled)
      return FinishCancelled();
  }

  // Stage 1b: no prefix, nontrivial merge.
  {
    std::vector<ParallelPlan> Plans;
    for (MergeFn &M : nontrivialMergeCandidates(Prog)) {
      ParallelPlan P;
      P.Kind = Scenario::NoPrefix;
      P.Merge = std::move(M);
      Plans.push_back(std::move(P));
    }
    if (!Plans.empty() &&
        tryPlans(Checker, Plans, Opts.Bounds, Res, "stage1-merge"))
      return Finish(true);
    if (Res.Cancelled)
      return FinishCancelled();
  }

  // Stage 2: constant prefixes. Bag states cannot replay elements.
  if (!Prog.State.hasBag()) {
    std::vector<MergeFn> Merges = nontrivialMergeCandidates(Prog);
    for (MergeFn &M : trivialMergeCandidates(Prog))
      Merges.insert(Merges.begin(), std::move(M));
    for (unsigned L = 1; L <= Opts.MaxConstPrefix; ++L) {
      std::vector<ParallelPlan> Plans;
      for (const MergeFn &M : Merges) {
        ParallelPlan P;
        P.Kind = Scenario::ConstPrefix;
        P.PrefixLen = static_cast<int>(L);
        P.Merge = M;
        Plans.push_back(std::move(P));
      }
      std::string Name = "stage2-constprefix-l" + std::to_string(L);
      if (tryPlans(Checker, Plans, Opts.Bounds, Res, Name.c_str()))
        return Finish(true);
      if (Res.Cancelled)
        return FinishCancelled();
    }
  }

  // Stage 3: conditional prefixes with summaries. User-supplied
  // prefix_cond templates are tried first.
  if (!Prog.State.hasBag()) {
    std::vector<ir::ExprRef> Pcs = Opts.ExtraPrefixConds;
    for (const ir::ExprRef &Pc : prefixCondCandidates(Prog))
      Pcs.push_back(Pc);
    std::vector<ParallelPlan> Plans;
    for (const ir::ExprRef &Pc : Pcs) {
      std::string Why;
      std::optional<CondPrefixInfo> Info = buildCondPrefix(Prog, Pc, &Why);
      if (!Info) {
        Res.StageLog.push_back("stage3: prefix_cond " + ir::toString(Pc) +
                               " rejected (" + Why + ")");
        continue;
      }
      ParallelPlan P;
      P.Kind = Scenario::CondPrefixSummary;
      P.Cond = std::move(*Info);
      Plans.push_back(std::move(P));
    }
    if (!Plans.empty() &&
        tryPlans(Checker, Plans, Opts.Bounds, Res, "stage3-condprefix"))
      return Finish(true);
    if (Res.Cancelled)
      return FinishCancelled();
  }

  Res.FailureReason = "no stage produced a verified plan";
  return Finish(false);
}

SynthesisResult synthesizeWithLazyBounds(const lang::SerialProgram &Prog,
                                         const SynthOptions &Opts,
                                         unsigned Widen,
                                         unsigned MaxRounds) {
  SynthOptions Cur = Opts;
  SynthesisResult Res = synthesize(Prog, Cur);
  for (unsigned Round = 0; Round != MaxRounds && Res.Success; ++Round) {
    // Re-verify the winner under wider bounds.
    VerifyOptions Wide = Cur.Bounds;
    Wide.MaxSegments += Widen;
    Wide.MaxLen += Widen;
    EquivChecker Checker(Prog);
    Segments Cex;
    Verdict V = Checker.verify(Res.Plan, Wide, &Cex);
    if (V == Verdict::Equivalent) {
      Res.StageLog.push_back(
          "lazy-bounds: plan re-verified at m<=" +
          std::to_string(Wide.MaxSegments) + ", len<=" +
          std::to_string(Wide.MaxLen));
      return Res;
    }
    if (V == Verdict::Unknown) {
      ++Res.UnknownVerdicts;
      Res.StageLog.push_back("lazy-bounds: wider verification unknown");
      return Res;
    }
    // Refuted at the wider bound: re-synthesize from scratch with the
    // wider bounds and the refuting input seeded into the corpus.
    Cur.Bounds = Wide;
    Cur.SeedInputs.push_back(Cex);
    double Spent = Res.SynthSeconds;
    std::vector<std::string> Log = std::move(Res.StageLog);
    Log.push_back("lazy-bounds: refuted at wider bounds, re-synthesizing");
    Res = synthesize(Prog, Cur);
    Res.SynthSeconds += Spent;
    Log.insert(Log.end(), Res.StageLog.begin(), Res.StageLog.end());
    Res.StageLog = std::move(Log);
  }
  return Res;
}

} // namespace synth
} // namespace grassp
