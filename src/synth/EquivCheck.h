//===- synth/EquivCheck.h - Bounded serial/parallel equivalence ----------===//
//
// The CEGIS backbone (paper Sect. 8): candidates are first screened
// against a corpus of concrete counterexamples (cheap), then checked
// symbolically — both programs are evaluated over arrays of symbolic
// elements for every segment shape within the bounds, the outputs are
// conjoined with a disequality, and unsatisfiability of every query
// establishes equivalence for the bound. Satisfying models become new
// corpus entries, pruning the remaining search space.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SYNTH_EQUIVCHECK_H
#define GRASSP_SYNTH_EQUIVCHECK_H

#include "lang/Program.h"
#include "support/Cancel.h"
#include "synth/ParallelPlan.h"

#include <cstdint>
#include <vector>

namespace grassp {
namespace synth {

using Segments = std::vector<std::vector<int64_t>>;

/// Bounds of the symbolic check: all segment counts in
/// [MinSegments, MaxSegments] with each segment length in [1, MaxLen].
/// Segments are non-empty (the paper's file-per-segment data model).
struct VerifyOptions {
  unsigned MinSegments = 2;
  unsigned MaxSegments = 3;
  unsigned MaxLen = 3;
  unsigned SmtTimeoutMs = 30000;
  /// Fires -> the in-flight SMT query is interrupted and verify()
  /// returns Cancelled at its next cooperative point. A token deadline
  /// also clamps each query's SMT timeout to the remaining budget.
  CancelToken Token;
};

enum class Verdict { Equivalent, Refuted, Unknown, Cancelled };

/// Counterexample-corpus + bounded-SMT equivalence checking for one
/// program.
class EquivChecker {
public:
  explicit EquivChecker(const lang::SerialProgram &Prog);

  /// Seeds the corpus with random and crafted segmented inputs.
  void seedCorpus(unsigned NumRandom, uint64_t Seed);

  /// Records a refuting input (typically an SMT model).
  void addCounterexample(const Segments &Segs);

  /// Fast concrete screen: does the plan match the serial program on
  /// every corpus entry?
  bool passesCorpus(const ParallelPlan &Plan) const;

  /// Bounded symbolic check. On Refuted, \p CexOut (if non-null) receives
  /// the refuting segments (also added to the corpus).
  Verdict verify(const ParallelPlan &Plan, const VerifyOptions &Opts,
                 Segments *CexOut = nullptr);

  size_t corpusSize() const { return Corpus.size(); }
  unsigned numSmtChecks() const { return SmtChecks; }

private:
  struct CorpusEntry {
    Segments Segs;
    int64_t Expected;
  };

  void addEntry(Segments Segs);

  const lang::SerialProgram &Prog;
  std::vector<CorpusEntry> Corpus;
  unsigned SmtChecks = 0;
};

} // namespace synth
} // namespace grassp

#endif // GRASSP_SYNTH_EQUIVCHECK_H
