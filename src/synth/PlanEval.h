//===- synth/PlanEval.h - Executing plans over abstract domains ----------===//
//
// The single definition of what a ParallelPlan *means*. Evaluation is
// branch-free (all control is `ite`/select) and templated over the scalar
// policy, so the exact same code:
//   * concretely executes plans (reference semantics for the runtime and
//     the counterexample corpus), and
//   * symbolically encodes plans for the bounded equivalence verifier.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SYNTH_PLANEVAL_H
#define GRASSP_SYNTH_PLANEVAL_H

#include "lang/Interp.h"
#include "synth/ParallelPlan.h"

#include <cassert>
#include <vector>

namespace grassp {
namespace synth {

/// Per-segment worker result for the conditional-prefix scenarios.
template <class S> struct WorkerResult {
  using Sc = typename S::Scalar;

  Sc Found;    // Bool: a boundary element was seen.
  Sc Boundary; // Int: the boundary element (meaningful iff Found).
  lang::StateVec<S> D; // fold(f, d0, suffix-including-boundary).

  // Summary scenario: per start-valuation control tracking and parametric
  // accumulator transforms.
  std::vector<std::vector<Sc>> CtrlCur;          // [v][ctrlField]
  std::vector<std::vector<Sc>> Mode;             // [v][acc]
  std::vector<std::vector<Sc>> Arg;              // [v][acc]

  // Refold scenario: every element with an "is in prefix" flag.
  std::vector<std::pair<Sc, Sc>> PrefixEls;
};

/// Executes plans of every scenario in domain S.
template <class S> class PlanExecutor {
public:
  using Sc = typename S::Scalar;
  using DV = ir::DomainValue<S>;
  using State = lang::StateVec<S>;

  PlanExecutor(const lang::SerialProgram &Prog, const ParallelPlan &Plan,
               S &P)
      : Prog(Prog), Plan(Plan), P(P) {}

  /// Runs the plan over \p Segments and returns the final output scalar.
  Sc run(const std::vector<std::vector<Sc>> &Segments) {
    switch (Plan.Kind) {
    case Scenario::NoPrefix:
      return runNoPrefix(Segments);
    case Scenario::ConstPrefix:
      return runConstPrefix(Segments);
    case Scenario::CondPrefixRefold:
    case Scenario::CondPrefixSummary:
      return runCondPrefix(Segments);
    }
    assert(false && "unknown scenario");
    return P.constInt(0);
  }

  /// Runs one conditional-prefix worker over a segment (exposed for the
  /// runtime and for tests).
  WorkerResult<S> runWorker(const std::vector<Sc> &Segment) {
    const CondPrefixInfo &CP = Plan.Cond;
    size_t NumV = CP.numValuations();
    size_t NumCtrl = CP.CtrlFields.size();
    size_t NumAcc = CP.AccFields.size();
    bool Summary = Plan.Kind == Scenario::CondPrefixSummary;

    WorkerResult<S> W;
    W.Found = P.constBool(false);
    W.Boundary = P.constInt(0);
    W.D = lang::initialState(Prog, P);
    if (Summary) {
      W.CtrlCur.resize(NumV);
      W.Mode.resize(NumV);
      W.Arg.resize(NumV);
      for (size_t V = 0; V != NumV; ++V) {
        for (size_t K = 0; K != NumCtrl; ++K)
          W.CtrlCur[V].push_back(ctrlConst(K, CP.CtrlValues[V][K]));
        for (size_t J = 0; J != NumAcc; ++J) {
          W.Mode[V].push_back(P.constInt(0)); // identity
          W.Arg[V].push_back(accZero(J));
        }
      }
    }

    for (const Sc &El : Segment)
      stepWorker(W, El);
    return W;
  }

  /// Advances a conditional-prefix worker by one element. Also the
  /// transition relation of the worker in the CHC encoding.
  void stepWorker(WorkerResult<S> &W, const Sc &El) {
    const CondPrefixInfo &CP = Plan.Cond;
    size_t NumV = CP.numValuations();
    size_t NumCtrl = CP.CtrlFields.size();
    size_t NumAcc = CP.AccFields.size();
    bool Summary = Plan.Kind == Scenario::CondPrefixSummary;
    {
      Sc PcEl = evalPrefixCond(El);
      Sc IsBnd = P.land(P.lnot(W.Found), PcEl);
      Sc InPrefix = P.land(P.lnot(W.Found), P.lnot(PcEl));
      W.Boundary = P.ite(IsBnd, El, W.Boundary);
      Sc FoundNext = P.lor(W.Found, PcEl);

      if (Summary) {
        for (size_t V = 0; V != NumV; ++V) {
          // Accumulator transforms use the control valuation *before*
          // this element; compute them first.
          std::vector<Sc> StepMode(NumAcc), StepArg(NumAcc);
          for (size_t J = 0; J != NumAcc; ++J) {
            StepMode[J] = selectByValuation(
                W.CtrlCur[V],
                [&](size_t Wv) { return evalOverIn(CP.AccMode[Wv][J], El); },
                P.constInt(0));
            StepArg[J] = selectByValuation(
                W.CtrlCur[V],
                [&](size_t Wv) { return evalOverIn(CP.AccArg[Wv][J], El); },
                accZero(J));
          }
          std::vector<Sc> NextCtrl(NumCtrl);
          for (size_t K = 0; K != NumCtrl; ++K)
            NextCtrl[K] = selectByValuation(
                W.CtrlCur[V],
                [&](size_t Wv) { return evalOverIn(CP.CtrlStep[Wv][K], El); },
                W.CtrlCur[V][K]);
          for (size_t J = 0; J != NumAcc; ++J) {
            auto [M2, A2] =
                composeParam(CP.AccFlavors[J], W.Mode[V][J], W.Arg[V][J],
                             StepMode[J], StepArg[J]);
            W.Mode[V][J] = P.ite(InPrefix, M2, W.Mode[V][J]);
            W.Arg[V][J] = P.ite(InPrefix, A2, W.Arg[V][J]);
          }
          for (size_t K = 0; K != NumCtrl; ++K)
            W.CtrlCur[V][K] = P.ite(InPrefix, NextCtrl[K], W.CtrlCur[V][K]);
        }
      } else {
        W.PrefixEls.emplace_back(El, InPrefix);
      }

      State Stepped = lang::stepState(Prog, W.D, El, P);
      W.D = selectState(FoundNext, Stepped, W.D);
      W.Found = FoundNext;
    }
  }

  /// The conditional-prefix merge: threads the true state through the
  /// segment summaries (synthesized upd), one boundary application of f,
  /// and the per-flavor suffix combine. Exposed for the runtime.
  Sc mergeWorkers(const std::vector<WorkerResult<S>> &Workers) {
    State C = lang::initialState(Prog, P);
    State D0 = lang::initialState(Prog, P);
    for (const WorkerResult<S> &W : Workers) {
      if (Plan.Kind == Scenario::CondPrefixSummary) {
        C = applyUpd(C, W);
      } else {
        for (const auto &ElFlag : W.PrefixEls) {
          State Stepped = lang::stepState(Prog, C, ElFlag.first, P);
          C = selectState(ElFlag.second, Stepped, C);
        }
      }
      State T = lang::stepState(Prog, C, W.Boundary, P);
      State W0 = lang::stepState(Prog, D0, W.Boundary, P);
      State Comb = combineStates(T, W.D, W0);
      C = selectState(W.Found, Comb, C);
    }
    return lang::outputOf(Prog, C, P);
  }

private:
  //===------------------------------------------------------------------===
  // No-prefix and constant-prefix scenarios.
  //===------------------------------------------------------------------===

  Sc runNoPrefix(const std::vector<std::vector<Sc>> &Segments) {
    std::vector<State> Partials = foldAll(Segments);
    return mergeAndOutput(Partials);
  }

  Sc runConstPrefix(const std::vector<std::vector<Sc>> &Segments) {
    std::vector<State> Partials = foldAll(Segments);
    // Repair d_i with the first PrefixLen elements of segment i+1.
    for (size_t I = 0; I + 1 < Partials.size(); ++I) {
      const std::vector<Sc> &Next = Segments[I + 1];
      size_t L = std::min<size_t>(Plan.PrefixLen, Next.size());
      for (size_t K = 0; K != L; ++K)
        Partials[I] = lang::stepState(Prog, Partials[I], Next[K], P);
    }
    return mergeAndOutput(Partials);
  }

  std::vector<State> foldAll(const std::vector<std::vector<Sc>> &Segments) {
    std::vector<State> Partials;
    Partials.reserve(Segments.size());
    for (const std::vector<Sc> &Seg : Segments)
      Partials.push_back(
          lang::foldSegment(Prog, lang::initialState(Prog, P), Seg, P));
    return Partials;
  }

  Sc mergeAndOutput(const std::vector<State> &Partials) {
    assert(!Partials.empty() && "need at least one segment");
    State Acc = Partials[0];
    for (size_t I = 1, E = Partials.size(); I != E; ++I)
      Acc = applyMerge(Acc, Partials[I]);
    return lang::outputOf(Prog, Acc, P);
  }

  /// Binary merge step of the MergeFn.
  State applyMerge(const State &A, const State &B) {
    const lang::StateLayout &Layout = Prog.State;
    ir::DomainEnv<S> Env;
    for (size_t I = 0, E = Layout.size(); I != E; ++I) {
      Env.emplace("a_" + Layout.field(I).Name, A[I]);
      Env.emplace("b_" + Layout.field(I).Name, B[I]);
    }
    State Out;
    Out.reserve(Layout.size());
    for (size_t I = 0, E = Layout.size(); I != E; ++I) {
      if (Plan.Merge.Refold && Layout.field(I).Ty == ir::TypeKind::Bag) {
        Out.push_back(ir::bagUnionVal(P, A[I], B[I]));
        continue;
      }
      assert(I < Plan.Merge.Combine.size() && Plan.Merge.Combine[I] &&
             "missing merge expression for field");
      Out.push_back(ir::evalExpr(Plan.Merge.Combine[I], Env, P));
    }
    return Out;
  }

  //===------------------------------------------------------------------===
  // Conditional-prefix scenarios.
  //===------------------------------------------------------------------===

  Sc runCondPrefix(const std::vector<std::vector<Sc>> &Segments) {
    assert(!Prog.State.hasBag() &&
           "conditional-prefix plans do not support bag state");
    std::vector<WorkerResult<S>> Workers;
    Workers.reserve(Segments.size());
    for (const std::vector<Sc> &Seg : Segments)
      Workers.push_back(runWorker(Seg));
    return mergeWorkers(Workers);
  }

  Sc evalPrefixCond(const Sc &El) { return evalOverIn(Plan.Cond.PrefixCond, El); }

  /// Evaluates an expression over the single variable "in".
  Sc evalOverIn(const ir::ExprRef &E, const Sc &El) {
    ir::DomainEnv<S> Env;
    Env.emplace(lang::inputVarName(), DV::scalar(El));
    return ir::evalExpr(E, Env, P).Sc;
  }

  /// Constant for control field \p K with table value \p V.
  Sc ctrlConst(size_t K, int64_t V) {
    const lang::Field &F = Prog.State.field(Plan.Cond.CtrlFields[K]);
    return F.Ty == ir::TypeKind::Bool ? P.constBool(V != 0) : P.constInt(V);
  }

  /// Neutral placeholder argument for accumulator \p J.
  Sc accZero(size_t J) {
    const lang::Field &F = Prog.State.field(Plan.Cond.AccFields[J]);
    return F.Ty == ir::TypeKind::Bool ? P.constBool(false) : P.constInt(0);
  }

  /// Bool scalar: do the control scalars \p Ctrl equal valuation \p V?
  Sc matchValuation(const std::vector<Sc> &Ctrl, size_t V) {
    const CondPrefixInfo &CP = Plan.Cond;
    Sc M = P.constBool(true);
    for (size_t K = 0, E = CP.CtrlFields.size(); K != E; ++K) {
      const lang::Field &F = Prog.State.field(CP.CtrlFields[K]);
      Sc Want = ctrlConst(K, CP.CtrlValues[V][K]);
      Sc EqK = F.Ty == ir::TypeKind::Bool
                   ? P.ite(Ctrl[K], Want, P.lnot(Want))
                   : P.eq(Ctrl[K], Want);
      M = P.land(M, EqK);
    }
    return M;
  }

  /// Chain-select: picks Table(w) for the valuation w matching \p Ctrl.
  template <class TableFn>
  Sc selectByValuation(const std::vector<Sc> &Ctrl, TableFn Table,
                       Sc Default) {
    Sc Out = std::move(Default);
    for (size_t V = Plan.Cond.numValuations(); V-- > 0;)
      Out = P.ite(matchValuation(Ctrl, V), Table(V), Out);
    return Out;
  }

  Sc flavorOp(AccFlavor F, const Sc &A, const Sc &B) {
    switch (F) {
    case AccFlavor::Plus:
      return P.add(A, B);
    case AccFlavor::Max:
      return P.smax(A, B);
    case AccFlavor::Min:
      return P.smin(A, B);
    case AccFlavor::And:
      return P.land(A, B);
    case AccFlavor::Or:
      return P.lor(A, B);
    case AccFlavor::SetLike:
      return B;
    }
    assert(false && "bad flavor");
    return A;
  }

  /// Composition of parametric transforms: first (M1,A1), then (M2,A2).
  std::pair<Sc, Sc> composeParam(AccFlavor F, const Sc &M1, const Sc &A1,
                                 const Sc &M2, const Sc &A2) {
    Sc Zero = P.constInt(0), One = P.constInt(1), Two = P.constInt(2);
    Sc M2IsSet = P.eq(M2, One), M2IsId = P.eq(M2, Zero);
    Sc M1IsId = P.eq(M1, Zero), M1IsSet = P.eq(M1, One);
    Sc M = P.ite(M2IsSet, One,
                 P.ite(M2IsId, M1, P.ite(M1IsSet, One, Two)));
    Sc A = P.ite(M2IsSet, A2,
                 P.ite(M2IsId, A1,
                       P.ite(M1IsId, A2, flavorOp(F, A1, A2))));
    return {M, A};
  }

  /// Applies transform (M, A) of flavor \p F to current value \p Cur.
  Sc applyParam(AccFlavor F, const Sc &M, const Sc &A, const Sc &Cur) {
    Sc Zero = P.constInt(0), One = P.constInt(1);
    return P.ite(P.eq(M, Zero), Cur, P.ite(P.eq(M, One), A, flavorOp(F, Cur, A)));
  }

public:
  /// The synthesized upd: applies worker \p W's prefix summary to state C.
  /// Public so the runtime and the upd-materializer reuse it.
  State applyUpd(const State &C, const WorkerResult<S> &W) {
    const CondPrefixInfo &CP = Plan.Cond;
    std::vector<Sc> Ctrl;
    Ctrl.reserve(CP.CtrlFields.size());
    for (size_t K = 0, E = CP.CtrlFields.size(); K != E; ++K)
      Ctrl.push_back(C[CP.CtrlFields[K]].Sc);

    State Out = C;
    for (size_t K = 0, E = CP.CtrlFields.size(); K != E; ++K) {
      Sc NewV = selectByValuation(
          Ctrl, [&](size_t V) { return W.CtrlCur[V][K]; }, Ctrl[K]);
      Out[CP.CtrlFields[K]] = DV::scalar(NewV);
    }
    for (size_t J = 0, E = CP.AccFields.size(); J != E; ++J) {
      Sc Cur = C[CP.AccFields[J]].Sc;
      Sc NewV = selectByValuation(
          Ctrl,
          [&](size_t V) {
            return applyParam(CP.AccFlavors[J], W.Mode[V][J], W.Arg[V][J],
                              Cur);
          },
          Cur);
      Out[CP.AccFields[J]] = DV::scalar(NewV);
    }
    return Out;
  }

  /// Suffix combine at a boundary: true pre-boundary state \p T, worker
  /// result \p D, worker baseline \p W0 (= f(d0, boundary)).
  State combineStates(const State &T, const State &D, const State &W0) {
    const CondPrefixInfo &CP = Plan.Cond;
    State Out = D; // control fields and SetLike accumulators take D.
    for (size_t J = 0, E = CP.AccFields.size(); J != E; ++J) {
      size_t F = CP.AccFields[J];
      const Sc &Tv = T[F].Sc;
      const Sc &Dv = D[F].Sc;
      const Sc &Zv = W0[F].Sc;
      Sc R = Dv;
      switch (CP.AccFlavors[J]) {
      case AccFlavor::Plus:
        R = P.add(Tv, P.sub(Dv, Zv));
        break;
      case AccFlavor::Max:
        R = P.smax(Tv, Dv);
        break;
      case AccFlavor::Min:
        R = P.smin(Tv, Dv);
        break;
      case AccFlavor::And:
        R = P.land(Tv, P.lor(P.lnot(Zv), Dv));
        break;
      case AccFlavor::Or:
        R = P.lor(Tv, P.land(Dv, P.lnot(Zv)));
        break;
      case AccFlavor::SetLike:
        R = Dv;
        break;
      }
      Out[F] = DV::scalar(R);
    }
    return Out;
  }

private:
  /// Branch-free state select.
  State selectState(const Sc &Cond, const State &A, const State &B) {
    State Out;
    Out.reserve(A.size());
    for (size_t I = 0, E = A.size(); I != E; ++I)
      Out.push_back(ir::selectValue(P, Cond, A[I], B[I]));
    return Out;
  }

  const lang::SerialProgram &Prog;
  const ParallelPlan &Plan;
  S &P;
};

/// Convenience: concretely runs \p Plan over int64 segments.
int64_t runPlanConcrete(const lang::SerialProgram &Prog,
                        const ParallelPlan &Plan,
                        const std::vector<std::vector<int64_t>> &Segments);

} // namespace synth
} // namespace grassp

#endif // GRASSP_SYNTH_PLANEVAL_H
