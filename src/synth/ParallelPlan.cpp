//===- synth/ParallelPlan.cpp ----------------------------------------------=//

#include "synth/ParallelPlan.h"
#include "synth/PlanEval.h"

#include <sstream>

namespace grassp {
namespace synth {

const char *scenarioName(Scenario S) {
  switch (S) {
  case Scenario::NoPrefix:
    return "no-prefix";
  case Scenario::ConstPrefix:
    return "const-prefix";
  case Scenario::CondPrefixRefold:
    return "cond-prefix-refold";
  case Scenario::CondPrefixSummary:
    return "cond-prefix-summary";
  }
  return "?";
}

const char *accFlavorName(AccFlavor F) {
  switch (F) {
  case AccFlavor::Plus:
    return "+";
  case AccFlavor::Max:
    return "max";
  case AccFlavor::Min:
    return "min";
  case AccFlavor::And:
    return "and";
  case AccFlavor::Or:
    return "or";
  case AccFlavor::SetLike:
    return "set";
  }
  return "?";
}

bool MergeFn::isTrivial() const {
  if (Refold)
    return false;
  for (const ir::ExprRef &E : Combine) {
    if (!E)
      return false;
    // A single operator application over exactly the two sides.
    switch (E->getOp()) {
    case ir::Op::Add:
    case ir::Op::Min:
    case ir::Op::Max:
    case ir::Op::And:
    case ir::Op::Or:
      if (E->operand(0)->isVar() && E->operand(1)->isVar())
        continue;
      return false;
    default:
      return false;
    }
  }
  return true;
}

std::string ParallelPlan::group() const {
  switch (Kind) {
  case Scenario::NoPrefix:
    // The paper calls a merge "trivial" when it reduces single-value
    // partial states with one operator (B1); anything structured —
    // multi-field states, keyed combines, refolds — is B2.
    return (Merge.isTrivial() && Merge.Combine.size() == 1) ? "B1" : "B2";
  case Scenario::ConstPrefix:
    return "B3";
  case Scenario::CondPrefixRefold:
  case Scenario::CondPrefixSummary:
    return "B4";
  }
  return "?";
}

std::string ParallelPlan::describe(const lang::SerialProgram &Prog) const {
  std::ostringstream OS;
  OS << "scenario: " << scenarioName(Kind) << " (group " << group() << ")\n";
  switch (Kind) {
  case Scenario::NoPrefix:
  case Scenario::ConstPrefix: {
    if (Kind == Scenario::ConstPrefix)
      OS << "prefix length: " << PrefixLen << "\n";
    if (Merge.Refold) {
      OS << "merge: refold (duplicate-free union of partial bags)\n";
      break;
    }
    OS << "merge (binary combine of partial states a, b):\n";
    for (size_t I = 0, E = Prog.State.size(); I != E; ++I)
      OS << "  " << Prog.State.field(I).Name << " := "
         << ir::toString(Merge.Combine[I]) << "\n";
    break;
  }
  case Scenario::CondPrefixRefold:
  case Scenario::CondPrefixSummary: {
    OS << "prefix_cond(in) = " << ir::toString(Cond.PrefixCond) << "\n";
    OS << "control fields:";
    for (size_t F : Cond.CtrlFields)
      OS << " " << Prog.State.field(F).Name;
    OS << "  (" << Cond.numValuations() << " reachable valuations)\n";
    OS << "accumulators:";
    for (size_t J = 0; J != Cond.AccFields.size(); ++J)
      OS << " " << Prog.State.field(Cond.AccFields[J]).Name << "["
         << accFlavorName(Cond.AccFlavors[J]) << "]";
    OS << "\n";
    if (Kind == Scenario::CondPrefixSummary) {
      OS << "upd (materialized nested-ite form):\n";
      std::vector<ir::ExprRef> Upd = materializeUpdExprs(Prog, *this);
      for (size_t I = 0, E = Prog.State.size(); I != E; ++I)
        OS << "  " << Prog.State.field(I).Name << " := "
           << ir::toString(Upd[I]) << "\n";
    }
    break;
  }
  }
  return OS.str();
}

std::vector<ir::ExprRef>
materializeUpdExprs(const lang::SerialProgram &Prog,
                    const ParallelPlan &Plan) {
  using S = ir::SymbolicPolicy;
  S P;
  PlanExecutor<S> Exec(Prog, Plan, P);

  // State C as field variables.
  lang::StateVec<S> C;
  for (const lang::Field &F : Prog.State.fields())
    C.push_back(ir::DomainValue<S>::scalar(ir::var(F.Name, F.Ty)));

  // A symbolic worker summary: one variable per table slot.
  const CondPrefixInfo &CP = Plan.Cond;
  WorkerResult<S> W;
  W.Found = ir::constBool(true);
  W.Boundary = ir::constInt(0);
  W.CtrlCur.resize(CP.numValuations());
  W.Mode.resize(CP.numValuations());
  W.Arg.resize(CP.numValuations());
  for (size_t V = 0; V != CP.numValuations(); ++V) {
    for (size_t K = 0; K != CP.CtrlFields.size(); ++K) {
      const lang::Field &F = Prog.State.field(CP.CtrlFields[K]);
      W.CtrlCur[V].push_back(
          ir::var("D_ctrl" + std::to_string(V) + "_" + std::to_string(K),
                  F.Ty));
    }
    for (size_t J = 0; J != CP.AccFields.size(); ++J) {
      const lang::Field &F = Prog.State.field(CP.AccFields[J]);
      W.Mode[V].push_back(
          ir::var("D_mode" + std::to_string(V) + "_" + std::to_string(J),
                  ir::TypeKind::Int));
      W.Arg[V].push_back(
          ir::var("D_arg" + std::to_string(V) + "_" + std::to_string(J),
                  F.Ty));
    }
  }

  lang::StateVec<S> Out = Exec.applyUpd(C, W);
  std::vector<ir::ExprRef> Exprs;
  Exprs.reserve(Out.size());
  for (const auto &DV : Out)
    Exprs.push_back(DV.Sc);
  return Exprs;
}

int64_t runPlanConcrete(const lang::SerialProgram &Prog,
                        const ParallelPlan &Plan,
                        const std::vector<std::vector<int64_t>> &Segments) {
  ir::ConcretePolicy P;
  PlanExecutor<ir::ConcretePolicy> Exec(Prog, Plan, P);
  return Exec.run(Segments);
}

} // namespace synth
} // namespace grassp
