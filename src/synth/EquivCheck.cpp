//===- synth/EquivCheck.cpp ------------------------------------------------=//

#include "synth/EquivCheck.h"

#include "lang/Interp.h"
#include "smt/Solver.h"
#include "support/Random.h"
#include "synth/PlanEval.h"

#include <algorithm>

using namespace grassp::ir;

namespace grassp {
namespace synth {

EquivChecker::EquivChecker(const lang::SerialProgram &Prog) : Prog(Prog) {}

void EquivChecker::addEntry(Segments Segs) {
  CorpusEntry E;
  E.Expected = lang::runSerialSegmented(Prog, Segs);
  E.Segs = std::move(Segs);
  Corpus.push_back(std::move(E));
}

void EquivChecker::seedCorpus(unsigned NumRandom, uint64_t Seed) {
  Rng R(Seed);
  std::vector<int64_t> Reps = Prog.representativeInputs();

  auto RandomSegs = [&](bool FromReps) {
    unsigned M = static_cast<unsigned>(R.range(1, 4));
    Segments Segs(M);
    for (auto &S : Segs) {
      unsigned Len = static_cast<unsigned>(R.range(1, 4));
      S = FromReps ? randomFromAlphabet(R, Reps, Len)
                   : randomInRange(R, Prog.GenLo, Prog.GenHi, Len);
    }
    return Segs;
  };

  for (unsigned I = 0; I != NumRandom; ++I)
    addEntry(RandomSegs(/*FromReps=*/I % 2 == 0));

  // Crafted entries that exercise boundary-sensitive behaviors: constant
  // streams, sorted streams, and rep-alternations — these give the
  // corpus positive instances of predicates like "all equal"/"is sorted"
  // that random data essentially never produces.
  for (unsigned Trial = 0; Trial != 8; ++Trial) {
    int64_t C = Reps[R.next() % Reps.size()];
    Segments Const(2 + Trial % 2);
    for (auto &S : Const)
      S.assign(1 + R.next() % 3, C);
    addEntry(std::move(Const));

    Segments Sorted(2);
    int64_t Base = R.range(-5, 5);
    for (auto &S : Sorted) {
      unsigned Len = 1 + R.next() % 3;
      for (unsigned K = 0; K != Len; ++K) {
        S.push_back(Base);
        Base += R.range(0, 2);
      }
    }
    addEntry(std::move(Sorted));

    Segments Alt(2);
    int64_t Bit = static_cast<int64_t>(Trial % 2);
    for (auto &S : Alt) {
      unsigned Len = 1 + R.next() % 4;
      for (unsigned K = 0; K != Len; ++K) {
        S.push_back(Bit);
        Bit = 1 - Bit;
      }
    }
    addEntry(std::move(Alt));
  }
}

void EquivChecker::addCounterexample(const Segments &Segs) {
  addEntry(Segs);
}

bool EquivChecker::passesCorpus(const ParallelPlan &Plan) const {
  for (const CorpusEntry &E : Corpus)
    if (runPlanConcrete(Prog, Plan, E.Segs) != E.Expected)
      return false;
  return true;
}

Verdict EquivChecker::verify(const ParallelPlan &Plan,
                             const VerifyOptions &Opts, Segments *CexOut) {
  // Enumerate segment shapes, cheapest first.
  std::vector<std::vector<unsigned>> Shapes;
  for (unsigned M = Opts.MinSegments; M <= Opts.MaxSegments; ++M) {
    std::vector<unsigned> Lens(M, 1);
    for (;;) {
      Shapes.push_back(Lens);
      size_t I = 0;
      for (; I != M; ++I) {
        if (++Lens[I] <= Opts.MaxLen)
          break;
        Lens[I] = 1;
      }
      if (I == M)
        break;
    }
  }
  std::stable_sort(Shapes.begin(), Shapes.end(),
                   [](const std::vector<unsigned> &A,
                      const std::vector<unsigned> &B) {
                     unsigned SA = 0, SB = 0;
                     for (unsigned X : A)
                       SA += X;
                     for (unsigned X : B)
                       SB += X;
                     return SA < SB;
                   });

  for (const std::vector<unsigned> &Shape : Shapes) {
    if (Opts.Token.cancelled())
      return Verdict::Cancelled;
    ir::SymbolicPolicy P;
    // Fresh element variables.
    std::vector<std::vector<ExprRef>> SymSegs;
    std::vector<std::string> Names;
    for (size_t I = 0; I != Shape.size(); ++I) {
      std::vector<ExprRef> Seg;
      for (unsigned J = 0; J != Shape[I]; ++J) {
        std::string Name =
            "e_" + std::to_string(I) + "_" + std::to_string(J);
        Names.push_back(Name);
        Seg.push_back(var(Name, TypeKind::Int));
      }
      SymSegs.push_back(std::move(Seg));
    }

    // Serial output over the concatenation.
    lang::StateVec<ir::SymbolicPolicy> St = lang::initialState(Prog, P);
    for (const auto &Seg : SymSegs)
      St = lang::foldSegment(Prog, std::move(St), Seg, P);
    ExprRef SerialOut = lang::outputOf(Prog, St, P);

    // Parallel output.
    PlanExecutor<ir::SymbolicPolicy> Exec(Prog, Plan, P);
    ExprRef PlanOut = Exec.run(SymSegs);

    ExprRef Diff = ne(SerialOut, PlanOut);
    if (Diff->isConstBool()) {
      if (!Diff->boolValue())
        continue; // syntactically identical: trivially equivalent shape.
    }

    smt::SmtSolver Solver;
    Solver.add(Diff);
    ++SmtChecks;
    switch (Solver.check(Opts.SmtTimeoutMs, Opts.Token)) {
    case smt::SatResult::Unsat:
      continue;
    case smt::SatResult::Unknown:
      return Verdict::Unknown;
    case smt::SatResult::Cancelled:
      return Verdict::Cancelled;
    case smt::SatResult::Sat: {
      Segments Cex;
      size_t NameIdx = 0;
      for (size_t I = 0; I != Shape.size(); ++I) {
        std::vector<int64_t> Seg;
        for (unsigned J = 0; J != Shape[I]; ++J)
          Seg.push_back(Solver.modelInt(Names[NameIdx++]));
        Cex.push_back(std::move(Seg));
      }
      addCounterexample(Cex);
      if (CexOut)
        *CexOut = std::move(Cex);
      return Verdict::Refuted;
    }
    }
  }
  return Verdict::Equivalent;
}

} // namespace synth
} // namespace grassp
