//===- synth/ParallelDriver.h - Concurrent synthesis driver --------------===//
//
// Schedules per-benchmark GRASSP pipelines onto the shared ThreadPool.
// Synthesis of one program is independent of every other (the original
// GRASSP report and Farzan's divide-and-conquer work both treat it as
// embarrassingly parallel), so the driver fans one task out per program.
//
// Isolation and determinism:
//  * Every in-flight task owns its whole pipeline — corpus, symbolic
//    evaluation, and one SmtSolver (one Z3 context) per bounded check —
//    so tasks never share solver state.
//  * Results are stored by task index and returned in input order; with
//    ample SMT budgets the table a harness prints is byte-identical
//    (plan, stage, candidate/SMT counts) for any --jobs value.
//
// Budget policy: each task runs under Opts.SmtTimeoutMs. When a run
// fails *and* some bounded check returned Unknown (solver timeout), the
// task is retried once with a doubled budget before the driver reports
// TaskStatus::Unknown. Failures without Unknown verdicts are genuine
// search exhaustion and are reported as Failed immediately.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SYNTH_PARALLELDRIVER_H
#define GRASSP_SYNTH_PARALLELDRIVER_H

#include "synth/Grassp.h"

#include <string>
#include <vector>

namespace grassp {
namespace synth {

struct DriverOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  unsigned Jobs = 1;
  /// Initial per-task SMT budget (doubled once on an Unknown retry).
  unsigned SmtTimeoutMs = 30000;
  /// Retries granted to a task whose failure involved Unknown verdicts.
  unsigned MaxRetries = 1;
  /// Base synthesis options; Bounds.SmtTimeoutMs is overridden by the
  /// budget policy above.
  SynthOptions Synth;
};

enum class TaskStatus {
  Solved,  ///< A verified plan was found.
  Unknown, ///< Failed with solver timeouts even at the doubled budget.
  Failed,  ///< Every stage exhausted without any Unknown verdict.
};

const char *taskStatusName(TaskStatus S);

/// Outcome of one per-benchmark synthesis task.
struct TaskResult {
  std::string Name;
  SynthesisResult Result; ///< Attempts merged: log, counts, seconds.
  TaskStatus Status = TaskStatus::Failed;
  unsigned Attempts = 0;
  unsigned BudgetMs = 0; ///< SMT budget of the final attempt.
};

/// Fans per-program synthesis tasks out over a ThreadPool.
class ParallelDriver {
public:
  explicit ParallelDriver(DriverOptions Opts = DriverOptions());

  /// Synthesizes every program in \p Progs; results in input order.
  std::vector<TaskResult>
  run(const std::vector<const lang::SerialProgram *> &Progs) const;

  /// Runs the full Table-1 suite (lang::allBenchmarks()).
  std::vector<TaskResult> runAll() const;

  /// One task: synthesis under the budget/retry policy above. Exposed
  /// for tests and for callers that do their own scheduling.
  static TaskResult synthesizeOne(const lang::SerialProgram &Prog,
                                  const DriverOptions &Opts);

  const DriverOptions &options() const { return Opts; }

private:
  DriverOptions Opts;
};

} // namespace synth
} // namespace grassp

#endif // GRASSP_SYNTH_PARALLELDRIVER_H
