//===- synth/ParallelDriver.h - Concurrent synthesis driver --------------===//
//
// Schedules per-benchmark GRASSP pipelines onto the shared ThreadPool.
// Synthesis of one program is independent of every other (the original
// GRASSP report and Farzan's divide-and-conquer work both treat it as
// embarrassingly parallel), so the driver fans one task out per program.
//
// Isolation and determinism:
//  * Every in-flight task owns its whole pipeline — corpus, symbolic
//    evaluation, and one SmtSolver (one Z3 context) per bounded check —
//    so tasks never share solver state.
//  * Results are stored by task index and returned in input order; with
//    ample SMT budgets the table a harness prints is byte-identical
//    (plan, stage, candidate/SMT counts) for any --jobs value.
//
// Budget policy: each task climbs an exponential budget ladder. Attempt
// k runs under SmtTimeoutMs * BudgetMultiplier^k (capped at MaxBudgetMs
// when set); a failed run whose bounded checks returned Unknown (solver
// timeout) earns the next rung, up to MaxRetries rungs. Failures with
// no Unknown verdict are genuine search exhaustion and report Failed
// immediately. A wall-clock watchdog (TaskDeadlineSec) stops the climb.
//
// Fault tolerance: a crashed attempt (an exception out of synthesize(),
// injected at the synth.task site or real) is re-run at the same budget
// up to MaxCrashRetries times — the fleet-worker analogue of MapReduce
// re-executing a failed map task. With a journal armed, every finished
// task appends one JSON line immediately (crash-safe), and a resumed
// run skips tasks the journal already records as solved.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SYNTH_PARALLELDRIVER_H
#define GRASSP_SYNTH_PARALLELDRIVER_H

#include "support/Cancel.h"
#include "support/FaultInject.h"
#include "synth/Grassp.h"

#include <string>
#include <vector>

namespace grassp {
namespace synth {

/// Fault site consulted once per synthesis attempt, keyed by
/// Attempt * SynthAttemptKeyStride + TaskIndex.
inline constexpr const char *FaultSiteSynthTask = "synth.task";
inline constexpr uint64_t SynthAttemptKeyStride = 1000003;

struct DriverOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  unsigned Jobs = 1;
  /// Initial per-task SMT budget (rung 0 of the ladder).
  unsigned SmtTimeoutMs = 30000;
  /// Extra ladder rungs granted to a task whose failure involved
  /// Unknown verdicts.
  unsigned MaxRetries = 1;
  /// Ladder growth per rung; 2.0 doubles the budget each retry.
  double BudgetMultiplier = 2.0;
  /// Budget ceiling in ms (0 = uncapped).
  unsigned MaxBudgetMs = 0;
  /// Wall-clock watchdog per task: once a task has spent this many
  /// seconds it stops climbing the ladder and reports TimedOut
  /// (0 = no deadline).
  double TaskDeadlineSec = 0.0;
  /// Re-runs granted to an attempt that crashed (threw) rather than
  /// failed; crashes re-run at the same budget rung.
  unsigned MaxCrashRetries = 2;
  /// JSON-lines journal of finished tasks; empty = no journal. Lines
  /// are appended and flushed as tasks finish, so a killed run keeps
  /// everything it completed.
  std::string JournalPath;
  /// Skip tasks the journal already records as solved (their results
  /// come back with FromJournal set and no plan).
  bool Resume = false;
  /// Fault injector consulted at the synth.task site; null = none.
  FaultInjector *Faults = nullptr;
  /// Run-wide cancellation: firing it stops new tasks from starting,
  /// interrupts in-flight SMT queries, and makes run() return promptly
  /// with every unfinished task marked Cancelled. Cancelled tasks are
  /// never journaled, so --resume re-runs exactly them. Each task also
  /// gets a child of this token carrying its TaskDeadlineSec deadline,
  /// which clamps the task's SMT budgets to the remaining wall clock.
  CancelToken Token;
  /// Bound on the pool's pending-task queue (0 = unbounded); see
  /// PoolOptions::QueueCap. With Jobs workers and thousands of tasks
  /// this caps driver memory and lets submit exert backpressure.
  size_t QueueCap = 0;
  /// Base synthesis options; Bounds.SmtTimeoutMs is overridden by the
  /// budget policy above.
  SynthOptions Synth;
};

enum class TaskStatus {
  Solved,   ///< A verified plan was found.
  Unknown,  ///< Failed with solver timeouts even at the top rung.
  Failed,   ///< Every stage exhausted without any Unknown verdict.
  TimedOut, ///< The wall-clock watchdog expired before a verdict.
  Crashed,  ///< Every attempt threw, even after crash re-runs.
  Cancelled, ///< The run token fired before the task finished.
};

const char *taskStatusName(TaskStatus S);
bool taskStatusFromName(const std::string &Name, TaskStatus *Out);

/// Outcome of one per-benchmark synthesis task.
struct TaskResult {
  std::string Name;
  SynthesisResult Result; ///< Attempts merged: log, counts, seconds.
  TaskStatus Status = TaskStatus::Failed;
  unsigned Attempts = 0;
  unsigned BudgetMs = 0;      ///< SMT budget of the final attempt.
  unsigned CrashRetries = 0;  ///< Attempts re-run after a crash.
  bool FromJournal = false;   ///< Restored by --resume, not re-run.
};

/// One line of the task journal, parsed back.
struct JournalEntry {
  std::string Name;
  TaskStatus Status = TaskStatus::Failed;
  std::string Group;
  unsigned Attempts = 0;
  unsigned BudgetMs = 0;
  double Seconds = 0;
};

/// Serializes \p T as one JSON object (no trailing newline), e.g.
/// {"task":"sum","status":"solved","group":"B1","attempts":1,
///  "budget_ms":30000,"seconds":0.52}
std::string journalLine(const TaskResult &T);
/// Strict parse of one journal line; false on malformed input.
bool parseJournalLine(const std::string &Line, JournalEntry *Out);
/// Loads every parsable line of \p Path (later lines win on duplicate
/// task names); empty when the file is absent.
std::vector<JournalEntry> loadJournal(const std::string &Path);

/// Fans per-program synthesis tasks out over a ThreadPool.
class ParallelDriver {
public:
  explicit ParallelDriver(DriverOptions Opts = DriverOptions());

  /// Synthesizes every program in \p Progs; results in input order.
  std::vector<TaskResult>
  run(const std::vector<const lang::SerialProgram *> &Progs) const;

  /// Runs the full Table-1 suite (lang::allBenchmarks()).
  std::vector<TaskResult> runAll() const;

  /// One task: synthesis under the ladder/watchdog/crash policy above.
  /// \p TaskIndex keys the synth.task fault site. Exposed for tests and
  /// for callers that do their own scheduling.
  static TaskResult synthesizeOne(const lang::SerialProgram &Prog,
                                  const DriverOptions &Opts,
                                  uint64_t TaskIndex = 0);

  const DriverOptions &options() const { return Opts; }

private:
  DriverOptions Opts;
};

} // namespace synth
} // namespace grassp

#endif // GRASSP_SYNTH_PARALLELDRIVER_H
