//===- synth/CondPrefix.h - Conditional-prefix construction (stage 3) ----===//
//
// Given a candidate prefix_cond, constructs the summary machinery of the
// paper's worst-case scenario (Sect. 6.3 and 7):
//
//  1. Splits the state into finite-range *control* fields and
//     *accumulator* fields (a structural fixpoint over the step shapes,
//     refined semantically during exploration).
//  2. Explores the reachable control valuations V.
//  3. Requires the boundary element to synchronize control: for every
//     pair of valuations, one f-step on a prefix_cond element must agree.
//     Fields that block synchronization are demoted to accumulators when
//     possible.
//  4. Builds, per start valuation, the control transition expressions and
//     the parametric accumulator transforms over "in" — together these
//     are the synthesized `sum`; their tabulated application is `upd`.
//
// Anything that does not fit makes construction fail for that
// prefix_cond, and the driver moves to the next candidate; every
// constructed result is still subject to the bounded equivalence check.
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SYNTH_CONDPREFIX_H
#define GRASSP_SYNTH_CONDPREFIX_H

#include "lang/Program.h"
#include "synth/ParallelPlan.h"

#include <optional>
#include <string>

namespace grassp {
namespace synth {

/// Attempts to construct the conditional-prefix machinery for
/// \p PrefixCond (an eq/ne comparison of "in" with a constant).
/// On failure, \p WhyNot (if non-null) receives a short reason.
std::optional<CondPrefixInfo>
buildCondPrefix(const lang::SerialProgram &Prog,
                const ir::ExprRef &PrefixCond, std::string *WhyNot = nullptr);

} // namespace synth
} // namespace grassp

#endif // GRASSP_SYNTH_CONDPREFIX_H
