//===- synth/CondPrefix.cpp ------------------------------------------------=//

#include "synth/CondPrefix.h"

#include "ir/DomainEval.h"
#include "ir/Matchers.h"
#include "lang/Interp.h"

#include <cassert>
#include <deque>
#include <map>
#include <set>

using namespace grassp::ir;

namespace grassp {
namespace synth {

namespace {

constexpr size_t kMaxValuations = 24;

/// Decomposed prefix_cond: "in == C" (IsEq) or "in != C".
struct PcShape {
  bool IsEq = true;
  int64_t C = 0;
};

std::optional<PcShape> decomposePc(const ExprRef &Pc) {
  if (Pc->getOp() != Op::Eq && Pc->getOp() != Op::Ne)
    return std::nullopt;
  const ExprRef &A = Pc->operand(0);
  const ExprRef &B = Pc->operand(1);
  if (!A->isVar() || A->varName() != lang::inputVarName() || !B->isConstInt())
    return std::nullopt;
  return PcShape{Pc->getOp() == Op::Eq, B->intValue()};
}

/// Structurally replaces subterms equal to \p Pattern with \p Repl,
/// rebuilding (and thereby re-folding) the term.
ExprRef replaceSubterm(const ExprRef &E, const ExprRef &Pattern,
                       const ExprRef &Repl) {
  if (structurallyEqual(E, Pattern))
    return Repl;
  if (E->numOperands() == 0)
    return E;
  std::vector<ExprRef> Ops;
  Ops.reserve(E->numOperands());
  bool Changed = false;
  for (const ExprRef &Opnd : E->operands()) {
    ExprRef N = replaceSubterm(Opnd, Pattern, Repl);
    Changed |= (N.get() != Opnd.get());
    Ops.push_back(std::move(N));
  }
  if (!Changed)
    return E;
  switch (E->getOp()) {
  case Op::Neg:
    return neg(Ops[0]);
  case Op::Not:
    return lnot(Ops[0]);
  case Op::BagSize:
    return bagSize(Ops[0]);
  case Op::Ite:
    return ite(Ops[0], Ops[1], Ops[2]);
  default:
    return binary(E->getOp(), Ops[0], Ops[1]);
  }
}

ExprRef inVar() { return var(lang::inputVarName(), TypeKind::Int); }

/// Specializes \p E under the assumption that "in" is a *prefix* element
/// (prefix_cond(in) is false).
ExprRef normalizePrefix(const ExprRef &E, const PcShape &Pc) {
  if (!Pc.IsEq) {
    // prefix elements satisfy in == C.
    std::map<std::string, ExprRef> Subst{
        {lang::inputVarName(), constInt(Pc.C)}};
    return substitute(E, Subst);
  }
  ExprRef R = replaceSubterm(E, eq(inVar(), constInt(Pc.C)), constBool(false));
  return replaceSubterm(R, ne(inVar(), constInt(Pc.C)), constBool(true));
}

/// Specializes \p E under the assumption that "in" is a *boundary*
/// element (prefix_cond(in) is true).
ExprRef normalizeBoundary(const ExprRef &E, const PcShape &Pc) {
  if (Pc.IsEq) {
    std::map<std::string, ExprRef> Subst{
        {lang::inputVarName(), constInt(Pc.C)}};
    return substitute(E, Subst);
  }
  ExprRef R = replaceSubterm(E, eq(inVar(), constInt(Pc.C)), constBool(false));
  return replaceSubterm(R, ne(inVar(), constInt(Pc.C)), constBool(true));
}

/// Scans \p E for occurrences of accumulator \p Name and deduces the
/// combining flavor from the operators it occurs under. Returns nullopt
/// on conflicting or non-combinable uses.
std::optional<AccFlavor> deduceAccFlavor(const ExprRef &E,
                                         const std::string &Name,
                                         TypeKind Ty) {
  std::set<AccFlavor> Seen;
  bool Poison = false;

  // Ctx: the nearest enclosing combining operator; nullopt = neutral.
  auto Walk = [&](auto &&Self, const ExprRef &N,
                  std::optional<AccFlavor> Ctx, bool InCond) -> void {
    if (N->isVar() && N->varName() == Name) {
      if (InCond) {
        Poison = true;
        return;
      }
      if (Ctx)
        Seen.insert(*Ctx);
      return;
    }
    switch (N->getOp()) {
    case Op::Add:
      Self(Self, N->operand(0), AccFlavor::Plus, InCond);
      Self(Self, N->operand(1), AccFlavor::Plus, InCond);
      return;
    case Op::Sub:
      Self(Self, N->operand(0), AccFlavor::Plus, InCond);
      // acc on the right of a subtraction is not combinable.
      Self(Self, N->operand(1), std::nullopt, /*InCond=*/true);
      return;
    case Op::Max:
      Self(Self, N->operand(0), AccFlavor::Max, InCond);
      Self(Self, N->operand(1), AccFlavor::Max, InCond);
      return;
    case Op::Min:
      Self(Self, N->operand(0), AccFlavor::Min, InCond);
      Self(Self, N->operand(1), AccFlavor::Min, InCond);
      return;
    case Op::And:
      Self(Self, N->operand(0), AccFlavor::And, InCond);
      Self(Self, N->operand(1), AccFlavor::And, InCond);
      return;
    case Op::Or:
      Self(Self, N->operand(0), AccFlavor::Or, InCond);
      Self(Self, N->operand(1), AccFlavor::Or, InCond);
      return;
    case Op::Ite:
      Self(Self, N->operand(0), std::nullopt, /*InCond=*/true);
      Self(Self, N->operand(1), Ctx, InCond);
      Self(Self, N->operand(2), Ctx, InCond);
      return;
    case Op::Eq:
    case Op::Ne:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::Mul:
    case Op::Div:
    case Op::Mod:
    case Op::Neg:
    case Op::Not:
      // Occurrence under these operators is not summarizable.
      for (const ExprRef &Opnd : N->operands())
        Self(Self, Opnd, std::nullopt, /*InCond=*/true);
      return;
    default:
      for (const ExprRef &Opnd : N->operands())
        Self(Self, Opnd, Ctx, InCond);
      return;
    }
  };
  Walk(Walk, E, std::nullopt, false);

  if (Poison || Seen.size() > 1)
    return std::nullopt;
  if (Seen.empty())
    return AccFlavor::SetLike;
  AccFlavor F = *Seen.begin();
  // Bool accumulators must use boolean flavors, Ints arithmetic ones.
  if (Ty == TypeKind::Bool && F != AccFlavor::And && F != AccFlavor::Or)
    return std::nullopt;
  return F;
}

/// Parametric transform classification of \p E (over vars {"in", Name})
/// into (mode, arg) expressions over "in": mode 0 = identity, 1 = assign
/// arg, 2 = flavor-op with arg.
std::optional<std::pair<ExprRef, ExprRef>>
classifyParam(const ExprRef &E, const std::string &Name, AccFlavor Flavor,
              TypeKind AccTy) {
  std::map<std::string, TypeKind> Vars;
  collectVars(E, Vars);
  bool MentionsAcc = Vars.count(Name) != 0;
  // Acc-free: a plain assignment (arg may mention "in").
  if (!MentionsAcc) {
    for (const auto &KV : Vars)
      if (KV.first != lang::inputVarName())
        return std::nullopt;
    return std::make_pair(constInt(1), E);
  }
  if (E->isVar() && E->varName() == Name) {
    ExprRef Zero =
        AccTy == TypeKind::Bool ? constBool(false) : constInt(0);
    return std::make_pair(constInt(0), Zero);
  }

  auto FlavorOfOp = [](Op O) -> std::optional<AccFlavor> {
    switch (O) {
    case Op::Add:
      return AccFlavor::Plus;
    case Op::Max:
      return AccFlavor::Max;
    case Op::Min:
      return AccFlavor::Min;
    case Op::And:
      return AccFlavor::And;
    case Op::Or:
      return AccFlavor::Or;
    default:
      return std::nullopt;
    }
  };

  auto SideIsAccFree = [&](const ExprRef &Side) {
    std::map<std::string, TypeKind> SV;
    collectVars(Side, SV);
    if (SV.count(Name))
      return false;
    for (const auto &KV : SV)
      if (KV.first != lang::inputVarName())
        return false;
    return true;
  };

  switch (E->getOp()) {
  case Op::Ite: {
    const ExprRef &Cond = E->operand(0);
    if (!SideIsAccFree(Cond))
      return std::nullopt;
    auto T = classifyParam(E->operand(1), Name, Flavor, AccTy);
    auto F = classifyParam(E->operand(2), Name, Flavor, AccTy);
    if (!T || !F)
      return std::nullopt;
    return std::make_pair(ite(Cond, T->first, F->first),
                          ite(Cond, T->second, F->second));
  }
  case Op::Sub: {
    // acc-side - constant-side == acc-side + (-constant-side).
    if (Flavor != AccFlavor::Plus || !SideIsAccFree(E->operand(1)))
      return std::nullopt;
    auto L = classifyParam(E->operand(0), Name, Flavor, AccTy);
    if (!L)
      return std::nullopt;
    ExprRef G = neg(E->operand(1));
    ExprRef Mode = ite(eq(L->first, constInt(1)), constInt(1), constInt(2));
    ExprRef Arg = ite(eq(L->first, constInt(0)), G,
                      add(L->second, G));
    return std::make_pair(Mode, Arg);
  }
  default:
    break;
  }

  std::optional<AccFlavor> OpFlavor = FlavorOfOp(E->getOp());
  if (!OpFlavor || *OpFlavor != Flavor || E->numOperands() != 2)
    return std::nullopt;
  const ExprRef *AccSide = nullptr, *FreeSide = nullptr;
  if (SideIsAccFree(E->operand(1))) {
    AccSide = &E->operand(0);
    FreeSide = &E->operand(1);
  } else if (SideIsAccFree(E->operand(0))) {
    AccSide = &E->operand(1);
    FreeSide = &E->operand(0);
  } else {
    return std::nullopt;
  }
  auto L = classifyParam(*AccSide, Name, Flavor, AccTy);
  if (!L)
    return std::nullopt;
  // Compose "then apply flavor-op with G": Id -> Op(G); Set(a) ->
  // Set(a (+) G); Op(a) -> Op(a (+) G).
  ExprRef G = *FreeSide;
  ExprRef Mode = ite(eq(L->first, constInt(1)), constInt(1), constInt(2));
  ExprRef Combined;
  switch (Flavor) {
  case AccFlavor::Plus:
    Combined = add(L->second, G);
    break;
  case AccFlavor::Max:
    Combined = smax(L->second, G);
    break;
  case AccFlavor::Min:
    Combined = smin(L->second, G);
    break;
  case AccFlavor::And:
    Combined = land(L->second, G);
    break;
  case AccFlavor::Or:
    Combined = lor(L->second, G);
    break;
  case AccFlavor::SetLike:
    return std::nullopt;
  }
  ExprRef Arg = ite(eq(L->first, constInt(0)), G, Combined);
  return std::make_pair(Mode, Arg);
}

/// Packs a valuation key for the exploration map.
std::string valuationKey(const std::vector<int64_t> &V) {
  std::string K;
  for (int64_t X : V) {
    K += std::to_string(X);
    K += ',';
  }
  return K;
}

} // namespace

std::optional<CondPrefixInfo>
buildCondPrefix(const lang::SerialProgram &Prog, const ExprRef &PrefixCond,
                std::string *WhyNot) {
  auto Fail = [&](const std::string &Why) -> std::optional<CondPrefixInfo> {
    if (WhyNot)
      *WhyNot = Why;
    return std::nullopt;
  };

  if (Prog.State.hasBag())
    return Fail("bag-typed state");
  std::optional<PcShape> Pc = decomposePc(PrefixCond);
  if (!Pc)
    return Fail("prefix_cond is not an eq/ne atom");

  const lang::StateLayout &L = Prog.State;
  size_t N = L.size();

  // Step-shape analysis per field.
  std::vector<StepShape> Shapes;
  Shapes.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Shapes.push_back(analyzeStepShape(Prog.Step[I]));

  // Structural control fixpoint, with an external "demoted" veto set that
  // later semantic checks can grow.
  std::set<std::string> Demoted;
  auto ComputeCtrl = [&]() {
    std::set<std::string> Ctrl;
    for (size_t I = 0; I != N; ++I)
      if (!Shapes[I].ValueHasArith && !Demoted.count(L.field(I).Name))
        Ctrl.insert(L.field(I).Name);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t I = 0; I != N; ++I) {
        const std::string &Name = L.field(I).Name;
        if (!Ctrl.count(Name))
          continue;
        bool Ok = true;
        for (const std::string &V : Shapes[I].ValueVars)
          Ok &= Ctrl.count(V) != 0;
        for (const std::string &V : Shapes[I].CondVars)
          Ok &= (V == lang::inputVarName() || Ctrl.count(V) != 0);
        if (!Ok) {
          Ctrl.erase(Name);
          Changed = true;
        }
      }
    }
    return Ctrl;
  };

  // Semantic refinement loop: explore valuations, checking that control
  // steps fold to constants and synchronize at the boundary; demote
  // offenders and retry.
  std::vector<size_t> CtrlIdx, AccIdx;
  std::vector<std::vector<int64_t>> Valuations;
  // CtrlStepSym[v][k]: expr over "in".
  std::vector<std::vector<ExprRef>> CtrlStepSym;

  for (int Round = 0;; ++Round) {
    if (Round > static_cast<int>(N) + 2)
      return Fail("control refinement did not converge");
    std::set<std::string> Ctrl = ComputeCtrl();
    CtrlIdx.clear();
    AccIdx.clear();
    for (size_t I = 0; I != N; ++I) {
      if (Ctrl.count(L.field(I).Name))
        CtrlIdx.push_back(I);
      else
        AccIdx.push_back(I);
    }
    if (CtrlIdx.empty())
      return Fail("no finite-control fields");

    // Build the per-valuation control step expressions while exploring.
    Valuations.clear();
    CtrlStepSym.clear();
    std::map<std::string, size_t> Seen;
    std::deque<size_t> Work;

    std::vector<int64_t> Init;
    for (size_t K : CtrlIdx)
      Init.push_back(L.field(K).InitInt);
    Valuations.push_back(Init);
    Seen.emplace(valuationKey(Init), 0);
    Work.push_back(0);

    std::vector<int64_t> Reps = Prog.representativeInputs();
    std::string DemoteField;
    bool Overflow = false;

    while (!Work.empty() && DemoteField.empty() && !Overflow) {
      size_t V = Work.front();
      Work.pop_front();
      // Substitution: control fields fixed to valuation V, accumulator
      // fields left as variables, "in" left as a variable.
      std::map<std::string, ExprRef> Subst;
      for (size_t K = 0; K != CtrlIdx.size(); ++K) {
        const lang::Field &F = L.field(CtrlIdx[K]);
        Subst[F.Name] = F.Ty == TypeKind::Bool
                            ? constBool(Valuations[V][K] != 0)
                            : constInt(Valuations[V][K]);
      }
      std::vector<ExprRef> StepsV;
      for (size_t K : CtrlIdx) {
        ExprRef E = substitute(Prog.Step[K], Subst);
        std::map<std::string, TypeKind> Vars;
        collectVars(E, Vars);
        for (const auto &KV : Vars) {
          if (KV.first != lang::inputVarName()) {
            DemoteField = L.field(K).Name; // reads an accumulator
            break;
          }
        }
        StepsV.push_back(E);
      }
      if (!DemoteField.empty())
        break;
      if (CtrlStepSym.size() <= V)
        CtrlStepSym.resize(V + 1);
      CtrlStepSym[V] = StepsV;

      for (int64_t Rep : Reps) {
        std::map<std::string, ExprRef> InSubst{
            {lang::inputVarName(), constInt(Rep)}};
        std::vector<int64_t> Next;
        bool Foldable = true;
        for (size_t K = 0; K != CtrlIdx.size(); ++K) {
          ExprRef R = substitute(StepsV[K], InSubst);
          if (R->isConstInt()) {
            Next.push_back(R->intValue());
          } else if (R->isConstBool()) {
            Next.push_back(R->boolValue() ? 1 : 0);
          } else {
            Foldable = false;
            DemoteField = L.field(CtrlIdx[K]).Name;
            break;
          }
        }
        if (!Foldable)
          break;
        std::string Key = valuationKey(Next);
        if (!Seen.count(Key)) {
          if (Valuations.size() >= kMaxValuations) {
            Overflow = true;
            break;
          }
          Seen.emplace(Key, Valuations.size());
          Valuations.push_back(Next);
          Work.push_back(Valuations.size() - 1);
        }
      }
    }

    if (Overflow)
      return Fail("control valuation space too large");
    if (!DemoteField.empty()) {
      Demoted.insert(DemoteField);
      continue;
    }
    // CtrlStepSym may be shorter than Valuations if the last discovered
    // valuations were never popped; process the remainder.
    if (CtrlStepSym.size() < Valuations.size()) {
      // Remaining entries were queued but the loop exited normally only
      // when Work is empty, so this cannot happen; guard anyway.
      return Fail("internal: incomplete exploration");
    }

    // Boundary synchronization: all valuations must agree on the control
    // state after one boundary step.
    std::string Blocking;
    for (size_t K = 0; K != CtrlIdx.size() && Blocking.empty(); ++K) {
      ExprRef First;
      for (size_t V = 0; V != Valuations.size(); ++V) {
        ExprRef E = normalizeBoundary(CtrlStepSym[V][K], *Pc);
        if (V == 0) {
          First = E;
        } else if (!structurallyEqual(First, E)) {
          Blocking = L.field(CtrlIdx[K]).Name;
          break;
        }
      }
    }
    if (!Blocking.empty()) {
      Demoted.insert(Blocking);
      continue;
    }
    break; // control set is stable and synchronizes.
  }

  // Accumulator flavors.
  std::vector<AccFlavor> Flavors;
  for (size_t J : AccIdx) {
    std::optional<AccFlavor> F =
        deduceAccFlavor(Prog.Step[J], L.field(J).Name, L.field(J).Ty);
    if (!F)
      return Fail("accumulator '" + L.field(J).Name +
                  "' has no combinable flavor");
    Flavors.push_back(*F);
  }

  // Per-valuation accumulator transforms on prefix elements.
  CondPrefixInfo Info;
  Info.PrefixCond = PrefixCond;
  Info.CtrlFields = CtrlIdx;
  Info.AccFields = AccIdx;
  Info.AccFlavors = Flavors;
  Info.CtrlValues = Valuations;
  Info.CtrlStep.resize(Valuations.size());
  Info.AccMode.resize(Valuations.size());
  Info.AccArg.resize(Valuations.size());

  for (size_t V = 0; V != Valuations.size(); ++V) {
    std::map<std::string, ExprRef> Subst;
    for (size_t K = 0; K != CtrlIdx.size(); ++K) {
      const lang::Field &F = L.field(CtrlIdx[K]);
      Subst[F.Name] = F.Ty == TypeKind::Bool
                          ? constBool(Valuations[V][K] != 0)
                          : constInt(Valuations[V][K]);
    }
    for (size_t K = 0; K != CtrlIdx.size(); ++K)
      Info.CtrlStep[V].push_back(normalizePrefix(CtrlStepSym[V][K], *Pc));
    for (size_t JJ = 0; JJ != AccIdx.size(); ++JJ) {
      size_t J = AccIdx[JJ];
      ExprRef E = normalizePrefix(substitute(Prog.Step[J], Subst), *Pc);
      auto MA =
          classifyParam(E, L.field(J).Name, Flavors[JJ], L.field(J).Ty);
      if (!MA)
        return Fail("accumulator '" + L.field(J).Name +
                    "' is not summarizable on prefixes");
      Info.AccMode[V].push_back(MA->first);
      Info.AccArg[V].push_back(MA->second);
    }
  }

  return Info;
}

} // namespace synth
} // namespace grassp
