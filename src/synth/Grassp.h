//===- synth/Grassp.h - The gradual synthesis driver ---------------------===//
//
// The top of the GRASSP architecture (paper Fig. 10): stages of
// increasing complexity are attempted in order, and the first stage that
// produces a verified plan wins:
//
//   stage 1  - no prefix, trivial merge           (group B1)
//   stage 1b - no prefix, nontrivial merge        (group B2)
//   stage 2  - constant prefixes                  (group B3)
//   stage 3  - conditional prefixes + summaries   (group B4)
//
// Every candidate is screened against the counterexample corpus and then
// verified by the bounded symbolic checker; refuting models feed back
// into the corpus (CEGIS).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SYNTH_GRASSP_H
#define GRASSP_SYNTH_GRASSP_H

#include "synth/EquivCheck.h"
#include "synth/ParallelPlan.h"

#include <string>
#include <vector>

namespace grassp {
namespace synth {

struct SynthOptions {
  VerifyOptions Bounds;
  unsigned CorpusTests = 120;
  uint64_t CorpusSeed = 0x5eed5eedULL;
  /// Maximum constant prefix length attempted in stage 2.
  unsigned MaxConstPrefix = 2;
  /// User-defined template libraries (paper Sect. 4: the libraries "can
  /// be populated with new, user-defined templates to enlarge the search
  /// space"). Tried before the built-in candidates of their stage.
  std::vector<MergeFn> ExtraMerges;
  std::vector<ir::ExprRef> ExtraPrefixConds;
  /// Additional corpus inputs (e.g. counterexamples carried over from a
  /// wider-bound refutation during lazy bound maintenance).
  std::vector<Segments> SeedInputs;
};

struct SynthesisResult {
  bool Success = false;
  /// The run was cut short by its CancelToken (Bounds.Token): no stage
  /// verdict is implied, partial counters/logs are still filled in.
  bool Cancelled = false;
  ParallelPlan Plan;
  std::string Group; // B1..B4 on success.
  double SynthSeconds = 0;
  unsigned CandidatesTried = 0;
  unsigned SmtChecks = 0;
  /// Bounded-verifier verdicts that came back Unknown (solver timeout).
  /// A failed run with UnknownVerdicts != 0 may succeed under a larger
  /// SMT budget; the parallel driver keys its retry policy on this.
  unsigned UnknownVerdicts = 0;
  /// One line per stage attempted, e.g. "stage1: refuted after 3
  /// candidates"; reproduces the gradual escalation of Fig. 10.
  std::vector<std::string> StageLog;
  std::string FailureReason;
};

/// Synthesizes a parallel plan for \p Prog, gradually.
SynthesisResult synthesize(const lang::SerialProgram &Prog,
                           const SynthOptions &Opts = SynthOptions());

/// Lazy bound maintenance (paper Sect. 8.1): synthesize under the small
/// bounds of \p Opts, then re-verify the winner under bounds widened by
/// \p Widen segments/elements; on refutation the counterexample seeds a
/// re-synthesis, up to \p MaxRounds rounds. Each escalation is logged in
/// the result's StageLog.
SynthesisResult synthesizeWithLazyBounds(const lang::SerialProgram &Prog,
                                         const SynthOptions &Opts =
                                             SynthOptions(),
                                         unsigned Widen = 1,
                                         unsigned MaxRounds = 3);

} // namespace synth
} // namespace grassp

#endif // GRASSP_SYNTH_GRASSP_H
