//===- synth/Grammar.h - Template grammars (paper Fig. 13) ---------------===//
//
// Candidate generation for the synthesized functions:
//
//   merge  - binary combiners of partial states. Stage 1 offers the
//            trivial single-operator merges (sum / min / max / or / and);
//            stage 1b/2 offer structured nontrivial shapes: keyed
//            three-way combines (counting extrema), runner-up combines
//            (second maximal), per-field operator products, and the
//            refold merge for bag states.
//   prefix_cond - equality/disequality of the element with a constant
//            drawn from the program's constant pool (paper Sect. 9.2:
//            "it is sufficient for prefix_cond to be either equality or
//            disequality of an element to some constant").
//
// Candidates are ordered by term size, so the driver tries the simplest
// solution first — the gradual search inside a stage (paper Sect. 9.1).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SYNTH_GRAMMAR_H
#define GRASSP_SYNTH_GRAMMAR_H

#include "lang/Program.h"
#include "synth/ParallelPlan.h"

#include <vector>

namespace grassp {
namespace synth {

/// Stage-1 trivial merges: only generated for single-scalar-field states.
std::vector<MergeFn> trivialMergeCandidates(const lang::SerialProgram &Prog);

/// Stage-1b/2 nontrivial merges (including the refold merge when the
/// state has a bag field), ordered by size.
std::vector<MergeFn>
nontrivialMergeCandidates(const lang::SerialProgram &Prog);

/// Stage-3 prefix_cond candidates over "in", alphabet constants first.
std::vector<ir::ExprRef>
prefixCondCandidates(const lang::SerialProgram &Prog);

} // namespace synth
} // namespace grassp

#endif // GRASSP_SYNTH_GRAMMAR_H
