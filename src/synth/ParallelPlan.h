//===- synth/ParallelPlan.h - Synthesized parallelization plans ----------===//
//
// The output of GRASSP: a scenario-tagged description of how to run a
// SerialProgram in parallel over segments and merge the partial results.
// A plan is pure data (IR expressions and tables), so the same plan is
// executed concretely by the runtime, symbolically by the bounded
// verifier, encoded into CHCs by the certifier, and pretty-printed by the
// code generators.
//
// Scenarios (paper Sect. 3/6/7):
//  * NoPrefix           - fold every segment from d0; merge partial states
//                         (Fig. 6). Trivial or nontrivial merge (B1/B2).
//  * ConstPrefix        - additionally re-fold the first PrefixLen
//                         elements of the successor segment from each
//                         partial state before merging (Fig. 7, B3).
//  * CondPrefixRefold   - split each segment at the first element
//                         satisfying prefix_cond; merging re-folds the
//                         prefixes serially (Fig. 8, the paper's
//                         "split-based worst case").
//  * CondPrefixSummary  - like Refold, but prefixes are summarized online
//                         by the synthesized `sum` and applied in one step
//                         by `upd` (Fig. 9, B4).
//
//===----------------------------------------------------------------------===//

#ifndef GRASSP_SYNTH_PARALLELPLAN_H
#define GRASSP_SYNTH_PARALLELPLAN_H

#include "ir/Expr.h"
#include "lang/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grassp {
namespace synth {

enum class Scenario {
  NoPrefix,
  ConstPrefix,
  CondPrefixRefold,
  CondPrefixSummary,
};

const char *scenarioName(Scenario S);

/// How an accumulator field combines across a boundary and composes
/// inside prefix summaries.
enum class AccFlavor { Plus, Max, Min, And, Or, SetLike };

const char *accFlavorName(AccFlavor F);

/// A binary merge of two partial states. Field i of the result is
/// Combine[i] evaluated over variables "a_<field>" and "b_<field>".
/// When Refold is set (bag-typed states), bag fields take the
/// duplicate-free union instead — the paper's "append the partial arrays
/// and reprocess" merge for "counting distinct elements".
struct MergeFn {
  bool Refold = false;
  std::vector<ir::ExprRef> Combine;

  /// True when this is a paper-"trivial" merge: every field combines by a
  /// single commutative operator application (group B1).
  bool isTrivial() const;
};

/// The synthesized conditional-prefix machinery (paper Sect. 6.3/7).
///
/// Control fields range over the finite valuation set CtrlValues; the
/// summary Delta tracks, for every possible start valuation v, the control
/// valuation reached at the end of the prefix plus one parametric
/// accumulator transform per accumulator field. CtrlStep/AccMode/AccArg
/// are expressions over the input element "in" specialized per start
/// valuation; they are exactly the synthesized `sum`, and `upd` is their
/// tabulated application (materialized as nested ite by
/// materializeUpdExprs()).
struct CondPrefixInfo {
  ir::ExprRef PrefixCond; // Bool expr over "in".

  std::vector<size_t> CtrlFields; // indices into the program state.
  std::vector<size_t> AccFields;
  std::vector<AccFlavor> AccFlavors; // parallel to AccFields.

  /// Reachable control valuations; CtrlValues[v][k] is the value of
  /// control field CtrlFields[k] (bools as 0/1).
  std::vector<std::vector<int64_t>> CtrlValues;

  /// CtrlStep[v][k]: value of control field k after one f step from
  /// valuation v, as an Int/Bool expression over "in".
  std::vector<std::vector<ir::ExprRef>> CtrlStep;

  /// AccMode[v][j]: Int expr over "in" in {0 = identity, 1 = assign,
  /// 2 = apply flavor op}; AccArg[v][j]: the transform argument.
  std::vector<std::vector<ir::ExprRef>> AccMode;
  std::vector<std::vector<ir::ExprRef>> AccArg;

  size_t numValuations() const { return CtrlValues.size(); }
};

/// A complete parallelization plan for one SerialProgram.
struct ParallelPlan {
  Scenario Kind = Scenario::NoPrefix;
  MergeFn Merge;          // NoPrefix / ConstPrefix.
  int PrefixLen = 0;      // ConstPrefix.
  CondPrefixInfo Cond;    // CondPrefix*.

  /// The paper's Table-1 group this plan corresponds to.
  std::string group() const;

  /// Human-readable multi-line description (used by examples/benches).
  std::string describe(const lang::SerialProgram &Prog) const;
};

/// Materializes the `upd` function of a summary plan as one nested-ite
/// expression per state field, over variables {field names} and
/// {"D_ctrl<k>_v<v>", "D_mode<j>_v<v>", "D_arg<j>_v<v>"}. This reproduces
/// the paper's observation that synthesized sum/upd functions are nested
/// ite terms, and feeds the code generators.
std::vector<ir::ExprRef>
materializeUpdExprs(const lang::SerialProgram &Prog, const ParallelPlan &Plan);

} // namespace synth
} // namespace grassp

#endif // GRASSP_SYNTH_PARALLELPLAN_H
